#include "nn/linear.h"

#include "check/validators.h"
#include <cmath>

namespace mmlib::nn {

Linear::Linear(std::string name, int64_t in_features, int64_t out_features,
               Rng* rng)
    : Layer(std::move(name)),
      in_features_(in_features),
      out_features_(out_features) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(in_features));
  AddParam("weight",
           Tensor::Uniform(Shape{out_features, in_features}, -bound, bound,
                           rng));
  AddParam("bias", Tensor::Uniform(Shape{out_features}, -bound, bound, rng));
}

Result<Tensor> Linear::Forward(const std::vector<const Tensor*>& inputs,
                               ExecutionContext* ctx) {
  MMLIB_RETURN_IF_ERROR(check::ValidateArity(inputs, 1, name_));
  const Tensor& x = *inputs[0];
  if (x.shape().rank() != 2 || x.shape().dim(1) != in_features_) {
    return Status::InvalidArgument("linear " + name_ + ": bad input shape " +
                                   x.shape().ToString());
  }
  cached_input_ = x;
  const int64_t batch = x.shape().dim(0);
  Tensor y(Shape{batch, out_features_});
  const float* weight = params_[0].value.data();
  const float* bias = params_[1].value.data();
  for (int64_t n = 0; n < batch; ++n) {
    const float* row = x.data() + n * in_features_;
    float* out = y.data() + n * out_features_;
    for (int64_t o = 0; o < out_features_; ++o) {
      out[o] = bias[o] + AccumulateDot(weight + o * in_features_, row,
                                       in_features_,
                                       /*has_fast_det_kernel=*/true, ctx);
    }
  }
  return y;
}

Result<std::vector<Tensor>> Linear::Backward(const Tensor& grad_output,
                                             ExecutionContext* ctx) {
  const int64_t batch = cached_input_.shape().dim(0);
  MMLIB_RETURN_IF_ERROR(check::ValidateShapesMatch(
      grad_output.shape(), Shape{batch, out_features_},
      "linear " + name_ + " grad_output"));
  const float* weight = params_[0].value.data();
  float* grad_weight = params_[0].grad.data();
  float* grad_bias = params_[1].grad.data();

  Tensor grad_input(cached_input_.shape());
  for (int64_t n = 0; n < batch; ++n) {
    const float* gout = grad_output.data() + n * out_features_;
    const float* row = cached_input_.data() + n * in_features_;
    float* gin = grad_input.data() + n * in_features_;
    for (int64_t o = 0; o < out_features_; ++o) {
      const float g = gout[o];
      grad_bias[o] += g;
      const float* wrow = weight + o * in_features_;
      float* gwrow = grad_weight + o * in_features_;
      for (int64_t i = 0; i < in_features_; ++i) {
        gwrow[i] += g * row[i];
        gin[i] += g * wrow[i];
      }
    }
  }
  (void)ctx;
  std::vector<Tensor> grads;
  grads.push_back(std::move(grad_input));
  return grads;
}

}  // namespace mmlib::nn
