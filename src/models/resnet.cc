#include "models/builders.h"

namespace mmlib::models::internal {

namespace {

/// ResNet basic block (two 3x3 convolutions), used by ResNet-18.
int64_t BasicBlock(BuilderCtx* ctx, const std::string& name, int64_t input,
                   int64_t in_ch, int64_t out_ch, int64_t stride) {
  int64_t node = ConvBnRelu(ctx, name + ".conv1", input, in_ch, out_ch, 3,
                            stride, 1);
  node = ConvBn(ctx, name + ".conv2", node, out_ch, out_ch, 3, 1, 1);

  int64_t shortcut = input;
  if (stride != 1 || in_ch != out_ch) {
    shortcut = ConvBn(ctx, name + ".downsample", input, in_ch, out_ch, 1,
                      stride, 0);
  }
  int64_t add = ctx->model->AddNode(
      std::make_unique<nn::Add>(name + ".add", 2), {node, shortcut});
  return ctx->model->AddNode(std::make_unique<nn::ReLU>(name + ".relu"),
                             {add});
}

/// ResNet bottleneck block (1x1 -> 3x3 -> 1x1), used by ResNet-50/152.
int64_t BottleneckBlock(BuilderCtx* ctx, const std::string& name,
                        int64_t input, int64_t in_ch, int64_t width,
                        int64_t out_ch, int64_t stride) {
  int64_t node = ConvBnRelu(ctx, name + ".conv1", input, in_ch, width, 1, 1,
                            0);
  node = ConvBnRelu(ctx, name + ".conv2", node, width, width, 3, stride, 1);
  node = ConvBn(ctx, name + ".conv3", node, width, out_ch, 1, 1, 0);

  int64_t shortcut = input;
  if (stride != 1 || in_ch != out_ch) {
    shortcut = ConvBn(ctx, name + ".downsample", input, in_ch, out_ch, 1,
                      stride, 0);
  }
  int64_t add = ctx->model->AddNode(
      std::make_unique<nn::Add>(name + ".add", 2), {node, shortcut});
  return ctx->model->AddNode(std::make_unique<nn::ReLU>(name + ".relu"),
                             {add});
}

}  // namespace

Result<nn::Model> BuildResNet(const ModelConfig& config) {
  bool bottleneck = false;
  int blocks[4];
  switch (config.arch) {
    case Architecture::kResNet18:
      bottleneck = false;
      blocks[0] = 2, blocks[1] = 2, blocks[2] = 2, blocks[3] = 2;
      break;
    case Architecture::kResNet50:
      bottleneck = true;
      blocks[0] = 3, blocks[1] = 4, blocks[2] = 6, blocks[3] = 3;
      break;
    case Architecture::kResNet152:
      bottleneck = true;
      blocks[0] = 3, blocks[1] = 8, blocks[2] = 36, blocks[3] = 3;
      break;
    default:
      return Status::InvalidArgument("BuildResNet: not a ResNet architecture");
  }

  nn::Model model(std::string(ArchitectureName(config.arch)));
  Rng rng(config.init_seed);
  BuilderCtx ctx{&model, &rng, config.channel_divisor};

  const int64_t stem = ctx.Ch(64);
  int64_t node = ConvBnRelu(&ctx, "stem", nn::Model::kInputNode, 3, stem, 7,
                            2, 3);
  node = model.AddNode(std::make_unique<nn::MaxPool2d>("stem.pool", 3, 2, 1),
                       {node});

  const int64_t expansion = bottleneck ? 4 : 1;
  int64_t in_ch = stem;
  const int64_t stage_widths[4] = {ctx.Ch(64), ctx.Ch(128), ctx.Ch(256),
                                   ctx.Ch(512)};
  for (int stage = 0; stage < 4; ++stage) {
    const int64_t width = stage_widths[stage];
    const int64_t out_ch = width * expansion;
    for (int b = 0; b < blocks[stage]; ++b) {
      const int64_t stride = (b == 0 && stage > 0) ? 2 : 1;
      const std::string name =
          "layer" + std::to_string(stage + 1) + "." + std::to_string(b);
      if (bottleneck) {
        node = BottleneckBlock(&ctx, name, node, in_ch, width, out_ch,
                               stride);
      } else {
        node = BasicBlock(&ctx, name, node, in_ch, out_ch, stride);
      }
      in_ch = out_ch;
    }
  }

  node = model.AddNode(std::make_unique<nn::GlobalAvgPool>("avgpool"),
                       {node});
  model.AddNode(std::make_unique<nn::Linear>("fc", in_ch, config.num_classes,
                                             &rng),
                {node});
  return model;
}

}  // namespace mmlib::models::internal
