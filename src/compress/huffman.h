#pragma once

#include "util/bytes.h"
#include "util/result.h"

namespace mmlib {

/// Canonical byte-level Huffman coding.
///
/// Encodes a byte stream with a canonical Huffman code built from its
/// symbol frequencies. The header stores the 256 code lengths (4 bits
/// each); codes are limited to 15 bits. Used as the entropy stage of the
/// deflate-style Lz77HuffmanCodec.
namespace huffman {

/// Encodes `input`; output is self-contained (header + bitstream).
Result<Bytes> Encode(const Bytes& input);

/// Inverse of Encode. Fails with Corruption when the header claims more
/// than `max_output` bytes (corrupted sizes must not exhaust memory).
Result<Bytes> Decode(const Bytes& input,
                     size_t max_output = 1ULL << 35);

}  // namespace huffman

}  // namespace mmlib

