file(REMOVE_RECURSE
  "CMakeFiles/core_save_test.dir/core_save_test.cc.o"
  "CMakeFiles/core_save_test.dir/core_save_test.cc.o.d"
  "core_save_test"
  "core_save_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_save_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
