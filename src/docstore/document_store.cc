#include "docstore/document_store.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "check/validators.h"
#include "util/crash_point.h"
#include "util/fs.h"
#include "util/strings.h"

namespace mmlib::docstore {

namespace {

/// Suffix of persisted documents; only these count as stored data.
constexpr const char* kJsonSuffix = ".json";

/// Charge for a fixed-size control answer (an 8-byte ack or count).
constexpr uint64_t kScalarResponseBytes = sizeof(uint64_t);

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  return content;
}

/// Crash-safe document write (tmp + rename; partials cleaned up on error).
Status WriteWholeFile(const std::string& path, const std::string& content) {
  return util::AtomicWriteFile(
      path, reinterpret_cast<const uint8_t*>(content.data()), content.size());
}

Status ValidateDocName(const std::string& name, std::string_view what) {
  return check::ValidateResourceName(name, /*allow_dot=*/true, what);
}

size_t IdListBytes(const std::vector<std::string>& ids) {
  size_t bytes = 0;
  for (const std::string& id : ids) {
    bytes += id.size();
  }
  return bytes;
}

}  // namespace

Result<std::vector<std::string>> DocumentStore::FindByField(
    const std::string& collection, const std::string& key,
    const std::string& value) {
  MMLIB_ASSIGN_OR_RETURN(std::vector<std::string> ids, ListIds(collection));
  std::vector<std::string> matches;
  for (const std::string& id : ids) {
    MMLIB_ASSIGN_OR_RETURN(json::Value doc, Get(collection, id));
    const json::Value* member = doc.FindMember(key);
    if (member != nullptr && member->is_string() &&
        member->as_string() == value) {
      matches.push_back(id);
    }
  }
  return matches;
}

Result<Digest> DocumentStore::DocumentDigest(const std::string& collection,
                                             const std::string& id) {
  MMLIB_ASSIGN_OR_RETURN(json::Value doc, Get(collection, id));
  return Sha256::Hash(doc.Dump());
}

InMemoryDocumentStore::InMemoryDocumentStore() : id_generator_(0xd0c5) {}

Result<std::string> InMemoryDocumentStore::Insert(
    const std::string& collection, json::Value doc) {
  MMLIB_ASSIGN_OR_RETURN(std::string id, AllocateDocId(collection));
  MMLIB_RETURN_IF_ERROR(InsertWithId(collection, id, std::move(doc)));
  return id;
}

Result<std::string> InMemoryDocumentStore::AllocateDocId(
    const std::string& collection) {
  return id_generator_.Next(collection);
}

Status InMemoryDocumentStore::InsertWithId(const std::string& collection,
                                           const std::string& id,
                                           json::Value doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("documents must be JSON objects");
  }
  doc.Set("_id", id);
  collections_[collection][id] = doc.Dump();
  return Status::OK();
}

Result<json::Value> InMemoryDocumentStore::Get(const std::string& collection,
                                               const std::string& id) {
  auto coll_it = collections_.find(collection);
  if (coll_it == collections_.end()) {
    return Status::NotFound("no collection " + collection);
  }
  auto doc_it = coll_it->second.find(id);
  if (doc_it == coll_it->second.end()) {
    return Status::NotFound("no document " + id + " in " + collection);
  }
  return json::Parse(doc_it->second);
}

Status InMemoryDocumentStore::Delete(const std::string& collection,
                                     const std::string& id) {
  auto coll_it = collections_.find(collection);
  if (coll_it == collections_.end() || coll_it->second.erase(id) == 0) {
    return Status::NotFound("no document " + id + " in " + collection);
  }
  return Status::OK();
}

Result<std::vector<std::string>> InMemoryDocumentStore::ListIds(
    const std::string& collection) {
  std::vector<std::string> ids;
  auto coll_it = collections_.find(collection);
  if (coll_it != collections_.end()) {
    for (const auto& [id, text] : coll_it->second) {
      ids.push_back(id);
    }
  }
  return ids;
}

Result<std::vector<std::string>> InMemoryDocumentStore::ListCollections() {
  std::vector<std::string> names;
  for (const auto& [name, docs] : collections_) {
    if (!docs.empty()) {
      names.push_back(name);
    }
  }
  return names;  // std::map iterates in sorted key order
}

size_t InMemoryDocumentStore::TotalStoredBytes() const {
  size_t total = 0;
  for (const auto& [name, docs] : collections_) {
    for (const auto& [id, text] : docs) {
      total += text.size();
    }
  }
  return total;
}

size_t InMemoryDocumentStore::DocumentCount() const {
  size_t count = 0;
  for (const auto& [name, docs] : collections_) {
    count += docs.size();
  }
  return count;
}

PersistentDocumentStore::PersistentDocumentStore(std::string root)
    : root_(std::move(root)), id_generator_(0xd15c) {}

Result<std::unique_ptr<PersistentDocumentStore>> PersistentDocumentStore::Open(
    const std::string& root, persist::SaveJournal* journal) {
  std::error_code ec;
  std::filesystem::create_directories(root, ec);
  if (ec) {
    return Status::IoError("cannot create " + root + ": " + ec.message());
  }
  std::unique_ptr<PersistentDocumentStore> store(
      new PersistentDocumentStore(root));
  // Leftover temporaries are writes that died before their rename; they
  // were never visible as stored data, discard them.
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root, ec)) {
    if (EndsWith(entry.path().filename().string(), util::kTmpSuffix)) {
      std::error_code remove_ec;
      std::filesystem::remove(entry.path(), remove_ec);
    }
  }
  if (journal != nullptr) {
    MMLIB_RETURN_IF_ERROR(journal->Replay(
        persist::kJournalDocStore, [&store](const persist::JournalOp& op) {
          return store->Delete(op.collection, op.id);
        }));
  }
  return store;
}

Result<std::string> PersistentDocumentStore::PathFor(
    const std::string& collection, const std::string& id) const {
  MMLIB_RETURN_IF_ERROR(ValidateDocName(collection, "collection"));
  MMLIB_RETURN_IF_ERROR(ValidateDocName(id, "document id"));
  return root_ + "/" + collection + "/" + id + ".json";
}

Result<std::string> PersistentDocumentStore::Insert(
    const std::string& collection, json::Value doc) {
  MMLIB_ASSIGN_OR_RETURN(std::string id, AllocateDocId(collection));
  MMLIB_RETURN_IF_ERROR(InsertWithId(collection, id, std::move(doc)));
  return id;
}

Result<std::string> PersistentDocumentStore::AllocateDocId(
    const std::string& collection) {
  MMLIB_RETURN_IF_ERROR(ValidateDocName(collection, "collection"));
  std::string id = id_generator_.Next(collection);
  MMLIB_ASSIGN_OR_RETURN(std::string path, PathFor(collection, id));
  // A reopened store restarts the deterministic id stream at zero; skip
  // ids whose destination already exists instead of overwriting them.
  while (std::filesystem::exists(path)) {
    id = id_generator_.Next(collection);
    MMLIB_ASSIGN_OR_RETURN(path, PathFor(collection, id));
  }
  return id;
}

Status PersistentDocumentStore::InsertWithId(const std::string& collection,
                                             const std::string& id,
                                             json::Value doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("documents must be JSON objects");
  }
  MMLIB_RETURN_IF_ERROR(ValidateDocName(collection, "collection"));
  std::error_code ec;
  std::filesystem::create_directories(root_ + "/" + collection, ec);
  if (ec) {
    return Status::IoError("cannot create collection dir: " + ec.message());
  }
  MMLIB_ASSIGN_OR_RETURN(std::string path, PathFor(collection, id));
  doc.Set("_id", id);
  MMLIB_CRASH_POINT("docstore.insert");
  return WriteWholeFile(path, doc.Dump());
}

Result<json::Value> PersistentDocumentStore::Get(const std::string& collection,
                                                 const std::string& id) {
  MMLIB_ASSIGN_OR_RETURN(std::string path, PathFor(collection, id));
  MMLIB_ASSIGN_OR_RETURN(std::string content, ReadWholeFile(path));
  return json::Parse(content);
}

Status PersistentDocumentStore::Delete(const std::string& collection,
                                       const std::string& id) {
  MMLIB_ASSIGN_OR_RETURN(std::string path, PathFor(collection, id));
  return util::RemoveFileStrict(path,
                                "document " + id + " in " + collection);
}

Result<std::vector<std::string>> PersistentDocumentStore::ListIds(
    const std::string& collection) {
  std::vector<std::string> ids;
  MMLIB_RETURN_IF_ERROR(ValidateDocName(collection, "collection"));
  const std::string dir = root_ + "/" + collection;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string filename = entry.path().filename().string();
    if (EndsWith(filename, ".json")) {
      ids.push_back(filename.substr(0, filename.size() - 5));
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

Result<std::vector<std::string>> PersistentDocumentStore::ListCollections() {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(root_, ec)) {
    if (!entry.is_directory()) {
      continue;
    }
    // Only collections that currently hold documents count; an empty
    // directory is an artifact, not data, and must not skew anti-entropy.
    const std::string dir = entry.path().string();
    if (util::CountFilesWithSuffix(dir, kJsonSuffix) > 0) {
      names.push_back(entry.path().filename().string());
    }
  }
  if (ec) {
    return Status::IoError("cannot list " + root_ + ": " + ec.message());
  }
  std::sort(names.begin(), names.end());
  return names;
}

size_t PersistentDocumentStore::TotalStoredBytes() const {
  return util::TotalBytesWithSuffix(root_, kJsonSuffix, /*recursive=*/true);
}

size_t PersistentDocumentStore::DocumentCount() const {
  return util::CountFilesWithSuffix(root_, kJsonSuffix, /*recursive=*/true);
}

Result<std::string> RemoteDocumentStore::Insert(const std::string& collection,
                                                json::Value doc) {
  const size_t request_bytes = collection.size() + doc.Dump().size();
  simnet::Network::OpScope scope(network_, "doc.insert");
  return retrier_.Run([&]() -> Result<std::string> {
    // Request carries the document. A corrupted upload is malformed JSON at
    // the receiver and rejected before the backend mutates.
    simnet::TransferAttempt request = Attempt(request_bytes);
    MMLIB_RETURN_IF_ERROR(request.status);
    if (request.corrupted) {
      return Status::Unavailable("insert rejected: document corrupted in flight");
    }
    MMLIB_ASSIGN_OR_RETURN(std::string id, backend_->Insert(collection, doc));
    // Acknowledgement carrying the generated id; modeled reliable so a
    // completed insert is never retried into a duplicate.
    network_->Transfer(id.size());
    return id;
  });
}

Result<std::string> RemoteDocumentStore::AllocateDocId(
    const std::string& collection) {
  simnet::Network::OpScope scope(network_, "doc.alloc");
  return retrier_.Run([&]() -> Result<std::string> {
    // A lost request burns an id on the backend's generator; ids are never
    // reused, so a re-sent allocation is harmless.
    simnet::TransferAttempt request = Attempt(collection.size());
    MMLIB_RETURN_IF_ERROR(request.status);
    if (request.corrupted) {
      return Status::Unavailable("request corrupted in flight");
    }
    MMLIB_ASSIGN_OR_RETURN(std::string id,
                           backend_->AllocateDocId(collection));
    network_->Transfer(id.size());  // reliable acknowledgement with the id
    return id;
  });
}

Status RemoteDocumentStore::InsertWithId(const std::string& collection,
                                         const std::string& id,
                                         json::Value doc) {
  const size_t request_bytes =
      collection.size() + id.size() + doc.Dump().size();
  simnet::Network::OpScope scope(network_, "doc.insert");
  return retrier_.Run([&]() -> Status {
    // Writing a pre-allocated id is idempotent (same id, same document), so
    // unlike Insert a retried upload cannot create a duplicate.
    simnet::TransferAttempt request = Attempt(request_bytes);
    MMLIB_RETURN_IF_ERROR(request.status);
    if (request.corrupted) {
      return Status::Unavailable("insert rejected: document corrupted in flight");
    }
    MMLIB_RETURN_IF_ERROR(backend_->InsertWithId(collection, id, doc));
    network_->Transfer(kScalarResponseBytes);  // reliable acknowledgement
    return Status::OK();
  });
}

Result<json::Value> RemoteDocumentStore::Get(const std::string& collection,
                                             const std::string& id) {
  simnet::Network::OpScope scope(network_, "doc.get");
  return retrier_.Run([&]() -> Result<json::Value> {
    simnet::TransferAttempt request =
        Attempt(collection.size() + id.size());
    MMLIB_RETURN_IF_ERROR(request.status);
    if (request.corrupted) {
      return Status::Unavailable("request corrupted in flight");
    }
    MMLIB_ASSIGN_OR_RETURN(json::Value doc, backend_->Get(collection, id));
    simnet::TransferAttempt response =
        Attempt(doc.Dump().size());
    MMLIB_RETURN_IF_ERROR(response.status);
    if (response.corrupted) {
      // A damaged document no longer parses as JSON; the client detects the
      // malformed response and re-requests.
      return Status::Unavailable("response corrupted in flight");
    }
    return doc;
  });
}

Status RemoteDocumentStore::Delete(const std::string& collection,
                                   const std::string& id) {
  simnet::Network::OpScope scope(network_, "doc.delete");
  return retrier_.Run([&]() -> Status {
    simnet::TransferAttempt request =
        Attempt(collection.size() + id.size());
    MMLIB_RETURN_IF_ERROR(request.status);
    if (request.corrupted) {
      return Status::Unavailable("request corrupted in flight");
    }
    MMLIB_RETURN_IF_ERROR(backend_->Delete(collection, id));
    network_->Transfer(kScalarResponseBytes);  // reliable acknowledgement
    return Status::OK();
  });
}

Result<std::vector<std::string>> RemoteDocumentStore::ListIds(
    const std::string& collection) {
  simnet::Network::OpScope scope(network_, "doc.list");
  return retrier_.Run([&]() -> Result<std::vector<std::string>> {
    simnet::TransferAttempt request = Attempt(collection.size());
    MMLIB_RETURN_IF_ERROR(request.status);
    if (request.corrupted) {
      return Status::Unavailable("request corrupted in flight");
    }
    MMLIB_ASSIGN_OR_RETURN(std::vector<std::string> ids,
                           backend_->ListIds(collection));
    simnet::TransferAttempt response = Attempt(IdListBytes(ids));
    MMLIB_RETURN_IF_ERROR(response.status);
    if (response.corrupted) {
      return Status::Unavailable("response corrupted in flight");
    }
    return ids;
  });
}

Result<std::vector<std::string>> RemoteDocumentStore::FindByField(
    const std::string& collection, const std::string& key,
    const std::string& value) {
  // The query executes on the database host; only the matching ids travel.
  simnet::Network::OpScope scope(network_, "doc.find");
  return retrier_.Run([&]() -> Result<std::vector<std::string>> {
    simnet::TransferAttempt request = Attempt(
        collection.size() + key.size() + value.size());
    MMLIB_RETURN_IF_ERROR(request.status);
    if (request.corrupted) {
      return Status::Unavailable("request corrupted in flight");
    }
    MMLIB_ASSIGN_OR_RETURN(std::vector<std::string> ids,
                           backend_->FindByField(collection, key, value));
    simnet::TransferAttempt response = Attempt(IdListBytes(ids));
    MMLIB_RETURN_IF_ERROR(response.status);
    if (response.corrupted) {
      return Status::Unavailable("response corrupted in flight");
    }
    return ids;
  });
}

Result<std::vector<std::string>> RemoteDocumentStore::ListCollections() {
  simnet::Network::OpScope scope(network_, "doc.list");
  return retrier_.Run([&]() -> Result<std::vector<std::string>> {
    simnet::TransferAttempt request = Attempt(kScalarResponseBytes);
    MMLIB_RETURN_IF_ERROR(request.status);
    if (request.corrupted) {
      return Status::Unavailable("request corrupted in flight");
    }
    MMLIB_ASSIGN_OR_RETURN(std::vector<std::string> names,
                           backend_->ListCollections());
    simnet::TransferAttempt response = Attempt(IdListBytes(names));
    MMLIB_RETURN_IF_ERROR(response.status);
    if (response.corrupted) {
      return Status::Unavailable("response corrupted in flight");
    }
    return names;
  });
}

Result<Digest> RemoteDocumentStore::DocumentDigest(
    const std::string& collection, const std::string& id) {
  simnet::Network::OpScope scope(network_, "doc.digest");
  return retrier_.Run([&]() -> Result<Digest> {
    simnet::TransferAttempt request = Attempt(collection.size() + id.size());
    MMLIB_RETURN_IF_ERROR(request.status);
    if (request.corrupted) {
      return Status::Unavailable("request corrupted in flight");
    }
    // The server hashes where the document lives; only the 32-byte digest
    // travels. This is what makes anti-entropy probes cheap.
    MMLIB_ASSIGN_OR_RETURN(Digest digest,
                           backend_->DocumentDigest(collection, id));
    simnet::TransferAttempt response = Attempt(sizeof(digest.bytes));
    MMLIB_RETURN_IF_ERROR(response.status);
    if (response.corrupted) {
      return Status::Unavailable("response corrupted in flight");
    }
    return digest;
  });
}

size_t RemoteDocumentStore::TotalStoredBytes() const {
  // Stats queries feed the experiment's cost metering; charged as a
  // request/response pair but fault-free so a flaky link cannot poison
  // measurements with failed metric reads.
  network_->Transfer(kScalarResponseBytes);
  network_->Transfer(kScalarResponseBytes);
  return backend_->TotalStoredBytes();
}

size_t RemoteDocumentStore::DocumentCount() const {
  network_->Transfer(kScalarResponseBytes);
  network_->Transfer(kScalarResponseBytes);
  return backend_->DocumentCount();
}

}  // namespace mmlib::docstore
