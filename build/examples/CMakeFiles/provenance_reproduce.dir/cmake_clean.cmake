file(REMOVE_RECURSE
  "CMakeFiles/provenance_reproduce.dir/provenance_reproduce.cpp.o"
  "CMakeFiles/provenance_reproduce.dir/provenance_reproduce.cpp.o.d"
  "provenance_reproduce"
  "provenance_reproduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provenance_reproduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
