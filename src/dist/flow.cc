#include "dist/flow.h"

#include <algorithm>

#include "collective/gradient_sync.h"
#include "core/adaptive.h"
#include "core/baseline.h"
#include "core/model_code.h"
#include "core/param_update.h"
#include "core/provenance.h"
#include "env/environment.h"
#include "util/crash_point.h"

namespace mmlib::dist {

std::string_view ApproachName(ApproachKind kind) {
  switch (kind) {
    case ApproachKind::kBaseline:
      return "BA";
    case ApproachKind::kParamUpdate:
      return "PUA";
    case ApproachKind::kProvenance:
      return "MPA";
    case ApproachKind::kAdaptive:
      return "Adaptive";
  }
  return "unknown";
}

std::string_view RelationName(ModelRelation relation) {
  switch (relation) {
    case ModelRelation::kFullyUpdated:
      return "fully updated";
    case ModelRelation::kPartiallyUpdated:
      return "partially updated";
  }
  return "unknown";
}

std::vector<std::string> FlowResult::Labels() const {
  std::vector<std::string> labels;
  for (const UseCaseRecord& record : records) {
    if (std::find(labels.begin(), labels.end(), record.label) ==
        labels.end()) {
      labels.push_back(record.label);
    }
  }
  return labels;
}

namespace {

double Median(std::vector<double> values) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) {
    return values[mid];
  }
  return (values[mid - 1] + values[mid]) / 2.0;
}

/// Deterministically perturbs all trainable parameters — the simulated
/// stand-in for a training run (TrainingMode::kSimulated).
void SimulateTrainingUpdate(nn::Model* model, uint64_t seed) {
  Rng rng(seed);
  for (size_t i = 0; i < model->node_count(); ++i) {
    for (nn::Param& param : model->layer(i)->params()) {
      if (!param.trainable || param.is_buffer) {
        continue;
      }
      float* values = param.value.data();
      for (int64_t k = 0; k < param.value.numel(); ++k) {
        values[k] += rng.NextGaussian() * 0.01f;
      }
    }
  }
}

}  // namespace

double FlowResult::MedianTts(const std::string& label) const {
  std::vector<double> values;
  for (const UseCaseRecord& record : records) {
    if (record.label == label) {
      values.push_back(record.tts_seconds);
    }
  }
  return Median(std::move(values));
}

double FlowResult::MedianTtr(const std::string& label) const {
  std::vector<double> values;
  for (const UseCaseRecord& record : records) {
    if (record.label == label && record.recovered) {
      values.push_back(record.ttr_seconds);
    }
  }
  return Median(std::move(values));
}

int64_t FlowResult::MedianStorage(const std::string& label) const {
  std::vector<double> values;
  for (const UseCaseRecord& record : records) {
    if (record.label == label) {
      values.push_back(static_cast<double>(record.storage_bytes));
    }
  }
  return static_cast<int64_t>(Median(std::move(values)));
}

int64_t FlowResult::TotalStorage() const {
  int64_t total = 0;
  for (const UseCaseRecord& record : records) {
    total += record.storage_bytes;
  }
  return total;
}

uint64_t FlowResult::TotalCrashes() const {
  uint64_t total = 0;
  for (const NodeCounters& counters : node_counters) {
    total += counters.crashes;
  }
  return total;
}

uint64_t FlowResult::TotalRestarts() const {
  uint64_t total = 0;
  for (const NodeCounters& counters : node_counters) {
    total += counters.restarts;
  }
  return total;
}

uint64_t FlowResult::TotalRetries() const {
  uint64_t total = 0;
  for (const NodeCounters& counters : node_counters) {
    total += counters.retries;
  }
  return total;
}

uint64_t FlowResult::TotalRetrainedSteps() const {
  uint64_t total = 0;
  for (const NodeCounters& counters : node_counters) {
    total += counters.retrained_steps;
  }
  return total;
}

EvaluationFlow::EvaluationFlow(FlowConfig config,
                               core::StorageBackends backends)
    : config_(std::move(config)), backends_(backends) {}

int EvaluationFlow::ExpectedModelCount() const {
  return 2 + config_.num_nodes * 2 * config_.u3_iterations;
}

Result<std::unique_ptr<core::SaveService>> EvaluationFlow::MakeService()
    const {
  core::ProvenanceOptions provenance_options;
  provenance_options.dataset_codec = config_.dataset_codec;
  switch (config_.approach) {
    case ApproachKind::kBaseline:
      return std::unique_ptr<core::SaveService>(
          new core::BaselineSaveService(backends_));
    case ApproachKind::kParamUpdate:
      return std::unique_ptr<core::SaveService>(
          new core::ParamUpdateSaveService(backends_));
    case ApproachKind::kProvenance:
      return std::unique_ptr<core::SaveService>(
          new core::ProvenanceSaveService(backends_, provenance_options));
    case ApproachKind::kAdaptive: {
      core::AdaptiveOptions adaptive_options;
      adaptive_options.provenance = provenance_options;
      return std::unique_ptr<core::SaveService>(
          new core::AdaptiveSaveService(backends_, adaptive_options));
    }
  }
  return Status::InvalidArgument("unknown approach");
}

Result<nn::Model> EvaluationFlow::CloneModel(const nn::Model& source) const {
  MMLIB_ASSIGN_OR_RETURN(nn::Model copy,
                         models::BuildModel(config_.model));
  MMLIB_RETURN_IF_ERROR(copy.LoadParams(source.SerializeParams()));
  MMLIB_RETURN_IF_ERROR(ApplyRelation(&copy));
  return copy;
}

Status EvaluationFlow::ApplyRelation(nn::Model* model) const {
  if (config_.relation == ModelRelation::kPartiallyUpdated) {
    models::ApplyPartialUpdateFreeze(model);
  } else {
    model->SetTrainableAll(true);
  }
  return Status::OK();
}

Status EvaluationFlow::UpdateModel(nn::Model* model,
                                   core::TrainService* service,
                                   uint64_t update_seed,
                                   core::ProvenanceData* provenance) const {
  if (provenance != nullptr) {
    MMLIB_ASSIGN_OR_RETURN(*provenance, service->CaptureProvenance());
  }
  if (config_.training_mode == TrainingMode::kReal) {
    MMLIB_RETURN_IF_ERROR(service
                              ->Train(model, /*deterministic=*/true,
                                      /*scheduler_seed=*/0)
                              .status());
  } else {
    SimulateTrainingUpdate(model, update_seed);
  }
  return Status::OK();
}

Result<FlowResult> EvaluationFlow::Run() {
  if (config_.approach == ApproachKind::kProvenance &&
      config_.training_mode == TrainingMode::kSimulated &&
      config_.recover_models && config_.recover_options.verify_checksum) {
    return Status::InvalidArgument(
        "provenance recovery with simulated training cannot verify "
        "checksums; disable recovery or verification, or use real training");
  }

  if (!config_.crash_schedule.empty()) {
    if (config_.training_mode != TrainingMode::kReal) {
      return Status::InvalidArgument(
          "crash_schedule requires TrainingMode::kReal");
    }
    if (config_.checkpoint_every_steps < 1) {
      return Status::InvalidArgument(
          "crash_schedule requires checkpoint_every_steps >= 1");
    }
    for (const NodeCrashEvent& event : config_.crash_schedule) {
      if (event.node < 0 || event.node >= config_.num_nodes ||
          event.phase < 1 || event.phase > 2 || event.iteration < 1 ||
          event.iteration > config_.u3_iterations || event.at_step < 1) {
        return Status::InvalidArgument("crash event out of range");
      }
      if (event.site != "train.step") {
        if (event.site != "collective.send" &&
            event.site != "collective.reduce" &&
            event.site != "collective.commit") {
          return Status::InvalidArgument("unknown crash site " + event.site);
        }
        if (config_.data_parallel_workers < 1) {
          return Status::InvalidArgument(
              "collective crash sites require data_parallel_workers >= 1");
        }
        if (event.worker < 0 ||
            event.worker >= config_.data_parallel_workers) {
          return Status::InvalidArgument("crash event worker out of range");
        }
      }
    }
  }
  if (config_.data_parallel_workers > 0) {
    if (config_.training_mode != TrainingMode::kReal) {
      return Status::InvalidArgument(
          "data_parallel_workers requires TrainingMode::kReal");
    }
    if (backends_.network == nullptr) {
      return Status::InvalidArgument(
          "data_parallel_workers requires a simnet network");
    }
  }

  MMLIB_ASSIGN_OR_RETURN(std::unique_ptr<core::SaveService> service,
                         MakeService());
  const env::EnvironmentInfo environment = env::CollectEnvironment();
  const json::Value code = core::CodeDescriptorFor(config_.model);

  // Datasets (Table 1). All nodes of an experiment train on the same U3
  // dataset, as in the paper. Materialized up front: per-save archiving
  // then measures byte handling, not procedural generation (the paper's
  // datasets are files on disk).
  data::SyntheticImageDataset u3_source(config_.u3_dataset,
                                        config_.dataset_divisor);
  data::SyntheticImageDataset u2_source(config_.u2_dataset,
                                        config_.dataset_divisor);
  const std::unique_ptr<data::InMemoryDataset> u3_dataset_owner =
      data::Materialize(u3_source);
  const std::unique_ptr<data::InMemoryDataset> u2_dataset_owner =
      data::Materialize(u2_source);
  const data::Dataset& u3_dataset = *u3_dataset_owner;
  const data::Dataset& u2_dataset = *u2_dataset_owner;

  // Training configuration, aligned with the model configuration.
  core::TrainConfig base_train = config_.train;
  base_train.loader.image_size = config_.model.image_size;
  base_train.loader.num_classes = config_.model.num_classes;

  FlowResult result;
  result.node_counters.assign(static_cast<size_t>(config_.num_nodes),
                              FlowResult::NodeCounters{});
  if (backends_.network != nullptr) {
    backends_.network->ConfigureNodes(
        static_cast<size_t>(config_.num_nodes));
    // Per-flow fault accounting: repeated flows over one network must not
    // report each other's drops/timeouts (clock, rng, and plans keep going).
    backends_.network->ResetFaultCounters();
  }
  // Degraded-mode plumbing: present when the flow writes through the
  // replicated stores instead of single remote backends.
  auto* replicated_files =
      dynamic_cast<repl::ReplicatedFileStore*>(backends_.files);
  auto* replicated_docs =
      dynamic_cast<repl::ReplicatedDocumentStore*>(backends_.docs);
  std::unique_ptr<repl::Scrubber> scrubber;
  if (config_.scrub_every_iterations > 0 &&
      (replicated_files != nullptr || replicated_docs != nullptr) &&
      backends_.network != nullptr) {
    scrubber = std::make_unique<repl::Scrubber>(
        replicated_files, replicated_docs, backends_.network);
  }
  // Data-parallel ring: one session spans the whole run, so worker
  // membership (losses are permanent) and robustness counters accumulate
  // across updates. Updates are numbered in execution order; a crash
  // recovery re-enters the interrupted update under the same number, so
  // membership keyed on (update, step) replays identically.
  std::unique_ptr<collective::RingSession> ring_session;
  std::unique_ptr<collective::GradientSynchronizer> gradient_sync;
  if (config_.data_parallel_workers > 0) {
    collective::RingOptions ring_options = config_.ring;
    if (ring_options.step_compute_seconds == 0.0) {
      ring_options.step_compute_seconds = config_.step_compute_seconds;
    }
    ring_session = std::make_unique<collective::RingSession>(
        static_cast<size_t>(config_.data_parallel_workers), ring_options,
        backends_.network);
    gradient_sync =
        std::make_unique<collective::GradientSynchronizer>(ring_session.get());
  }
  int64_t next_update = 0;
  int completed_u3_iterations = 0;
  std::unique_ptr<core::CheckpointManager> checkpoints;
  if (config_.checkpoint_every_steps > 0) {
    core::CheckpointOptions checkpoint_options;
    checkpoint_options.every_steps = config_.checkpoint_every_steps;
    checkpoint_options.async_write = config_.async_checkpoints;
    checkpoints = std::make_unique<core::CheckpointManager>(
        backends_, checkpoint_options);
  }
  // Retries are attributed to a node by differencing the remote stores'
  // cumulative retry counters around its iteration.
  auto storage_retries = [&]() -> uint64_t {
    uint64_t total = 0;
    if (auto* files =
            dynamic_cast<filestore::RemoteFileStore*>(backends_.files)) {
      total += files->retry_count();
    }
    if (auto* docs =
            dynamic_cast<docstore::RemoteDocumentStore*>(backends_.docs)) {
      total += docs->retry_count();
    }
    if (replicated_files != nullptr) {
      total += replicated_files->TransportRetryCount();
    }
    if (replicated_docs != nullptr) {
      total += replicated_docs->TransportRetryCount();
    }
    return total;
  };

  auto record_save = [&](const std::string& label, int node,
                         const core::SaveResult& save) {
    UseCaseRecord record;
    record.label = label;
    record.node = node;
    record.model_id = save.model_id;
    record.tts_seconds = save.tts_seconds;
    record.storage_bytes = save.storage_bytes;
    result.records.push_back(record);
  };

  // --- U1: develop the initial model on the server and distribute it. ---
  MMLIB_ASSIGN_OR_RETURN(nn::Model server_model,
                         models::BuildModel(config_.model));
  MMLIB_RETURN_IF_ERROR(ApplyRelation(&server_model));

  core::SaveRequest u1_request;
  u1_request.model = &server_model;
  u1_request.code = code;
  u1_request.environment = &environment;
  MMLIB_ASSIGN_OR_RETURN(core::SaveResult u1_save,
                         service->SaveModel(u1_request));
  record_save("U1", /*node=*/-1, u1_save);

  struct NodeState {
    nn::Model model{""};
    std::unique_ptr<core::ImageTrainService> service;
    std::string base_id;
    core::TrainConfig train;
  };
  std::vector<NodeState> nodes(config_.num_nodes);
  for (int n = 0; n < config_.num_nodes; ++n) {
    MMLIB_ASSIGN_OR_RETURN(nodes[n].model, CloneModel(server_model));
    nodes[n].base_id = u1_save.model_id;
  }

  // Shared setup of a freshly built node service (phase start and
  // post-crash rebuild). In data-parallel mode the ring session charges
  // each step's compute share itself (slowest cohort member), so the
  // service-side per-step charge is zeroed to avoid double billing.
  auto configure_node_service = [&](core::ImageTrainService* node_service) {
    node_service->set_step_compute_seconds(
        gradient_sync != nullptr ? 0.0 : config_.step_compute_seconds);
    if (gradient_sync != nullptr) {
      node_service->set_step_sync_hook(
          [sync = gradient_sync.get()](nn::Model* model, int64_t step) {
            return sync->Sync(model, step);
          });
    }
  };

  auto run_phase = [&](int phase) -> Status {
    for (int n = 0; n < config_.num_nodes; ++n) {
      // Fresh train service per node and phase: the deployed model is new,
      // so optimizer state starts empty and then carries across the phase's
      // iterations (exercising the MPA's state files).
      core::TrainConfig node_train = base_train;
      node_train.seed = base_train.seed + 7919ULL * (n + 1) + 101ULL * phase;
      node_train.loader.seed = node_train.seed;
      nodes[n].train = node_train;
      nodes[n].service = std::make_unique<core::ImageTrainService>(
          &u3_dataset, node_train);
      configure_node_service(nodes[n].service.get());
    }
    for (int iter = 1; iter <= config_.u3_iterations; ++iter) {
      for (int n = 0; n < config_.num_nodes; ++n) {
        NodeState& node = nodes[n];
        const uint64_t retries_before = storage_retries();
        const std::string run_id = "ckpt-p" + std::to_string(phase) + "-i" +
                                   std::to_string(iter) + "-n" +
                                   std::to_string(n);
        if (checkpoints != nullptr) {
          node.service->set_checkpoints(checkpoints.get(), run_id);
        }
        const NodeCrashEvent* event = nullptr;
        for (const NodeCrashEvent& candidate : config_.crash_schedule) {
          if (candidate.phase == phase && candidate.iteration == iter &&
              candidate.node == n) {
            event = &candidate;
            break;
          }
        }
        core::ProvenanceData provenance;
        const uint64_t update_seed =
            0xdead0000ULL + phase * 1000003ULL + iter * 7919ULL + n;
        // Update numbering is the serial execution order, so it is
        // identical across runs and worker counts; a crash recovery below
        // re-enters this same index.
        const int64_t update_index = ++next_update;
        if (ring_session != nullptr) {
          ring_session->BeginUpdate(update_index);
        }
        const bool collective_crash =
            event != nullptr && event->site != "train.step";
        bool crashed = false;
        if (event == nullptr) {
          MMLIB_RETURN_IF_ERROR(UpdateModel(&node.model, node.service.get(),
                                            update_seed, &provenance));
        } else {
          if (collective_crash) {
            ring_session->ArmWorkerCrash(event->site, update_index,
                                         event->at_step,
                                         static_cast<size_t>(event->worker));
          } else {
            util::CrashPoint::Arm(event->site,
                                  static_cast<uint64_t>(event->at_step));
          }
          try {
            MMLIB_RETURN_IF_ERROR(UpdateModel(&node.model,
                                              node.service.get(),
                                              update_seed, &provenance));
          } catch (const util::CrashException&) {
            crashed = true;
          }
          if (!crashed) {
            // The update finished before step at_step was reached (short
            // runs); the node survives.
            util::CrashPoint::Disarm();
          }
        }
        if (crashed) {
          util::CrashPoint::ResetAfterCrash();
          if (checkpoints != nullptr) {
            // The kill raced any background checkpoint save; let it finish
            // (a kill lands between background I/O operations, and the
            // serial worker makes "just after the save" the deterministic
            // interleaving) and drop deferred outcomes — this node is dead.
            checkpoints->FinishInFlight();
          }
          FlowResult::NodeCounters& counters = result.node_counters[n];
          ++counters.crashes;
          if (backends_.network != nullptr) {
            if (collective_crash) {
              // A mid-all-reduce kill takes down one ring worker, not the
              // node's storage identity: charge the worker's crash/restart
              // lifecycle on the collective side of the network.
              MMLIB_RETURN_IF_ERROR(backends_.network->CrashWorker(
                  static_cast<size_t>(event->worker)));
              MMLIB_RETURN_IF_ERROR(backends_.network->RestartWorker(
                  static_cast<size_t>(event->worker)));
            } else {
              MMLIB_RETURN_IF_ERROR(backends_.network->CrashNode(n));
              MMLIB_RETURN_IF_ERROR(backends_.network->RestartNode(n));
            }
          }
          ++counters.restarts;
          // The restarted node lost all in-memory state: recover the last
          // durably saved base model, rebuild the train service from
          // configuration, and continue the interrupted update from its
          // latest checkpoint. The provenance captured before the update
          // still describes it — Resume lands bit-identically on the
          // uninterrupted result.
          core::ModelRecoverer recoverer(backends_);
          MMLIB_ASSIGN_OR_RETURN(
              core::RecoveredModel recovered,
              recoverer.Recover(node.base_id, config_.recover_options));
          node.model = std::move(recovered.model);
          MMLIB_RETURN_IF_ERROR(ApplyRelation(&node.model));
          node.service = std::make_unique<core::ImageTrainService>(
              &u3_dataset, node.train);
          node.service->set_checkpoints(checkpoints.get(), run_id);
          configure_node_service(node.service.get());
          if (ring_session != nullptr) {
            // Re-enter the interrupted update: membership keyed on
            // (update, step) replays identically, and the restarted worker
            // pulls a parameter snapshot before rejoining the ring at the
            // step barrier.
            ring_session->BeginUpdate(update_index);
            if (collective_crash) {
              MMLIB_RETURN_IF_ERROR(ring_session->RejoinWorker(
                  static_cast<size_t>(event->worker),
                  static_cast<uint64_t>(node.model.ParamByteSize())));
            }
          }
          MMLIB_RETURN_IF_ERROR(node.service->Resume(&node.model).status());
          counters.retrained_steps += static_cast<uint64_t>(
              (event->at_step - 1) - node.service->resumed_from_step());
        }
        core::SaveRequest request;
        request.model = &node.model;
        request.code = code;
        request.environment = &environment;
        request.base_model_id = node.base_id;
        request.provenance = &provenance;
        MMLIB_ASSIGN_OR_RETURN(core::SaveResult save,
                               service->SaveModel(request));
        node.base_id = save.model_id;
        record_save("U3-" + std::to_string(phase) + "-" +
                        std::to_string(iter),
                    n, save);
        if (checkpoints != nullptr) {
          // The durable save supersedes the iteration's checkpoints.
          MMLIB_RETURN_IF_ERROR(checkpoints->DeleteRun(run_id));
        }
        result.node_counters[n].retries += storage_retries() - retries_before;
      }
      ++completed_u3_iterations;
      if (scrubber != nullptr &&
          completed_u3_iterations % config_.scrub_every_iterations == 0) {
        MMLIB_RETURN_IF_ERROR(scrubber->ScrubOnce().status());
      }
    }
    return Status::OK();
  };

  // --- Phase 1: node-local updates (U3-1-*). ---
  MMLIB_RETURN_IF_ERROR(run_phase(1));

  // --- U2: the server improves the initial model and deploys the update.
  core::TrainConfig server_train = base_train;
  server_train.seed = base_train.seed + 424243ULL;
  server_train.loader.seed = server_train.seed;
  core::ImageTrainService server_service(&u2_dataset, server_train);
  core::ProvenanceData u2_provenance;
  MMLIB_RETURN_IF_ERROR(UpdateModel(&server_model, &server_service,
                                    0xbeef0001ULL, &u2_provenance));
  core::SaveRequest u2_request;
  u2_request.model = &server_model;
  u2_request.code = code;
  u2_request.environment = &environment;
  u2_request.base_model_id = u1_save.model_id;
  u2_request.provenance = &u2_provenance;
  MMLIB_ASSIGN_OR_RETURN(core::SaveResult u2_save,
                         service->SaveModel(u2_request));
  record_save("U2", /*node=*/-1, u2_save);

  for (int n = 0; n < config_.num_nodes; ++n) {
    MMLIB_ASSIGN_OR_RETURN(nodes[n].model, CloneModel(server_model));
    nodes[n].base_id = u2_save.model_id;
  }

  // --- Phase 2: node-local updates on the deployed update (U3-2-*). ---
  MMLIB_RETURN_IF_ERROR(run_phase(2));

  // A last anti-entropy pass before recovery, so U4 measures reads over a
  // store that background repair has had a chance to heal.
  if (scrubber != nullptr) {
    MMLIB_RETURN_IF_ERROR(scrubber->ScrubOnce().status());
  }

  // --- U4: recover every saved model and measure TTR. ---
  if (config_.recover_models) {
    core::ModelRecoverer recoverer(backends_);
    for (UseCaseRecord& record : result.records) {
      core::CostMeter meter(backends_);
      MMLIB_ASSIGN_OR_RETURN(
          core::RecoveredModel recovered,
          recoverer.Recover(record.model_id, config_.recover_options));
      record.ttr_seconds = meter.ElapsedSeconds();
      record.ttr_breakdown = recovered.breakdown;
      record.recovered = true;
    }
  }

  // --- Degraded-mode report: which replicas the run leaned on, and what
  // the transport injected, attributed per operation label. ---
  size_t replica_count = 0;
  if (replicated_files != nullptr) {
    replica_count = replicated_files->replica_count();
  }
  if (replicated_docs != nullptr) {
    replica_count = std::max(replica_count, replicated_docs->replica_count());
  }
  result.replica_counters.assign(replica_count, repl::ReplicaCounters{});
  for (size_t r = 0; r < replica_count; ++r) {
    repl::ReplicaCounters& combined = result.replica_counters[r];
    if (replicated_files != nullptr && r < replicated_files->replica_count()) {
      const repl::ReplicaCounters& c = replicated_files->replica_counters(r);
      combined.read_fallbacks += c.read_fallbacks;
      combined.read_repairs += c.read_repairs;
      combined.write_skips += c.write_skips;
      combined.scrub_repairs += c.scrub_repairs;
    }
    if (replicated_docs != nullptr && r < replicated_docs->replica_count()) {
      const repl::ReplicaCounters& c = replicated_docs->replica_counters(r);
      combined.read_fallbacks += c.read_fallbacks;
      combined.read_repairs += c.read_repairs;
      combined.write_skips += c.write_skips;
      combined.scrub_repairs += c.scrub_repairs;
    }
  }
  if (scrubber != nullptr) {
    result.scrub = scrubber->lifetime();
  }
  if (replicated_files != nullptr) {
    result.deadline_exhausted += replicated_files->DeadlineExhaustedCount();
  }
  if (replicated_docs != nullptr) {
    result.deadline_exhausted += replicated_docs->DeadlineExhaustedCount();
  }
  if (backends_.network != nullptr) {
    result.op_faults = backends_.network->PerOpFaultCounters();
  }
  if (ring_session != nullptr) {
    result.collective = ring_session->report();
  }

  return result;
}

}  // namespace mmlib::dist
