#include "core/evaluate.h"

#include "nn/loss.h"

namespace mmlib::core {

Result<EvaluationResult> EvaluateModel(nn::Model* model,
                                       const data::DataLoader& loader,
                                       nn::ExecutionContext* ctx,
                                       int64_t max_batches) {
  const bool was_training = ctx->training();
  ctx->set_training(false);

  EvaluationResult result;
  double weighted_loss = 0.0;
  double weighted_accuracy = 0.0;
  size_t batches = loader.BatchesPerEpoch();
  if (max_batches >= 0) {
    batches = std::min(batches, static_cast<size_t>(max_batches));
  }
  auto run = [&]() -> Status {
    for (size_t b = 0; b < batches; ++b) {
      MMLIB_ASSIGN_OR_RETURN(data::Batch batch, loader.GetBatch(b));
      MMLIB_ASSIGN_OR_RETURN(Tensor logits,
                             model->Forward(batch.images, ctx));
      MMLIB_ASSIGN_OR_RETURN(nn::LossResult loss,
                             nn::SoftmaxCrossEntropy(logits, batch.labels));
      MMLIB_ASSIGN_OR_RETURN(float accuracy,
                             nn::Accuracy(logits, batch.labels));
      const size_t n = batch.labels.size();
      weighted_loss += static_cast<double>(loss.loss) * n;
      weighted_accuracy += static_cast<double>(accuracy) * n;
      result.sample_count += n;
    }
    return Status::OK();
  };
  const Status status = run();
  ctx->set_training(was_training);
  MMLIB_RETURN_IF_ERROR(status);

  if (result.sample_count > 0) {
    weighted_loss /= static_cast<double>(result.sample_count);
    weighted_accuracy /= static_cast<double>(result.sample_count);
  }
  result.mean_loss = weighted_loss;
  result.accuracy = weighted_accuracy;
  return result;
}

}  // namespace mmlib::core
