/// Reproduces paper Figure 10: median time-to-save (TTS) across use cases
/// and approaches. Panels follow the paper: (a) MobileNetV2 fully updated,
/// (b) MobileNetV2 partially updated, (c) ResNet-152 partially updated.
/// All U3 models are trained on CO-512.
#include <cstdio>

#include "bench/bench_common.h"

using namespace mmlib;
using namespace mmlib::bench;
using namespace mmlib::dist;

namespace {

constexpr int kRuns = 5;  // median of five runs, as in the paper

void Panel(const char* panel_id, models::Architecture arch,
           ModelRelation relation) {
  std::printf("--- Figure 10(%s): %s, %s versions, CO-512 ---\n", panel_id,
              std::string(models::ArchitectureName(arch)).c_str(),
              std::string(RelationName(relation)).c_str());

  std::vector<std::string> headers = {"use case"};
  // results[approach][run]
  std::vector<std::vector<FlowResult>> results;
  for (ApproachKind approach : {ApproachKind::kBaseline,
                                ApproachKind::kParamUpdate,
                                ApproachKind::kProvenance}) {
    headers.push_back(std::string(ApproachName(approach)));
    std::vector<FlowResult> runs;
    for (int run = 0; run < kRuns; ++run) {
      FlowConfig config;
      config.approach = approach;
      config.model = StorageScaleModel(arch);
      config.relation = relation;
      config.u3_dataset = data::PaperDatasetId::kCocoOutdoor512;
      config.dataset_divisor = MatchedDatasetDivisor(config.model);
      config.training_mode = TrainingMode::kSimulated;
      config.recover_models = false;
      runs.push_back(RunFlowRemote(config));
    }
    results.push_back(std::move(runs));
  }

  auto median_tts = [](const std::vector<FlowResult>& runs,
                       const std::string& label) {
    std::vector<double> values;
    for (const FlowResult& run : runs) {
      values.push_back(run.MedianTts(label));
    }
    std::sort(values.begin(), values.end());
    return values[values.size() / 2];
  };

  TablePrinter table(headers);
  for (const std::string& label : results[0][0].Labels()) {
    if (label == "U2") {
      continue;  // excluded from comparison plots, as in the paper
    }
    std::vector<std::string> row = {label};
    for (const auto& runs : results) {
      row.push_back(Millis(median_tts(runs, label)));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  double ba = 0;
  double pua = 0;
  double mpa = 0;
  int count = 0;
  for (const std::string& label : results[0][0].Labels()) {
    if (label == "U1" || label == "U2") {
      continue;
    }
    ba += median_tts(results[0], label);
    pua += median_tts(results[1], label);
    mpa += median_tts(results[2], label);
    ++count;
  }
  std::printf("mean U3 TTS vs BA:  PUA %s   MPA %s\n\n",
              Pct(pua / ba - 1.0).c_str(), Pct(mpa / ba - 1.0).c_str());
}

}  // namespace

int main() {
  PrintHeader(
      "Figure 10", "Median time-to-save (TTS) across approaches",
      "Paper headline numbers: PUA beats BA by up to 28.5% (MobileNetV2)\n"
      "and 51.7% (ResNet-152) for partially updated versions; MPA can beat\n"
      "both by up to 15.8% when its payload is small, and loses badly when\n"
      "the dataset dominates.");
  Panel("a", models::Architecture::kMobileNetV2,
        ModelRelation::kFullyUpdated);
  Panel("b", models::Architecture::kMobileNetV2,
        ModelRelation::kPartiallyUpdated);
  Panel("c", models::Architecture::kResNet152,
        ModelRelation::kPartiallyUpdated);
  return 0;
}
