#include "serve/core_backend.h"

#include "core/types.h"
#include "simnet/arrivals.h"

namespace mmlib::serve {
namespace {

StatusCode CodeOf(const Status& status) {
  return status.ok() ? StatusCode::kOk : status.code();
}

}  // namespace

CoreBackend::CoreBackend(const CoreBackendContext& context)
    : context_(context) {
  core::ServeHook hook = [this](const core::ServeOpReport& report) {
    ++hook_reports_;
    if (report.outcome != StatusCode::kOk) {
      ++hook_failures_;
    }
  };
  if (context_.save_service != nullptr) {
    context_.save_service->set_serve_hook(hook);
  }
  if (context_.recoverer != nullptr) {
    context_.recoverer->set_serve_hook(hook);
  }
  if (context_.files != nullptr) {
    base_hedged_reads_ = context_.files->hedged_read_count();
    base_hedge_wins_ = context_.files->hedge_win_count();
  }
}

uint64_t CoreBackend::hedged_reads() const {
  return context_.files != nullptr
             ? context_.files->hedged_read_count() - base_hedged_reads_
             : 0;
}

uint64_t CoreBackend::hedge_wins() const {
  return context_.files != nullptr
             ? context_.files->hedge_win_count() - base_hedge_wins_
             : 0;
}

BackendOutcome CoreBackend::Execute(const Request& request, size_t batch_size,
                                    double now_seconds) {
  (void)now_seconds;
  // Propagate the client's absolute deadline into every store client this
  // op touches: their Retriers stop retrying once it has passed.
  simnet::Network::DeadlineScope deadline(context_.network,
                                          request.deadline_seconds);
  const double start = context_.network != nullptr
                           ? context_.network->TotalTransferSeconds()
                           : 0.0;
  BackendOutcome outcome;
  switch (request.kind) {
    case RequestKind::kSave:
      outcome = ExecuteSave(request);
      break;
    case RequestKind::kRecover:
      outcome = ExecuteRecover(request);
      break;
    case RequestKind::kProbe:
      outcome = ExecuteProbe(request);
      break;
    case RequestKind::kInference:
      outcome = ExecuteInference(request, batch_size);
      break;
  }
  if (context_.network != nullptr) {
    outcome.service_seconds +=
        context_.network->TotalTransferSeconds() - start;
  }
  return outcome;
}

BackendOutcome CoreBackend::ExecuteSave(const Request& request) {
  (void)request;
  BackendOutcome outcome;
  core::SaveRequest save;
  save.model = context_.model;
  save.code = context_.code;
  save.environment = context_.environment;
  auto result = context_.save_service->SaveModel(save);
  outcome.code = CodeOf(result.status());
  if (result.ok() && result.value().storage_bytes > 0) {
    outcome.bytes = static_cast<uint64_t>(result.value().storage_bytes);
  }
  return outcome;
}

BackendOutcome CoreBackend::ExecuteRecover(const Request& request) {
  BackendOutcome outcome;
  if (context_.model_ids.empty()) {
    outcome.code = StatusCode::kNotFound;
    return outcome;
  }
  const std::string& id = context_.model_ids[simnet::MixHash(
      context_.seed ^ simnet::MixHash(request.sequence)) %
                                          context_.model_ids.size()];
  core::RecoverOptions options;
  options.verify_checksum = true;
  auto result = context_.recoverer->Recover(id, options);
  outcome.code = CodeOf(result.status());
  if (result.ok()) {
    outcome.bytes = result.value().model.ParamByteSize();
  }
  return outcome;
}

BackendOutcome CoreBackend::ExecuteProbe(const Request& request) {
  BackendOutcome outcome;
  if (context_.model_ids.empty()) {
    outcome.code = StatusCode::kNotFound;
    return outcome;
  }
  const std::string& id = context_.model_ids[simnet::MixHash(
      context_.seed ^ simnet::MixHash(request.sequence) ^ 0x9bULL) %
                                          context_.model_ids.size()];
  auto doc = context_.docs->Get(core::kModelsCollection, id);
  outcome.code = CodeOf(doc.status());
  return outcome;
}

BackendOutcome CoreBackend::ExecuteInference(const Request& request,
                                             size_t batch_size) {
  BackendOutcome outcome;
  if (context_.files == nullptr || context_.file_ids.empty()) {
    // No replicated file store wired: inference degenerates to the
    // arithmetic forward cost alone.
    outcome.service_seconds =
        context_.inference_forward_seconds * static_cast<double>(batch_size);
    return outcome;
  }
  const std::string& file_id = context_.file_ids[simnet::MixHash(
      context_.seed ^ simnet::MixHash(request.sequence) ^ 0x1fULL) %
                                           context_.file_ids.size()];
  auto payload = context_.files->LoadFileHedged(
      file_id, context_.hedge_threshold_seconds);
  outcome.code = CodeOf(payload.status());
  if (payload.ok()) {
    outcome.bytes = payload.value().size();
    // One model pass serves the whole batch; the read is shared.
    outcome.service_seconds =
        context_.inference_forward_seconds *
        (1.0 + 0.25 * (static_cast<double>(batch_size) - 1.0));
  }
  return outcome;
}

}  // namespace mmlib::serve
