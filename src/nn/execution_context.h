#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "util/random.h"
#include "util/scratch_pool.h"
#include "util/thread_pool.h"

namespace mmlib::nn {

/// Phase timing accumulators (seconds), mirroring the categories of paper
/// Figure 13: loading data, forward pass, backward pass.
struct PhaseTimes {
  double data_load_seconds = 0;
  double forward_seconds = 0;
  double backward_seconds = 0;

  double TotalSeconds() const {
    return data_load_seconds + forward_seconds + backward_seconds;
  }
};

/// Execution configuration and per-run state for forward/backward passes.
///
/// Determinism model (paper Sections 2.3 and 4.5): with `deterministic`
/// set, every kernel accumulates in a fixed order — layers without a cheap
/// deterministic implementation (spatial convolutions) fall back to
/// compensated summation, which costs extra time. With `deterministic`
/// unset, kernels split their reductions at a point chosen from
/// `scheduler_rng` (modeling the scheduling nondeterminism of a parallel
/// device), so repeated runs produce slightly different floating-point
/// results.
class ExecutionContext {
 public:
  /// Creates a deterministic context; `seed` drives intentional randomness
  /// (dropout masks, augmentation) so runs with equal seeds are identical.
  static ExecutionContext Deterministic(uint64_t seed) {
    ExecutionContext ctx(/*deterministic=*/true, seed, /*scheduler_seed=*/0);
    return ctx;
  }

  /// Creates a non-deterministic context; `scheduler_seed` stands in for the
  /// uncontrolled thread scheduling of a real parallel device (pass e.g. a
  /// wall-clock derived value).
  static ExecutionContext NonDeterministic(uint64_t seed,
                                           uint64_t scheduler_seed) {
    return ExecutionContext(/*deterministic=*/false, seed, scheduler_seed);
  }

  bool deterministic() const { return deterministic_; }

  /// True while training (dropout active, batch-norm uses batch statistics).
  bool training() const { return training_; }
  void set_training(bool training) { training_ = training; }

  /// PRNG for intentional randomness; reproducible across runs when seeded
  /// identically.
  Rng* rng() { return &rng_; }

  /// PRNG modeling scheduler nondeterminism; only consulted when
  /// !deterministic().
  Rng* scheduler_rng() { return &scheduler_rng_; }

  /// Returns a reduction split point in [1, n) used by non-deterministic
  /// kernels; n must be >= 2.
  size_t NextSplit(size_t n) {
    return 1 + static_cast<size_t>(scheduler_rng_.NextBelow(n - 1));
  }

  /// Thread pool kernels shard their work on; defaults to the process-wide
  /// pool. With deterministic chunking (see util/thread_pool.h) results are
  /// bit-identical for every pool size, so the pool choice is pure
  /// performance configuration.
  util::ThreadPool* pool() const {
    return pool_ != nullptr ? pool_ : util::ThreadPool::Global();
  }
  void set_pool(util::ThreadPool* pool) { pool_ = pool; }

  /// Marks the start of one parallel kernel region; kernels call this on
  /// the launching thread (never from inside a chunk) and feed the value to
  /// ChunkSchedulerSeed.
  uint64_t NextParallelEpoch() { return parallel_epoch_++; }

  /// Seed for the per-chunk scheduler Rng of chunk `chunk_index` in region
  /// `epoch`. Each chunk owns a private Rng seeded from this value, so
  /// non-deterministic kernels never share generator state across threads;
  /// deterministic kernels ignore it entirely.
  uint64_t ChunkSchedulerSeed(uint64_t epoch, size_t chunk_index) const {
    uint64_t x = scheduler_seed_ ^ ((epoch + 1) * 0x9e3779b97f4a7c15ULL) ^
                 ((static_cast<uint64_t>(chunk_index) + 1) *
                  0xbf58476d1ce4e5b9ULL);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

  PhaseTimes* times() { return &times_; }
  const PhaseTimes& times() const { return times_; }
  void ResetTimes() { times_ = PhaseTimes(); }

  /// Per-context scratch pool for step-scoped float temporaries outside the
  /// kernel plans (loss scratch, reduction staging). Lazily created and
  /// shared across copies of the context, so repeated training steps reuse
  /// the same buffers — the train loop stays malloc-free after warm-up.
  util::ScratchPool* scratch_pool() {
    if (scratch_ == nullptr) {
      scratch_ = std::make_shared<util::ScratchPool>();
    }
    return scratch_.get();
  }

 private:
  ExecutionContext(bool deterministic, uint64_t seed, uint64_t scheduler_seed)
      : deterministic_(deterministic),
        rng_(seed),
        scheduler_rng_(scheduler_seed),
        scheduler_seed_(scheduler_seed) {}

  bool deterministic_;
  bool training_ = true;
  Rng rng_;
  Rng scheduler_rng_;
  uint64_t scheduler_seed_;
  uint64_t parallel_epoch_ = 0;
  util::ThreadPool* pool_ = nullptr;
  PhaseTimes times_;
  std::shared_ptr<util::ScratchPool> scratch_;
};

}  // namespace mmlib::nn

