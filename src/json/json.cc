#include "json/json.h"

#include "check/check.h"
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mmlib::json {

Result<const Value*> Value::GetMember(std::string_view key) const {
  if (!is_object()) {
    return Status::InvalidArgument("GetMember on non-object JSON value");
  }
  auto it = object_.find(std::string(key));
  if (it == object_.end()) {
    return Status::NotFound("missing JSON member: " + std::string(key));
  }
  return &it->second;
}

Result<std::string> Value::GetString(std::string_view key) const {
  MMLIB_ASSIGN_OR_RETURN(const Value* v, GetMember(key));
  if (!v->is_string()) {
    return Status::InvalidArgument("JSON member is not a string: " +
                                   std::string(key));
  }
  return v->as_string();
}

Result<double> Value::GetNumber(std::string_view key) const {
  MMLIB_ASSIGN_OR_RETURN(const Value* v, GetMember(key));
  if (!v->is_number()) {
    return Status::InvalidArgument("JSON member is not a number: " +
                                   std::string(key));
  }
  return v->as_number();
}

Result<int64_t> Value::GetInt(std::string_view key) const {
  MMLIB_ASSIGN_OR_RETURN(double d, GetNumber(key));
  return static_cast<int64_t>(d);
}

Result<bool> Value::GetBool(std::string_view key) const {
  MMLIB_ASSIGN_OR_RETURN(const Value* v, GetMember(key));
  if (!v->is_bool()) {
    return Status::InvalidArgument("JSON member is not a bool: " +
                                   std::string(key));
  }
  return v->as_bool();
}

const Value* Value::FindMember(std::string_view key) const {
  if (!is_object()) {
    return nullptr;
  }
  auto it = object_.find(std::string(key));
  if (it == object_.end() || it->second.is_null()) {
    return nullptr;
  }
  return &it->second;
}

void Value::Set(std::string key, Value value) {
  MMLIB_CHECK(is_object()) << "Set(\"" << key << "\") on non-object JSON value";
  object_[std::move(key)] = std::move(value);
}

void Value::Append(Value value) {
  MMLIB_CHECK(is_array()) << "Append on non-array JSON value";
  array_.push_back(std::move(value));
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) {
    return false;
  }
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          *out += buffer;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(std::string* out, double d) {
  if (std::isnan(d) || std::isinf(d)) {
    // JSON cannot represent non-finite numbers; store null (never produced by
    // mmlib metadata, but keeps serialization total).
    *out += "null";
    return;
  }
  if (d == static_cast<double>(static_cast<int64_t>(d)) &&
      std::abs(d) < 9.0e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(d));
    *out += buffer;
    return;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", d);
  *out += buffer;
}

void AppendIndent(std::string* out, int indent, int depth) {
  if (indent > 0) {
    out->push_back('\n');
    out->append(static_cast<size_t>(indent) * depth, ' ');
  }
}

}  // namespace

void Value::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      AppendNumber(out, number_);
      return;
    case Type::kString:
      AppendEscaped(out, string_);
      return;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Value& v : array_) {
        if (!first) {
          out->push_back(',');
        }
        first = false;
        AppendIndent(out, indent, depth + 1);
        v.DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) {
        AppendIndent(out, indent, depth);
      }
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, v] : object_) {
        if (!first) {
          out->push_back(',');
        }
        first = false;
        AppendIndent(out, indent, depth + 1);
        AppendEscaped(out, key);
        out->push_back(':');
        if (indent > 0) {
          out->push_back(' ');
        }
        v.DumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) {
        AppendIndent(out, indent, depth);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string Value::Dump() const {
  std::string out;
  DumpTo(&out, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string Value::DumpPretty() const {
  std::string out;
  DumpTo(&out, /*indent=*/2, /*depth=*/0);
  return out;
}

namespace {

/// Recursive-descent JSON parser with a depth limit against stack overflow.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> ParseDocument() {
    MMLIB_ASSIGN_OR_RETURN(Value v, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 256;

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Value> ParseValue(int depth) {
    if (depth > kMaxDepth) {
      return Error("maximum nesting depth exceeded");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        MMLIB_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Value(std::move(s));
      }
      case 't':
        return ParseKeyword("true", Value(true));
      case 'f':
        return ParseKeyword("false", Value(false));
      case 'n':
        return ParseKeyword("null", Value());
      default:
        return ParseNumber();
    }
  }

  Result<Value> ParseKeyword(std::string_view keyword, Value value) {
    if (text_.substr(pos_, keyword.size()) != keyword) {
      return Error("invalid literal");
    }
    pos_ += keyword.size();
    return value;
  }

  Result<Value> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Error("invalid number");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Error("invalid number: " + token);
    }
    return Value(d);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) {
      return Error("expected string");
    }
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= h - '0';
            } else if (h >= 'a' && h <= 'f') {
              code |= h - 'a' + 10;
            } else if (h >= 'A' && h <= 'F') {
              code |= h - 'A' + 10;
            } else {
              return Error("invalid \\u escape");
            }
          }
          // Encode code point as UTF-8 (surrogate pairs are passed through
          // as individual code units; mmlib metadata is ASCII in practice).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<Value> ParseArray(int depth) {
    Consume('[');
    Value::Array array;
    SkipWhitespace();
    if (Consume(']')) {
      return Value(std::move(array));
    }
    for (;;) {
      MMLIB_ASSIGN_OR_RETURN(Value v, ParseValue(depth + 1));
      array.push_back(std::move(v));
      SkipWhitespace();
      if (Consume(']')) {
        return Value(std::move(array));
      }
      if (!Consume(',')) {
        return Error("expected ',' or ']' in array");
      }
    }
  }

  Result<Value> ParseObject(int depth) {
    Consume('{');
    Value::Object object;
    SkipWhitespace();
    if (Consume('}')) {
      return Value(std::move(object));
    }
    for (;;) {
      SkipWhitespace();
      MMLIB_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) {
        return Error("expected ':' in object");
      }
      MMLIB_ASSIGN_OR_RETURN(Value v, ParseValue(depth + 1));
      object[std::move(key)] = std::move(v);
      SkipWhitespace();
      if (Consume('}')) {
        return Value(std::move(object));
      }
      if (!Consume(',')) {
        return Error("expected ',' or '}' in object");
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace mmlib::json
