#pragma once

#include <string>
#include <vector>

#include "nn/model.h"
#include "util/bytes.h"

namespace mmlib::nn {

/// Abstract optimizer over a model's trainable parameters. Optimizers may
/// hold internal state that cannot be recovered from their constructor
/// arguments alone — the paper's canonical example of a *stateful* object
/// that the model provenance approach must snapshot to a state file
/// (Section 3.3, Figure 5).
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update step from the accumulated gradients.
  virtual void Step() = 0;

  /// Zeroes all parameter gradients.
  virtual void ZeroGrad() = 0;

  /// Serializes the optimizer's internal state (the "state file").
  virtual Bytes SerializeState() const = 0;

  /// Restores state produced by SerializeState; the model's trainable
  /// parameter set must match.
  virtual Status LoadState(const Bytes& data) = 0;

  /// Structural description for provenance metadata, e.g. "SGD(lr=0.01...)".
  virtual std::string DescribeConfig() const = 0;

  /// Current learning rate; adjustable by learning-rate schedules. The rate
  /// is part of the serialized state, so a restored optimizer resumes with
  /// the scheduled value.
  virtual float learning_rate() const = 0;
  virtual void SetLearningRate(float learning_rate) = 0;
};

/// Hyperparameters of the SGD optimizer.
struct SgdOptions {
  float learning_rate = 0.01f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
};

/// SGD with momentum. Stateful only when momentum is non-zero (the state
/// file then holds the velocity buffers).
class SgdOptimizer : public Optimizer {
 public:
  SgdOptimizer(Model* model, SgdOptions options);

  const SgdOptions& options() const { return options_; }

  void Step() override;
  void ZeroGrad() override { model_->ZeroGrad(); }
  Bytes SerializeState() const override;
  Status LoadState(const Bytes& data) override;
  std::string DescribeConfig() const override;
  float learning_rate() const override { return options_.learning_rate; }
  void SetLearningRate(float learning_rate) override {
    options_.learning_rate = learning_rate;
  }

 private:
  struct Slot {
    size_t node_index;
    size_t param_index;
    Tensor velocity;
  };

  void RebuildSlots();

  Model* model_;
  SgdOptions options_;
  std::vector<Slot> slots_;
};

}  // namespace mmlib::nn

