#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "kernels/conv_plan.h"
#include "kernels/gemm.h"
#include "kernels/linear_plan.h"
#include "kernels/plan_cache.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "util/scratch_pool.h"
#include "util/thread_pool.h"

namespace mmlib {
namespace {

using kernels::ConvAlgo;
using kernels::ConvGeom;
using kernels::ConvPlan;
using kernels::LinearAlgo;
using kernels::PlanCache;

// ---------------------------------------------------------------------------
// GemmPacked against a naive reference.
//
// The packed GEMM accumulates every output element strictly in k order —
// the same association as a serial dot product — so it must match the naive
// float loop BIT-EXACTLY, for every edge shape, KC split, loop order, and
// accumulate mode. This is the property the determinism story rests on.

std::vector<float> RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> m(static_cast<size_t>(rows * cols));
  for (float& v : m) {
    v = rng.NextFloat() * 2.0f - 1.0f;
  }
  return m;
}

void NaiveGemm(const std::vector<float>& a, const std::vector<float>& b,
               int64_t m, int64_t n, int64_t k, bool accumulate,
               const float* bias, std::vector<float>* c) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        acc += a[i * k + p] * b[p * n + j];
      }
      float& out = (*c)[i * n + j];
      if (accumulate) {
        out += acc;
      } else {
        out = (bias != nullptr ? bias[j] : 0.0f) + acc;
      }
    }
  }
}

void ExpectGemmMatchesNaive(int64_t m, int64_t n, int64_t k, int64_t kc,
                            bool accumulate, bool rows_outer, bool with_bias) {
  SCOPED_TRACE("m=" + std::to_string(m) + " n=" + std::to_string(n) +
               " k=" + std::to_string(k) + " kc=" + std::to_string(kc) +
               " accumulate=" + std::to_string(accumulate) +
               " rows_outer=" + std::to_string(rows_outer) +
               " bias=" + std::to_string(with_bias));
  const std::vector<float> a = RandomMatrix(m, k, 100 + m * 7 + k);
  const std::vector<float> b = RandomMatrix(k, n, 200 + n * 3 + k);
  const std::vector<float> bias =
      with_bias ? RandomMatrix(1, n, 300 + n) : std::vector<float>();

  std::vector<float> a_pack(
      static_cast<size_t>(kernels::PackedStripFloats(m, k)));
  std::vector<float> b_pack(
      static_cast<size_t>(kernels::PackedPanelFloats(k, n)));
  kernels::PackStrips(a.data(), m, k, 0, k, a_pack.data());
  kernels::PackPanels(b.data(), k, n, 0, n, b_pack.data());

  std::vector<float> got(static_cast<size_t>(m * n), 0.5f);
  std::vector<float> want = got;
  kernels::GemmPacked(a_pack.data(), b_pack.data(), m, n, k, kc, got.data(),
                      n, accumulate, rows_outer,
                      with_bias ? bias.data() : nullptr);
  NaiveGemm(a, b, m, n, k, accumulate, with_bias ? bias.data() : nullptr,
            &want);
  ASSERT_EQ(0, std::memcmp(got.data(), want.data(),
                           got.size() * sizeof(float)));
}

TEST(GemmPackedTest, MatchesNaiveBitExactAcrossEdgeShapes) {
  // Shapes straddling the MR=4 / NR=8 register tile and the KC split.
  const int64_t ms[] = {1, 3, 4, 5, 17};
  const int64_t ns[] = {1, 7, 8, 9, 40};
  const int64_t ks[] = {1, 5, 72};
  for (int64_t m : ms) {
    for (int64_t n : ns) {
      for (int64_t k : ks) {
        ExpectGemmMatchesNaive(m, n, k, /*kc=*/k, /*accumulate=*/false,
                               /*rows_outer=*/false, /*with_bias=*/false);
      }
    }
  }
}

TEST(GemmPackedTest, KcSplitIsDeterministicAndClose) {
  // Splitting k into KC blocks changes the partial-sum association (each
  // block reduces privately before the write-back adds it), so results are
  // NOT bit-equal to the unsplit run — but KC is a pure function of the
  // shape, fixed in the plan, so a given split is perfectly repeatable and
  // numerically within normal float reassociation error.
  const std::vector<float> a = RandomMatrix(6, 100, 1);
  const std::vector<float> b = RandomMatrix(100, 11, 2);
  auto run = [&](int64_t kc) {
    std::vector<float> a_pack(
        static_cast<size_t>(kernels::PackedStripFloats(6, 100)));
    std::vector<float> b_pack(
        static_cast<size_t>(kernels::PackedPanelFloats(100, 11)));
    kernels::PackStrips(a.data(), 6, 100, 0, 100, a_pack.data());
    kernels::PackPanels(b.data(), 100, 11, 0, 11, b_pack.data());
    std::vector<float> c(6 * 11, 0.0f);
    kernels::GemmPacked(a_pack.data(), b_pack.data(), 6, 11, 100, kc,
                        c.data(), 11, false, false, nullptr);
    return c;
  };
  const std::vector<float> whole = run(100);
  for (int64_t kc : {1, 7, 33, 64}) {
    const std::vector<float> split = run(kc);
    EXPECT_EQ(split, run(kc)) << "kc=" << kc << " not repeatable";
    for (size_t i = 0; i < whole.size(); ++i) {
      EXPECT_NEAR(split[i], whole[i],
                  1e-5 * std::max(1.0f, std::abs(whole[i])))
          << "kc=" << kc << " index " << i;
    }
  }
}

TEST(GemmPackedTest, LoopOrdersBitIdentical) {
  // rows_outer only reorders whole register tiles; every element's
  // accumulation is unchanged.
  ExpectGemmMatchesNaive(33, 40, 17, 17, false, /*rows_outer=*/true, false);
  ExpectGemmMatchesNaive(33, 40, 17, 17, false, /*rows_outer=*/false, false);
}

TEST(GemmPackedTest, AccumulateAndBiasModes) {
  ExpectGemmMatchesNaive(5, 9, 13, 13, /*accumulate=*/true, false, false);
  ExpectGemmMatchesNaive(5, 9, 13, 13, /*accumulate=*/false, false,
                         /*with_bias=*/true);
}

// ---------------------------------------------------------------------------
// Planned Conv2d/Linear against naive double-precision references.

struct ConvSpec {
  int64_t batch, in_c, out_c, kernel, stride, padding, groups, h, w;
};

void NaiveConvForward(const ConvSpec& s, const std::vector<float>& x,
                      const std::vector<float>& w, std::vector<double>* y,
                      int64_t out_h, int64_t out_w) {
  const int64_t gi = s.in_c / s.groups;
  const int64_t go = s.out_c / s.groups;
  y->assign(static_cast<size_t>(s.batch * s.out_c * out_h * out_w), 0.0);
  for (int64_t n = 0; n < s.batch; ++n) {
    for (int64_t g = 0; g < s.groups; ++g) {
      for (int64_t oc = 0; oc < go; ++oc) {
        const int64_t out_channel = g * go + oc;
        for (int64_t oy = 0; oy < out_h; ++oy) {
          for (int64_t ox = 0; ox < out_w; ++ox) {
            double acc = 0.0;
            for (int64_t c = 0; c < gi; ++c) {
              const int64_t channel = g * gi + c;
              for (int64_t ky = 0; ky < s.kernel; ++ky) {
                const int64_t yy = oy * s.stride - s.padding + ky;
                if (yy < 0 || yy >= s.h) continue;
                for (int64_t kx = 0; kx < s.kernel; ++kx) {
                  const int64_t xx = ox * s.stride - s.padding + kx;
                  if (xx < 0 || xx >= s.w) continue;
                  const double xv =
                      x[((n * s.in_c + channel) * s.h + yy) * s.w + xx];
                  const double wv =
                      w[((out_channel * gi + c) * s.kernel + ky) * s.kernel +
                        kx];
                  acc += xv * wv;
                }
              }
            }
            (*y)[((n * s.out_c + out_channel) * out_h + oy) * out_w + ox] =
                acc;
          }
        }
      }
    }
  }
}

void ExpectClose(const float* got, const std::vector<double>& want,
                 double tol, const char* what) {
  for (size_t i = 0; i < want.size(); ++i) {
    const double scale = std::max(1.0, std::abs(want[i]));
    ASSERT_NEAR(got[i], want[i], tol * scale)
        << what << " diverged at flat index " << i;
  }
}

void ExpectConvMatchesReference(const ConvSpec& s, ConvAlgo expect_algo) {
  SCOPED_TRACE("conv " + std::to_string(s.in_c) + "->" +
               std::to_string(s.out_c) + " k" + std::to_string(s.kernel) +
               " s" + std::to_string(s.stride) + " p" +
               std::to_string(s.padding) + " g" + std::to_string(s.groups) +
               " " + std::to_string(s.h) + "x" + std::to_string(s.w));
  const int64_t out_h = (s.h + 2 * s.padding - s.kernel) / s.stride + 1;
  const int64_t out_w = (s.w + 2 * s.padding - s.kernel) / s.stride + 1;
  const ConvGeom geom{s.batch,  s.in_c, s.out_c, s.kernel, s.stride,
                      s.padding, s.groups, s.h,   s.w,     out_h,
                      out_w};
  ASSERT_EQ(ConvPlan(geom).algo(), expect_algo);

  Rng rng(42);
  nn::Conv2d conv("t", s.in_c, s.out_c, s.kernel, s.stride, s.padding,
                  s.groups, &rng);
  Rng input_rng(43);
  const Tensor input =
      Tensor::Gaussian(Shape{s.batch, s.in_c, s.h, s.w}, 1.0f, &input_rng);

  util::ThreadPool pool(2);
  nn::ExecutionContext ctx = nn::ExecutionContext::Deterministic(7);
  ctx.set_pool(&pool);
  const Tensor y = conv.Forward({&input}, &ctx).value();

  const std::vector<float> xv(input.data(), input.data() + input.numel());
  const Tensor& weight = conv.params()[0].value;
  const std::vector<float> wv(weight.data(), weight.data() + weight.numel());
  std::vector<double> want;
  NaiveConvForward(s, xv, wv, &want, out_h, out_w);
  ExpectClose(y.data(), want, 1e-5, "forward");

  // Backward against finite differences would be slow at these sizes;
  // nn_layers_test covers gradient correctness on small shapes (which take
  // the direct path). Here, check the planned backward against the naive
  // chain rule in double precision.
  Tensor grad_out(y.shape());
  {
    Rng gr(44);
    for (int64_t i = 0; i < grad_out.numel(); ++i) {
      grad_out.data()[i] = gr.NextFloat() * 2.0f - 1.0f;
    }
  }
  conv.ZeroGrad();
  std::vector<Tensor> grads = conv.Backward(grad_out, &ctx).value();
  const Tensor& grad_input = grads[0];
  const Tensor& grad_weight = conv.params()[0].grad;

  const int64_t gi = s.in_c / s.groups;
  const int64_t go = s.out_c / s.groups;
  std::vector<double> want_gin(
      static_cast<size_t>(s.batch * s.in_c * s.h * s.w), 0.0);
  std::vector<double> want_gw(static_cast<size_t>(weight.numel()), 0.0);
  for (int64_t n = 0; n < s.batch; ++n) {
    for (int64_t g = 0; g < s.groups; ++g) {
      for (int64_t oc = 0; oc < go; ++oc) {
        const int64_t out_channel = g * go + oc;
        for (int64_t oy = 0; oy < out_h; ++oy) {
          for (int64_t ox = 0; ox < out_w; ++ox) {
            const double gv =
                grad_out
                    .data()[((n * s.out_c + out_channel) * out_h + oy) *
                                out_w +
                            ox];
            for (int64_t c = 0; c < gi; ++c) {
              const int64_t channel = g * gi + c;
              for (int64_t ky = 0; ky < s.kernel; ++ky) {
                const int64_t yy = oy * s.stride - s.padding + ky;
                if (yy < 0 || yy >= s.h) continue;
                for (int64_t kx = 0; kx < s.kernel; ++kx) {
                  const int64_t xx = ox * s.stride - s.padding + kx;
                  if (xx < 0 || xx >= s.w) continue;
                  const size_t widx =
                      ((out_channel * gi + c) * s.kernel + ky) * s.kernel +
                      kx;
                  const size_t xidx =
                      ((n * s.in_c + channel) * s.h + yy) * s.w + xx;
                  want_gin[xidx] += gv * wv[widx];
                  want_gw[widx] += gv * xv[xidx];
                }
              }
            }
          }
        }
      }
    }
  }
  ExpectClose(grad_input.data(), want_gin, 1e-4, "grad_input");
  ExpectClose(grad_weight.data(), want_gw, 1e-4, "grad_weight");
}

TEST(ConvPlanTest, Im2ColGemmMatchesReference) {
  ExpectConvMatchesReference({2, 8, 16, 3, 1, 1, 1, 14, 14},
                             ConvAlgo::kIm2ColGemm);
}

TEST(ConvPlanTest, PointwiseGemmMatchesReference) {
  ExpectConvMatchesReference({2, 16, 16, 1, 1, 0, 1, 12, 12},
                             ConvAlgo::kPointwiseGemm);
}

TEST(ConvPlanTest, StridedLargeKernelOddSizeMatchesReference) {
  ExpectConvMatchesReference({1, 8, 8, 5, 2, 2, 1, 19, 19},
                             ConvAlgo::kIm2ColGemm);
}

TEST(ConvPlanTest, NoPaddingAsymmetricInputMatchesReference) {
  ExpectConvMatchesReference({2, 6, 10, 3, 2, 0, 1, 15, 17},
                             ConvAlgo::kIm2ColGemm);
}

TEST(ConvPlanTest, GroupedConvMatchesReference) {
  ExpectConvMatchesReference({2, 8, 12, 3, 1, 1, 2, 13, 13},
                             ConvAlgo::kIm2ColGemm);
}

TEST(ConvPlanTest, PlanSelectionRules) {
  // Depthwise: one in/out channel per group — im2col degenerates, keep the
  // direct loop.
  EXPECT_EQ(ConvPlan(ConvGeom{4, 8, 8, 3, 1, 1, 8, 32, 32, 32, 32}).algo(),
            ConvAlgo::kDirect);
  // Tiny: below the work threshold packing costs more than it saves.
  EXPECT_EQ(ConvPlan(ConvGeom{1, 2, 3, 3, 1, 1, 1, 5, 5, 5, 5}).algo(),
            ConvAlgo::kDirect);
  // 1x1 stride-1 pad-0: the input plane is already the im2col matrix.
  EXPECT_EQ(ConvPlan(ConvGeom{4, 16, 16, 1, 1, 0, 1, 16, 16, 16, 16}).algo(),
            ConvAlgo::kPointwiseGemm);
  // Strided 1x1 still needs the gather.
  EXPECT_EQ(ConvPlan(ConvGeom{4, 16, 16, 1, 2, 0, 1, 16, 16, 8, 8}).algo(),
            ConvAlgo::kIm2ColGemm);
  // NC is always a whole number of NR-wide panels.
  const ConvPlan plan(ConvGeom{2, 8, 16, 3, 1, 1, 1, 14, 14, 14, 14});
  EXPECT_EQ(plan.nc() % kernels::kGemmNR, 0);
  EXPECT_GT(plan.kc(), 0);
}

// ---------------------------------------------------------------------------
// Bit-identity across pool sizes (the house invariant, on planned shapes).

TEST(KernelPlanDeterminismTest, ConvBitIdenticalAcrossPools) {
  Rng input_rng(50);
  const Tensor input =
      Tensor::Gaussian(Shape{3, 8, 14, 14}, 1.0f, &input_rng);

  auto run = [&](size_t threads) {
    util::ThreadPool pool(threads);
    Rng rng(51);
    nn::Conv2d conv("t", 8, 16, 3, 1, 1, 1, &rng);
    nn::ExecutionContext ctx = nn::ExecutionContext::Deterministic(7);
    ctx.set_pool(&pool);
    Tensor y = conv.Forward({&input}, &ctx).value();
    Tensor grad_out(y.shape());
    grad_out.Fill(0.25f);
    conv.ZeroGrad();
    Tensor gin = std::move(conv.Backward(grad_out, &ctx).value()[0]);
    return std::make_pair(std::move(y),
                          std::make_pair(std::move(gin),
                                         conv.params()[0].grad));
  };
  const auto ref = run(1);
  for (size_t threads : {size_t{2}, size_t{8}}) {
    const auto got = run(threads);
    EXPECT_EQ(0, std::memcmp(got.first.data(), ref.first.data(),
                             static_cast<size_t>(ref.first.numel()) *
                                 sizeof(float)))
        << "forward diverged at " << threads << " threads";
    EXPECT_EQ(0, std::memcmp(got.second.first.data(), ref.second.first.data(),
                             static_cast<size_t>(ref.second.first.numel()) *
                                 sizeof(float)))
        << "grad_input diverged at " << threads << " threads";
    EXPECT_EQ(0,
              std::memcmp(got.second.second.data(), ref.second.second.data(),
                          static_cast<size_t>(ref.second.second.numel()) *
                              sizeof(float)))
        << "grad_weight diverged at " << threads << " threads";
  }
}

TEST(KernelPlanDeterminismTest, LinearBitIdenticalAcrossPools) {
  Rng input_rng(60);
  const Tensor input = Tensor::Gaussian(Shape{32, 64}, 1.0f, &input_rng);

  auto run = [&](size_t threads) {
    util::ThreadPool pool(threads);
    Rng rng(61);
    nn::Linear fc("t", 64, 96, &rng);
    nn::ExecutionContext ctx = nn::ExecutionContext::Deterministic(7);
    ctx.set_pool(&pool);
    Tensor y = fc.Forward({&input}, &ctx).value();
    Tensor grad_out(y.shape());
    grad_out.Fill(0.25f);
    fc.ZeroGrad();
    Tensor gin = std::move(fc.Backward(grad_out, &ctx).value()[0]);
    std::vector<Tensor> all = {std::move(y), std::move(gin),
                               fc.params()[0].grad, fc.params()[1].grad};
    return all;
  };
  const std::vector<Tensor> ref = run(1);
  for (size_t threads : {size_t{2}, size_t{8}}) {
    const std::vector<Tensor> got = run(threads);
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(0, std::memcmp(got[i].data(), ref[i].data(),
                               static_cast<size_t>(ref[i].numel()) *
                                   sizeof(float)))
          << "tensor " << i << " diverged at " << threads << " threads";
    }
  }
}

// ---------------------------------------------------------------------------
// Linear plan against a naive double reference.

TEST(LinearPlanTest, GemmPathMatchesReference) {
  const int64_t batch = 32, in = 64, out = 96;
  Rng rng(70);
  nn::Linear fc("t", in, out, &rng);
  Rng input_rng(71);
  const Tensor input =
      Tensor::Gaussian(Shape{batch, in}, 1.0f, &input_rng);

  ASSERT_EQ(kernels::LinearPlan(batch, in, out).algo(), LinearAlgo::kGemm);

  util::ThreadPool pool(2);
  nn::ExecutionContext ctx = nn::ExecutionContext::Deterministic(7);
  ctx.set_pool(&pool);
  const Tensor y = fc.Forward({&input}, &ctx).value();

  const float* w = fc.params()[0].value.data();
  const float* bias = fc.params()[1].value.data();
  std::vector<double> want(static_cast<size_t>(batch * out));
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t o = 0; o < out; ++o) {
      double acc = bias[o];
      for (int64_t i = 0; i < in; ++i) {
        acc += static_cast<double>(input.data()[n * in + i]) * w[o * in + i];
      }
      want[n * out + o] = acc;
    }
  }
  ExpectClose(y.data(), want, 1e-5, "linear forward");

  Tensor grad_out(y.shape());
  Rng gr(72);
  for (int64_t i = 0; i < grad_out.numel(); ++i) {
    grad_out.data()[i] = gr.NextFloat() * 2.0f - 1.0f;
  }
  fc.ZeroGrad();
  std::vector<Tensor> grads = fc.Backward(grad_out, &ctx).value();

  std::vector<double> want_gin(static_cast<size_t>(batch * in), 0.0);
  std::vector<double> want_gw(static_cast<size_t>(out * in), 0.0);
  std::vector<double> want_gb(static_cast<size_t>(out), 0.0);
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t o = 0; o < out; ++o) {
      const double gv = grad_out.data()[n * out + o];
      want_gb[o] += gv;
      for (int64_t i = 0; i < in; ++i) {
        want_gin[n * in + i] += gv * w[o * in + i];
        want_gw[o * in + i] +=
            gv * static_cast<double>(input.data()[n * in + i]);
      }
    }
  }
  ExpectClose(grads[0].data(), want_gin, 1e-4, "linear grad_input");
  ExpectClose(fc.params()[0].grad.data(), want_gw, 1e-4, "linear grad_weight");
  ExpectClose(fc.params()[1].grad.data(), want_gb, 1e-4, "linear grad_bias");
}

TEST(LinearPlanTest, TinyShapesStayDirect) {
  EXPECT_EQ(kernels::LinearPlan(9, 37, 19).algo(), LinearAlgo::kDirect);
  EXPECT_EQ(kernels::LinearPlan(1, 10, 10).algo(), LinearAlgo::kDirect);
}

// ---------------------------------------------------------------------------
// PlanCache reuse.

TEST(PlanCacheTest, RepeatedLookupsHitAndShare) {
  PlanCache& cache = PlanCache::Instance();
  const ConvGeom geom{5, 32, 48, 3, 1, 1, 1, 23, 29, 23, 29};
  const PlanCache::Stats before = cache.stats();
  std::shared_ptr<const ConvPlan> a = cache.GetConvPlan(geom);
  std::shared_ptr<const ConvPlan> b = cache.GetConvPlan(geom);
  EXPECT_EQ(a.get(), b.get());
  const PlanCache::Stats after = cache.stats();
  EXPECT_EQ(after.conv_misses, before.conv_misses + 1);
  EXPECT_GE(after.conv_hits, before.conv_hits + 1);

  std::shared_ptr<const kernels::LinearPlan> la =
      cache.GetLinearPlan(48, 160, 80);
  std::shared_ptr<const kernels::LinearPlan> lb =
      cache.GetLinearPlan(48, 160, 80);
  EXPECT_EQ(la.get(), lb.get());
  const PlanCache::Stats final_stats = cache.stats();
  EXPECT_EQ(final_stats.linear_misses, after.linear_misses + 1);
  EXPECT_GE(final_stats.linear_hits, after.linear_hits + 1);
  EXPECT_GE(final_stats.size, 2u);
}

TEST(PlanCacheTest, LayersReuseThePlanAcrossSteps) {
  PlanCache& cache = PlanCache::Instance();
  Rng rng(80);
  nn::Conv2d conv("t", 8, 16, 3, 1, 1, 1, &rng);
  Rng input_rng(81);
  const Tensor input =
      Tensor::Gaussian(Shape{2, 8, 14, 14}, 1.0f, &input_rng);
  util::ThreadPool pool(1);
  nn::ExecutionContext ctx = nn::ExecutionContext::Deterministic(7);
  ctx.set_pool(&pool);

  (void)conv.Forward({&input}, &ctx).value();
  const PlanCache::Stats after_first = cache.stats();
  // Repeated steps with the same geometry reuse the cached shared_ptr
  // without re-querying the cache.
  (void)conv.Forward({&input}, &ctx).value();
  (void)conv.Forward({&input}, &ctx).value();
  const PlanCache::Stats after_more = cache.stats();
  EXPECT_EQ(after_more.conv_misses, after_first.conv_misses);
  EXPECT_EQ(after_more.conv_hits, after_first.conv_hits);
}

TEST(PlanCacheTest, CapacityBoundEvictsLeastRecentlyUsed) {
  PlanCache& cache = PlanCache::Instance();
  cache.Clear();
  cache.set_capacity(3);
  EXPECT_EQ(cache.capacity(), 3u);

  // Three linear geometries fill the cache; plans are keyed by shape only,
  // so re-requesting a key is a hit that refreshes its recency.
  (void)cache.GetLinearPlan(64, 128, 32);   // A
  (void)cache.GetLinearPlan(64, 128, 48);   // B
  (void)cache.GetLinearPlan(64, 128, 64);   // C
  EXPECT_EQ(cache.stats().size, 3u);
  EXPECT_EQ(cache.stats().evictions, 0u);

  // Touch A so B becomes the least recently used, then overflow: B — and
  // deterministically B, use order being the only input — is evicted.
  (void)cache.GetLinearPlan(64, 128, 32);   // hit on A
  std::shared_ptr<const kernels::LinearPlan> d =
      cache.GetLinearPlan(64, 128, 80);     // D evicts B
  EXPECT_EQ(cache.stats().size, 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  const uint64_t misses_before = cache.stats().linear_misses;
  (void)cache.GetLinearPlan(64, 128, 32);   // A: still cached
  (void)cache.GetLinearPlan(64, 128, 80);   // D: still cached
  EXPECT_EQ(cache.stats().linear_misses, misses_before);
  (void)cache.GetLinearPlan(64, 128, 48);   // B: must be re-planned
  EXPECT_EQ(cache.stats().linear_misses, misses_before + 1);

  cache.Clear();
  EXPECT_EQ(cache.capacity(), PlanCache::kDefaultCapacity);
}

TEST(PlanCacheTest, EvictionSpansConvAndLinearPlans) {
  PlanCache& cache = PlanCache::Instance();
  cache.Clear();
  cache.set_capacity(2);

  // An evicted plan stays alive for holders: eviction only forgets it.
  std::shared_ptr<const ConvPlan> held =
      cache.GetConvPlan(ConvGeom{1, 8, 16, 3, 1, 1, 1, 14, 14, 14, 14});
  (void)cache.GetLinearPlan(32, 64, 64);
  (void)cache.GetLinearPlan(32, 64, 96);  // overflow: the conv plan is LRU
  EXPECT_EQ(cache.stats().size, 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_NE(held.get(), nullptr);
  EXPECT_NE(held->algo(), ConvAlgo::kDirect);

  // Lowering the capacity evicts immediately.
  cache.set_capacity(1);
  EXPECT_EQ(cache.stats().size, 1u);
  EXPECT_EQ(cache.stats().evictions, 2u);

  cache.Clear();
}

// ---------------------------------------------------------------------------
// ScratchPool reuse.

TEST(ScratchPoolTest, LeasesAreReused) {
  util::ScratchPool scratch;
  {
    util::ScratchPool::Lease lease = scratch.Acquire(1000);
    EXPECT_GE(lease.size(), 1000u);
  }
  EXPECT_EQ(scratch.allocated_buffers(), 1u);
  EXPECT_EQ(scratch.reused_acquires(), 0u);
  {
    util::ScratchPool::Lease lease = scratch.Acquire(900);
    EXPECT_GE(lease.size(), 900u);
  }
  EXPECT_EQ(scratch.allocated_buffers(), 1u);
  EXPECT_EQ(scratch.reused_acquires(), 1u);
  // Two concurrent leases force a second allocation; both return.
  {
    util::ScratchPool::Lease a = scratch.Acquire(100);
    util::ScratchPool::Lease b = scratch.Acquire(2000);
    EXPECT_NE(a.data(), b.data());
  }
  EXPECT_EQ(scratch.allocated_buffers(), 2u);
}

TEST(ScratchPoolTest, RetentionCapTrimsLargestFirst) {
  // Cap of three 1024-float quanta: the pool may park 12 KiB.
  util::ScratchPool scratch(/*max_retained_bytes=*/3 * 1024 * sizeof(float));
  {
    util::ScratchPool::Lease small = scratch.Acquire(1024);
    util::ScratchPool::Lease medium = scratch.Acquire(2048);
    util::ScratchPool::Lease big = scratch.Acquire(8192);
    EXPECT_EQ(scratch.allocated_buffers(), 3u);
  }
  // The 8192-float buffer blows the cap on release and is dropped; the two
  // buffers that fit together stay parked.
  EXPECT_EQ(scratch.trimmed_buffers(), 1u);
  EXPECT_EQ(scratch.retained_bytes(), (1024 + 2048) * sizeof(float));

  // Largest-first: an oversized straggler is evicted over the smaller
  // resident working set, even though the residents arrived earlier.
  { util::ScratchPool::Lease straggler = scratch.Acquire(4096); }
  EXPECT_EQ(scratch.trimmed_buffers(), 2u);
  EXPECT_EQ(scratch.retained_bytes(), (1024 + 2048) * sizeof(float));
  const size_t allocated = scratch.allocated_buffers();
  { util::ScratchPool::Lease reuse = scratch.Acquire(1024); }
  EXPECT_EQ(scratch.allocated_buffers(), allocated);  // served from the pool
  EXPECT_GE(scratch.reused_acquires(), 1u);
}

TEST(ScratchPoolTest, LeaseMovesAreSafeAndReleaseOnce) {
  util::ScratchPool scratch;
  util::ScratchPool::Lease a = scratch.Acquire(100);
  float* const payload = a.data();
  ASSERT_NE(payload, nullptr);
  payload[0] = 3.5f;

  // Self-move-assignment must leave the lease intact (the reference hides
  // the self-move from compiler diagnostics, not from the operator).
  util::ScratchPool::Lease& self = a;
  a = std::move(self);
  EXPECT_EQ(a.data(), payload);
  EXPECT_EQ(a.data()[0], 3.5f);

  // Chained moves transfer ownership without touching the pool.
  util::ScratchPool::Lease b = std::move(a);
  util::ScratchPool::Lease c;
  c = std::move(b);
  EXPECT_EQ(c.data(), payload);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(scratch.retained_bytes(), 0u);

  // Move-assigning over an active lease returns the overwritten buffer to
  // the pool exactly once.
  util::ScratchPool::Lease d = scratch.Acquire(5000);
  EXPECT_EQ(scratch.allocated_buffers(), 2u);
  d = std::move(c);
  EXPECT_EQ(d.data(), payload);
  EXPECT_GT(scratch.retained_bytes(), 0u);
  const size_t parked = scratch.retained_bytes();
  util::ScratchPool::Lease e = std::move(d);
  EXPECT_EQ(scratch.retained_bytes(), parked);  // the move released nothing
}

TEST(ScratchPoolTest, PlansRunningTwiceReuseScratch) {
  const ConvGeom geom{2, 8, 16, 3, 1, 1, 1, 14, 14, 14, 14};
  const ConvPlan plan(geom);
  ASSERT_NE(plan.algo(), ConvAlgo::kDirect);
  Rng rng(90);
  std::vector<float> x(static_cast<size_t>(2 * 8 * 14 * 14));
  std::vector<float> w(static_cast<size_t>(16 * 8 * 3 * 3));
  for (float& v : x) v = rng.NextFloat();
  for (float& v : w) v = rng.NextFloat();
  std::vector<float> y(static_cast<size_t>(2 * 16 * 14 * 14));
  util::ThreadPool pool(2);
  plan.Forward(x.data(), w.data(), y.data(), &pool);
  const size_t allocated_after_first = plan.scratch()->allocated_buffers();
  plan.Forward(x.data(), w.data(), y.data(), &pool);
  EXPECT_EQ(plan.scratch()->allocated_buffers(), allocated_after_first);
  EXPECT_GT(plan.scratch()->reused_acquires(), 0u);
}

}  // namespace
}  // namespace mmlib
