#pragma once

#include <cstdint>

#include "util/random.h"

namespace mmlib::simnet {

/// Seeded open-loop arrival process on the virtual clock: a Poisson stream
/// of request arrival times with exponential interarrival gaps, drawn from
/// a dedicated Rng stream. Open-loop means arrivals are independent of
/// completions — the standing model of a population of clients far larger
/// than the server's capacity (millions of virtual clients), where finished
/// requests do not slow the stream down. This is the arrival model an
/// overload experiment needs: offered load stays constant even while the
/// server drowns, which is exactly when closed-loop generators silently
/// throttle themselves and hide the collapse.
///
/// Deterministic per seed: the arrival sequence is a pure function of
/// (seed, rate), independent of anything the server does.
class ArrivalProcess {
 public:
  /// `rate_per_second` is the offered load in requests per virtual second;
  /// must be > 0.
  ArrivalProcess(double rate_per_second, uint64_t seed)
      : rate_(rate_per_second), rng_(seed) {}

  double rate_per_second() const { return rate_; }

  /// Virtual time of the next arrival (strictly increasing). The first call
  /// returns the first arrival after time 0.
  double NextArrivalSeconds();

  /// Arrivals generated so far.
  uint64_t arrival_count() const { return count_; }

 private:
  double rate_;
  Rng rng_;
  double next_seconds_ = 0.0;
  uint64_t count_ = 0;
};

/// A population of virtual clients behind an arrival stream. The population
/// is never materialized — millions of clients are modeled by hashing each
/// arrival's sequence number into a stable client id — but ids repeat with
/// the right collision statistics, so per-client state (a closed-loop
/// generator's outstanding-request bookkeeping, a server's per-client
/// accounting) sees a realistic id distribution.
class ClientPopulation {
 public:
  /// `size` is the number of distinct virtual clients; must be > 0.
  ClientPopulation(uint64_t size, uint64_t seed)
      : size_(size), seed_(seed) {}

  uint64_t size() const { return size_; }

  /// Stable client id in [0, size) for the `sequence`-th arrival — a pure
  /// hash, so any subset of the stream maps to the same clients on every
  /// run.
  uint64_t ClientFor(uint64_t sequence) const;

 private:
  uint64_t size_;
  uint64_t seed_;
};

/// SplitMix64-style avalanche of a 64-bit key; the stable hash behind
/// ClientPopulation and the serving layer's per-request deterministic
/// draws (service-time jitter, tenant assignment, replica preference).
uint64_t MixHash(uint64_t key);

}  // namespace mmlib::simnet
