/// Ring all-reduce microbenchmark: runs the data-parallel evaluation flow
/// while sweeping the worker count K, and measures what gradient
/// synchronization costs on the virtual clock — the all-reduce overhead of
/// scaling out (K workers split each step's compute but pay 2(K-1) message
/// rounds per step), what a degraded cohort costs (a straggler window past
/// the bounded wait plus one permanent worker loss), and what a crash
/// mid-all-reduce costs to recover from (detection, restart, rejoin sync,
/// retraining). Verifies the tentpole invariants along the way: every
/// power-of-two K lands bit-identical to the single-worker run, the crashed
/// run lands bit-identical to its clean counterpart, and the degraded run
/// reproduces exactly when re-run. Writes BENCH_allreduce.json.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/recover.h"
#include "hash/sha256.h"
#include "json/json.h"

using namespace mmlib;

namespace {

constexpr int kWorkerSweep[] = {1, 2, 4, 8};

/// Same virtual step cost as micro_recovery: big enough that compute,
/// collective traffic, and recovery all register on the same clock.
constexpr double kStepComputeSeconds = 0.25;

dist::FlowConfig AllReduceFlowConfig(int workers) {
  dist::FlowConfig config;
  config.approach = dist::ApproachKind::kBaseline;
  config.model = models::DefaultConfig(models::Architecture::kMobileNetV2);
  config.model.channel_divisor = 8;
  config.model.image_size = 28;
  config.model.num_classes = 10;
  config.num_nodes = 1;
  config.u3_iterations = 2;
  config.dataset_divisor = 4096;
  config.training_mode = dist::TrainingMode::kReal;
  config.recover_models = false;
  config.train.epochs = 1;
  config.train.max_batches_per_epoch = 3;  // 3 optimizer steps per update
  config.train.seed = 77;
  config.train.sgd.momentum = 0.9f;
  config.train.sgd.learning_rate = 2e-4f;
  config.train.loader.batch_size = 4;
  config.train.loader.image_size = 28;
  config.train.loader.num_classes = 10;
  config.train.loader.seed = config.train.seed;
  config.checkpoint_every_steps = 2;
  config.step_compute_seconds = kStepComputeSeconds;
  config.data_parallel_workers = workers;
  return config;
}

struct RunOutcome {
  dist::FlowResult result;
  double virtual_seconds = 0.0;
  uint64_t messages = 0;
  std::vector<std::string> param_hashes;  // ParamsHash of every saved model
};

RunOutcome RunOnce(dist::FlowConfig config,
                   const simnet::FaultPlan* collective_plan = nullptr) {
  bench::RemoteBacking backing;
  if (collective_plan != nullptr) {
    backing.network.set_collective_fault_plan(*collective_plan);
  }
  dist::EvaluationFlow flow(std::move(config), backing.backends);
  auto result = flow.Run();
  if (!result.ok()) {
    std::cerr << "flow failed: " << result.status() << "\n";
    std::abort();
  }
  RunOutcome outcome;
  outcome.result = std::move(result).value();
  outcome.virtual_seconds = backing.network.TotalTransferSeconds();
  for (const collective::RingWorkerCounters& w :
       outcome.result.collective.workers) {
    outcome.messages += w.messages;
  }
  // Hash the final parameter bytes of every saved model: "bit-identical"
  // below means these, not just record metadata.
  core::StorageBackends local{&backing.docs_raw, &backing.files_raw, nullptr};
  core::ModelRecoverer recoverer(local);
  for (const dist::UseCaseRecord& record : outcome.result.records) {
    auto recovered =
        recoverer.Recover(record.model_id, core::RecoverOptions{});
    if (!recovered.ok()) {
      std::cerr << "recover failed: " << recovered.status() << "\n";
      std::abort();
    }
    outcome.param_hashes.push_back(recovered->model.ParamsHash().ToHex());
  }
  return outcome;
}

bool SameModelBytes(const RunOutcome& a, const RunOutcome& b) {
  return a.param_hashes == b.param_hashes;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "micro_allreduce", "Ring all-reduce scaling, degradation, and recovery",
      "Data-parallel flow (4 updates x 3 steps, 250 ms virtual compute per\n"
      "step split across K ring workers) over the simulated storage link.\n"
      "Sweeps K = 1/2/4/8 (must land bit-identical to K = 1), then prices a\n"
      "degraded cohort (straggler past the bounded wait + one permanent\n"
      "worker loss, must reproduce exactly on re-run) and a crash\n"
      "mid-all-reduce (must land bit-identical to the clean K = 4 run).");

  // --- Scaling sweep -------------------------------------------------------
  std::vector<RunOutcome> sweep;
  for (int workers : kWorkerSweep) {
    sweep.push_back(RunOnce(AllReduceFlowConfig(workers)));
  }
  const RunOutcome& reference = sweep.front();
  const RunOutcome* clean4 = &sweep[2];  // K = 4, reused below

  // --- Degraded cohort: straggler + permanent loss, run twice --------------
  dist::FlowConfig degraded_config = AllReduceFlowConfig(4);
  {
    collective::StragglerWindow straggler;
    straggler.worker = 2;
    straggler.slow_factor = 64.0;  // far past the bounded wait: excluded
    straggler.update = 1;
    straggler.from_step = 1;
    straggler.to_step = 2;
    degraded_config.ring.stragglers.push_back(straggler);
    collective::WorkerLossEvent loss;
    loss.worker = 3;
    loss.update = 3;
    loss.at_step = 1;
    degraded_config.ring.losses.push_back(loss);
  }
  simnet::FaultPlan collective_plan;
  collective_plan.drop_probability = 0.02;
  collective_plan.seed = 0xc011ec71;
  const RunOutcome degraded = RunOnce(degraded_config, &collective_plan);
  const RunOutcome degraded_again = RunOnce(degraded_config, &collective_plan);
  const bool degraded_deterministic =
      SameModelBytes(degraded, degraded_again) &&
      degraded.virtual_seconds == degraded_again.virtual_seconds;

  // --- Crash mid-all-reduce: kill worker 1 inside the reduce ---------------
  dist::FlowConfig crash_config = AllReduceFlowConfig(4);
  dist::NodeCrashEvent crash;
  crash.phase = 2;
  crash.iteration = 1;
  crash.node = 0;
  crash.at_step = 2;
  crash.site = "collective.reduce";
  crash.worker = 1;
  crash_config.crash_schedule.push_back(crash);
  const RunOutcome crashed = RunOnce(crash_config);

  // --- Report --------------------------------------------------------------
  TablePrinter table({"K", "steps", "messages", "virtual", "vs K=1",
                      "bit-identical"});
  for (size_t i = 0; i < sweep.size(); ++i) {
    const RunOutcome& m = sweep[i];
    table.AddRow({std::to_string(kWorkerSweep[i]),
                  std::to_string(m.result.collective.steps),
                  std::to_string(m.messages), bench::Secs(m.virtual_seconds),
                  bench::Secs(m.virtual_seconds - reference.virtual_seconds),
                  SameModelBytes(m, reference) ? "yes" : "NO"});
  }
  table.Print(std::cout);
  std::printf(
      "degraded K=4: %s (+%.4f s, %llu degraded steps) | crash K=4: %s "
      "(+%.4f s)\n",
      degraded_deterministic ? "deterministic" : "NOT DETERMINISTIC",
      degraded.virtual_seconds - clean4->virtual_seconds,
      static_cast<unsigned long long>(degraded.result.collective.degraded_steps),
      SameModelBytes(crashed, *clean4) ? "bit-identical" : "NOT IDENTICAL",
      crashed.virtual_seconds - clean4->virtual_seconds);

  bool scaling_identical = true;
  json::Value rows = json::Value::MakeArray();
  for (size_t i = 0; i < sweep.size(); ++i) {
    const RunOutcome& m = sweep[i];
    const bool identical = SameModelBytes(m, reference);
    scaling_identical = scaling_identical && identical;
    json::Value row = json::Value::MakeObject();
    row.Set("workers", static_cast<int64_t>(kWorkerSweep[i]));
    row.Set("collective_steps",
            static_cast<int64_t>(m.result.collective.steps));
    row.Set("messages", static_cast<int64_t>(m.messages));
    row.Set("virtual_seconds", m.virtual_seconds);
    row.Set("scaling_delta_seconds",
            m.virtual_seconds - reference.virtual_seconds);
    row.Set("bit_identical", identical);
    rows.Append(std::move(row));
  }

  json::Value degraded_doc = json::Value::MakeObject();
  degraded_doc.Set("virtual_seconds", degraded.virtual_seconds);
  degraded_doc.Set("degraded_cost_seconds",
                   degraded.virtual_seconds - clean4->virtual_seconds);
  degraded_doc.Set(
      "degraded_steps",
      static_cast<int64_t>(degraded.result.collective.degraded_steps));
  degraded_doc.Set("collective_retries",
                   static_cast<int64_t>(degraded.result.collective.retries));
  degraded_doc.Set("deterministic", degraded_deterministic);

  json::Value crash_doc = json::Value::MakeObject();
  crash_doc.Set("site", std::string(crash.site));
  crash_doc.Set("virtual_seconds", crashed.virtual_seconds);
  crash_doc.Set("recovery_cost_seconds",
                crashed.virtual_seconds - clean4->virtual_seconds);
  crash_doc.Set(
      "rejoin_syncs",
      static_cast<int64_t>(
          crashed.result.collective.workers[crash.worker].rejoin_syncs));
  crash_doc.Set("bit_identical", SameModelBytes(crashed, *clean4));

  json::Value doc = json::Value::MakeObject();
  doc.Set("bench", "micro_allreduce");
  bench::SetHostMetadata(&doc, /*pool_size=*/0);
  doc.Set("step_compute_seconds", kStepComputeSeconds);
  doc.Set("steps_per_update", static_cast<int64_t>(3));
  doc.Set("all_bit_identical",
          scaling_identical && SameModelBytes(crashed, *clean4));
  doc.Set("results", std::move(rows));
  doc.Set("degraded_cohort", std::move(degraded_doc));
  doc.Set("crash_recovery", std::move(crash_doc));
  const std::string json_text = doc.DumpPretty();
  std::FILE* out = std::fopen("BENCH_allreduce.json", "w");
  if (out != nullptr) {
    std::fwrite(json_text.data(), 1, json_text.size(), out);
    std::fputc('\n', out);
    std::fclose(out);
    std::printf("\nwrote BENCH_allreduce.json\n");
  }

  const bool ok = scaling_identical && SameModelBytes(crashed, *clean4) &&
                  degraded_deterministic;
  std::printf("scaling/crash bit-identical and degraded deterministic: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
