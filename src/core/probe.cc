#include "core/probe.h"

#include "nn/loss.h"

namespace mmlib::core {

namespace {

/// Captures per-layer digests during Forward/Backward.
class ProbeRecorder : public nn::ActivationObserver {
 public:
  explicit ProbeRecorder(ProbeRecord* record) : record_(record) {}

  void OnForward(const std::string& layer_name,
                 const Tensor& output) override {
    record_->forward.push_back(
        ProbeEntry{layer_name, output.ContentHash()});
  }

  void OnBackward(const std::string& layer_name,
                  const Tensor& grad_input) override {
    record_->backward.push_back(
        ProbeEntry{layer_name, grad_input.ContentHash()});
  }

 private:
  ProbeRecord* record_;
};

void SerializeEntries(BytesWriter* writer,
                      const std::vector<ProbeEntry>& entries) {
  writer->WriteU64(entries.size());
  for (const ProbeEntry& entry : entries) {
    writer->WriteString(entry.layer_name);
    writer->WriteRaw(entry.digest.bytes.data(), entry.digest.bytes.size());
  }
}

Result<std::vector<ProbeEntry>> DeserializeEntries(BytesReader* reader) {
  MMLIB_ASSIGN_OR_RETURN(uint64_t count, reader->ReadU64());
  if (count > (1ULL << 24)) {
    return Status::Corruption("probe record entry count out of range");
  }
  std::vector<ProbeEntry> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ProbeEntry entry;
    MMLIB_ASSIGN_OR_RETURN(entry.layer_name, reader->ReadString());
    MMLIB_RETURN_IF_ERROR(
        reader->ReadRaw(entry.digest.bytes.data(), entry.digest.bytes.size()));
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace

Bytes ProbeRecord::Serialize() const {
  BytesWriter writer;
  writer.WriteF32(loss);
  SerializeEntries(&writer, forward);
  SerializeEntries(&writer, backward);
  return writer.TakeBytes();
}

Result<ProbeRecord> ProbeRecord::Deserialize(const Bytes& data) {
  BytesReader reader(data);
  ProbeRecord record;
  MMLIB_ASSIGN_OR_RETURN(record.loss, reader.ReadF32());
  MMLIB_ASSIGN_OR_RETURN(record.forward, DeserializeEntries(&reader));
  MMLIB_ASSIGN_OR_RETURN(record.backward, DeserializeEntries(&reader));
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after probe record");
  }
  return record;
}

Result<ProbeRecord> ProbeModel(nn::Model* model, const data::Batch& batch,
                               nn::ExecutionContext* ctx) {
  ProbeRecord record;
  ProbeRecorder recorder(&record);
  model->set_observer(&recorder);
  model->ZeroGrad();

  auto run = [&]() -> Status {
    MMLIB_ASSIGN_OR_RETURN(Tensor logits, model->Forward(batch.images, ctx));
    MMLIB_ASSIGN_OR_RETURN(nn::LossResult loss,
                           nn::SoftmaxCrossEntropy(logits, batch.labels));
    record.loss = loss.loss;
    MMLIB_RETURN_IF_ERROR(model->Backward(loss.grad_logits, ctx).status());
    return Status::OK();
  };
  const Status status = run();
  model->set_observer(nullptr);
  MMLIB_RETURN_IF_ERROR(status);
  return record;
}

ProbeComparison CompareProbeRecords(const ProbeRecord& a,
                                    const ProbeRecord& b) {
  ProbeComparison comparison;
  auto compare_pass = [&](const std::vector<ProbeEntry>& lhs,
                          const std::vector<ProbeEntry>& rhs,
                          ProbeMismatch::Pass pass) {
    const size_t n = std::max(lhs.size(), rhs.size());
    for (size_t i = 0; i < n; ++i) {
      if (i >= lhs.size() || i >= rhs.size() ||
          lhs[i].layer_name != rhs[i].layer_name ||
          lhs[i].digest != rhs[i].digest) {
        const std::string& name =
            i < lhs.size() ? lhs[i].layer_name
                           : (i < rhs.size() ? rhs[i].layer_name : "");
        comparison.mismatches.push_back(ProbeMismatch{pass, name, i});
      }
    }
  };
  compare_pass(a.forward, b.forward, ProbeMismatch::Pass::kForward);
  compare_pass(a.backward, b.backward, ProbeMismatch::Pass::kBackward);
  comparison.equal = comparison.mismatches.empty() && a.loss == b.loss;
  return comparison;
}

Result<ProbeComparison> CheckReproducibility(nn::Model* model,
                                             const data::Batch& batch,
                                             bool deterministic,
                                             uint64_t seed) {
  // The two runs use equal intentional-randomness seeds; in the
  // non-deterministic configuration the scheduler seeds differ, modeling two
  // runs on an uncontrolled parallel device.
  auto make_ctx = [&](uint64_t scheduler_seed) {
    nn::ExecutionContext ctx =
        deterministic
            ? nn::ExecutionContext::Deterministic(seed)
            : nn::ExecutionContext::NonDeterministic(seed, scheduler_seed);
    ctx.set_training(true);
    return ctx;
  };
  nn::ExecutionContext ctx1 = make_ctx(101);
  MMLIB_ASSIGN_OR_RETURN(ProbeRecord first, ProbeModel(model, batch, &ctx1));
  nn::ExecutionContext ctx2 = make_ctx(202);
  MMLIB_ASSIGN_OR_RETURN(ProbeRecord second, ProbeModel(model, batch, &ctx2));
  return CompareProbeRecords(first, second);
}

}  // namespace mmlib::core
