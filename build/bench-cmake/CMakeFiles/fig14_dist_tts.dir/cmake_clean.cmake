file(REMOVE_RECURSE
  "../bench/fig14_dist_tts"
  "../bench/fig14_dist_tts.pdb"
  "CMakeFiles/fig14_dist_tts.dir/fig14_dist_tts.cc.o"
  "CMakeFiles/fig14_dist_tts.dir/fig14_dist_tts.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_dist_tts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
