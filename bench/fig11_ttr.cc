/// Reproduces paper Figure 11: median time-to-recover (TTR) across use
/// cases and approaches for MobileNetV2 and ResNet-152. Expected shapes:
/// BA flat; PUA a staircase restarting at U1 and U3-2-1 (recursive
/// recovery); MPA the same staircase but much higher (training is
/// reproduced). Real deterministic training with the paper's reduced
/// schedule (two epochs, two batches).
#include <cstdio>

#include "bench/bench_common.h"

using namespace mmlib;
using namespace mmlib::bench;
using namespace mmlib::dist;

namespace {

void Panel(const char* panel_id, models::Architecture arch) {
  std::printf("--- Figure 11(%s): %s, fully updated, CO-512 ---\n", panel_id,
              std::string(models::ArchitectureName(arch)).c_str());

  std::vector<std::string> headers = {"use case"};
  std::vector<FlowResult> results;
  for (ApproachKind approach : {ApproachKind::kBaseline,
                                ApproachKind::kParamUpdate,
                                ApproachKind::kProvenance}) {
    headers.push_back(std::string(ApproachName(approach)));
    FlowConfig config;
    config.approach = approach;
    config.model = TrainScaleModel(arch);
    config.u3_dataset = data::PaperDatasetId::kCocoOutdoor512;
    config.dataset_divisor = 512;
    config.train.epochs = 2;
    config.train.max_batches_per_epoch = 2;
    config.train.loader.batch_size = 4;
    config.training_mode = TrainingMode::kReal;
    config.recover_models = true;
    results.push_back(RunFlowRemote(config));
  }

  TablePrinter table(headers);
  for (const std::string& label : results[0].Labels()) {
    std::vector<std::string> row = {label};
    for (const FlowResult& result : results) {
      row.push_back(Millis(result.MedianTtr(label)));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  // Staircase check: PUA/MPA TTR grows within each U3 phase.
  const double pua_first = results[1].MedianTtr("U3-1-1");
  const double pua_last = results[1].MedianTtr("U3-1-4");
  const double mpa_first = results[2].MedianTtr("U3-1-1");
  const double mpa_last = results[2].MedianTtr("U3-1-4");
  std::printf(
      "staircase (U3-1-1 -> U3-1-4):  PUA %.2fx   MPA %.2fx   (BA stays "
      "flat)\n\n",
      pua_last / pua_first, mpa_last / mpa_first);
}

}  // namespace

int main() {
  PrintHeader(
      "Figure 11", "Median time-to-recover (TTR) across approaches",
      "Recovery of a PUA/MPA model recovers all its base models first\n"
      "(paper Sections 3.2/3.3). All models recovered losslessly (checksum\n"
      "verified); env-check and verify steps included in totals.");
  Panel("a", models::Architecture::kMobileNetV2);
  Panel("b", models::Architecture::kResNet152);
  return 0;
}
