#include "nn/conv2d.h"

#include "kernels/plan_cache.h"
#include "tensor/validate.h"
#include "util/thread_pool.h"
#include <cmath>
#include <cstring>

namespace mmlib::nn {

namespace {

/// Upper bound on forward chunks: enough slack for 16-way pools while
/// keeping per-chunk setup (patch buffer allocation) negligible.
constexpr int64_t kMaxForwardChunks = 64;

/// Upper bound on backward chunks. Backward chunks each carry a
/// weight-gradient scratch buffer of the full weight size, so the count
/// also caps scratch memory. Must be a constant (never the thread count):
/// chunk boundaries feed the fixed-order gradient reduction, and results
/// must not change with the pool size.
constexpr int64_t kMaxBackwardChunks = 8;

}  // namespace

Conv2d::Conv2d(std::string name, int64_t in_channels, int64_t out_channels,
               int64_t kernel_size, int64_t stride, int64_t padding,
               int64_t groups, Rng* rng)
    : Layer(std::move(name)),
      in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_size_(kernel_size),
      stride_(stride),
      padding_(padding),
      groups_(groups),
      group_in_(in_channels / groups),
      group_out_(out_channels / groups) {
  // Kaiming-normal initialization: std = sqrt(2 / fan_in).
  const int64_t fan_in = group_in_ * kernel_size * kernel_size;
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  AddParam("weight",
           Tensor::Gaussian(
               Shape{out_channels, group_in_, kernel_size, kernel_size},
               stddev, rng));
}

void Conv2d::GatherPatch(const float* input, int64_t height, int64_t width,
                         int64_t n, int64_t g, int64_t oy, int64_t ox,
                         float* patch) const {
  const int64_t base_y = oy * stride_ - padding_;
  const int64_t base_x = ox * stride_ - padding_;
  int64_t idx = 0;
  for (int64_t c = 0; c < group_in_; ++c) {
    const int64_t channel = g * group_in_ + c;
    const float* plane =
        input + ((n * in_channels_ + channel) * height) * width;
    for (int64_t ky = 0; ky < kernel_size_; ++ky) {
      const int64_t y = base_y + ky;
      for (int64_t kx = 0; kx < kernel_size_; ++kx) {
        const int64_t x = base_x + kx;
        patch[idx++] = (y >= 0 && y < height && x >= 0 && x < width)
                           ? plane[y * width + x]
                           : 0.0f;
      }
    }
  }
}

Result<Tensor> Conv2d::Forward(const std::vector<const Tensor*>& inputs,
                               ExecutionContext* ctx) {
  MMLIB_RETURN_IF_ERROR(check::ValidateArity(inputs, 1, name_));
  const Tensor& x = *inputs[0];
  if (x.shape().rank() != 4 || x.shape().dim(1) != in_channels_) {
    return Status::InvalidArgument("conv2d " + name_ + ": bad input shape " +
                                   x.shape().ToString());
  }
  cached_input_ = x;
  const int64_t batch = x.shape().dim(0);
  const int64_t height = x.shape().dim(2);
  const int64_t width = x.shape().dim(3);
  const int64_t out_h = (height + 2 * padding_ - kernel_size_) / stride_ + 1;
  const int64_t out_w = (width + 2 * padding_ - kernel_size_) / stride_ + 1;
  if (out_h <= 0 || out_w <= 0) {
    return Status::InvalidArgument("conv2d " + name_ +
                                   ": input too small for kernel");
  }
  cached_out_h_ = out_h;
  cached_out_w_ = out_w;
  has_forward_ = true;

  Tensor y(Shape{batch, out_channels_, out_h, out_w});
  const float* weight = params_[0].value.data();
  const int64_t patch_size = group_in_ * kernel_size_ * kernel_size_;
  const bool fast_det = kernel_size_ == 1 && padding_ == 0;

  // Deterministic executions go through the kernel-plan layer: the plan's
  // reduction order is a pure function of the shape, so any pool size
  // produces bit-identical results. Non-deterministic executions stay on
  // the direct loop below, which models scheduler-driven reduction splits.
  if (ctx->deterministic()) {
    const kernels::ConvGeom geom{batch,        in_channels_, out_channels_,
                                 kernel_size_, stride_,      padding_,
                                 groups_,      height,       width,
                                 out_h,        out_w};
    if (!plan_ || plan_->geom().batch != batch ||
        plan_->geom().height != height || plan_->geom().width != width) {
      plan_ = kernels::PlanCache::Instance().GetConvPlan(geom);
    }
    if (plan_->algo() != kernels::ConvAlgo::kDirect) {
      plan_->Forward(x.data(), weight, y.data(), ctx->pool());
      return y;
    }
  }

  // Shard over (sample, group): every task writes a disjoint channel block
  // of y, and each output element is a complete fixed-order AccumulateDot,
  // so results are bit-identical for any chunking and any thread count.
  const int64_t tasks = batch * groups_;
  const int64_t grain = util::GrainForMaxChunks(tasks, kMaxForwardChunks);
  const bool deterministic = ctx->deterministic();
  const uint64_t epoch = ctx->NextParallelEpoch();
  util::ParallelFor(
      ctx->pool(), tasks, grain,
      [&](int64_t begin, int64_t end, size_t chunk_index) {
        std::vector<float> patch(patch_size);
        Rng scheduler(ctx->ChunkSchedulerSeed(epoch, chunk_index));
        for (int64_t t = begin; t < end; ++t) {
          const int64_t n = t / groups_;
          const int64_t g = t % groups_;
          for (int64_t oy = 0; oy < out_h; ++oy) {
            for (int64_t ox = 0; ox < out_w; ++ox) {
              GatherPatch(x.data(), height, width, n, g, oy, ox, patch.data());
              for (int64_t oc = 0; oc < group_out_; ++oc) {
                const int64_t out_channel = g * group_out_ + oc;
                const float* wrow = weight + out_channel * patch_size;
                y.data()[((n * out_channels_ + out_channel) * out_h + oy) *
                             out_w +
                         ox] =
                    AccumulateDotKernel(wrow, patch.data(), patch_size,
                                        fast_det, deterministic, &scheduler);
              }
            }
          }
        }
      });
  return y;
}

Result<std::vector<Tensor>> Conv2d::Backward(const Tensor& grad_output,
                                             ExecutionContext* ctx) {
  if (!has_forward_) {
    return Status::InvalidArgument("conv2d " + name_ +
                                   ": Backward called before Forward");
  }
  const Tensor& x = cached_input_;
  const int64_t batch = x.shape().dim(0);
  const int64_t height = x.shape().dim(2);
  const int64_t width = x.shape().dim(3);
  const int64_t out_h = cached_out_h_;
  const int64_t out_w = cached_out_w_;
  MMLIB_RETURN_IF_ERROR(check::ValidateShapesMatch(
      grad_output.shape(), Shape{batch, out_channels_, out_h, out_w},
      "conv2d " + name_ + " grad_output"));
  const int64_t patch_size = group_in_ * kernel_size_ * kernel_size_;
  const bool fast_det = kernel_size_ == 1 && padding_ == 0;

  const float* weight = params_[0].value.data();
  float* grad_weight = params_[0].grad.data();
  const size_t gw_numel = static_cast<size_t>(params_[0].grad.numel());
  Tensor grad_input(x.shape());

  const bool deterministic = ctx->deterministic();

  // Mirror Forward's dispatch: deterministic executions of planned shapes
  // run both gradient GEMMs through the plan layer.
  if (deterministic) {
    const kernels::ConvGeom geom{batch,        in_channels_, out_channels_,
                                 kernel_size_, stride_,      padding_,
                                 groups_,      height,       width,
                                 out_h,        out_w};
    if (!plan_ || plan_->geom().batch != batch ||
        plan_->geom().height != height || plan_->geom().width != width) {
      plan_ = kernels::PlanCache::Instance().GetConvPlan(geom);
    }
    if (plan_->algo() != kernels::ConvAlgo::kDirect) {
      plan_->Backward(x.data(), weight, grad_output.data(), grad_input.data(),
                      grad_weight, ctx->pool());
      std::vector<Tensor> grads;
      grads.push_back(std::move(grad_input));
      return grads;
    }
  }
  // Weight gradients accumulate across every output position — on parallel
  // devices this is the classic source of convolution-backward
  // nondeterminism (atomic reduction order). Here every chunk accumulates
  // into its own scratch buffer (compensated for spatial kernels in
  // deterministic mode, paper Section 4.5) and the scratch buffers are
  // reduced in fixed chunk-index order below, so the result never depends
  // on the thread count.
  const bool compensated_weight_grad = deterministic && !fast_det;

  // Weight transposed within each group: [patch_size][group_out]. Shared
  // read-only by all chunks.
  std::vector<float> weight_t(static_cast<size_t>(groups_) * patch_size *
                              group_out_);
  for (int64_t g = 0; g < groups_; ++g) {
    for (int64_t oc = 0; oc < group_out_; ++oc) {
      const float* wrow = weight + (g * group_out_ + oc) * patch_size;
      for (int64_t j = 0; j < patch_size; ++j) {
        weight_t[(g * patch_size + j) * group_out_ + oc] = wrow[j];
      }
    }
  }

  const int64_t grain = util::GrainForMaxChunks(batch, kMaxBackwardChunks);
  const size_t num_chunks =
      static_cast<size_t>(util::NumChunks(batch, grain));
  std::vector<float> weight_grad_scratch(num_chunks * gw_numel, 0.0f);
  const uint64_t epoch = ctx->NextParallelEpoch();
  util::ParallelFor(
      ctx->pool(), batch, grain,
      [&](int64_t n_begin, int64_t n_end, size_t chunk_index) {
        std::vector<float> patch(patch_size);
        std::vector<float> grad_patch(patch_size);
        std::vector<float> gout_vec(group_out_);
        std::vector<float> compensation;
        if (compensated_weight_grad) {
          compensation.assign(gw_numel, 0.0f);
        }
        float* gw_chunk = weight_grad_scratch.data() + chunk_index * gw_numel;
        Rng scheduler(ctx->ChunkSchedulerSeed(epoch, chunk_index));
        for (int64_t n = n_begin; n < n_end; ++n) {
          for (int64_t g = 0; g < groups_; ++g) {
            for (int64_t oy = 0; oy < out_h; ++oy) {
              for (int64_t ox = 0; ox < out_w; ++ox) {
                GatherPatch(x.data(), height, width, n, g, oy, ox,
                            patch.data());
                for (int64_t oc = 0; oc < group_out_; ++oc) {
                  const int64_t out_channel = g * group_out_ + oc;
                  gout_vec[oc] =
                      grad_output.data()[((n * out_channels_ + out_channel) *
                                              out_h +
                                          oy) *
                                             out_w +
                                         ox];
                }
                // Parameter gradients: grad_W[oc] += gout[oc] * patch,
                // accumulated into this chunk's private scratch.
                for (int64_t oc = 0; oc < group_out_; ++oc) {
                  const float gv = gout_vec[oc];
                  if (gv == 0.0f) {
                    continue;
                  }
                  const int64_t row_offset =
                      (g * group_out_ + oc) * patch_size;
                  float* gwrow = gw_chunk + row_offset;
                  if (compensated_weight_grad) {
                    float* comp = compensation.data() + row_offset;
                    for (int64_t j = 0; j < patch_size; ++j) {
                      const float y = gv * patch[j] - comp[j];
                      const float t = gwrow[j] + y;
                      comp[j] = (t - gwrow[j]) - y;
                      gwrow[j] = t;
                    }
                  } else {
                    for (int64_t j = 0; j < patch_size; ++j) {
                      gwrow[j] += gv * patch[j];
                    }
                  }
                }
                // Input gradients: grad_patch[j] = W^T[j] . gout.
                for (int64_t j = 0; j < patch_size; ++j) {
                  grad_patch[j] = AccumulateDotKernel(
                      weight_t.data() + (g * patch_size + j) * group_out_,
                      gout_vec.data(), group_out_, fast_det, deterministic,
                      &scheduler);
                }
                // Scatter grad_patch back to grad_input; sample n belongs
                // to exactly one chunk, so these writes are disjoint.
                const int64_t base_y = oy * stride_ - padding_;
                const int64_t base_x = ox * stride_ - padding_;
                int64_t idx = 0;
                for (int64_t c = 0; c < group_in_; ++c) {
                  const int64_t channel = g * group_in_ + c;
                  float* plane =
                      grad_input.data() +
                      ((n * in_channels_ + channel) * height) * width;
                  for (int64_t ky = 0; ky < kernel_size_; ++ky) {
                    const int64_t yy = base_y + ky;
                    for (int64_t kx = 0; kx < kernel_size_; ++kx) {
                      const int64_t xx = base_x + kx;
                      if (yy >= 0 && yy < height && xx >= 0 && xx < width) {
                        plane[yy * width + xx] += grad_patch[idx];
                      }
                      ++idx;
                    }
                  }
                }
              }
            }
          }
        }
      });

  // Fixed-order reduction of the per-chunk weight gradients; chunk
  // boundaries are thread-count independent, so this sum is bit-exact for
  // every pool size.
  for (size_t c = 0; c < num_chunks; ++c) {
    const float* gw_chunk = weight_grad_scratch.data() + c * gw_numel;
    for (size_t j = 0; j < gw_numel; ++j) {
      grad_weight[j] += gw_chunk[j];
    }
  }

  std::vector<Tensor> grads;
  grads.push_back(std::move(grad_input));
  return grads;
}

}  // namespace mmlib::nn
