# Empty dependencies file for ablation_recovery_cache.
# This may be replaced when dependencies are built.
