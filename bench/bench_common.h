#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "dist/flow.h"
#include "docstore/document_store.h"
#include "filestore/file_store.h"
#include "json/json.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace mmlib::bench {

/// In-memory backends for one experiment run.
struct Backing {
  docstore::InMemoryDocumentStore docs;
  filestore::InMemoryFileStore files;
  core::StorageBackends backends{&docs, &files, nullptr};
};

/// Prints the standard header for a figure/table reproduction.
inline void PrintHeader(const std::string& id, const std::string& title,
                        const std::string& setup) {
  std::cout << "\n=== " << id << ": " << title << " ===\n";
  if (!setup.empty()) {
    std::cout << setup << "\n";
  }
  std::cout << "\n";
}

/// Runs one evaluation flow against fresh in-memory backends; aborts the
/// benchmark on error (benchmarks have no error recovery story).
inline dist::FlowResult RunFlow(dist::FlowConfig config) {
  Backing backing;
  dist::EvaluationFlow flow(std::move(config), backing.backends);
  auto result = flow.Run();
  if (!result.ok()) {
    std::cerr << "flow failed: " << result.status() << "\n";
    std::abort();
  }
  return std::move(result).value();
}

/// Stamps the host environment into a BENCH_*.json metadata block. The
/// committed reference numbers come from a single-core CI container, where
/// pool sweeps cannot show real parallel speedups — recording the core
/// count with every result makes that visible instead of mysterious.
/// `pool_size` is the thread-pool size the benchmark actually ran with
/// (0 = serial, no pool).
inline void SetHostMetadata(json::Value* doc, size_t pool_size) {
  doc->Set("hardware_concurrency",
           static_cast<int64_t>(std::thread::hardware_concurrency()));
  doc->Set("thread_pool_size", static_cast<int64_t>(pool_size));
}

/// Cost model of the paper's storage services (MongoDB on a third machine +
/// shared external storage): roughly 300 MB/s effective throughput and a
/// millisecond per operation, derived from the paper's baseline numbers
/// (saving a 241.7 MB ResNet-152 takes ~0.8 s, Section 4.3).
inline simnet::Link StorageServiceLink() {
  return simnet::Link{300e6, 0.2e-3};
}

/// Backends whose document/file traffic is charged to a simulated storage
/// service link; use for time measurements (TTS/TTR figures), where
/// persistence cost matters. Storage figures use plain Backing.
struct RemoteBacking {
  docstore::InMemoryDocumentStore docs_raw;
  filestore::InMemoryFileStore files_raw;
  simnet::Network network{StorageServiceLink()};
  docstore::RemoteDocumentStore docs{&docs_raw, &network};
  filestore::RemoteFileStore files{&files_raw, &network};
  core::StorageBackends backends{&docs, &files, &network};
};

/// RunFlow against storage reached over the simulated service link.
inline dist::FlowResult RunFlowRemote(dist::FlowConfig config) {
  RemoteBacking backing;
  dist::EvaluationFlow flow(std::move(config), backing.backends);
  auto result = flow.Run();
  if (!result.ok()) {
    std::cerr << "flow failed: " << result.status() << "\n";
    std::abort();
  }
  return std::move(result).value();
}

/// Laptop-scale model configuration used by the storage/TTS figures
/// (channel divisor 4 ~ paper parameter-count ratios preserved).
inline models::ModelConfig StorageScaleModel(models::Architecture arch) {
  models::ModelConfig config = models::DefaultConfig(arch);
  config.channel_divisor = 4;
  config.image_size = 56;
  config.num_classes = 250;
  return config;
}

/// Smaller configuration used by figures that actually (re)train models
/// (TTR and deterministic-training experiments).
inline models::ModelConfig TrainScaleModel(models::Architecture arch) {
  models::ModelConfig config = models::DefaultConfig(arch);
  config.channel_divisor = 8;
  config.image_size = 28;
  config.num_classes = 125;
  return config;
}

/// Dataset divisor that preserves the paper's dataset-to-model byte ratio:
/// parameter counts scale with the square of the channel divisor, so the
/// dataset must shrink by the same factor (DESIGN.md Section 1).
inline uint64_t MatchedDatasetDivisor(const models::ModelConfig& model) {
  return static_cast<uint64_t>(model.channel_divisor * model.channel_divisor);
}

inline std::string Mb(int64_t bytes) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f MB", bytes / 1e6);
  return buffer;
}

inline std::string Kb(int64_t bytes) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f KB", bytes / 1e3);
  return buffer;
}

inline std::string Secs(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.4f s", seconds);
  return buffer;
}

inline std::string Millis(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f ms", seconds * 1e3);
  return buffer;
}

inline std::string Pct(double fraction) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%+.1f%%", fraction * 100.0);
  return buffer;
}

}  // namespace mmlib::bench

