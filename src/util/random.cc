#include "util/random.h"

#include <cmath>

namespace mmlib {

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) {
    s = sm.Next();
  }
}

RngState Rng::SaveState() const {
  RngState state;
  for (int i = 0; i < 4; ++i) {
    state.s[i] = s_[i];
  }
  state.have_cached_gaussian = have_cached_gaussian_;
  state.cached_gaussian = cached_gaussian_;
  return state;
}

void Rng::RestoreState(const RngState& state) {
  for (int i = 0; i < 4; ++i) {
    s_[i] = state.s[i];
  }
  have_cached_gaussian_ = state.have_cached_gaussian;
  cached_gaussian_ = state.cached_gaussian;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Rejection sampling to avoid modulo bias; deterministic for a given state.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

float Rng::NextFloat() {
  return static_cast<float>(NextU64() >> 40) * (1.0f / 16777216.0f);
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) *
         (1.0 / 9007199254740992.0);
}

float Rng::NextUniform(float lo, float hi) {
  return lo + (hi - lo) * NextFloat();
}

float Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller transform; uses only deterministic libm functions.
  float u1 = NextFloat();
  float u2 = NextFloat();
  if (u1 < 1e-12f) {
    u1 = 1e-12f;
  }
  const float r = std::sqrt(-2.0f * std::log(u1));
  const float theta = 2.0f * 3.14159265358979323846f * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

void Rng::Shuffle(std::vector<size_t>* indices) {
  if (indices->empty()) {
    return;
  }
  for (size_t i = indices->size() - 1; i > 0; --i) {
    size_t j = NextBelow(i + 1);
    std::swap((*indices)[i], (*indices)[j]);
  }
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace mmlib
