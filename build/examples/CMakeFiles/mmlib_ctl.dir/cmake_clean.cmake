file(REMOVE_RECURSE
  "CMakeFiles/mmlib_ctl.dir/mmlib_ctl.cpp.o"
  "CMakeFiles/mmlib_ctl.dir/mmlib_ctl.cpp.o.d"
  "mmlib_ctl"
  "mmlib_ctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmlib_ctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
