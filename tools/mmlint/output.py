"""Output formatting: human text, machine JSON, and SARIF 2.1.0."""

from __future__ import annotations

import json
from typing import Dict, List

from .engine import LintResult, all_rule_docs


def render_text(result: LintResult, verbose_coverage: bool = False) -> str:
    lines: List[str] = []
    for f in result.findings:
        lines.append(str(f))
    if result.baselined:
        lines.append(f"mmlint: {len(result.baselined)} baselined finding(s) "
                     "suppressed (tools/mmlint/baseline.json)")
    for fp in result.stale_baseline:
        lines.append(f"mmlint: warning: stale baseline entry {fp} no longer "
                     "matches anything; remove it from baseline.json")
    cov = result.coverage
    if cov:  # empty on file-subset runs (coverage needs the whole graph)
        lines.append(
            "mmlint: crash-point coverage: "
            f"{cov['covered']}/{cov['persistence_call_sites']} persistence "
            f"call site(s) reachable from a crash point "
            f"({cov['coverage_percent']}%), "
            f"{cov['registered_crash_points']} registered crash point(s)")
    if verbose_coverage:
        for s in result.coverage_sites:
            mark = "ok" if s.covered else "UNCOVERED"
            via = ", ".join(s.crash_sites[:4])
            more = (f" (+{len(s.crash_sites) - 4} more)"
                    if len(s.crash_sites) > 4 else "")
            lines.append(f"  [{mark}] {s.path}:{s.line} {s.function} -> "
                         f"{s.sink}() via {via}{more}")
    if result.ok:
        lines.append(f"mmlint: OK ({result.file_count} files clean)")
    else:
        lines.append(f"mmlint: {len(result.findings)} finding(s) in "
                     f"{result.file_count} file(s)")
    return "\n".join(lines) + "\n"


def render_json(result: LintResult) -> str:
    doc = {
        "findings": [f.to_json() for f in result.findings],
        "baselined": [f.to_json() for f in result.baselined],
        "stale_baseline": result.stale_baseline,
        "coverage": result.coverage,
        "coverage_sites": [
            {"path": s.path, "line": s.line, "function": s.function,
             "sink": s.sink, "covered": s.covered,
             "crash_sites": s.crash_sites}
            for s in result.coverage_sites],
        "files": result.file_count,
        "ok": result.ok,
    }
    return json.dumps(doc, indent=2) + "\n"


def render_sarif(result: LintResult) -> str:
    docs = all_rule_docs()
    rules = [{"id": rule_id,
              "shortDescription": {"text": doc}}
             for rule_id, doc in sorted(docs.items())]
    results: List[Dict] = []
    for f in result.findings + result.baselined:
        results.append({
            "ruleId": f.rule,
            "level": "note" if f in result.baselined else "error",
            "message": {"text": f.message},
            "partialFingerprints": {"mmlint/v1": f.fingerprint},
            "suppressions": (
                [{"kind": "external",
                  "justification": "tools/mmlint/baseline.json"}]
                if f in result.baselined else []),
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                    "region": {"startLine": max(f.line, 1)},
                }
            }],
        })
    doc = {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                   "master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "mmlint",
                    "informationUri":
                        "https://example.invalid/mmlib/tools/mmlint",
                    "version": "2.0.0",
                    "rules": rules,
                }
            },
            "results": results,
            "properties": {"crashPointCoverage": result.coverage},
        }],
    }
    return json.dumps(doc, indent=2) + "\n"
