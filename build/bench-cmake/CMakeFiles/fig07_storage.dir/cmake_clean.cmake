file(REMOVE_RECURSE
  "../bench/fig07_storage"
  "../bench/fig07_storage.pdb"
  "CMakeFiles/fig07_storage.dir/fig07_storage.cc.o"
  "CMakeFiles/fig07_storage.dir/fig07_storage.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
