#include <gtest/gtest.h>

#include "hash/merkle_tree.h"
#include "hash/sha256.h"
#include "util/random.h"

namespace mmlib {
namespace {

// --- SHA-256 (FIPS 180-4 test vectors) ---

TEST(Sha256Test, EmptyInput) {
  EXPECT_EQ(
      Sha256::Hash("").ToHex(),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(
      Sha256::Hash("abc").ToHex(),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      Sha256::Hash(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
          .ToHex(),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    hasher.Update(chunk);
  }
  EXPECT_EQ(
      hasher.Finish().ToHex(),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Rng rng(3);
  Bytes data(10000);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.NextBelow(256));
  }
  // Feed in irregular chunk sizes.
  Sha256 hasher;
  size_t pos = 0;
  size_t step = 1;
  while (pos < data.size()) {
    const size_t take = std::min(step, data.size() - pos);
    hasher.Update(data.data() + pos, take);
    pos += take;
    step = step * 2 + 1;
  }
  EXPECT_EQ(hasher.Finish(), Sha256::Hash(data));
}

TEST(Sha256Test, HashPairDependsOnOrder) {
  const Digest a = Sha256::Hash("a");
  const Digest b = Sha256::Hash("b");
  EXPECT_NE(Sha256::HashPair(a, b), Sha256::HashPair(b, a));
}

TEST(DigestTest, HexRoundtrip) {
  const Digest d = Sha256::Hash("roundtrip");
  auto restored = Digest::FromHex(d.ToHex());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value(), d);
}

TEST(DigestTest, FromHexRejectsBadInput) {
  EXPECT_FALSE(Digest::FromHex("abcd").ok());
  EXPECT_FALSE(Digest::FromHex(std::string(63, 'a')).ok());
  EXPECT_FALSE(Digest::FromHex(std::string(64, 'g')).ok());
}

// --- CRC-32 ---

TEST(Crc32Test, KnownVectors) {
  const std::string s = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const uint8_t*>(s.data()), s.size()),
            0xcbf43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  Bytes data(100, 0x55);
  const uint32_t original = Crc32(data);
  data[50] ^= 0x01;
  EXPECT_NE(Crc32(data), original);
}

// --- Merkle tree ---

std::vector<Digest> MakeLeaves(size_t count, uint64_t salt = 0) {
  std::vector<Digest> leaves;
  for (size_t i = 0; i < count; ++i) {
    leaves.push_back(
        Sha256::Hash("leaf-" + std::to_string(i) + "-" + std::to_string(salt)));
  }
  return leaves;
}

TEST(MerkleTreeTest, RequiresLeaves) {
  EXPECT_FALSE(MerkleTree::Build({}).ok());
}

TEST(MerkleTreeTest, EqualLeavesGiveEqualRoot) {
  auto a = MerkleTree::Build(MakeLeaves(13)).value();
  auto b = MerkleTree::Build(MakeLeaves(13)).value();
  EXPECT_EQ(a.root(), b.root());
  EXPECT_EQ(a.leaf_count(), 13u);
}

TEST(MerkleTreeTest, AnyLeafChangeChangesRoot) {
  auto base = MerkleTree::Build(MakeLeaves(8)).value();
  for (size_t i = 0; i < 8; ++i) {
    auto leaves = MakeLeaves(8);
    leaves[i] = Sha256::Hash("changed");
    auto changed = MerkleTree::Build(std::move(leaves)).value();
    EXPECT_NE(changed.root(), base.root()) << "leaf " << i;
  }
}

TEST(MerkleTreeTest, DiffFindsChangedLeaves) {
  auto leaves = MakeLeaves(10);
  auto before = MerkleTree::Build(leaves).value();
  leaves[3] = Sha256::Hash("x");
  leaves[7] = Sha256::Hash("y");
  auto after = MerkleTree::Build(leaves).value();
  auto diff = MerkleTree::Diff(before, after).value();
  EXPECT_EQ(diff.changed_leaves, (std::vector<size_t>{3, 7}));
}

TEST(MerkleTreeTest, DiffOfEqualTreesIsOneComparison) {
  auto a = MerkleTree::Build(MakeLeaves(64)).value();
  auto b = MerkleTree::Build(MakeLeaves(64)).value();
  auto diff = MerkleTree::Diff(a, b).value();
  EXPECT_TRUE(diff.changed_leaves.empty());
  EXPECT_EQ(diff.comparisons, 1u);
}

TEST(MerkleTreeTest, DiffRejectsMismatchedLeafCounts) {
  auto a = MerkleTree::Build(MakeLeaves(8)).value();
  auto b = MerkleTree::Build(MakeLeaves(9)).value();
  EXPECT_FALSE(MerkleTree::Diff(a, b).ok());
}

/// Paper Figure 4: with the last two layers changed, locating them costs 7
/// comparisons for 8 layers, 13 for 64 layers, and 15 for 128 layers.
struct Fig4Case {
  size_t layers;
  size_t expected_comparisons;
};

class MerkleFig4Property : public ::testing::TestWithParam<Fig4Case> {};

TEST_P(MerkleFig4Property, ComparisonCountMatchesPaper) {
  const Fig4Case test_case = GetParam();
  auto leaves = MakeLeaves(test_case.layers);
  auto before = MerkleTree::Build(leaves).value();
  leaves[test_case.layers - 2] = Sha256::Hash("changed-a");
  leaves[test_case.layers - 1] = Sha256::Hash("changed-b");
  auto after = MerkleTree::Build(leaves).value();
  auto diff = MerkleTree::Diff(before, after).value();
  EXPECT_EQ(diff.comparisons, test_case.expected_comparisons);
  EXPECT_EQ(diff.changed_leaves,
            (std::vector<size_t>{test_case.layers - 2, test_case.layers - 1}));
  EXPECT_EQ(before.NaiveComparisonCount(), test_case.layers);
}

INSTANTIATE_TEST_SUITE_P(PaperFigure4, MerkleFig4Property,
                         ::testing::Values(Fig4Case{8, 7}, Fig4Case{64, 13},
                                           Fig4Case{128, 15}));

TEST(MerkleTreeTest, SerializeRoundtrip) {
  auto tree = MerkleTree::Build(MakeLeaves(11)).value();
  auto restored = MerkleTree::Deserialize(tree.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->root(), tree.root());
  EXPECT_EQ(restored->leaf_count(), tree.leaf_count());
  for (size_t i = 0; i < tree.leaf_count(); ++i) {
    EXPECT_EQ(restored->leaf(i), tree.leaf(i));
  }
}

TEST(MerkleTreeTest, DeserializeRejectsCorruptHeader) {
  auto tree = MerkleTree::Build(MakeLeaves(4)).value();
  Bytes data = tree.Serialize();
  data[0] = 0xff;  // leaf_count corrupted beyond padded size
  EXPECT_FALSE(MerkleTree::Deserialize(data).ok());
}

TEST(MerkleTreeTest, DeserializeRejectsTruncation) {
  auto tree = MerkleTree::Build(MakeLeaves(4)).value();
  Bytes data = tree.Serialize();
  data.resize(data.size() - 5);
  EXPECT_FALSE(MerkleTree::Deserialize(data).ok());
}

TEST(MerkleTreeTest, DeserializeRejectsFlippedDigestByte) {
  // Digest bytes are opaque to the parser; only the CRC trailer can catch
  // damage inside them.
  auto tree = MerkleTree::Build(MakeLeaves(4)).value();
  Bytes data = tree.Serialize();
  data[data.size() / 2] ^= 0x01;
  EXPECT_EQ(MerkleTree::Deserialize(data).status().code(),
            StatusCode::kCorruption);
}

/// Property: for any leaf count and changed subset, the diff finds exactly
/// the changed leaves and never needs more comparisons than a naive scan of
/// all padded nodes.
class MerkleDiffProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(MerkleDiffProperty, DiffIsExact) {
  const size_t leaf_count = GetParam();
  Rng rng(leaf_count * 7 + 1);
  for (int round = 0; round < 10; ++round) {
    auto leaves = MakeLeaves(leaf_count);
    std::vector<size_t> changed;
    for (size_t i = 0; i < leaf_count; ++i) {
      if (rng.NextBelow(4) == 0) {
        leaves[i] = Sha256::Hash("r" + std::to_string(round) + "-" +
                                 std::to_string(i));
        changed.push_back(i);
      }
    }
    auto before = MerkleTree::Build(MakeLeaves(leaf_count)).value();
    auto after = MerkleTree::Build(leaves).value();
    auto diff = MerkleTree::Diff(before, after).value();
    EXPECT_EQ(diff.changed_leaves, changed);
  }
}

INSTANTIATE_TEST_SUITE_P(LeafCounts, MerkleDiffProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 17, 33, 100, 129));

}  // namespace
}  // namespace mmlib
