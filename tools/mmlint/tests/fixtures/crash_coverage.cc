// fixture-path: src/persist/fixture_coverage.cc
#include <string>

// A macro *definition* mentioning a sink is not a call site.
#define FIXTURE_WRITE(p, b) AtomicWriteFile((p), (b))

namespace mmlib::persist {

void CoveredWrite(const std::string& path, const std::string& bytes) {
  MMLIB_CRASH_POINT("fixture.covered.before_write");
  AtomicWriteFile(path, bytes);  // covered: crash point in this function
}

void HelperWrite(const std::string& path, const std::string& bytes) {
  MMLIB_CRASH_POINT("fixture.helper");
  AtomicWriteFile(path, bytes);  // covered
}

void RoutedWrite(const std::string& path, const std::string& bytes) {
  HelperWrite(path, bytes);  // no sink call here: the helper owns the site
}

void UncoveredWrite(const std::string& path, const std::string& bytes) {
  AtomicWriteFile(path, bytes);  // finding: no crash point reachable
}

void AllowedUncovered(const std::string& path, const std::string& bytes) {
  AtomicWriteFile(path, bytes);  // lint:allow(crash-point-coverage)
}

void CoveredAsyncHandoff(const std::string& path, const std::string& bytes) {
  MMLIB_CRASH_POINT("fixture.async.enqueue");
  SubmitCheckpointSave(path, bytes);  // covered: guarded handoff
}

void UncoveredAsyncHandoff(const std::string& path, const std::string& bytes) {
  SubmitCheckpointSave(path, bytes);  // finding: unguarded async handoff
}

}  // namespace mmlib::persist
