# Empty dependencies file for fig07_storage.
# This may be replaced when dependencies are built.
