# Empty dependencies file for mmlib_ctl.
# This may be replaced when dependencies are built.
