#include "nn/activations.h"

#include "check/validators.h"
#include "tensor/validate.h"
#include <cmath>

namespace mmlib::nn {

Result<Tensor> ReLU::Forward(const std::vector<const Tensor*>& inputs,
                             ExecutionContext* ctx) {
  (void)ctx;
  MMLIB_RETURN_IF_ERROR(check::ValidateArity(inputs, 1, name_));
  cached_input_ = *inputs[0];
  Tensor y(cached_input_.shape());
  for (int64_t i = 0; i < y.numel(); ++i) {
    float v = cached_input_.data()[i];
    if (v < 0.0f) {
      v = 0.0f;
    } else if (clip_ > 0.0f && v > clip_) {
      v = clip_;
    }
    y.data()[i] = v;
  }
  return y;
}

Result<std::vector<Tensor>> ReLU::Backward(const Tensor& grad_output,
                                           ExecutionContext* ctx) {
  (void)ctx;
  Tensor grad_input(cached_input_.shape());
  for (int64_t i = 0; i < grad_input.numel(); ++i) {
    const float v = cached_input_.data()[i];
    const bool pass = v > 0.0f && (clip_ <= 0.0f || v < clip_);
    grad_input.data()[i] = pass ? grad_output.data()[i] : 0.0f;
  }
  std::vector<Tensor> grads;
  grads.push_back(std::move(grad_input));
  return grads;
}

Result<Tensor> Sigmoid::Forward(const std::vector<const Tensor*>& inputs,
                                ExecutionContext* ctx) {
  (void)ctx;
  MMLIB_RETURN_IF_ERROR(check::ValidateArity(inputs, 1, name_));
  const Tensor& x = *inputs[0];
  Tensor y(x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) {
    y.data()[i] = 1.0f / (1.0f + std::exp(-x.data()[i]));
  }
  cached_output_ = y;
  return y;
}

Result<std::vector<Tensor>> Sigmoid::Backward(const Tensor& grad_output,
                                              ExecutionContext* ctx) {
  (void)ctx;
  Tensor grad_input(cached_output_.shape());
  for (int64_t i = 0; i < grad_input.numel(); ++i) {
    const float y = cached_output_.data()[i];
    grad_input.data()[i] = grad_output.data()[i] * y * (1.0f - y);
  }
  std::vector<Tensor> grads;
  grads.push_back(std::move(grad_input));
  return grads;
}

Result<Tensor> Tanh::Forward(const std::vector<const Tensor*>& inputs,
                             ExecutionContext* ctx) {
  (void)ctx;
  MMLIB_RETURN_IF_ERROR(check::ValidateArity(inputs, 1, name_));
  const Tensor& x = *inputs[0];
  Tensor y(x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) {
    y.data()[i] = std::tanh(x.data()[i]);
  }
  cached_output_ = y;
  return y;
}

Result<std::vector<Tensor>> Tanh::Backward(const Tensor& grad_output,
                                           ExecutionContext* ctx) {
  (void)ctx;
  Tensor grad_input(cached_output_.shape());
  for (int64_t i = 0; i < grad_input.numel(); ++i) {
    const float y = cached_output_.data()[i];
    grad_input.data()[i] = grad_output.data()[i] * (1.0f - y * y);
  }
  std::vector<Tensor> grads;
  grads.push_back(std::move(grad_input));
  return grads;
}

Result<Tensor> Dropout::Forward(const std::vector<const Tensor*>& inputs,
                                ExecutionContext* ctx) {
  MMLIB_RETURN_IF_ERROR(check::ValidateArity(inputs, 1, name_));
  const Tensor& x = *inputs[0];
  if (!ctx->training() || p_ <= 0.0f) {
    mask_.clear();
    return x;
  }
  mask_.resize(static_cast<size_t>(x.numel()));
  Tensor y(x.shape());
  const float scale = 1.0f / (1.0f - p_);
  for (int64_t i = 0; i < x.numel(); ++i) {
    const bool keep = ctx->rng()->NextFloat() >= p_;
    mask_[i] = keep ? 1 : 0;
    y.data()[i] = keep ? x.data()[i] * scale : 0.0f;
  }
  return y;
}

Result<std::vector<Tensor>> Dropout::Backward(const Tensor& grad_output,
                                              ExecutionContext* ctx) {
  (void)ctx;
  Tensor grad_input(grad_output.shape());
  if (mask_.empty()) {
    grad_input = grad_output;
  } else {
    const float scale = 1.0f / (1.0f - p_);
    for (int64_t i = 0; i < grad_output.numel(); ++i) {
      grad_input.data()[i] = mask_[i] ? grad_output.data()[i] * scale : 0.0f;
    }
  }
  std::vector<Tensor> grads;
  grads.push_back(std::move(grad_input));
  return grads;
}

Result<Tensor> Flatten::Forward(const std::vector<const Tensor*>& inputs,
                                ExecutionContext* ctx) {
  (void)ctx;
  MMLIB_RETURN_IF_ERROR(check::ValidateArity(inputs, 1, name_));
  const Tensor& x = *inputs[0];
  input_shape_ = x.shape();
  const int64_t batch = x.shape().dim(0);
  return x.Reshape(Shape{batch, x.numel() / batch});
}

Result<std::vector<Tensor>> Flatten::Backward(const Tensor& grad_output,
                                              ExecutionContext* ctx) {
  (void)ctx;
  MMLIB_ASSIGN_OR_RETURN(Tensor grad_input, grad_output.Reshape(input_shape_));
  std::vector<Tensor> grads;
  grads.push_back(std::move(grad_input));
  return grads;
}

Result<Tensor> Add::Forward(const std::vector<const Tensor*>& inputs,
                            ExecutionContext* ctx) {
  (void)ctx;
  MMLIB_RETURN_IF_ERROR(check::ValidateArity(inputs, arity_, name_));
  MMLIB_RETURN_IF_ERROR(
      check::ValidatePositive(static_cast<int64_t>(arity_), name_));
  Tensor y = *inputs[0];
  for (size_t i = 1; i < inputs.size(); ++i) {
    if (inputs[i]->shape() != y.shape()) {
      return Status::InvalidArgument("add " + name_ + ": shape mismatch");
    }
    y.AddInPlace(*inputs[i]);
  }
  return y;
}

Result<std::vector<Tensor>> Add::Backward(const Tensor& grad_output,
                                          ExecutionContext* ctx) {
  (void)ctx;
  return std::vector<Tensor>(arity_, grad_output);
}

Result<Tensor> Concat::Forward(const std::vector<const Tensor*>& inputs,
                               ExecutionContext* ctx) {
  (void)ctx;
  MMLIB_RETURN_IF_ERROR(check::ValidateArity(inputs, arity_, name_));
  MMLIB_RETURN_IF_ERROR(
      check::ValidatePositive(static_cast<int64_t>(arity_), name_));
  const Shape& first = inputs[0]->shape();
  if (first.rank() != 4) {
    return Status::InvalidArgument("concat " + name_ + ": expects NCHW");
  }
  input_channels_.clear();
  int64_t total_channels = 0;
  for (const Tensor* t : inputs) {
    if (t->shape().rank() != 4 || t->shape().dim(0) != first.dim(0) ||
        t->shape().dim(2) != first.dim(2) ||
        t->shape().dim(3) != first.dim(3)) {
      return Status::InvalidArgument("concat " + name_ +
                                     ": incompatible input shapes");
    }
    input_channels_.push_back(t->shape().dim(1));
    total_channels += t->shape().dim(1);
  }
  const int64_t batch = first.dim(0);
  const int64_t plane = first.dim(2) * first.dim(3);
  output_shape_ = Shape{batch, total_channels, first.dim(2), first.dim(3)};
  Tensor y(output_shape_);
  for (int64_t n = 0; n < batch; ++n) {
    int64_t channel_offset = 0;
    for (size_t k = 0; k < inputs.size(); ++k) {
      const int64_t c_in = input_channels_[k];
      const float* src = inputs[k]->data() + n * c_in * plane;
      float* dst =
          y.data() + (n * total_channels + channel_offset) * plane;
      std::copy(src, src + c_in * plane, dst);
      channel_offset += c_in;
    }
  }
  return y;
}

Result<std::vector<Tensor>> Concat::Backward(const Tensor& grad_output,
                                             ExecutionContext* ctx) {
  (void)ctx;
  const int64_t batch = output_shape_.dim(0);
  const int64_t total_channels = output_shape_.dim(1);
  const int64_t plane = output_shape_.dim(2) * output_shape_.dim(3);
  std::vector<Tensor> grads;
  grads.reserve(arity_);
  int64_t channel_offset = 0;
  for (size_t k = 0; k < arity_; ++k) {
    const int64_t c_in = input_channels_[k];
    Tensor g(Shape{batch, c_in, output_shape_.dim(2), output_shape_.dim(3)});
    for (int64_t n = 0; n < batch; ++n) {
      const float* src =
          grad_output.data() + (n * total_channels + channel_offset) * plane;
      float* dst = g.data() + n * c_in * plane;
      std::copy(src, src + c_in * plane, dst);
    }
    grads.push_back(std::move(g));
    channel_offset += c_in;
  }
  return grads;
}

}  // namespace mmlib::nn
