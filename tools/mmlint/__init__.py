"""mmlint v2 — token- and graph-aware static analysis for mmlib.

Three layers (DESIGN.md "Correctness tooling"):
  1. a real C++ lexer feeding the nine legacy repo rules, plus an
     unused-suppression audit over `lint:allow(...)` comments;
  2. an include-graph pass enforcing the architecture DAG declared in
     tools/mmlint/layers.toml;
  3. a per-TU function index + call graph powering no-wall-clock,
     no-unordered-order-leak, and crash-point-coverage.

Run `python3 -m tools.mmlint --list-rules` for the rule catalog.
"""

__version__ = "2.0.0"
