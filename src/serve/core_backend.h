#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/recover.h"
#include "core/save_service.h"
#include "core/serve_hook.h"
#include "docstore/document_store.h"
#include "env/environment.h"
#include "json/json.h"
#include "nn/model.h"
#include "repl/replicated_store.h"
#include "serve/backend.h"

namespace mmlib::serve {

/// Everything a CoreBackend borrows from the hosting flow. All pointers are
/// non-owning; `save_service`, `recoverer`, `docs`, and `network` are
/// required, `files` is optional (hedged inference reads need it).
struct CoreBackendContext {
  core::SaveService* save_service = nullptr;
  core::ModelRecoverer* recoverer = nullptr;
  docstore::DocumentStore* docs = nullptr;
  repl::ReplicatedFileStore* files = nullptr;
  simnet::Network* network = nullptr;
  /// Template model + metadata for save requests.
  nn::Model* model = nullptr;
  const env::EnvironmentInfo* environment = nullptr;
  json::Value code;
  /// Pre-saved model ids (recover / probe targets, picked by request hash).
  std::vector<std::string> model_ids;
  /// File ids of parameter payloads (hedged inference reads).
  std::vector<std::string> file_ids;
  /// Primary-read cost past which an inference read hedges to a second
  /// replica; <= 0 hedges only on failure.
  double hedge_threshold_seconds = 0.050;
  /// Arithmetic cost of the forward pass after an inference read.
  double inference_forward_seconds = 0.002;
  uint64_t seed = 0xc0debac0;
};

/// The real thing behind the front end: requests execute against the
/// actual core services over replicated stores on simnet. Saves run the
/// configured save approach, recovers run ModelRecoverer, probes read model
/// metadata, inference does a hedged parameter read
/// (repl::ReplicatedFileStore::LoadFileHedged) plus an arithmetic forward
/// cost. Each op runs under a simnet::Network::DeadlineScope carrying the
/// request's deadline, so the store clients' Retriers abandon work whose
/// client has already hung up. Save/recover outcomes also flow back through
/// the core::ServeHook seam, which this backend installs on construction —
/// that is how the serving layer observes core without core including
/// serve.
class CoreBackend : public ServeBackend {
 public:
  explicit CoreBackend(const CoreBackendContext& context);

  BackendOutcome Execute(const Request& request, size_t batch_size,
                         double now_seconds) override;

  /// Ops observed through the ServeHook seam (save + recover completions).
  uint64_t hook_reports() const { return hook_reports_; }
  uint64_t hook_failures() const { return hook_failures_; }
  /// Hedged-read traffic of the inference path (mirrors the store's own
  /// counters, scoped to this backend's lifetime).
  uint64_t hedged_reads() const;
  uint64_t hedge_wins() const;

 private:
  BackendOutcome ExecuteSave(const Request& request);
  BackendOutcome ExecuteRecover(const Request& request);
  BackendOutcome ExecuteProbe(const Request& request);
  BackendOutcome ExecuteInference(const Request& request, size_t batch_size);

  CoreBackendContext context_;
  uint64_t hook_reports_ = 0;
  uint64_t hook_failures_ = 0;
  uint64_t base_hedged_reads_ = 0;
  uint64_t base_hedge_wins_ = 0;
};

}  // namespace mmlib::serve
