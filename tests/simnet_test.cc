#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "simnet/network.h"

namespace mmlib::simnet {
namespace {

TEST(LinkTest, TransferSecondsCombineLatencyAndBandwidth) {
  Link link{1e9, 1e-3};  // 1 GB/s, 1 ms latency
  EXPECT_DOUBLE_EQ(link.TransferSeconds(0), 1e-3);
  EXPECT_DOUBLE_EQ(link.TransferSeconds(1'000'000'000), 1.001);
}

TEST(LinkTest, PresetLinksAreOrdered) {
  // The datacenter link is vastly faster than the vehicle uplink.
  const Link fast = Link::InfiniBand100G();
  const Link slow = Link::Cellular50M();
  EXPECT_LT(fast.TransferSeconds(100 << 20), slow.TransferSeconds(100 << 20));
  EXPECT_LT(fast.latency_seconds, slow.latency_seconds);
}

TEST(NetworkTest, AccumulatesTransfers) {
  Network network(Link{1000.0, 0.5});
  const double t1 = network.Transfer(500);
  EXPECT_DOUBLE_EQ(t1, 1.0);  // 0.5 latency + 500/1000
  network.Transfer(1500);
  EXPECT_EQ(network.TotalBytes(), 2000u);
  EXPECT_EQ(network.MessageCount(), 2u);
  EXPECT_DOUBLE_EQ(network.TotalTransferSeconds(), 1.0 + 2.0);
}

TEST(NetworkTest, ResetClearsState) {
  Network network;
  network.Transfer(1 << 20);
  network.Reset();
  EXPECT_EQ(network.TotalBytes(), 0u);
  EXPECT_EQ(network.MessageCount(), 0u);
  EXPECT_DOUBLE_EQ(network.TotalTransferSeconds(), 0.0);
}

TEST(NetworkTest, InfiniBandIsSubMillisecondForModelSizedPayloads) {
  // Sanity for the paper's setup: a 240 MB ResNet-152 snapshot crosses the
  // 100G link in ~20 ms — network time does not dominate save times.
  Network network(Link::InfiniBand100G());
  const double seconds = network.Transfer(240ull << 20);
  EXPECT_LT(seconds, 0.05);
  EXPECT_GT(seconds, 0.01);
}

TEST(FaultPlanTest, InactiveWithoutProbabilities) {
  EXPECT_FALSE(FaultPlan{}.active());
  FaultPlan plan;
  plan.drop_probability = 0.1;
  EXPECT_TRUE(plan.active());
}

TEST(FaultPlanTest, TryTransferMatchesTransferWithoutPlan) {
  Network network(Link{1000.0, 0.5});
  const TransferAttempt attempt = network.TryTransfer(500);
  EXPECT_TRUE(attempt.status.ok());
  EXPECT_FALSE(attempt.corrupted);
  EXPECT_DOUBLE_EQ(attempt.seconds, 1.0);
  EXPECT_EQ(network.TotalBytes(), 500u);
  EXPECT_EQ(network.FaultCount(), 0u);
}

TEST(FaultPlanTest, CertainDropIsUnavailableAndChargesLatencyOnly) {
  Network network(Link{1000.0, 0.5});
  FaultPlan plan;
  plan.drop_probability = 1.0;
  network.set_fault_plan(plan);

  const TransferAttempt attempt = network.TryTransfer(500);
  EXPECT_EQ(attempt.status.code(), StatusCode::kUnavailable);
  EXPECT_DOUBLE_EQ(attempt.seconds, 0.5);  // latency, no payload time
  EXPECT_EQ(network.DropCount(), 1u);
  // A dropped message moved no bytes but counts as an attempt.
  EXPECT_EQ(network.TotalBytes(), 0u);
  EXPECT_EQ(network.MessageCount(), 1u);
}

TEST(FaultPlanTest, CertainTimeoutChargesTimeoutSeconds) {
  Network network(Link{1000.0, 0.5});
  FaultPlan plan;
  plan.timeout_probability = 1.0;
  plan.timeout_seconds = 2.5;
  network.set_fault_plan(plan);

  const TransferAttempt attempt = network.TryTransfer(500);
  EXPECT_EQ(attempt.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_DOUBLE_EQ(attempt.seconds, 2.5);
  EXPECT_EQ(network.TimeoutCount(), 1u);
  EXPECT_DOUBLE_EQ(network.TotalTransferSeconds(), 2.5);
}

TEST(FaultPlanTest, CertainCorruptionDeliversDamagedPayload) {
  Network network(Link{1000.0, 0.5});
  FaultPlan plan;
  plan.corrupt_probability = 1.0;
  network.set_fault_plan(plan);

  const TransferAttempt attempt = network.TryTransfer(500);
  EXPECT_TRUE(attempt.status.ok());
  EXPECT_TRUE(attempt.corrupted);
  EXPECT_DOUBLE_EQ(attempt.seconds, 1.0);  // full transfer time charged
  EXPECT_EQ(network.CorruptionCount(), 1u);
  EXPECT_EQ(network.TotalBytes(), 500u);

  // CorruptPayload flips exactly one byte.
  const Bytes original(64, 0xAB);
  Bytes damaged = original;
  network.CorruptPayload(&damaged);
  size_t diffs = 0;
  for (size_t i = 0; i < original.size(); ++i) {
    diffs += original[i] != damaged[i] ? 1 : 0;
  }
  EXPECT_EQ(diffs, 1u);
}

TEST(FaultPlanTest, FaultSequenceIsSeedDeterministic) {
  FaultPlan plan;
  plan.drop_probability = 0.2;
  plan.timeout_probability = 0.1;
  plan.corrupt_probability = 0.1;
  plan.seed = 77;

  auto run = [&plan]() {
    Network network;
    network.set_fault_plan(plan);
    std::vector<StatusCode> codes;
    for (int i = 0; i < 200; ++i) {
      codes.push_back(network.TryTransfer(1000).status.code());
    }
    return std::make_pair(codes, network.FaultCount());
  };
  const auto [codes_a, faults_a] = run();
  const auto [codes_b, faults_b] = run();
  EXPECT_EQ(codes_a, codes_b);
  EXPECT_EQ(faults_a, faults_b);
  // With these rates, 200 messages see some but not only faults.
  EXPECT_GT(faults_a, 0u);
  EXPECT_LT(faults_a, 200u);
}

TEST(FaultPlanTest, SetFaultPlanReseedsAndClearsCounters) {
  Network network;
  FaultPlan plan;
  plan.drop_probability = 1.0;
  network.set_fault_plan(plan);
  network.TryTransfer(100);
  EXPECT_EQ(network.DropCount(), 1u);

  network.set_fault_plan(FaultPlan{});
  EXPECT_EQ(network.DropCount(), 0u);
  EXPECT_TRUE(network.TryTransfer(100).status.ok());
}

}  // namespace
}  // namespace mmlib::simnet
