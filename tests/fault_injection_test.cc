#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "audit/determinism_auditor.h"
#include "core/baseline.h"
#include "core/fetch.h"
#include "core/model_code.h"
#include "core/param_update.h"
#include "core/recover.h"
#include "core/save_txn.h"
#include "dist/flow.h"
#include "docstore/document_store.h"
#include "filestore/file_store.h"
#include "models/zoo.h"
#include "simnet/retry.h"
#include "tensor/tensor.h"
#include "util/fs.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace mmlib {
namespace {

/// Seed of the fault plans below; overridable from the environment so CI can
/// sweep several fault schedules over the same assertions
/// (MMLIB_FAULT_SEED=1 ctest -R fault_injection ...).
uint64_t FaultSeed() {
  const char* env = std::getenv("MMLIB_FAULT_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 0x5eedfa17;
}

// ---------------------------------------------------------------------------
// Retrier semantics
// ---------------------------------------------------------------------------

TEST(RetrierTest, TransientFailuresAreRetriedAndBackoffIsCharged) {
  simnet::Network network;
  simnet::RetryPolicy policy;
  policy.initial_backoff_seconds = 0.1;
  simnet::Retrier retrier(policy, &network);

  int calls = 0;
  auto outcome = retrier.Run([&]() -> Result<int> {
    if (++calls < 3) {
      return Status::Unavailable("flaky");
    }
    return 42;
  });
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), 42);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retrier.retry_count(), 2u);
  // Two backoffs of >= 0.1 * (1 - jitter) seconds were charged.
  EXPECT_GT(network.TotalTransferSeconds(), 0.1);
}

TEST(RetrierTest, NonRetryableErrorsPassThroughImmediately) {
  simnet::Network network;
  simnet::Retrier retrier(simnet::RetryPolicy{}, &network);

  int calls = 0;
  auto outcome = retrier.Run([&]() -> Result<int> {
    ++calls;
    return Status::NotFound("gone for good");
  });
  EXPECT_EQ(outcome.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retrier.retry_count(), 0u);
  EXPECT_DOUBLE_EQ(network.TotalTransferSeconds(), 0.0);
}

TEST(RetrierTest, GivesUpAfterMaxAttempts) {
  simnet::Network network;
  simnet::RetryPolicy policy;
  policy.max_attempts = 4;
  simnet::Retrier retrier(policy, &network);

  int calls = 0;
  const Status status = retrier.Run([&]() -> Status {
    ++calls;
    return Status::DeadlineExceeded("always late");
  });
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(retrier.retry_count(), 3u);
}

TEST(RetrierTest, TotalDeadlineFailsFastWithAttemptsLeft) {
  simnet::Network network;
  simnet::RetryPolicy policy;
  policy.max_attempts = 100;
  policy.initial_backoff_seconds = 0.1;
  policy.jitter_fraction = 0.0;
  policy.total_deadline_seconds = 0.35;
  simnet::Retrier retrier(policy, &network);

  int calls = 0;
  const Status status = retrier.Run([&]() -> Status {
    ++calls;
    return Status::Unavailable("replica partitioned away");
  });
  // Backoffs of 0.1 + 0.2 + 0.4 virtual seconds pass the 0.35 s budget
  // after the fourth attempt — long before the 100-attempt ladder would
  // have given up.
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(retrier.deadline_exhausted_count(), 1u);
  EXPECT_GE(network.TotalTransferSeconds(), policy.total_deadline_seconds);
}

TEST(RetrierTest, TotalDeadlineDisabledByDefault) {
  simnet::Network network;
  simnet::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_seconds = 10.0;  // would blow any plausible budget
  simnet::Retrier retrier(policy, &network);

  int calls = 0;
  const Status status = retrier.Run([&]() -> Status {
    ++calls;
    return Status::Unavailable("flaky");
  });
  // With no budget the attempt cap decides, and the transport's own error
  // surfaces instead of DeadlineExceeded.
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retrier.deadline_exhausted_count(), 0u);
}

TEST(RetrierTest, TotalDeadlineIgnoresSuccessAndNonRetryableOutcomes) {
  simnet::Network network;
  network.ChargeSeconds(10.0);  // clock already far past any budget
  simnet::RetryPolicy policy;
  policy.total_deadline_seconds = 1.0;
  simnet::Retrier retrier(policy, &network);

  // A success never trips the budget (it is only checked after a failed
  // retryable attempt)...
  auto ok = retrier.Run([&]() -> Result<int> { return 7; });
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  // ...and neither does a non-retryable failure: the budget must not mask
  // a definitive outcome like NotFound.
  const auto not_found =
      retrier.Run([&]() -> Result<int> { return Status::NotFound("gone"); });
  EXPECT_EQ(not_found.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(retrier.deadline_exhausted_count(), 0u);
}

// ---------------------------------------------------------------------------
// Per-flow fault accounting
// ---------------------------------------------------------------------------

TEST(FaultAccountingTest, ResetZeroesTalliesWithoutTouchingClockOrStreams) {
  simnet::Network network(simnet::Link{1e6, 1e-3});
  simnet::FaultPlan plan;
  plan.drop_probability = 0.1;
  plan.timeout_probability = 0.1;
  plan.corrupt_probability = 0.1;
  plan.timeout_seconds = 0.01;
  plan.seed = FaultSeed();
  network.set_fault_plan(plan);

  {
    simnet::Network::OpScope scope(&network, "flow1.op");
    for (int i = 0; i < 300; ++i) {
      (void)network.TryTransfer(1000);
    }
  }
  ASSERT_GT(network.FaultCount(), 0u);
  ASSERT_EQ(network.PerOpFaultCounters().count("flow1.op"), 1u);
  const double clock_before = network.TotalTransferSeconds();
  const uint64_t messages_before = network.MessageCount();

  network.ResetFaultCounters();
  EXPECT_EQ(network.FaultCount(), 0u);
  EXPECT_EQ(network.DropCount(), 0u);
  EXPECT_EQ(network.TimeoutCount(), 0u);
  EXPECT_EQ(network.CorruptionCount(), 0u);
  EXPECT_TRUE(network.PerOpFaultCounters().empty());
  // The reset is accounting-only: virtual time, message counts, and the
  // fault-decision stream keep going (a second flow sees fresh counters but
  // the same simulated world).
  EXPECT_DOUBLE_EQ(network.TotalTransferSeconds(), clock_before);
  EXPECT_EQ(network.MessageCount(), messages_before);

  {
    simnet::Network::OpScope scope(&network, "flow2.op");
    for (int i = 0; i < 300; ++i) {
      (void)network.TryTransfer(1000);
    }
  }
  // The second flow's tallies stand alone: its label is present, the first
  // flow's is gone, and the totals reflect only post-reset faults.
  EXPECT_GT(network.FaultCount(), 0u);
  EXPECT_EQ(network.PerOpFaultCounters().count("flow1.op"), 0u);
  ASSERT_EQ(network.PerOpFaultCounters().count("flow2.op"), 1u);
  EXPECT_EQ(network.PerOpFaultCounters().at("flow2.op").Total(),
            network.FaultCount());
}

TEST(FaultAccountingTest, OpScopesNestWithInnermostLabelWinning) {
  simnet::Network network;
  simnet::FaultPlan plan;
  plan.drop_probability = 1.0;  // every message faults deterministically
  plan.seed = FaultSeed();
  network.set_fault_plan(plan);

  simnet::Network::OpScope outer(&network, "save.model");
  (void)network.TryTransfer(10);
  {
    simnet::Network::OpScope inner(&network, "file.write");
    (void)network.TryTransfer(10);
  }
  (void)network.TryTransfer(10);
  const auto& per_op = network.PerOpFaultCounters();
  ASSERT_EQ(per_op.count("save.model"), 1u);
  ASSERT_EQ(per_op.count("file.write"), 1u);
  EXPECT_EQ(per_op.at("save.model").drops, 2u);
  EXPECT_EQ(per_op.at("file.write").drops, 1u);
}

// ---------------------------------------------------------------------------
// Crash-safe local persistence
// ---------------------------------------------------------------------------

std::string FreshRoot(const std::string& tag) {
  const std::string root = ::testing::TempDir() + "/fault-" + tag;
  std::filesystem::remove_all(root);
  return root;
}

void WriteRaw(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  ASSERT_TRUE(out.good()) << path;
}

TEST(CrashSafetyTest, InterruptedSaveLeavesStoreConsistent) {
  const std::string root = FreshRoot("interrupted");
  auto store = filestore::LocalDirFileStore::Open(root).value();
  const std::string id = store->SaveFile(Bytes(100, 7)).value();

  // Simulate a write interrupted mid-flight (leftover temporary) plus
  // foreign files sharing the directory.
  WriteRaw(root + "/file-dead.bin" + util::kTmpSuffix, "partial content");
  WriteRaw(root + "/README.txt", "not store data");

  // Accounting sees only committed *.bin entries.
  EXPECT_EQ(store->FileCount(), 1u);
  EXPECT_EQ(store->TotalStoredBytes(), 100u);
  // The committed file is intact, and the store keeps working after the
  // "crash": a reopened store saves and loads normally.
  EXPECT_EQ(store->LoadFile(id).value(), Bytes(100, 7));
  auto reopened = filestore::LocalDirFileStore::Open(root).value();
  const std::string id2 = reopened->SaveFile(Bytes(50, 8)).value();
  EXPECT_EQ(reopened->LoadFile(id2).value(), Bytes(50, 8));
  EXPECT_EQ(reopened->FileCount(), 2u);
  std::filesystem::remove_all(root);
}

TEST(CrashSafetyTest, FailedAtomicWriteCleansUpAndKeepsOldContent) {
  const std::string root = FreshRoot("atomic");
  std::filesystem::create_directories(root);
  const std::string path = root + "/target.bin";
  const Bytes old_content{1, 2, 3};
  ASSERT_TRUE(
      util::AtomicWriteFile(path, old_content.data(), old_content.size())
          .ok());

  // Writing into a non-existent directory fails before reaching `path`.
  const std::string bad_path = root + "/no/such/dir/target.bin";
  const Bytes next(10, 9);
  EXPECT_EQ(util::AtomicWriteFile(bad_path, next.data(), next.size()).code(),
            StatusCode::kIoError);
  EXPECT_FALSE(std::filesystem::exists(bad_path + util::kTmpSuffix));

  // The original destination still holds the old content.
  auto store = filestore::LocalDirFileStore::Open(root).value();
  EXPECT_EQ(store->TotalStoredBytes(), old_content.size());
  std::filesystem::remove_all(root);
}

TEST(CrashSafetyTest, DocumentStoreCountsOnlyJsonEntries) {
  const std::string root = FreshRoot("docjson");
  auto docs = docstore::PersistentDocumentStore::Open(root).value();
  json::Value doc = json::Value::MakeObject();
  doc.Set("kind", std::string("test"));
  const std::string id = docs->Insert("models", doc).value();
  const size_t committed_bytes = docs->TotalStoredBytes();
  ASSERT_GT(committed_bytes, 0u);

  WriteRaw(root + "/models/ghost.json" + util::kTmpSuffix, "{\"partial\":");
  WriteRaw(root + "/models/notes.md", "foreign file");

  EXPECT_EQ(docs->DocumentCount(), 1u);
  EXPECT_EQ(docs->TotalStoredBytes(), committed_bytes);
  EXPECT_EQ(docs->ListIds("models").value(), std::vector<std::string>{id});
  std::filesystem::remove_all(root);
}

TEST(CrashSafetyTest, DeleteDistinguishesIoErrorFromNotFound) {
  const std::string root = FreshRoot("delete");
  auto store = filestore::LocalDirFileStore::Open(root).value();

  // Nothing at the path: NotFound.
  EXPECT_EQ(store->Delete("absent").code(), StatusCode::kNotFound);

  // A non-empty directory squatting on the id's path: removal itself fails,
  // which must surface as IoError, not "was already gone".
  std::filesystem::create_directories(root + "/blocked.bin/child");
  WriteRaw(root + "/blocked.bin/child/data", "x");
  EXPECT_EQ(store->Delete("blocked").code(), StatusCode::kIoError);

  const std::string doc_root = FreshRoot("delete-docs");
  auto docs = docstore::PersistentDocumentStore::Open(doc_root).value();
  EXPECT_EQ(docs->Delete("models", "absent").code(), StatusCode::kNotFound);
  std::filesystem::create_directories(doc_root + "/models/stuck.json/child");
  WriteRaw(doc_root + "/models/stuck.json/child/data", "x");
  EXPECT_EQ(docs->Delete("models", "stuck").code(), StatusCode::kIoError);

  std::filesystem::remove_all(root);
  std::filesystem::remove_all(doc_root);
}

// ---------------------------------------------------------------------------
// Save rollback
// ---------------------------------------------------------------------------

models::ModelConfig TinyConfig() {
  models::ModelConfig config =
      models::DefaultConfig(models::Architecture::kMobileNetV2);
  config.channel_divisor = 8;
  config.image_size = 28;
  config.num_classes = 10;
  return config;
}

/// Document store failing every insert into one collection — models a
/// database becoming unreachable partway through a multi-step save.
class FailingDocumentStore : public docstore::DocumentStore {
 public:
  FailingDocumentStore(docstore::DocumentStore* backend,
                       std::string fail_collection)
      : backend_(backend), fail_collection_(std::move(fail_collection)) {}

  Result<std::string> Insert(const std::string& collection,
                             json::Value doc) override {
    if (collection == fail_collection_) {
      return Status::IoError("injected: insert into " + collection);
    }
    return backend_->Insert(collection, std::move(doc));
  }
  Result<json::Value> Get(const std::string& collection,
                          const std::string& id) override {
    return backend_->Get(collection, id);
  }
  Status Delete(const std::string& collection,
                const std::string& id) override {
    return backend_->Delete(collection, id);
  }
  Result<std::vector<std::string>> ListIds(
      const std::string& collection) override {
    return backend_->ListIds(collection);
  }
  size_t TotalStoredBytes() const override {
    return backend_->TotalStoredBytes();
  }
  size_t DocumentCount() const override { return backend_->DocumentCount(); }

 private:
  docstore::DocumentStore* backend_;
  std::string fail_collection_;
};

TEST(SaveRollbackTest, FailedSaveLeavesNoOrphanedWrites) {
  docstore::InMemoryDocumentStore docs;
  filestore::InMemoryFileStore files;
  // The model-document insert is the *last* step of a baseline save; by the
  // time it fails, the env doc, code doc, Merkle file, and parameter
  // payload have all been written — and must all be rolled back.
  FailingDocumentStore failing(&docs, core::kModelsCollection);
  core::StorageBackends backends{&failing, &files, nullptr, nullptr};

  auto model = models::BuildModel(TinyConfig()).value();
  core::SaveRequest request;
  request.model = &model;
  request.code = core::CodeDescriptorFor(TinyConfig());
  const env::EnvironmentInfo environment = env::CollectEnvironment();
  request.environment = &environment;

  core::BaselineSaveService service(backends);
  const auto result = service.SaveModel(request);
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_EQ(files.FileCount(), 0u) << "orphaned files after failed save";
  EXPECT_EQ(files.TotalStoredBytes(), 0u);
  EXPECT_EQ(docs.DocumentCount(), 0u) << "orphaned docs after failed save";

  // The same save against healthy backends commits everything.
  core::StorageBackends healthy{&docs, &files, nullptr, nullptr};
  core::BaselineSaveService ok_service(healthy);
  ASSERT_TRUE(ok_service.SaveModel(request).ok());
  EXPECT_EQ(files.FileCount(), 2u);   // params payload + Merkle tree
  EXPECT_EQ(docs.DocumentCount(), 3u);  // env + code + model
}

TEST(SaveRollbackTest, TransactionKeepsWritesAfterCommit) {
  docstore::InMemoryDocumentStore docs;
  filestore::InMemoryFileStore files;
  core::StorageBackends backends{&docs, &files, nullptr, nullptr};
  {
    core::SaveTransaction txn(backends);
    ASSERT_TRUE(txn.SaveFile(Bytes(10, 1)).ok());
    json::Value doc = json::Value::MakeObject();
    doc.Set("k", std::string("v"));
    ASSERT_TRUE(txn.Insert("models", std::move(doc)).ok());
    EXPECT_EQ(txn.pending_writes(), 2u);
    ASSERT_TRUE(txn.Commit().ok());
    EXPECT_EQ(txn.pending_writes(), 0u);
  }
  EXPECT_EQ(files.FileCount(), 1u);
  EXPECT_EQ(docs.DocumentCount(), 1u);
  {
    core::SaveTransaction txn(backends);
    ASSERT_TRUE(txn.SaveFile(Bytes(10, 2)).ok());
    // No Commit: destruction rolls the write back.
  }
  EXPECT_EQ(files.FileCount(), 1u);
}

// ---------------------------------------------------------------------------
// Corruption re-fetch
// ---------------------------------------------------------------------------

/// File store that damages the first `corrupt_loads` LoadFile results by one
/// byte — the stored copy stays intact, exactly like in-flight corruption.
class CorruptingFileStore : public filestore::FileStore {
 public:
  CorruptingFileStore(filestore::FileStore* backend, int corrupt_loads)
      : backend_(backend), remaining_(corrupt_loads) {}

  Result<Bytes> LoadFile(const std::string& id) override {
    auto loaded = backend_->LoadFile(id);
    if (loaded.ok() && remaining_ > 0) {
      --remaining_;
      Bytes damaged = std::move(loaded).value();
      if (!damaged.empty()) {
        damaged[damaged.size() / 2] ^= 0x01;
      }
      return damaged;
    }
    return loaded;
  }
  Result<std::string> SaveFile(const Bytes& content) override {
    return backend_->SaveFile(content);
  }
  Status Delete(const std::string& id) override {
    return backend_->Delete(id);
  }
  Result<size_t> FileSize(const std::string& id) override {
    return backend_->FileSize(id);
  }
  size_t TotalStoredBytes() const override {
    return backend_->TotalStoredBytes();
  }
  size_t FileCount() const override { return backend_->FileCount(); }

 private:
  filestore::FileStore* backend_;
  int remaining_;
};

class RefetchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    backends_ = core::StorageBackends{&docs_, &files_, nullptr, nullptr};
    model_ = std::make_unique<nn::Model>(
        models::BuildModel(TinyConfig()).value());
    environment_ = env::CollectEnvironment();
  }

  core::SaveRequest MakeRequest(std::string base_id = "") {
    core::SaveRequest request;
    request.model = model_.get();
    request.code = core::CodeDescriptorFor(TinyConfig());
    request.environment = &environment_;
    request.base_model_id = std::move(base_id);
    return request;
  }

  docstore::InMemoryDocumentStore docs_;
  filestore::InMemoryFileStore files_;
  core::StorageBackends backends_;
  std::unique_ptr<nn::Model> model_;
  env::EnvironmentInfo environment_;
};

TEST_F(RefetchTest, RecovererRefetchesCorruptedChunks) {
  core::BaselineSaveService service(backends_);
  const std::string id = service.SaveModel(MakeRequest()).value().model_id;

  // The first two fetches of the parameter payload arrive damaged; the
  // per-chunk CRC-32 catches it and the recoverer re-requests.
  CorruptingFileStore flaky(&files_, /*corrupt_loads=*/2);
  core::StorageBackends flaky_backends{&docs_, &flaky, nullptr, nullptr};
  core::ModelRecoverer recoverer(flaky_backends);
  auto recovered = recoverer.Recover(id, core::RecoverOptions{});
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_TRUE(recovered->checksum_verified);
  EXPECT_EQ(recoverer.corruption_refetches(), 2u);
  EXPECT_EQ(recovered->model.ParamsHash().ToHex(),
            model_->ParamsHash().ToHex());
}

TEST_F(RefetchTest, PersistentCorruptionEventuallyFails) {
  core::BaselineSaveService service(backends_);
  const std::string id = service.SaveModel(MakeRequest()).value().model_id;

  // Every fetch is damaged — e.g. the stored copy itself rotted. After
  // kMaxFetchAttempts the recoverer gives up with Corruption.
  CorruptingFileStore rotten(&files_, /*corrupt_loads=*/1000);
  core::StorageBackends rotten_backends{&docs_, &rotten, nullptr, nullptr};
  core::ModelRecoverer recoverer(rotten_backends);
  auto recovered = recoverer.Recover(id, core::RecoverOptions{});
  EXPECT_EQ(recovered.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(recoverer.corruption_refetches(),
            static_cast<uint64_t>(core::kMaxFetchAttempts - 1));
}

TEST_F(RefetchTest, ParamUpdateSaveRefetchesCorruptedBaseMerkleTree) {
  core::ParamUpdateSaveService service(backends_);
  const std::string base_id =
      service.SaveModel(MakeRequest()).value().model_id;

  // Saving the derived model loads the base's Merkle tree; the first copy
  // arrives damaged and is re-fetched instead of failing the save.
  CorruptingFileStore flaky(&files_, /*corrupt_loads=*/1);
  core::StorageBackends flaky_backends{&docs_, &flaky, nullptr, nullptr};
  core::ParamUpdateSaveService derived_service(flaky_backends);
  auto saved = derived_service.SaveModel(MakeRequest(base_id));
  ASSERT_TRUE(saved.ok()) << saved.status();
  EXPECT_EQ(derived_service.corruption_refetches(), 1u);
}

// ---------------------------------------------------------------------------
// Flaky-network determinism
// ---------------------------------------------------------------------------

struct WorkloadTrace {
  std::vector<StatusCode> op_codes;
  uint64_t file_retries = 0;
  uint64_t doc_retries = 0;
  uint64_t messages = 0;
  uint64_t faults = 0;
  double seconds = 0.0;

  bool operator==(const WorkloadTrace& other) const {
    return op_codes == other.op_codes &&
           file_retries == other.file_retries &&
           doc_retries == other.doc_retries && messages == other.messages &&
           faults == other.faults && seconds == other.seconds;
  }
};

/// A fixed store workload over a flaky link. Everything observable —
/// per-op outcomes, retry counts, message counts, virtual time — must be a
/// pure function of the fault seed.
WorkloadTrace RunFlakyWorkload(uint64_t seed) {
  filestore::InMemoryFileStore file_backend;
  docstore::InMemoryDocumentStore doc_backend;
  simnet::Network network(simnet::Link{1e6, 1e-3});
  simnet::FaultPlan plan;
  plan.drop_probability = 0.05;
  plan.timeout_probability = 0.05;
  plan.corrupt_probability = 0.05;
  plan.timeout_seconds = 0.01;
  plan.seed = seed;
  network.set_fault_plan(plan);

  filestore::RemoteFileStore files(&file_backend, &network);
  docstore::RemoteDocumentStore docs(&doc_backend, &network);

  WorkloadTrace trace;
  std::vector<std::string> file_ids;
  for (int i = 0; i < 15; ++i) {
    auto saved = files.SaveFile(Bytes(200 + 13 * i, uint8_t(i)));
    trace.op_codes.push_back(saved.status().code());
    if (saved.ok()) {
      file_ids.push_back(std::move(saved).value());
    }
    json::Value doc = json::Value::MakeObject();
    doc.Set("round", static_cast<int64_t>(i));
    trace.op_codes.push_back(docs.Insert("models", std::move(doc))
                                 .status()
                                 .code());
  }
  for (const std::string& id : file_ids) {
    trace.op_codes.push_back(files.LoadFile(id).status().code());
  }
  trace.op_codes.push_back(docs.ListIds("models").status().code());

  trace.file_retries = files.retry_count();
  trace.doc_retries = docs.retry_count();
  trace.messages = network.MessageCount();
  trace.faults = network.FaultCount();
  trace.seconds = network.TotalTransferSeconds();
  return trace;
}

TEST(FlakyNetworkTest, RetryCountsAreSeedDeterministic) {
  const uint64_t seed = FaultSeed();
  const WorkloadTrace first = RunFlakyWorkload(seed);
  const WorkloadTrace second = RunFlakyWorkload(seed);
  EXPECT_TRUE(first == second)
      << "same seed, different trace: retries " << first.file_retries << "/"
      << first.doc_retries << " vs " << second.file_retries << "/"
      << second.doc_retries << ", messages " << first.messages << " vs "
      << second.messages;
  // The fault rates are high enough that the workload actually retried.
  EXPECT_GT(first.faults, 0u);
  EXPECT_GT(first.file_retries + first.doc_retries, 0u);
}

// ---------------------------------------------------------------------------
// DIST flow under faults
// ---------------------------------------------------------------------------

struct FlowOutcome {
  uint64_t file_retries = 0;
  uint64_t doc_retries = 0;
  uint64_t messages = 0;
  uint64_t faults = 0;
  size_t model_count = 0;
  std::string last_params_hash;
};

/// Runs a 5-node DIST evaluation flow over a faulty link and recovers the
/// final model. Every count and the recovered parameter hash must be
/// independent of the thread-pool size and reproducible for a fixed seed.
FlowOutcome RunFaultyDistFlow(size_t pool_size, uint64_t seed) {
  docstore::InMemoryDocumentStore doc_backend;
  filestore::InMemoryFileStore file_backend;
  simnet::Network network;
  simnet::FaultPlan plan;
  plan.drop_probability = 0.03;
  plan.timeout_probability = 0.02;
  plan.corrupt_probability = 0.02;
  plan.timeout_seconds = 0.01;
  plan.seed = seed;
  network.set_fault_plan(plan);
  docstore::RemoteDocumentStore docs(&doc_backend, &network);
  filestore::RemoteFileStore files(&file_backend, &network);
  util::ThreadPool pool(pool_size);
  core::StorageBackends backends{&docs, &files, &network, &pool};

  dist::FlowConfig config;
  config.approach = dist::ApproachKind::kBaseline;
  config.model = models::DefaultConfig(models::Architecture::kMobileNetV2);
  config.model.channel_divisor = 8;
  config.model.image_size = 28;
  config.model.num_classes = 125;
  config.num_nodes = 5;
  config.u3_iterations = 2;
  config.dataset_divisor = 4096;
  config.training_mode = dist::TrainingMode::kSimulated;
  config.recover_models = true;

  dist::EvaluationFlow flow(config, backends);
  auto result = flow.Run();
  EXPECT_TRUE(result.ok()) << result.status();

  FlowOutcome outcome;
  if (result.ok()) {
    outcome.model_count = result->records.size();
    for (const dist::UseCaseRecord& record : result->records) {
      EXPECT_TRUE(record.recovered) << record.label;
    }
    core::ModelRecoverer recoverer(backends);
    auto last = recoverer.Recover(result->records.back().model_id,
                                  core::RecoverOptions{});
    EXPECT_TRUE(last.ok()) << last.status();
    if (last.ok()) {
      outcome.last_params_hash = last->model.ParamsHash().ToHex();
      // The recovered model still executes bit-reproducibly.
      Rng rng(7);
      Tensor input = Tensor::Gaussian(Shape{2, 3, 28, 28}, 1.0f, &rng);
      EXPECT_TRUE(audit::AuditDeterminism(&last->model, input, /*seed=*/3)
                      .ok());
    }
  }
  outcome.file_retries = files.retry_count();
  outcome.doc_retries = docs.retry_count();
  outcome.messages = network.MessageCount();
  outcome.faults = network.FaultCount();
  return outcome;
}

TEST(FaultyFlowTest, Dist5FlowIsDeterministicAcrossRunsAndPoolSizes) {
  const uint64_t seed = FaultSeed();
  const FlowOutcome serial = RunFaultyDistFlow(/*pool_size=*/1, seed);
  ASSERT_EQ(serial.model_count, 22u);  // 2 + 5 nodes * 2 phases * 2 iters
  EXPECT_FALSE(serial.last_params_hash.empty());
  // The plan's rates make faults (and therefore retries) actually happen.
  EXPECT_GT(serial.faults, 0u);

  const FlowOutcome repeat = RunFaultyDistFlow(/*pool_size=*/1, seed);
  EXPECT_EQ(serial.file_retries, repeat.file_retries);
  EXPECT_EQ(serial.doc_retries, repeat.doc_retries);
  EXPECT_EQ(serial.messages, repeat.messages);
  EXPECT_EQ(serial.faults, repeat.faults);
  EXPECT_EQ(serial.last_params_hash, repeat.last_params_hash);

  const FlowOutcome parallel = RunFaultyDistFlow(/*pool_size=*/8, seed);
  EXPECT_EQ(serial.file_retries, parallel.file_retries);
  EXPECT_EQ(serial.doc_retries, parallel.doc_retries);
  EXPECT_EQ(serial.messages, parallel.messages);
  EXPECT_EQ(serial.faults, parallel.faults);
  EXPECT_EQ(serial.last_params_hash, parallel.last_params_hash);
}

}  // namespace
}  // namespace mmlib
