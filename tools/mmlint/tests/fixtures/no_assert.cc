// fixture-path: src/core/fixture_assert.cc

namespace mmlib {

int Clamp(int x) {
  assert(x >= 0);  // finding
  return x;
}

int ClampAllowed(int x) {
  assert(x >= 0);  // lint:allow(no-assert)
  return x;
}

int NotAnAssert(Reporter* reporter, int x) {
  reporter->Check(x);
  int assertion = x;  // different identifier: no finding
  return assertion;
}

}  // namespace mmlib
