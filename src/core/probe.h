#pragma once

#include <string>
#include <vector>

#include "data/dataloader.h"
#include "hash/sha256.h"
#include "nn/model.h"
#include "util/bytes.h"
#include "util/result.h"

namespace mmlib::core {

/// One captured intermediate result: the digest of a layer's output tensor
/// (forward pass) or input gradient (backward pass).
struct ProbeEntry {
  std::string layer_name;
  Digest digest;
};

/// The layer-wise trace of one forward+backward execution. Records can be
/// serialized, moved across machines, and compared — which verifies model
/// reproducibility across machines (paper Section 2.4).
struct ProbeRecord {
  std::vector<ProbeEntry> forward;
  std::vector<ProbeEntry> backward;
  float loss = 0.0f;

  Bytes Serialize() const;
  static Result<ProbeRecord> Deserialize(const Bytes& data);
};

/// A difference between two probe records.
struct ProbeMismatch {
  enum class Pass { kForward, kBackward };
  Pass pass = Pass::kForward;
  std::string layer_name;
  size_t index = 0;
};

/// Outcome of comparing two probe records layer by layer.
struct ProbeComparison {
  bool equal = false;
  std::vector<ProbeMismatch> mismatches;
};

/// The reproducibility probing tool (paper Section 2.4, inspired by Riach's
/// TensorFlow determinism probe): executes a model's forward and backward
/// pass on a given batch and captures the input and output tensors of every
/// layer as digests.
///
/// Executing the same model twice on the same data and comparing the records
/// layer-wise tells whether — and at which layer — the execution diverges.
Result<ProbeRecord> ProbeModel(nn::Model* model, const data::Batch& batch,
                               nn::ExecutionContext* ctx);

/// Compares two records layer by layer over both passes.
ProbeComparison CompareProbeRecords(const ProbeRecord& a,
                                    const ProbeRecord& b);

/// Convenience check: runs the model twice with identically seeded contexts
/// (deterministic per `deterministic`) and returns whether the two traces
/// match — i.e. whether inference and training of the model are reproducible
/// in this configuration.
Result<ProbeComparison> CheckReproducibility(nn::Model* model,
                                             const data::Batch& batch,
                                             bool deterministic,
                                             uint64_t seed);

}  // namespace mmlib::core

