#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hash/sha256.h"
#include "nn/execution_context.h"
#include "tensor/tensor.h"
#include "util/result.h"

namespace mmlib::nn {

/// A named parameter or buffer of a layer. Parameters (trainable=true by
/// default) receive gradients; buffers (e.g. batch-norm running statistics)
/// do not but are part of the model state and are saved/recovered with it.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;       // same shape as value; zero when unused
  bool trainable = true;
  bool is_buffer = false;
};

/// Base class of all neural-network layers.
///
/// A layer transforms one or more input tensors into one output tensor and,
/// for training, maps the output gradient back to input gradients while
/// accumulating parameter gradients. Layers cache whatever they need from
/// Forward for use in the subsequent Backward (single-use, not reentrant).
class Layer {
 public:
  explicit Layer(std::string name) : name_(std::move(name)) {}
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  const std::string& name() const { return name_; }

  /// Stable type tag, e.g. "conv2d"; used in architecture fingerprints.
  virtual std::string_view type() const = 0;

  /// Number of inputs this layer consumes (1 for most; >=2 for Add/Concat).
  virtual size_t arity() const { return 1; }

  /// Computes the layer output.
  virtual Result<Tensor> Forward(const std::vector<const Tensor*>& inputs,
                                 ExecutionContext* ctx) = 0;

  /// Computes input gradients from the output gradient; must be called after
  /// Forward. Parameter gradients accumulate into Param::grad.
  virtual Result<std::vector<Tensor>> Backward(const Tensor& grad_output,
                                               ExecutionContext* ctx) = 0;

  /// Parameters and buffers, in a stable order.
  std::vector<Param>& params() { return params_; }
  const std::vector<Param>& params() const { return params_; }

  /// Total trainable parameter element count.
  int64_t TrainableParamCount() const;

  /// Total element count including buffers.
  int64_t TotalParamCount() const;

  /// Marks all (non-buffer) parameters trainable or frozen.
  void SetTrainable(bool trainable);

  /// True if any parameter of this layer is trainable.
  bool HasTrainableParams() const;

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  /// SHA-256 over all parameter and buffer values of this layer, in order.
  /// This is the per-layer hash used as Merkle-tree leaf (paper Section 3.2).
  Digest ParamHash() const;

  /// ParamHash() with the per-parameter content digests supplied by the
  /// caller (params()[i].value.ContentHash(), in order). Lets Model hash
  /// parameter tensors in parallel with byte-weighted chunking while the
  /// leaf digest stays byte-identical to ParamHash().
  Digest ParamHashWith(const std::vector<Digest>& param_digests) const;

  /// Serializes all parameter and buffer values (not gradients).
  void SerializeParams(BytesWriter* writer) const;

  /// Restores parameter and buffer values; shapes must match.
  Status DeserializeParams(BytesReader* reader);

 protected:
  /// Registers a parameter tensor; returns its index.
  size_t AddParam(std::string name, Tensor value, bool trainable = true,
                  bool is_buffer = false);

  std::string name_;
  std::vector<Param> params_;
};

/// Deterministic-aware accumulation helper shared by Linear and Conv2d:
/// computes sum(a[i] * b[i]) for i in [0, n).
///
/// Deterministic contexts use compensated (Kahan) summation in a fixed
/// order; non-deterministic contexts use plain summation split at a
/// scheduler-chosen point, so results vary run to run. `has_fast_det_kernel`
/// marks layers with a cheap deterministic implementation (accumulation
/// short enough that fixed-order plain summation is used; models PyTorch
/// providing deterministic kernels only for some layers, Section 2.3/4.5).
float AccumulateDot(const float* a, const float* b, size_t n,
                    bool has_fast_det_kernel, ExecutionContext* ctx);

/// Context-free form of AccumulateDot for parallel kernels: each chunk of a
/// ParallelFor owns a private `scheduler_rng` (seeded via
/// ExecutionContext::ChunkSchedulerSeed), so no generator state is shared
/// across threads. Deterministic mode never consults the Rng.
float AccumulateDotKernel(const float* a, const float* b, size_t n,
                          bool has_fast_det_kernel, bool deterministic,
                          Rng* scheduler_rng);

}  // namespace mmlib::nn

