#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace mmlib::util {

/// Suffix appended to a destination path while its content is being
/// written; the temporary is renamed over the destination only after a
/// successful flush. Readers and the stores' accounting ignore files with
/// this suffix, so an interrupted write is never visible as stored data.
inline constexpr const char* kTmpSuffix = ".tmp";

/// Crash-safe whole-file write: writes `size` bytes to `path + ".tmp"`,
/// fsyncs, then atomically renames the temporary over `path` and syncs the
/// parent directory so the rename itself is durable (a rename only becomes
/// crash-proof once the directory entry reaches disk — see SyncDir). On any
/// failure the temporary is removed (best effort) and `path` is left
/// untouched — either the old content or nothing, never a truncated file.
///
/// Crash sites: "fs.atomic.before_rename" (tmp written, nothing visible)
/// and "fs.atomic.rename_lost" (the rename happened in memory but the
/// directory entry never reached disk — the destination vanishes with the
/// crash, the failure mode SyncDir exists to close).
Status AtomicWriteFile(const std::string& path, const uint8_t* data,
                       size_t size);

/// Durability barrier on a directory: fsyncs `dir` so previously renamed or
/// created entries survive a power cut. No-op (returning OK) while disabled
/// via set_sync_durability_enabled — tests and benchmarks skip the physical
/// sync because the simulated crash model unwinds the process instead of
/// cutting power, and CI tmpdirs don't need the I/O.
Status SyncDir(const std::string& dir);

/// Toggles the physical fsync calls in AtomicWriteFile/SyncDir
/// (process-wide; default enabled). Disabling never changes observable
/// behavior short of a real power failure.
void set_sync_durability_enabled(bool enabled);
bool sync_durability_enabled();

/// Removes the file at `path`. Distinguishes the two failure modes that
/// std::filesystem::remove conflates for callers: NotFound when there was
/// nothing to remove, IoError when removal itself failed (permissions,
/// non-empty directory in the file's place, ...). `what` names the entity
/// in error messages, e.g. "file file-3" or "document d in models".
Status RemoveFileStrict(const std::string& path, const std::string& what);

/// Number of regular files directly under `dir` whose name ends with
/// `suffix`. Returns 0 when `dir` does not exist.
size_t CountFilesWithSuffix(const std::string& dir, const std::string& suffix,
                            bool recursive = false);

/// Total size in bytes of regular files under `dir` whose name ends with
/// `suffix`. Returns 0 when `dir` does not exist.
size_t TotalBytesWithSuffix(const std::string& dir, const std::string& suffix,
                            bool recursive = false);

}  // namespace mmlib::util
