// fixture-path: src/serve/fixture_frontend.cc
//
// Serving sinks (AdmitRequest / DispatchRequest / DeliverReply) mirror the
// real src/serve/frontend.cc shape: the sink's own definition carries its
// crash point (serve.admit / serve.dispatch), so every call site is covered
// through the call edge. DeliverReply stands in for an externally defined
// sink: a caller guarding the call itself is covered, an unguarded caller
// must be flagged.

namespace mmlib::serve {

void AdmitRequest(int request) {
  MMLIB_CRASH_POINT("serve.admit");
  Enqueue(request);
}

void DispatchRequest(int request) {
  MMLIB_CRASH_POINT("serve.dispatch");
  Execute(request);
}

void EventLoop(int arrivals) {
  for (int r = 0; r < arrivals; ++r) {
    AdmitRequest(r);     // covered: crash point in the sink itself
    DispatchRequest(r);  // covered
  }
}

void CoveredReply(int request) {
  MMLIB_CRASH_POINT("serve.reply");
  DeliverReply(request);  // covered: guarded at the call site
}

void UncoveredReply(int request) {
  DeliverReply(request);  // finding: no crash point reachable
}

}  // namespace mmlib::serve
