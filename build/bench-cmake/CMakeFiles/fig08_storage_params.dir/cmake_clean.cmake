file(REMOVE_RECURSE
  "../bench/fig08_storage_params"
  "../bench/fig08_storage_params.pdb"
  "CMakeFiles/fig08_storage_params.dir/fig08_storage_params.cc.o"
  "CMakeFiles/fig08_storage_params.dir/fig08_storage_params.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_storage_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
