#pragma once

#include "json/json.h"
#include "models/zoo.h"
#include "nn/model.h"
#include "util/result.h"

namespace mmlib::core {

/// mmlib saves "the model architecture by its implementation in code"
/// (paper Section 3.1). In this reproduction the unit of model code is a
/// *code descriptor*: a JSON document naming a zoo architecture and its
/// build configuration, replayed through models::BuildModel on recovery.
/// The substitution (source text -> replayable descriptor) is documented in
/// DESIGN.md Section 1.

/// Serializes a build configuration into a code descriptor document.
json::Value CodeDescriptorFor(const models::ModelConfig& config);

/// Parses a code descriptor back into a build configuration.
Result<models::ModelConfig> ConfigFromCodeDescriptor(const json::Value& doc);

/// Instantiates a freshly initialized model from a code descriptor.
Result<nn::Model> BuildModelFromCode(const json::Value& doc);

}  // namespace mmlib::core

