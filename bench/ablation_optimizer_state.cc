/// Ablation: the cost of stateful-optimizer state files in MPA provenance.
/// The paper's MPA storage is >99.9% dataset for MobileNetV2 (Section 4.2),
/// which implies momentum-free SGD; with momentum, every provenance save
/// additionally persists velocity buffers of model size. This quantifies
/// that trade-off.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/model_code.h"
#include "core/provenance.h"
#include "core/train_service.h"
#include "env/environment.h"

using namespace mmlib;
using namespace mmlib::bench;

int main() {
  PrintHeader(
      "Ablation", "Optimizer state files in MPA provenance",
      "MobileNetV2 (divisor 4); second derived save in a chain (the first\n"
      "save captures pre-training state, which is empty).");

  const models::ModelConfig model_config =
      StorageScaleModel(models::Architecture::kMobileNetV2);
  const env::EnvironmentInfo environment = env::CollectEnvironment();
  data::SyntheticImageDataset dataset(data::PaperDatasetId::kCocoOutdoor512,
                                      512);

  TablePrinter table({"sgd momentum", "state file", "MPA storage / save",
                      "dataset share"});
  for (const float momentum : {0.0f, 0.9f}) {
    auto model = models::BuildModel(model_config).value();
    Backing backing;
    core::ProvenanceSaveService service(backing.backends);
    core::SaveRequest request;
    request.model = &model;
    request.code = core::CodeDescriptorFor(model_config);
    request.environment = &environment;
    std::string base_id = service.SaveModel(request).value().model_id;

    core::TrainConfig train_config;
    train_config.epochs = 1;
    train_config.max_batches_per_epoch = 1;
    train_config.loader.batch_size = 4;
    train_config.loader.image_size = model_config.image_size;
    train_config.loader.num_classes = model_config.num_classes;
    train_config.sgd.momentum = momentum;
    core::ImageTrainService trainer(&dataset, train_config);

    core::SaveResult save;
    size_t state_bytes = 0;
    for (int round = 0; round < 2; ++round) {
      auto provenance = trainer.CaptureProvenance().value();
      state_bytes = provenance.optimizer_state.size();
      if (!trainer.Train(&model, true, 0).ok()) {
        return 1;
      }
      core::SaveRequest derived = request;
      derived.base_model_id = base_id;
      derived.provenance = &provenance;
      save = service.SaveModel(derived).value();
      base_id = save.model_id;
    }

    data::DatasetArchiver archiver(Codec::ForKind(CodecKind::kLz77));
    const size_t archive_bytes = archiver.Archive(dataset).value().size();
    char momentum_buf[16];
    std::snprintf(momentum_buf, sizeof(momentum_buf), "%.1f", momentum);
    char share[16];
    std::snprintf(share, sizeof(share), "%.1f%%",
                  100.0 * archive_bytes / save.storage_bytes);
    table.AddRow({momentum_buf, Kb(state_bytes), Mb(save.storage_bytes),
                  share});
  }
  table.Print(std::cout);
  return 0;
}
