#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/result.h"

namespace mmlib::nn {

/// Loss value together with the gradient w.r.t. the logits.
struct LossResult {
  float loss = 0.0f;
  Tensor grad_logits;
};

/// Softmax cross-entropy over logits [N, C] against integer labels (size N).
/// Returns mean loss and its gradient; numerically stabilized by max
/// subtraction, accumulation in fixed order (deterministic).
Result<LossResult> SoftmaxCrossEntropy(const Tensor& logits,
                                       const std::vector<int64_t>& labels);

/// Fraction of rows whose argmax equals the label.
Result<float> Accuracy(const Tensor& logits,
                       const std::vector<int64_t>& labels);

}  // namespace mmlib::nn

