#pragma once

#include <cstdint>
#include <string_view>

#include "util/result.h"
#include "util/status.h"

/// Recoverable-input validators (DESIGN.md "Correctness tooling").
///
/// MMLIB_CHECK is for internal invariants; these helpers are for conditions
/// that depend on caller input or on bytes read from storage, so they report
/// through Status and keep the process alive. They centralize the error
/// phrasing so every module rejects bad indices/values/names the same way.
/// Tensor- and shape-aware validators live in tensor/validate.h (same
/// namespace), keeping check/ below tensor/ in the include DAG.
namespace mmlib::check {

/// OK iff 0 <= index < size; OutOfRange otherwise.
Status ValidateIndex(int64_t index, int64_t size, std::string_view context);

/// OK iff value > 0; InvalidArgument otherwise.
Status ValidatePositive(int64_t value, std::string_view context);

/// OK iff `name` is usable as a storage id / collection name that becomes a
/// filesystem path component: non-empty, at most 200 chars, characters from
/// [A-Za-z0-9_-] (plus '.' when `allow_dot`, though never "." or "..").
Status ValidateResourceName(std::string_view name, bool allow_dot,
                            std::string_view context);

}  // namespace mmlib::check
