// fixture-path: src/serve/fixture_queue.cc
#include <deque>
#include <queue>
#include <vector>

namespace mmlib::serve {

struct PendingRequests {
  std::deque<int> waiting_;  // finding: no declared bound

  std::vector<std::deque<int>> per_tenant_;  // finding: nested, no bound

  // Bounded by kCapacity, enforced in Admit().
  std::deque<int> admitted_;

  /// Drained in FIFO order; capacity kMaxBatch.
  std::queue<int> batch_;

  static constexpr int kCapacity = 64;
};

struct ReplyBuffer {
  std::queue<int> replies_;  // lint:allow(no-unbounded-queue) drained before every return

  // An unbounded spill area: the word "unbounded" must not satisfy the
  // bound-marker check (word-boundary match).
  std::deque<int> spill_;  // finding
};

void Local() {
  std::deque<int> scratch;  // locals are not members: no finding
  scratch.push_back(1);
}

}  // namespace mmlib::serve
