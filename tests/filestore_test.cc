#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "filestore/file_store.h"

namespace mmlib::filestore {
namespace {

enum class StoreKind { kInMemory, kLocalDir };

class FileStoreTest : public ::testing::TestWithParam<StoreKind> {
 protected:
  void SetUp() override {
    if (GetParam() == StoreKind::kInMemory) {
      store_ = std::make_unique<InMemoryFileStore>();
    } else {
      root_ = ::testing::TempDir() + "/filestore-" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name();
      std::filesystem::remove_all(root_);
      auto opened = LocalDirFileStore::Open(root_);
      ASSERT_TRUE(opened.ok()) << opened.status();
      store_ = std::move(opened).value();
    }
  }

  void TearDown() override {
    store_.reset();
    if (!root_.empty()) {
      std::filesystem::remove_all(root_);
    }
  }

  std::unique_ptr<FileStore> store_;
  std::string root_;
};

TEST_P(FileStoreTest, SaveLoadRoundtrip) {
  const Bytes content{1, 2, 3, 255, 0, 128};
  const std::string id = store_->SaveFile(content).value();
  EXPECT_EQ(store_->LoadFile(id).value(), content);
  EXPECT_EQ(store_->FileSize(id).value(), content.size());
}

TEST_P(FileStoreTest, EmptyFile) {
  const std::string id = store_->SaveFile(Bytes{}).value();
  EXPECT_TRUE(store_->LoadFile(id).value().empty());
  EXPECT_EQ(store_->FileSize(id).value(), 0u);
}

TEST_P(FileStoreTest, LargeBinaryFile) {
  Bytes content(1 << 20);
  for (size_t i = 0; i < content.size(); ++i) {
    content[i] = static_cast<uint8_t>(i * 2654435761u >> 24);
  }
  const std::string id = store_->SaveFile(content).value();
  EXPECT_EQ(store_->LoadFile(id).value(), content);
}

TEST_P(FileStoreTest, MissingFileFails) {
  EXPECT_EQ(store_->LoadFile("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store_->FileSize("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store_->Delete("nope").code(), StatusCode::kNotFound);
}

TEST_P(FileStoreTest, DeleteRemoves) {
  const std::string id = store_->SaveFile(Bytes{9}).value();
  ASSERT_TRUE(store_->Delete(id).ok());
  EXPECT_FALSE(store_->LoadFile(id).ok());
}

TEST_P(FileStoreTest, AccountsBytesAndCount) {
  EXPECT_EQ(store_->FileCount(), 0u);
  EXPECT_EQ(store_->TotalStoredBytes(), 0u);
  store_->SaveFile(Bytes(100)).value();
  const std::string id = store_->SaveFile(Bytes(50)).value();
  EXPECT_EQ(store_->FileCount(), 2u);
  EXPECT_EQ(store_->TotalStoredBytes(), 150u);
  store_->Delete(id).ok();
  EXPECT_EQ(store_->TotalStoredBytes(), 100u);
}

TEST_P(FileStoreTest, IdsAreUnique) {
  const std::string a = store_->SaveFile(Bytes{1}).value();
  const std::string b = store_->SaveFile(Bytes{1}).value();
  EXPECT_NE(a, b);
}

INSTANTIATE_TEST_SUITE_P(Stores, FileStoreTest,
                         ::testing::Values(StoreKind::kInMemory,
                                           StoreKind::kLocalDir),
                         [](const ::testing::TestParamInfo<StoreKind>& info) {
                           return info.param == StoreKind::kInMemory
                                      ? "InMemory"
                                      : "LocalDir";
                         });

TEST(LocalDirFileStoreTest, RejectsUnsafeIds) {
  const std::string root = ::testing::TempDir() + "/filestore-unsafe";
  std::filesystem::remove_all(root);
  auto store = LocalDirFileStore::Open(root).value();
  EXPECT_FALSE(store->LoadFile("../../etc/passwd").ok());
  EXPECT_FALSE(store->LoadFile("a/b").ok());
  EXPECT_FALSE(store->LoadFile("").ok());
  std::filesystem::remove_all(root);
}

TEST(RemoteFileStoreTest, ChargesPayloadBytes) {
  InMemoryFileStore backend;
  simnet::Network network(simnet::Link{1e6, 1e-3});
  RemoteFileStore remote(&backend, &network);

  const Bytes payload(10000, 0x42);
  const std::string id = remote.SaveFile(payload).value();
  // Save is a request (payload) + acknowledgement (generated id) pair.
  EXPECT_EQ(network.TotalBytes(), payload.size() + id.size());
  EXPECT_EQ(network.MessageCount(), 2u);
  // Request: latency + bytes/bandwidth = 1ms + 10ms; ack: 1ms + id bytes.
  EXPECT_NEAR(network.TotalTransferSeconds(),
              0.012 + static_cast<double>(id.size()) * 1e-6, 1e-9);
  remote.LoadFile(id).value();
  // Load is a request (id) + response (payload) pair.
  EXPECT_EQ(network.TotalBytes(), 2 * (payload.size() + id.size()));
  EXPECT_EQ(network.MessageCount(), 4u);
}

TEST(RemoteFileStoreTest, EveryOperationIsARequestResponsePair) {
  InMemoryFileStore backend;
  simnet::Network network(simnet::Link{1e6, 1e-3});
  RemoteFileStore remote(&backend, &network);

  const std::string id = remote.SaveFile(Bytes(64, 1)).value();
  uint64_t messages = network.MessageCount();
  EXPECT_EQ(messages, 2u);

  EXPECT_EQ(remote.FileSize(id).value(), 64u);
  EXPECT_EQ(network.MessageCount(), messages + 2);
  messages = network.MessageCount();

  // Stats pass-throughs are charged too: metric reads are not free.
  EXPECT_EQ(remote.TotalStoredBytes(), 64u);
  EXPECT_EQ(network.MessageCount(), messages + 2);
  messages = network.MessageCount();

  EXPECT_EQ(remote.FileCount(), 1u);
  EXPECT_EQ(network.MessageCount(), messages + 2);
  messages = network.MessageCount();

  EXPECT_TRUE(remote.Delete(id).ok());
  EXPECT_EQ(network.MessageCount(), messages + 2);
}

}  // namespace
}  // namespace mmlib::filestore
