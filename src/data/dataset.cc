#include "data/dataset.h"

#include <cmath>

#include "util/bytes.h"
#include "util/random.h"

namespace mmlib::data {

Digest Dataset::ContentHash() const {
  Sha256 hasher;
  for (size_t i = 0; i < size(); ++i) {
    const Image image = GetImage(i);
    BytesWriter header;
    header.WriteI64(image.height);
    header.WriteI64(image.width);
    header.WriteI64(image.label);
    hasher.Update(header.bytes());
    hasher.Update(image.pixels.data(), image.pixels.size());
  }
  return hasher.Finish();
}

const std::vector<Table1Row>& Table1Reference() {
  static const std::vector<Table1Row>* rows = new std::vector<Table1Row>{
      {PaperDatasetId::kImageNetVal, "INet-val", "ImageNet-val-2012", 50000,
       6'300'000'000ULL, "U2"},
      {PaperDatasetId::kMiniImageNetVal, "mINet-val", "mini-ImageNet-val",
       1400, 200'000'000ULL, "U2"},
      {PaperDatasetId::kCocoFood512, "CF-512", "Coco-food-512", 512,
       94'300'000ULL, "U3"},
      {PaperDatasetId::kCocoOutdoor512, "CO-512", "Coco-outdoor-512", 512,
       71'600'000ULL, "U3"},
  };
  return *rows;
}

namespace {

const Table1Row& RowFor(PaperDatasetId id) {
  for (const Table1Row& row : Table1Reference()) {
    if (row.id == id) {
      return row;
    }
  }
  // All enum values are present in the table.
  return Table1Reference().front();
}

uint64_t SeedFor(PaperDatasetId id) {
  switch (id) {
    case PaperDatasetId::kImageNetVal:
      return 0x1a6e7001;
    case PaperDatasetId::kMiniImageNetVal:
      return 0x1a6e7002;
    case PaperDatasetId::kCocoFood512:
      return 0xc0c0f00d;
    case PaperDatasetId::kCocoOutdoor512:
      return 0xc0c00467;
  }
  return 0;
}

}  // namespace

SyntheticImageDataset::SyntheticImageDataset(PaperDatasetId id,
                                             uint64_t size_divisor)
    : id_(id), seed_(SeedFor(id)) {
  const Table1Row& row = RowFor(id);
  name_ = row.full_name;
  image_count_ = row.images;
  const uint64_t bytes_per_image =
      row.paper_bytes / row.images / std::max<uint64_t>(1, size_divisor);
  stored_dim_ = std::max<int64_t>(
      4, static_cast<int64_t>(
             std::sqrt(static_cast<double>(bytes_per_image) / 3.0)));
}

std::unique_ptr<SyntheticImageDataset> SyntheticImageDataset::Create(
    PaperDatasetId id) {
  return std::make_unique<SyntheticImageDataset>(id, kDefaultDatasetDivisor);
}

Image SyntheticImageDataset::GetImage(size_t index) const {
  Rng rng(seed_ ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
  Image image;
  image.height = stored_dim_;
  image.width = stored_dim_;
  image.label = static_cast<int64_t>(rng.NextBelow(1000));
  image.pixels.resize(static_cast<size_t>(stored_dim_) * stored_dim_ * 3);

  // Smooth class-dependent structure: a 2D sinusoidal pattern whose
  // frequency and phase depend on the label, plus moderate pixel noise.
  const double freq_y = 0.5 + (image.label % 17) * 0.13;
  const double freq_x = 0.5 + (image.label % 23) * 0.11;
  const double phase = rng.NextDouble() * 6.28318530717958647692;
  const int base_r = static_cast<int>(rng.NextBelow(128)) + 64;
  const int base_g = static_cast<int>(rng.NextBelow(128)) + 64;
  const int base_b = static_cast<int>(rng.NextBelow(128)) + 64;

  size_t p = 0;
  for (int64_t y = 0; y < stored_dim_; ++y) {
    for (int64_t x = 0; x < stored_dim_; ++x) {
      const double wave =
          40.0 * std::sin(freq_y * y / stored_dim_ * 6.283 + phase) *
          std::cos(freq_x * x / stored_dim_ * 6.283);
      const int noise = static_cast<int>(rng.NextBelow(17)) - 8;
      // Posterize to 16 levels: banded structure keeps the images partially
      // compressible, like quantized natural photos.
      auto clamp8 = [](int v) {
        return static_cast<uint8_t>((v < 0 ? 0 : (v > 255 ? 255 : v)) & ~15);
      };
      image.pixels[p++] = clamp8(base_r + static_cast<int>(wave) + noise);
      image.pixels[p++] = clamp8(base_g + static_cast<int>(wave) - noise / 2);
      image.pixels[p++] = clamp8(base_b - static_cast<int>(wave) + noise / 3);
    }
  }
  return image;
}

size_t SyntheticImageDataset::TotalByteSize() const {
  return image_count_ *
         (static_cast<size_t>(stored_dim_) * stored_dim_ * 3 + sizeof(int64_t));
}

std::unique_ptr<InMemoryDataset> Materialize(const Dataset& source) {
  std::vector<Image> images;
  images.reserve(source.size());
  for (size_t i = 0; i < source.size(); ++i) {
    images.push_back(source.GetImage(i));
  }
  return std::make_unique<InMemoryDataset>(source.name(), std::move(images));
}

size_t InMemoryDataset::TotalByteSize() const {
  size_t total = 0;
  for (const Image& image : images_) {
    total += image.pixels.size() + sizeof(int64_t);
  }
  return total;
}

}  // namespace mmlib::data
