#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "filestore/file_store.h"
#include "util/bytes.h"
#include "util/result.h"

namespace mmlib::core {

/// Total fetch attempts before a persistently corrupt payload is fatal.
inline constexpr int kMaxFetchAttempts = 4;

/// Loads `file_id` from `files` and decodes it with `decode`. When the
/// decoder reports Corruption — the payload was damaged in flight on a
/// faulty link and its CRC-32 (or structural) check failed — the file is
/// fetched and decoded again, up to kMaxFetchAttempts total attempts; the
/// stored copy is intact, so a re-fetch heals transient damage. Any other
/// error, and Corruption on the last attempt, is returned as is.
/// Each rejection is reported to the store (FileStore::ReportDamaged)
/// before re-fetching, so a replicated store can steer the retry to a
/// different replica and queue a read-repair instead of re-reading the
/// same damaged copy. `refetches` (optional) accumulates the number of
/// re-fetches performed.
template <typename Decode>
auto FetchDecoded(filestore::FileStore* files, const std::string& file_id,
                  Decode&& decode, uint64_t* refetches = nullptr)
    -> decltype(decode(Bytes{})) {
  for (int attempt = 1;; ++attempt) {
    auto loaded = files->LoadFile(file_id);
    if (!loaded.ok()) {
      return loaded.status();
    }
    auto decoded = decode(std::move(loaded).value());
    if (decoded.ok() || decoded.status().code() != StatusCode::kCorruption ||
        attempt >= kMaxFetchAttempts) {
      return decoded;
    }
    files->ReportDamaged(file_id);
    if (refetches != nullptr) {
      ++(*refetches);
    }
  }
}

}  // namespace mmlib::core
