#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mmlib {

/// Splits `s` on `delim`; empty pieces are preserved.
std::vector<std::string> SplitString(std::string_view s, char delim);

/// Joins `pieces` with `delim` between them.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view delim);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Formats a byte count as a human readable string, e.g. "14.3 MB".
std::string FormatBytes(uint64_t bytes);

/// Formats seconds with millisecond precision, e.g. "0.812 s".
std::string FormatSeconds(double seconds);

/// Left-pads `s` with spaces to `width` characters.
std::string PadLeft(std::string_view s, size_t width);

/// Right-pads `s` with spaces to `width` characters.
std::string PadRight(std::string_view s, size_t width);

}  // namespace mmlib

