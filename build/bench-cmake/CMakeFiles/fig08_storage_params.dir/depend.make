# Empty dependencies file for fig08_storage_params.
# This may be replaced when dependencies are built.
