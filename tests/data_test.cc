#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "compress/codec.h"
#include "data/archive.h"
#include "data/dataloader.h"
#include "data/dataset.h"
#include "data/prefetcher.h"

namespace mmlib::data {
namespace {

constexpr uint64_t kTestDivisor = 1024;  // tiny datasets for fast tests

TEST(DatasetTest, Table1HasAllFourDatasets) {
  const auto& rows = Table1Reference();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].short_name, "INet-val");
  EXPECT_EQ(rows[2].short_name, "CF-512");
  EXPECT_EQ(rows[2].images, 512u);
  EXPECT_EQ(rows[3].short_name, "CO-512");
}

TEST(DatasetTest, ImageCountsMatchTable1) {
  for (const Table1Row& row : Table1Reference()) {
    SyntheticImageDataset dataset(row.id, kTestDivisor);
    EXPECT_EQ(dataset.size(), row.images) << row.short_name;
    EXPECT_EQ(dataset.name(), row.full_name);
  }
}

TEST(DatasetTest, RelativeSizesFollowTable1) {
  // CF-512 is larger than CO-512 at any divisor (the property the MPA
  // storage comparison in paper Figure 9 relies on).
  SyntheticImageDataset cf(PaperDatasetId::kCocoFood512, kTestDivisor);
  SyntheticImageDataset co(PaperDatasetId::kCocoOutdoor512, kTestDivisor);
  EXPECT_GT(cf.TotalByteSize(), co.TotalByteSize());

  SyntheticImageDataset mini(PaperDatasetId::kMiniImageNetVal, kTestDivisor);
  EXPECT_GT(mini.TotalByteSize(), cf.TotalByteSize());
}

TEST(DatasetTest, ImagesAreDeterministic) {
  SyntheticImageDataset a(PaperDatasetId::kCocoFood512, kTestDivisor);
  SyntheticImageDataset b(PaperDatasetId::kCocoFood512, kTestDivisor);
  const Image x = a.GetImage(17);
  const Image y = b.GetImage(17);
  EXPECT_EQ(x.pixels, y.pixels);
  EXPECT_EQ(x.label, y.label);
  EXPECT_EQ(a.ContentHash(), b.ContentHash());
}

TEST(DatasetTest, DistinctDatasetsDiffer) {
  SyntheticImageDataset cf(PaperDatasetId::kCocoFood512, kTestDivisor);
  SyntheticImageDataset co(PaperDatasetId::kCocoOutdoor512, kTestDivisor);
  EXPECT_NE(cf.ContentHash(), co.ContentHash());
}

TEST(DatasetTest, LabelsInImageNetRange) {
  SyntheticImageDataset dataset(PaperDatasetId::kCocoOutdoor512,
                                kTestDivisor);
  for (size_t i = 0; i < dataset.size(); i += 37) {
    const Image image = dataset.GetImage(i);
    EXPECT_GE(image.label, 0);
    EXPECT_LT(image.label, 1000);
    EXPECT_EQ(static_cast<int64_t>(image.pixels.size()),
              image.height * image.width * 3);
  }
}

TEST(DatasetTest, ImagesArePartiallyCompressible) {
  // The synthetic images have smooth structure plus noise, like photos:
  // LZ77 should compress them somewhat but nowhere near RLE-on-zeros.
  SyntheticImageDataset dataset(PaperDatasetId::kCocoFood512, kTestDivisor);
  Bytes pixels;
  for (size_t i = 0; i < 16; ++i) {
    const Image image = dataset.GetImage(i);
    pixels.insert(pixels.end(), image.pixels.begin(), image.pixels.end());
  }
  const Bytes compressed =
      Codec::ForKind(CodecKind::kLz77)->Compress(pixels).value();
  EXPECT_LT(compressed.size(), pixels.size());
  EXPECT_GT(compressed.size(), pixels.size() / 10);
}

TEST(DatasetTest, MaterializePreservesContent) {
  SyntheticImageDataset source(PaperDatasetId::kCocoFood512, kTestDivisor);
  auto materialized = Materialize(source);
  EXPECT_EQ(materialized->name(), source.name());
  EXPECT_EQ(materialized->size(), source.size());
  EXPECT_EQ(materialized->ContentHash(), source.ContentHash());
  EXPECT_EQ(materialized->TotalByteSize(), source.TotalByteSize());
}

TEST(InMemoryDatasetTest, ServesStoredImages) {
  Image image;
  image.height = 2;
  image.width = 2;
  image.label = 5;
  image.pixels.assign(12, 128);
  InMemoryDataset dataset("mini", {image, image});
  EXPECT_EQ(dataset.size(), 2u);
  EXPECT_EQ(dataset.GetImage(1).label, 5);
  EXPECT_EQ(dataset.TotalByteSize(), 2 * (12 + sizeof(int64_t)));
}

// --- DataLoader ---

DataLoaderOptions SmallLoaderOptions() {
  DataLoaderOptions options;
  options.batch_size = 8;
  options.image_size = 16;
  options.num_classes = 10;
  options.seed = 7;
  return options;
}

TEST(DataLoaderTest, BatchShapesAndLabelRange) {
  SyntheticImageDataset dataset(PaperDatasetId::kCocoOutdoor512,
                                kTestDivisor);
  DataLoader loader(&dataset, SmallLoaderOptions());
  EXPECT_EQ(loader.BatchesPerEpoch(), 64u);
  Batch batch = loader.GetBatch(0).value();
  EXPECT_EQ(batch.images.shape(), (Shape{8, 3, 16, 16}));
  ASSERT_EQ(batch.labels.size(), 8u);
  for (int64_t label : batch.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 10);
  }
  // Pixels normalized into [-0.5, 0.5].
  for (int64_t i = 0; i < batch.images.numel(); ++i) {
    EXPECT_GE(batch.images.at(i), -0.5f);
    EXPECT_LE(batch.images.at(i), 0.5f);
  }
}

TEST(DataLoaderTest, LastBatchMayBePartial) {
  SyntheticImageDataset dataset(PaperDatasetId::kCocoOutdoor512,
                                kTestDivisor);
  DataLoaderOptions options = SmallLoaderOptions();
  options.batch_size = 100;
  DataLoader loader(&dataset, options);
  EXPECT_EQ(loader.BatchesPerEpoch(), 6u);  // 512 = 5*100 + 12
  Batch last = loader.GetBatch(5).value();
  EXPECT_EQ(last.images.shape().dim(0), 12);
  EXPECT_FALSE(loader.GetBatch(6).ok());
}

TEST(DataLoaderTest, IdenticallyConfiguredLoadersAgree) {
  // The loader is a stateless parametrized object (paper Section 3.3):
  // equal configuration over an equal dataset reproduces identical batches.
  SyntheticImageDataset dataset(PaperDatasetId::kCocoFood512, kTestDivisor);
  DataLoader a(&dataset, SmallLoaderOptions());
  DataLoader b(&dataset, SmallLoaderOptions());
  a.StartEpoch(3);
  b.StartEpoch(3);
  Batch ba = a.GetBatch(2).value();
  Batch bb = b.GetBatch(2).value();
  EXPECT_TRUE(ba.images.Equals(bb.images));
  EXPECT_EQ(ba.labels, bb.labels);
}

TEST(DataLoaderTest, ShuffleChangesAcrossEpochs) {
  SyntheticImageDataset dataset(PaperDatasetId::kCocoFood512, kTestDivisor);
  DataLoader loader(&dataset, SmallLoaderOptions());
  loader.StartEpoch(0);
  Batch epoch0 = loader.GetBatch(0).value();
  loader.StartEpoch(1);
  Batch epoch1 = loader.GetBatch(0).value();
  EXPECT_FALSE(epoch0.images.Equals(epoch1.images));
}

TEST(DataLoaderTest, NoShuffleKeepsDatasetOrder) {
  SyntheticImageDataset dataset(PaperDatasetId::kCocoFood512, kTestDivisor);
  DataLoaderOptions options = SmallLoaderOptions();
  options.shuffle = false;
  DataLoader loader(&dataset, options);
  Batch batch = loader.GetBatch(0).value();
  for (int64_t k = 0; k < 8; ++k) {
    EXPECT_EQ(batch.labels[k],
              dataset.GetImage(k).label % options.num_classes);
  }
}

TEST(DataLoaderTest, AugmentationIsSeedDeterministic) {
  SyntheticImageDataset dataset(PaperDatasetId::kCocoFood512, kTestDivisor);
  DataLoaderOptions options = SmallLoaderOptions();
  options.augment = true;
  DataLoader a(&dataset, options);
  DataLoader b(&dataset, options);
  EXPECT_TRUE(
      a.GetBatch(1).value().images.Equals(b.GetBatch(1).value().images));

  options.seed = 8;
  DataLoader c(&dataset, options);
  EXPECT_FALSE(
      a.GetBatch(1).value().images.Equals(c.GetBatch(1).value().images));
}

// --- BatchPrefetcher ---

TEST(BatchPrefetcherTest, MatchesDirectLoaderBitExactly) {
  SyntheticImageDataset dataset(PaperDatasetId::kCocoFood512, kTestDivisor);
  DataLoaderOptions options = SmallLoaderOptions();
  options.augment = true;  // prefetch must preserve the augmentation draws
  DataLoader direct(&dataset, options);
  DataLoader prefetched(&dataset, options);
  BatchPrefetcher prefetcher(&prefetched);

  for (uint64_t epoch = 0; epoch < 2; ++epoch) {
    direct.StartEpoch(epoch);
    prefetcher.StartEpoch(epoch, 0, 5);
    for (size_t index = 0; index < 5; ++index) {
      Batch want = direct.GetBatch(index).value();
      auto got = prefetcher.Next();
      ASSERT_TRUE(got.ok()) << got.status();
      EXPECT_TRUE(got->images.Equals(want.images))
          << "epoch " << epoch << " batch " << index;
      EXPECT_EQ(got->labels, want.labels);
      prefetcher.Recycle(std::move(got).value());
    }
    // The epoch is exhausted; the consumer must be told, not fed garbage.
    EXPECT_EQ(prefetcher.Next().status().code(), StatusCode::kOutOfRange);
  }
  EXPECT_EQ(prefetcher.background_fills(), 10u);
}

TEST(BatchPrefetcherTest, RecycledStorageIsReusedInPlace) {
  SyntheticImageDataset dataset(PaperDatasetId::kCocoFood512, kTestDivisor);
  DataLoader loader(&dataset, SmallLoaderOptions());
  BatchPrefetcher prefetcher(&loader);
  prefetcher.StartEpoch(0, 0, 8);

  // Consume two batches to learn the slots' storage, recycling each; from
  // then on every fill reuses one of the circulating buffers.
  std::set<const float*> storage;
  for (size_t index = 0; index < 8; ++index) {
    auto batch = prefetcher.Next();
    ASSERT_TRUE(batch.ok()) << batch.status();
    storage.insert(batch->images.data());
    prefetcher.Recycle(std::move(batch).value());
  }
  // Double buffering plus recycling needs at most 3 distinct image tensors
  // (two slots + one batch transiently held by the consumer).
  EXPECT_LE(storage.size(), 3u);
}

TEST(BatchPrefetcherTest, MidEpochStartPrefetchesFromFirstBatch) {
  // Resume support: a run restarting from a checkpoint enters the epoch at
  // a nonzero batch index.
  SyntheticImageDataset dataset(PaperDatasetId::kCocoFood512, kTestDivisor);
  DataLoaderOptions options = SmallLoaderOptions();
  DataLoader direct(&dataset, options);
  DataLoader prefetched(&dataset, options);
  BatchPrefetcher prefetcher(&prefetched);

  direct.StartEpoch(4);
  prefetcher.StartEpoch(4, 3, 6);
  for (size_t index = 3; index < 6; ++index) {
    Batch want = direct.GetBatch(index).value();
    auto got = prefetcher.Next();
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_TRUE(got->images.Equals(want.images)) << "batch " << index;
    EXPECT_EQ(got->labels, want.labels);
  }
  EXPECT_EQ(prefetcher.Next().status().code(), StatusCode::kOutOfRange);
}

// --- Archiver ---

class ArchiverRoundtrip : public ::testing::TestWithParam<CodecKind> {};

TEST_P(ArchiverRoundtrip, ExtractReproducesDataset) {
  SyntheticImageDataset dataset(PaperDatasetId::kCocoOutdoor512,
                                kTestDivisor);
  DatasetArchiver archiver(Codec::ForKind(GetParam()));
  const Bytes archive = archiver.Archive(dataset).value();
  auto restored = DatasetArchiver::Extract(archive);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ((*restored)->name(), dataset.name());
  EXPECT_EQ((*restored)->size(), dataset.size());
  EXPECT_EQ((*restored)->ContentHash(), dataset.ContentHash());
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, ArchiverRoundtrip,
                         ::testing::Values(CodecKind::kIdentity,
                                           CodecKind::kRle,
                                           CodecKind::kLz77,
                                           CodecKind::kLz77Huffman));

TEST(ArchiverTest, ArchiveSizeTracksDatasetSize) {
  SyntheticImageDataset cf(PaperDatasetId::kCocoFood512, kTestDivisor);
  SyntheticImageDataset co(PaperDatasetId::kCocoOutdoor512, kTestDivisor);
  DatasetArchiver archiver(Codec::ForKind(CodecKind::kIdentity));
  EXPECT_GT(archiver.Archive(cf).value().size(),
            archiver.Archive(co).value().size());
}

TEST(ArchiverTest, ExtractDetectsCorruption) {
  SyntheticImageDataset dataset(PaperDatasetId::kCocoOutdoor512,
                                kTestDivisor);
  DatasetArchiver archiver(Codec::ForKind(CodecKind::kIdentity));
  Bytes archive = archiver.Archive(dataset).value();
  archive[archive.size() / 2] ^= 0x01;
  EXPECT_FALSE(DatasetArchiver::Extract(archive).ok());
}

TEST(ArchiverTest, ExtractDetectsTruncation) {
  SyntheticImageDataset dataset(PaperDatasetId::kCocoOutdoor512,
                                kTestDivisor);
  DatasetArchiver archiver(Codec::ForKind(CodecKind::kLz77));
  Bytes archive = archiver.Archive(dataset).value();
  archive.resize(archive.size() - 20);
  EXPECT_FALSE(DatasetArchiver::Extract(archive).ok());
}

}  // namespace
}  // namespace mmlib::data
