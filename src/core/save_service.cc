#include "core/save_service.h"

#include "compress/chunked.h"

namespace mmlib::core {

Result<SaveResult> SaveService::SaveModel(const SaveRequest& request) {
  const double start_seconds =
      backends_.network != nullptr ? backends_.network->TotalTransferSeconds()
                                   : 0.0;
  Result<SaveResult> outcome = DoSaveModel(request);
  if (serve_hook_) {
    ServeOpReport report;
    report.op = "model.save";
    report.outcome = outcome.ok() ? StatusCode::kOk : outcome.status().code();
    if (backends_.network != nullptr) {
      report.virtual_seconds =
          backends_.network->TotalTransferSeconds() - start_seconds;
    }
    if (outcome.ok() && outcome.value().storage_bytes > 0) {
      report.bytes = static_cast<uint64_t>(outcome.value().storage_bytes);
    }
    serve_hook_(report);
  }
  return outcome;
}

Result<Bytes> SaveService::EncodeParams(const Bytes& params) const {
  return ChunkedFrame(params, params_codec_, kDefaultChunkSize,
                      backends_.pool);
}

Result<std::string> SaveService::SaveEnvironment(
    const env::EnvironmentInfo& info, SaveTransaction& txn) {
  return txn.Insert(kEnvironmentsCollection, info.ToJson());
}

Result<std::string> SaveService::SaveCode(const json::Value& code,
                                          SaveTransaction& txn) {
  json::Value doc = json::Value::MakeObject();
  doc.Set("descriptor", code);
  return txn.Insert(kCodeCollection, std::move(doc));
}

Result<json::Value> SaveService::MakeModelDoc(const SaveRequest& request,
                                              SaveTransaction& txn,
                                              MerkleTree* tree_out) {
  if (request.model == nullptr || request.environment == nullptr) {
    return Status::InvalidArgument("SaveRequest requires model and env");
  }
  MMLIB_ASSIGN_OR_RETURN(std::string env_id,
                         SaveEnvironment(*request.environment, txn));
  MMLIB_ASSIGN_OR_RETURN(std::string code_id, SaveCode(request.code, txn));

  json::Value doc = json::Value::MakeObject();
  doc.Set("approach", std::string(approach()));
  if (request.base_model_id.empty()) {
    doc.Set("base_model", json::Value());
  } else {
    doc.Set("base_model", request.base_model_id);
  }
  doc.Set("env_doc", env_id);
  doc.Set("code_doc", code_id);
  doc.Set("architecture",
          request.model->ArchitectureFingerprint().ToHex());

  // Layer-hash Merkle tree: the root doubles as a cheap whole-model equality
  // checksum, and the persisted tree lets any later parameter-update save
  // find this model's changed layers without recovering its parameters
  // (paper Section 3.2).
  MMLIB_ASSIGN_OR_RETURN(MerkleTree tree,
                         request.model->BuildMerkleTree(backends_.pool));
  MMLIB_ASSIGN_OR_RETURN(std::string merkle_file,
                         txn.SaveFile(tree.Serialize()));
  doc.Set("merkle_file", merkle_file);

  // Model::ParamsHash() is by definition the hash of the per-layer digests,
  // which are exactly the tree's leaves — computing it from the tree avoids
  // hashing every parameter a second time.
  Sha256 params_hasher;
  for (size_t i = 0; i < tree.leaf_count(); ++i) {
    params_hasher.Update(tree.leaf(i).bytes.data(),
                         tree.leaf(i).bytes.size());
  }
  json::Value checksum = json::Value::MakeObject();
  checksum.Set("params_hash", params_hasher.Finish().ToHex());
  checksum.Set("merkle_root", tree.root().ToHex());
  doc.Set("checksum", std::move(checksum));
  if (tree_out != nullptr) {
    *tree_out = std::move(tree);
  }
  return doc;
}

}  // namespace mmlib::core
