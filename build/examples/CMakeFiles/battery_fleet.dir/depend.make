# Empty dependencies file for battery_fleet.
# This may be replaced when dependencies are built.
