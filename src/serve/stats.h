#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "serve/request.h"

namespace mmlib::serve {

/// Log-bucketed latency histogram on the virtual clock. Buckets grow
/// geometrically from 0.1 ms, so p50/p99 come out with bounded relative
/// error at any scale and the bucket layout is identical on every platform
/// (no floating-point accumulation order involved: recording is an integer
/// increment). The histogram is part of the run digest, so two runs agree
/// bit-for-bit exactly when every request landed in the same bucket.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 64;
  static constexpr double kFirstBucketSeconds = 1e-4;
  static constexpr double kGrowth = 1.3;

  void Record(double seconds);

  uint64_t total_count() const { return total_; }
  uint64_t bucket(size_t i) const { return buckets_[i]; }

  /// Latency at quantile `q` in [0, 1]: the upper bound of the bucket the
  /// q-th sample falls in (0 when empty). Deterministic by construction.
  double Quantile(double q) const;

  /// Merges `other` into this histogram.
  void Merge(const LatencyHistogram& other);

 private:
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t total_ = 0;
};

/// Robustness counters of one serving run; every knob the overload
/// machinery turns shows up here, and the whole struct feeds the run
/// digest.
struct ServeCounters {
  uint64_t arrivals = 0;
  uint64_t admitted = 0;
  /// Outcome histogram, indexed by RequestOutcome.
  std::array<uint64_t, kRequestOutcomeCount> outcomes{};
  /// Sheds split by reason: tenant queue full vs tenant over its quota.
  uint64_t shed_queue_full = 0;
  uint64_t shed_over_quota = 0;
  /// Requests whose deadline expired while still queued (never dispatched).
  uint64_t expired_in_queue = 0;
  /// Inference requests served as part of a multi-request batch.
  uint64_t batched = 0;
  uint64_t batches_flushed = 0;
  /// Circuit-breaker lifecycle events across all backends.
  uint64_t breaker_trips = 0;
  uint64_t breaker_probes = 0;
  uint64_t breaker_recoveries = 0;
  uint64_t breaker_fast_rejects = 0;
  /// Hedged-read traffic (repl::ReplicatedFileStore::LoadFileHedged).
  uint64_t hedged_reads = 0;
  uint64_t hedge_wins = 0;
  /// Backend retries / request-deadline abandons observed via simnet.
  uint64_t backend_failures = 0;

  uint64_t served() const {
    return outcomes[static_cast<size_t>(RequestOutcome::kServed)];
  }
  uint64_t shed() const {
    return outcomes[static_cast<size_t>(RequestOutcome::kShed)];
  }
};

/// Result of one serving run: counters, latency distribution of served
/// requests, goodput, and a SHA-256 digest over all of it. The digest is
/// the bit-identity witness: two runs of the same seeded scenario must
/// produce byte-identical digests, degraded or not.
struct ServeReport {
  ServeCounters counters;
  LatencyHistogram latency;
  /// Virtual time the run covered.
  double horizon_seconds = 0.0;
  /// Served requests per virtual second.
  double goodput_rps = 0.0;

  /// Hex SHA-256 over the counters, outcome histogram, and every latency
  /// bucket, serialized in a fixed integer order.
  std::string Digest() const;
};

}  // namespace mmlib::serve
