#include <gtest/gtest.h>

#include "compress/codec.h"
#include "compress/huffman.h"
#include "util/random.h"

namespace mmlib {
namespace {

Bytes MakePayload(const std::string& kind, size_t size, uint64_t seed) {
  Bytes data;
  data.reserve(size);
  Rng rng(seed);
  if (kind == "zeros") {
    data.assign(size, 0);
  } else if (kind == "runs") {
    while (data.size() < size) {
      const uint8_t value = static_cast<uint8_t>(rng.NextBelow(4));
      const size_t run = 1 + rng.NextBelow(40);
      for (size_t i = 0; i < run && data.size() < size; ++i) {
        data.push_back(value);
      }
    }
  } else if (kind == "random") {
    for (size_t i = 0; i < size; ++i) {
      data.push_back(static_cast<uint8_t>(rng.NextBelow(256)));
    }
  } else if (kind == "text") {
    const std::string words[] = {"model ", "parameter ", "update ",
                                 "provenance ", "baseline "};
    while (data.size() < size) {
      const std::string& w = words[rng.NextBelow(5)];
      data.insert(data.end(), w.begin(), w.end());
    }
    data.resize(size);
  } else if (kind == "periodic") {
    for (size_t i = 0; i < size; ++i) {
      data.push_back(static_cast<uint8_t>(i % 7));
    }
  }
  return data;
}

struct RoundtripCase {
  const char* codec;
  const char* kind;
  size_t size;
};

class CodecRoundtripProperty
    : public ::testing::TestWithParam<RoundtripCase> {};

TEST_P(CodecRoundtripProperty, CompressDecompressIsIdentity) {
  const RoundtripCase c = GetParam();
  const Codec* codec = Codec::ForName(c.codec).value();
  const Bytes payload = MakePayload(c.kind, c.size, c.size + 17);
  auto compressed = codec->Compress(payload);
  ASSERT_TRUE(compressed.ok());
  auto restored = codec->Decompress(compressed.value());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value(), payload);
}

TEST_P(CodecRoundtripProperty, FrameUnframeIsIdentity) {
  const RoundtripCase c = GetParam();
  const Codec* codec = Codec::ForName(c.codec).value();
  const Bytes payload = MakePayload(c.kind, c.size, c.size + 31);
  auto frame = codec->Frame(payload);
  ASSERT_TRUE(frame.ok());
  auto restored = Codec::Unframe(frame.value());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value(), payload);
}

std::vector<RoundtripCase> AllRoundtripCases() {
  std::vector<RoundtripCase> cases;
  for (const char* codec : {"identity", "rle", "lz77", "lz77-huffman"}) {
    for (const char* kind : {"zeros", "runs", "random", "text", "periodic"}) {
      for (size_t size : {0, 1, 3, 100, 5000, 70000}) {
        cases.push_back(RoundtripCase{codec, kind, size});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecRoundtripProperty,
                         ::testing::ValuesIn(AllRoundtripCases()));

TEST(CodecTest, LookupByName) {
  EXPECT_EQ(Codec::ForName("lz77").value()->kind(), CodecKind::kLz77);
  EXPECT_EQ(Codec::ForName("rle").value()->kind(), CodecKind::kRle);
  EXPECT_EQ(Codec::ForName("identity").value()->kind(),
            CodecKind::kIdentity);
  EXPECT_FALSE(Codec::ForName("zstd").ok());
}

TEST(CodecTest, RleCompressesRunsWell) {
  const Bytes payload = MakePayload("zeros", 10000, 1);
  const Bytes compressed =
      Codec::ForKind(CodecKind::kRle)->Compress(payload).value();
  EXPECT_LT(compressed.size(), payload.size() / 100);
}

TEST(CodecTest, Lz77CompressesTextWell) {
  const Bytes payload = MakePayload("text", 20000, 2);
  const Bytes compressed =
      Codec::ForKind(CodecKind::kLz77)->Compress(payload).value();
  EXPECT_LT(compressed.size(), payload.size() / 2);
}

TEST(CodecTest, Lz77HandlesOverlappingMatches) {
  // "abcabcabc..." forces matches that copy from their own output.
  Bytes payload;
  for (int i = 0; i < 1000; ++i) {
    payload.push_back(static_cast<uint8_t>('a' + i % 3));
  }
  const Codec* codec = Codec::ForKind(CodecKind::kLz77);
  const Bytes compressed = codec->Compress(payload).value();
  EXPECT_LT(compressed.size(), 100u);
  EXPECT_EQ(codec->Decompress(compressed).value(), payload);
}

TEST(CodecTest, UnframeDetectsPayloadCorruption) {
  const Codec* codec = Codec::ForKind(CodecKind::kLz77);
  const Bytes payload = MakePayload("text", 5000, 3);
  Bytes frame = codec->Frame(payload).value();
  // Flip a byte inside the compressed blob (past the header).
  frame[frame.size() / 2] ^= 0xff;
  auto result = Codec::Unframe(frame);
  EXPECT_FALSE(result.ok());
}

TEST(CodecTest, UnframeDetectsBadMagic) {
  const Codec* codec = Codec::ForKind(CodecKind::kIdentity);
  Bytes frame = codec->Frame(MakePayload("runs", 100, 4)).value();
  frame[0] ^= 0x01;
  EXPECT_EQ(Codec::Unframe(frame).status().code(), StatusCode::kCorruption);
}

TEST(CodecTest, UnframeDetectsUnknownCodecId) {
  const Codec* codec = Codec::ForKind(CodecKind::kIdentity);
  Bytes frame = codec->Frame(MakePayload("runs", 100, 5)).value();
  frame[4] = 0x7f;  // codec id byte
  EXPECT_EQ(Codec::Unframe(frame).status().code(), StatusCode::kCorruption);
}

TEST(CodecTest, UnframeDetectsTruncation) {
  const Codec* codec = Codec::ForKind(CodecKind::kRle);
  Bytes frame = codec->Frame(MakePayload("runs", 1000, 6)).value();
  frame.resize(frame.size() - 10);
  EXPECT_FALSE(Codec::Unframe(frame).ok());
}

TEST(CodecTest, DecompressRejectsGarbage) {
  const Bytes garbage = MakePayload("random", 100, 7);
  // Tag bytes other than 0x00/0x01 are invalid for LZ77.
  Bytes bad = {0x55, 0x01, 0x02};
  EXPECT_FALSE(Codec::ForKind(CodecKind::kLz77)->Decompress(bad).ok());
  // RLE: run length zero is invalid.
  Bytes zero_run = {0x00, 0x99};
  EXPECT_FALSE(Codec::ForKind(CodecKind::kRle)->Decompress(zero_run).ok());
  (void)garbage;
}

TEST(CodecTest, Lz77RejectsOutOfRangeDistance) {
  // Match (tag 0x01) with distance 5 but no prior output.
  Bytes bad = {0x01, 0x04, 0x05};
  EXPECT_FALSE(Codec::ForKind(CodecKind::kLz77)->Decompress(bad).ok());
}

TEST(CodecTest, CompressionIsDeterministic) {
  const Bytes payload = MakePayload("text", 30000, 8);
  for (CodecKind kind :
       {CodecKind::kIdentity, CodecKind::kRle, CodecKind::kLz77,
        CodecKind::kLz77Huffman}) {
    const Codec* codec = Codec::ForKind(kind);
    EXPECT_EQ(codec->Compress(payload).value(),
              codec->Compress(payload).value());
  }
}

TEST(CodecTest, HuffmanStageShrinksLz77Output) {
  const Bytes payload = MakePayload("text", 60000, 9);
  const Bytes lz77 =
      Codec::ForKind(CodecKind::kLz77)->Compress(payload).value();
  const Bytes deflated =
      Codec::ForKind(CodecKind::kLz77Huffman)->Compress(payload).value();
  EXPECT_LT(deflated.size(), lz77.size());
}

TEST(HuffmanTest, EncodeDecodeRoundtrip) {
  for (const char* kind : {"zeros", "runs", "random", "text"}) {
    for (size_t size : {0, 1, 2, 500, 40000}) {
      const Bytes payload = MakePayload(kind, size, size + 1);
      auto encoded = huffman::Encode(payload);
      ASSERT_TRUE(encoded.ok());
      auto decoded = huffman::Decode(encoded.value());
      ASSERT_TRUE(decoded.ok()) << kind << " " << size << ": "
                                << decoded.status();
      EXPECT_EQ(decoded.value(), payload) << kind << " " << size;
    }
  }
}

TEST(HuffmanTest, SingleSymbolInput) {
  const Bytes payload(1000, 0x7a);
  auto encoded = huffman::Encode(payload).value();
  // 1000 symbols at one bit each plus the 136-byte header.
  EXPECT_LT(encoded.size(), 300u);
  EXPECT_EQ(huffman::Decode(encoded).value(), payload);
}

TEST(HuffmanTest, SkewedDistributionCompressesWell) {
  Bytes payload;
  Rng rng(10);
  for (int i = 0; i < 50000; ++i) {
    // 90% one symbol, the rest spread thinly.
    payload.push_back(rng.NextBelow(10) == 0
                          ? static_cast<uint8_t>(rng.NextBelow(256))
                          : 0x41);
  }
  const Bytes encoded = huffman::Encode(payload).value();
  EXPECT_LT(encoded.size(), payload.size() / 2);
  EXPECT_EQ(huffman::Decode(encoded).value(), payload);
}

TEST(HuffmanTest, DecodeRejectsTruncation) {
  const Bytes payload = MakePayload("text", 5000, 11);
  Bytes encoded = huffman::Encode(payload).value();
  encoded.resize(encoded.size() - 10);
  EXPECT_FALSE(huffman::Decode(encoded).ok());
}

TEST(HuffmanTest, DecodeRejectsEmptyTableWithPayload) {
  // Header claims 5 bytes of payload but all code lengths are zero.
  BytesWriter writer;
  writer.WriteU64(5);
  for (int i = 0; i < 128; ++i) {
    writer.WriteU8(0);
  }
  EXPECT_FALSE(huffman::Decode(writer.bytes()).ok());
}

}  // namespace
}  // namespace mmlib
