#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "compress/codec.h"
#include "compress/huffman.h"
#include "docstore/document_store.h"
#include "filestore/file_store.h"
#include "hash/merkle_tree.h"
#include "json/json.h"
#include "tensor/tensor.h"
#include "util/random.h"

namespace mmlib {
namespace {

/// Fuzz-style robustness sweeps: every parser in the persistence path must
/// handle arbitrary corrupted input by returning an error — never by
/// crashing, looping, or silently returning wrong data.

Bytes RandomBytes(size_t size, Rng* rng) {
  Bytes data(size);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng->NextBelow(256));
  }
  return data;
}

class FuzzSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSeeds, JsonParserSurvivesGarbage) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const Bytes garbage = RandomBytes(rng.NextBelow(200), &rng);
    const std::string text(garbage.begin(), garbage.end());
    // Must return (value or error) without crashing.
    auto result = json::Parse(text);
    (void)result;
  }
}

TEST_P(FuzzSeeds, CodecUnframeSurvivesBitFlips) {
  Rng rng(GetParam());
  // Build a valid frame, then flip random bytes: Unframe must either fail
  // or (if the flip missed every meaningful bit) return the exact payload.
  Bytes payload = RandomBytes(500 + rng.NextBelow(2000), &rng);
  for (CodecKind kind : {CodecKind::kRle, CodecKind::kLz77,
                         CodecKind::kLz77Huffman}) {
    const Bytes frame = Codec::ForKind(kind)->Frame(payload).value();
    for (int round = 0; round < 50; ++round) {
      Bytes corrupted = frame;
      const size_t position = rng.NextBelow(corrupted.size());
      corrupted[position] ^= static_cast<uint8_t>(1 + rng.NextBelow(255));
      auto result = Codec::Unframe(corrupted);
      if (result.ok()) {
        EXPECT_EQ(result.value(), payload);
      }
    }
  }
}

TEST_P(FuzzSeeds, CodecDecompressSurvivesGarbage) {
  Rng rng(GetParam());
  // Callers decompress with an output bound (Unframe derives it from the
  // frame header); with the bound set, garbage cannot exhaust memory.
  constexpr size_t kLimit = 1 << 20;
  for (int round = 0; round < 100; ++round) {
    const Bytes garbage = RandomBytes(rng.NextBelow(500), &rng);
    for (CodecKind kind : {CodecKind::kRle, CodecKind::kLz77,
                           CodecKind::kLz77Huffman}) {
      auto result = Codec::ForKind(kind)->Decompress(garbage, kLimit);
      if (result.ok()) {
        EXPECT_LE(result->size(), kLimit);
      }
    }
    auto unframed = Codec::Unframe(garbage);
    (void)unframed;
  }
}

TEST_P(FuzzSeeds, HuffmanDecodeSurvivesGarbage) {
  Rng rng(GetParam());
  for (int round = 0; round < 100; ++round) {
    const Bytes garbage = RandomBytes(140 + rng.NextBelow(500), &rng);
    auto result = huffman::Decode(garbage);
    (void)result;
  }
}

TEST_P(FuzzSeeds, TensorDeserializeSurvivesGarbage) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const Bytes garbage = RandomBytes(rng.NextBelow(300), &rng);
    auto result = Tensor::Deserialize(garbage);
    (void)result;
  }
}

TEST_P(FuzzSeeds, MerkleDeserializeSurvivesGarbage) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const Bytes garbage = RandomBytes(rng.NextBelow(400), &rng);
    auto result = MerkleTree::Deserialize(garbage);
    (void)result;
  }
}

TEST_P(FuzzSeeds, TensorRoundtripWithBitFlipsNeverMisreports) {
  Rng rng(GetParam());
  Tensor tensor = Tensor::Gaussian(Shape{37}, 1.0f, &rng);
  const Bytes valid = tensor.Serialize();
  for (int round = 0; round < 100; ++round) {
    Bytes corrupted = valid;
    // Flip within the header region (shape/count), where corruption must
    // be detected structurally.
    const size_t position = rng.NextBelow(24);
    corrupted[position] ^= static_cast<uint8_t>(1 + rng.NextBelow(255));
    auto result = Tensor::Deserialize(corrupted);
    if (result.ok()) {
      // A header flip that still parses must describe the same layout.
      EXPECT_EQ(result->numel(), tensor.numel());
    }
  }
}

TEST_P(FuzzSeeds, PersistentStoresSurviveGarbageOnDisk) {
  Rng rng(GetParam());
  const std::string root = ::testing::TempDir() + "/robust-store-" +
                           std::to_string(GetParam());
  std::filesystem::remove_all(root);
  auto files = filestore::LocalDirFileStore::Open(root + "/files").value();
  auto docs =
      docstore::PersistentDocumentStore::Open(root + "/docs").value();

  const Bytes payload = RandomBytes(300, &rng);
  const std::string file_id = files->SaveFile(payload).value();
  json::Value doc = json::Value::MakeObject();
  doc.Set("seed", static_cast<int64_t>(GetParam()));
  const std::string doc_id = docs->Insert("models", doc).value();

  // Litter both roots with garbage that collides with the stores' naming
  // conventions: raw bytes posing as entries, temporaries, foreign files.
  for (int i = 0; i < 10; ++i) {
    const Bytes garbage = RandomBytes(1 + rng.NextBelow(200), &rng);
    const std::string tag = std::to_string(i);
    for (const std::string& path :
         {root + "/files/garbage" + tag + ".bin",
          root + "/files/partial" + tag + ".bin.tmp",
          root + "/docs/models/garbage" + tag + ".json",
          root + "/docs/models/stray" + tag + ".txt"}) {
      std::ofstream out(path, std::ios::binary);
      out.write(reinterpret_cast<const char*>(garbage.data()),
                static_cast<std::streamsize>(garbage.size()));
    }
  }

  // Genuine data still loads intact.
  EXPECT_EQ(files->LoadFile(file_id).value(), payload);
  EXPECT_TRUE(docs->Get("models", doc_id).ok());

  // Every API over the polluted stores returns value-or-error, never
  // crashes: garbage .json "documents" fail to parse, garbage .bin
  // "files" load as opaque bytes, listings and accounting complete.
  const std::vector<std::string> listed = docs->ListIds("models").value();
  for (const std::string& id : listed) {
    auto result = docs->Get("models", id);
    (void)result;
  }
  for (int i = 0; i < 10; ++i) {
    auto loaded = files->LoadFile("garbage" + std::to_string(i));
    (void)loaded;
  }
  EXPECT_GE(files->TotalStoredBytes(), payload.size());
  EXPECT_GE(docs->DocumentCount(), 1u);
  std::filesystem::remove_all(root);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace mmlib
