#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hash/sha256.h"
#include "util/result.h"

namespace mmlib::data {

/// A labeled RGB image with 8-bit channels, stored HWC.
struct Image {
  int64_t height = 0;
  int64_t width = 0;
  std::vector<uint8_t> pixels;  // height * width * 3
  int64_t label = 0;            // class id in [0, 1000)
};

/// A labeled image dataset. Implementations must be deterministic: the same
/// dataset always serves bit-identical images (a precondition of reproducible
/// training, paper Section 2.3 "Code, Parameters, and Data").
class Dataset {
 public:
  virtual ~Dataset() = default;

  /// Full name, e.g. "Coco-food-512".
  virtual const std::string& name() const = 0;

  /// Number of images.
  virtual size_t size() const = 0;

  /// Returns image `index`; index must be < size().
  virtual Image GetImage(size_t index) const = 0;

  /// Total stored payload bytes (pixels + labels), i.e. the dataset's
  /// storage footprint before compression.
  virtual size_t TotalByteSize() const = 0;

  /// SHA-256 over all images and labels in order; equal hashes mean equal
  /// datasets.
  Digest ContentHash() const;
};

/// The four datasets of the paper's Table 1.
enum class PaperDatasetId {
  kImageNetVal,      // INet-val:  50,000 images, 6.3 GB, U2
  kMiniImageNetVal,  // mINet-val:  1,400 images, 200 MB, U2
  kCocoFood512,      // CF-512:       512 images, 94.3 MB, U3
  kCocoOutdoor512,   // CO-512:       512 images, 71.6 MB, U3
};

/// Reference metadata for Table 1.
struct Table1Row {
  PaperDatasetId id;
  std::string short_name;
  std::string full_name;
  size_t images;
  uint64_t paper_bytes;  // dataset size reported in the paper
  std::string use_case;
};
const std::vector<Table1Row>& Table1Reference();

/// A procedurally generated stand-in for one of the paper's datasets
/// (substitution documented in DESIGN.md Section 1). Images are generated
/// on demand from a per-dataset seed: smooth class-dependent structure plus
/// pixel noise, so they are partially compressible like natural images.
///
/// `size_divisor` scales the per-image byte size so the whole dataset is
/// paper_bytes / size_divisor; relative sizes between datasets (the quantity
/// the MPA results depend on) are preserved at any divisor.
class SyntheticImageDataset : public Dataset {
 public:
  SyntheticImageDataset(PaperDatasetId id, uint64_t size_divisor);

  const std::string& name() const override { return name_; }
  size_t size() const override { return image_count_; }
  Image GetImage(size_t index) const override;
  size_t TotalByteSize() const override;

  PaperDatasetId id() const { return id_; }
  int64_t stored_dim() const { return stored_dim_; }

  /// Creates the dataset with the repo-default divisor (64).
  static std::unique_ptr<SyntheticImageDataset> Create(PaperDatasetId id);

 private:
  PaperDatasetId id_;
  std::string name_;
  size_t image_count_;
  int64_t stored_dim_;  // stored images are stored_dim x stored_dim
  uint64_t seed_;
};

/// Default size divisor used across tests/benches (paper sizes / 64).
constexpr uint64_t kDefaultDatasetDivisor = 64;

/// Materializes any dataset into an InMemoryDataset (all images resident).
/// Evaluation flows materialize their datasets once up front so that
/// per-save archiving measures byte handling, not procedural generation —
/// matching the paper, where datasets are files on disk.
std::unique_ptr<class InMemoryDataset> Materialize(const Dataset& source);

/// An in-memory dataset holding explicit images (used by the archiver's
/// extraction path, dataset materialization, and tests).
class InMemoryDataset : public Dataset {
 public:
  InMemoryDataset(std::string name, std::vector<Image> images)
      : name_(std::move(name)), images_(std::move(images)) {}

  const std::string& name() const override { return name_; }
  size_t size() const override { return images_.size(); }
  Image GetImage(size_t index) const override { return images_[index]; }
  size_t TotalByteSize() const override;

 private:
  std::string name_;
  std::vector<Image> images_;
};

}  // namespace mmlib::data

