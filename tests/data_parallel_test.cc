#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/recover.h"
#include "dist/flow.h"
#include "docstore/document_store.h"
#include "filestore/file_store.h"
#include "models/zoo.h"
#include "simnet/network.h"

namespace mmlib {
namespace {

/// Overridable so CI can sweep several fault schedules over the same
/// assertions (MMLIB_FAULT_SEED=4 ctest -R data_parallel ...).
uint64_t FaultSeed() {
  const char* env = std::getenv("MMLIB_FAULT_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 0x5eedfa17;
}

models::ModelConfig TinyConfig() {
  models::ModelConfig config =
      models::DefaultConfig(models::Architecture::kMobileNetV2);
  config.channel_divisor = 8;
  config.image_size = 28;
  config.num_classes = 10;
  return config;
}

dist::FlowConfig BaseConfig() {
  dist::FlowConfig config;
  config.approach = dist::ApproachKind::kBaseline;
  config.model = TinyConfig();
  config.num_nodes = 1;
  config.u3_iterations = 2;
  config.dataset_divisor = 4096;
  config.training_mode = dist::TrainingMode::kReal;
  config.recover_models = false;
  config.train.epochs = 1;
  config.train.max_batches_per_epoch = 3;  // 3 optimizer steps per update
  config.train.seed = 77 ^ FaultSeed();
  config.train.sgd.learning_rate = 2e-4f;
  config.train.sgd.momentum = 0.9f;
  config.train.loader.batch_size = 4;
  config.train.loader.image_size = 28;
  config.train.loader.num_classes = 10;
  config.train.loader.seed = config.train.seed;
  config.checkpoint_every_steps = 2;
  config.step_compute_seconds = 0.25;
  return config;
}

struct RunOutcome {
  dist::FlowResult result;
  std::vector<Digest> final_hashes;  // ParamsHash of every saved model
  uint64_t storage_faults = 0;
  uint64_t storage_drops = 0;
  double clock_seconds = 0.0;
};

/// Runs one flow on fresh in-memory stores behind a simulated network and
/// recovers every saved model's parameter hash for bit-level comparison.
RunOutcome RunFlow(dist::FlowConfig config,
                   const simnet::FaultPlan* storage_plan = nullptr,
                   const simnet::FaultPlan* collective_plan = nullptr) {
  docstore::InMemoryDocumentStore docs;
  filestore::InMemoryFileStore files;
  simnet::Network network;
  if (storage_plan != nullptr) {
    network.set_fault_plan(*storage_plan);
  }
  if (collective_plan != nullptr) {
    network.set_collective_fault_plan(*collective_plan);
  }
  core::StorageBackends backends{&docs, &files, &network, nullptr};
  dist::EvaluationFlow flow(std::move(config), backends);
  auto result = flow.Run();
  EXPECT_TRUE(result.ok()) << result.status();
  RunOutcome outcome;
  outcome.result = std::move(result).value();
  outcome.storage_faults = network.FaultCount();
  outcome.storage_drops = network.DropCount();
  outcome.clock_seconds = network.TotalTransferSeconds();
  core::StorageBackends local{&docs, &files, nullptr, nullptr};
  core::ModelRecoverer recoverer(local);
  for (const dist::UseCaseRecord& record : outcome.result.records) {
    auto recovered = recoverer.Recover(record.model_id, core::RecoverOptions{});
    EXPECT_TRUE(recovered.ok()) << recovered.status();
    outcome.final_hashes.push_back(recovered->model.ParamsHash());
  }
  return outcome;
}

// ---------------------------------------------------------------------------
// Worker-count invariance
// ---------------------------------------------------------------------------

TEST(DataParallelFlowTest, PowerOfTwoWorkerCountsAreBitIdentical) {
  // The tentpole acceptance: the same seeded flow with 1, 2, and 4 ring
  // workers lands on bit-identical saved models, and the storage fault
  // stream (collective traffic draws from its own stream) sees identical
  // draws. Only the virtual clock changes — K workers split the batch.
  simnet::FaultPlan storage_plan;
  storage_plan.drop_probability = 0.05;
  storage_plan.seed = FaultSeed();

  dist::FlowConfig base = BaseConfig();
  base.data_parallel_workers = 1;
  const RunOutcome reference = RunFlow(base, &storage_plan);
  ASSERT_FALSE(reference.final_hashes.empty());
  EXPECT_EQ(reference.result.collective.steps, 12u);  // 4 updates * 3 steps

  for (int workers : {2, 4}) {
    SCOPED_TRACE("K=" + std::to_string(workers));
    dist::FlowConfig config = BaseConfig();
    config.data_parallel_workers = workers;
    const RunOutcome outcome = RunFlow(config, &storage_plan);
    ASSERT_EQ(outcome.final_hashes.size(), reference.final_hashes.size());
    for (size_t i = 0; i < reference.final_hashes.size(); ++i) {
      EXPECT_EQ(outcome.final_hashes[i], reference.final_hashes[i])
          << outcome.result.records[i].label;
    }
    // Identical storage fault draws: the collective stream is independent.
    EXPECT_EQ(outcome.storage_faults, reference.storage_faults);
    EXPECT_EQ(outcome.storage_drops, reference.storage_drops);
    EXPECT_EQ(outcome.result.collective.steps,
              reference.result.collective.steps);
    EXPECT_EQ(outcome.result.collective.degraded_steps, 0u);
  }
}

TEST(DataParallelFlowTest, ModeRequiresRealTrainingAndANetwork) {
  dist::FlowConfig config = BaseConfig();
  config.data_parallel_workers = 2;
  config.training_mode = dist::TrainingMode::kSimulated;
  config.recover_models = false;
  docstore::InMemoryDocumentStore docs;
  filestore::InMemoryFileStore files;
  simnet::Network network;
  {
    core::StorageBackends backends{&docs, &files, &network, nullptr};
    dist::EvaluationFlow flow(config, backends);
    EXPECT_EQ(flow.Run().status().code(), StatusCode::kInvalidArgument);
  }
  {
    config.training_mode = dist::TrainingMode::kReal;
    core::StorageBackends backends{&docs, &files, nullptr, nullptr};
    dist::EvaluationFlow flow(config, backends);
    EXPECT_EQ(flow.Run().status().code(), StatusCode::kInvalidArgument);
  }
}

// ---------------------------------------------------------------------------
// Crash mid-all-reduce
// ---------------------------------------------------------------------------

TEST(DataParallelFlowTest, CrashMidAllReduceLandsBitIdentical) {
  // Kill worker 1 at each collective crash site during step 2 of a U3
  // update: the worker restarts, re-syncs into the ring, and the update
  // resumes from its checkpoint — every saved model bit-identical to the
  // crash-free data-parallel run.
  dist::FlowConfig base = BaseConfig();
  base.data_parallel_workers = 2;
  const RunOutcome clean = RunFlow(base);
  ASSERT_EQ(clean.result.TotalCrashes(), 0u);

  for (const char* site :
       {"collective.send", "collective.reduce", "collective.commit"}) {
    SCOPED_TRACE(site);
    dist::FlowConfig config = BaseConfig();
    config.data_parallel_workers = 2;
    dist::NodeCrashEvent event;
    event.phase = 2;
    event.iteration = 1;
    event.node = 0;
    event.at_step = 2;
    event.site = site;
    event.worker = 1;
    config.crash_schedule.push_back(event);
    const RunOutcome crashed = RunFlow(config);

    ASSERT_EQ(crashed.final_hashes.size(), clean.final_hashes.size());
    for (size_t i = 0; i < clean.final_hashes.size(); ++i) {
      EXPECT_EQ(crashed.final_hashes[i], clean.final_hashes[i])
          << crashed.result.records[i].label;
    }
    EXPECT_EQ(crashed.result.TotalCrashes(), 1u);
    EXPECT_EQ(crashed.result.TotalRestarts(), 1u);
    // The killed worker pulled one parameter snapshot to rejoin.
    EXPECT_EQ(crashed.result.collective.workers[1].rejoin_syncs, 1u);
    EXPECT_EQ(crashed.result.collective.workers[0].rejoin_syncs, 0u);
    // Recovery costs clock time: detection, restart, re-sync, retraining.
    EXPECT_GT(crashed.clock_seconds, clean.clock_seconds);
  }
}

TEST(DataParallelFlowTest, CollectiveCrashSitesAreValidated) {
  dist::FlowConfig config = BaseConfig();
  config.data_parallel_workers = 0;
  dist::NodeCrashEvent event;
  event.site = "collective.send";
  config.crash_schedule.push_back(event);
  docstore::InMemoryDocumentStore docs;
  filestore::InMemoryFileStore files;
  simnet::Network network;
  core::StorageBackends backends{&docs, &files, &network, nullptr};
  {
    dist::EvaluationFlow flow(config, backends);
    EXPECT_EQ(flow.Run().status().code(), StatusCode::kInvalidArgument);
  }
  config.data_parallel_workers = 2;
  config.crash_schedule[0].worker = 5;
  {
    dist::EvaluationFlow flow(config, backends);
    EXPECT_EQ(flow.Run().status().code(), StatusCode::kInvalidArgument);
  }
  config.crash_schedule[0].site = "collective.bogus";
  config.crash_schedule[0].worker = 0;
  {
    dist::EvaluationFlow flow(config, backends);
    EXPECT_EQ(flow.Run().status().code(), StatusCode::kInvalidArgument);
  }
}

// ---------------------------------------------------------------------------
// Degraded cohorts: deterministic per seed
// ---------------------------------------------------------------------------

TEST(DataParallelFlowTest, DegradedCohortRunsAreDeterministicPerSeed) {
  // One straggler window and one permanent worker loss: the flow result
  // legitimately differs from the clean run (3-survivor means are not
  // exponent shifts), but an identical re-run reproduces every byte and
  // every counter.
  auto degraded_config = [&]() {
    dist::FlowConfig config = BaseConfig();
    config.data_parallel_workers = 4;
    collective::StragglerWindow straggler;
    straggler.worker = 2;
    straggler.slow_factor = 64.0;  // far past the bounded wait: excluded
    straggler.update = 1;
    straggler.from_step = 1;
    straggler.to_step = 2;
    config.ring.stragglers.push_back(straggler);
    collective::WorkerLossEvent loss;
    loss.worker = 3;
    loss.update = 3;
    loss.at_step = 1;
    config.ring.losses.push_back(loss);
    return config;
  }();

  simnet::FaultPlan collective_plan;
  collective_plan.drop_probability = 0.02;
  collective_plan.seed = FaultSeed() ^ 0xc011ec71;

  const RunOutcome first =
      RunFlow(degraded_config, nullptr, &collective_plan);
  const RunOutcome second =
      RunFlow(degraded_config, nullptr, &collective_plan);

  ASSERT_EQ(first.final_hashes.size(), second.final_hashes.size());
  for (size_t i = 0; i < first.final_hashes.size(); ++i) {
    EXPECT_EQ(first.final_hashes[i], second.final_hashes[i])
        << first.result.records[i].label;
  }
  EXPECT_EQ(first.clock_seconds, second.clock_seconds);
  EXPECT_GT(first.result.collective.degraded_steps, 0u);
  EXPECT_EQ(first.result.collective.degraded_steps,
            second.result.collective.degraded_steps);
  EXPECT_EQ(first.result.collective.retries,
            second.result.collective.retries);
  ASSERT_EQ(first.result.collective.workers.size(), 4u);
  for (size_t w = 0; w < 4; ++w) {
    EXPECT_EQ(first.result.collective.workers[w] ==
                  second.result.collective.workers[w],
              true)
        << "worker " << w;
  }
  // The lost worker sat out every step of updates 3 and 4 (loss events are
  // keyed by update, and the loss hits from update 3 on).
  EXPECT_GT(first.result.collective.workers[3].excluded_steps,
            first.result.collective.workers[2].excluded_steps - 2);
}

TEST(DataParallelFlowTest, DegradedRunDiffersFromCleanRun) {
  // Sanity check on the other side of the determinism claim: a 3-of-4
  // cohort's rescaled mean is a genuinely different trajectory, not a
  // silent no-op.
  dist::FlowConfig clean_config = BaseConfig();
  clean_config.data_parallel_workers = 4;
  const RunOutcome clean = RunFlow(clean_config);

  dist::FlowConfig lossy = BaseConfig();
  lossy.data_parallel_workers = 4;
  collective::WorkerLossEvent loss;
  loss.worker = 0;
  loss.update = 1;
  loss.at_step = 1;
  lossy.ring.losses.push_back(loss);
  const RunOutcome degraded = RunFlow(lossy);

  ASSERT_EQ(degraded.final_hashes.size(), clean.final_hashes.size());
  bool any_difference = false;
  for (size_t i = 0; i < clean.final_hashes.size(); ++i) {
    if (!(degraded.final_hashes[i] == clean.final_hashes[i])) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
  EXPECT_EQ(degraded.result.collective.degraded_steps,
            degraded.result.collective.steps);
}

}  // namespace
}  // namespace mmlib
