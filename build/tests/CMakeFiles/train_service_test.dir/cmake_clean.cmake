file(REMOVE_RECURSE
  "CMakeFiles/train_service_test.dir/train_service_test.cc.o"
  "CMakeFiles/train_service_test.dir/train_service_test.cc.o.d"
  "train_service_test"
  "train_service_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
