#pragma once

#include <string>
#include <vector>

#include "nn/layer.h"

namespace mmlib::nn {

/// Batch normalization over NCHW inputs (per-channel statistics).
///
/// Parameters: weight (gamma), bias (beta). Buffers: running_mean,
/// running_var — the buffers are part of the model state and are saved and
/// recovered together with the parameters (a model is only *equal* after
/// recovery if the buffers match too, paper Section 2.1).
class BatchNorm2d : public Layer {
 public:
  BatchNorm2d(std::string name, int64_t channels, float momentum = 0.1f,
              float epsilon = 1e-5f);

  std::string_view type() const override { return "batchnorm2d"; }

  Result<Tensor> Forward(const std::vector<const Tensor*>& inputs,
                         ExecutionContext* ctx) override;
  Result<std::vector<Tensor>> Backward(const Tensor& grad_output,
                                       ExecutionContext* ctx) override;

 private:
  int64_t channels_;
  float momentum_;
  float epsilon_;
  // Cached by Forward for Backward.
  Tensor cached_input_;
  std::vector<float> batch_mean_;
  std::vector<float> batch_inv_std_;
};

}  // namespace mmlib::nn

