/// Google-benchmark micro suite for the substrate libraries: hashing,
/// serialization, compression, JSON, document store, Merkle trees, and
/// deterministic-vs-plain convolution kernels.
#include <benchmark/benchmark.h>

#include "compress/codec.h"
#include "docstore/document_store.h"
#include "hash/merkle_tree.h"
#include "hash/sha256.h"
#include "json/json.h"
#include "nn/conv2d.h"
#include "tensor/tensor.h"
#include "util/random.h"

namespace mmlib {
namespace {

Bytes RandomBytes(size_t size, uint64_t seed) {
  Rng rng(seed);
  Bytes data(size);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.NextBelow(256));
  }
  return data;
}

void BM_Sha256(benchmark::State& state) {
  const Bytes data = RandomBytes(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Range(1 << 10, 1 << 22);

void BM_Crc32(benchmark::State& state) {
  const Bytes data = RandomBytes(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Range(1 << 10, 1 << 22);

void BM_TensorSerialize(benchmark::State& state) {
  Rng rng(3);
  const Tensor tensor =
      Tensor::Gaussian(Shape{state.range(0)}, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor.Serialize());
  }
  state.SetBytesProcessed(state.iterations() * tensor.byte_size());
}
BENCHMARK(BM_TensorSerialize)->Range(1 << 12, 1 << 20);

void BM_TensorContentHash(benchmark::State& state) {
  Rng rng(4);
  const Tensor tensor =
      Tensor::Gaussian(Shape{state.range(0)}, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor.ContentHash());
  }
  state.SetBytesProcessed(state.iterations() * tensor.byte_size());
}
BENCHMARK(BM_TensorContentHash)->Range(1 << 12, 1 << 20);

void BM_Lz77Compress(benchmark::State& state) {
  // Text-like payload: repeated vocabulary.
  Bytes data;
  Rng rng(5);
  const std::string words[] = {"baseline ", "update ", "provenance ",
                               "recover ", "model "};
  while (data.size() < static_cast<size_t>(state.range(0))) {
    const std::string& w = words[rng.NextBelow(5)];
    data.insert(data.end(), w.begin(), w.end());
  }
  const Codec* codec = Codec::ForKind(CodecKind::kLz77);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->Compress(data));
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_Lz77Compress)->Range(1 << 14, 1 << 20);

void BM_JsonParse(benchmark::State& state) {
  json::Value doc = json::Value::MakeObject();
  for (int i = 0; i < 64; ++i) {
    json::Value entry = json::Value::MakeObject();
    entry.Set("layer", "layer" + std::to_string(i));
    entry.Set("params", i * 1000);
    entry.Set("hash", std::string(64, 'a'));
    doc.Set("k" + std::to_string(i), std::move(entry));
  }
  const std::string text = doc.Dump();
  for (auto _ : state) {
    benchmark::DoNotOptimize(json::Parse(text));
  }
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_JsonParse);

void BM_DocStoreInsertGet(benchmark::State& state) {
  docstore::InMemoryDocumentStore store;
  json::Value doc = json::Value::MakeObject();
  doc.Set("approach", "baseline");
  doc.Set("checksum", std::string(64, 'f'));
  for (auto _ : state) {
    const std::string id = store.Insert("models", doc).value();
    benchmark::DoNotOptimize(store.Get("models", id));
  }
}
BENCHMARK(BM_DocStoreInsertGet);

void BM_MerkleBuild(benchmark::State& state) {
  std::vector<Digest> leaves;
  for (int64_t i = 0; i < state.range(0); ++i) {
    leaves.push_back(Sha256::Hash("leaf" + std::to_string(i)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MerkleTree::Build(leaves));
  }
}
BENCHMARK(BM_MerkleBuild)->Range(8, 512);

void BM_MerkleDiff(benchmark::State& state) {
  std::vector<Digest> leaves;
  for (int64_t i = 0; i < state.range(0); ++i) {
    leaves.push_back(Sha256::Hash("leaf" + std::to_string(i)));
  }
  const MerkleTree before = MerkleTree::Build(leaves).value();
  leaves.back() = Sha256::Hash("changed");
  const MerkleTree after = MerkleTree::Build(leaves).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(MerkleTree::Diff(before, after));
  }
}
BENCHMARK(BM_MerkleDiff)->Range(8, 512);

void ConvForward(benchmark::State& state, bool deterministic,
                 int64_t kernel) {
  Rng rng(6);
  nn::Conv2d conv("c", 16, 16, kernel, 1, kernel / 2, 1, &rng);
  const Tensor input = Tensor::Gaussian(Shape{1, 16, 14, 14}, 1.0f, &rng);
  for (auto _ : state) {
    nn::ExecutionContext ctx =
        deterministic ? nn::ExecutionContext::Deterministic(1)
                      : nn::ExecutionContext::NonDeterministic(1, 2);
    benchmark::DoNotOptimize(conv.Forward({&input}, &ctx));
  }
}

void BM_Conv3x3_Plain(benchmark::State& state) {
  ConvForward(state, false, 3);
}
void BM_Conv3x3_Deterministic(benchmark::State& state) {
  ConvForward(state, true, 3);
}
void BM_Conv1x1_Plain(benchmark::State& state) {
  ConvForward(state, false, 1);
}
void BM_Conv1x1_Deterministic(benchmark::State& state) {
  ConvForward(state, true, 1);
}
BENCHMARK(BM_Conv3x3_Plain);
BENCHMARK(BM_Conv3x3_Deterministic);
BENCHMARK(BM_Conv1x1_Plain);
BENCHMARK(BM_Conv1x1_Deterministic);

}  // namespace
}  // namespace mmlib

BENCHMARK_MAIN();
