#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

#include "util/status.h"

namespace mmlib {

namespace result_internal {

/// Failure handler for misused Result. util/ is the bottom layer of the
/// include DAG (tools/mmlint/layers.toml), so this header cannot reach for
/// check/check.h; it reports in the same `MMLIB_CHECK failed:` shape and
/// aborts so ctest and sanitizer runs surface a stack trace.
[[noreturn]] inline void ResultFatal(const char* file, int line,
                                     const std::string& message) {
  std::fprintf(stderr, "MMLIB_CHECK failed: %s:%d: %s\n", file, line,
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace result_internal

/// Result<T> holds either a value of type T or an error Status. It is the
/// return type of any mmlib operation that can fail and produces a value.
///
/// Usage:
///   Result<int> r = Parse(s);
///   if (!r.ok()) return r.status();
///   int v = r.value();
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a Result holding a value (implicit to allow `return value;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error (implicit to allow
  /// `return Status::NotFound(...)`). Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      result_internal::ResultFatal(
          __FILE__, __LINE__,
          "Result constructed from OK status without value");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// Returns the error status; OK when a value is held.
  const Status& status() const { return status_; }

  /// Returns the held value. Must only be called when ok().
  const T& value() const& {
    CheckHoldsValue();
    return *value_;
  }
  T& value() & {
    CheckHoldsValue();
    return *value_;
  }
  T&& value() && {
    CheckHoldsValue();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckHoldsValue() const {
    if (!ok()) {
      result_internal::ResultFatal(
          __FILE__, __LINE__,
          "value() on error Result: " + status_.ToString());
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace mmlib

