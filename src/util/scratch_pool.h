#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "util/aligned_buffer.h"

namespace mmlib::util {

/// Thread-safe free-list of aligned scratch buffers.
///
/// Kernel plans own one pool each: every execution of the plan (and every
/// chunk of its ParallelFor) leases scratch from the pool instead of
/// allocating, so repeated layers and repeated training steps reuse the
/// same buffers and the hot path stays malloc-free after warm-up. Leases
/// are RAII: the buffer returns to the pool when the lease goes out of
/// scope. Buffer contents are NOT cleared between leases — callers must
/// fully initialize what they read.
class ScratchPool {
 public:
  /// RAII handle on a pooled buffer; returns it on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(ScratchPool* pool, AlignedBuffer buffer);
    ~Lease();

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&& other) noexcept;

    float* data() { return buffer_.data(); }
    size_t size() const { return buffer_.size(); }
    /// Double view of the buffer (size()/2 doubles); see
    /// AlignedBuffer::as_doubles for the aliasing contract.
    double* as_doubles() { return buffer_.as_doubles(); }

   private:
    ScratchPool* pool_ = nullptr;
    AlignedBuffer buffer_;
  };

  /// Default cap on bytes parked in the free list (64 MiB). Generous for
  /// kernel-plan scratch (a few tiles per plan) while bounding a
  /// shape-churning workload that would otherwise retain every size class
  /// it ever touched.
  static constexpr size_t kDefaultMaxRetainedBytes = 64u << 20;

  ScratchPool() = default;
  explicit ScratchPool(size_t max_retained_bytes)
      : max_retained_bytes_(max_retained_bytes) {}
  ScratchPool(const ScratchPool&) = delete;
  ScratchPool& operator=(const ScratchPool&) = delete;

  /// Returns a lease on a buffer of at least `min_floats` floats, reusing a
  /// pooled one when a large-enough buffer is free.
  Lease Acquire(size_t min_floats);

  /// Buffers ever allocated by this pool (monotonic).
  size_t allocated_buffers() const;

  /// Acquire calls served from the free list instead of allocating.
  size_t reused_acquires() const;

  /// Buffers dropped by the retention cap instead of being parked
  /// (monotonic).
  size_t trimmed_buffers() const;

  /// Bytes currently parked in the free list (leased buffers excluded).
  size_t retained_bytes() const;

 private:
  void Release(AlignedBuffer buffer);
  /// Drops largest-first until retained bytes fit the cap. Caller holds
  /// mutex_.
  void TrimLocked();

  mutable std::mutex mutex_;
  std::vector<AlignedBuffer> free_;
  size_t max_retained_bytes_ = kDefaultMaxRetainedBytes;
  size_t retained_bytes_ = 0;
  size_t allocated_ = 0;
  size_t reused_ = 0;
  size_t trimmed_ = 0;
};

}  // namespace mmlib::util
