#include "serve/stats.h"

#include <cmath>

#include "hash/sha256.h"

namespace mmlib::serve {
namespace {

/// Upper bound of bucket `i`: kFirstBucketSeconds * kGrowth^i. Computed by
/// repeated multiplication so every caller sees the identical sequence.
double BucketUpper(size_t i) {
  double upper = LatencyHistogram::kFirstBucketSeconds;
  for (size_t k = 0; k < i; ++k) {
    upper *= LatencyHistogram::kGrowth;
  }
  return upper;
}

void HashU64(Sha256& hasher, uint64_t value) {
  uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<uint8_t>(value >> (8 * i));
  }
  hasher.Update(bytes, sizeof(bytes));
}

}  // namespace

void LatencyHistogram::Record(double seconds) {
  size_t i = 0;
  double upper = kFirstBucketSeconds;
  while (i + 1 < kBuckets && seconds > upper) {
    upper *= kGrowth;
    ++i;
  }
  ++buckets_[i];
  ++total_;
}

double LatencyHistogram::Quantile(double q) const {
  if (total_ == 0) {
    return 0.0;
  }
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  // Rank of the q-th sample, 1-based, rounded up (the "nearest rank"
  // definition — integer arithmetic only).
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * total_));
  if (rank == 0) {
    rank = 1;
  }
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return BucketUpper(i);
    }
  }
  return BucketUpper(kBuckets - 1);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < kBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  total_ += other.total_;
}

std::string ServeReport::Digest() const {
  Sha256 hasher;
  HashU64(hasher, counters.arrivals);
  HashU64(hasher, counters.admitted);
  for (const uint64_t o : counters.outcomes) {
    HashU64(hasher, o);
  }
  HashU64(hasher, counters.shed_queue_full);
  HashU64(hasher, counters.shed_over_quota);
  HashU64(hasher, counters.expired_in_queue);
  HashU64(hasher, counters.batched);
  HashU64(hasher, counters.batches_flushed);
  HashU64(hasher, counters.breaker_trips);
  HashU64(hasher, counters.breaker_probes);
  HashU64(hasher, counters.breaker_recoveries);
  HashU64(hasher, counters.breaker_fast_rejects);
  HashU64(hasher, counters.hedged_reads);
  HashU64(hasher, counters.hedge_wins);
  HashU64(hasher, counters.backend_failures);
  HashU64(hasher, latency.total_count());
  for (size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    HashU64(hasher, latency.bucket(i));
  }
  return hasher.Finish().ToHex();
}

}  // namespace mmlib::serve
