#pragma once

#include <string>
#include <vector>

#include "nn/layer.h"

namespace mmlib::nn {

/// Rectified linear unit, optionally clipped at 6 (ReLU6, MobileNetV2).
class ReLU : public Layer {
 public:
  ReLU(std::string name, float clip = 0.0f)
      : Layer(std::move(name)), clip_(clip) {}

  std::string_view type() const override { return "relu"; }

  Result<Tensor> Forward(const std::vector<const Tensor*>& inputs,
                         ExecutionContext* ctx) override;
  Result<std::vector<Tensor>> Backward(const Tensor& grad_output,
                                       ExecutionContext* ctx) override;

 private:
  float clip_;  // 0 => unbounded
  Tensor cached_input_;
};

/// Dropout with rate `p`. The mask is drawn from the execution context's
/// seeded PRNG, so training is reproducible when seeded (paper Section 2.3,
/// "Intentional Randomness"). Identity when not training.
class Dropout : public Layer {
 public:
  Dropout(std::string name, float p) : Layer(std::move(name)), p_(p) {}

  std::string_view type() const override { return "dropout"; }

  Result<Tensor> Forward(const std::vector<const Tensor*>& inputs,
                         ExecutionContext* ctx) override;
  Result<std::vector<Tensor>> Backward(const Tensor& grad_output,
                                       ExecutionContext* ctx) override;

 private:
  float p_;
  std::vector<uint8_t> mask_;
};

/// Elementwise logistic sigmoid.
class Sigmoid : public Layer {
 public:
  explicit Sigmoid(std::string name) : Layer(std::move(name)) {}

  std::string_view type() const override { return "sigmoid"; }

  Result<Tensor> Forward(const std::vector<const Tensor*>& inputs,
                         ExecutionContext* ctx) override;
  Result<std::vector<Tensor>> Backward(const Tensor& grad_output,
                                       ExecutionContext* ctx) override;

 private:
  Tensor cached_output_;
};

/// Elementwise hyperbolic tangent.
class Tanh : public Layer {
 public:
  explicit Tanh(std::string name) : Layer(std::move(name)) {}

  std::string_view type() const override { return "tanh"; }

  Result<Tensor> Forward(const std::vector<const Tensor*>& inputs,
                         ExecutionContext* ctx) override;
  Result<std::vector<Tensor>> Backward(const Tensor& grad_output,
                                       ExecutionContext* ctx) override;

 private:
  Tensor cached_output_;
};

/// Flattens [N, ...] to [N, prod(...)].
class Flatten : public Layer {
 public:
  explicit Flatten(std::string name) : Layer(std::move(name)) {}

  std::string_view type() const override { return "flatten"; }

  Result<Tensor> Forward(const std::vector<const Tensor*>& inputs,
                         ExecutionContext* ctx) override;
  Result<std::vector<Tensor>> Backward(const Tensor& grad_output,
                                       ExecutionContext* ctx) override;

 private:
  Shape input_shape_;
};

/// Elementwise sum of two or more inputs (residual connections).
class Add : public Layer {
 public:
  Add(std::string name, size_t arity) : Layer(std::move(name)), arity_(arity) {}

  std::string_view type() const override { return "add"; }
  size_t arity() const override { return arity_; }

  Result<Tensor> Forward(const std::vector<const Tensor*>& inputs,
                         ExecutionContext* ctx) override;
  Result<std::vector<Tensor>> Backward(const Tensor& grad_output,
                                       ExecutionContext* ctx) override;

 private:
  size_t arity_;
};

/// Channel-dimension concatenation of NCHW inputs (inception blocks).
class Concat : public Layer {
 public:
  Concat(std::string name, size_t arity)
      : Layer(std::move(name)), arity_(arity) {}

  std::string_view type() const override { return "concat"; }
  size_t arity() const override { return arity_; }

  Result<Tensor> Forward(const std::vector<const Tensor*>& inputs,
                         ExecutionContext* ctx) override;
  Result<std::vector<Tensor>> Backward(const Tensor& grad_output,
                                       ExecutionContext* ctx) override;

 private:
  size_t arity_;
  std::vector<int64_t> input_channels_;
  Shape output_shape_;
};

}  // namespace mmlib::nn

