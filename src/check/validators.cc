#include "check/validators.h"

#include <string>

namespace mmlib::check {

namespace {

std::string WithContext(std::string_view context, std::string message) {
  if (context.empty()) {
    return message;
  }
  return std::string(context) + ": " + message;
}

}  // namespace

Status ValidateIndex(int64_t index, int64_t size, std::string_view context) {
  if (index >= 0 && index < size) {
    return Status::OK();
  }
  return Status::OutOfRange(WithContext(
      context, "index " + std::to_string(index) + " out of range [0, " +
                   std::to_string(size) + ")"));
}

Status ValidatePositive(int64_t value, std::string_view context) {
  if (value > 0) {
    return Status::OK();
  }
  return Status::InvalidArgument(WithContext(
      context, "expected a positive value, got " + std::to_string(value)));
}

Status ValidateResourceName(std::string_view name, bool allow_dot,
                            std::string_view context) {
  const auto reject = [&](const std::string& why) {
    return Status::InvalidArgument(
        WithContext(context, "unsafe name \"" + std::string(name) + "\": " +
                                 why));
  };
  if (name.empty()) {
    return reject("empty");
  }
  if (name.size() > 200) {
    return reject("longer than 200 characters");
  }
  if (name == "." || name == "..") {
    return reject("reserved path component");
  }
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    (allow_dot && c == '.');
    if (!ok) {
      return reject(std::string("disallowed character '") + c + "'");
    }
  }
  return Status::OK();
}

}  // namespace mmlib::check
