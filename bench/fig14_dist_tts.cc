/// Reproduces paper Figure 14: median time-to-save (TTS) for fully updated
/// MobileNetV2 versions across approaches on the DIST-20 evaluation flow
/// (20 nodes, 10 U3 iterations per phase, 402 models per run). Values are
/// per-use-case medians over the 20 nodes. All U3 models trained on CO-512.
#include <cstdio>

#include "bench/bench_common.h"

using namespace mmlib;
using namespace mmlib::bench;
using namespace mmlib::dist;

int main() {
  PrintHeader(
      "Figure 14", "DIST-20 median TTS, fully updated MobileNetV2",
      "Expected shape (paper Section 4.6): per-use-case TTS is flat across\n"
      "iterations; BA ~ PUA (fully updated => full-size update); MPA is\n"
      "several times higher because it persists the dataset archive.");

  std::vector<std::string> headers = {"use case"};
  std::vector<FlowResult> results;
  for (ApproachKind approach : {ApproachKind::kBaseline,
                                ApproachKind::kParamUpdate,
                                ApproachKind::kProvenance}) {
    headers.push_back(std::string(ApproachName(approach)));
    FlowConfig config;
    config.approach = approach;
    config.model = TrainScaleModel(models::Architecture::kMobileNetV2);
    config.u3_dataset = data::PaperDatasetId::kCocoOutdoor512;
    config.dataset_divisor = MatchedDatasetDivisor(config.model);
    config.num_nodes = 20;
    config.u3_iterations = 10;
    config.train.epochs = 1;
    config.train.max_batches_per_epoch = 1;
    config.train.loader.batch_size = 4;
    config.training_mode = TrainingMode::kSimulated;
    config.recover_models = false;
    results.push_back(RunFlowRemote(config));
  }

  TablePrinter table(headers);
  for (const std::string& label : results[0].Labels()) {
    std::vector<std::string> row = {label};
    for (const FlowResult& result : results) {
      row.push_back(Millis(result.MedianTts(label)));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  std::printf("\nModels saved per run: %zu (paper: 402)\n",
              results[0].records.size());
  return 0;
}
