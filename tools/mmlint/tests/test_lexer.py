"""Lexer unit tests: comment/string stripping, directives, allows, lines."""

import unittest

from tools.mmlint.lexer import CHAR, IDENT, NUMBER, PUNCT, STRING, lex


def values(lexed, kind=None):
    return [t.value for t in lexed.tokens if kind is None or t.kind == kind]


class CommentTest(unittest.TestCase):
    def test_comments_produce_no_code_tokens(self):
        out = lex("int a; // rand() assert(x)\n/* std::thread t; */ int b;")
        self.assertEqual(values(out), ["int", "a", ";", "int", "b", ";"])
        self.assertEqual(len(out.comments), 2)

    def test_block_comment_lines_tracked(self):
        out = lex("/* line1\nline2\nline3 */\nint x;")
        self.assertEqual(out.tokens[0].value, "int")
        self.assertEqual(out.tokens[0].line, 4)

    def test_allow_extraction(self):
        out = lex("int a;  // lint:allow(no-assert)\n"
                  "int b;  // lint:allow(no-raw-rand)\n")
        self.assertEqual([(a.line, a.rule) for a in out.allows],
                         [(1, "no-assert"), (2, "no-raw-rand")])

    def test_allow_in_block_comment_attaches_to_its_line(self):
        out = lex("/* intro\n   lint:allow(layering)\n*/\n")
        self.assertEqual([(a.line, a.rule) for a in out.allows],
                         [(2, "layering")])


class LiteralTest(unittest.TestCase):
    def test_string_is_single_token(self):
        out = lex('call("assert(x) rand()");')
        strings = [t for t in out.tokens if t.kind == STRING]
        self.assertEqual(len(strings), 1)
        self.assertEqual(strings[0].value, "assert(x) rand()")

    def test_escaped_quote(self):
        out = lex(r'f("a\"b");')
        strings = [t for t in out.tokens if t.kind == STRING]
        self.assertEqual(strings[0].value, r"a\"b")

    def test_raw_string(self):
        out = lex('auto s = R"x(no "tokens" here; rand();)x"; int y;')
        strings = [t for t in out.tokens if t.kind == STRING]
        self.assertEqual(len(strings), 1)
        self.assertIn("rand();", strings[0].value)
        self.assertEqual(values(out, IDENT), ["auto", "s", "int", "y"])

    def test_encoding_prefixes(self):
        out = lex('auto a = u8"x"; auto b = L"y"; auto c = U\'z\';')
        self.assertEqual(len([t for t in out.tokens if t.kind == STRING]), 2)
        self.assertEqual(len([t for t in out.tokens if t.kind == CHAR]), 1)

    def test_char_literal_with_escape(self):
        out = lex(r"char c = '\'';")
        chars = [t for t in out.tokens if t.kind == CHAR]
        self.assertEqual(len(chars), 1)


class DirectiveTest(unittest.TestCase):
    def test_directives_do_not_leak_tokens(self):
        out = lex("#define WRITE(p) AtomicWriteFile(p)\nint x;")
        self.assertEqual(values(out), ["int", "x", ";"])
        self.assertEqual(out.directives[0].keyword, "define")

    def test_continuation_folded(self):
        out = lex("#define M(a, b) \\\n  ((a) + (b))\nint x;")
        self.assertEqual(len(out.directives), 1)
        self.assertIn("((a) + (b))", out.directives[0].text)
        self.assertEqual(out.tokens[0].line, 3)

    def test_include_target(self):
        out = lex('#include <vector>\n#include "util/fs.h"\n')
        self.assertEqual(out.directives[0].include_target(), "<vector>")
        self.assertEqual(out.directives[1].include_target(), '"util/fs.h"')

    def test_hash_mid_line_is_not_a_directive(self):
        out = lex("int a = x # y;\n")  # nonsense C++, but not a directive
        self.assertEqual(len(out.directives), 0)


class TokenShapeTest(unittest.TestCase):
    def test_attribute_brackets_stay_single(self):
        out = lex("class [[nodiscard]] Status;")
        self.assertEqual(values(out, PUNCT), ["[", "[", "]", "]", ";"])

    def test_multichar_punct_longest_match(self):
        out = lex("a::b->c <<= 1;")
        puncts = values(out, PUNCT)
        self.assertIn("::", puncts)
        self.assertIn("->", puncts)
        self.assertIn("<<=", puncts)

    def test_numbers(self):
        out = lex("int a = 0x1F; double b = 1.5e-3; int c = 1'000;")
        nums = values(out, NUMBER)
        self.assertIn("0x1F", nums)
        self.assertEqual(len(nums), 3)

    def test_line_numbers(self):
        out = lex("int a;\n\nint b;\n")
        idents = [t for t in out.tokens if t.kind == IDENT]
        self.assertEqual([t.line for t in idents], [1, 1, 3, 3])


if __name__ == "__main__":
    unittest.main()
