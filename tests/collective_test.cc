#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "collective/gradient_sync.h"
#include "collective/ring.h"
#include "models/zoo.h"
#include "nn/model.h"
#include "simnet/network.h"
#include "util/crash_point.h"
#include "util/thread_pool.h"

namespace mmlib {
namespace {

/// Overridable so CI can sweep several fault schedules over the same
/// assertions (MMLIB_FAULT_SEED=3 ctest -R collective ...).
uint64_t FaultSeed() {
  const char* env = std::getenv("MMLIB_FAULT_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 0x5eedfa17;
}

/// The session's reduction contract, restated independently: balanced
/// binary tree over cohort ranks, scaled by 1/C at the end.
float ReferenceFold(const std::vector<float>& vals, size_t lo, size_t hi) {
  if (lo == hi) {
    return vals[lo];
  }
  const size_t mid = lo + (hi - lo) / 2;
  return ReferenceFold(vals, lo, mid) + ReferenceFold(vals, mid + 1, hi);
}

std::vector<std::vector<float>> DistinctInputs(size_t workers, size_t n) {
  std::vector<std::vector<float>> inputs(workers, std::vector<float>(n));
  for (size_t w = 0; w < workers; ++w) {
    for (size_t j = 0; j < n; ++j) {
      inputs[w][j] = 0.25f * static_cast<float>(w + 1) +
                     0.001f * static_cast<float>(j % 97) -
                     (j % 3 == 0 ? 1.5f : 0.0f);
    }
  }
  return inputs;
}

std::vector<const std::vector<float>*> Pointers(
    const std::vector<std::vector<float>>& inputs) {
  std::vector<const std::vector<float>*> ptrs;
  for (const std::vector<float>& input : inputs) {
    ptrs.push_back(&input);
  }
  return ptrs;
}

// ---------------------------------------------------------------------------
// Network worker space
// ---------------------------------------------------------------------------

TEST(WorkerSpaceTest, TransfersChargeAndRejectLikeReplicas) {
  simnet::Network network;
  network.ConfigureWorkers(3);
  EXPECT_EQ(network.WorkerCount(), 3u);
  EXPECT_TRUE(network.IsWorkerReachable(0));
  EXPECT_TRUE(network.WorkerPairReachable(0, 1));
  EXPECT_FALSE(network.WorkerPairReachable(1, 1));  // distinct workers only

  simnet::TransferAttempt ok = network.TryTransferBetweenWorkers(0, 1, 1024);
  EXPECT_TRUE(ok.status.ok());
  EXPECT_GT(ok.seconds, 0.0);

  // A down destination rejects after one latency charge, with no fault
  // draw and per-worker attribution.
  ASSERT_TRUE(network.CrashWorker(1).ok());
  EXPECT_FALSE(network.IsWorkerUp(1));
  EXPECT_EQ(network.CrashWorker(1).code(), StatusCode::kFailedPrecondition);
  simnet::TransferAttempt down = network.TryTransferBetweenWorkers(0, 1, 64);
  EXPECT_EQ(down.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(network.WorkerRejectCount(), 1u);
  EXPECT_EQ(network.WorkerRejectCount(1).value(), 1u);
  EXPECT_EQ(network.WorkerCrashCount(1).value(), 1u);
  ASSERT_TRUE(network.RestartWorker(1).ok());
  EXPECT_EQ(network.WorkerRestartCount(1).value(), 1u);

  // Partitioned pairs reject; healed pairs talk again.
  ASSERT_TRUE(network.PartitionWorkers({{2}}).ok());
  EXPECT_FALSE(network.WorkerPairReachable(0, 2));
  EXPECT_FALSE(network.IsWorkerReachable(2));
  EXPECT_EQ(network.TryTransferBetweenWorkers(0, 2, 64).status.code(),
            StatusCode::kUnavailable);
  network.HealWorkers();
  EXPECT_TRUE(network.TryTransferBetweenWorkers(0, 2, 64).status.ok());

  EXPECT_EQ(network.PartitionWorkers({{9}}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(network.PartitionWorkers({{0}, {0}}).code(),
            StatusCode::kInvalidArgument);
}

TEST(WorkerSpaceTest, CorruptionDrawBecomesRetransmission) {
  simnet::Network network;
  network.ConfigureWorkers(2);
  simnet::FaultPlan plan;
  plan.corrupt_probability = 1.0;
  plan.seed = FaultSeed();
  network.set_collective_fault_plan(plan);

  const double clean_cost = simnet::Link{}.TransferSeconds(4096);
  simnet::TransferAttempt attempt =
      network.TryTransferBetweenWorkers(0, 1, 4096);
  // Link-level retransmission: the payload is never surfaced corrupted;
  // the draw costs one extra transfer instead.
  EXPECT_TRUE(attempt.status.ok());
  EXPECT_FALSE(attempt.corrupted);
  EXPECT_NEAR(attempt.seconds, 2 * clean_cost, 1e-12);
  EXPECT_EQ(network.WorkerRetransmitCount(), 1u);
  EXPECT_EQ(network.WorkerFaultCounters(1).value().corruptions, 1u);
}

TEST(WorkerSpaceTest, CollectiveStreamIsIndependentOfStorageStream) {
  // Two networks with the same storage fault plan; one also runs heavy
  // collective traffic under a collective plan. The storage fault sequence
  // must be unaffected — this is what keeps a flow's storage fault draws
  // bit-identical across worker counts.
  simnet::FaultPlan storage_plan;
  storage_plan.drop_probability = 0.3;
  storage_plan.seed = FaultSeed();

  auto storage_outcomes = [&](bool with_collective) {
    simnet::Network network;
    network.set_fault_plan(storage_plan);
    network.ConfigureWorkers(4);
    if (with_collective) {
      simnet::FaultPlan collective_plan;
      collective_plan.drop_probability = 0.5;
      collective_plan.seed = FaultSeed() ^ 0x1234;
      network.set_collective_fault_plan(collective_plan);
    }
    std::vector<bool> outcomes;
    for (int i = 0; i < 32; ++i) {
      if (with_collective) {
        (void)network.TryTransferBetweenWorkers(i % 4, (i + 1) % 4, 512);
      }
      outcomes.push_back(network.TryTransfer(1024).status.ok());
    }
    return outcomes;
  };

  EXPECT_EQ(storage_outcomes(false), storage_outcomes(true));
}

// ---------------------------------------------------------------------------
// Ring reduction arithmetic
// ---------------------------------------------------------------------------

TEST(RingSessionTest, ReducesToBalancedTreeMean) {
  simnet::Network network;
  collective::RingSession session(4, collective::RingOptions{}, &network);
  session.BeginUpdate(1);

  const size_t n = 1000;
  const std::vector<std::vector<float>> inputs = DistinctInputs(4, n);
  std::vector<float> out;
  ASSERT_TRUE(session.AllReduce(1, Pointers(inputs), &out).ok());
  ASSERT_EQ(out.size(), n);
  for (size_t j = 0; j < n; ++j) {
    std::vector<float> vals(4);
    for (size_t w = 0; w < 4; ++w) {
      vals[w] = inputs[w][j];
    }
    const float expected = ReferenceFold(vals, 0, 3) * 0.25f;
    ASSERT_EQ(out[j], expected) << "element " << j;
  }
  EXPECT_EQ(session.report().steps, 1u);
  EXPECT_EQ(session.report().degraded_steps, 0u);
  // 2*(C-1) rounds, each worker sends one slice of ceil(1000/4)=250 elems,
  // which fits one default-sized message: 6 rounds * 4 workers = 24 sends.
  uint64_t messages = 0;
  for (const collective::RingWorkerCounters& w : session.report().workers) {
    messages += w.messages;
  }
  EXPECT_EQ(messages, 24u);
  EXPECT_GT(network.TotalTransferSeconds(), 0.0);
}

TEST(RingSessionTest, FullCohortMeanIsBitIdenticalToSingleWorker) {
  // Every worker holds the identical gradient (the data-parallel replica
  // model): for K in {1,2,4,8} the tree mean must reproduce it bit for
  // bit — tree sums of 2^k equal values are exponent shifts and 1/K is a
  // power of two.
  const size_t n = 513;  // odd, so slices are ragged
  std::vector<float> grad(n);
  for (size_t j = 0; j < n; ++j) {
    grad[j] = 0.3f * static_cast<float>(j) - 77.7f +
              1e-7f * static_cast<float>(j * j % 101);
  }
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("K=" + std::to_string(workers));
    simnet::Network network;
    collective::RingSession session(workers, collective::RingOptions{},
                                    &network);
    session.BeginUpdate(1);
    std::vector<const std::vector<float>*> inputs(workers, &grad);
    std::vector<float> out;
    ASSERT_TRUE(session.AllReduce(1, inputs, &out).ok());
    EXPECT_EQ(out, grad);
  }
}

TEST(RingSessionTest, ChunkSizeAndPoolSizeDoNotChangeBits) {
  const std::vector<std::vector<float>> inputs = DistinctInputs(4, 2000);
  std::vector<float> reference;
  {
    simnet::Network network;
    collective::RingSession session(4, collective::RingOptions{}, &network);
    session.BeginUpdate(1);
    ASSERT_TRUE(session.AllReduce(1, Pointers(inputs), &reference).ok());
  }
  util::ThreadPool pool1(1), pool7(7);
  for (int64_t chunk : {1LL, 64LL, 333LL, 100000LL}) {
    for (util::ThreadPool* pool : {&pool1, &pool7}) {
      SCOPED_TRACE("chunk=" + std::to_string(chunk) + " threads=" +
                   std::to_string(pool->thread_count()));
      simnet::Network network;
      collective::RingOptions options;
      options.chunk_elements = chunk;
      collective::RingSession session(4, options, &network);
      session.set_thread_pool(pool);
      session.BeginUpdate(1);
      std::vector<float> out;
      ASSERT_TRUE(session.AllReduce(1, Pointers(inputs), &out).ok());
      EXPECT_EQ(out, reference);
    }
  }
}

TEST(RingSessionTest, OutputMayAliasAnInput) {
  std::vector<std::vector<float>> inputs = DistinctInputs(2, 64);
  std::vector<float> expected;
  {
    simnet::Network network;
    collective::RingSession session(2, collective::RingOptions{}, &network);
    session.BeginUpdate(1);
    ASSERT_TRUE(session.AllReduce(1, Pointers(inputs), &expected).ok());
  }
  simnet::Network network;
  collective::RingSession session(2, collective::RingOptions{}, &network);
  session.BeginUpdate(1);
  const std::vector<const std::vector<float>*> ptrs = Pointers(inputs);
  ASSERT_TRUE(session.AllReduce(1, ptrs, &inputs[0]).ok());
  EXPECT_EQ(inputs[0], expected);
}

TEST(RingSessionTest, RejectsMalformedInputs) {
  simnet::Network network;
  collective::RingSession session(2, collective::RingOptions{}, &network);
  std::vector<float> a(8), b(9);
  std::vector<float> out;
  EXPECT_EQ(session.AllReduce(1, {&a}, &out).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.AllReduce(1, {&a, &b}, &out).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.AllReduce(1, {&a, nullptr}, &out).code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Robustness: stragglers, losses, partitions, dead peers
// ---------------------------------------------------------------------------

TEST(RingSessionTest, StragglerWithinBoundIsWaitedFor) {
  simnet::Network network;
  collective::RingOptions options;
  options.step_compute_seconds = 4.0;  // share = 1.0s per worker
  options.straggler_wait_seconds = 3.0;
  collective::StragglerWindow window;
  window.worker = 2;
  window.slow_factor = 2.0;  // extra = 1.0s <= bound: absorbed
  window.update = 1;
  window.from_step = 1;
  window.to_step = 1;
  options.stragglers.push_back(window);
  collective::RingSession session(4, options, &network);
  session.BeginUpdate(1);

  const std::vector<std::vector<float>> inputs = DistinctInputs(4, 16);
  std::vector<float> out;
  ASSERT_TRUE(session.AllReduce(1, Pointers(inputs), &out).ok());
  EXPECT_EQ(session.report().degraded_steps, 0u);
  EXPECT_EQ(session.report().workers[2].excluded_steps, 0u);
  // The cohort pays the slowest member: 2.0s instead of 1.0s.
  EXPECT_GT(network.TotalTransferSeconds(), 2.0);
}

TEST(RingSessionTest, StragglerPastBoundIsExcludedThenRejoins) {
  auto run = [](std::vector<float>* out) -> collective::SessionReport {
    simnet::Network network;
    collective::RingOptions options;
    options.step_compute_seconds = 4.0;
    options.straggler_wait_seconds = 0.5;  // extra 3.0s > bound: excluded
    collective::StragglerWindow window;
    window.worker = 1;
    window.slow_factor = 4.0;
    window.update = 1;
    window.from_step = 1;
    window.to_step = 1;
    options.stragglers.push_back(window);
    collective::RingSession session(4, options, &network);
    session.BeginUpdate(1);
    const std::vector<std::vector<float>> inputs = DistinctInputs(4, 40);
    EXPECT_TRUE(session.AllReduce(1, Pointers(inputs), out).ok());
    // Step 2: the window is over; worker 1 re-syncs and participates.
    EXPECT_TRUE(session.AllReduce(2, Pointers(inputs), out).ok());
    return session.report();
  };

  std::vector<float> out_a, out_b;
  const collective::SessionReport report = run(&out_a);
  EXPECT_EQ(report.steps, 2u);
  EXPECT_EQ(report.degraded_steps, 1u);
  EXPECT_EQ(report.workers[1].excluded_steps, 1u);
  EXPECT_EQ(report.workers[1].rejoin_syncs, 1u);
  EXPECT_EQ(report.workers[0].excluded_steps, 0u);

  // Deterministic per seed: an identical re-run reproduces everything.
  const collective::SessionReport replay = run(&out_b);
  EXPECT_EQ(out_a, out_b);
  EXPECT_EQ(replay.degraded_steps, report.degraded_steps);
  EXPECT_EQ(replay.workers.size(), report.workers.size());
  for (size_t w = 0; w < report.workers.size(); ++w) {
    EXPECT_EQ(replay.workers[w] == report.workers[w], true) << "worker " << w;
  }
}

TEST(RingSessionTest, PermanentLossRescalesTheSurvivingCohort) {
  simnet::Network network;
  collective::RingOptions options;
  collective::WorkerLossEvent loss;
  loss.worker = 3;
  loss.update = 1;
  loss.at_step = 2;
  options.losses.push_back(loss);
  collective::RingSession session(4, options, &network);
  session.BeginUpdate(1);

  const std::vector<std::vector<float>> inputs = DistinctInputs(4, 50);
  std::vector<float> full, degraded;
  ASSERT_TRUE(session.AllReduce(1, Pointers(inputs), &full).ok());
  ASSERT_TRUE(session.AllReduce(2, Pointers(inputs), &degraded).ok());
  EXPECT_EQ(session.report().degraded_steps, 1u);
  EXPECT_EQ(network.WorkerCrashCount(3).value(), 1u);

  // Step 2 is the mean over survivors {0,1,2}: tree fold over 3 ranks / 3.
  for (size_t j = 0; j < 50; ++j) {
    const std::vector<float> vals = {inputs[0][j], inputs[1][j],
                                     inputs[2][j]};
    const float expected =
        ReferenceFold(vals, 0, 2) * (1.0f / 3.0f);
    ASSERT_EQ(degraded[j], expected) << "element " << j;
  }
  // The loss is permanent: a later update still excludes worker 3.
  session.BeginUpdate(2);
  std::vector<float> later;
  ASSERT_TRUE(session.AllReduce(1, Pointers(inputs), &later).ok());
  EXPECT_EQ(later, degraded);
  EXPECT_EQ(session.report().workers[3].excluded_steps, 2u);
}

TEST(RingSessionTest, MinorityPartitionContinuesDegraded) {
  simnet::Network network;
  collective::RingOptions options;
  collective::PartitionWindow window;
  window.minority = {0};
  window.update = 1;
  window.from_step = 2;
  window.to_step = 2;
  options.partitions.push_back(window);
  collective::RingSession session(4, options, &network);
  session.BeginUpdate(1);

  const std::vector<std::vector<float>> inputs = DistinctInputs(4, 30);
  std::vector<float> out;
  ASSERT_TRUE(session.AllReduce(1, Pointers(inputs), &out).ok());
  ASSERT_TRUE(session.AllReduce(2, Pointers(inputs), &out).ok());
  EXPECT_EQ(session.report().degraded_steps, 1u);
  EXPECT_EQ(session.report().stalled_steps, 0u);
  EXPECT_EQ(session.report().workers[0].excluded_steps, 1u);
  // Healed at step 3: the returning worker re-syncs and the cohort is full.
  ASSERT_TRUE(session.AllReduce(3, Pointers(inputs), &out).ok());
  EXPECT_EQ(session.report().degraded_steps, 1u);
  EXPECT_EQ(session.report().workers[0].rejoin_syncs, 1u);
  EXPECT_EQ(network.HealCount(), 1u);
}

TEST(RingSessionTest, MajorityPartitionStallsUntilHeal) {
  simnet::Network network;
  collective::RingOptions options;
  options.step_compute_seconds = 4.0;
  collective::PartitionWindow window;
  window.minority = {1, 2, 3};  // coordinator side keeps only worker 0
  window.update = 1;
  window.from_step = 1;
  window.to_step = 3;
  options.partitions.push_back(window);
  collective::RingSession session(4, options, &network);
  session.BeginUpdate(1);

  const std::vector<std::vector<float>> inputs = DistinctInputs(4, 20);
  std::vector<float> full;
  {
    simnet::Network clean_network;
    collective::RingSession clean(4, collective::RingOptions{},
                                  &clean_network);
    clean.BeginUpdate(1);
    ASSERT_TRUE(clean.AllReduce(1, Pointers(inputs), &full).ok());
  }
  // The minority holds a strict majority of the ring, so step 1 cannot
  // commit degraded: the session waits out the partition (idle time on the
  // virtual clock) and commits the full cohort.
  std::vector<float> out;
  ASSERT_TRUE(session.AllReduce(1, Pointers(inputs), &out).ok());
  EXPECT_EQ(out, full);
  EXPECT_EQ(session.report().stalled_steps, 1u);
  EXPECT_EQ(session.report().degraded_steps, 0u);
  // Waited 3 steps' shares (1s each) plus its own share.
  EXPECT_GE(network.TotalTransferSeconds(), 4.0);
  // The consumed window does not re-partition step 2.
  ASSERT_TRUE(session.AllReduce(2, Pointers(inputs), &out).ok());
  EXPECT_EQ(session.report().stalled_steps, 1u);
  EXPECT_EQ(out, full);
}

TEST(RingSessionTest, DeadPeersAreRemovedAfterRetriesExhaust) {
  simnet::Network network;
  simnet::FaultPlan plan;
  plan.drop_probability = 1.0;  // every collective message dies
  plan.seed = FaultSeed();
  network.set_collective_fault_plan(plan);
  collective::RingOptions options;
  options.retry.max_attempts = 2;
  options.retry.initial_backoff_seconds = 0.001;
  collective::RingSession session(4, options, &network);
  session.BeginUpdate(1);

  const std::vector<std::vector<float>> inputs = DistinctInputs(4, 16);
  std::vector<float> out;
  ASSERT_TRUE(session.AllReduce(1, Pointers(inputs), &out).ok());
  // Peers fell out one by one until a single worker remained; the step
  // still committed (that worker's gradient, scaled by 1/1).
  EXPECT_EQ(session.report().peers_removed, 3u);
  EXPECT_EQ(session.report().degraded_steps, 1u);
  EXPECT_GT(session.report().retries, 0u);
  EXPECT_EQ(out, inputs[0]);
}

// ---------------------------------------------------------------------------
// Crash points
// ---------------------------------------------------------------------------

TEST(RingSessionTest, ArmedCrashSitesFireAndRejoinRecovers) {
  const std::vector<std::vector<float>> inputs = DistinctInputs(4, 32);
  std::vector<float> clean;
  {
    simnet::Network network;
    collective::RingSession session(4, collective::RingOptions{}, &network);
    session.BeginUpdate(1);
    ASSERT_TRUE(session.AllReduce(1, Pointers(inputs), &clean).ok());
  }
  for (const char* site :
       {"collective.send", "collective.reduce", "collective.commit"}) {
    SCOPED_TRACE(site);
    simnet::Network network;
    collective::RingSession session(4, collective::RingOptions{}, &network);
    session.BeginUpdate(1);
    session.ArmWorkerCrash(site, /*update=*/1, /*at_step=*/1, /*worker=*/2);
    std::vector<float> out;
    bool crashed = false;
    try {
      (void)session.AllReduce(1, Pointers(inputs), &out);
    } catch (const util::CrashException& e) {
      crashed = true;
      EXPECT_EQ(e.site(), site);
    }
    ASSERT_TRUE(crashed);
    util::CrashPoint::ResetAfterCrash();
    EXPECT_EQ(session.report().steps, 0u);  // the step never committed

    // Kill/restart the worker like the flow does, re-sync it, replay the
    // step: the result matches the crash-free run bit for bit.
    ASSERT_TRUE(network.CrashWorker(2).ok());
    ASSERT_TRUE(network.RestartWorker(2).ok());
    ASSERT_TRUE(session.RejoinWorker(2, 32 * 4).ok());
    ASSERT_TRUE(session.AllReduce(1, Pointers(inputs), &out).ok());
    EXPECT_EQ(out, clean);
    EXPECT_EQ(session.report().workers[2].rejoin_syncs, 1u);
  }
}

TEST(RingSessionTest, RejoinRequiresARestartedWorker) {
  simnet::Network network;
  collective::RingSession session(2, collective::RingOptions{}, &network);
  EXPECT_EQ(session.RejoinWorker(9, 128).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(network.CrashWorker(1).ok());
  EXPECT_EQ(session.RejoinWorker(1, 128).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(network.RestartWorker(1).ok());
  EXPECT_TRUE(session.RejoinWorker(1, 128).ok());
}

// ---------------------------------------------------------------------------
// Gradient flatten/unflatten and the synchronizer
// ---------------------------------------------------------------------------

models::ModelConfig TinyConfig() {
  models::ModelConfig config =
      models::DefaultConfig(models::Architecture::kMobileNetV2);
  config.channel_divisor = 8;
  config.image_size = 28;
  config.num_classes = 10;
  return config;
}

TEST(GradientFlattenTest, RoundTripsTrainableGradsOnly) {
  nn::Model model = models::BuildModel(TinyConfig()).value();
  model.SetTrainableAll(true);
  model.ZeroGrad();

  std::vector<float> flat;
  model.FlattenTrainableGrads(&flat);
  ASSERT_EQ(static_cast<int64_t>(flat.size()), model.TrainableParamCount());
  for (float v : flat) {
    ASSERT_EQ(v, 0.0f);
  }

  for (size_t j = 0; j < flat.size(); ++j) {
    flat[j] = 0.5f + 0.001f * static_cast<float>(j % 1009);
  }
  ASSERT_TRUE(model.LoadTrainableGrads(flat).ok());
  std::vector<float> back;
  model.FlattenTrainableGrads(&back);
  EXPECT_EQ(back, flat);

  std::vector<float> wrong(flat.size() + 1);
  EXPECT_EQ(model.LoadTrainableGrads(wrong).code(),
            StatusCode::kInvalidArgument);

  // Freezing layers shrinks the flattened view; buffers never appear.
  const size_t trainable =
      model.SetTrainableWhere([](const nn::Layer& layer) {
        return layer.name().find("conv") != std::string::npos;
      });
  ASSERT_GT(trainable, 0u);
  std::vector<float> partial;
  model.FlattenTrainableGrads(&partial);
  EXPECT_EQ(static_cast<int64_t>(partial.size()),
            model.TrainableParamCount());
  EXPECT_LT(partial.size(), flat.size());
}

TEST(GradientSynchronizerTest, FullCohortSyncLeavesGradientsBitIdentical) {
  nn::Model model = models::BuildModel(TinyConfig()).value();
  model.SetTrainableAll(true);
  std::vector<float> grads(
      static_cast<size_t>(model.TrainableParamCount()));
  for (size_t j = 0; j < grads.size(); ++j) {
    grads[j] = 0.01f * static_cast<float>(j % 613) - 3.0f;
  }
  ASSERT_TRUE(model.LoadTrainableGrads(grads).ok());

  simnet::Network network;
  collective::RingSession session(4, collective::RingOptions{}, &network);
  session.BeginUpdate(1);
  collective::GradientSynchronizer sync(&session);
  ASSERT_TRUE(sync.Sync(&model, 1).ok());

  std::vector<float> after;
  model.FlattenTrainableGrads(&after);
  EXPECT_EQ(after, grads);
  EXPECT_EQ(session.report().steps, 1u);
  EXPECT_GT(network.TotalBytes(), 0u);
}

}  // namespace
}  // namespace mmlib
