#include "core/train_service.h"

#include "data/prefetcher.h"
#include "nn/loss.h"
#include "util/clock.h"
#include "util/crash_point.h"

namespace mmlib::core {

namespace {

json::Value SgdOptionsToJson(const nn::SgdOptions& options) {
  json::Value doc = json::Value::MakeObject();
  doc.Set("learning_rate", static_cast<double>(options.learning_rate));
  doc.Set("momentum", static_cast<double>(options.momentum));
  doc.Set("weight_decay", static_cast<double>(options.weight_decay));
  return doc;
}

Result<nn::SgdOptions> SgdOptionsFromJson(const json::Value& doc) {
  nn::SgdOptions options;
  MMLIB_ASSIGN_OR_RETURN(double lr, doc.GetNumber("learning_rate"));
  MMLIB_ASSIGN_OR_RETURN(double momentum, doc.GetNumber("momentum"));
  MMLIB_ASSIGN_OR_RETURN(double wd, doc.GetNumber("weight_decay"));
  options.learning_rate = static_cast<float>(lr);
  options.momentum = static_cast<float>(momentum);
  options.weight_decay = static_cast<float>(wd);
  return options;
}

json::Value AdamOptionsToJson(const nn::AdamOptions& options) {
  json::Value doc = json::Value::MakeObject();
  doc.Set("learning_rate", static_cast<double>(options.learning_rate));
  doc.Set("beta1", static_cast<double>(options.beta1));
  doc.Set("beta2", static_cast<double>(options.beta2));
  doc.Set("epsilon", static_cast<double>(options.epsilon));
  doc.Set("weight_decay", static_cast<double>(options.weight_decay));
  return doc;
}

Result<nn::AdamOptions> AdamOptionsFromJson(const json::Value& doc) {
  nn::AdamOptions options;
  MMLIB_ASSIGN_OR_RETURN(double lr, doc.GetNumber("learning_rate"));
  MMLIB_ASSIGN_OR_RETURN(double beta1, doc.GetNumber("beta1"));
  MMLIB_ASSIGN_OR_RETURN(double beta2, doc.GetNumber("beta2"));
  MMLIB_ASSIGN_OR_RETURN(double epsilon, doc.GetNumber("epsilon"));
  MMLIB_ASSIGN_OR_RETURN(double wd, doc.GetNumber("weight_decay"));
  options.learning_rate = static_cast<float>(lr);
  options.beta1 = static_cast<float>(beta1);
  options.beta2 = static_cast<float>(beta2);
  options.epsilon = static_cast<float>(epsilon);
  options.weight_decay = static_cast<float>(wd);
  return options;
}

json::Value LoaderOptionsToJson(const data::DataLoaderOptions& options) {
  json::Value doc = json::Value::MakeObject();
  doc.Set("batch_size", options.batch_size);
  doc.Set("image_size", options.image_size);
  doc.Set("num_classes", options.num_classes);
  doc.Set("shuffle", options.shuffle);
  doc.Set("augment", options.augment);
  doc.Set("seed", static_cast<int64_t>(options.seed));
  doc.Set("preprocess", options.preprocess.ToJson());
  return doc;
}

Result<data::DataLoaderOptions> LoaderOptionsFromJson(
    const json::Value& doc) {
  data::DataLoaderOptions options;
  MMLIB_ASSIGN_OR_RETURN(options.batch_size, doc.GetInt("batch_size"));
  MMLIB_ASSIGN_OR_RETURN(options.image_size, doc.GetInt("image_size"));
  MMLIB_ASSIGN_OR_RETURN(options.num_classes, doc.GetInt("num_classes"));
  MMLIB_ASSIGN_OR_RETURN(options.shuffle, doc.GetBool("shuffle"));
  MMLIB_ASSIGN_OR_RETURN(options.augment, doc.GetBool("augment"));
  MMLIB_ASSIGN_OR_RETURN(int64_t seed, doc.GetInt("seed"));
  options.seed = static_cast<uint64_t>(seed);
  MMLIB_ASSIGN_OR_RETURN(const json::Value* preprocess,
                         doc.GetMember("preprocess"));
  MMLIB_ASSIGN_OR_RETURN(options.preprocess,
                         data::PreprocessorConfig::FromJson(*preprocess));
  return options;
}

}  // namespace

json::Value TrainConfig::ToJson() const {
  json::Value doc = json::Value::MakeObject();
  doc.Set("epochs", epochs);
  doc.Set("max_batches_per_epoch", max_batches_per_epoch);
  doc.Set("seed", static_cast<int64_t>(seed));
  doc.Set("optimizer",
          optimizer == OptimizerKind::kAdam ? "adam" : "sgd");
  doc.Set("sgd", SgdOptionsToJson(sgd));
  doc.Set("adam", AdamOptionsToJson(adam));
  doc.Set("lr_decay_gamma", lr_decay_gamma);
  doc.Set("lr_decay_every_epochs", lr_decay_every_epochs);
  doc.Set("loader", LoaderOptionsToJson(loader));
  return doc;
}

Result<TrainConfig> TrainConfig::FromJson(const json::Value& doc) {
  TrainConfig config;
  MMLIB_ASSIGN_OR_RETURN(config.epochs, doc.GetInt("epochs"));
  MMLIB_ASSIGN_OR_RETURN(config.max_batches_per_epoch,
                         doc.GetInt("max_batches_per_epoch"));
  MMLIB_ASSIGN_OR_RETURN(int64_t seed, doc.GetInt("seed"));
  config.seed = static_cast<uint64_t>(seed);
  MMLIB_ASSIGN_OR_RETURN(std::string optimizer, doc.GetString("optimizer"));
  if (optimizer == "sgd") {
    config.optimizer = OptimizerKind::kSgd;
  } else if (optimizer == "adam") {
    config.optimizer = OptimizerKind::kAdam;
  } else {
    return Status::InvalidArgument("unknown optimizer kind: " + optimizer);
  }
  MMLIB_ASSIGN_OR_RETURN(const json::Value* sgd, doc.GetMember("sgd"));
  MMLIB_ASSIGN_OR_RETURN(config.sgd, SgdOptionsFromJson(*sgd));
  MMLIB_ASSIGN_OR_RETURN(const json::Value* adam, doc.GetMember("adam"));
  MMLIB_ASSIGN_OR_RETURN(config.adam, AdamOptionsFromJson(*adam));
  MMLIB_ASSIGN_OR_RETURN(config.lr_decay_gamma,
                         doc.GetNumber("lr_decay_gamma"));
  MMLIB_ASSIGN_OR_RETURN(config.lr_decay_every_epochs,
                         doc.GetInt("lr_decay_every_epochs"));
  MMLIB_ASSIGN_OR_RETURN(const json::Value* loader, doc.GetMember("loader"));
  MMLIB_ASSIGN_OR_RETURN(config.loader, LoaderOptionsFromJson(*loader));
  return config;
}

ImageTrainService::ImageTrainService(const data::Dataset* dataset,
                                     TrainConfig config)
    : dataset_(dataset), config_(config) {}

Result<std::unique_ptr<ImageTrainService>> ImageTrainService::FromProvenance(
    const json::Value& train_service_doc, Bytes optimizer_state,
    std::unique_ptr<data::Dataset> dataset) {
  MMLIB_ASSIGN_OR_RETURN(const json::Value* config_doc,
                         train_service_doc.GetMember("config"));
  MMLIB_ASSIGN_OR_RETURN(TrainConfig config,
                         TrainConfig::FromJson(*config_doc));
  auto service =
      std::make_unique<ImageTrainService>(dataset.get(), config);
  service->owned_dataset_ = std::move(dataset);
  service->pending_optimizer_state_ = std::move(optimizer_state);
  return service;
}

Result<nn::PhaseTimes> ImageTrainService::Train(nn::Model* model,
                                                bool deterministic,
                                                uint64_t scheduler_seed) {
  return RunTraining(model, deterministic, scheduler_seed, nullptr);
}

Result<nn::PhaseTimes> ImageTrainService::Resume(nn::Model* model) {
  if (checkpoints_ == nullptr) {
    return Status::FailedPrecondition(
        "Resume requires set_checkpoints to have been called");
  }
  TrainCheckpoint checkpoint;
  MMLIB_ASSIGN_OR_RETURN(bool found,
                         checkpoints_->LoadLatest(checkpoint_run_id_,
                                                  &checkpoint));
  if (!found) {
    resumed_from_step_ = 0;
    return RunTraining(model, /*deterministic=*/true, /*scheduler_seed=*/0,
                       nullptr);
  }
  resumed_from_step_ = checkpoint.step;
  return RunTraining(model, /*deterministic=*/true, /*scheduler_seed=*/0,
                     &checkpoint);
}

Status ImageTrainService::WriteCheckpoint(nn::Model* model, const Rng& rng,
                                          int64_t step, int64_t epoch,
                                          int64_t next_batch) {
  TrainCheckpoint checkpoint;
  checkpoint.run_id = checkpoint_run_id_;
  checkpoint.step = step;
  checkpoint.epoch = epoch;
  checkpoint.next_batch = next_batch;
  checkpoint.model_params = model->SerializeParams();
  checkpoint.optimizer_state = optimizer_->SerializeState();
  checkpoint.rng = rng.SaveState();
  checkpoint.last_loss = last_loss_;
  // The checkpoint struct IS the copy-on-write snapshot: params/state were
  // serialized into fresh Bytes above, so the async writer owns them
  // outright while training mutates the live model.
  return checkpoints_->Write(std::move(checkpoint)).status();
}

Result<nn::PhaseTimes> ImageTrainService::RunTraining(
    nn::Model* model, bool deterministic, uint64_t scheduler_seed,
    const TrainCheckpoint* resume_from) {
  if (resume_from != nullptr) {
    // Rewind to the checkpointed state: parameters first, then force the
    // optimizer to rebuild against them and load the checkpointed
    // momentum/moments (which carry the scheduled learning rate).
    MMLIB_RETURN_IF_ERROR(model->LoadParams(resume_from->model_params));
    pending_optimizer_state_ = resume_from->optimizer_state;
    optimizer_ = nullptr;
    bound_model_ = nullptr;
    last_loss_ = resume_from->last_loss;
  }
  if (optimizer_ == nullptr || bound_model_ != model) {
    if (config_.optimizer == OptimizerKind::kAdam) {
      optimizer_ = std::make_unique<nn::AdamOptimizer>(model, config_.adam);
    } else {
      optimizer_ = std::make_unique<nn::SgdOptimizer>(model, config_.sgd);
    }
    bound_model_ = model;
    if (!pending_optimizer_state_.empty()) {
      MMLIB_RETURN_IF_ERROR(
          optimizer_->LoadState(pending_optimizer_state_));
      pending_optimizer_state_.clear();
    }
  }

  nn::ExecutionContext ctx =
      deterministic
          ? nn::ExecutionContext::Deterministic(config_.seed)
          : nn::ExecutionContext::NonDeterministic(config_.seed,
                                                   scheduler_seed);
  ctx.set_training(true);
  if (pool_ != nullptr) {
    ctx.set_pool(pool_);
  }
  if (resume_from != nullptr) {
    // Continue the intentional-randomness stream exactly where the
    // checkpoint left it — dropout masks of the remaining steps come out
    // bit-identical to the uninterrupted run's.
    ctx.rng()->RestoreState(resume_from->rng);
  }

  // Audited deterministic runs record per-layer digests; replaying the same
  // provenance must reproduce the reference trace bit for bit (Fig. 13).
  const bool audited = auditor_ != nullptr && deterministic;
  nn::ActivationObserver* previous_observer = model->observer();
  if (audited) {
    auditor_->BeginRun();
    model->set_observer(auditor_);
  }
  auto finish_audit = [&](Status status) -> Status {
    if (audited) {
      model->set_observer(previous_observer);
      Status audit_status = auditor_->EndRun();
      if (status.ok()) {
        status = audit_status;
      }
    }
    return status;
  };

  // Checkpointing applies only to deterministic runs: a non-deterministic
  // run cannot be continued bit-identically, so a checkpoint of it would
  // promise recovery it cannot deliver.
  const bool checkpointing = checkpoints_ != nullptr && deterministic;
  const int64_t checkpoint_interval =
      checkpointing ? checkpoints_->every_steps() : 0;
  int64_t step = resume_from != nullptr ? resume_from->step : 0;
  const int64_t start_epoch = resume_from != nullptr ? resume_from->epoch : 0;
  const int64_t start_batch =
      resume_from != nullptr ? resume_from->next_batch : 0;

  auto run_epochs = [&]() -> Status {
    data::DataLoader loader(dataset_, config_.loader);
    // Background batch preparation: while the step below runs forward/
    // backward on batch b, the prefetcher's worker fills batch b+1.
    // Contents depend only on (seed, epoch, index) and hand-off is in
    // index order, so worker timing cannot perturb results.
    data::BatchPrefetcher prefetch(&loader);
    // Step-scoped temporaries reused across the whole run: gradient storage
    // in `loss`, exp cache from the context's scratch pool.
    nn::LossResult loss;
    if (checkpointing && resume_from == nullptr) {
      // Step-0 checkpoint: even a crash before the first periodic
      // checkpoint loses no more than the in-flight steps.
      MMLIB_RETURN_IF_ERROR(WriteCheckpoint(model, *ctx.rng(), 0, 0, 0));
    }
    for (int64_t epoch = start_epoch; epoch < config_.epochs; ++epoch) {
      size_t batches = loader.BatchesPerEpoch();
      if (config_.max_batches_per_epoch >= 0) {
        batches = std::min(
            batches, static_cast<size_t>(config_.max_batches_per_epoch));
      }
      const size_t first_batch =
          epoch == start_epoch ? static_cast<size_t>(start_batch) : 0;
      prefetch.StartEpoch(static_cast<uint64_t>(epoch), first_batch, batches);
      for (size_t b = first_batch; b < batches; ++b) {
        // At the top of the step: an armed crash at hit N kills the run
        // with exactly N-1 completed optimizer steps.
        MMLIB_CRASH_POINT("train.step");
        Stopwatch load_timer;
        MMLIB_ASSIGN_OR_RETURN(data::Batch batch, prefetch.Next());
        ctx.times()->data_load_seconds += load_timer.ElapsedSeconds();

        optimizer_->ZeroGrad();
        Stopwatch forward_timer;
        MMLIB_ASSIGN_OR_RETURN(Tensor logits, model->Forward(batch.images,
                                                             &ctx));
        MMLIB_RETURN_IF_ERROR(nn::SoftmaxCrossEntropyInto(
            logits, batch.labels, ctx.scratch_pool(), &loss));
        ctx.times()->forward_seconds += forward_timer.ElapsedSeconds();
        last_loss_ = loss.loss;

        Stopwatch backward_timer;
        MMLIB_RETURN_IF_ERROR(
            model->Backward(loss.grad_logits, &ctx).status());
        if (step_sync_hook_) {
          // Gradients are final, the optimizer has not applied them: the
          // data-parallel barrier reduces here so every worker steps on the
          // same mean gradient.
          MMLIB_RETURN_IF_ERROR(step_sync_hook_(model, step + 1));
        }
        optimizer_->Step();
        ctx.times()->backward_seconds += backward_timer.ElapsedSeconds();
        prefetch.Recycle(std::move(batch));
        ++step;
        if (checkpointing && step_compute_seconds_ > 0.0) {
          // Virtual compute cost of this step; settled against any
          // overlapping async save at the manager's next settle point.
          checkpoints_->ChargeCompute(step_compute_seconds_);
        }
        if (checkpoint_interval > 0 && step % checkpoint_interval == 0) {
          // Checkpoints land at exactly the K-multiples, whether or not
          // the run was resumed mid-stream — so the number and order of
          // persisted artifacts (and thus allocated storage ids) is
          // invariant under crash + resume.
          MMLIB_RETURN_IF_ERROR(WriteCheckpoint(model, *ctx.rng(), step,
                                                epoch,
                                                static_cast<int64_t>(b) + 1));
        }
      }
      // Step learning-rate schedule (part of the training logic; replayed
      // deterministically on provenance recovery).
      if (config_.lr_decay_gamma != 1.0 && config_.lr_decay_every_epochs > 0 &&
          (epoch + 1) % config_.lr_decay_every_epochs == 0) {
        optimizer_->SetLearningRate(
            optimizer_->learning_rate() *
            static_cast<float>(config_.lr_decay_gamma));
      }
    }
    return Status::OK();
  };
  Status run_status = run_epochs();
  if (checkpointing) {
    // The last async save must be durable (and its deferred crash/error
    // surfaced) before the caller touches storage again — RunTraining's
    // return is the synchronous point the rest of the pipeline relies on.
    Status drain_status = checkpoints_->Drain();
    if (run_status.ok()) {
      run_status = drain_status;
    }
  }
  MMLIB_RETURN_IF_ERROR(finish_audit(run_status));
  return *ctx.times();
}

Result<ProvenanceData> ImageTrainService::CaptureProvenance() {
  ProvenanceData data;
  data.dataset = dataset_;
  if (optimizer_ != nullptr) {
    data.optimizer_state = optimizer_->SerializeState();
  }

  // Wrapper objects (paper Figure 5): the stateless dataloader wrapper
  // records class name, import, and constructor configuration; the stateful
  // optimizer wrapper additionally references a state file.
  json::Value dataloader_wrapper = json::Value::MakeObject();
  dataloader_wrapper.Set("class_name", "data.DataLoader");
  dataloader_wrapper.Set("import", "data/dataloader.h");
  dataloader_wrapper.Set("config", LoaderOptionsToJson(config_.loader));

  const bool adam = config_.optimizer == OptimizerKind::kAdam;
  json::Value optimizer_wrapper = json::Value::MakeObject();
  optimizer_wrapper.Set("class_name",
                        adam ? "nn.AdamOptimizer" : "nn.SgdOptimizer");
  optimizer_wrapper.Set("import", adam ? "nn/adam.h" : "nn/optimizer.h");
  optimizer_wrapper.Set("config", adam ? AdamOptionsToJson(config_.adam)
                                       : SgdOptionsToJson(config_.sgd));
  optimizer_wrapper.Set("has_state", !data.optimizer_state.empty());
  // References to other objects are recorded by name; how they are handed
  // over is part of the training logic (the TrainConfig).
  optimizer_wrapper.Set("references", json::Value::Array{
                                          json::Value("model"),
                                      });

  json::Value wrappers = json::Value::MakeObject();
  wrappers.Set("dataloader", std::move(dataloader_wrapper));
  wrappers.Set("optimizer", std::move(optimizer_wrapper));

  json::Value doc = json::Value::MakeObject();
  doc.Set("class_name", std::string(class_name()));
  doc.Set("import", "core/train_service.h");
  doc.Set("config", config_.ToJson());
  doc.Set("wrappers", std::move(wrappers));
  data.train_service_doc = std::move(doc);
  return data;
}

Result<std::unique_ptr<TrainService>> RestoreTrainService(
    const json::Value& train_service_doc, Bytes optimizer_state,
    std::unique_ptr<data::Dataset> dataset) {
  MMLIB_ASSIGN_OR_RETURN(std::string class_name,
                         train_service_doc.GetString("class_name"));
  if (class_name == "ImageTrainService") {
    MMLIB_ASSIGN_OR_RETURN(
        std::unique_ptr<ImageTrainService> service,
        ImageTrainService::FromProvenance(
            train_service_doc, std::move(optimizer_state),
            std::move(dataset)));
    return std::unique_ptr<TrainService>(std::move(service));
  }
  return Status::NotFound("unknown TrainService class: " + class_name);
}

}  // namespace mmlib::core
