# Empty dependencies file for core_save_test.
# This may be replaced when dependencies are built.
