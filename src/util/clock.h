#pragma once

#include <chrono>
#include <cstdint>
#include <memory>

namespace mmlib {

/// Abstract time source. Wall-clock time is used for real measurements
/// (benchmarks); virtual time is used by the simulated network so that
/// distributed experiments are deterministic and fast.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in nanoseconds since an arbitrary epoch.
  virtual uint64_t NowNanos() const = 0;

  /// Advances virtual clocks; no-op for wall clocks.
  virtual void AdvanceNanos(uint64_t nanos) = 0;

  double NowSeconds() const { return NowNanos() * 1e-9; }
};

/// Monotonic wall clock backed by std::chrono::steady_clock.
class WallClock : public Clock {
 public:
  uint64_t NowNanos() const override;
  void AdvanceNanos(uint64_t) override {}

  /// Process-wide shared instance.
  static WallClock* Get();
};

/// Manually advanced virtual clock for deterministic simulations.
class VirtualClock : public Clock {
 public:
  uint64_t NowNanos() const override { return now_nanos_; }
  void AdvanceNanos(uint64_t nanos) override { now_nanos_ += nanos; }
  void AdvanceSeconds(double seconds) {
    AdvanceNanos(static_cast<uint64_t>(seconds * 1e9));
  }

 private:
  uint64_t now_nanos_ = 0;
};

/// Scoped stopwatch measuring elapsed seconds on a clock.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock* clock) : clock_(clock) { Reset(); }
  Stopwatch() : Stopwatch(WallClock::Get()) {}

  void Reset() { start_nanos_ = clock_->NowNanos(); }
  double ElapsedSeconds() const {
    return (clock_->NowNanos() - start_nanos_) * 1e-9;
  }

 private:
  const Clock* clock_;
  uint64_t start_nanos_ = 0;
};

}  // namespace mmlib

