#include "models/builders.h"

namespace mmlib::models::internal {

namespace {

/// GoogLeNet inception block: four parallel branches (1x1, 1x1->3x3,
/// 1x1->3x3, pool->1x1) concatenated along channels. Channel widths are
/// full-size values, scaled inside. Follows the BN-inception variant used by
/// torchvision (5x5 branch implemented as 3x3).
int64_t Inception(BuilderCtx* ctx, const std::string& name, int64_t input,
                  int64_t in_ch, int64_t ch1x1, int64_t ch3x3red,
                  int64_t ch3x3, int64_t ch5x5red, int64_t ch5x5,
                  int64_t pool_proj, int64_t* out_ch) {
  const int64_t b1_ch = ctx->Ch(ch1x1);
  const int64_t b2r_ch = ctx->Ch(ch3x3red);
  const int64_t b2_ch = ctx->Ch(ch3x3);
  const int64_t b3r_ch = ctx->Ch(ch5x5red);
  const int64_t b3_ch = ctx->Ch(ch5x5);
  const int64_t b4_ch = ctx->Ch(pool_proj);

  const int64_t branch1 =
      ConvBnRelu(ctx, name + ".branch1", input, in_ch, b1_ch, 1, 1, 0);

  int64_t branch2 =
      ConvBnRelu(ctx, name + ".branch2.reduce", input, in_ch, b2r_ch, 1, 1, 0);
  branch2 = ConvBnRelu(ctx, name + ".branch2.conv", branch2, b2r_ch, b2_ch, 3,
                       1, 1);

  int64_t branch3 =
      ConvBnRelu(ctx, name + ".branch3.reduce", input, in_ch, b3r_ch, 1, 1, 0);
  branch3 = ConvBnRelu(ctx, name + ".branch3.conv", branch3, b3r_ch, b3_ch, 3,
                       1, 1);

  int64_t branch4 = ctx->model->AddNode(
      std::make_unique<nn::MaxPool2d>(name + ".branch4.pool", 3, 1, 1),
      {input});
  branch4 = ConvBnRelu(ctx, name + ".branch4.proj", branch4, in_ch, b4_ch, 1,
                       1, 0);

  *out_ch = b1_ch + b2_ch + b3_ch + b4_ch;
  return ctx->model->AddNode(
      std::make_unique<nn::Concat>(name + ".concat", 4),
      {branch1, branch2, branch3, branch4});
}

}  // namespace

Result<nn::Model> BuildGoogLeNet(const ModelConfig& config) {
  if (config.arch != Architecture::kGoogLeNet) {
    return Status::InvalidArgument("BuildGoogLeNet: wrong architecture");
  }
  nn::Model model(std::string(ArchitectureName(config.arch)));
  Rng rng(config.init_seed);
  BuilderCtx ctx{&model, &rng, config.channel_divisor};

  int64_t node = ConvBnRelu(&ctx, "conv1", nn::Model::kInputNode, 3,
                            ctx.Ch(64), 7, 2, 3);
  node = model.AddNode(std::make_unique<nn::MaxPool2d>("maxpool1", 3, 2, 1),
                       {node});
  node = ConvBnRelu(&ctx, "conv2", node, ctx.Ch(64), ctx.Ch(64), 1, 1, 0);
  node = ConvBnRelu(&ctx, "conv3", node, ctx.Ch(64), ctx.Ch(192), 3, 1, 1);
  node = model.AddNode(std::make_unique<nn::MaxPool2d>("maxpool2", 3, 2, 1),
                       {node});

  int64_t channels = ctx.Ch(192);
  node = Inception(&ctx, "inception3a", node, channels, 64, 96, 128, 16, 32,
                   32, &channels);
  node = Inception(&ctx, "inception3b", node, channels, 128, 128, 192, 32, 96,
                   64, &channels);
  node = model.AddNode(std::make_unique<nn::MaxPool2d>("maxpool3", 3, 2, 1),
                       {node});
  node = Inception(&ctx, "inception4a", node, channels, 192, 96, 208, 16, 48,
                   64, &channels);
  node = Inception(&ctx, "inception4b", node, channels, 160, 112, 224, 24, 64,
                   64, &channels);
  node = Inception(&ctx, "inception4c", node, channels, 128, 128, 256, 24, 64,
                   64, &channels);
  node = Inception(&ctx, "inception4d", node, channels, 112, 144, 288, 32, 64,
                   64, &channels);
  node = Inception(&ctx, "inception4e", node, channels, 256, 160, 320, 32,
                   128, 128, &channels);
  node = model.AddNode(std::make_unique<nn::MaxPool2d>("maxpool4", 2, 2, 0),
                       {node});
  node = Inception(&ctx, "inception5a", node, channels, 256, 160, 320, 32,
                   128, 128, &channels);
  node = Inception(&ctx, "inception5b", node, channels, 384, 192, 384, 48,
                   128, 128, &channels);

  node = model.AddNode(std::make_unique<nn::GlobalAvgPool>("avgpool"),
                       {node});
  node = model.AddNode(std::make_unique<nn::Dropout>("dropout", 0.2f),
                       {node});
  model.AddNode(std::make_unique<nn::Linear>("fc", channels,
                                             config.num_classes, &rng),
                {node});
  return model;
}

}  // namespace mmlib::models::internal
