#include "kernels/plan_cache.h"

namespace mmlib::kernels {

PlanCache& PlanCache::Instance() {
  static PlanCache* cache = new PlanCache();
  return *cache;
}

std::shared_ptr<const ConvPlan> PlanCache::GetConvPlan(const ConvGeom& geom) {
  const ConvKey key{geom.batch,   geom.in_channels, geom.out_channels,
                    geom.kernel,  geom.stride,      geom.padding,
                    geom.groups,  geom.height,      geom.width};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = conv_plans_.find(key);
  if (it != conv_plans_.end()) {
    ++stats_.conv_hits;
    return it->second;
  }
  ++stats_.conv_misses;
  auto plan = std::make_shared<const ConvPlan>(geom);
  conv_plans_.emplace(key, plan);
  return plan;
}

std::shared_ptr<const LinearPlan> PlanCache::GetLinearPlan(
    int64_t batch, int64_t in_features, int64_t out_features) {
  const LinearKey key{batch, in_features, out_features};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = linear_plans_.find(key);
  if (it != linear_plans_.end()) {
    ++stats_.linear_hits;
    return it->second;
  }
  ++stats_.linear_misses;
  auto plan = std::make_shared<const LinearPlan>(batch, in_features,
                                                 out_features);
  linear_plans_.emplace(key, plan);
  return plan;
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.size = conv_plans_.size() + linear_plans_.size();
  return s;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  conv_plans_.clear();
  linear_plans_.clear();
  stats_ = Stats{};
}

}  // namespace mmlib::kernels
