/// Reproduces paper Figure 13 (Section 4.5, Deterministic Training):
/// median times for loading data, the forward pass, and the backward pass
/// when training ResNet-18 / ResNet-50 / ResNet-152 on CO-512 in
/// deterministic and non-deterministic mode.
///
/// Expected shape: deterministic training slows forward and backward but
/// not data loading; ResNet-18 is hit hardest because its basic blocks are
/// built from 3x3 convolutions, which have no fast deterministic kernel,
/// while the bottleneck blocks of ResNet-50/152 are dominated by 1x1
/// convolutions, which do (paper: "the ResNet-50 and the ResNet-152
/// architecture make use of the same layers, while the ResNet-18 uses a
/// similar but not identical set of layers").
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/train_service.h"

using namespace mmlib;
using namespace mmlib::bench;

namespace {

constexpr int kRuns = 3;

nn::PhaseTimes MedianTimes(models::Architecture arch, bool deterministic,
                           const data::Dataset* dataset) {
  std::vector<double> load(kRuns);
  std::vector<double> fwd(kRuns);
  std::vector<double> bwd(kRuns);
  for (int run = 0; run < kRuns; ++run) {
    models::ModelConfig model_config = TrainScaleModel(arch);
    auto model = models::BuildModel(model_config).value();
    core::TrainConfig config;
    config.epochs = 1;
    config.max_batches_per_epoch = 4;
    config.sgd.momentum = 0.0f;
    config.loader.batch_size = 8;
    config.loader.image_size = model_config.image_size;
    config.loader.num_classes = model_config.num_classes;
    core::ImageTrainService service(dataset, config);
    auto times =
        service.Train(&model, deterministic, /*scheduler_seed=*/run + 1)
            .value();
    load[run] = times.data_load_seconds;
    fwd[run] = times.forward_seconds;
    bwd[run] = times.backward_seconds;
  }
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  nn::PhaseTimes result;
  result.data_load_seconds = median(load);
  result.forward_seconds = median(fwd);
  result.backward_seconds = median(bwd);
  return result;
}

}  // namespace

int main() {
  PrintHeader("Figure 13",
              "Deterministic vs non-deterministic training times",
              "1 epoch x 4 batches of 8 on CO-512 (scaled); median of 3 "
              "runs.");

  data::SyntheticImageDataset dataset(
      data::PaperDatasetId::kCocoOutdoor512, 512);

  TablePrinter table({"model", "mode", "load data", "forward", "backward",
                      "fwd slowdown", "bwd slowdown"});
  for (models::Architecture arch : {models::Architecture::kResNet18,
                                    models::Architecture::kResNet50,
                                    models::Architecture::kResNet152}) {
    const nn::PhaseTimes nondet = MedianTimes(arch, false, &dataset);
    const nn::PhaseTimes det = MedianTimes(arch, true, &dataset);
    char fwd_ratio[32];
    char bwd_ratio[32];
    std::snprintf(fwd_ratio, sizeof(fwd_ratio), "%.2fx",
                  det.forward_seconds / nondet.forward_seconds);
    std::snprintf(bwd_ratio, sizeof(bwd_ratio), "%.2fx",
                  det.backward_seconds / nondet.backward_seconds);
    const std::string name(models::ArchitectureName(arch));
    table.AddRow({name, "non-deterministic", Millis(nondet.data_load_seconds),
                  Millis(nondet.forward_seconds),
                  Millis(nondet.backward_seconds), "-", "-"});
    table.AddRow({name, "deterministic", Millis(det.data_load_seconds),
                  Millis(det.forward_seconds), Millis(det.backward_seconds),
                  fwd_ratio, bwd_ratio});
  }
  table.Print(std::cout);
  std::printf(
      "\nPaper finding: deterministic mode slows the forward/backward pass\n"
      "but not data loading; ResNet-18 suffers the most (different layer "
      "set).\n");
  return 0;
}
