#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mmlib {

/// SplitMix64 PRNG: used to expand a single seed into initialization state
/// for other generators. Deterministic across platforms.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next();

 private:
  uint64_t state_;
};

/// Complete serializable state of an Rng: the xoshiro256** words plus the
/// Box-Muller gaussian cache. Restoring it continues the stream exactly
/// where the snapshot was taken — training checkpoints persist this so a
/// resumed run consumes the same dropout/augmentation randomness as an
/// uninterrupted one.
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  bool have_cached_gaussian = false;
  float cached_gaussian = 0.0f;
};

/// Xoshiro256** PRNG. mmlib's default generator for weight initialization,
/// data augmentation, dropout masks, and synthetic dataset generation.
/// Fully deterministic given a seed — this is what makes model training
/// reproducible (paper Section 2.3, "Intentional Randomness").
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Snapshots the generator mid-stream (checkpointing).
  RngState SaveState() const;

  /// Continues from a snapshot taken with SaveState.
  void RestoreState(const RngState& state);

  /// Returns the next 64 random bits.
  uint64_t NextU64();

  /// Returns a uniformly distributed integer in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Returns a float uniformly distributed in [0, 1).
  float NextFloat();

  /// Returns a double uniformly distributed in [0, 1).
  double NextDouble();

  /// Returns a float uniformly distributed in [lo, hi).
  float NextUniform(float lo, float hi);

  /// Returns a standard-normal sample (Box-Muller, deterministic).
  float NextGaussian();

  /// Fisher-Yates shuffles `indices` in place.
  void Shuffle(std::vector<size_t>* indices);

  /// Forks a new independent generator; deterministic given this one's state.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  float cached_gaussian_ = 0.0f;
};

}  // namespace mmlib

