#include "util/fs.h"

#include <filesystem>
#include <fstream>

#include "util/strings.h"

namespace mmlib::util {

namespace {

template <typename Iterator>
size_t AccumulateWithSuffix(const std::string& dir, const std::string& suffix,
                            bool count_only) {
  size_t total = 0;
  std::error_code ec;
  for (const auto& entry : Iterator(dir, ec)) {
    std::error_code entry_ec;
    if (!entry.is_regular_file(entry_ec)) {
      continue;
    }
    if (!EndsWith(entry.path().filename().string(), suffix)) {
      continue;
    }
    total += count_only ? 1 : entry.file_size(entry_ec);
  }
  return total;
}

}  // namespace

Status AtomicWriteFile(const std::string& path, const uint8_t* data,
                       size_t size) {
  const std::string tmp_path = path + kTmpSuffix;
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot open " + tmp_path + " for writing");
    }
    if (size > 0) {
      out.write(reinterpret_cast<const char*>(data),
                static_cast<std::streamsize>(size));
    }
    out.flush();
    if (!out) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp_path, ec);
      return Status::IoError("failed writing " + tmp_path);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    std::error_code remove_ec;
    std::filesystem::remove(tmp_path, remove_ec);
    return Status::IoError("cannot rename " + tmp_path + " into place: " +
                           ec.message());
  }
  return Status::OK();
}

Status RemoveFileStrict(const std::string& path, const std::string& what) {
  std::error_code ec;
  const bool removed = std::filesystem::remove(path, ec);
  if (ec) {
    return Status::IoError("cannot remove " + what + ": " + ec.message());
  }
  if (!removed) {
    return Status::NotFound("no " + what);
  }
  return Status::OK();
}

size_t CountFilesWithSuffix(const std::string& dir, const std::string& suffix,
                            bool recursive) {
  return recursive
             ? AccumulateWithSuffix<std::filesystem::recursive_directory_iterator>(
                   dir, suffix, /*count_only=*/true)
             : AccumulateWithSuffix<std::filesystem::directory_iterator>(
                   dir, suffix, /*count_only=*/true);
}

size_t TotalBytesWithSuffix(const std::string& dir, const std::string& suffix,
                            bool recursive) {
  return recursive
             ? AccumulateWithSuffix<std::filesystem::recursive_directory_iterator>(
                   dir, suffix, /*count_only=*/false)
             : AccumulateWithSuffix<std::filesystem::directory_iterator>(
                   dir, suffix, /*count_only=*/false);
}

}  // namespace mmlib::util
