/// Ablation (paper Section 3.3, "Managing Data sets"): codec choice for
/// archiving a training dataset to a single file — size and time trade-off.
#include <cstdio>

#include "bench/bench_common.h"
#include "compress/codec.h"
#include "data/archive.h"
#include "util/clock.h"

using namespace mmlib;
using namespace mmlib::bench;

int main() {
  PrintHeader("Ablation", "Dataset-archive codec choice",
              "Archiving CF-512 (1/64 scale) with each codec.");

  data::SyntheticImageDataset dataset(data::PaperDatasetId::kCocoFood512,
                                      data::kDefaultDatasetDivisor);
  const size_t raw = dataset.TotalByteSize();
  std::printf("raw dataset payload: %s\n\n", Mb(raw).c_str());

  TablePrinter table({"codec", "archive size", "ratio", "archive time",
                      "extract time"});
  for (CodecKind kind :
       {CodecKind::kIdentity, CodecKind::kRle, CodecKind::kLz77,
        CodecKind::kLz77Huffman}) {
    const Codec* codec = Codec::ForKind(kind);
    data::DatasetArchiver archiver(codec);

    Stopwatch archive_watch;
    const Bytes archive = archiver.Archive(dataset).value();
    const double archive_seconds = archive_watch.ElapsedSeconds();

    Stopwatch extract_watch;
    auto restored = data::DatasetArchiver::Extract(archive).value();
    const double extract_seconds = extract_watch.ElapsedSeconds();
    if (restored->ContentHash() != dataset.ContentHash()) {
      std::fprintf(stderr, "extract mismatch for %s\n",
                   std::string(codec->name()).c_str());
      return 1;
    }

    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.2f",
                  static_cast<double>(archive.size()) / raw);
    table.AddRow({std::string(codec->name()), Mb(archive.size()), ratio,
                  Secs(archive_seconds), Secs(extract_seconds)});
  }
  table.Print(std::cout);
  std::printf(
      "\nLZ77 (the MPA default) trades archive time for the smallest\n"
      "dataset payload — the term that dominates MPA storage and TTS.\n");
  return 0;
}
