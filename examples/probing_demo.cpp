/// Probing-tool demo (paper Section 2.4): execute a model twice on the same
/// batch, capture every layer's forward output and backward gradient, and
/// compare the traces — in deterministic mode they match bit-for-bit; in
/// non-deterministic mode the tool pinpoints the first diverging layer.
#include <cstdio>

#include "core/probe.h"
#include "data/dataloader.h"
#include "models/zoo.h"

using namespace mmlib;

int main() {
  std::printf("probing tool demo\n=================\n\n");

  models::ModelConfig config =
      models::DefaultConfig(models::Architecture::kGoogLeNet);
  config.channel_divisor = 8;
  config.image_size = 28;
  config.num_classes = 125;
  auto model = models::BuildModel(config).value();
  std::printf("model: %s (%zu layers)\n",
              std::string(models::ArchitectureName(config.arch)).c_str(),
              model.node_count());

  data::SyntheticImageDataset dataset(
      data::PaperDatasetId::kCocoFood512, /*size_divisor=*/2048);
  data::DataLoaderOptions options;
  options.batch_size = 4;
  options.image_size = config.image_size;
  options.num_classes = config.num_classes;
  data::DataLoader loader(&dataset, options);
  const data::Batch batch = loader.GetBatch(0).value();

  for (const bool deterministic : {true, false}) {
    auto comparison =
        core::CheckReproducibility(&model, batch, deterministic, /*seed=*/3)
            .value();
    std::printf("\n%s execution: %s\n",
                deterministic ? "deterministic" : "non-deterministic",
                comparison.equal ? "all layer traces identical"
                                 : "traces diverge");
    if (!comparison.equal) {
      const core::ProbeMismatch& first = comparison.mismatches.front();
      std::printf(
          "  %zu of %zu captured tensors differ; first divergence: %s pass, "
          "layer '%s' (index %zu)\n",
          comparison.mismatches.size(), 2 * model.node_count(),
          first.pass == core::ProbeMismatch::Pass::kForward ? "forward"
                                                            : "backward",
          first.layer_name.c_str(), first.index);
    }
  }

  // Cross-machine verification: serialize a trace, "ship" it, compare.
  nn::ExecutionContext ctx = nn::ExecutionContext::Deterministic(3);
  auto record = core::ProbeModel(&model, batch, &ctx).value();
  const Bytes shipped = record.Serialize();
  std::printf(
      "\nserialized probe record: %zu bytes for %zu forward + %zu backward "
      "tensors\n",
      shipped.size(), record.forward.size(), record.backward.size());

  nn::ExecutionContext remote_ctx = nn::ExecutionContext::Deterministic(3);
  auto remote = core::ProbeModel(&model, batch, &remote_ctx).value();
  auto cross = core::CompareProbeRecords(
      core::ProbeRecord::Deserialize(shipped).value(), remote);
  std::printf("cross-machine comparison: %s\n",
              cross.equal ? "reproducible" : "NOT reproducible");
  return cross.equal ? 0 : 1;
}
