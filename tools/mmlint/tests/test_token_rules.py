"""Token-layer rules against the fixtures: every rule has a positive, a
negative, a used lint:allow, and (where meaningful) a stale allow, checked
against golden findings in fixtures/*.expected.json."""

import unittest

from tools.mmlint.tests.util import (as_triples, fixture_context, golden,
                                     make_context, run_token_rules)


class FixtureGoldenTest(unittest.TestCase):
    def check_fixture(self, fixture_names, golden_name):
        contexts = [fixture_context(n) for n in fixture_names]
        findings = run_token_rules(contexts)
        self.assertEqual(as_triples(findings), golden(golden_name))

    def test_no_raw_rand(self):
        self.check_fixture(["no_raw_rand.cc"], "no_raw_rand.expected.json")

    def test_no_assert(self):
        self.check_fixture(["no_assert.cc"], "no_assert.expected.json")

    def test_pragma_once(self):
        self.check_fixture(
            ["pragma_once_missing.h", "pragma_once_allowed.h",
             "pragma_once_ok.h"],
            "pragma_once.expected.json")

    def test_no_iostream(self):
        self.check_fixture(["no_iostream.cc"], "no_iostream.expected.json")

    def test_no_raw_thread(self):
        self.check_fixture(["no_raw_thread.cc"],
                           "no_raw_thread.expected.json")

    def test_no_unchecked_remote(self):
        self.check_fixture(["no_unchecked_remote.cc"],
                           "no_unchecked_remote.expected.json")

    def test_no_direct_persist(self):
        self.check_fixture(["no_direct_persist.cc"],
                           "no_direct_persist.expected.json")

    def test_no_direct_replica_write(self):
        self.check_fixture(["no_direct_replica_write.cc"],
                           "no_direct_replica_write.expected.json")

    def test_nodiscard(self):
        self.check_fixture(["nodiscard_missing.h", "nodiscard_ok.h"],
                           "nodiscard.expected.json")

    def test_no_unbounded_queue(self):
        self.check_fixture(["no_unbounded_queue.cc"],
                           "no_unbounded_queue.expected.json")


class ScopingTest(unittest.TestCase):
    """Rules must not fire outside their declared directories."""

    def test_assert_outside_src_is_fine(self):
        ctx = make_context("tests/foo_test.cc",
                           "void T() { assert(1 == 1); }\n")
        self.assertEqual(run_token_rules([ctx]), [])

    def test_rand_inside_util_random_is_fine(self):
        ctx = make_context("src/util/random.cc",
                           "int Seed() { return rand(); }\n")
        self.assertEqual(run_token_rules([ctx]), [])

    def test_ofstream_outside_persistence_dirs_is_fine(self):
        ctx = make_context("src/nn/dump.cc",
                           "void D(const std::string& p) {"
                           " std::ofstream out(p); }\n")
        self.assertEqual(run_token_rules([ctx]), [])

    def test_value_outside_dist_is_fine(self):
        ctx = make_context("src/core/local.cc",
                           "void L(Store* s) {"
                           " auto v = s->LoadFile(1).value(); }\n")
        self.assertEqual(run_token_rules([ctx]), [])


class SuppressionAuditTest(unittest.TestCase):
    def test_unknown_rule_name_is_reported(self):
        ctx = make_context("src/core/x.cc",
                           "int a;  // lint:allow(no-such-rule)\n")
        findings = run_token_rules([ctx])
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0].rule, "unused-suppression")
        self.assertIn("unknown rule", findings[0].message)
        self.assertFalse(findings[0].suppressible)

    def test_allow_on_wrong_line_does_not_suppress(self):
        ctx = make_context(
            "src/core/x.cc",
            "// lint:allow(no-assert)\n"
            "void F(int x) { assert(x); }\n")
        findings = run_token_rules([ctx])
        rules = sorted(f.rule for f in findings)
        self.assertEqual(rules, ["no-assert", "unused-suppression"])

    def test_allow_for_wrong_rule_does_not_suppress(self):
        ctx = make_context(
            "src/core/x.cc",
            "void F(int x) { assert(x); }  // lint:allow(no-raw-rand)\n")
        findings = run_token_rules([ctx])
        rules = sorted(f.rule for f in findings)
        self.assertEqual(rules, ["no-assert", "unused-suppression"])


if __name__ == "__main__":
    unittest.main()
