#include "tensor/tensor.h"

#include "check/check.h"
#include <cmath>
#include <cstring>

namespace mmlib {

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<size_t>(shape_.numel()), 0.0f);
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  MMLIB_CHECK_EQ(static_cast<int64_t>(data_.size()), shape_.numel())
      << "tensor data size does not match shape " << shape_.ToString();
}

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Uniform(Shape shape, float lo, float hi, Rng* rng) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) {
    v = rng->NextUniform(lo, hi);
  }
  return t;
}

Tensor Tensor::Gaussian(Shape shape, float stddev, Rng* rng) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) {
    v = rng->NextGaussian() * stddev;
  }
  return t;
}

void Tensor::Fill(float value) {
  for (float& v : data_) {
    v = value;
  }
}

void Tensor::AddInPlace(const Tensor& other) {
  MMLIB_CHECK(shape_ == other.shape_)
      << "AddInPlace: shape mismatch " << shape_.ToString() << " vs "
      << other.shape_.ToString();
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
}

void Tensor::SubInPlace(const Tensor& other) {
  MMLIB_CHECK(shape_ == other.shape_)
      << "SubInPlace: shape mismatch " << shape_.ToString() << " vs "
      << other.shape_.ToString();
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] -= other.data_[i];
  }
}

void Tensor::MulScalarInPlace(float s) {
  for (float& v : data_) {
    v *= s;
  }
}

void Tensor::AddScaledInPlace(const Tensor& other, float s) {
  MMLIB_CHECK(shape_ == other.shape_)
      << "AddScaledInPlace: shape mismatch " << shape_.ToString() << " vs "
      << other.shape_.ToString();
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i] * s;
  }
}

Result<Tensor> Tensor::Reshape(Shape new_shape) const {
  if (new_shape.numel() != shape_.numel()) {
    return Status::InvalidArgument("reshape element count mismatch: " +
                                   shape_.ToString() + " -> " +
                                   new_shape.ToString());
  }
  return Tensor(std::move(new_shape), data_);
}

bool Tensor::Equals(const Tensor& other) const {
  if (shape_ != other.shape_) {
    return false;
  }
  return std::memcmp(data_.data(), other.data_.data(),
                     data_.size() * sizeof(float)) == 0;
}

bool Tensor::AllClose(const Tensor& other, float tolerance) const {
  if (shape_ != other.shape_) {
    return false;
  }
  return MaxAbsDiff(other) <= tolerance;
}

float Tensor::MaxAbsDiff(const Tensor& other) const {
  MMLIB_CHECK(shape_ == other.shape_)
      << "MaxAbsDiff: shape mismatch " << shape_.ToString() << " vs "
      << other.shape_.ToString();
  float max_diff = 0.0f;
  for (size_t i = 0; i < data_.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(data_[i] - other.data_[i]));
  }
  return max_diff;
}

Digest Tensor::ContentHash() const {
  Sha256 hasher;
  BytesWriter header;
  header.WriteU64(shape_.rank());
  for (int64_t d : shape_.dims()) {
    header.WriteI64(d);
  }
  hasher.Update(header.bytes());
  hasher.Update(reinterpret_cast<const uint8_t*>(data_.data()),
                data_.size() * sizeof(float));
  return hasher.Finish();
}

void Tensor::SerializeTo(BytesWriter* writer) const {
  writer->WriteU64(shape_.rank());
  for (int64_t d : shape_.dims()) {
    writer->WriteI64(d);
  }
  writer->WriteU64(data_.size());
  // Element bytes are written verbatim; all supported platforms are
  // little-endian IEEE-754, which keeps the format portable in practice.
  writer->WriteRaw(reinterpret_cast<const uint8_t*>(data_.data()),
                   data_.size() * sizeof(float));
}

Bytes Tensor::Serialize() const {
  BytesWriter writer;
  SerializeTo(&writer);
  return writer.TakeBytes();
}

Result<Tensor> Tensor::Deserialize(BytesReader* reader) {
  MMLIB_ASSIGN_OR_RETURN(uint64_t rank, reader->ReadU64());
  if (rank > 8) {
    return Status::Corruption("tensor rank out of range");
  }
  std::vector<int64_t> dims(rank);
  for (uint64_t i = 0; i < rank; ++i) {
    MMLIB_ASSIGN_OR_RETURN(dims[i], reader->ReadI64());
    if (dims[i] < 0) {
      return Status::Corruption("negative tensor dimension");
    }
  }
  Shape shape(std::move(dims));
  MMLIB_ASSIGN_OR_RETURN(uint64_t count, reader->ReadU64());
  if (static_cast<int64_t>(count) != shape.numel()) {
    return Status::Corruption("tensor element count does not match shape");
  }
  if (count > reader->remaining() / sizeof(float)) {
    return Status::Corruption("tensor element count exceeds input");
  }
  std::vector<float> data(count);
  MMLIB_RETURN_IF_ERROR(reader->ReadRaw(
      reinterpret_cast<uint8_t*>(data.data()), count * sizeof(float)));
  return Tensor(std::move(shape), std::move(data));
}

Result<Tensor> Tensor::Deserialize(const Bytes& data) {
  BytesReader reader(data);
  MMLIB_ASSIGN_OR_RETURN(Tensor t, Deserialize(&reader));
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after tensor");
  }
  return t;
}

float DotSerial(const float* a, const float* b, size_t n) {
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

float DotParallel(const float* a, const float* b, size_t n,
                  size_t num_chunks) {
  std::vector<size_t> order(num_chunks);
  for (size_t i = 0; i < num_chunks; ++i) {
    order[i] = i;
  }
  return DotChunkedOrdered(a, b, n, num_chunks, order);
}

float DotChunkedOrdered(const float* a, const float* b, size_t n,
                        size_t num_chunks,
                        const std::vector<size_t>& combine_order) {
  if (num_chunks == 0) {
    num_chunks = 1;
  }
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::vector<float> partials(num_chunks, 0.0f);
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t begin = c * chunk;
    const size_t end = std::min(n, begin + chunk);
    float sum = 0.0f;
    for (size_t i = begin; i < end; ++i) {
      sum += a[i] * b[i];
    }
    partials[c] = sum;
  }
  float total = 0.0f;
  for (size_t c : combine_order) {
    total += partials[c];
  }
  return total;
}

float SumSerial(const float* values, size_t n) {
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    sum += values[i];
  }
  return sum;
}

float SumKahan(const float* values, size_t n) {
  float sum = 0.0f;
  float compensation = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    const float y = values[i] - compensation;
    const float t = sum + y;
    compensation = (t - sum) - y;
    sum = t;
  }
  return sum;
}

}  // namespace mmlib
