#pragma once

#include <functional>
#include <memory>
#include <string>

#include "audit/determinism_auditor.h"
#include "core/checkpoint.h"
#include "data/archive.h"
#include "data/dataloader.h"
#include "data/dataset.h"
#include "json/json.h"
#include "nn/adam.h"
#include "nn/model.h"
#include "nn/optimizer.h"
#include "util/result.h"

namespace mmlib::core {

/// Which optimizer a TrainConfig instantiates.
enum class OptimizerKind {
  kSgd,
  kAdam,
};

/// Everything a training run depends on besides the base model and code:
/// hyperparameters, epoch/batch limits, the seed for intentional randomness,
/// optimizer and dataloader configuration. Serializable to JSON — this is
/// the static part of the provenance data (paper Section 3.3).
struct TrainConfig {
  int64_t epochs = 2;
  /// Limit on batches per epoch; -1 trains on the full dataset. The paper's
  /// evaluation "ran the model training only for two epochs with two
  /// batches" to keep the extensive evaluation feasible (Section 4.4).
  int64_t max_batches_per_epoch = 2;
  uint64_t seed = 42;
  OptimizerKind optimizer = OptimizerKind::kSgd;
  nn::SgdOptions sgd;    // used when optimizer == kSgd
  nn::AdamOptions adam;  // used when optimizer == kAdam
  /// Step learning-rate schedule: every `lr_decay_every_epochs` epochs the
  /// learning rate is multiplied by `lr_decay_gamma`. Gamma 1 disables the
  /// schedule. Scheduling is pure training logic — it is replayed from this
  /// config on recovery, not stored as state.
  double lr_decay_gamma = 1.0;
  int64_t lr_decay_every_epochs = 1;
  data::DataLoaderOptions loader;

  json::Value ToJson() const;
  static Result<TrainConfig> FromJson(const json::Value& doc);
};

/// The dynamic inputs of one upcoming training run, captured *before* the
/// training starts (paper: "For every object referenced as part of the
/// training process, we save its state before the training starts").
struct ProvenanceData {
  /// Serialized TrainService: class name, config, wrapper objects.
  json::Value train_service_doc;
  /// State file of the stateful optimizer wrapper; empty when the optimizer
  /// has no accumulated state yet.
  Bytes optimizer_state;
  /// The dataset that will be trained on; archived by the save service.
  const data::Dataset* dataset = nullptr;
};

/// Defines the logic to train a given model (paper Section 3.3, Figure 5).
/// A TrainService references the objects relevant for training (optimizer,
/// dataloader, dataset) wrapped in serializable wrapper objects.
class TrainService {
 public:
  virtual ~TrainService() = default;

  /// Stable class name used to restore the service from provenance data.
  virtual std::string_view class_name() const = 0;

  /// Trains `model` in place. With `deterministic` set, the run is
  /// bit-reproducible from the captured provenance; otherwise
  /// `scheduler_seed` perturbs kernel reduction orders (modeling an
  /// uncontrolled parallel device). Returns per-phase timings.
  virtual Result<nn::PhaseTimes> Train(nn::Model* model, bool deterministic,
                                       uint64_t scheduler_seed) = 0;

  /// Captures the provenance of the *next* Train call.
  virtual Result<ProvenanceData> CaptureProvenance() = 0;
};

/// Trains an image classifier with SGD over a DataLoader — the reproduction
/// of the paper's ImageNetTrainService example (Figure 5).
class ImageTrainService : public TrainService {
 public:
  /// `dataset` must outlive the service.
  ImageTrainService(const data::Dataset* dataset, TrainConfig config);

  /// Restores a service from its provenance documents; takes ownership of
  /// the extracted dataset.
  static Result<std::unique_ptr<ImageTrainService>> FromProvenance(
      const json::Value& train_service_doc, Bytes optimizer_state,
      std::unique_ptr<data::Dataset> dataset);

  std::string_view class_name() const override { return "ImageTrainService"; }

  Result<nn::PhaseTimes> Train(nn::Model* model, bool deterministic,
                               uint64_t scheduler_seed) override;

  /// Continues an interrupted deterministic Train of `run_id` (see
  /// set_checkpoints) from its latest checkpoint: restores the model
  /// parameters, optimizer state (including the scheduled learning rate),
  /// RNG cursor, and data-loader position, then trains the remaining steps.
  /// The final state dict is bit-identical to the uninterrupted run, at any
  /// pool size. Falls back to a full Train when the run has no checkpoint.
  Result<nn::PhaseTimes> Resume(nn::Model* model);

  Result<ProvenanceData> CaptureProvenance() override;

  const TrainConfig& config() const { return config_; }
  const data::Dataset* dataset() const { return dataset_; }

  /// Loss observed in the most recent Train call (last batch).
  float last_loss() const { return last_loss_; }

  /// Attaches a determinism auditor: every subsequent *deterministic* Train
  /// call is recorded as one audit run (per-layer forward/backward digests).
  /// The first audited call becomes the reference; a later call that should
  /// be a bit-identical replay (e.g. provenance-based recovery, Fig. 13)
  /// fails with Corruption at the first diverging layer. Pass nullptr to
  /// detach. The auditor must outlive the service's Train calls.
  void set_determinism_auditor(audit::DeterminismAuditor* auditor) {
    auditor_ = auditor;
  }

  /// Thread pool used by the training ExecutionContexts; the process-wide
  /// pool when unset. Deterministic chunking makes the choice pure
  /// performance configuration — audited replays are bit-identical for any
  /// pool size. The pool must outlive the service's Train calls.
  void set_thread_pool(util::ThreadPool* pool) { pool_ = pool; }

  /// Attaches checkpointing: every subsequent *deterministic* Train call
  /// writes a checkpoint under `run_id` at step 0 and then every
  /// `manager->every_steps()` optimizer steps, and Resume() restarts from
  /// the run's latest checkpoint. Pass nullptr to detach. The manager must
  /// outlive the service's Train/Resume calls. Crash site "train.step"
  /// fires at the top of every optimizer step.
  void set_checkpoints(CheckpointManager* manager, std::string run_id) {
    checkpoints_ = manager;
    checkpoint_run_id_ = std::move(run_id);
  }

  /// Virtual-clock cost charged per optimizer step through the checkpoint
  /// manager (simnet flows only; 0 disables). Makes training compute
  /// visible on the simulated clock so checkpoint stalls, async overlap,
  /// and retrained steps have measurable cost. Requires set_checkpoints.
  void set_step_compute_seconds(double seconds) {
    step_compute_seconds_ = seconds;
  }

  /// Synchronization barrier of a data-parallel step: called between
  /// Backward and the optimizer step with the 1-based index of the step
  /// about to be applied. The hook may rewrite the model's gradients (ring
  /// all-reduce); a non-OK status aborts the run, and a CrashException
  /// thrown inside the hook unwinds like any armed crash point. Pass an
  /// empty function to detach.
  using StepSyncHook = std::function<Status(nn::Model*, int64_t step)>;
  void set_step_sync_hook(StepSyncHook hook) {
    step_sync_hook_ = std::move(hook);
  }

  /// Step the most recent Resume() continued from (0 when it fell back to a
  /// full Train); `completed steps before the crash - resumed_from_step()`
  /// is the work the crash destroyed.
  int64_t resumed_from_step() const { return resumed_from_step_; }

  /// Serialized state of the current optimizer; the pending (restored but
  /// not yet applied) state before the first Train, empty when neither
  /// exists. Lets tests compare optimizer state across runs byte for byte.
  Bytes SerializedOptimizerState() const {
    if (optimizer_ != nullptr) {
      return optimizer_->SerializeState();
    }
    return pending_optimizer_state_;
  }

 private:
  Result<nn::PhaseTimes> RunTraining(nn::Model* model, bool deterministic,
                                     uint64_t scheduler_seed,
                                     const TrainCheckpoint* resume_from);
  Status WriteCheckpoint(nn::Model* model, const Rng& rng, int64_t step,
                         int64_t epoch, int64_t next_batch);
  std::unique_ptr<data::Dataset> owned_dataset_;
  const data::Dataset* dataset_;
  TrainConfig config_;
  std::unique_ptr<nn::Optimizer> optimizer_;
  nn::Model* bound_model_ = nullptr;
  Bytes pending_optimizer_state_;
  float last_loss_ = 0.0f;
  audit::DeterminismAuditor* auditor_ = nullptr;
  util::ThreadPool* pool_ = nullptr;
  CheckpointManager* checkpoints_ = nullptr;
  std::string checkpoint_run_id_;
  double step_compute_seconds_ = 0.0;
  StepSyncHook step_sync_hook_;
  int64_t resumed_from_step_ = 0;
};

/// Restores any registered TrainService implementation from its provenance
/// documents. Dispatches on the stored class name — the reproduction of the
/// paper's wrapper mechanism ("its class name; the code or ... the import
/// command").
Result<std::unique_ptr<TrainService>> RestoreTrainService(
    const json::Value& train_service_doc, Bytes optimizer_state,
    std::unique_ptr<data::Dataset> dataset);

}  // namespace mmlib::core

