#include "core/catalog.h"

#include <algorithm>

namespace mmlib::core {

Result<ModelSummary> ModelCatalog::SummaryFromDoc(const json::Value& doc) {
  ModelSummary summary;
  MMLIB_ASSIGN_OR_RETURN(summary.id, doc.GetString("_id"));
  MMLIB_ASSIGN_OR_RETURN(summary.approach, doc.GetString("approach"));
  if (const json::Value* base = doc.FindMember("base_model");
      base != nullptr && base->is_string()) {
    summary.base_model_id = base->as_string();
  }
  MMLIB_ASSIGN_OR_RETURN(summary.architecture_fingerprint,
                         doc.GetString("architecture"));
  MMLIB_ASSIGN_OR_RETURN(const json::Value* checksum,
                         doc.GetMember("checksum"));
  MMLIB_ASSIGN_OR_RETURN(summary.params_hash,
                         checksum->GetString("params_hash"));
  summary.has_params_snapshot = doc.FindMember("params_file") != nullptr;
  return summary;
}

Result<std::vector<ModelSummary>> ModelCatalog::ListModels() {
  MMLIB_ASSIGN_OR_RETURN(std::vector<std::string> ids,
                         backends_.docs->ListIds(kModelsCollection));
  std::vector<ModelSummary> summaries;
  summaries.reserve(ids.size());
  for (const std::string& id : ids) {
    MMLIB_ASSIGN_OR_RETURN(json::Value doc,
                           backends_.docs->Get(kModelsCollection, id));
    MMLIB_ASSIGN_OR_RETURN(ModelSummary summary, SummaryFromDoc(doc));
    summaries.push_back(std::move(summary));
  }
  return summaries;
}

Result<ModelSummary> ModelCatalog::GetInfo(const std::string& id) {
  MMLIB_ASSIGN_OR_RETURN(json::Value doc,
                         backends_.docs->Get(kModelsCollection, id));
  return SummaryFromDoc(doc);
}

Result<std::vector<std::string>> ModelCatalog::GetChain(
    const std::string& id) {
  std::vector<std::string> chain;
  std::string current = id;
  while (!current.empty()) {
    MMLIB_ASSIGN_OR_RETURN(ModelSummary summary, GetInfo(current));
    chain.push_back(current);
    current = summary.base_model_id;
    if (chain.size() > 4096) {
      return Status::Corruption("base model chain too long (cycle?)");
    }
  }
  return chain;
}

Result<std::vector<std::string>> ModelCatalog::GetDerived(
    const std::string& id) {
  // Verify the model exists so that asking about an unknown id is an error
  // rather than an empty answer.
  MMLIB_RETURN_IF_ERROR(GetInfo(id).status());
  return backends_.docs->FindByField(kModelsCollection, "base_model", id);
}

Status ModelCatalog::DeleteModel(const std::string& id) {
  MMLIB_ASSIGN_OR_RETURN(json::Value doc,
                         backends_.docs->Get(kModelsCollection, id));
  MMLIB_ASSIGN_OR_RETURN(std::vector<std::string> derived, GetDerived(id));
  if (!derived.empty()) {
    return Status::FailedPrecondition(
        "model " + id + " is the base of " + std::to_string(derived.size()) +
        " model(s) (e.g. " + derived.front() +
        "); deleting it would make them unrecoverable");
  }

  // Collect owned documents and files before mutating anything.
  std::vector<std::pair<std::string, std::string>> docs_to_delete;
  std::vector<std::string> files_to_delete;
  auto collect_file = [&](const json::Value& owner, const char* key) {
    if (const json::Value* ref = owner.FindMember(key);
        ref != nullptr && ref->is_string()) {
      files_to_delete.push_back(ref->as_string());
    }
  };
  auto collect_doc = [&](const char* collection, const json::Value& owner,
                         const char* key) -> Result<bool> {
    const json::Value* ref = owner.FindMember(key);
    if (ref == nullptr || !ref->is_string()) {
      return false;
    }
    docs_to_delete.push_back({collection, ref->as_string()});
    return true;
  };

  collect_file(doc, "params_file");
  collect_file(doc, "update_file");
  collect_file(doc, "merkle_file");
  MMLIB_RETURN_IF_ERROR(
      collect_doc(kEnvironmentsCollection, doc, "env_doc").status());
  MMLIB_RETURN_IF_ERROR(
      collect_doc(kCodeCollection, doc, "code_doc").status());
  MMLIB_ASSIGN_OR_RETURN(bool has_provenance,
                         collect_doc(kProvenanceCollection, doc,
                                     "provenance_doc"));
  if (has_provenance) {
    MMLIB_ASSIGN_OR_RETURN(
        json::Value prov_doc,
        backends_.docs->Get(kProvenanceCollection,
                            docs_to_delete.back().second));
    collect_file(prov_doc, "optimizer_state_file");
    collect_file(prov_doc, "dataset_file");
  }

  // Delete the model document first so the model disappears atomically from
  // listings; orphaned payloads are then removed best-effort.
  MMLIB_RETURN_IF_ERROR(backends_.docs->Delete(kModelsCollection, id));
  for (const auto& [collection, doc_id] : docs_to_delete) {
    MMLIB_RETURN_IF_ERROR(backends_.docs->Delete(collection, doc_id)
                              .WithContext("deleting document of " + id));
  }
  for (const std::string& file_id : files_to_delete) {
    MMLIB_RETURN_IF_ERROR(backends_.files->Delete(file_id).WithContext(
        "deleting file of " + id));
  }
  return Status::OK();
}

Result<size_t> ModelCatalog::DeleteModelTree(const std::string& id) {
  MMLIB_ASSIGN_OR_RETURN(std::vector<std::string> derived, GetDerived(id));
  size_t deleted = 0;
  for (const std::string& child : derived) {
    MMLIB_ASSIGN_OR_RETURN(size_t child_count, DeleteModelTree(child));
    deleted += child_count;
  }
  MMLIB_RETURN_IF_ERROR(DeleteModel(id));
  return deleted + 1;
}

}  // namespace mmlib::core
