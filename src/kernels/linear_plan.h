#pragma once

#include <cstdint>

#include "util/scratch_pool.h"
#include "util/thread_pool.h"

namespace mmlib::kernels {

/// Strategy chosen for a Linear (fully connected) shape.
enum class LinearAlgo {
  /// Keep the layer's direct dot-product loop (tiny shapes, and the path
  /// non-deterministic contexts always take).
  kDirect,
  /// Packed cache-blocked GEMM over output-feature tiles.
  kGemm,
};

/// An executable plan for one Linear shape (batch, in_features,
/// out_features). Forward computes y = x W^T + b; backward computes the
/// input, weight, and bias gradients. Both gradients parallelize over
/// disjoint output-feature column tiles with the full reduction inside
/// each GEMM in fixed batch order, so no cross-chunk scratch reduction is
/// needed and results are bit-identical at any pool size.
class LinearPlan {
 public:
  LinearPlan(int64_t batch, int64_t in_features, int64_t out_features);

  LinearAlgo algo() const { return algo_; }
  int64_t batch() const { return batch_; }
  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  /// Column-tile width over the parallelized feature dimension.
  int64_t nc() const { return nc_; }

  util::ScratchPool* scratch() const { return &scratch_; }

  /// y(batch, out) = x(batch, in) . W^T(in, out) + bias. Overwrites y.
  /// Requires algo() == kGemm.
  void Forward(const float* x, const float* weight, const float* bias,
               float* y, util::ThreadPool* pool) const;

  /// grad_input = gout . W (overwritten), grad_weight += gout^T . x,
  /// grad_bias += column sums of gout. Requires algo() == kGemm.
  void Backward(const float* x, const float* weight, const float* grad_output,
                float* grad_input, float* grad_weight, float* grad_bias,
                util::ThreadPool* pool) const;

 private:
  int64_t batch_;
  int64_t in_features_;
  int64_t out_features_;
  LinearAlgo algo_ = LinearAlgo::kDirect;
  int64_t nc_ = 0;
  int64_t kc_forward_ = 0;
  bool rows_outer_ = false;
  mutable util::ScratchPool scratch_;
};

}  // namespace mmlib::kernels
