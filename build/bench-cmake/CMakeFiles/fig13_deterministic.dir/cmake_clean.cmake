file(REMOVE_RECURSE
  "../bench/fig13_deterministic"
  "../bench/fig13_deterministic.pdb"
  "CMakeFiles/fig13_deterministic.dir/fig13_deterministic.cc.o"
  "CMakeFiles/fig13_deterministic.dir/fig13_deterministic.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_deterministic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
