#include "nn/conv2d.h"

#include "check/validators.h"
#include <cmath>
#include <cstring>

namespace mmlib::nn {

Conv2d::Conv2d(std::string name, int64_t in_channels, int64_t out_channels,
               int64_t kernel_size, int64_t stride, int64_t padding,
               int64_t groups, Rng* rng)
    : Layer(std::move(name)),
      in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_size_(kernel_size),
      stride_(stride),
      padding_(padding),
      groups_(groups),
      group_in_(in_channels / groups),
      group_out_(out_channels / groups) {
  // Kaiming-normal initialization: std = sqrt(2 / fan_in).
  const int64_t fan_in = group_in_ * kernel_size * kernel_size;
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  AddParam("weight",
           Tensor::Gaussian(
               Shape{out_channels, group_in_, kernel_size, kernel_size},
               stddev, rng));
}

void Conv2d::GatherPatch(const float* input, int64_t height, int64_t width,
                         int64_t n, int64_t g, int64_t oy, int64_t ox,
                         float* patch) const {
  const int64_t base_y = oy * stride_ - padding_;
  const int64_t base_x = ox * stride_ - padding_;
  int64_t idx = 0;
  for (int64_t c = 0; c < group_in_; ++c) {
    const int64_t channel = g * group_in_ + c;
    const float* plane =
        input + ((n * in_channels_ + channel) * height) * width;
    for (int64_t ky = 0; ky < kernel_size_; ++ky) {
      const int64_t y = base_y + ky;
      for (int64_t kx = 0; kx < kernel_size_; ++kx) {
        const int64_t x = base_x + kx;
        patch[idx++] = (y >= 0 && y < height && x >= 0 && x < width)
                           ? plane[y * width + x]
                           : 0.0f;
      }
    }
  }
}

Result<Tensor> Conv2d::Forward(const std::vector<const Tensor*>& inputs,
                               ExecutionContext* ctx) {
  MMLIB_RETURN_IF_ERROR(check::ValidateArity(inputs, 1, name_));
  const Tensor& x = *inputs[0];
  if (x.shape().rank() != 4 || x.shape().dim(1) != in_channels_) {
    return Status::InvalidArgument("conv2d " + name_ + ": bad input shape " +
                                   x.shape().ToString());
  }
  cached_input_ = x;
  const int64_t batch = x.shape().dim(0);
  const int64_t height = x.shape().dim(2);
  const int64_t width = x.shape().dim(3);
  const int64_t out_h = (height + 2 * padding_ - kernel_size_) / stride_ + 1;
  const int64_t out_w = (width + 2 * padding_ - kernel_size_) / stride_ + 1;
  if (out_h <= 0 || out_w <= 0) {
    return Status::InvalidArgument("conv2d " + name_ +
                                   ": input too small for kernel");
  }

  Tensor y(Shape{batch, out_channels_, out_h, out_w});
  const float* weight = params_[0].value.data();
  const int64_t patch_size = group_in_ * kernel_size_ * kernel_size_;
  const bool fast_det = kernel_size_ == 1 && padding_ == 0;
  std::vector<float> patch(patch_size);

  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t g = 0; g < groups_; ++g) {
      for (int64_t oy = 0; oy < out_h; ++oy) {
        for (int64_t ox = 0; ox < out_w; ++ox) {
          GatherPatch(x.data(), height, width, n, g, oy, ox, patch.data());
          for (int64_t oc = 0; oc < group_out_; ++oc) {
            const int64_t out_channel = g * group_out_ + oc;
            const float* wrow = weight + out_channel * patch_size;
            y.data()[((n * out_channels_ + out_channel) * out_h + oy) * out_w +
                     ox] =
                AccumulateDot(wrow, patch.data(), patch_size, fast_det, ctx);
          }
        }
      }
    }
  }
  return y;
}

Result<std::vector<Tensor>> Conv2d::Backward(const Tensor& grad_output,
                                             ExecutionContext* ctx) {
  const Tensor& x = cached_input_;
  const int64_t batch = x.shape().dim(0);
  const int64_t height = x.shape().dim(2);
  const int64_t width = x.shape().dim(3);
  const int64_t out_h = grad_output.shape().dim(2);
  const int64_t out_w = grad_output.shape().dim(3);
  const int64_t patch_size = group_in_ * kernel_size_ * kernel_size_;
  const bool fast_det = kernel_size_ == 1 && padding_ == 0;

  const float* weight = params_[0].value.data();
  float* grad_weight = params_[0].grad.data();
  Tensor grad_input(x.shape());

  // Weight gradients accumulate across every output position — on parallel
  // devices this is the classic source of convolution-backward
  // nondeterminism (atomic reduction order). Spatial kernels have no cheap
  // deterministic implementation: in deterministic mode they use
  // compensated accumulation with a per-element compensation buffer, which
  // costs extra time (paper Section 4.5).
  const bool compensated_weight_grad = ctx->deterministic() && !fast_det;
  std::vector<float> weight_grad_compensation;
  if (compensated_weight_grad) {
    weight_grad_compensation.assign(
        static_cast<size_t>(params_[0].grad.numel()), 0.0f);
  }

  std::vector<float> patch(patch_size);
  std::vector<float> grad_patch(patch_size);
  std::vector<float> gout_vec(group_out_);
  // Weight transposed within each group: [patch_size][group_out].
  std::vector<float> weight_t(static_cast<size_t>(groups_) * patch_size *
                              group_out_);
  for (int64_t g = 0; g < groups_; ++g) {
    for (int64_t oc = 0; oc < group_out_; ++oc) {
      const float* wrow = weight + (g * group_out_ + oc) * patch_size;
      for (int64_t j = 0; j < patch_size; ++j) {
        weight_t[(g * patch_size + j) * group_out_ + oc] = wrow[j];
      }
    }
  }

  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t g = 0; g < groups_; ++g) {
      for (int64_t oy = 0; oy < out_h; ++oy) {
        for (int64_t ox = 0; ox < out_w; ++ox) {
          GatherPatch(x.data(), height, width, n, g, oy, ox, patch.data());
          for (int64_t oc = 0; oc < group_out_; ++oc) {
            const int64_t out_channel = g * group_out_ + oc;
            gout_vec[oc] =
                grad_output
                    .data()[((n * out_channels_ + out_channel) * out_h + oy) *
                                out_w +
                            ox];
          }
          // Parameter gradients: grad_W[oc] += gout[oc] * patch.
          for (int64_t oc = 0; oc < group_out_; ++oc) {
            const float gv = gout_vec[oc];
            if (gv == 0.0f) {
              continue;
            }
            const int64_t row_offset = (g * group_out_ + oc) * patch_size;
            float* gwrow = grad_weight + row_offset;
            if (compensated_weight_grad) {
              float* comp = weight_grad_compensation.data() + row_offset;
              for (int64_t j = 0; j < patch_size; ++j) {
                const float y = gv * patch[j] - comp[j];
                const float t = gwrow[j] + y;
                comp[j] = (t - gwrow[j]) - y;
                gwrow[j] = t;
              }
            } else {
              for (int64_t j = 0; j < patch_size; ++j) {
                gwrow[j] += gv * patch[j];
              }
            }
          }
          // Input gradients: grad_patch[j] = W^T[j] . gout.
          for (int64_t j = 0; j < patch_size; ++j) {
            grad_patch[j] = AccumulateDot(
                weight_t.data() + (g * patch_size + j) * group_out_,
                gout_vec.data(), group_out_, fast_det, ctx);
          }
          // Scatter grad_patch back to grad_input.
          const int64_t base_y = oy * stride_ - padding_;
          const int64_t base_x = ox * stride_ - padding_;
          int64_t idx = 0;
          for (int64_t c = 0; c < group_in_; ++c) {
            const int64_t channel = g * group_in_ + c;
            float* plane = grad_input.data() +
                           ((n * in_channels_ + channel) * height) * width;
            for (int64_t ky = 0; ky < kernel_size_; ++ky) {
              const int64_t yy = base_y + ky;
              for (int64_t kx = 0; kx < kernel_size_; ++kx) {
                const int64_t xx = base_x + kx;
                if (yy >= 0 && yy < height && xx >= 0 && xx < width) {
                  plane[yy * width + xx] += grad_patch[idx];
                }
                ++idx;
              }
            }
          }
        }
      }
    }
  }
  std::vector<Tensor> grads;
  grads.push_back(std::move(grad_input));
  return grads;
}

}  // namespace mmlib::nn
