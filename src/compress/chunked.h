#pragma once

#include "compress/codec.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace mmlib {

/// Chunked compression container for large payloads (parameter snapshots in
/// the save pipeline). The payload is cut at fixed `chunk_size` boundaries
/// and each chunk is compressed independently, so chunks can be encoded and
/// decoded in parallel on a thread pool.
///
/// Determinism: chunk boundaries are a pure function of (payload size,
/// chunk_size) — never of the pool size — and chunks are concatenated in
/// fixed index order, so the encoded bytes are identical for every thread
/// count. Each chunk carries a CRC-32 of its original bytes, preserving the
/// tamper detection of the flat Codec::Frame container.
///
/// Layout (all integers little-endian, via BytesWriter):
///   u32  magic "MMLC"
///   u8   codec kind
///   u64  original payload size
///   u64  chunk size
///   u64  chunk count
///   per chunk: u32 CRC-32 of the original chunk, u64-length-prefixed
///              compressed bytes

/// Default chunk size: large enough that per-chunk framing overhead is
/// negligible, small enough that snapshots of the paper's models (Table 2)
/// split into enough chunks to occupy a pool.
constexpr size_t kDefaultChunkSize = 1 << 20;  // 1 MiB

/// Compresses `input` with the codec for `kind` into a chunked frame,
/// encoding chunks in parallel on `pool` (the process-wide pool when null).
Result<Bytes> ChunkedFrame(const Bytes& input, CodecKind kind,
                           size_t chunk_size = kDefaultChunkSize,
                           util::ThreadPool* pool = nullptr);

/// Inverse of ChunkedFrame: verifies per-chunk checksums and returns the
/// original payload, decoding chunks in parallel into disjoint regions of
/// the output buffer.
Result<Bytes> ChunkedUnframe(const Bytes& frame,
                             util::ThreadPool* pool = nullptr);

/// True if `frame` starts with the chunked-frame magic. Lets readers accept
/// both chunked frames and the raw serialization of older snapshots.
bool IsChunkedFrame(const Bytes& frame);

}  // namespace mmlib
