#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace mmlib::json {

/// Type tag of a JSON value.
enum class Type {
  kNull,
  kBool,
  kNumber,
  kString,
  kArray,
  kObject,
};

/// A JSON value (ECMA-404). Objects keep keys in sorted order (std::map) so
/// serialization is canonical: the same value always serializes to the same
/// bytes, which makes document hashing and storage accounting deterministic.
///
/// mmlib stores all model metadata (paper Section 3.1 "Model Storage") as
/// JSON documents in the document store.
class Value {
 public:
  using Array = std::vector<Value>;
  using Object = std::map<std::string, Value>;

  /// Constructs null.
  Value() : type_(Type::kNull) {}
  Value(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  Value(double d) : type_(Type::kNumber), number_(d) {}  // NOLINT
  Value(int i) : type_(Type::kNumber), number_(i) {}  // NOLINT
  Value(int64_t i)  // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  Value(uint64_t u)  // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(u)) {}
  Value(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT
  Value(std::string s)  // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}
  Value(Array a) : type_(Type::kArray), array_(std::move(a)) {}  // NOLINT
  Value(Object o) : type_(Type::kObject), object_(std::move(o)) {}  // NOLINT

  /// Factory helpers for empty containers.
  static Value MakeObject() { return Value(Object{}); }
  static Value MakeArray() { return Value(Array{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Unchecked accessors; behaviour is undefined on type mismatch (asserted
  /// in debug builds). Use Get* for checked access.
  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  int64_t as_int() const { return static_cast<int64_t>(number_); }
  const std::string& as_string() const { return string_; }
  const Array& as_array() const { return array_; }
  Array& as_array() { return array_; }
  const Object& as_object() const { return object_; }
  Object& as_object() { return object_; }

  /// Object access: returns the member or an error. `this` must be an object.
  Result<const Value*> GetMember(std::string_view key) const;
  Result<std::string> GetString(std::string_view key) const;
  Result<double> GetNumber(std::string_view key) const;
  Result<int64_t> GetInt(std::string_view key) const;
  Result<bool> GetBool(std::string_view key) const;
  /// Returns the member if present and non-null, otherwise nullptr; never
  /// fails (for optional fields).
  const Value* FindMember(std::string_view key) const;

  /// Sets an object member; `this` must be an object.
  void Set(std::string key, Value value);
  bool Has(std::string_view key) const { return FindMember(key) != nullptr; }

  /// Appends to an array; `this` must be an array.
  void Append(Value value);

  /// Deep structural equality.
  bool operator==(const Value& other) const;

  /// Serializes canonically (sorted keys, no whitespace).
  std::string Dump() const;

  /// Serializes with 2-space indentation for human consumption.
  std::string DumpPretty() const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses a JSON document; fails with InvalidArgument on malformed input.
Result<Value> Parse(std::string_view text);

}  // namespace mmlib::json

