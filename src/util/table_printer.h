#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace mmlib {

/// Renders aligned plain-text tables. Used by the benchmark harness to print
/// the rows/series of the paper's tables and figures.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Adds one row; must have the same number of cells as the header.
  void AddRow(std::vector<std::string> cells);

  /// Writes the table with a header rule to `os`.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mmlib

