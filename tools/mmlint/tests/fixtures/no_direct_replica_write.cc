// fixture-path: src/core/fixture_replica.cc

namespace mmlib {

void BypassQuorum(ReplicaCluster& cluster, FileId id, const std::string& b) {
  cluster.file_backends[0]->WriteAllocated(id, b);  // finding
  cluster.backend(1)->Delete(id);                   // finding
  transport(2)->SaveFile(id, b);                    // finding
}

void AllowedWrapped(ReplicaCluster& cluster, DocId id, const Document& doc) {
  cluster.doc_backends[0]  // lint:allow(no-direct-replica-write)
      ->InsertWithId(id, doc);
}

void QuorumPath(ReplicatedFileStore& store, ReplicatedFileStore* ptr,
                FileId id, const std::string& b) {
  store.SaveFile(id, b);  // quorum writer by value: no finding
  ptr->SaveFile(id, b);   // plain-identifier receiver: no finding
}

void StaleAllow(ReplicaCluster& cluster) {
  cluster.Heal();  // lint:allow(no-direct-replica-write)
}

}  // namespace mmlib
