#include <gtest/gtest.h>

#include "dist/flow.h"
#include "docstore/document_store.h"
#include "filestore/file_store.h"

namespace mmlib::dist {
namespace {

FlowConfig TinyFlowConfig(ApproachKind approach) {
  FlowConfig config;
  config.approach = approach;
  config.model = models::DefaultConfig(models::Architecture::kMobileNetV2);
  config.model.channel_divisor = 8;
  config.model.image_size = 28;
  config.model.num_classes = 125;
  config.u3_iterations = 2;
  config.dataset_divisor = 4096;
  config.train.epochs = 1;
  config.train.max_batches_per_epoch = 1;
  config.train.loader.batch_size = 4;
  return config;
}

struct Backing {
  docstore::InMemoryDocumentStore docs;
  filestore::InMemoryFileStore files;
  core::StorageBackends backends{&docs, &files, nullptr};
};

class FlowApproaches : public ::testing::TestWithParam<ApproachKind> {};

TEST_P(FlowApproaches, StandardFlowSavesAndRecoversAllModels) {
  Backing backing;
  FlowConfig config = TinyFlowConfig(GetParam());
  EvaluationFlow flow(config, backing.backends);
  EXPECT_EQ(flow.ExpectedModelCount(), 2 + 2 * 2);

  auto result = flow.Run();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->records.size(), 6u);
  // Labels in execution order.
  EXPECT_EQ(result->Labels(),
            (std::vector<std::string>{"U1", "U3-1-1", "U3-1-2", "U2",
                                      "U3-2-1", "U3-2-2"}));
  for (const UseCaseRecord& record : result->records) {
    EXPECT_GT(record.storage_bytes, 0) << record.label;
    EXPECT_GT(record.tts_seconds, 0.0) << record.label;
    // Every model was recovered losslessly (checksum verified inside).
    EXPECT_TRUE(record.recovered) << record.label;
    EXPECT_GT(record.ttr_seconds, 0.0) << record.label;
  }
}

INSTANTIATE_TEST_SUITE_P(Approaches, FlowApproaches,
                         ::testing::Values(ApproachKind::kBaseline,
                                           ApproachKind::kParamUpdate,
                                           ApproachKind::kProvenance,
                                           ApproachKind::kAdaptive),
                         [](const ::testing::TestParamInfo<ApproachKind>& i) {
                           return std::string(ApproachName(i.param));
                         });

/// Paper Table 3: STANDARD/DIST-5/DIST-10/DIST-20 save 10/102/202/402
/// models.
struct Table3Case {
  int nodes;
  int iterations;
  int expected_models;
};

class Table3Property : public ::testing::TestWithParam<Table3Case> {};

TEST_P(Table3Property, ModelCountMatchesTable3) {
  const Table3Case c = GetParam();
  FlowConfig config = TinyFlowConfig(ApproachKind::kBaseline);
  config.num_nodes = c.nodes;
  config.u3_iterations = c.iterations;
  Backing backing;
  EvaluationFlow flow(config, backing.backends);
  EXPECT_EQ(flow.ExpectedModelCount(), c.expected_models);
}

INSTANTIATE_TEST_SUITE_P(PaperTable3, Table3Property,
                         ::testing::Values(Table3Case{1, 4, 10},
                                           Table3Case{5, 10, 102},
                                           Table3Case{10, 10, 202},
                                           Table3Case{20, 10, 402}));

TEST(FlowTest, MultiNodeFlowProducesPerNodeRecords) {
  FlowConfig config = TinyFlowConfig(ApproachKind::kBaseline);
  config.num_nodes = 3;
  config.recover_models = false;
  Backing backing;
  EvaluationFlow flow(config, backing.backends);
  auto result = flow.Run();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->records.size(), 2u + 3u * 4u);

  // U3 labels appear once per node; server use cases once.
  int u311 = 0;
  int u1 = 0;
  for (const UseCaseRecord& record : result->records) {
    if (record.label == "U3-1-1") {
      ++u311;
      EXPECT_GE(record.node, 0);
    }
    if (record.label == "U1") {
      ++u1;
      EXPECT_EQ(record.node, -1);
    }
  }
  EXPECT_EQ(u311, 3);
  EXPECT_EQ(u1, 1);
  EXPECT_GT(result->MedianTts("U3-1-1"), 0.0);
  EXPECT_GT(result->MedianStorage("U1"), 0);
  EXPECT_GT(result->TotalStorage(), 0);
}

TEST(FlowTest, PartialRelationShrinksParamUpdateStorage) {
  // Paper Figure 7(b)/(d): for partially updated versions the PUA's
  // derived-model storage is a small fraction of U1's full snapshot.
  FlowConfig config = TinyFlowConfig(ApproachKind::kParamUpdate);
  config.relation = ModelRelation::kPartiallyUpdated;
  config.recover_models = false;
  Backing backing;
  auto result = EvaluationFlow(config, backing.backends).Run();
  ASSERT_TRUE(result.ok()) << result.status();
  const int64_t initial = result->MedianStorage("U1");
  const int64_t derived = result->MedianStorage("U3-1-1");
  EXPECT_LT(derived, initial / 3);
}

TEST(FlowTest, FullRelationKeepsParamUpdateStorageNearBaseline) {
  // Paper Figure 7(a)/(c): for fully updated versions PUA ~ BA.
  Backing pua_backing;
  FlowConfig pua = TinyFlowConfig(ApproachKind::kParamUpdate);
  pua.recover_models = false;
  auto pua_result = EvaluationFlow(pua, pua_backing.backends).Run();
  ASSERT_TRUE(pua_result.ok());

  Backing ba_backing;
  FlowConfig ba = TinyFlowConfig(ApproachKind::kBaseline);
  ba.recover_models = false;
  auto ba_result = EvaluationFlow(ba, ba_backing.backends).Run();
  ASSERT_TRUE(ba_result.ok());

  const double pua_storage =
      static_cast<double>(pua_result->MedianStorage("U3-1-1"));
  const double ba_storage =
      static_cast<double>(ba_result->MedianStorage("U3-1-1"));
  EXPECT_NEAR(pua_storage, ba_storage, 0.15 * ba_storage);
}

TEST(FlowTest, ProvenanceStorageTracksDatasetNotModel) {
  // Paper Figure 9: MPA storage is dataset-dominated and nearly
  // architecture-independent.
  auto run = [](models::Architecture arch) {
    FlowConfig config = TinyFlowConfig(ApproachKind::kProvenance);
    config.model = models::DefaultConfig(arch);
    config.model.channel_divisor = 8;
    config.model.image_size = 28;
    config.model.num_classes = 125;
    config.dataset_divisor = 512;  // realistic dataset-to-metadata ratio
    config.recover_models = false;
    Backing backing;
    return EvaluationFlow(config, backing.backends)
        .Run()
        .value()
        .MedianStorage("U3-1-1");
  };
  const int64_t mobilenet = run(models::Architecture::kMobileNetV2);
  const int64_t resnet18 = run(models::Architecture::kResNet18);
  EXPECT_NEAR(static_cast<double>(mobilenet),
              static_cast<double>(resnet18), 0.1 * mobilenet);
}

TEST(FlowTest, ChainDepthFollowsFigure6) {
  // Model relations (paper Figure 6): U3-1-n chains to U1 (depth n);
  // U2 chains to U1 (depth 1); U3-2-n chains through U2 (depth n+1).
  FlowConfig config = TinyFlowConfig(ApproachKind::kParamUpdate);
  config.recover_models = false;
  Backing backing;
  auto result = EvaluationFlow(config, backing.backends).Run();
  ASSERT_TRUE(result.ok());

  core::ModelRecoverer recoverer(backing.backends);
  for (const UseCaseRecord& record : result->records) {
    const size_t depth =
        recoverer.BaseChainLength(record.model_id).value();
    if (record.label == "U1") {
      EXPECT_EQ(depth, 0u);
    } else if (record.label == "U2" || record.label == "U3-1-1") {
      EXPECT_EQ(depth, 1u);
    } else if (record.label == "U3-1-2") {
      EXPECT_EQ(depth, 2u);
    } else if (record.label == "U3-2-1") {
      EXPECT_EQ(depth, 2u);
    } else if (record.label == "U3-2-2") {
      EXPECT_EQ(depth, 3u);
    }
  }
}

TEST(FlowTest, SimulatedModeSkipsTraining) {
  FlowConfig config = TinyFlowConfig(ApproachKind::kBaseline);
  config.training_mode = TrainingMode::kSimulated;
  Backing backing;
  auto result = EvaluationFlow(config, backing.backends).Run();
  ASSERT_TRUE(result.ok()) << result.status();
  for (const UseCaseRecord& record : result->records) {
    EXPECT_TRUE(record.recovered);
  }
}

TEST(FlowTest, SimulatedProvenanceRecoveryIsRejected) {
  FlowConfig config = TinyFlowConfig(ApproachKind::kProvenance);
  config.training_mode = TrainingMode::kSimulated;
  config.recover_models = true;
  Backing backing;
  auto result = EvaluationFlow(config, backing.backends).Run();
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(FlowTest, SimulatedPartialUpdatesOnlyTouchClassifier) {
  FlowConfig config = TinyFlowConfig(ApproachKind::kParamUpdate);
  config.training_mode = TrainingMode::kSimulated;
  config.relation = ModelRelation::kPartiallyUpdated;
  config.recover_models = false;
  Backing backing;
  auto result = EvaluationFlow(config, backing.backends).Run();
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->MedianStorage("U3-1-1"),
            result->MedianStorage("U1") / 3);
}

TEST(FlowTest, NetworkChargesAppearInTimes) {
  // With a very slow simulated link, save times are dominated by transfer
  // time, which must be included in TTS.
  FlowConfig config = TinyFlowConfig(ApproachKind::kBaseline);
  config.recover_models = false;
  config.training_mode = TrainingMode::kSimulated;

  docstore::InMemoryDocumentStore docs;
  filestore::InMemoryFileStore files;
  simnet::Network network(simnet::Link{1e6, 0.0});  // 1 MB/s
  docstore::RemoteDocumentStore remote_docs(&docs, &network);
  filestore::RemoteFileStore remote_files(&files, &network);
  core::StorageBackends backends{&remote_docs, &remote_files, &network};

  auto result = EvaluationFlow(config, backends).Run();
  ASSERT_TRUE(result.ok()) << result.status();
  // The MobileNetV2 snapshot is ~300 KB => >= 0.3 s of virtual transfer.
  EXPECT_GT(result->MedianTts("U1"), 0.2);
  EXPECT_GT(network.TotalBytes(), 0u);
}

TEST(FlowTest, MediansOfUnknownLabelAreZero) {
  FlowResult empty;
  EXPECT_EQ(empty.MedianTts("U1"), 0.0);
  EXPECT_EQ(empty.MedianTtr("U1"), 0.0);
  EXPECT_EQ(empty.MedianStorage("U1"), 0);
  EXPECT_EQ(empty.TotalStorage(), 0);
}

}  // namespace
}  // namespace mmlib::dist
