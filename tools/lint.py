#!/usr/bin/env python3
"""mmlib repository lint.

Enforces repo-specific correctness rules that generic tooling does not know
about (see DESIGN.md "Correctness tooling"):

  no-raw-rand        rand()/srand()/std::random_device are forbidden outside
                     src/util/random.* -- all randomness must flow through the
                     seeded, platform-deterministic mmlib::Rng so training
                     stays reproducible (paper Section 2.3).
  no-assert          assert( is forbidden in library code under src/ -- use
                     MMLIB_CHECK / MMLIB_DCHECK from src/check/check.h, which
                     survive NDEBUG builds and print formatted context.
  pragma-once        every header must start its guard with #pragma once.
  no-iostream        <iostream> is forbidden in the src/ library target; it
                     drags in static init-order hazards and stdio interleaving.
                     Use <cstdio> or util/strings.h. (bench/, examples/ and
                     tests/ may use it.)
  nodiscard-result   src/util/result.h and src/util/status.h must declare
                     Result/Status [[nodiscard]] so the compiler flags every
                     discarded error at the call site.
  no-raw-thread      std::thread/std::jthread/std::async (and <future>) are
                     forbidden outside src/util/ -- ad-hoc threads bypass the
                     deterministic-chunking contract of util::ThreadPool
                     (DESIGN.md "Threading model") and make results depend on
                     scheduling. Use ThreadPool::ParallelFor.
  no-unchecked-remote  bare `.value()` chained onto a store operation is
                     forbidden in src/dist/ -- distributed flows run against
                     remote stores whose calls can fail with Unavailable /
                     DeadlineExceeded even after retries (DESIGN.md "Fault
                     model and retry semantics"). Propagate the error with
                     MMLIB_ASSIGN_OR_RETURN instead of crashing on it.
  no-direct-replica-write  mutating a single replica directly -- through a
                     replica transport's backend(), a transport(i) accessor,
                     or a per-replica backend array -- is forbidden outside
                     src/repl/. Every replica mutation must flow through the
                     quorum writer (or the scrubber's reconciler), which
                     records the write-time digest and commit state; a direct
                     write silently diverges a replica in a way only
                     anti-entropy can find (DESIGN.md Section 11). Tests that
                     deliberately inject bit-rot annotate the line with
                     lint:allow.
  no-direct-persist  std::ofstream/std::fstream/fopen are forbidden in
                     src/filestore/, src/docstore/ and src/core/ -- every
                     persisted byte must go through util::AtomicWriteFile
                     (tmp-write + flush + rename, with crash points) or the
                     write-ahead journal (DESIGN.md "Crash model and
                     recovery"); a direct stream write can leave a torn file
                     that replay does not know about.

Usage:
  python3 tools/lint.py            # lint the whole repo, exit non-zero on findings
  python3 tools/lint.py FILE...    # lint specific files only
  python3 tools/lint.py --list-rules

A finding on a specific line can be suppressed with a trailing
`// lint:allow(<rule-id>)` comment; use sparingly and say why.
"""

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

CPP_SUFFIXES = {".cc", ".cpp", ".h", ".hpp"}

# Directories scanned for C++ sources, relative to the repo root.
SCAN_DIRS = ("src", "tests", "bench", "examples")


def is_header(path: Path) -> bool:
    return path.suffix in {".h", ".hpp"}


def in_dir(relpath: Path, dirname: str) -> bool:
    return relpath.parts and relpath.parts[0] == dirname


ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z0-9-]+)\)")
LINE_COMMENT_RE = re.compile(r"//.*$")
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')

RAW_RAND_RE = re.compile(r"(?<![\w:])(?:std::)?(?:s?rand(?:om)?\s*\(|random_device)")
# std::thread::hardware_concurrency is a query, not a thread spawn; it stays
# legal everywhere (ThreadPool sizes its default from it).
RAW_THREAD_RE = re.compile(
    r"(?<![\w:])std::(?:thread(?!::hardware_concurrency)|jthread|async)\b"
    r"|#\s*include\s*<future>")
ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(")
# A store operation with `.value()` chained straight onto the call. The
# argument list is matched across one nesting level of parentheses.
UNCHECKED_REMOTE_RE = re.compile(
    r"(?:SaveFile|LoadFile|Delete|FileSize|FileCount|Insert|Get|ListIds|"
    r"FindByField)\s*\((?:[^()]|\([^()]*\))*\)\s*\.\s*value\s*\(")
IOSTREAM_RE = re.compile(r"#\s*include\s*<iostream>")
# Direct file-write channels in persistence code. std::ifstream (read-only)
# stays legal; everything that can create or mutate a file on disk must go
# through util::AtomicWriteFile or the journal.
DIRECT_PERSIST_RE = re.compile(
    r"(?<![\w:])std::(?:ofstream|fstream)\b|(?<![\w:.])(?:std::)?fopen\s*\(")
PERSIST_DIRS = ("src/filestore/", "src/docstore/", "src/core/")
# A mutating store call whose receiver addresses one specific replica: a
# replica transport's raw backend(), a ReplicatedStore transport(i), or a
# per-replica backend array slot. The receiver/mutator chain may wrap across
# lines, so this is matched against comment-stripped full text.
REPLICA_MUTATORS = (
    r"(?:SaveFile|WriteAllocated|AllocateFileId|AllocateDocId|Insert|"
    r"InsertWithId|Delete)")
REPLICA_WRITE_RE = re.compile(
    r"(?:(?:->|\.)\s*backend\s*\(\s*\)"
    r"|transport\s*\((?:[^()]|\([^()]*\))*\)"
    r"|(?:file|doc)_backends\s*\[[^\]]*\]"
    r")\s*->\s*" + REPLICA_MUTATORS + r"\s*\(")
PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\s*$", re.MULTILINE)
NODISCARD_CLASS_RE = {
    "src/util/result.h": re.compile(r"class\s+\[\[nodiscard\]\]\s+Result"),
    "src/util/status.h": re.compile(r"class\s+\[\[nodiscard\]\]\s+Status"),
}


def strip_noncode(line: str) -> str:
    """Removes string literals and // comments so rules match code only."""
    line = STRING_RE.sub('""', line)
    return LINE_COMMENT_RE.sub("", line)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


RULES = {}


def rule(rule_id, doc):
    def wrap(fn):
        RULES[rule_id] = (fn, doc)
        return fn

    return wrap


@rule("no-raw-rand", "rand()/srand()/std::random_device outside src/util/random")
def check_raw_rand(relpath, text, findings):
    rel = relpath.as_posix()
    if rel.startswith("src/util/random"):
        return
    for i, line in enumerate(text.splitlines(), 1):
        if RAW_RAND_RE.search(strip_noncode(line)):
            findings.append(
                Finding(rel, i, "no-raw-rand",
                        "use the seeded mmlib::Rng from util/random.h; raw "
                        "rand()/std::random_device breaks reproducibility"))


@rule("no-assert", "assert( in src/ library code (use MMLIB_CHECK/MMLIB_DCHECK)")
def check_assert(relpath, text, findings):
    if not in_dir(relpath, "src"):
        return
    for i, line in enumerate(text.splitlines(), 1):
        if ASSERT_RE.search(strip_noncode(line)):
            findings.append(
                Finding(relpath.as_posix(), i, "no-assert",
                        "use MMLIB_CHECK/MMLIB_DCHECK from check/check.h "
                        "instead of assert()"))


@rule("pragma-once", "headers must contain #pragma once")
def check_pragma_once(relpath, text, findings):
    if not is_header(relpath):
        return
    if not PRAGMA_ONCE_RE.search(text):
        findings.append(
            Finding(relpath.as_posix(), 1, "pragma-once",
                    "header is missing #pragma once"))


@rule("no-iostream", "<iostream> in the src/ library target")
def check_iostream(relpath, text, findings):
    if not in_dir(relpath, "src"):
        return
    for i, line in enumerate(text.splitlines(), 1):
        if IOSTREAM_RE.search(strip_noncode(line)):
            findings.append(
                Finding(relpath.as_posix(), i, "no-iostream",
                        "library code must not include <iostream>; use "
                        "<cstdio>, <sstream>, or util/strings.h"))


@rule("no-raw-thread", "std::thread/std::async outside src/util/")
def check_raw_thread(relpath, text, findings):
    rel = relpath.as_posix()
    if rel.startswith("src/util/"):
        return
    for i, line in enumerate(text.splitlines(), 1):
        if RAW_THREAD_RE.search(strip_noncode(line)):
            findings.append(
                Finding(rel, i, "no-raw-thread",
                        "spawn parallel work through util::ThreadPool's "
                        "deterministic ParallelFor, not raw std::thread/"
                        "std::async; ad-hoc threads break the bit-identical-"
                        "across-thread-counts contract"))


@rule("no-unchecked-remote",
      "bare .value() on a store operation in src/dist/")
def check_unchecked_remote(relpath, text, findings):
    rel = relpath.as_posix()
    if not rel.startswith("src/dist/"):
        return
    for i, line in enumerate(text.splitlines(), 1):
        if UNCHECKED_REMOTE_RE.search(strip_noncode(line)):
            findings.append(
                Finding(rel, i, "no-unchecked-remote",
                        "remote store calls can fail with Unavailable/"
                        "DeadlineExceeded even after retries; propagate with "
                        "MMLIB_ASSIGN_OR_RETURN instead of .value()"))


@rule("no-direct-persist",
      "std::ofstream/fopen file writes in persistence code")
def check_direct_persist(relpath, text, findings):
    rel = relpath.as_posix()
    if not rel.startswith(PERSIST_DIRS):
        return
    for i, line in enumerate(text.splitlines(), 1):
        if DIRECT_PERSIST_RE.search(strip_noncode(line)):
            findings.append(
                Finding(rel, i, "no-direct-persist",
                        "persistence code must write through "
                        "util::AtomicWriteFile or the save journal; a direct "
                        "stream write can tear on crash and is invisible to "
                        "journal replay"))


@rule("no-direct-replica-write",
      "replica mutation bypassing the quorum writer (outside src/repl/)")
def check_direct_replica_write(relpath, text, findings):
    rel = relpath.as_posix()
    if rel.startswith("src/repl/"):
        return
    # Strip comments/strings line by line (preserves line numbering), then
    # match across lines: the receiver chain often wraps.
    stripped = "\n".join(strip_noncode(line) for line in text.splitlines())
    for m in REPLICA_WRITE_RE.finditer(stripped):
        line = stripped.count("\n", 0, m.start()) + 1
        findings.append(
            Finding(rel, line, "no-direct-replica-write",
                    "mutate replicas through the quorum writer "
                    "(ReplicatedFileStore/ReplicatedDocumentStore) or the "
                    "scrubber, never one replica directly; a lone-replica "
                    "write diverges silently until anti-entropy finds it"))


@rule("nodiscard-result", "Result/Status must be declared [[nodiscard]]")
def check_nodiscard(relpath, text, findings):
    rel = relpath.as_posix()
    pattern = NODISCARD_CLASS_RE.get(rel)
    if pattern is None:
        return
    if not pattern.search(text):
        findings.append(
            Finding(rel, 1, "nodiscard-result",
                    "error-carrying class lost its [[nodiscard]] annotation; "
                    "discarded Result/Status would go unnoticed"))


def lint_file(path: Path, findings):
    try:
        relpath = path.resolve().relative_to(REPO_ROOT)
    except ValueError:
        relpath = path
    text = path.read_text(encoding="utf-8", errors="replace")

    file_findings = []
    for fn, _doc in RULES.values():
        fn(relpath, text, file_findings)

    # Honor line-scoped `// lint:allow(rule-id)` suppressions.
    lines = text.splitlines()
    for f in file_findings:
        line_text = lines[f.line - 1] if 0 < f.line <= len(lines) else ""
        allows = set(ALLOW_RE.findall(line_text))
        if f.rule not in allows:
            findings.append(f)


def collect_files(args_paths):
    if args_paths:
        files = []
        for arg in args_paths:
            p = Path(arg)
            if p.is_dir():
                files.extend(sorted(f for f in p.rglob("*") if f.suffix in CPP_SUFFIXES))
            elif p.exists():
                files.append(p)
            else:
                sys.exit(f"lint: no such file or directory: {arg}")
        return [f for f in files if f.suffix in CPP_SUFFIXES]
    files = []
    for d in SCAN_DIRS:
        root = REPO_ROOT / d
        if root.is_dir():
            files.extend(sorted(f for f in root.rglob("*") if f.suffix in CPP_SUFFIXES))
    return files


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (default: whole repo)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    args = parser.parse_args()

    if args.list_rules:
        for rule_id, (_fn, doc) in sorted(RULES.items()):
            print(f"{rule_id:18} {doc}")
        return 0

    findings = []
    files = collect_files(args.paths)
    for f in files:
        lint_file(f, findings)

    for f in findings:
        print(f)
    if findings:
        print(f"\nlint: {len(findings)} finding(s) in {len(files)} file(s)",
              file=sys.stderr)
        return 1
    print(f"lint: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
