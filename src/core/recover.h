#pragma once

#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/serve_hook.h"
#include "core/types.h"
#include "data/dataset.h"
#include "env/environment.h"
#include "nn/model.h"
#include "util/result.h"

namespace mmlib::core {

/// Resolves externally managed datasets by name and content hash (used only
/// when models were saved with ProvenanceOptions::external_dataset_manager).
class DatasetResolver {
 public:
  virtual ~DatasetResolver() = default;
  virtual Result<std::unique_ptr<data::Dataset>> Resolve(
      const std::string& dataset_name,
      const std::string& content_hash_hex) = 0;
};

/// A recovered model together with verification outcomes and the per-step
/// timing breakdown of paper Figure 12.
struct RecoveredModel {
  nn::Model model{""};
  std::string model_id;
  RecoverBreakdown breakdown;
  /// True when RecoverOptions::verify_checksum was set and the recovered
  /// parameter hash matched the stored checksum.
  bool checksum_verified = false;
  /// True when RecoverOptions::check_environment was set and the current
  /// environment matched the saved one.
  bool environment_matches = false;
  std::vector<std::string> environment_diffs;
};

/// Recovers models saved by any of the three approaches. Recovery of
/// derived models saved with the PUA or MPA is a recursive process: the
/// base model is recovered first, then the parameter update is merged (PUA)
/// or the training reproduced (MPA) — paper Sections 3.2/3.3.
class ModelRecoverer {
 public:
  explicit ModelRecoverer(StorageBackends backends) : backends_(backends) {}

  /// Sets the resolver for externally managed datasets; optional.
  void set_dataset_resolver(DatasetResolver* resolver) {
    dataset_resolver_ = resolver;
  }

  /// Enables an in-memory LRU cache of recovered parameter snapshots
  /// (capacity in bytes). Recovering a derived model then reuses cached
  /// base-model states instead of walking the whole chain — flattening the
  /// TTR staircase of the PUA/MPA at the cost of memory (the
  /// storage-retraining trade-off knob of paper Section 4.7).
  void EnableSnapshotCache(size_t capacity_bytes);

  /// Cache statistics since construction (0/0 when disabled).
  size_t cache_hits() const { return cache_hits_; }
  size_t cache_misses() const { return cache_misses_; }

  /// Payloads re-fetched because their per-chunk CRC-32 (or structural)
  /// check failed — the copy in the store is intact, so a payload damaged
  /// in flight is simply requested again instead of aborting the recovery.
  uint64_t corruption_refetches() const { return corruption_refetches_; }

  /// Recovers the model with `id`, verifying according to `options`.
  /// Verification failures surface as Corruption/FailedPrecondition errors;
  /// the flags in RecoveredModel report what was checked. Completions are
  /// reported through the serve hook (op "model.recover") when installed.
  Result<RecoveredModel> Recover(const std::string& id,
                                 const RecoverOptions& options);

  /// Installs the serving layer's observer (see core/serve_hook.h). Pass an
  /// empty function to detach.
  void set_serve_hook(ServeHook hook) { serve_hook_ = std::move(hook); }

  /// Returns the number of models in the transitive base chain of `id`
  /// (0 for an initial model).
  Result<size_t> BaseChainLength(const std::string& id);

 private:
  Result<RecoveredModel> DoRecover(const std::string& id,
                                   const RecoverOptions& options);

  Result<nn::Model> RecoverInternal(const std::string& id,
                                    RecoverBreakdown* breakdown, int depth);

  /// Loads a parameter payload (snapshot or layer update), decoding chunked
  /// frames and re-fetching when a chunk checksum fails.
  Result<Bytes> FetchParamsPayload(const std::string& file_id);

  /// Returns the cached snapshot for `id`, refreshing its LRU position;
  /// nullptr on miss or when the cache is disabled.
  const Bytes* CacheLookup(const std::string& id);
  void CacheInsert(const std::string& id, Bytes snapshot);

  StorageBackends backends_;
  DatasetResolver* dataset_resolver_ = nullptr;
  ServeHook serve_hook_;
  uint64_t corruption_refetches_ = 0;

  bool cache_enabled_ = false;
  size_t cache_capacity_bytes_ = 0;
  size_t cache_size_bytes_ = 0;
  size_t cache_hits_ = 0;
  size_t cache_misses_ = 0;
  std::list<std::string> cache_lru_;  // front = most recent
  std::map<std::string, std::pair<Bytes, std::list<std::string>::iterator>>
      cache_;
};

}  // namespace mmlib::core

