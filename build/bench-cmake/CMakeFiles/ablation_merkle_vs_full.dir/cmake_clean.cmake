file(REMOVE_RECURSE
  "../bench/ablation_merkle_vs_full"
  "../bench/ablation_merkle_vs_full.pdb"
  "CMakeFiles/ablation_merkle_vs_full.dir/ablation_merkle_vs_full.cc.o"
  "CMakeFiles/ablation_merkle_vs_full.dir/ablation_merkle_vs_full.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_merkle_vs_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
