#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/baseline.h"
#include "core/model_code.h"
#include "core/recover.h"
#include "docstore/document_store.h"
#include "env/environment.h"
#include "filestore/file_store.h"
#include "models/zoo.h"
#include "repl/replicated_store.h"
#include "serve/backend.h"
#include "serve/breaker.h"
#include "serve/core_backend.h"
#include "serve/frontend.h"
#include "serve/queue.h"
#include "serve/workload.h"
#include "simnet/network.h"
#include "simnet/retry.h"

namespace mmlib {
namespace {

/// Overridable so CI can sweep several fault schedules over the same
/// assertions (MMLIB_FAULT_SEED=3 ctest -R serving ...).
uint64_t FaultSeed() {
  const char* env = std::getenv("MMLIB_FAULT_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 0x5eedfa17;
}

// ---------------------------------------------------------------------------
// Circuit breaker state machine

TEST(CircuitBreakerTest, TripsHalfOpensAndRecovers) {
  serve::BreakerOptions options;
  options.failure_threshold = 3;
  options.open_seconds = 1.0;
  options.recovery_threshold = 2;
  serve::CircuitBreaker breaker(options);

  // Closed: requests flow, failures accumulate.
  EXPECT_EQ(breaker.state(), serve::CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow(0.0));
  breaker.RecordFailure(0.0);
  breaker.RecordFailure(0.1);
  EXPECT_EQ(breaker.state(), serve::CircuitBreaker::State::kClosed);
  // A success resets the consecutive-failure count.
  breaker.RecordSuccess(0.2);
  breaker.RecordFailure(0.3);
  breaker.RecordFailure(0.4);
  EXPECT_EQ(breaker.state(), serve::CircuitBreaker::State::kClosed);
  breaker.RecordFailure(0.5);
  EXPECT_EQ(breaker.state(), serve::CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trip_count(), 1u);

  // Open: fast rejects until the cooldown elapses.
  EXPECT_FALSE(breaker.Allow(0.6));
  EXPECT_FALSE(breaker.Allow(1.4));
  EXPECT_EQ(breaker.fast_reject_count(), 2u);

  // Cooldown over: exactly one probe is admitted (half-open).
  EXPECT_TRUE(breaker.Allow(1.6));
  EXPECT_EQ(breaker.state(), serve::CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.Allow(1.7));  // probe in flight, others rejected

  // Probe fails: back to open, cooldown restarts.
  breaker.RecordFailure(1.8);
  EXPECT_EQ(breaker.state(), serve::CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trip_count(), 2u);
  EXPECT_FALSE(breaker.Allow(2.0));

  // Next probe succeeds twice: recovered.
  EXPECT_TRUE(breaker.Allow(3.0));
  breaker.RecordSuccess(3.1);
  EXPECT_EQ(breaker.state(), serve::CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.Allow(3.2));
  breaker.RecordSuccess(3.3);
  EXPECT_EQ(breaker.state(), serve::CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.recovery_count(), 1u);
  EXPECT_TRUE(breaker.Allow(3.4));
}

// ---------------------------------------------------------------------------
// Bounded queues + DRR fairness

TEST(TenantQueuesTest, AdmissionIsBounded) {
  serve::QueueOptions options;
  options.per_tenant_capacity = 3;
  serve::TenantQueues queues(2, options);
  serve::Request request;
  request.tenant = 0;
  EXPECT_TRUE(queues.Admit(request));
  EXPECT_TRUE(queues.Admit(request));
  EXPECT_TRUE(queues.Admit(request));
  EXPECT_FALSE(queues.Admit(request));  // full: shed
  request.tenant = 1;
  EXPECT_TRUE(queues.Admit(request));  // other tenant unaffected
  EXPECT_EQ(queues.TotalQueued(), 4u);
}

TEST(TenantQueuesTest, DeficitRoundRobinInterleavesTenants) {
  serve::QueueOptions options;
  options.per_tenant_capacity = 16;
  options.drr_quantum = 2;
  serve::TenantQueues queues(2, options);
  serve::Request request;
  for (uint64_t i = 0; i < 6; ++i) {
    request.sequence = i;
    request.tenant = 0;
    ASSERT_TRUE(queues.Admit(request));
  }
  for (uint64_t i = 6; i < 8; ++i) {
    request.sequence = i;
    request.tenant = 1;
    ASSERT_TRUE(queues.Admit(request));
  }
  // Quantum 2: two from tenant 0, two from tenant 1, rest from tenant 0.
  std::vector<uint32_t> order;
  serve::Request out;
  while (queues.PopNext(&out)) {
    order.push_back(out.tenant);
  }
  const std::vector<uint32_t> expected = {0, 0, 1, 1, 0, 0, 0, 0};
  EXPECT_EQ(order, expected);
}

// ---------------------------------------------------------------------------
// Serving scenarios over simnet

enum class Degradation { kNone, kReplicaCrash, kMinorityPartition };

/// One seeded serving run: 3 coordinator nodes over 3 simulated backends,
/// each bound to a simnet replica, with the requested mid-run degradation.
serve::ServeReport RunScenario(Degradation degradation, uint64_t seed,
                               double rate = 1500.0,
                               double tenant_skew = 1.0) {
  simnet::Network network(simnet::Link{1e9, 1e-4});
  network.ConfigureReplicas(3);
  switch (degradation) {
    case Degradation::kNone:
      break;
    case Degradation::kReplicaCrash:
      network.ScheduleReplicaCrash(1, 1.0);
      network.ScheduleReplicaRestart(1, 3.0);
      break;
    case Degradation::kMinorityPartition:
      network.SchedulePartition(1.0, {{2}});
      network.ScheduleHeal(3.0);
      break;
  }

  serve::SimulatedBackendOptions backend_options;
  backend_options.seed = seed ^ 0xbacULL;
  std::vector<std::unique_ptr<serve::SimulatedBackend>> backends;
  std::vector<serve::ServeBackend*> backend_ptrs;
  for (size_t r = 0; r < 3; ++r) {
    backends.push_back(std::make_unique<serve::SimulatedBackend>(
        backend_options, &network, r));
    backend_ptrs.push_back(backends.back().get());
  }

  serve::FrontendOptions options;
  options.node_count = 3;
  options.workers_per_node = 4;
  options.tenant_count = 4;
  options.queue.per_tenant_capacity = 32;
  options.breaker.failure_threshold = 4;
  options.breaker.open_seconds = 0.25;
  options.seed = seed ^ 0xf207ULL;
  serve::ServingFrontend frontend(options, backend_ptrs, &network);

  serve::WorkloadSpec spec;
  spec.arrival_rate_per_second = rate;
  spec.horizon_seconds = 5.0;
  spec.deadline_seconds = 0.5;
  spec.tenant_skew = tenant_skew;
  spec.seed = seed;
  serve::WorkloadGenerator workload(spec, options.tenant_count);
  return frontend.Run(workload);
}

TEST(ServingFrontendTest, HealthyRunServesNearlyEverything) {
  const serve::ServeReport report = RunScenario(Degradation::kNone, 42,
                                                /*rate=*/800.0);
  EXPECT_GT(report.counters.arrivals, 3500u);
  EXPECT_EQ(report.counters.admitted + report.counters.shed(),
            report.counters.arrivals);
  // Under capacity: nearly everything is served and nothing trips.
  EXPECT_GT(report.counters.served(),
            report.counters.arrivals * 95 / 100);
  EXPECT_EQ(report.counters.breaker_trips, 0u);
  EXPECT_GT(report.counters.batched, 0u);
  EXPECT_LE(report.latency.Quantile(0.99), 0.5);
}

TEST(ServingFrontendTest, OverloadShedsButKeepsGoodput) {
  // Saturation reference, then 2x the offered load: goodput must hold at
  // >= 80% of the saturation throughput, and admitted requests keep a
  // bounded p99 (the deadline guarantees it: anything later is not
  // "served").
  const serve::ServeReport saturated =
      RunScenario(Degradation::kNone, 42, /*rate=*/3000.0);
  const serve::ServeReport overloaded =
      RunScenario(Degradation::kNone, 42, /*rate=*/6000.0);
  EXPECT_GT(overloaded.counters.shed(), 0u);
  EXPECT_GE(overloaded.goodput_rps, 0.8 * saturated.goodput_rps);
  EXPECT_LE(overloaded.latency.Quantile(0.99), 0.5);
  // Shedding happened at admission (queue bound), not by deadline collapse.
  EXPECT_GT(overloaded.counters.shed_queue_full, 0u);
}

TEST(ServingFrontendTest, HotTenantCannotStarveOthers) {
  // Zipf skew 2.5 at overload: tenant 0 floods the system. DRR + bounded
  // queues must keep every tenant served.
  const serve::ServeReport report = RunScenario(
      Degradation::kNone, 7, /*rate=*/6000.0, /*tenant_skew=*/2.5);
  EXPECT_GT(report.counters.shed(), 0u);
  EXPECT_GT(report.counters.served(), 0u);
  // The hot tenant absorbs the sheds; the run still serves the large
  // majority of admitted requests.
  EXPECT_GE(report.counters.served() * 10,
            report.counters.admitted * 9);
}

TEST(ServingFrontendTest, ReplicaCrashTripsBreakerThenRecovers) {
  const serve::ServeReport report =
      RunScenario(Degradation::kReplicaCrash, FaultSeed());
  EXPECT_GE(report.counters.breaker_trips, 1u);
  EXPECT_GE(report.counters.breaker_probes, 1u);
  EXPECT_GE(report.counters.breaker_recoveries, 1u);
  EXPECT_GT(report.counters.breaker_fast_rejects, 0u);
  EXPECT_GT(report.counters.backend_failures, 0u);
  // The two healthy backends keep serving throughout.
  EXPECT_GT(report.counters.served(), report.counters.arrivals / 2);
}

TEST(ServingFrontendTest, DegradedRunsAreBitIdenticalPerSeed) {
  const std::vector<Degradation> modes = {
      Degradation::kNone, Degradation::kReplicaCrash,
      Degradation::kMinorityPartition};
  const std::vector<uint64_t> seeds = {FaultSeed(), FaultSeed() + 1,
                                       FaultSeed() + 2};
  for (const Degradation mode : modes) {
    for (const uint64_t seed : seeds) {
      const std::string first = RunScenario(mode, seed).Digest();
      const std::string second = RunScenario(mode, seed).Digest();
      EXPECT_EQ(first, second)
          << "mode=" << static_cast<int>(mode) << " seed=" << seed;
    }
    // Different seeds must explore different executions.
    EXPECT_NE(RunScenario(mode, seeds[0]).Digest(),
              RunScenario(mode, seeds[1]).Digest());
  }
}

// ---------------------------------------------------------------------------
// Deadline propagation through the Retrier

TEST(DeadlinePropagationTest, RetrierAbandonsPastRequestDeadline) {
  simnet::Network network(simnet::Link{1e6, 1e-3});
  network.ChargeSeconds(1.0);  // virtual now = 1.0

  simnet::RetryPolicy policy;
  policy.max_attempts = 6;
  simnet::Retrier retrier(policy, &network);

  int attempts = 0;
  {
    // Deadline already behind the clock: the first retryable failure is
    // abandoned instead of retried.
    simnet::Network::DeadlineScope scope(&network, 0.5);
    const Status status = retrier.Run([&]() -> Status {
      ++attempts;
      return Status::Unavailable("backend down");
    });
    EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_EQ(attempts, 1);
    EXPECT_EQ(retrier.request_deadline_abandoned_count(), 1u);
  }

  // Scope closed: the same failure now retries the full ladder.
  attempts = 0;
  const Status status = retrier.Run([&]() -> Status {
    ++attempts;
    return Status::Unavailable("backend down");
  });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(attempts, policy.max_attempts);
}

// ---------------------------------------------------------------------------
// Hedged reads against the replicated file store

struct MiniCluster {
  explicit MiniCluster(size_t n) : network(simnet::Link{1e6, 1e-3}) {
    network.ConfigureReplicas(n);
    std::vector<filestore::RemoteFileStore*> ptrs;
    for (size_t r = 0; r < n; ++r) {
      backends.push_back(std::make_unique<filestore::InMemoryFileStore>());
      auto transport = std::make_unique<filestore::RemoteFileStore>(
          backends.back().get(), &network);
      transport->BindReplica(r);
      ptrs.push_back(transport.get());
      transports.push_back(std::move(transport));
    }
    files = repl::ReplicatedFileStore::Create(ptrs, &network).value();
  }

  simnet::Network network;
  std::vector<std::unique_ptr<filestore::InMemoryFileStore>> backends;
  std::vector<std::unique_ptr<filestore::RemoteFileStore>> transports;
  std::unique_ptr<repl::ReplicatedFileStore> files;
};

TEST(HedgedReadTest, HedgesAroundACrashedPreferredReplica) {
  MiniCluster cluster(3);
  const Bytes payload(4096, 0x5a);
  std::vector<std::string> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(cluster.files->SaveFile(payload).value());
  }
  // Crash one replica: every id preferring it must hedge to its second
  // replica and still serve the right bytes.
  ASSERT_TRUE(cluster.network.CrashReplica(1).ok());
  for (const std::string& id : ids) {
    auto loaded = cluster.files->LoadFileHedged(id, /*threshold=*/0.0);
    ASSERT_TRUE(loaded.ok()) << id;
    EXPECT_EQ(loaded.value(), payload);
  }
  EXPECT_EQ(cluster.files->hedged_read_count(), ids.size());
  EXPECT_GT(cluster.files->hedge_issued_count(), 0u);
  EXPECT_GT(cluster.files->hedge_win_count(), 0u);
}

TEST(HedgedReadTest, SlowPrimaryHedgesOnThreshold) {
  MiniCluster cluster(3);
  const Bytes payload(64 * 1024, 0x11);
  const std::string id = cluster.files->SaveFile(payload).value();
  // Threshold far below the transfer time of 64 KiB at 1 MB/s: the primary
  // read is "slow", so a hedge fires even though the primary succeeds.
  auto loaded = cluster.files->LoadFileHedged(id, /*threshold=*/1e-6);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), payload);
  EXPECT_EQ(cluster.files->hedge_issued_count(), 1u);
  // A healthy run without thresholds never hedges.
  auto again = cluster.files->LoadFileHedged(id, /*threshold=*/0.0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(cluster.files->hedge_issued_count(), 1u);
}

// ---------------------------------------------------------------------------
// CoreBackend: real core services behind the front end

TEST(CoreBackendTest, ServesRealOpsAndReportsThroughServeHook) {
  auto run_digest = [](uint64_t seed, std::string* digest) {
    simnet::Network network(simnet::Link{300e6, 0.2e-3});
    network.ConfigureReplicas(3);
    std::vector<std::unique_ptr<filestore::InMemoryFileStore>> file_backends;
    std::vector<std::unique_ptr<docstore::InMemoryDocumentStore>>
        doc_backends;
    std::vector<std::unique_ptr<filestore::RemoteFileStore>> file_transports;
    std::vector<std::unique_ptr<docstore::RemoteDocumentStore>>
        doc_transports;
    std::vector<filestore::RemoteFileStore*> file_ptrs;
    std::vector<docstore::RemoteDocumentStore*> doc_ptrs;
    for (size_t r = 0; r < 3; ++r) {
      file_backends.push_back(
          std::make_unique<filestore::InMemoryFileStore>());
      doc_backends.push_back(
          std::make_unique<docstore::InMemoryDocumentStore>());
      auto ft = std::make_unique<filestore::RemoteFileStore>(
          file_backends.back().get(), &network);
      ft->BindReplica(r);
      auto dt = std::make_unique<docstore::RemoteDocumentStore>(
          doc_backends.back().get(), &network);
      dt->BindReplica(r);
      file_ptrs.push_back(ft.get());
      doc_ptrs.push_back(dt.get());
      file_transports.push_back(std::move(ft));
      doc_transports.push_back(std::move(dt));
    }
    auto files =
        repl::ReplicatedFileStore::Create(file_ptrs, &network).value();
    auto docs =
        repl::ReplicatedDocumentStore::Create(doc_ptrs, &network).value();

    models::ModelConfig config = models::DefaultConfig(
        models::Architecture::kMobileNetV2);
    config.channel_divisor = 8;
    config.image_size = 28;
    config.num_classes = 10;
    auto model = models::BuildModel(config).value();
    const env::EnvironmentInfo environment = env::CollectEnvironment();

    core::StorageBackends backends{docs.get(), files.get(), &network};
    core::BaselineSaveService save_service(backends);
    core::ModelRecoverer recoverer(backends);

    serve::CoreBackendContext context;
    context.save_service = &save_service;
    context.recoverer = &recoverer;
    context.docs = docs.get();
    context.files = files.get();
    context.network = &network;
    context.model = &model;
    context.environment = &environment;
    context.code = core::CodeDescriptorFor(config);
    context.seed = seed;

    // Pre-save two models so recover/probe/inference have targets.
    for (int i = 0; i < 2; ++i) {
      core::SaveRequest request;
      request.model = &model;
      request.code = context.code;
      request.environment = &environment;
      auto saved = save_service.SaveModel(request);
      ASSERT_TRUE(saved.ok());
      context.model_ids.push_back(saved.value().model_id);
    }
    context.file_ids = files->ListFileIds().value();
    ASSERT_FALSE(context.file_ids.empty());

    serve::CoreBackend backend(context);
    std::vector<serve::ServeBackend*> backend_ptrs = {&backend};

    serve::FrontendOptions options;
    options.node_count = 1;
    options.workers_per_node = 2;
    options.tenant_count = 2;
    options.seed = seed ^ 0xf207ULL;
    serve::ServingFrontend frontend(options, backend_ptrs, &network);

    serve::WorkloadSpec spec;
    spec.arrival_rate_per_second = 40.0;
    spec.horizon_seconds = 2.0;
    spec.deadline_seconds = 0.0;  // core ops are slow; no client deadline
    spec.seed = seed;
    serve::WorkloadGenerator workload(spec, options.tenant_count);
    serve::ServeReport report = frontend.Run(workload);

    EXPECT_GT(report.counters.arrivals, 0u);
    EXPECT_GT(report.counters.served(), 0u);
    // The ServeHook seam saw every save/recover completion.
    EXPECT_GT(backend.hook_reports(), 0u);
    // Fold the hedged-read counters into the report before digesting.
    report.counters.hedged_reads = backend.hedged_reads();
    report.counters.hedge_wins = backend.hedge_wins();
    *digest = report.Digest();
  };

  std::string first;
  std::string second;
  run_digest(11, &first);
  run_digest(11, &second);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace mmlib
