// fixture-path: src/util/fixture_ok.h
#pragma once
struct FixtureOkPragma {};
