# Empty compiler generated dependencies file for filestore_test.
# This may be replaced when dependencies are built.
