#include "serve/workload.h"

#include <cmath>

namespace mmlib::serve {
namespace {

double HashUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

WorkloadGenerator::WorkloadGenerator(const WorkloadSpec& spec,
                                     uint32_t tenant_count)
    : spec_(spec),
      arrivals_(spec.arrival_rate_per_second, spec.seed),
      clients_(spec.client_population, spec.seed ^ 0xc11e57ULL) {
  double acc = 0.0;
  for (int k = 0; k < kRequestKindCount; ++k) {
    acc += spec_.kind_weights[static_cast<size_t>(k)];
    kind_cdf_[static_cast<size_t>(k)] = acc;
  }
  tenant_cdf_.resize(tenant_count);
  acc = 0.0;
  for (uint32_t t = 0; t < tenant_count; ++t) {
    acc += std::pow(static_cast<double>(t) + 1.0, -spec_.tenant_skew);
    tenant_cdf_[t] = acc;
  }
  next_arrival_seconds_ = arrivals_.NextArrivalSeconds();
}

RequestKind WorkloadGenerator::PickKind(uint64_t identity) const {
  const double u =
      HashUnit(simnet::MixHash(identity ^ 0x6b1dULL)) * kind_cdf_.back();
  for (int k = 0; k < kRequestKindCount; ++k) {
    if (u < kind_cdf_[static_cast<size_t>(k)]) {
      return static_cast<RequestKind>(k);
    }
  }
  return RequestKind::kInference;
}

uint32_t WorkloadGenerator::PickTenant(uint64_t identity) const {
  const double u =
      HashUnit(simnet::MixHash(identity ^ 0x7e4aULL)) * tenant_cdf_.back();
  for (uint32_t t = 0; t < tenant_cdf_.size(); ++t) {
    if (u < tenant_cdf_[t]) {
      return t;
    }
  }
  return static_cast<uint32_t>(tenant_cdf_.size() - 1);
}

Request WorkloadGenerator::Next() {
  Request request;
  request.sequence = sequence_;
  request.client = clients_.ClientFor(sequence_);
  request.arrival_seconds = next_arrival_seconds_;
  const uint64_t identity =
      simnet::MixHash(spec_.seed ^ simnet::MixHash(sequence_));
  request.kind = PickKind(identity);
  request.tenant = PickTenant(identity);
  if (spec_.deadline_seconds > 0.0) {
    request.deadline_seconds =
        request.arrival_seconds + spec_.deadline_seconds;
  }
  ++sequence_;
  next_arrival_seconds_ = arrivals_.NextArrivalSeconds();
  return request;
}

}  // namespace mmlib::serve
