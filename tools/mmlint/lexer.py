"""C++ lexer for mmlint.

Produces a token stream with exact line numbers, with comments, string
literals, character literals, raw strings, and preprocessor directives
handled for real — so rules that run on tokens can never fire inside a
comment or a string (the false-positive class the old regex lint could only
approximate by stripping `//...` and one level of quotes per line).

The lexer is deliberately not a full C++ front end: it does not expand
macros or parse declarations. It guarantees:

  * `//` and `/* */` comments never produce code tokens, but their text is
    kept (with line numbers) so `lint:allow(...)` annotations survive;
  * string literals (including raw strings `R"delim(...)delim"` and encoding
    prefixes u8/u/U/L) become single `string` tokens carrying their content;
  * preprocessor directives (with `\\` line continuations) are captured as
    `Directive` records and do not leak tokens into the code stream, so a
    macro *definition* mentioning e.g. MMLIB_CRASH_POINT is not a call site;
  * every token knows its 1-based line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional

# Token kinds.
IDENT = "ident"
NUMBER = "number"
STRING = "string"
CHAR = "char"
PUNCT = "punct"

# Multi-character operators, longest first so greedy matching is correct.
_PUNCTUATORS = (
    "<<=", ">>=", "->*", "...", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=", ".*", "##",
)

_IDENT_START = re.compile(r"[A-Za-z_]")
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUMBER_RE = re.compile(r"(?:\d|\.\d)[0-9a-fA-FxX\.'pP]*(?:[+-]?[0-9]+)?")
_RAW_PREFIX_RE = re.compile(r"(?:u8|u|U|L)?R$")
_ENC_PREFIX_RE = re.compile(r"(?:u8|u|U|L)$")

ALLOW_RE = re.compile(r"lint:allow\(([A-Za-z0-9_-]+)\)")


@dataclass
class Token:
    kind: str
    value: str
    line: int

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, L{self.line})"


@dataclass
class Directive:
    """One preprocessor directive, continuations folded, comments removed."""
    line: int
    text: str  # normalized: starts with '#', single spaces

    @property
    def keyword(self) -> str:
        m = re.match(r"#\s*([A-Za-z_]+)", self.text)
        return m.group(1) if m else ""

    def include_target(self) -> Optional[str]:
        """For #include directives: `<name>` or `"name"` (quotes kept)."""
        m = re.match(r'#\s*include\s*(<[^>]*>|"[^"]*")', self.text)
        return m.group(1) if m else None


@dataclass
class Allow:
    """One `lint:allow(rule-id)` annotation found in a comment."""
    line: int
    rule: str
    used: bool = False


@dataclass
class LexedFile:
    tokens: List[Token] = field(default_factory=list)
    directives: List[Directive] = field(default_factory=list)
    allows: List[Allow] = field(default_factory=list)
    comments: List[Token] = field(default_factory=list)  # kind is "comment"


class _Scanner:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.n = len(text)

    def peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.text[i] if i < self.n else ""

    def advance(self, count: int = 1) -> str:
        chunk = self.text[self.pos:self.pos + count]
        self.line += chunk.count("\n")
        self.pos += count
        return chunk

    def at_end(self) -> bool:
        return self.pos >= self.n


def lex(text: str) -> LexedFile:
    out = LexedFile()
    s = _Scanner(text)
    at_line_start = True  # only whitespace seen since the last newline

    while not s.at_end():
        c = s.peek()

        # Whitespace.
        if c in " \t\r\v\f":
            s.advance()
            continue
        if c == "\n":
            s.advance()
            at_line_start = True
            continue

        # Comments.
        if c == "/" and s.peek(1) == "/":
            start_line = s.line
            start = s.pos
            while not s.at_end() and s.peek() != "\n":
                s.advance()
            _record_comment(out, s.text[start:s.pos], start_line)
            continue
        if c == "/" and s.peek(1) == "*":
            start_line = s.line
            start = s.pos
            s.advance(2)
            while not s.at_end() and not (s.peek() == "*" and s.peek(1) == "/"):
                s.advance()
            s.advance(2)
            _record_comment(out, s.text[start:s.pos], start_line)
            continue

        # Preprocessor directive (only at start of line).
        if c == "#" and at_line_start:
            out.directives.append(_lex_directive(s, out))
            at_line_start = True
            continue
        at_line_start = False

        # String / char literals (with optional encoding or raw prefix).
        if c == '"':
            out.tokens.append(_lex_string(s, raw=False))
            continue
        if c == "'":
            out.tokens.append(_lex_char(s))
            continue

        # Identifier (may be a raw/encoding prefix glued to a literal).
        if _IDENT_START.match(c):
            start_line = s.line
            m = _IDENT_RE.match(s.text, s.pos)
            word = m.group(0)
            nxt = s.text[m.end():m.end() + 1]
            if nxt == '"' and _RAW_PREFIX_RE.search(word) and word in (
                    "R", "u8R", "uR", "UR", "LR"):
                s.advance(len(word))
                out.tokens.append(_lex_string(s, raw=True))
                continue
            if nxt in "\"'" and _ENC_PREFIX_RE.fullmatch(word):
                s.advance(len(word))
                if s.peek() == '"':
                    out.tokens.append(_lex_string(s, raw=False))
                else:
                    out.tokens.append(_lex_char(s))
                continue
            s.advance(len(word))
            out.tokens.append(Token(IDENT, word, start_line))
            continue

        # Number.
        if c.isdigit() or (c == "." and s.peek(1).isdigit()):
            start_line = s.line
            m = _NUMBER_RE.match(s.text, s.pos)
            s.advance(len(m.group(0)))
            out.tokens.append(Token(NUMBER, m.group(0), start_line))
            continue

        # Punctuation, longest match first.
        for op in _PUNCTUATORS:
            if s.text.startswith(op, s.pos):
                out.tokens.append(Token(PUNCT, op, s.line))
                s.advance(len(op))
                break
        else:
            out.tokens.append(Token(PUNCT, c, s.line))
            s.advance()

    return out


def _record_comment(out: LexedFile, comment_text: str, line: int) -> None:
    out.comments.append(Token("comment", comment_text, line))
    for m in ALLOW_RE.finditer(comment_text):
        # Annotations in a multi-line block comment attach to the line the
        # annotation itself sits on.
        extra = comment_text.count("\n", 0, m.start())
        out.allows.append(Allow(line=line + extra, rule=m.group(1)))


def _lex_directive(s: _Scanner, out: LexedFile) -> Directive:
    start_line = s.line
    parts: List[str] = []
    while not s.at_end():
        c = s.peek()
        if c == "\n":
            break
        if c == "\\" and s.peek(1) == "\n":
            s.advance(2)
            parts.append(" ")
            continue
        if c == "/" and s.peek(1) == "/":
            start = s.pos
            comment_line = s.line
            while not s.at_end() and s.peek() != "\n":
                s.advance()
            _record_comment(out, s.text[start:s.pos], comment_line)
            break
        if c == "/" and s.peek(1) == "*":
            start = s.pos
            comment_line = s.line
            s.advance(2)
            while not s.at_end() and not (s.peek() == "*" and s.peek(1) == "/"):
                s.advance()
            s.advance(2)
            _record_comment(out, s.text[start:s.pos], comment_line)
            parts.append(" ")
            continue
        parts.append(s.advance())
    text = re.sub(r"\s+", " ", "".join(parts)).strip()
    return Directive(line=start_line, text=text)


def _lex_string(s: _Scanner, raw: bool) -> Token:
    start_line = s.line
    if raw:
        # R"delim( ... )delim"
        s.advance()  # opening quote
        delim = []
        while not s.at_end() and s.peek() != "(":
            delim.append(s.advance())
        s.advance()  # '('
        closer = ")" + "".join(delim) + '"'
        start = s.pos
        idx = s.text.find(closer, s.pos)
        if idx < 0:
            idx = s.n
        content = s.text[start:idx]
        s.advance(idx - s.pos + len(closer) if idx < s.n else s.n - s.pos)
        return Token(STRING, content, start_line)
    s.advance()  # opening quote
    content = []
    while not s.at_end():
        c = s.peek()
        if c == "\\":
            content.append(s.advance(2))
            continue
        if c == '"' or c == "\n":
            break
        content.append(s.advance())
    if s.peek() == '"':
        s.advance()
    return Token(STRING, "".join(content), start_line)


def _lex_char(s: _Scanner) -> Token:
    start_line = s.line
    s.advance()  # opening quote
    content = []
    while not s.at_end():
        c = s.peek()
        if c == "\\":
            content.append(s.advance(2))
            continue
        if c == "'" or c == "\n":
            break
        content.append(s.advance())
    if s.peek() == "'":
        s.advance()
    return Token(CHAR, "".join(content), start_line)
