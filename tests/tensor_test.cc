#include <gtest/gtest.h>

#include <cmath>

#include "tensor/tensor.h"

namespace mmlib {
namespace {

TEST(ShapeTest, Basics) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s.dim(1), 3);
  EXPECT_EQ(s.ToString(), "[2, 3, 4]");
  EXPECT_EQ(Shape{}.numel(), 1);  // scalar
  EXPECT_TRUE(s == (Shape{2, 3, 4}));
  EXPECT_TRUE(s != (Shape{2, 3, 5}));
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t(Shape{3, 3});
  EXPECT_EQ(t.numel(), 9);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(t.at(i), 0.0f);
  }
  EXPECT_EQ(t.byte_size(), 36u);
}

TEST(TensorTest, FullAndFill) {
  Tensor t = Tensor::Full(Shape{4}, 2.5f);
  EXPECT_EQ(t.at(3), 2.5f);
  t.Fill(-1.0f);
  EXPECT_EQ(t.at(0), -1.0f);
}

TEST(TensorTest, UniformRespectsRangeAndSeed) {
  Rng rng1(5);
  Rng rng2(5);
  Tensor a = Tensor::Uniform(Shape{1000}, -2.0f, 3.0f, &rng1);
  Tensor b = Tensor::Uniform(Shape{1000}, -2.0f, 3.0f, &rng2);
  EXPECT_TRUE(a.Equals(b));
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_GE(a.at(i), -2.0f);
    EXPECT_LT(a.at(i), 3.0f);
  }
}

TEST(TensorTest, ElementwiseOps) {
  Tensor a(Shape{3}, {1, 2, 3});
  Tensor b(Shape{3}, {10, 20, 30});
  a.AddInPlace(b);
  EXPECT_EQ(a.at(2), 33.0f);
  a.SubInPlace(b);
  EXPECT_EQ(a.at(2), 3.0f);
  a.MulScalarInPlace(2.0f);
  EXPECT_EQ(a.at(0), 2.0f);
  a.AddScaledInPlace(b, 0.1f);
  EXPECT_NEAR(a.at(1), 4.0f + 2.0f, 1e-6f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  auto r = t.Reshape(Shape{3, 2});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->shape(), (Shape{3, 2}));
  EXPECT_EQ(r->at(5), 6.0f);
  EXPECT_FALSE(t.Reshape(Shape{4, 2}).ok());
}

TEST(TensorTest, EqualsIsExact) {
  Tensor a(Shape{2}, {1.0f, 2.0f});
  Tensor b(Shape{2}, {1.0f, 2.0f});
  EXPECT_TRUE(a.Equals(b));
  b.at(1) = std::nextafter(2.0f, 3.0f);
  EXPECT_FALSE(a.Equals(b));
  EXPECT_TRUE(a.AllClose(b, 1e-5f));
  EXPECT_GT(a.MaxAbsDiff(b), 0.0f);
}

TEST(TensorTest, EqualsRequiresSameShape) {
  Tensor a(Shape{4});
  Tensor b(Shape{2, 2});
  EXPECT_FALSE(a.Equals(b));
  EXPECT_FALSE(a.AllClose(b, 1.0f));
}

TEST(TensorTest, ContentHashSensitivity) {
  Tensor a(Shape{2, 2}, {1, 2, 3, 4});
  Tensor b(Shape{2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(a.ContentHash(), b.ContentHash());
  b.at(0) = 1.0001f;
  EXPECT_NE(a.ContentHash(), b.ContentHash());
  // Same data, different shape hashes differently.
  Tensor c = a.Reshape(Shape{4}).value();
  EXPECT_NE(a.ContentHash(), c.ContentHash());
}

TEST(TensorTest, SerializeRoundtrip) {
  Rng rng(9);
  Tensor t = Tensor::Gaussian(Shape{3, 5, 7}, 1.0f, &rng);
  auto restored = Tensor::Deserialize(t.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->Equals(t));
}

TEST(TensorTest, DeserializeRejectsCorruption) {
  Tensor t(Shape{4}, {1, 2, 3, 4});
  Bytes data = t.Serialize();
  Bytes truncated(data.begin(), data.end() - 4);
  EXPECT_FALSE(Tensor::Deserialize(truncated).ok());
  Bytes trailing = data;
  trailing.push_back(0);
  EXPECT_FALSE(Tensor::Deserialize(trailing).ok());
}

TEST(TensorTest, DeserializeRejectsShapeMismatch) {
  Tensor t(Shape{4}, {1, 2, 3, 4});
  Bytes data = t.Serialize();
  // Corrupt the element count (after rank u64 + one dim i64).
  data[16] = 0x09;
  EXPECT_FALSE(Tensor::Deserialize(data).ok());
}

TEST(TensorTest, EmptyTensorSerializes) {
  Tensor t;
  auto restored = Tensor::Deserialize(t.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->numel(), 0);
}

// --- Reductions (paper Figure 2 and Section 4.5) ---

TEST(ReductionTest, SerialAndParallelDotAgreeApproximately) {
  Rng rng(11);
  std::vector<float> a(10000);
  std::vector<float> b(10000);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.NextUniform(-1.0f, 1.0f);
    b[i] = rng.NextUniform(-1.0f, 1.0f);
  }
  const float serial = DotSerial(a.data(), b.data(), a.size());
  const float parallel = DotParallel(a.data(), b.data(), a.size(), 8);
  EXPECT_NEAR(serial, parallel, 0.05f);
}

TEST(ReductionTest, AssociationOrderChangesFloatResult) {
  // Paper Figure 2: the serial and parallel methods produce similar but
  // different results. Find at least one input where they differ exactly.
  bool found_difference = false;
  for (uint64_t seed = 0; seed < 20 && !found_difference; ++seed) {
    Rng rng(seed);
    std::vector<float> a(4096);
    std::vector<float> b(4096);
    for (size_t i = 0; i < a.size(); ++i) {
      a[i] = rng.NextUniform(-10.0f, 10.0f);
      b[i] = rng.NextUniform(-10.0f, 10.0f);
    }
    const float serial = DotSerial(a.data(), b.data(), a.size());
    const float parallel = DotParallel(a.data(), b.data(), a.size(), 16);
    if (serial != parallel) {
      found_difference = true;
    }
  }
  EXPECT_TRUE(found_difference);
}

TEST(ReductionTest, ChunkCombineOrderMatters) {
  Rng rng(13);
  std::vector<float> a(1 << 14);
  std::vector<float> b(1 << 14);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.NextUniform(-100.0f, 100.0f);
    b[i] = rng.NextUniform(-100.0f, 100.0f);
  }
  std::vector<size_t> forward(16);
  std::vector<size_t> reverse(16);
  for (size_t i = 0; i < 16; ++i) {
    forward[i] = i;
    reverse[i] = 15 - i;
  }
  const float f =
      DotChunkedOrdered(a.data(), b.data(), a.size(), 16, forward);
  const float r =
      DotChunkedOrdered(a.data(), b.data(), a.size(), 16, reverse);
  // Different association order; values are close but typically not equal.
  EXPECT_NEAR(f, r, std::abs(f) * 1e-4f + 1.0f);
}

TEST(ReductionTest, KahanIsMoreAccurateThanSerial) {
  // Sum many small values onto a large one: serial summation loses them.
  std::vector<float> values;
  values.push_back(1e8f);
  for (int i = 0; i < 10000; ++i) {
    values.push_back(0.1f);
  }
  const double exact = 1e8 + 10000 * 0.1;
  const float serial = SumSerial(values.data(), values.size());
  const float kahan = SumKahan(values.data(), values.size());
  EXPECT_LT(std::abs(kahan - exact), std::abs(serial - exact));
  EXPECT_NEAR(kahan, exact, 16.0);
}

TEST(ReductionTest, EdgeCases) {
  EXPECT_EQ(DotSerial(nullptr, nullptr, 0), 0.0f);
  EXPECT_EQ(SumSerial(nullptr, 0), 0.0f);
  EXPECT_EQ(SumKahan(nullptr, 0), 0.0f);
  float one = 2.0f;
  float two = 3.0f;
  EXPECT_EQ(DotParallel(&one, &two, 1, 4), 6.0f);
}

}  // namespace
}  // namespace mmlib
