#include "util/fs.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "util/crash_point.h"
#include "util/strings.h"

namespace mmlib::util {

namespace {

std::atomic<bool> g_sync_durability{true};

std::string ParentDirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return ".";
  }
  if (slash == 0) {
    return "/";
  }
  return path.substr(0, slash);
}

template <typename Iterator>
size_t AccumulateWithSuffix(const std::string& dir, const std::string& suffix,
                            bool count_only) {
  size_t total = 0;
  std::error_code ec;
  for (const auto& entry : Iterator(dir, ec)) {
    std::error_code entry_ec;
    if (!entry.is_regular_file(entry_ec)) {
      continue;
    }
    if (!EndsWith(entry.path().filename().string(), suffix)) {
      continue;
    }
    total += count_only ? 1 : entry.file_size(entry_ec);
  }
  return total;
}

}  // namespace

void set_sync_durability_enabled(bool enabled) {
  g_sync_durability.store(enabled, std::memory_order_relaxed);
}

bool sync_durability_enabled() {
  return g_sync_durability.load(std::memory_order_relaxed);
}

Status SyncDir(const std::string& dir) {
  if (!sync_durability_enabled()) {
    return Status::OK();
  }
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IoError("cannot open directory " + dir +
                           " for sync: " + std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::IoError("cannot sync directory " + dir + ": " +
                           std::strerror(saved_errno));
  }
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, const uint8_t* data,
                       size_t size) {
  const std::string tmp_path = path + kTmpSuffix;
  auto discard_tmp = [&tmp_path]() {
    std::error_code ec;
    std::filesystem::remove(tmp_path, ec);
  };

  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                        0644);
  if (fd < 0) {
    return Status::IoError("cannot open " + tmp_path +
                           " for writing: " + std::strerror(errno));
  }
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      const std::string error = std::strerror(errno);
      ::close(fd);
      discard_tmp();
      return Status::IoError("failed writing " + tmp_path + ": " + error);
    }
    written += static_cast<size_t>(n);
  }
  // The content must be on disk before the rename publishes it; otherwise a
  // crash can expose a named but empty (or torn) destination.
  if (sync_durability_enabled() && ::fsync(fd) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    discard_tmp();
    return Status::IoError("cannot sync " + tmp_path + ": " + error);
  }
  if (::close(fd) != 0) {
    discard_tmp();
    return Status::IoError("cannot close " + tmp_path + ": " +
                           std::strerror(errno));
  }

  MMLIB_CRASH_POINT("fs.atomic.before_rename");

  std::error_code ec;
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    discard_tmp();
    return Status::IoError("cannot rename " + tmp_path + " into place: " +
                           ec.message());
  }

  // Simulated "lost rename": the in-memory rename succeeded but the process
  // dies before the directory entry is durable, so after the crash the
  // destination does not exist. Modeled by removing the destination before
  // unwinding — exactly the state a cold restart would find without the
  // SyncDir barrier below.
  {
    static const bool registered =
        CrashPoint::Register("fs.atomic.rename_lost");
    (void)registered;
    if (CrashPoint::Fires("fs.atomic.rename_lost")) {
      std::error_code remove_ec;
      std::filesystem::remove(path, remove_ec);
      throw CrashException("fs.atomic.rename_lost");
    }
  }

  return SyncDir(ParentDirOf(path));
}

Status RemoveFileStrict(const std::string& path, const std::string& what) {
  std::error_code ec;
  const bool removed = std::filesystem::remove(path, ec);
  if (ec) {
    return Status::IoError("cannot remove " + what + ": " + ec.message());
  }
  if (!removed) {
    return Status::NotFound("no " + what);
  }
  return Status::OK();
}

size_t CountFilesWithSuffix(const std::string& dir, const std::string& suffix,
                            bool recursive) {
  return recursive
             ? AccumulateWithSuffix<std::filesystem::recursive_directory_iterator>(
                   dir, suffix, /*count_only=*/true)
             : AccumulateWithSuffix<std::filesystem::directory_iterator>(
                   dir, suffix, /*count_only=*/true);
}

size_t TotalBytesWithSuffix(const std::string& dir, const std::string& suffix,
                            bool recursive) {
  return recursive
             ? AccumulateWithSuffix<std::filesystem::recursive_directory_iterator>(
                   dir, suffix, /*count_only=*/false)
             : AccumulateWithSuffix<std::filesystem::directory_iterator>(
                   dir, suffix, /*count_only=*/false);
}

}  // namespace mmlib::util
