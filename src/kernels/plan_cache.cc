#include "kernels/plan_cache.h"

#include <algorithm>

namespace mmlib::kernels {

PlanCache& PlanCache::Instance() {
  static PlanCache* cache = new PlanCache();
  return *cache;
}

std::shared_ptr<const ConvPlan> PlanCache::GetConvPlan(const ConvGeom& geom) {
  const ConvKey key{geom.batch,   geom.in_channels, geom.out_channels,
                    geom.kernel,  geom.stride,      geom.padding,
                    geom.groups,  geom.height,      geom.width};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = conv_plans_.find(key);
  if (it != conv_plans_.end()) {
    ++stats_.conv_hits;
    it->second.last_use = ++use_tick_;
    return it->second.plan;
  }
  ++stats_.conv_misses;
  auto plan = std::make_shared<const ConvPlan>(geom);
  conv_plans_.emplace(key, Entry<ConvPlan>{plan, ++use_tick_});
  EvictLocked();
  return plan;
}

std::shared_ptr<const LinearPlan> PlanCache::GetLinearPlan(
    int64_t batch, int64_t in_features, int64_t out_features) {
  const LinearKey key{batch, in_features, out_features};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = linear_plans_.find(key);
  if (it != linear_plans_.end()) {
    ++stats_.linear_hits;
    it->second.last_use = ++use_tick_;
    return it->second.plan;
  }
  ++stats_.linear_misses;
  auto plan = std::make_shared<const LinearPlan>(batch, in_features,
                                                 out_features);
  linear_plans_.emplace(key, Entry<LinearPlan>{plan, ++use_tick_});
  EvictLocked();
  return plan;
}

void PlanCache::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<size_t>(capacity, 1);
  EvictLocked();
}

size_t PlanCache::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void PlanCache::EvictLocked() {
  // LRU by use tick. Ticks are assigned in lookup order under mu_, so the
  // eviction victim is a pure function of the Get call sequence — identical
  // across runs, pool sizes, and platforms.
  while (conv_plans_.size() + linear_plans_.size() > capacity_) {
    auto conv_victim = conv_plans_.end();
    for (auto it = conv_plans_.begin(); it != conv_plans_.end(); ++it) {
      if (conv_victim == conv_plans_.end() ||
          it->second.last_use < conv_victim->second.last_use) {
        conv_victim = it;
      }
    }
    auto linear_victim = linear_plans_.end();
    for (auto it = linear_plans_.begin(); it != linear_plans_.end(); ++it) {
      if (linear_victim == linear_plans_.end() ||
          it->second.last_use < linear_victim->second.last_use) {
        linear_victim = it;
      }
    }
    const uint64_t conv_tick = conv_victim != conv_plans_.end()
                                   ? conv_victim->second.last_use
                                   : UINT64_MAX;
    const uint64_t linear_tick = linear_victim != linear_plans_.end()
                                     ? linear_victim->second.last_use
                                     : UINT64_MAX;
    if (conv_tick <= linear_tick) {
      conv_plans_.erase(conv_victim);
    } else {
      linear_plans_.erase(linear_victim);
    }
    ++stats_.evictions;
  }
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.size = conv_plans_.size() + linear_plans_.size();
  return s;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  conv_plans_.clear();
  linear_plans_.clear();
  capacity_ = kDefaultCapacity;
  use_tick_ = 0;
  stats_ = Stats{};
}

}  // namespace mmlib::kernels
