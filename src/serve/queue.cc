#include "serve/queue.h"

#include <cstddef>

namespace mmlib::serve {

TenantQueues::TenantQueues(uint32_t tenant_count, const QueueOptions& options)
    : options_(options),
      queues_(tenant_count),
      deficits_(tenant_count, 0) {}

bool TenantQueues::Admit(const Request& request) {
  std::deque<Request>& queue = queues_[request.tenant];
  if (queue.size() >= options_.per_tenant_capacity) {
    return false;
  }
  queue.push_back(request);
  return true;
}

bool TenantQueues::PopNext(Request* out) {
  const uint32_t n = tenant_count();
  // Two sweeps: one to spend existing deficits plus one refill each; a
  // second because the first non-empty queue after the cursor may need the
  // refill the first sweep already granted to tenants before it.
  for (uint32_t step = 0; step < 2 * n; ++step) {
    const uint32_t t = cursor_;
    std::deque<Request>& queue = queues_[t];
    if (queue.empty()) {
      // An idle tenant banks no deficit; DRR fairness is about backlogged
      // tenants only.
      deficits_[t] = 0;
      cursor_ = (cursor_ + 1) % n;
      continue;
    }
    if (deficits_[t] == 0) {
      deficits_[t] = options_.drr_quantum;
    }
    --deficits_[t];
    *out = queue.front();
    queue.pop_front();
    if (deficits_[t] == 0 || queue.empty()) {
      cursor_ = (cursor_ + 1) % n;
      if (queue.empty()) {
        deficits_[t] = 0;
      }
    }
    return true;
  }
  return false;
}

std::vector<Request> TenantQueues::ExpireBefore(double now_seconds) {
  std::vector<Request> expired;
  for (std::deque<Request>& queue : queues_) {
    for (size_t i = 0; i < queue.size();) {
      if (queue[i].deadline_seconds > 0.0 &&
          queue[i].deadline_seconds <= now_seconds) {
        expired.push_back(queue[i]);
        queue.erase(queue.begin() + static_cast<ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
  return expired;
}

size_t TenantQueues::TotalQueued() const {
  size_t total = 0;
  for (const std::deque<Request>& queue : queues_) {
    total += queue.size();
  }
  return total;
}

}  // namespace mmlib::serve
