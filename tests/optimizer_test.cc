#include <gtest/gtest.h>

#include <memory>

#include "nn/adam.h"
#include "nn/linear.h"
#include "nn/model.h"
#include "nn/optimizer.h"

namespace mmlib::nn {
namespace {

Model MakeTinyModel(uint64_t seed = 1) {
  Model model("tiny");
  Rng rng(seed);
  model.AddSequential(std::make_unique<Linear>("fc", 2, 2, &rng));
  return model;
}

void SetGradients(Model* model, float value) {
  for (size_t i = 0; i < model->node_count(); ++i) {
    for (Param& p : model->layer(i)->params()) {
      p.grad.Fill(value);
    }
  }
}

TEST(SgdTest, PlainStepSubtractsScaledGradient) {
  Model model = MakeTinyModel();
  SgdOptions options;
  options.learning_rate = 0.5f;
  options.momentum = 0.0f;
  SgdOptimizer optimizer(&model, options);

  const float before = model.layer(0)->params()[0].value.at(0);
  SetGradients(&model, 2.0f);
  optimizer.Step();
  EXPECT_FLOAT_EQ(model.layer(0)->params()[0].value.at(0), before - 1.0f);
}

TEST(SgdTest, MomentumAccumulates) {
  Model model = MakeTinyModel();
  SgdOptions options;
  options.learning_rate = 1.0f;
  options.momentum = 0.5f;
  SgdOptimizer optimizer(&model, options);

  const float before = model.layer(0)->params()[0].value.at(0);
  SetGradients(&model, 1.0f);
  optimizer.Step();  // velocity = 1, value -= 1
  SetGradients(&model, 1.0f);
  optimizer.Step();  // velocity = 1.5, value -= 1.5
  EXPECT_FLOAT_EQ(model.layer(0)->params()[0].value.at(0), before - 2.5f);
}

TEST(SgdTest, WeightDecayPullsTowardZero) {
  Model model = MakeTinyModel();
  model.layer(0)->params()[0].value.Fill(10.0f);
  SgdOptions options;
  options.learning_rate = 0.1f;
  options.momentum = 0.0f;
  options.weight_decay = 0.5f;
  SgdOptimizer optimizer(&model, options);
  SetGradients(&model, 0.0f);
  optimizer.Step();
  // g = 0 + 0.5 * 10 = 5; value = 10 - 0.1 * 5 = 9.5.
  EXPECT_FLOAT_EQ(model.layer(0)->params()[0].value.at(0), 9.5f);
}

TEST(SgdTest, FrozenParamsAreNotUpdated) {
  Model model = MakeTinyModel();
  model.SetTrainableAll(false);
  SgdOptimizer optimizer(&model, SgdOptions{});
  const Digest before = model.ParamsHash();
  SetGradients(&model, 3.0f);
  optimizer.Step();
  EXPECT_EQ(model.ParamsHash(), before);
}

TEST(SgdTest, StateRoundtripWithMomentum) {
  Model model = MakeTinyModel();
  SgdOptions options;
  options.momentum = 0.9f;
  SgdOptimizer optimizer(&model, options);
  SetGradients(&model, 1.0f);
  optimizer.Step();
  const Bytes state = optimizer.SerializeState();

  // Fresh optimizer over an identical model: restoring the state must make
  // the next step identical.
  Model twin = MakeTinyModel();
  ASSERT_TRUE(twin.LoadParams(model.SerializeParams()).ok());
  SgdOptimizer restored(&twin, options);
  ASSERT_TRUE(restored.LoadState(state).ok());

  SetGradients(&model, 0.5f);
  optimizer.Step();
  SetGradients(&twin, 0.5f);
  restored.Step();
  EXPECT_EQ(model.ParamsHash(), twin.ParamsHash());
}

TEST(SgdTest, MomentumFreeStateIsSmall) {
  Model model = MakeTinyModel();
  SgdOptions with;
  with.momentum = 0.9f;
  SgdOptions without;
  without.momentum = 0.0f;
  SgdOptimizer a(&model, with);
  SgdOptimizer b(&model, without);
  // Without momentum SGD is stateless; the state file omits the velocity
  // buffers (this keeps MPA provenance dataset-dominated, see dist/flow.h).
  EXPECT_GT(a.SerializeState().size(), b.SerializeState().size());
}

TEST(SgdTest, LoadStateRejectsMismatchedModel) {
  Model model = MakeTinyModel();
  SgdOptimizer optimizer(&model, SgdOptions{});
  const Bytes state = optimizer.SerializeState();

  Model bigger("bigger");
  Rng rng(2);
  bigger.AddSequential(std::make_unique<Linear>("fc", 3, 3, &rng));
  SgdOptimizer other(&bigger, SgdOptions{});
  EXPECT_FALSE(other.LoadState(state).ok());
}

TEST(SgdTest, LoadStateRejectsCorruption) {
  Model model = MakeTinyModel();
  SgdOptions options;
  options.momentum = 0.9f;
  SgdOptimizer optimizer(&model, options);
  Bytes state = optimizer.SerializeState();
  state.resize(state.size() / 2);
  EXPECT_FALSE(optimizer.LoadState(state).ok());
}

TEST(SgdTest, DescribeConfigMentionsHyperparameters) {
  Model model = MakeTinyModel();
  SgdOptions options;
  options.learning_rate = 0.25f;
  SgdOptimizer optimizer(&model, options);
  const std::string description = optimizer.DescribeConfig();
  EXPECT_NE(description.find("0.25"), std::string::npos);
  EXPECT_NE(description.find("SGD"), std::string::npos);
}

TEST(SgdTest, ZeroGradDelegatesToModel) {
  Model model = MakeTinyModel();
  SgdOptimizer optimizer(&model, SgdOptions{});
  SetGradients(&model, 5.0f);
  optimizer.ZeroGrad();
  EXPECT_EQ(model.layer(0)->params()[0].grad.at(0), 0.0f);
}

// --- Adam ---

TEST(AdamTest, FirstStepMovesByLearningRate) {
  // With bias correction, the very first Adam step is approximately
  // -lr * sign(grad) regardless of gradient magnitude.
  Model model = MakeTinyModel();
  AdamOptions options;
  options.learning_rate = 0.1f;
  AdamOptimizer optimizer(&model, options);
  const float before = model.layer(0)->params()[0].value.at(0);
  SetGradients(&model, 3.0f);
  optimizer.Step();
  EXPECT_NEAR(model.layer(0)->params()[0].value.at(0), before - 0.1f, 1e-4f);
  EXPECT_EQ(optimizer.step_count(), 1);
}

TEST(AdamTest, NegativeGradientMovesUp) {
  Model model = MakeTinyModel();
  AdamOptions options;
  options.learning_rate = 0.1f;
  AdamOptimizer optimizer(&model, options);
  const float before = model.layer(0)->params()[0].value.at(0);
  SetGradients(&model, -2.0f);
  optimizer.Step();
  EXPECT_NEAR(model.layer(0)->params()[0].value.at(0), before + 0.1f, 1e-4f);
}

TEST(AdamTest, StateRoundtripReproducesTrajectory) {
  Model model = MakeTinyModel();
  AdamOptions options;
  AdamOptimizer optimizer(&model, options);
  SetGradients(&model, 1.0f);
  optimizer.Step();
  SetGradients(&model, -0.5f);
  optimizer.Step();
  const Bytes state = optimizer.SerializeState();

  Model twin = MakeTinyModel();
  ASSERT_TRUE(twin.LoadParams(model.SerializeParams()).ok());
  AdamOptimizer restored(&twin, options);
  ASSERT_TRUE(restored.LoadState(state).ok());
  EXPECT_EQ(restored.step_count(), 2);

  SetGradients(&model, 2.0f);
  optimizer.Step();
  SetGradients(&twin, 2.0f);
  restored.Step();
  EXPECT_EQ(model.ParamsHash(), twin.ParamsHash());
}

TEST(AdamTest, FreshOptimizerDivergesWithoutState) {
  // Adam is always stateful: replaying a step with a fresh optimizer (no
  // state restored) gives a different result.
  Model model = MakeTinyModel();
  AdamOptimizer optimizer(&model, AdamOptions{});
  SetGradients(&model, 1.0f);
  optimizer.Step();
  const Bytes snapshot = model.SerializeParams();
  SetGradients(&model, 2.0f);
  optimizer.Step();
  const Digest with_state = model.ParamsHash();

  Model twin = MakeTinyModel();
  ASSERT_TRUE(twin.LoadParams(snapshot).ok());
  AdamOptimizer fresh(&twin, AdamOptions{});
  SetGradients(&twin, 2.0f);
  fresh.Step();
  EXPECT_NE(twin.ParamsHash(), with_state);
}

TEST(AdamTest, LoadStateRejectsMismatchedModel) {
  Model model = MakeTinyModel();
  AdamOptimizer optimizer(&model, AdamOptions{});
  const Bytes state = optimizer.SerializeState();

  Model bigger("bigger");
  Rng rng(3);
  bigger.AddSequential(std::make_unique<Linear>("fc", 3, 3, &rng));
  AdamOptimizer other(&bigger, AdamOptions{});
  EXPECT_FALSE(other.LoadState(state).ok());
}

TEST(AdamTest, LoadStateRejectsCorruption) {
  Model model = MakeTinyModel();
  AdamOptimizer optimizer(&model, AdamOptions{});
  Bytes state = optimizer.SerializeState();
  state.resize(state.size() - 8);
  EXPECT_FALSE(optimizer.LoadState(state).ok());
}

TEST(AdamTest, FrozenParamsAreNotUpdated) {
  Model model = MakeTinyModel();
  model.SetTrainableAll(false);
  AdamOptimizer optimizer(&model, AdamOptions{});
  const Digest before = model.ParamsHash();
  SetGradients(&model, 3.0f);
  optimizer.Step();
  EXPECT_EQ(model.ParamsHash(), before);
}

TEST(AdamTest, DescribeConfigMentionsHyperparameters) {
  Model model = MakeTinyModel();
  AdamOptions options;
  options.learning_rate = 0.005f;
  AdamOptimizer optimizer(&model, options);
  const std::string description = optimizer.DescribeConfig();
  EXPECT_NE(description.find("Adam"), std::string::npos);
  EXPECT_NE(description.find("0.005"), std::string::npos);
}

TEST(OptimizerInterfaceTest, PolymorphicUse) {
  Model model = MakeTinyModel();
  std::vector<std::unique_ptr<Optimizer>> optimizers;
  optimizers.push_back(std::make_unique<SgdOptimizer>(&model, SgdOptions{}));
  optimizers.push_back(
      std::make_unique<AdamOptimizer>(&model, AdamOptions{}));
  for (auto& optimizer : optimizers) {
    SetGradients(&model, 1.0f);
    optimizer->Step();
    EXPECT_FALSE(optimizer->DescribeConfig().empty());
    EXPECT_FALSE(optimizer->SerializeState().empty());
  }
}

}  // namespace
}  // namespace mmlib::nn
