#include "env/environment.h"

#include <sys/utsname.h>

#include <cstdio>
#include <fstream>
#include <thread>

#include "util/strings.h"

namespace mmlib::env {

bool EnvironmentInfo::operator==(const EnvironmentInfo& other) const {
  return framework_version == other.framework_version &&
         compiler == other.compiler && cxx_standard == other.cxx_standard &&
         os_name == other.os_name && os_release == other.os_release &&
         machine == other.machine && cpu_model == other.cpu_model &&
         cpu_cores == other.cpu_cores && libraries == other.libraries;
}

json::Value EnvironmentInfo::ToJson() const {
  json::Value doc = json::Value::MakeObject();
  doc.Set("framework_version", framework_version);
  doc.Set("compiler", compiler);
  doc.Set("cxx_standard", cxx_standard);
  doc.Set("os_name", os_name);
  doc.Set("os_release", os_release);
  doc.Set("machine", machine);
  doc.Set("cpu_model", cpu_model);
  doc.Set("cpu_cores", cpu_cores);
  json::Value libs = json::Value::MakeObject();
  for (const auto& [name, version] : libraries) {
    libs.Set(name, version);
  }
  doc.Set("libraries", std::move(libs));
  return doc;
}

Result<EnvironmentInfo> EnvironmentInfo::FromJson(const json::Value& doc) {
  EnvironmentInfo info;
  MMLIB_ASSIGN_OR_RETURN(info.framework_version,
                         doc.GetString("framework_version"));
  MMLIB_ASSIGN_OR_RETURN(info.compiler, doc.GetString("compiler"));
  MMLIB_ASSIGN_OR_RETURN(info.cxx_standard, doc.GetString("cxx_standard"));
  MMLIB_ASSIGN_OR_RETURN(info.os_name, doc.GetString("os_name"));
  MMLIB_ASSIGN_OR_RETURN(info.os_release, doc.GetString("os_release"));
  MMLIB_ASSIGN_OR_RETURN(info.machine, doc.GetString("machine"));
  MMLIB_ASSIGN_OR_RETURN(info.cpu_model, doc.GetString("cpu_model"));
  MMLIB_ASSIGN_OR_RETURN(info.cpu_cores, doc.GetInt("cpu_cores"));
  MMLIB_ASSIGN_OR_RETURN(const json::Value* libs, doc.GetMember("libraries"));
  if (!libs->is_object()) {
    return Status::InvalidArgument("libraries must be an object");
  }
  for (const auto& [name, version] : libs->as_object()) {
    if (!version.is_string()) {
      return Status::InvalidArgument("library version must be a string");
    }
    info.libraries[name] = version.as_string();
  }
  return info;
}

std::vector<std::string> EnvironmentInfo::DiffAgainst(
    const EnvironmentInfo& other) const {
  std::vector<std::string> diffs;
  auto check = [&](const std::string& field, const std::string& a,
                   const std::string& b) {
    if (a != b) {
      diffs.push_back(field + ": '" + a + "' vs '" + b + "'");
    }
  };
  check("framework_version", framework_version, other.framework_version);
  check("compiler", compiler, other.compiler);
  check("cxx_standard", cxx_standard, other.cxx_standard);
  check("os_name", os_name, other.os_name);
  check("os_release", os_release, other.os_release);
  check("machine", machine, other.machine);
  check("cpu_model", cpu_model, other.cpu_model);
  if (cpu_cores != other.cpu_cores) {
    diffs.push_back("cpu_cores: " + std::to_string(cpu_cores) + " vs " +
                    std::to_string(other.cpu_cores));
  }
  if (libraries != other.libraries) {
    diffs.push_back("libraries differ");
  }
  return diffs;
}

namespace {

std::string ReadCpuModel() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (StartsWith(line, "model name")) {
      const size_t colon = line.find(':');
      if (colon != std::string::npos) {
        return std::string(StripWhitespace(line.substr(colon + 1)));
      }
    }
  }
  return "unknown";
}

std::string CompilerVersion() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

}  // namespace

EnvironmentInfo CollectEnvironment() {
  EnvironmentInfo info;
  info.framework_version = kMmlibVersion;
  info.compiler = CompilerVersion();
  info.cxx_standard = "c++" + std::to_string(__cplusplus / 100 % 100);

  struct utsname uts;
  if (uname(&uts) == 0) {
    info.os_name = uts.sysname;
    info.os_release = uts.release;
    info.machine = uts.machine;
  } else {
    info.os_name = "unknown";
    info.os_release = "unknown";
    info.machine = "unknown";
  }
  info.cpu_model = ReadCpuModel();
  info.cpu_cores =
      static_cast<int64_t>(std::thread::hardware_concurrency());

  // Versions of the bundled substrate libraries (stand-ins for the paper's
  // "framework version, all third-party libraries").
  info.libraries["mmlib.tensor"] = "1.0";
  info.libraries["mmlib.nn"] = "1.0";
  info.libraries["mmlib.compress"] = "1.0";
  info.libraries["mmlib.docstore"] = "1.0";
  return info;
}

}  // namespace mmlib::env
