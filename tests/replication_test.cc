#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/recover.h"
#include "dist/flow.h"
#include "docstore/document_store.h"
#include "filestore/file_store.h"
#include "hash/merkle_tree.h"
#include "hash/sha256.h"
#include "models/zoo.h"
#include "repl/replicated_store.h"
#include "repl/scrubber.h"
#include "simnet/network.h"
#include "util/thread_pool.h"

namespace mmlib {
namespace {

/// Seed of the fault plans and schedules below; overridable so CI can sweep
/// several schedules over the same assertions (MMLIB_FAULT_SEED=2 ctest -R
/// replication ...).
uint64_t FaultSeed() {
  const char* env = std::getenv("MMLIB_FAULT_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 0x5eedfa17;
}

/// An N-replica storage cluster: one in-memory backend and one
/// replica-bound remote transport per replica, wrapped by the replicated
/// stores. Optionally gives every replica its own independently seeded
/// fault plan.
struct ReplicatedCluster {
  explicit ReplicatedCluster(size_t n, repl::QuorumConfig config = {},
                             double fault_rate = 0.0,
                             uint64_t fault_seed = 0)
      : network(simnet::Link{1e6, 1e-3}) {
    network.ConfigureReplicas(n);
    std::vector<filestore::RemoteFileStore*> file_ptrs;
    std::vector<docstore::RemoteDocumentStore*> doc_ptrs;
    for (size_t r = 0; r < n; ++r) {
      file_backends.push_back(
          std::make_unique<filestore::InMemoryFileStore>());
      doc_backends.push_back(
          std::make_unique<docstore::InMemoryDocumentStore>());
      auto file_transport = std::make_unique<filestore::RemoteFileStore>(
          file_backends.back().get(), &network);
      file_transport->BindReplica(r);
      auto doc_transport = std::make_unique<docstore::RemoteDocumentStore>(
          doc_backends.back().get(), &network);
      doc_transport->BindReplica(r);
      if (fault_rate > 0.0) {
        simnet::FaultPlan plan;
        plan.drop_probability = fault_rate;
        plan.timeout_probability = fault_rate;
        plan.corrupt_probability = fault_rate;
        plan.timeout_seconds = 0.01;
        plan.seed = fault_seed + 0x9e3779b9ULL * (r + 1);
        EXPECT_TRUE(network.SetReplicaFaultPlan(r, plan).ok());
      }
      file_ptrs.push_back(file_transport.get());
      doc_ptrs.push_back(doc_transport.get());
      file_transports.push_back(std::move(file_transport));
      doc_transports.push_back(std::move(doc_transport));
    }
    files = repl::ReplicatedFileStore::Create(file_ptrs, &network, config)
                .value();
    docs = repl::ReplicatedDocumentStore::Create(doc_ptrs, &network, config)
               .value();
  }

  simnet::Network network;
  std::vector<std::unique_ptr<filestore::InMemoryFileStore>> file_backends;
  std::vector<std::unique_ptr<docstore::InMemoryDocumentStore>> doc_backends;
  std::vector<std::unique_ptr<filestore::RemoteFileStore>> file_transports;
  std::vector<std::unique_ptr<docstore::RemoteDocumentStore>> doc_transports;
  std::unique_ptr<repl::ReplicatedFileStore> files;
  std::unique_ptr<repl::ReplicatedDocumentStore> docs;
};

size_t PreferredReplicaOf(const std::string& id, size_t n) {
  return Crc32(reinterpret_cast<const uint8_t*>(id.data()), id.size()) % n;
}

// ---------------------------------------------------------------------------
// Quorum configuration and the healthy write/read path
// ---------------------------------------------------------------------------

TEST(QuorumConfigTest, MajorityDefaultsAndValidation) {
  EXPECT_EQ(repl::QuorumConfig::Majority(1), 1u);
  EXPECT_EQ(repl::QuorumConfig::Majority(3), 2u);
  EXPECT_EQ(repl::QuorumConfig::Majority(5), 3u);

  ReplicatedCluster cluster(3);
  EXPECT_EQ(cluster.files->write_quorum(), 2u);
  EXPECT_EQ(cluster.files->read_quorum(), 2u);
  EXPECT_EQ(cluster.docs->write_quorum(), 2u);

  // Out-of-range quorums are rejected at construction.
  std::vector<filestore::RemoteFileStore*> transports;
  for (const auto& t : cluster.file_transports) {
    transports.push_back(t.get());
  }
  repl::QuorumConfig bad;
  bad.write_quorum = 5;
  EXPECT_EQ(repl::ReplicatedFileStore::Create(transports, &cluster.network,
                                              bad)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(repl::ReplicatedFileStore::Create({}, &cluster.network)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ReplicatedStoreTest, WritesReplicateEverywhereAndStatsStayLogical) {
  ReplicatedCluster cluster(3);
  const Bytes content(1000, 42);
  const std::string id = cluster.files->SaveFile(content).value();

  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(cluster.file_backends[r]->FileCount(), 1u) << "replica " << r;
    EXPECT_EQ(cluster.file_backends[r]->LoadFile(id).value(), content);
  }
  EXPECT_EQ(cluster.files->LoadFile(id).value(), content);
  // Logical stats report the model store's footprint; physical stats the
  // replication bill.
  EXPECT_EQ(cluster.files->FileCount(), 1u);
  EXPECT_EQ(cluster.files->TotalStoredBytes(), content.size());
  EXPECT_EQ(cluster.files->PhysicalStoredBytes(), 3 * content.size());

  json::Value doc = json::Value::MakeObject();
  doc.Set("kind", std::string("model"));
  const std::string doc_id = cluster.docs->Insert("models", doc).value();
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(cluster.doc_backends[r]->DocumentCount(), 1u) << "replica " << r;
  }
  EXPECT_EQ(cluster.docs->Get("models", doc_id).value().GetString("kind")
                .value(),
            "model");
  EXPECT_EQ(cluster.docs->DocumentCount(), 1u);
}

// ---------------------------------------------------------------------------
// Degraded writes: one replica down, quorum intact
// ---------------------------------------------------------------------------

TEST(ReplicatedStoreTest, WritesCommitAtQuorumWithOneReplicaDown) {
  ReplicatedCluster cluster(3);
  ASSERT_TRUE(cluster.network.CrashReplica(1).ok());

  const Bytes content(500, 7);
  const std::string id = cluster.files->SaveFile(content).value();
  EXPECT_EQ(cluster.file_backends[0]->LoadFile(id).value(), content);
  EXPECT_EQ(cluster.file_backends[2]->LoadFile(id).value(), content);
  EXPECT_EQ(cluster.file_backends[1]->FileCount(), 0u);
  EXPECT_GT(cluster.files->replica_counters(1).write_skips, 0u);
  EXPECT_EQ(cluster.files->LoadFile(id).value(), content);

  // Once the replica returns, one anti-entropy pass re-copies the miss and
  // converges every replica to identical trees.
  ASSERT_TRUE(cluster.network.RestartReplica(1).ok());
  repl::Scrubber scrubber(cluster.files.get(), cluster.docs.get(),
                          &cluster.network);
  const repl::ScrubReport report = scrubber.ScrubOnce().value();
  EXPECT_GT(report.repaired_files, 0u);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(cluster.file_backends[1]->LoadFile(id).value(), content);
  EXPECT_GT(cluster.files->replica_counters(1).scrub_repairs, 0u);
}

TEST(ReplicatedStoreTest, BelowQuorumWritesFailFastAndLeaveNoTornState) {
  ReplicatedCluster cluster(3);
  ASSERT_TRUE(cluster.network.CrashReplica(1).ok());
  ASSERT_TRUE(cluster.network.CrashReplica(2).ok());

  const double before_seconds = cluster.network.TotalTransferSeconds();
  const auto saved = cluster.files->SaveFile(Bytes(100, 1));
  EXPECT_EQ(saved.status().code(), StatusCode::kUnavailable);
  // Fail-fast: the reachability precheck decides without burning a retry
  // ladder per replica (six attempts with capped backoff would cost whole
  // virtual seconds).
  EXPECT_LT(cluster.network.TotalTransferSeconds() - before_seconds, 0.5);
  // Nothing stays visible anywhere below quorum.
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(cluster.file_backends[r]->FileCount(), 0u) << "replica " << r;
  }

  json::Value doc = json::Value::MakeObject();
  doc.Set("k", std::string("v"));
  EXPECT_EQ(cluster.docs->Insert("models", std::move(doc)).status().code(),
            StatusCode::kUnavailable);
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(cluster.doc_backends[r]->DocumentCount(), 0u);
  }
}

TEST(ReplicatedStoreTest, IdSequenceIsIdenticalHoweverManyReplicasAreUp) {
  // Coordinator-side minting: the id sequence must not depend on replica
  // availability, or healthy and degraded runs would diverge structurally.
  std::vector<std::string> healthy_ids;
  {
    ReplicatedCluster cluster(3);
    for (int i = 0; i < 4; ++i) {
      healthy_ids.push_back(
          cluster.files->SaveFile(Bytes(64, uint8_t(i))).value());
    }
  }
  std::vector<std::string> degraded_ids;
  {
    ReplicatedCluster cluster(3);
    ASSERT_TRUE(cluster.network.CrashReplica(0).ok());
    for (int i = 0; i < 4; ++i) {
      degraded_ids.push_back(
          cluster.files->SaveFile(Bytes(64, uint8_t(i))).value());
    }
  }
  EXPECT_EQ(healthy_ids, degraded_ids);
}

// ---------------------------------------------------------------------------
// Read path: fallback, read-repair, quorum checks
// ---------------------------------------------------------------------------

TEST(ReplicatedStoreTest, ReadFallsBackOnBitRotAndRepairsInPassing) {
  ReplicatedCluster cluster(3);
  const Bytes content(800, 9);
  const std::string id = cluster.files->SaveFile(content).value();

  // Rot the copy on the replica the read path tries first, so the fallback
  // is actually exercised.
  const size_t preferred = PreferredReplicaOf(id, 3);
  Bytes rotted = content;
  rotted[100] ^= 0x40;
  ASSERT_TRUE(cluster.file_backends[preferred]  // lint:allow(no-direct-replica-write) deliberate damage
                  ->WriteAllocated(id, rotted)
                  .ok());

  // The read serves the committed bytes — the write-time digest catches the
  // divergent copy — and rewrites the rotted replica on the way out.
  EXPECT_EQ(cluster.files->LoadFile(id).value(), content);
  EXPECT_GT(cluster.files->replica_counters(preferred).read_fallbacks, 0u);
  EXPECT_EQ(cluster.files->replica_counters(preferred).read_repairs, 1u);
  EXPECT_EQ(cluster.file_backends[preferred]->LoadFile(id).value(), content);
}

TEST(ReplicatedStoreTest, DocumentReadRepairsDivergentReplica) {
  ReplicatedCluster cluster(3);
  json::Value doc = json::Value::MakeObject();
  doc.Set("version", static_cast<int64_t>(2));
  const std::string id = cluster.docs->Insert("models", doc).value();

  const size_t preferred =
      PreferredReplicaOf(repl::ReplicatedDocumentStore::KeyFor("models", id),
                         3);
  json::Value stale = json::Value::MakeObject();
  stale.Set("version", static_cast<int64_t>(1));
  ASSERT_TRUE(
      cluster.doc_backends[preferred]  // lint:allow(no-direct-replica-write) deliberate staleness
          ->InsertWithId("models", id, stale)
          .ok());

  const json::Value served = cluster.docs->Get("models", id).value();
  EXPECT_EQ(served.GetInt("version").value(), 2);
  EXPECT_EQ(cluster.docs->replica_counters(preferred).read_repairs, 1u);
  EXPECT_EQ(cluster.doc_backends[preferred]
                ->Get("models", id)
                .value()
                .GetInt("version")
                .value(),
            2);
}

TEST(ReplicatedStoreTest, ReadsBelowQuorumFailUnavailable) {
  ReplicatedCluster cluster(3);
  const std::string id = cluster.files->SaveFile(Bytes(100, 3)).value();

  ASSERT_TRUE(cluster.network.Partition({{1, 2}}).ok());
  const auto loaded = cluster.files->LoadFile(id);
  EXPECT_EQ(loaded.status().code(), StatusCode::kUnavailable);

  cluster.network.Heal();
  EXPECT_EQ(cluster.files->LoadFile(id).value(), Bytes(100, 3));
}

// ---------------------------------------------------------------------------
// simnet: partition groups, per-replica fault streams, scheduled events
// ---------------------------------------------------------------------------

TEST(SimnetReplicaTest, PartitionGroupsGateReachability) {
  simnet::Network network;
  network.ConfigureReplicas(4);
  ASSERT_TRUE(network.Partition({{2, 3}}).ok());

  EXPECT_TRUE(network.IsReplicaReachable(0));
  EXPECT_TRUE(network.IsReplicaReachable(1));
  EXPECT_FALSE(network.IsReplicaReachable(2));
  EXPECT_FALSE(network.IsReplicaReachable(3));
  // Pairs inside one group talk; pairs across the cut do not.
  EXPECT_TRUE(network.ReplicaPairReachable(0, 1));
  EXPECT_TRUE(network.ReplicaPairReachable(2, 3));
  EXPECT_FALSE(network.ReplicaPairReachable(1, 2));

  EXPECT_EQ(network.TryTransferToReplica(2, 100).status.code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(network.TryTransferToReplica(1, 100).status.ok());
  EXPECT_EQ(network.TryTransferBetweenReplicas(1, 3, 100).status.code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(network.TryTransferBetweenReplicas(2, 3, 100).status.ok());

  // Listing a replica twice (or an unknown one) is a configuration bug.
  EXPECT_EQ(network.Partition({{0}, {0}}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(network.Partition({{9}}).code(), StatusCode::kInvalidArgument);

  network.Heal();
  EXPECT_TRUE(network.IsReplicaReachable(3));
  EXPECT_EQ(network.PartitionCount(), 1u);
  EXPECT_EQ(network.HealCount(), 1u);
}

TEST(SimnetReplicaTest, ReplicaFaultStreamsAreIndependent) {
  simnet::Network network;
  network.ConfigureReplicas(2);
  simnet::FaultPlan noisy;
  noisy.drop_probability = 0.5;
  noisy.seed = FaultSeed();
  ASSERT_TRUE(network.SetReplicaFaultPlan(0, noisy).ok());
  // Replica 1 keeps the (inactive) global plan: no faults at all.
  for (int i = 0; i < 100; ++i) {
    (void)network.TryTransferToReplica(0, 100);
    (void)network.TryTransferToReplica(1, 100);
  }
  EXPECT_GT(network.ReplicaFaultCounters(0).value().Total(), 0u);
  EXPECT_EQ(network.ReplicaFaultCounters(1).value().Total(), 0u);
  EXPECT_EQ(network.ReplicaFaultCounters(7).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SimnetReplicaTest, ScheduledEventsFireOnTheVirtualClock) {
  simnet::Network network(simnet::Link{1e6, 1e-3});
  network.ConfigureReplicas(2);
  network.ScheduleReplicaCrash(1, /*at_seconds=*/1.0);
  network.ScheduleReplicaRestart(1, /*at_seconds=*/2.0);
  network.SchedulePartition(4.0, {{0}});
  network.ScheduleHeal(6.0);

  // Before t=1 the replica serves.
  EXPECT_TRUE(network.TryTransferToReplica(1, 100).status.ok());

  network.ChargeSeconds(1.5);  // past the crash, before the restart
  EXPECT_EQ(network.TryTransferToReplica(1, 100).status.code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(network.ReplicaCrashCount(1).value(), 1u);

  // Past the restart (t ≈ 2.55; the applied restart itself charges another
  // 0.5 s of reboot time before the message goes out).
  network.ChargeSeconds(1.0);
  EXPECT_TRUE(network.TryTransferToReplica(1, 100).status.ok());
  EXPECT_EQ(network.ReplicaRestartCount(1).value(), 1u);

  network.ChargeSeconds(1.0);  // past the partition (t ≈ 4.05)
  network.ApplyDueReplicaEvents();
  EXPECT_FALSE(network.IsReplicaReachable(0));
  EXPECT_TRUE(network.IsReplicaReachable(1));

  network.ChargeSeconds(2.0);  // past the heal (t ≈ 6.05)
  network.ApplyDueReplicaEvents();
  EXPECT_TRUE(network.IsReplicaReachable(0));
}

// ---------------------------------------------------------------------------
// Scrubber: Merkle anti-entropy
// ---------------------------------------------------------------------------

TEST(ScrubberTest, HealthyReplicasMatchByRootExchangeAlone) {
  ReplicatedCluster cluster(3);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(cluster.files->SaveFile(Bytes(100 + i, uint8_t(i))).ok());
  }
  json::Value doc = json::Value::MakeObject();
  doc.Set("x", static_cast<int64_t>(1));
  ASSERT_TRUE(cluster.docs->Insert("models", std::move(doc)).ok());

  repl::Scrubber scrubber(cluster.files.get(), cluster.docs.get(),
                          &cluster.network);
  const repl::ScrubReport report = scrubber.ScrubOnce().value();
  EXPECT_EQ(report.sessions, 3u);  // pairs (0,1) (0,2) (1,2)
  // Every session matched roots for both stores: 32 bytes each way, no
  // descent, no repairs.
  EXPECT_EQ(report.root_matches, 6u);
  EXPECT_EQ(report.bucket_comparisons, 0u);
  EXPECT_EQ(report.repaired_files, 0u);
  EXPECT_EQ(report.repaired_documents, 0u);
  EXPECT_TRUE(report.converged);
}

TEST(ScrubberTest, BitRotHealsWithoutAnyReadObservingIt) {
  ReplicatedCluster cluster(3);
  std::vector<std::string> ids;
  std::vector<Bytes> contents;
  for (int i = 0; i < 6; ++i) {
    contents.emplace_back(200 + 17 * i, uint8_t(i + 1));
    ids.push_back(cluster.files->SaveFile(contents.back()).value());
  }

  // Bit-rot on replica 2: two files silently damaged at rest.
  for (size_t k = 0; k < 2; ++k) {
    Bytes rotted = contents[k];
    rotted[rotted.size() / 2] ^= 0x01;
    ASSERT_TRUE(cluster.file_backends[2]  // lint:allow(no-direct-replica-write) deliberate bit-rot
                    ->WriteAllocated(ids[k], rotted)
                    .ok());
  }

  repl::Scrubber scrubber(cluster.files.get(), cluster.docs.get(),
                          &cluster.network);
  const repl::ScrubReport report = scrubber.ScrubOnce().value();
  EXPECT_GE(report.repaired_files, 2u);
  EXPECT_GT(report.bucket_comparisons, 0u);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.unresolved, 0u);

  // The damage healed replica-to-replica: no client read ever saw it, and
  // reads afterwards find every copy intact.
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(cluster.files->replica_counters(r).read_fallbacks, 0u);
  }
  for (size_t k = 0; k < ids.size(); ++k) {
    EXPECT_EQ(cluster.files->LoadFile(ids[k]).value(), contents[k]);
  }
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(cluster.files->replica_counters(r).read_fallbacks, 0u)
        << "replica " << r << " served damaged bytes after the scrub";
  }
}

TEST(ScrubberTest, QuorumDeleteTombstoneWinsOverStragglerCopy) {
  ReplicatedCluster cluster(3);
  const Bytes content(300, 5);
  const std::string id = cluster.files->SaveFile(content).value();

  // Replica 1 misses the delete; its copy becomes a straggler.
  ASSERT_TRUE(cluster.network.CrashReplica(1).ok());
  ASSERT_TRUE(cluster.files->Delete(id).ok());
  ASSERT_TRUE(cluster.network.RestartReplica(1).ok());
  ASSERT_EQ(cluster.file_backends[1]->FileCount(), 1u);

  // Anti-entropy must re-delete the straggler, not re-spread it.
  repl::Scrubber scrubber(cluster.files.get(), cluster.docs.get(),
                          &cluster.network);
  const repl::ScrubReport report = scrubber.ScrubOnce().value();
  EXPECT_GT(report.repaired_files, 0u);
  EXPECT_TRUE(report.converged);
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(cluster.file_backends[r]->FileCount(), 0u) << "replica " << r;
  }
  EXPECT_EQ(cluster.files->LoadFile(id).status().code(),
            StatusCode::kNotFound);
}

TEST(ScrubberTest, SkipsUnreachablePairsAndCatchesUpAfterHeal) {
  ReplicatedCluster cluster(3);
  const std::string id = cluster.files->SaveFile(Bytes(100, 8)).value();
  ASSERT_TRUE(cluster.network.CrashReplica(2).ok());
  Bytes rotted(100, 8);
  rotted[3] ^= 0x02;
  ASSERT_TRUE(cluster.file_backends[2]  // lint:allow(no-direct-replica-write) deliberate bit-rot
                  ->WriteAllocated(id, rotted)
                  .ok());

  repl::Scrubber scrubber(cluster.files.get(), cluster.docs.get(),
                          &cluster.network);
  const repl::ScrubReport down = scrubber.ScrubOnce().value();
  EXPECT_EQ(down.sessions, 1u);  // only (0,1) can talk
  EXPECT_FALSE(down.converged);  // replica 2 still diverges

  ASSERT_TRUE(cluster.network.RestartReplica(2).ok());
  const repl::ScrubReport healed = scrubber.ScrubOnce().value();
  EXPECT_EQ(healed.sessions, 3u);
  EXPECT_TRUE(healed.converged);
  EXPECT_EQ(cluster.file_backends[2]->LoadFile(id).value(), Bytes(100, 8));
  EXPECT_EQ(scrubber.lifetime().sessions, 4u);
}

// ---------------------------------------------------------------------------
// Property suite: DIST-5 flows over a degraded replica set
// ---------------------------------------------------------------------------

struct ReplicatedFlowOutcome {
  bool ok = false;
  StatusCode code = StatusCode::kOk;
  std::vector<std::string> model_ids;
  std::string last_params_hash;
  std::vector<uint64_t> write_skips;      // per replica, files + docs
  std::vector<uint64_t> scrub_repairs;    // per replica, files + docs
  uint64_t scrub_sessions = 0;
  bool scrub_converged = false;
  uint64_t messages = 0;
  uint64_t replica_crashes = 0;
  double seconds = 0.0;
};

struct DegradedSchedule {
  bool enabled = false;
  double crash_seconds = 0.0;
  double restart_seconds = 0.0;
  std::vector<size_t> crash_replicas;
  bool restart = true;
};

/// Runs the DIST-5 evaluation flow (5 nodes, 2 iterations, simulated
/// training) with all storage behind R=3 W=R=2 replicated stores, each
/// replica on its own independently seeded flaky link, scrubbing after
/// every iteration. Optionally degrades the run by crashing replicas on the
/// virtual clock mid-flow.
ReplicatedFlowOutcome RunReplicatedDistFlow(size_t pool_size, uint64_t seed,
                                            const DegradedSchedule& schedule) {
  repl::QuorumConfig quorum;
  quorum.write_quorum = 2;
  quorum.read_quorum = 2;
  ReplicatedCluster cluster(3, quorum, /*fault_rate=*/0.01,
                            /*fault_seed=*/seed);
  if (schedule.enabled) {
    for (size_t replica : schedule.crash_replicas) {
      cluster.network.ScheduleReplicaCrash(replica, schedule.crash_seconds);
      if (schedule.restart) {
        cluster.network.ScheduleReplicaRestart(replica,
                                               schedule.restart_seconds);
      }
    }
  }
  util::ThreadPool pool(pool_size);
  core::StorageBackends backends{cluster.docs.get(), cluster.files.get(),
                                 &cluster.network, &pool};

  dist::FlowConfig config;
  config.approach = dist::ApproachKind::kBaseline;
  config.model = models::DefaultConfig(models::Architecture::kMobileNetV2);
  config.model.channel_divisor = 8;
  config.model.image_size = 28;
  config.model.num_classes = 125;
  config.num_nodes = 5;
  config.u3_iterations = 2;
  config.dataset_divisor = 4096;
  config.training_mode = dist::TrainingMode::kSimulated;
  config.recover_models = true;
  config.scrub_every_iterations = 1;

  dist::EvaluationFlow flow(config, backends);
  auto result = flow.Run();

  ReplicatedFlowOutcome outcome;
  outcome.ok = result.ok();
  outcome.code = result.status().code();
  outcome.messages = cluster.network.MessageCount();
  for (size_t r = 0; r < 3; ++r) {
    outcome.replica_crashes += cluster.network.ReplicaCrashCount(r).value();
  }
  outcome.seconds = cluster.network.TotalTransferSeconds();
  if (!result.ok()) {
    return outcome;
  }
  for (const dist::UseCaseRecord& record : result->records) {
    outcome.model_ids.push_back(record.model_id);
    EXPECT_TRUE(record.recovered) << record.label;
  }
  outcome.write_skips.resize(result->replica_counters.size());
  outcome.scrub_repairs.resize(result->replica_counters.size());
  for (size_t r = 0; r < result->replica_counters.size(); ++r) {
    outcome.write_skips[r] = result->replica_counters[r].write_skips;
    outcome.scrub_repairs[r] = result->replica_counters[r].scrub_repairs;
  }
  outcome.scrub_sessions = result->scrub.sessions;
  outcome.scrub_converged = result->scrub.converged;

  core::ModelRecoverer recoverer(backends);
  auto last = recoverer.Recover(result->records.back().model_id,
                                core::RecoverOptions{});
  EXPECT_TRUE(last.ok()) << last.status();
  if (last.ok()) {
    outcome.last_params_hash = last->model.ParamsHash().ToHex();
  }
  return outcome;
}

TEST(ReplicatedFlowTest, DegradedFlowIsBitIdenticalToHealthyRun) {
  const uint64_t seed = FaultSeed();
  const ReplicatedFlowOutcome healthy =
      RunReplicatedDistFlow(/*pool_size=*/1, seed, DegradedSchedule{});
  ASSERT_TRUE(healthy.ok);
  ASSERT_EQ(healthy.model_ids.size(), 22u);  // 2 + 5 nodes * 2 * 2 iters
  ASSERT_FALSE(healthy.last_params_hash.empty());
  EXPECT_TRUE(healthy.scrub_converged);

  // Kill replica 1 a quarter of the way through (virtual time), bring it
  // back at the halfway mark. W = R = 2 of 3 holds throughout.
  DegradedSchedule schedule;
  schedule.enabled = true;
  schedule.crash_replicas = {1};
  schedule.crash_seconds = healthy.seconds * 0.25;
  schedule.restart_seconds = healthy.seconds * 0.5;
  const ReplicatedFlowOutcome degraded =
      RunReplicatedDistFlow(/*pool_size=*/1, seed, schedule);
  ASSERT_TRUE(degraded.ok);

  // The degradation really happened: the scheduled crash fired and writes
  // in the outage window committed at quorum without replica 1...
  EXPECT_EQ(degraded.replica_crashes, 1u);
  EXPECT_GT(degraded.write_skips[1], healthy.write_skips[1]);
  // ...the scrubber re-copied the misses and converged the replicas...
  EXPECT_GT(degraded.scrub_repairs[1], 0u);
  EXPECT_TRUE(degraded.scrub_converged);
  // ...and the flow's outputs are bit-identical to the healthy run.
  EXPECT_EQ(degraded.model_ids, healthy.model_ids);
  EXPECT_EQ(degraded.last_params_hash, healthy.last_params_hash);
}

TEST(ReplicatedFlowTest, DegradedFlowIsDeterministicAcrossPoolSizes) {
  const uint64_t seed = FaultSeed();
  const ReplicatedFlowOutcome probe =
      RunReplicatedDistFlow(/*pool_size=*/1, seed, DegradedSchedule{});
  ASSERT_TRUE(probe.ok);

  DegradedSchedule schedule;
  schedule.enabled = true;
  schedule.crash_replicas = {2};
  schedule.crash_seconds = probe.seconds * 0.3;
  schedule.restart_seconds = probe.seconds * 0.55;

  const ReplicatedFlowOutcome serial =
      RunReplicatedDistFlow(/*pool_size=*/1, seed, schedule);
  ASSERT_TRUE(serial.ok);
  const ReplicatedFlowOutcome repeat =
      RunReplicatedDistFlow(/*pool_size=*/1, seed, schedule);
  const ReplicatedFlowOutcome parallel =
      RunReplicatedDistFlow(/*pool_size=*/8, seed, schedule);
  for (const ReplicatedFlowOutcome* other : {&repeat, &parallel}) {
    ASSERT_TRUE(other->ok);
    EXPECT_EQ(serial.model_ids, other->model_ids);
    EXPECT_EQ(serial.last_params_hash, other->last_params_hash);
    EXPECT_EQ(serial.write_skips, other->write_skips);
    EXPECT_EQ(serial.scrub_repairs, other->scrub_repairs);
    EXPECT_EQ(serial.scrub_sessions, other->scrub_sessions);
    EXPECT_EQ(serial.messages, other->messages);
    EXPECT_EQ(serial.replica_crashes, other->replica_crashes);
    EXPECT_EQ(serial.seconds, other->seconds);
  }
}

TEST(ReplicatedFlowTest, BelowQuorumFlowFailsUnavailableNotHangsOrTears) {
  const uint64_t seed = FaultSeed();
  const ReplicatedFlowOutcome probe =
      RunReplicatedDistFlow(/*pool_size=*/1, seed, DegradedSchedule{});
  ASSERT_TRUE(probe.ok);

  // Two of three replicas die mid-flow and never return: W = 2 becomes
  // unreachable, and the flow must fail fast with Unavailable — not hang in
  // retry ladders and not complete against a single replica.
  DegradedSchedule schedule;
  schedule.enabled = true;
  schedule.crash_replicas = {1, 2};
  schedule.crash_seconds = probe.seconds * 0.25;
  schedule.restart = false;
  const ReplicatedFlowOutcome outcome =
      RunReplicatedDistFlow(/*pool_size=*/1, seed, schedule);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.code, StatusCode::kUnavailable);
  // Fail-fast bound: the run ends within a small multiple of the healthy
  // flow's virtual time instead of compounding per-replica backoff ladders.
  EXPECT_LT(outcome.seconds, probe.seconds * 3.0);
}

}  // namespace
}  // namespace mmlib
