#include "compress/chunked.h"

#include <algorithm>
#include <cstring>

#include "hash/sha256.h"

namespace mmlib {

namespace {

constexpr uint32_t kChunkedMagic = 0x4d4d4c43;  // "MMLC"

}  // namespace

bool IsChunkedFrame(const Bytes& frame) {
  BytesReader reader(frame);
  Result<uint32_t> magic = reader.ReadU32();
  return magic.ok() && magic.value() == kChunkedMagic;
}

Result<Bytes> ChunkedFrame(const Bytes& input, CodecKind kind,
                           size_t chunk_size, util::ThreadPool* pool) {
  if (chunk_size == 0) {
    return Status::InvalidArgument("chunked frame: chunk size must be > 0");
  }
  if (pool == nullptr) {
    pool = util::ThreadPool::Global();
  }
  const Codec* codec = Codec::ForKind(kind);
  const size_t num_chunks = (input.size() + chunk_size - 1) / chunk_size;

  std::vector<Bytes> compressed(num_chunks);
  std::vector<uint32_t> crcs(num_chunks, 0);
  std::vector<Status> statuses(num_chunks);
  util::ParallelFor(
      pool, static_cast<int64_t>(num_chunks), /*grain=*/1,
      [&](int64_t begin, int64_t end, size_t /*chunk_index*/) {
        for (int64_t i = begin; i < end; ++i) {
          const size_t c = static_cast<size_t>(i);
          const size_t offset = c * chunk_size;
          const size_t len = std::min(chunk_size, input.size() - offset);
          const Bytes chunk(input.begin() + offset,
                            input.begin() + offset + len);
          crcs[c] = Crc32(chunk);
          Result<Bytes> encoded = codec->Compress(chunk);
          if (!encoded.ok()) {
            statuses[c] = encoded.status();
            continue;
          }
          compressed[c] = std::move(encoded).value();
        }
      });
  for (const Status& status : statuses) {
    MMLIB_RETURN_IF_ERROR(status);
  }

  BytesWriter writer;
  writer.WriteU32(kChunkedMagic);
  writer.WriteU8(static_cast<uint8_t>(kind));
  writer.WriteU64(input.size());
  writer.WriteU64(chunk_size);
  writer.WriteU64(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    writer.WriteU32(crcs[c]);
    writer.WriteBlob(compressed[c]);
  }
  return writer.TakeBytes();
}

Result<Bytes> ChunkedUnframe(const Bytes& frame, util::ThreadPool* pool) {
  if (pool == nullptr) {
    pool = util::ThreadPool::Global();
  }
  BytesReader reader(frame);
  MMLIB_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kChunkedMagic) {
    return Status::Corruption("bad chunked frame magic");
  }
  MMLIB_ASSIGN_OR_RETURN(uint8_t kind_byte, reader.ReadU8());
  if (kind_byte > static_cast<uint8_t>(CodecKind::kLz77Huffman)) {
    return Status::Corruption("unknown codec id " + std::to_string(kind_byte));
  }
  MMLIB_ASSIGN_OR_RETURN(uint64_t original_size, reader.ReadU64());
  MMLIB_ASSIGN_OR_RETURN(uint64_t chunk_size, reader.ReadU64());
  MMLIB_ASSIGN_OR_RETURN(uint64_t num_chunks, reader.ReadU64());
  if (original_size > Codec::kDefaultMaxOutput) {
    return Status::Corruption("chunked frame original size out of range");
  }
  if (chunk_size == 0) {
    return Status::Corruption("chunked frame chunk size is zero");
  }
  const uint64_t expected_chunks = (original_size + chunk_size - 1) / chunk_size;
  if (num_chunks != expected_chunks) {
    return Status::Corruption("chunked frame chunk count mismatch");
  }

  // Chunk payloads are length-prefixed, so offsets must be collected in one
  // serial scan; decompression below runs in parallel.
  std::vector<uint32_t> crcs(num_chunks, 0);
  std::vector<Bytes> compressed(num_chunks);
  for (uint64_t c = 0; c < num_chunks; ++c) {
    MMLIB_ASSIGN_OR_RETURN(crcs[c], reader.ReadU32());
    MMLIB_ASSIGN_OR_RETURN(compressed[c], reader.ReadBlob());
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after chunked frame");
  }

  const Codec* codec = Codec::ForKind(static_cast<CodecKind>(kind_byte));
  Bytes out(original_size);
  std::vector<Status> statuses(num_chunks);
  util::ParallelFor(
      pool, static_cast<int64_t>(num_chunks), /*grain=*/1,
      [&](int64_t begin, int64_t end, size_t /*chunk_index*/) {
        for (int64_t i = begin; i < end; ++i) {
          const size_t c = static_cast<size_t>(i);
          const size_t offset = c * chunk_size;
          const size_t len =
              std::min<size_t>(chunk_size, original_size - offset);
          Result<Bytes> decoded = codec->Decompress(compressed[c], len);
          if (!decoded.ok()) {
            statuses[c] = decoded.status();
            continue;
          }
          const Bytes& payload = decoded.value();
          if (payload.size() != len) {
            statuses[c] = Status::Corruption(
                "chunked frame: chunk " + std::to_string(c) +
                " decompressed size mismatch");
            continue;
          }
          if (Crc32(payload) != crcs[c]) {
            statuses[c] = Status::Corruption(
                "chunked frame: chunk " + std::to_string(c) +
                " checksum mismatch");
            continue;
          }
          // Each chunk writes a disjoint region of the output buffer.
          if (len > 0) {
            std::memcpy(out.data() + offset, payload.data(), len);
          }
        }
      });
  for (const Status& status : statuses) {
    MMLIB_RETURN_IF_ERROR(status);
  }
  return out;
}

}  // namespace mmlib
