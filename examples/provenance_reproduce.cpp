/// Provenance-based recovery: save a trained model *without its parameters*
/// and recover it by reproducing the training (paper Section 3.3).
///
///   1. Save an initial model.
///   2. Capture the training provenance (train service + optimizer state +
///      dataset), train deterministically, save only the provenance.
///   3. Recover: mmlib recovers the base model, restores the train service
///      from its wrapper documents, re-executes the training, and verifies
///      the checksum — the recovered model is bit-identical.
#include <cstdio>

#include "core/evaluate.h"
#include "core/model_code.h"
#include "core/provenance.h"
#include "core/recover.h"
#include "core/train_service.h"
#include "docstore/document_store.h"
#include "env/environment.h"
#include "filestore/file_store.h"
#include "models/zoo.h"

using namespace mmlib;

int main() {
  std::printf("provenance reproduce example\n============================\n\n");

  docstore::InMemoryDocumentStore docs;
  filestore::InMemoryFileStore files;
  core::StorageBackends backends{&docs, &files, nullptr};
  core::ProvenanceSaveService service(backends);
  const env::EnvironmentInfo environment = env::CollectEnvironment();

  models::ModelConfig config =
      models::DefaultConfig(models::Architecture::kResNet18);
  config.channel_divisor = 8;
  config.image_size = 28;
  config.num_classes = 125;
  auto model = models::BuildModel(config).value();

  core::SaveRequest request;
  request.model = &model;
  request.code = core::CodeDescriptorFor(config);
  request.environment = &environment;
  const auto initial = service.SaveModel(request).value();
  std::printf("saved initial model %s (%.2f MB full snapshot)\n",
              initial.model_id.c_str(), initial.storage_bytes / 1e6);

  // Local training data (synthetic CO-512 stand-in).
  data::SyntheticImageDataset dataset(
      data::PaperDatasetId::kCocoOutdoor512, /*size_divisor=*/512);

  core::TrainConfig train_config;
  train_config.epochs = 2;
  train_config.max_batches_per_epoch = 2;
  train_config.seed = 7;
  train_config.loader.batch_size = 8;
  train_config.loader.image_size = config.image_size;
  train_config.loader.num_classes = config.num_classes;
  train_config.loader.seed = 7;
  train_config.sgd.momentum = 0.9f;  // stateful optimizer -> state file
  core::ImageTrainService trainer(&dataset, train_config);

  // Capture provenance BEFORE training, then train deterministically.
  auto provenance = trainer.CaptureProvenance().value();
  auto times = trainer.Train(&model, /*deterministic=*/true, 0).value();
  std::printf(
      "trained deterministically: loss %.3f (fwd %.3f s, bwd %.3f s)\n",
      trainer.last_loss(), times.forward_seconds, times.backward_seconds);
  const std::string trained_hash = model.ParamsHash().ToHex();

  core::SaveRequest derived = request;
  derived.base_model_id = initial.model_id;
  derived.provenance = &provenance;
  const auto save = service.SaveModel(derived).value();
  std::printf(
      "saved derived model %s via provenance: %.2f MB (no parameters "
      "stored; %.1f%% of a snapshot)\n",
      save.model_id.c_str(), save.storage_bytes / 1e6,
      100.0 * save.storage_bytes / model.ParamByteSize());

  // Recover on "another machine": the recoverer rebuilds the base model,
  // restores the ImageTrainService from its wrapper documents, and replays
  // the training.
  core::ModelRecoverer recoverer(backends);
  auto recovered =
      recoverer.Recover(save.model_id, core::RecoverOptions{}).value();
  std::printf(
      "recovered by reproducing training in %.3f s (load %.3f s, retrain "
      "%.3f s)\n",
      recovered.breakdown.TotalSeconds(), recovered.breakdown.load_seconds,
      recovered.breakdown.recover_seconds);

  const bool exact = recovered.model.ParamsHash().ToHex() == trained_hash;
  std::printf("checksum verified: %s; recovered == trained: %s\n",
              recovered.checksum_verified ? "yes" : "no",
              exact ? "yes" : "no");

  // Exactness also shows up downstream: evaluation metrics agree to the bit.
  data::DataLoaderOptions eval_options = train_config.loader;
  eval_options.shuffle = false;
  data::DataLoader eval_loader(&dataset, eval_options);
  nn::ExecutionContext eval_ctx1 = nn::ExecutionContext::Deterministic(1);
  nn::ExecutionContext eval_ctx2 = nn::ExecutionContext::Deterministic(1);
  const auto original_metrics =
      core::EvaluateModel(&model, eval_loader, &eval_ctx1, 8).value();
  const auto recovered_metrics =
      core::EvaluateModel(&recovered.model, eval_loader, &eval_ctx2, 8)
          .value();
  std::printf(
      "evaluation on %zu samples: loss %.6f / acc %.3f (original) vs "
      "%.6f / %.3f (recovered) -> %s\n",
      original_metrics.sample_count, original_metrics.mean_loss,
      original_metrics.accuracy, recovered_metrics.mean_loss,
      recovered_metrics.accuracy,
      original_metrics.mean_loss == recovered_metrics.mean_loss
          ? "identical"
          : "DIFFERENT");
  return exact ? 0 : 1;
}
