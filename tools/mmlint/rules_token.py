"""Token-layer rules: the nine legacy tools/lint.py rules, re-run on the
real token stream from mmlint.lexer so they can never fire inside a comment,
string literal, raw string, or macro definition body.

Each rule is a function `rule(ctx, findings)` where ctx is a FileContext.
Scoping (which directories a rule applies to) is identical to the legacy
regex lint, with `src/persist/` added to the persistence dirs (the journal
moved there).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from .findings import Finding
from .lexer import IDENT, PUNCT, STRING, LexedFile, Token

RULES: Dict[str, Tuple[Callable, str]] = {}


def rule(rule_id: str, doc: str):
    def wrap(fn):
        RULES[rule_id] = (fn, doc)
        return fn
    return wrap


@dataclass
class FileContext:
    relpath: str  # posix, repo-relative
    lexed: LexedFile
    text: str

    @property
    def is_header(self) -> bool:
        return self.relpath.endswith((".h", ".hpp"))

    def in_dir(self, prefix: str) -> bool:
        return self.relpath.startswith(prefix)


def _tok(tokens: List[Token], i: int) -> Token:
    if 0 <= i < len(tokens):
        return tokens[i]
    return Token(PUNCT, "", 0)


def _is_call(tokens: List[Token], i: int) -> bool:
    """tokens[i] is an identifier immediately followed by '('."""
    return (tokens[i].kind == IDENT and _tok(tokens, i + 1).kind == PUNCT
            and _tok(tokens, i + 1).value == "(")


def _qualified_by(tokens: List[Token], i: int) -> str:
    """Returns the identifier qualifying tokens[i] via '::', or ''."""
    if _tok(tokens, i - 1).value == "::" and _tok(tokens, i - 2).kind == IDENT:
        return _tok(tokens, i - 2).value
    return ""


def _member_access(tokens: List[Token], i: int) -> bool:
    return _tok(tokens, i - 1).value in (".", "->")


def _match_paren(tokens: List[Token], open_idx: int) -> int:
    """Index of the ')' matching tokens[open_idx] == '('; -1 if unbalanced."""
    depth = 0
    for j in range(open_idx, len(tokens)):
        v = tokens[j].value
        if tokens[j].kind == PUNCT:
            if v == "(":
                depth += 1
            elif v == ")":
                depth -= 1
                if depth == 0:
                    return j
    return -1


def _match_paren_back(tokens: List[Token], close_idx: int,
                      open_ch: str = "(", close_ch: str = ")") -> int:
    depth = 0
    for j in range(close_idx, -1, -1):
        v = tokens[j].value
        if tokens[j].kind == PUNCT:
            if v == close_ch:
                depth += 1
            elif v == open_ch:
                depth -= 1
                if depth == 0:
                    return j
    return -1


# --------------------------------------------------------------------------


@rule("no-raw-rand",
      "rand()/srand()/std::random_device outside src/util/random")
def check_raw_rand(ctx: FileContext, findings: List[Finding]) -> None:
    if ctx.relpath.startswith("src/util/random"):
        return
    toks = ctx.lexed.tokens
    for i, t in enumerate(toks):
        if t.kind != IDENT:
            continue
        qual = _qualified_by(toks, i)
        if qual not in ("", "std"):
            continue  # somelib::rand is not the libc rand
        hit = (t.value in ("rand", "srand", "random") and _is_call(toks, i)) \
            or t.value == "random_device"
        if hit:
            findings.append(Finding(
                "no-raw-rand", ctx.relpath, t.line,
                "use the seeded mmlib::Rng from util/random.h; raw "
                "rand()/std::random_device breaks reproducibility"))


@rule("no-assert",
      "assert( in src/ library code (use MMLIB_CHECK/MMLIB_DCHECK)")
def check_assert(ctx: FileContext, findings: List[Finding]) -> None:
    if not ctx.in_dir("src/"):
        return
    toks = ctx.lexed.tokens
    for i, t in enumerate(toks):
        if (t.kind == IDENT and t.value == "assert" and _is_call(toks, i)
                and _tok(toks, i - 1).value != "."):
            findings.append(Finding(
                "no-assert", ctx.relpath, t.line,
                "use MMLIB_CHECK/MMLIB_DCHECK from check/check.h instead "
                "of assert()"))


@rule("pragma-once", "headers must contain #pragma once")
def check_pragma_once(ctx: FileContext, findings: List[Finding]) -> None:
    if not ctx.is_header:
        return
    for d in ctx.lexed.directives:
        if d.keyword == "pragma" and d.text.replace(" ", "") == "#pragmaonce":
            return
    findings.append(Finding(
        "pragma-once", ctx.relpath, 1, "header is missing #pragma once"))


@rule("no-iostream", "<iostream> in the src/ library target")
def check_iostream(ctx: FileContext, findings: List[Finding]) -> None:
    if not ctx.in_dir("src/"):
        return
    for d in ctx.lexed.directives:
        if d.keyword == "include" and d.include_target() == "<iostream>":
            findings.append(Finding(
                "no-iostream", ctx.relpath, d.line,
                "library code must not include <iostream>; use <cstdio>, "
                "<sstream>, or util/strings.h"))


@rule("no-raw-thread", "std::thread/std::async outside src/util/")
def check_raw_thread(ctx: FileContext, findings: List[Finding]) -> None:
    if ctx.relpath.startswith("src/util/"):
        return
    for d in ctx.lexed.directives:
        if d.keyword == "include" and d.include_target() == "<future>":
            findings.append(_raw_thread_finding(ctx, d.line))
    toks = ctx.lexed.tokens
    for i, t in enumerate(toks):
        if not (t.kind == IDENT and t.value in ("thread", "jthread", "async")
                and _qualified_by(toks, i) == "std"):
            continue
        if (t.value == "thread" and _tok(toks, i + 1).value == "::"
                and _tok(toks, i + 2).value == "hardware_concurrency"):
            continue  # a query, not a spawn; ThreadPool sizes from it
        findings.append(_raw_thread_finding(ctx, t.line))


def _raw_thread_finding(ctx: FileContext, line: int) -> Finding:
    return Finding(
        "no-raw-thread", ctx.relpath, line,
        "spawn parallel work through util::ThreadPool's deterministic "
        "ParallelFor, not raw std::thread/std::async; ad-hoc threads break "
        "the bit-identical-across-thread-counts contract")


_STORE_OPS = frozenset((
    "SaveFile", "LoadFile", "Delete", "FileSize", "FileCount", "Insert",
    "Get", "ListIds", "FindByField"))


@rule("no-unchecked-remote",
      "bare .value() on a store operation in src/dist/")
def check_unchecked_remote(ctx: FileContext, findings: List[Finding]) -> None:
    if not ctx.in_dir("src/dist/"):
        return
    toks = ctx.lexed.tokens
    for i, t in enumerate(toks):
        if not (t.kind == IDENT and t.value in _STORE_OPS
                and _is_call(toks, i)):
            continue
        close = _match_paren(toks, i + 1)
        if close < 0:
            continue
        if (_tok(toks, close + 1).value == "."
                and _tok(toks, close + 2).value == "value"
                and _tok(toks, close + 3).value == "("):
            findings.append(Finding(
                "no-unchecked-remote", ctx.relpath, t.line,
                "remote store calls can fail with Unavailable/"
                "DeadlineExceeded even after retries; propagate with "
                "MMLIB_ASSIGN_OR_RETURN instead of .value()"))


_PERSIST_DIRS = ("src/filestore/", "src/docstore/", "src/core/",
                 "src/persist/")


@rule("no-direct-persist",
      "std::ofstream/fopen file writes in persistence code")
def check_direct_persist(ctx: FileContext, findings: List[Finding]) -> None:
    if not ctx.relpath.startswith(_PERSIST_DIRS):
        return
    toks = ctx.lexed.tokens
    for i, t in enumerate(toks):
        if t.kind != IDENT:
            continue
        qual = _qualified_by(toks, i)
        hit = (t.value in ("ofstream", "fstream") and qual == "std") or (
            t.value == "fopen" and qual in ("", "std")
            and not _member_access(toks, i) and _is_call(toks, i))
        if hit:
            findings.append(Finding(
                "no-direct-persist", ctx.relpath, t.line,
                "persistence code must write through util::AtomicWriteFile "
                "or the save journal; a direct stream write can tear on "
                "crash and is invisible to journal replay"))


_REPLICA_MUTATORS = frozenset((
    "SaveFile", "WriteAllocated", "AllocateFileId", "AllocateDocId",
    "Insert", "InsertWithId", "Delete"))


@rule("no-direct-replica-write",
      "replica mutation bypassing the quorum writer (outside src/repl/)")
def check_direct_replica_write(ctx: FileContext,
                               findings: List[Finding]) -> None:
    if ctx.relpath.startswith("src/repl/"):
        return
    toks = ctx.lexed.tokens
    for i, t in enumerate(toks):
        if not (t.kind == IDENT and t.value in _REPLICA_MUTATORS
                and _is_call(toks, i)):
            continue
        if _tok(toks, i - 1).value != "->":
            continue
        recv = i - 2  # last token of the receiver expression
        # Findings anchor at the receiver's line — a statement like
        # `backends[i]  // lint:allow(...)\n  ->WriteAllocated(...)` wraps,
        # and the allow convention annotates the receiver.
        if _tok(toks, recv).value == ")":
            open_idx = _match_paren_back(toks, recv)
            callee = _tok(toks, open_idx - 1)
            if callee.kind != IDENT:
                continue
            if callee.value == "backend" and _tok(
                    toks, open_idx - 2).value in (".", "->"):
                findings.append(_replica_write_finding(ctx, callee.line))
            elif callee.value == "transport":
                findings.append(_replica_write_finding(ctx, callee.line))
        elif _tok(toks, recv).value == "]":
            open_idx = _match_paren_back(toks, recv, "[", "]")
            arr = _tok(toks, open_idx - 1)
            if arr.kind == IDENT and arr.value.endswith("_backends"):
                findings.append(_replica_write_finding(ctx, arr.line))


def _replica_write_finding(ctx: FileContext, line: int) -> Finding:
    return Finding(
        "no-direct-replica-write", ctx.relpath, line,
        "mutate replicas through the quorum writer (ReplicatedFileStore/"
        "ReplicatedDocumentStore) or the scrubber, never one replica "
        "directly; a lone-replica write diverges silently until "
        "anti-entropy finds it")


_NODISCARD_CLASSES = {
    "src/util/result.h": "Result",
    "src/util/status.h": "Status",
}


@rule("nodiscard-result", "Result/Status must be declared [[nodiscard]]")
def check_nodiscard(ctx: FileContext, findings: List[Finding]) -> None:
    want = _NODISCARD_CLASSES.get(ctx.relpath)
    if want is None:
        return
    toks = ctx.lexed.tokens
    for i, t in enumerate(toks):
        if (t.kind == IDENT and t.value == "class"
                and _tok(toks, i + 1).value == "["
                and _tok(toks, i + 2).value == "["
                and _tok(toks, i + 3).value == "nodiscard"
                and _tok(toks, i + 4).value == "]"
                and _tok(toks, i + 5).value == "]"
                and _tok(toks, i + 6).value == want):
            return
    findings.append(Finding(
        "nodiscard-result", ctx.relpath, 1,
        "error-carrying class lost its [[nodiscard]] annotation; discarded "
        "Result/Status would go unnoticed"))


_QUEUE_DIRS = ("src/serve/", "src/data/")
# A queue member is "bounded" when a comment on its declaration line or the
# three lines above names the bound: the words `bounded` or `capacity`
# (word-boundary match, so "unbounded" never satisfies the rule).
_BOUND_MARKER = re.compile(r"\b(bounded|capacity)\b", re.IGNORECASE)


@rule("no-unbounded-queue",
      "std::deque/std::queue member without a declared capacity bound in "
      "serving/data-path code")
def check_unbounded_queue(ctx: FileContext, findings: List[Finding]) -> None:
    """Serving and data-path queues must shed, never grow without limit.

    An unbounded request queue converts overload into unbounded queueing
    delay for every tenant at once — the failure mode admission control
    exists to prevent. Any std::deque/std::queue *member* (house style:
    trailing-underscore identifier) declared under src/serve/ or src/data/
    must carry a capacity justification next to the declaration (the words
    "bounded" or "capacity" in a comment on the declaration line or the
    three lines above it), or an explicit same-line
    lint:allow(no-unbounded-queue) with its reason.
    """
    if not any(ctx.in_dir(d) for d in _QUEUE_DIRS):
        return
    toks = ctx.lexed.tokens
    lines = ctx.text.splitlines()
    for i, t in enumerate(toks):
        if not (t.kind == IDENT and t.value in ("deque", "queue")):
            continue
        if _qualified_by(toks, i) != "std":
            continue
        if _tok(toks, i + 1).value != "<":
            continue
        # The declared name: last identifier before the terminating ';'
        # (template arguments contribute identifiers too, so scan them all).
        name = None
        j = i + 1
        for _ in range(64):
            if j >= len(toks) or toks[j].value in (";", "(", "="):
                break
            if toks[j].kind == IDENT:
                name = toks[j]
            j += 1
        if name is None or not name.value.endswith("_"):
            continue  # locals, parameters, aliases: not this rule's target
        window = "\n".join(lines[max(0, t.line - 4):t.line])
        if _BOUND_MARKER.search(window):
            continue
        findings.append(Finding(
            "no-unbounded-queue", ctx.relpath, t.line,
            f"queue member `{name.value}` has no declared capacity bound; "
            "serving/data-path queues must be bounded (shed on overflow) — "
            "state the bound in a comment at the declaration or justify "
            "with lint:allow(no-unbounded-queue)"))
