#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace mmlib {

/// Generates unique, human-scannable identifiers of the form
/// "<prefix>-<counter>-<random hex>", e.g. "model-42-9f3ab1c2".
/// Counter is process-wide; random suffix distinguishes processes.
class IdGenerator {
 public:
  /// Constructs a generator seeded deterministically from `seed`. Ids from
  /// the same seed and call order are identical, which makes experiment
  /// output reproducible.
  explicit IdGenerator(uint64_t seed);

  /// Returns the next identifier with the given prefix.
  std::string Next(const std::string& prefix);

 private:
  std::atomic<uint64_t> counter_{0};
  uint64_t suffix_state_;
};

}  // namespace mmlib

