#pragma once

#include <cstdint>
#include <queue>  // std::priority_queue event heap; drained fully every Run
#include <vector>

#include "serve/backend.h"
#include "serve/breaker.h"
#include "serve/queue.h"
#include "serve/request.h"
#include "serve/stats.h"
#include "serve/workload.h"
#include "simnet/network.h"

namespace mmlib::serve {

struct FrontendOptions {
  /// Coordinator nodes accepting requests; each has its own queues and
  /// worker slots. Requests route to a node by client hash.
  uint32_t node_count = 2;
  /// Concurrent requests one node can have in service.
  uint32_t workers_per_node = 8;
  uint32_t tenant_count = 4;
  QueueOptions queue;
  BreakerOptions breaker;
  /// Per-tenant admission rate limit in requests per virtual second, with
  /// burst `tenant_quota_burst`; 0 disables quotas (fairness then rests on
  /// the bounded queues + DRR alone).
  double tenant_quota_rps = 0.0;
  double tenant_quota_burst = 32.0;
  /// Inference batching: up to `batch_max` inference requests share one
  /// backend pass; a partial batch flushes after `batch_flush_seconds`.
  /// batch_max <= 1 disables batching.
  uint32_t batch_max = 8;
  double batch_flush_seconds = 0.002;
  uint64_t seed = 0xf20d7;
};

/// The overload-robust multi-tenant serving front end: N coordinator nodes
/// over simnet running a discrete-event simulation on the virtual clock.
/// Arrivals are admission-controlled (bounded per-tenant queues, optional
/// per-tenant quotas), scheduled fairly (deficit round robin), dispatched
/// to per-node backends behind circuit breakers, batched (inference), and
/// abandoned once their deadline has passed. The whole run is deterministic
/// per (workload seed, options): the event heap is ordered by
/// (virtual time, push sequence) and every stochastic decision is keyed by
/// request identity, so degraded runs — replica crashes, partitions, fault
/// seeds — reproduce bit-identically.
///
/// The front end advances the simnet virtual clock alongside its own event
/// clock, so replica events scheduled on the network
/// (ScheduleReplicaCrash/SchedulePartition) fire mid-run exactly as they
/// do for the storage flows.
class ServingFrontend {
 public:
  /// `backends` are borrowed, one or more; node i dispatches to backend
  /// i % backends.size(). `network` may be null (no clock sync, backends
  /// always reachable).
  ServingFrontend(const FrontendOptions& options,
                  std::vector<ServeBackend*> backends,
                  simnet::Network* network);

  /// Runs the workload to completion (all admitted requests resolved) and
  /// returns the report. A front end instance runs one workload.
  ServeReport Run(WorkloadGenerator& workload);

  const CircuitBreaker& breaker(size_t backend) const {
    return breakers_[backend];
  }

 private:
  enum class EventType : uint8_t { kArrival, kCompletion, kBatchFlush };

  struct Event {
    double time = 0.0;
    /// Push-order tiebreaker: equal-time events process in push order.
    uint64_t seq = 0;
    EventType type = EventType::kArrival;
    uint32_t node = 0;
    BackendOutcome outcome;
    std::vector<Request> batch;
    uint64_t batch_generation = 0;
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  struct NodeState {
    NodeState(uint32_t tenants, const QueueOptions& options)
        : queues(tenants, options) {}
    TenantQueues queues;
    uint32_t free_slots = 0;
    std::vector<Request> pending_batch;
    double batch_due_seconds = 0.0;
    /// Bumped on every flush; a flush timer event with a stale generation
    /// is a no-op (its batch already flushed full).
    uint64_t batch_generation = 0;
  };

  struct TenantBucket {
    double tokens = 0.0;
    double refilled_at_seconds = 0.0;
  };

  void Push(Event event);
  void SyncNetworkClock(double now_seconds);
  uint32_t RouteNode(const Request& request) const;

  void AdmitRequest(const Request& request, double now_seconds);
  void TryDispatch(uint32_t node, double now_seconds);
  bool BatchReady(const NodeState& state, double now_seconds) const;
  void FlushBatch(uint32_t node, double now_seconds);
  /// Dispatches `batch` (size 1 unless inference); consumes a worker slot
  /// unless the breaker rejects it outright.
  void DispatchRequest(uint32_t node, std::vector<Request> batch,
                       double now_seconds);
  void DeliverReply(const Event& event, double now_seconds);
  void RecordOutcome(const Request& request, RequestOutcome outcome,
                     double now_seconds);

  FrontendOptions options_;
  std::vector<ServeBackend*> backends_;
  simnet::Network* network_;
  std::vector<NodeState> nodes_;
  std::vector<CircuitBreaker> breakers_;
  std::vector<TenantBucket> buckets_;
  std::priority_queue<Event, std::vector<Event>, EventAfter> events_;
  uint64_t next_event_seq_ = 0;
  ServeReport report_;
  double last_event_seconds_ = 0.0;
};

}  // namespace mmlib::serve
