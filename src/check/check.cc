#include "check/check.h"

#include <cstdio>
#include <cstdlib>

namespace mmlib::check_internal {

void CheckFail(const char* kind, const char* file, int line,
               const char* condition, const std::string& message) {
  std::fprintf(stderr, "%s failed: %s:%d: %s%s%s\n", kind, file, line,
               condition, message.empty() ? "" : " ", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace mmlib::check_internal
