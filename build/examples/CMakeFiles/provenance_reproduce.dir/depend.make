# Empty dependencies file for provenance_reproduce.
# This may be replaced when dependencies are built.
