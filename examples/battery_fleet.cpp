/// Battery-fleet scenario — the paper's motivating example (Section 1).
///
/// A fleet of electric vehicles each runs a battery-health model. Every
/// vehicle regularly fine-tunes the last layers of its model on locally
/// collected measurements (partially updated model versions) and reports
/// the new version to a central server over a constrained cellular uplink.
/// After an incident, the server must recover the *exact* model a specific
/// vehicle was running for debugging.
///
/// The adaptive save service picks the cheapest approach per save; with
/// head-only updates over a slow link, that is the parameter update
/// approach — compare the transferred bytes against full snapshots.
#include <cstdio>
#include <vector>

#include "core/adaptive.h"
#include "core/model_code.h"
#include "core/recover.h"
#include "docstore/document_store.h"
#include "env/environment.h"
#include "filestore/file_store.h"
#include "models/zoo.h"
#include "util/random.h"

using namespace mmlib;

namespace {

/// Stand-in for on-vehicle fine-tuning: perturbs the trainable (head)
/// parameters with measurements collected since the last update.
void FineTuneOnLocalData(nn::Model* model, uint64_t seed) {
  Rng rng(seed);
  for (size_t i = 0; i < model->node_count(); ++i) {
    for (nn::Param& param : model->layer(i)->params()) {
      if (param.trainable && !param.is_buffer) {
        for (int64_t k = 0; k < param.value.numel(); ++k) {
          param.value.at(k) += rng.NextGaussian() * 0.005f;
        }
      }
    }
  }
}

}  // namespace

int main() {
  std::printf("battery fleet example\n=====================\n\n");

  constexpr int kVehicles = 4;
  constexpr int kUpdateRounds = 3;

  // Central storage; every save crosses the fleet's cellular uplink.
  docstore::InMemoryDocumentStore docs;
  filestore::InMemoryFileStore files;
  simnet::Network uplink(simnet::Link::Cellular50M());
  docstore::RemoteDocumentStore remote_docs(&docs, &uplink);
  filestore::RemoteFileStore remote_files(&files, &uplink);
  core::StorageBackends backends{&remote_docs, &remote_files, &uplink};

  core::AdaptiveSaveService service(backends);
  const env::EnvironmentInfo environment = env::CollectEnvironment();

  // The battery model: a compact CNN over sensor "images".
  models::ModelConfig config =
      models::DefaultConfig(models::Architecture::kMobileNetV2);
  const json::Value code = core::CodeDescriptorFor(config);

  // U1: develop the initial model centrally and register it.
  auto initial = models::BuildModel(config).value();
  models::ApplyPartialUpdateFreeze(&initial);
  core::SaveRequest u1;
  u1.model = &initial;
  u1.code = code;
  u1.environment = &environment;
  const auto u1_save = service.SaveModel(u1).value();
  std::printf("registered initial model %s (%.2f MB, full snapshot)\n\n",
              u1_save.model_id.c_str(), u1_save.storage_bytes / 1e6);

  // Each vehicle gets a copy and fine-tunes it over several rounds.
  struct Vehicle {
    nn::Model model{""};
    std::string reported_id;
  };
  std::vector<Vehicle> fleet(kVehicles);
  for (int v = 0; v < kVehicles; ++v) {
    fleet[v].model = models::BuildModel(config).value();
    (void)fleet[v].model.LoadParams(initial.SerializeParams());
    models::ApplyPartialUpdateFreeze(&fleet[v].model);
    fleet[v].reported_id = u1_save.model_id;
  }

  int64_t reported_bytes = 0;
  int64_t snapshot_bytes = 0;
  for (int round = 1; round <= kUpdateRounds; ++round) {
    std::printf("round %d:\n", round);
    for (int v = 0; v < kVehicles; ++v) {
      FineTuneOnLocalData(&fleet[v].model, round * 100 + v);
      core::SaveRequest request;
      request.model = &fleet[v].model;
      request.code = code;
      request.environment = &environment;
      request.base_model_id = fleet[v].reported_id;
      const auto save = service.SaveModel(request).value();
      fleet[v].reported_id = save.model_id;
      reported_bytes += save.storage_bytes;
      snapshot_bytes +=
          static_cast<int64_t>(fleet[v].model.ParamByteSize());
      std::printf(
          "  vehicle %d reported %s via %s: %.0f KB in %.3f s over the "
          "uplink\n",
          v, save.model_id.c_str(),
          std::string(service.last_choice()).c_str(),
          save.storage_bytes / 1e3, save.tts_seconds);
    }
  }
  std::printf(
      "\nfleet reported %.2f MB total; full snapshots would have been "
      "%.2f MB (saved %.1f%%)\n",
      reported_bytes / 1e6, snapshot_bytes / 1e6,
      100.0 * (1.0 - static_cast<double>(reported_bytes) / snapshot_bytes));
  std::printf("uplink: %llu messages, %.2f MB, %.2f s of transfer time\n\n",
              static_cast<unsigned long long>(uplink.MessageCount()),
              uplink.TotalBytes() / 1e6, uplink.TotalTransferSeconds());

  // Incident on vehicle 2: recover the exact model it was running.
  core::ModelRecoverer recoverer(backends);
  const std::string incident_id = fleet[2].reported_id;
  auto recovered =
      recoverer.Recover(incident_id, core::RecoverOptions{}).value();
  const bool exact =
      recovered.model.ParamsHash() == fleet[2].model.ParamsHash();
  std::printf(
      "incident analysis: recovered vehicle 2's model %s in %.3f s; "
      "bit-exact: %s\n",
      incident_id.c_str(), recovered.breakdown.TotalSeconds(),
      exact ? "yes" : "no");
  return exact ? 0 : 1;
}
