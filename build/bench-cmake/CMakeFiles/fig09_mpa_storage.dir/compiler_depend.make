# Empty compiler generated dependencies file for fig09_mpa_storage.
# This may be replaced when dependencies are built.
