/// Reproduces paper Table 3: the evaluation flows with their node and model
/// counts, and verifies each flow actually saves that many models.
#include <cstdio>

#include "bench/bench_common.h"

using namespace mmlib;
using namespace mmlib::bench;
using namespace mmlib::dist;

int main() {
  PrintHeader("Table 3", "Evaluation flows",
              "STANDARD has 4 U3 iterations per phase; DIST flows have 10.");

  struct FlowSpec {
    const char* name;
    int nodes;
    int iterations;
    int paper_models;
  };
  TablePrinter table({"name", "#nodes", "#models (run)", "#models (paper)"});
  for (const FlowSpec spec :
       {FlowSpec{"STANDARD", 1, 4, 10}, FlowSpec{"DIST-5", 5, 10, 102},
        FlowSpec{"DIST-10", 10, 10, 202}, FlowSpec{"DIST-20", 20, 10, 402}}) {
    FlowConfig config;
    config.approach = ApproachKind::kBaseline;
    config.model = TrainScaleModel(models::Architecture::kMobileNetV2);
    config.num_nodes = spec.nodes;
    config.u3_iterations = spec.iterations;
    config.dataset_divisor = 4096;
    config.training_mode = TrainingMode::kSimulated;
    config.recover_models = false;
    const FlowResult result = RunFlow(config);
    table.AddRow({spec.name, std::to_string(spec.nodes),
                  std::to_string(result.records.size()),
                  std::to_string(spec.paper_models)});
  }
  table.Print(std::cout);
  return 0;
}
