"""Include-graph extraction and the `layering` rule.

Modules are the first-level directories under src/. tools/mmlint/layers.toml
assigns every module a band; a file may include its own module and modules
in strictly lower bands. Upward and lateral includes are findings.

The declaration itself is validated: every module that exists on disk must
be banded, every banded module must exist, and bands must be integers —
so layers.toml cannot silently rot.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Tuple

from .findings import Finding
from .rules_token import FileContext

LAYERS_FILE = Path(__file__).resolve().parent / "layers.toml"


def load_bands(path: Path = LAYERS_FILE) -> Dict[str, int]:
    text = path.read_text(encoding="utf-8")
    try:
        import tomllib
        data = tomllib.loads(text)
        bands = data.get("bands", {})
    except ModuleNotFoundError:  # Python < 3.11: parse the subset we emit
        bands = _parse_bands_subset(text)
    out: Dict[str, int] = {}
    for module, band in bands.items():
        if not isinstance(band, int):
            raise ValueError(
                f"layers.toml: band for {module!r} must be an integer, "
                f"got {band!r}")
        out[module] = band
    return out


def _parse_bands_subset(text: str) -> Dict[str, int]:
    bands: Dict[str, int] = {}
    in_bands = False
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("["):
            in_bands = line == "[bands]"
            continue
        if in_bands:
            m = re.match(r"([A-Za-z0-9_-]+)\s*=\s*(-?\d+)$", line)
            if not m:
                raise ValueError(f"layers.toml: cannot parse line {raw!r}")
            bands[m.group(1)] = int(m.group(2))
    return bands


def module_of(relpath: str) -> str:
    """src/foo/bar.h -> foo; '' for files outside src/."""
    parts = relpath.split("/")
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return ""


def check_declaration(bands: Dict[str, int], src_modules: List[str],
                      findings: List[Finding]) -> None:
    for module in sorted(src_modules):
        if module not in bands:
            findings.append(Finding(
                "layering", f"src/{module}", 1,
                f"module src/{module}/ has no band in tools/mmlint/"
                "layers.toml; place it in the architecture DAG",
                suppressible=False))
    for module in sorted(bands):
        if module not in src_modules:
            findings.append(Finding(
                "layering", "tools/mmlint/layers.toml", 1,
                f"layers.toml declares module {module!r} which does not "
                "exist under src/; remove the stale band",
                suppressible=False))


def check_layering(ctx: FileContext, bands: Dict[str, int],
                   findings: List[Finding]) -> None:
    src_module = module_of(ctx.relpath)
    if not src_module or src_module not in bands:
        return  # declaration errors are reported once by check_declaration
    for d in ctx.lexed.directives:
        target = d.include_target() if d.keyword == "include" else None
        if target is None or not target.startswith('"'):
            continue  # system headers are not part of the module DAG
        include_path = target.strip('"')
        target_module = include_path.split("/")[0]
        if target_module == src_module or target_module not in bands:
            continue
        src_band = bands[src_module]
        target_band = bands[target_module]
        if target_band < src_band:
            continue
        direction = "lateral" if target_band == src_band else "upward"
        findings.append(Finding(
            "layering", ctx.relpath, d.line,
            f'{direction} include of "{include_path}": {src_module} '
            f"(band {src_band}) may only include modules below band "
            f"{src_band}, but {target_module} is band {target_band}; "
            "see tools/mmlint/layers.toml for the architecture DAG"))


def collect_edges(
        contexts: List[FileContext]) -> List[Tuple[str, str, str, int]]:
    """(source module, target module, path, line) for every cross-module
    include under src/ — used by reports and tests."""
    edges = []
    for ctx in contexts:
        src_module = module_of(ctx.relpath)
        if not src_module:
            continue
        for d in ctx.lexed.directives:
            target = d.include_target() if d.keyword == "include" else None
            if target is None or not target.startswith('"'):
                continue
            target_module = target.strip('"').split("/")[0]
            if target_module != src_module:
                edges.append((src_module, target_module, ctx.relpath, d.line))
    return edges
