# Empty dependencies file for ablation_merkle_vs_full.
# This may be replaced when dependencies are built.
