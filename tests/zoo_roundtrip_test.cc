#include <gtest/gtest.h>

#include <memory>

#include "core/baseline.h"
#include "core/model_code.h"
#include "core/param_update.h"
#include "core/recover.h"
#include "docstore/document_store.h"
#include "filestore/file_store.h"
#include "models/zoo.h"

namespace mmlib::core {
namespace {

/// End-to-end sweep: every zoo architecture round-trips through every
/// parameter-based approach, for both model relations — the cartesian
/// product behind the paper's 80-experiment evaluation grid (Section 4.1).
struct SweepCase {
  models::Architecture arch;
  bool param_update;  // false = baseline
  bool partial;
};

std::vector<SweepCase> AllSweepCases() {
  std::vector<SweepCase> cases;
  for (models::Architecture arch : models::AllArchitectures()) {
    for (bool param_update : {false, true}) {
      for (bool partial : {false, true}) {
        cases.push_back(SweepCase{arch, param_update, partial});
      }
    }
  }
  return cases;
}

class ZooRoundtrip : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ZooRoundtrip, SaveRecoverChainIsLossless) {
  const SweepCase test_case = GetParam();
  models::ModelConfig config = models::DefaultConfig(test_case.arch);
  config.channel_divisor = 8;
  config.image_size = 28;
  config.num_classes = 10;
  auto model = models::BuildModel(config).value();
  if (test_case.partial) {
    models::ApplyPartialUpdateFreeze(&model);
  }

  docstore::InMemoryDocumentStore docs;
  filestore::InMemoryFileStore files;
  StorageBackends backends{&docs, &files, nullptr};
  std::unique_ptr<SaveService> service;
  if (test_case.param_update) {
    service = std::make_unique<ParamUpdateSaveService>(backends);
  } else {
    service = std::make_unique<BaselineSaveService>(backends);
  }
  const env::EnvironmentInfo environment = env::CollectEnvironment();

  SaveRequest request;
  request.model = &model;
  request.code = CodeDescriptorFor(config);
  request.environment = &environment;
  const auto initial = service->SaveModel(request).value();

  // Two derived versions via simulated updates of the trainable layers.
  Rng rng(static_cast<uint64_t>(test_case.arch) * 100 + test_case.partial);
  std::string base_id = initial.model_id;
  for (int round = 0; round < 2; ++round) {
    for (size_t i = 0; i < model.node_count(); ++i) {
      for (nn::Param& param : model.layer(i)->params()) {
        if (param.trainable && !param.is_buffer) {
          for (int64_t k = 0; k < param.value.numel(); ++k) {
            param.value.at(k) += rng.NextGaussian() * 0.01f;
          }
        }
      }
    }
    SaveRequest derived = request;
    derived.base_model_id = base_id;
    base_id = service->SaveModel(derived).value().model_id;
  }

  ModelRecoverer recoverer(backends);
  auto recovered = recoverer.Recover(base_id, RecoverOptions{}).value();
  EXPECT_EQ(recovered.model.ParamsHash(), model.ParamsHash());
  EXPECT_TRUE(recovered.checksum_verified);
  EXPECT_EQ(recovered.model.ArchitectureFingerprint(),
            model.ArchitectureFingerprint());
  EXPECT_EQ(recoverer.BaseChainLength(base_id).value(), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    EvaluationGrid, ZooRoundtrip, ::testing::ValuesIn(AllSweepCases()),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      std::string name(models::ArchitectureName(info.param.arch));
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      name += info.param.param_update ? "_PUA" : "_BA";
      name += info.param.partial ? "_partial" : "_full";
      return name;
    });

}  // namespace
}  // namespace mmlib::core
