file(REMOVE_RECURSE
  "../bench/fig04_merkle"
  "../bench/fig04_merkle.pdb"
  "CMakeFiles/fig04_merkle.dir/fig04_merkle.cc.o"
  "CMakeFiles/fig04_merkle.dir/fig04_merkle.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_merkle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
