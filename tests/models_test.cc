#include <gtest/gtest.h>

#include "models/zoo.h"

namespace mmlib::models {
namespace {

/// The headline fidelity check: at full scale, every architecture's
/// trainable parameter count and partially-updated parameter count match the
/// paper's Table 2 exactly.
class Table2Fidelity : public ::testing::TestWithParam<Table2Row> {};

TEST_P(Table2Fidelity, FullScaleParamCountsMatchPaper) {
  const Table2Row row = GetParam();
  const Architecture arch = ArchitectureFromName(row.name).value();
  auto model = BuildModel(FullScaleConfig(arch));
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_EQ(model->TrainableParamCount(), row.params);
  EXPECT_EQ(ApplyPartialUpdateFreeze(&model.value()),
            row.partially_updated_params);
}

INSTANTIATE_TEST_SUITE_P(PaperTable2, Table2Fidelity,
                         ::testing::ValuesIn(Table2Reference()));

class ZooForward : public ::testing::TestWithParam<Architecture> {};

TEST_P(ZooForward, DefaultConfigForwardBackwardWork) {
  ModelConfig config = DefaultConfig(GetParam());
  // Keep the smoke test fast.
  config.channel_divisor = 8;
  config.image_size = 28;
  config.num_classes = 10;
  auto model = BuildModel(config);
  ASSERT_TRUE(model.ok()) << model.status();

  nn::ExecutionContext ctx = nn::ExecutionContext::Deterministic(1);
  ctx.set_training(true);
  Rng rng(2);
  Tensor input = Tensor::Gaussian(Shape{2, 3, 28, 28}, 1.0f, &rng);
  auto output = model->Forward(input, &ctx);
  ASSERT_TRUE(output.ok()) << output.status();
  EXPECT_EQ(output->shape(), (Shape{2, 10}));

  auto grad = model->Backward(Tensor::Full(output->shape(), 0.1f), &ctx);
  ASSERT_TRUE(grad.ok()) << grad.status();
  EXPECT_EQ(grad->shape(), input.shape());
}

TEST_P(ZooForward, InitializationIsSeedDeterministic) {
  ModelConfig config = DefaultConfig(GetParam());
  config.channel_divisor = 8;
  config.image_size = 28;
  auto a = BuildModel(config);
  auto b = BuildModel(config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->ParamsHash(), b->ParamsHash());

  config.init_seed = 999;
  auto c = BuildModel(config);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->ParamsHash(), c->ParamsHash());
}

TEST_P(ZooForward, FingerprintStableAcrossInitSeeds) {
  ModelConfig config = DefaultConfig(GetParam());
  config.channel_divisor = 8;
  auto a = BuildModel(config);
  config.init_seed = 12345;
  auto b = BuildModel(config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->ArchitectureFingerprint(), b->ArchitectureFingerprint());
}

INSTANTIATE_TEST_SUITE_P(
    AllArchitectures, ZooForward, ::testing::ValuesIn(AllArchitectures()),
    [](const ::testing::TestParamInfo<Architecture>& info) {
      std::string name(ArchitectureName(info.param));
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

TEST(ZooTest, ArchitectureNamesRoundtrip) {
  for (Architecture arch : AllArchitectures()) {
    EXPECT_EQ(ArchitectureFromName(ArchitectureName(arch)).value(), arch);
  }
  EXPECT_FALSE(ArchitectureFromName("VGG-16").ok());
}

TEST(ZooTest, FingerprintsDifferAcrossArchitectures) {
  std::vector<Digest> fingerprints;
  for (Architecture arch : AllArchitectures()) {
    ModelConfig config = DefaultConfig(arch);
    config.channel_divisor = 8;
    fingerprints.push_back(
        BuildModel(config)->ArchitectureFingerprint());
  }
  for (size_t i = 0; i < fingerprints.size(); ++i) {
    for (size_t j = i + 1; j < fingerprints.size(); ++j) {
      EXPECT_NE(fingerprints[i], fingerprints[j]);
    }
  }
}

TEST(ZooTest, DivisorScalesParameterCount) {
  ModelConfig config = DefaultConfig(Architecture::kResNet18);
  config.channel_divisor = 4;
  const int64_t at4 = BuildModel(config)->TrainableParamCount();
  config.channel_divisor = 8;
  config.num_classes = 125;
  const int64_t at8 = BuildModel(config)->TrainableParamCount();
  // Parameters scale roughly quadratically with channel width.
  EXPECT_GT(at4, 3 * at8);
  EXPECT_LT(at4, 6 * at8);
}

TEST(ZooTest, Table2SizeColumnIsParamsTimesFourBytes) {
  // The paper's "Size" column is the serialized parameter payload; verify
  // our models' payload is close (buffers add a small overhead).
  for (const Table2Row& row : Table2Reference()) {
    const double expected_mb = row.params * 4.0 / 1e6;
    EXPECT_NEAR(expected_mb, row.size_mb, row.size_mb * 0.05) << row.name;
  }
}

TEST(ZooTest, PartialFreezeKeepsOnlyClassifierTrainable) {
  ModelConfig config = DefaultConfig(Architecture::kMobileNetV2);
  config.channel_divisor = 8;
  config.num_classes = 125;
  auto model = BuildModel(config);
  ASSERT_TRUE(model.ok());
  ApplyPartialUpdateFreeze(&model.value());
  for (size_t i = 0; i < model->node_count(); ++i) {
    const nn::Layer* layer = model->layer(i);
    if (layer->HasTrainableParams()) {
      EXPECT_TRUE(IsClassifierLayer(*layer)) << layer->name();
    }
  }
  // MobileNetV2 head: 1280/8 * 125 + 125.
  EXPECT_EQ(model->TrainableParamCount(), 160 * 125 + 125);
}

TEST(ZooTest, PaperOrderIsByParameterCount) {
  // Table 2 lists architectures from fewest to most parameters.
  const auto& rows = Table2Reference();
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1].params, rows[i].params);
  }
}

}  // namespace
}  // namespace mmlib::models
