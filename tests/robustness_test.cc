#include <gtest/gtest.h>

#include "compress/codec.h"
#include "compress/huffman.h"
#include "hash/merkle_tree.h"
#include "json/json.h"
#include "tensor/tensor.h"
#include "util/random.h"

namespace mmlib {
namespace {

/// Fuzz-style robustness sweeps: every parser in the persistence path must
/// handle arbitrary corrupted input by returning an error — never by
/// crashing, looping, or silently returning wrong data.

Bytes RandomBytes(size_t size, Rng* rng) {
  Bytes data(size);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng->NextBelow(256));
  }
  return data;
}

class FuzzSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSeeds, JsonParserSurvivesGarbage) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const Bytes garbage = RandomBytes(rng.NextBelow(200), &rng);
    const std::string text(garbage.begin(), garbage.end());
    // Must return (value or error) without crashing.
    auto result = json::Parse(text);
    (void)result;
  }
}

TEST_P(FuzzSeeds, CodecUnframeSurvivesBitFlips) {
  Rng rng(GetParam());
  // Build a valid frame, then flip random bytes: Unframe must either fail
  // or (if the flip missed every meaningful bit) return the exact payload.
  Bytes payload = RandomBytes(500 + rng.NextBelow(2000), &rng);
  for (CodecKind kind : {CodecKind::kRle, CodecKind::kLz77,
                         CodecKind::kLz77Huffman}) {
    const Bytes frame = Codec::ForKind(kind)->Frame(payload).value();
    for (int round = 0; round < 50; ++round) {
      Bytes corrupted = frame;
      const size_t position = rng.NextBelow(corrupted.size());
      corrupted[position] ^= static_cast<uint8_t>(1 + rng.NextBelow(255));
      auto result = Codec::Unframe(corrupted);
      if (result.ok()) {
        EXPECT_EQ(result.value(), payload);
      }
    }
  }
}

TEST_P(FuzzSeeds, CodecDecompressSurvivesGarbage) {
  Rng rng(GetParam());
  // Callers decompress with an output bound (Unframe derives it from the
  // frame header); with the bound set, garbage cannot exhaust memory.
  constexpr size_t kLimit = 1 << 20;
  for (int round = 0; round < 100; ++round) {
    const Bytes garbage = RandomBytes(rng.NextBelow(500), &rng);
    for (CodecKind kind : {CodecKind::kRle, CodecKind::kLz77,
                           CodecKind::kLz77Huffman}) {
      auto result = Codec::ForKind(kind)->Decompress(garbage, kLimit);
      if (result.ok()) {
        EXPECT_LE(result->size(), kLimit);
      }
    }
    auto unframed = Codec::Unframe(garbage);
    (void)unframed;
  }
}

TEST_P(FuzzSeeds, HuffmanDecodeSurvivesGarbage) {
  Rng rng(GetParam());
  for (int round = 0; round < 100; ++round) {
    const Bytes garbage = RandomBytes(140 + rng.NextBelow(500), &rng);
    auto result = huffman::Decode(garbage);
    (void)result;
  }
}

TEST_P(FuzzSeeds, TensorDeserializeSurvivesGarbage) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const Bytes garbage = RandomBytes(rng.NextBelow(300), &rng);
    auto result = Tensor::Deserialize(garbage);
    (void)result;
  }
}

TEST_P(FuzzSeeds, MerkleDeserializeSurvivesGarbage) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const Bytes garbage = RandomBytes(rng.NextBelow(400), &rng);
    auto result = MerkleTree::Deserialize(garbage);
    (void)result;
  }
}

TEST_P(FuzzSeeds, TensorRoundtripWithBitFlipsNeverMisreports) {
  Rng rng(GetParam());
  Tensor tensor = Tensor::Gaussian(Shape{37}, 1.0f, &rng);
  const Bytes valid = tensor.Serialize();
  for (int round = 0; round < 100; ++round) {
    Bytes corrupted = valid;
    // Flip within the header region (shape/count), where corruption must
    // be detected structurally.
    const size_t position = rng.NextBelow(24);
    corrupted[position] ^= static_cast<uint8_t>(1 + rng.NextBelow(255));
    auto result = Tensor::Deserialize(corrupted);
    if (result.ok()) {
      // A header flip that still parses must describe the same layout.
      EXPECT_EQ(result->numel(), tensor.numel());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace mmlib
