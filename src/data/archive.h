#pragma once

#include <memory>
#include <string>

#include "compress/codec.h"
#include "data/dataset.h"
#include "util/bytes.h"
#include "util/result.h"

namespace mmlib::data {

/// Compresses a dataset into a single self-contained file and restores it.
///
/// This implements the paper's dataset handling for the model provenance
/// approach (Section 3.3 "Managing Data sets": "MMlib compresses datasets to
/// a file, saves the file, and references it in the provenance data").
class DatasetArchiver {
 public:
  explicit DatasetArchiver(const Codec* codec) : codec_(codec) {}

  /// Serializes every image and label of `dataset` and compresses the
  /// payload with the configured codec. The archive embeds the dataset name
  /// and a content hash for post-extraction verification.
  Result<Bytes> Archive(const Dataset& dataset) const;

  /// Restores the dataset from an archive; verifies the embedded content
  /// hash and fails with Corruption on any mismatch.
  static Result<std::unique_ptr<InMemoryDataset>> Extract(
      const Bytes& archive);

 private:
  const Codec* codec_;
};

}  // namespace mmlib::data

