#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "kernels/conv_plan.h"
#include "kernels/linear_plan.h"

namespace mmlib::kernels {

/// Process-wide cache of kernel plans keyed by shape. Layers hit the cache
/// once per (shape, batch) combination and then hold the shared_ptr, so
/// repeated training steps — and distinct layers with the same geometry —
/// reuse both the plan and its scratch pool. Internally synchronized.
///
/// Capacity-bounded: a shape-churning workload (per-tenant geometries,
/// probing sweeps) would otherwise retain every plan — and its scratch
/// pool — forever. Eviction is least-recently-used by a monotonic use tick
/// assigned in lookup order, so which plan is evicted depends only on the
/// sequence of Get calls, never on wall time or hashing. Evicting a plan a
/// layer still holds is safe: the shared_ptr keeps it alive; the cache just
/// forgets it.
class PlanCache {
 public:
  /// Default plan capacity. A full model is ~tens of distinct geometries;
  /// 128 keeps several model configurations warm while bounding churn.
  static constexpr size_t kDefaultCapacity = 128;

  struct Stats {
    uint64_t conv_hits = 0;
    uint64_t conv_misses = 0;
    uint64_t linear_hits = 0;
    uint64_t linear_misses = 0;
    uint64_t evictions = 0;
    size_t size = 0;
  };

  static PlanCache& Instance();

  std::shared_ptr<const ConvPlan> GetConvPlan(const ConvGeom& geom);
  std::shared_ptr<const LinearPlan> GetLinearPlan(int64_t batch,
                                                  int64_t in_features,
                                                  int64_t out_features);

  /// Caps the number of cached plans (conv + linear combined). Lowering the
  /// capacity evicts immediately, least-recently-used first.
  void set_capacity(size_t capacity);
  size_t capacity() const;

  Stats stats() const;
  /// Drops all cached plans and zeroes the counters, restoring the default
  /// capacity (tests only).
  void Clear();

 private:
  PlanCache() = default;

  template <typename Plan>
  struct Entry {
    std::shared_ptr<const Plan> plan;
    uint64_t last_use = 0;
  };

  /// Caller holds mu_. Evicts LRU entries until size fits capacity_.
  void EvictLocked();

  // Full geometry: (batch, in_c, out_c, kernel, stride, padding, groups,
  // height, width). out_h/out_w are derived, so they are not in the key.
  using ConvKey = std::tuple<int64_t, int64_t, int64_t, int64_t, int64_t,
                             int64_t, int64_t, int64_t, int64_t>;
  using LinearKey = std::tuple<int64_t, int64_t, int64_t>;

  mutable std::mutex mu_;
  // std::map, not unordered_map, so iteration order can never leak into
  // anything hashed (the no-unordered-order-leak lint's concern).
  std::map<ConvKey, Entry<ConvPlan>> conv_plans_;
  std::map<LinearKey, Entry<LinearPlan>> linear_plans_;
  size_t capacity_ = kDefaultCapacity;
  uint64_t use_tick_ = 0;
  Stats stats_;
};

}  // namespace mmlib::kernels
