#include "data/prefetcher.h"

#include <utility>

namespace mmlib::data {

void BatchPrefetcher::StartEpoch(uint64_t epoch, size_t first_batch,
                                 size_t batch_count) {
  worker_.Drain();
  loader_->StartEpoch(epoch);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Slot& slot : slots_) {
      if (slot.ready) {
        // Stale fill from the previous epoch; keep the storage, drop the
        // contents.
        spare_.push_back(std::move(slot.batch));
        slot.ready = false;
      }
      slot.status = Status::OK();
    }
    next_batch_ = first_batch;
    end_batch_ = batch_count;
    next_fill_ = first_batch;
  }
  // Prime both buffers; every later fill is scheduled as its slot frees up.
  for (int i = 0; i < 2 && next_fill_ < end_batch_; ++i) {
    ScheduleFill(next_fill_ % 2, next_fill_);
    ++next_fill_;
  }
}

void BatchPrefetcher::ScheduleFill(size_t slot_index, size_t batch_index) {
  worker_.Submit([this, slot_index, batch_index] {
    Slot& slot = slots_[slot_index];
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (slot.batch.images.numel() == 0 && !spare_.empty()) {
        // Adopt recycled storage so the fill reuses its allocation.
        slot.batch = std::move(spare_.back());
        spare_.pop_back();
      }
    }
    // FillBatch is const on the loader and the consumer never touches a
    // non-ready slot, so the fill itself needs no lock.
    const Status status = loader_->FillBatch(batch_index, &slot.batch);
    {
      std::lock_guard<std::mutex> lock(mu_);
      slot.status = status;
      slot.ready = true;
      ++background_fills_;
    }
    ready_.notify_all();
  });
}

Result<Batch> BatchPrefetcher::Next() {
  if (next_batch_ >= end_batch_) {
    return Status::OutOfRange("prefetcher epoch exhausted");
  }
  const size_t slot_index = next_batch_ % 2;
  Slot& slot = slots_[slot_index];
  Batch batch;
  {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [&slot] { return slot.ready; });
    if (!slot.status.ok()) {
      return slot.status;
    }
    batch = std::move(slot.batch);
    slot.ready = false;
  }
  ++next_batch_;
  if (next_fill_ < end_batch_) {
    ScheduleFill(next_fill_ % 2, next_fill_);
    ++next_fill_;
  }
  return batch;
}

void BatchPrefetcher::Recycle(Batch batch) {
  std::lock_guard<std::mutex> lock(mu_);
  spare_.push_back(std::move(batch));
}

uint64_t BatchPrefetcher::background_fills() const {
  std::lock_guard<std::mutex> lock(mu_);
  return background_fills_;
}

}  // namespace mmlib::data
