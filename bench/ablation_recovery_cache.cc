/// Ablation: a snapshot cache in the recoverer (the storage-retraining
/// tradeoff knob of paper Section 4.7). The PUA/MPA TTR staircase exists
/// because recovering a derived model recovers all its base models; caching
/// recovered states flattens it at the cost of memory.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/recover.h"

using namespace mmlib;
using namespace mmlib::bench;
using namespace mmlib::dist;

int main() {
  PrintHeader(
      "Ablation", "Recoverer snapshot cache vs recursive recovery (MPA)",
      "Fully updated MobileNetV2 chain saved with the provenance approach;\n"
      "each model recovered once in save order (use case U4). Without the\n"
      "cache, recovering U3-x-n replays n trainings; with it, one.");

  // Build a deep MPA chain once (real deterministic training).
  Backing backing;
  FlowConfig config;
  config.approach = ApproachKind::kProvenance;
  config.model = TrainScaleModel(models::Architecture::kMobileNetV2);
  config.u3_iterations = 8;
  config.dataset_divisor = 2048;
  config.train.epochs = 1;
  config.train.max_batches_per_epoch = 1;
  config.train.loader.batch_size = 4;
  config.recover_models = false;
  EvaluationFlow flow(config, backing.backends);
  auto flow_result = flow.Run();
  if (!flow_result.ok()) {
    std::fprintf(stderr, "flow failed: %s\n",
                 flow_result.status().ToString().c_str());
    return 1;
  }

  auto recover_all = [&](bool cached) {
    core::ModelRecoverer recoverer(backing.backends);
    if (cached) {
      recoverer.EnableSnapshotCache(256 << 20);
    }
    std::vector<std::pair<std::string, double>> times;
    for (const UseCaseRecord& record : flow_result->records) {
      core::CostMeter meter(backing.backends);
      auto recovered =
          recoverer.Recover(record.model_id, core::RecoverOptions{});
      if (!recovered.ok()) {
        std::fprintf(stderr, "recover failed: %s\n",
                     recovered.status().ToString().c_str());
        std::abort();
      }
      times.push_back({record.label, meter.ElapsedSeconds()});
    }
    return times;
  };

  const auto uncached = recover_all(false);
  const auto cached = recover_all(true);

  TablePrinter table({"use case", "TTR (no cache)", "TTR (cache)",
                      "speedup"});
  double uncached_total = 0;
  double cached_total = 0;
  for (size_t i = 0; i < uncached.size(); ++i) {
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx",
                  uncached[i].second / cached[i].second);
    table.AddRow({uncached[i].first, Millis(uncached[i].second),
                  Millis(cached[i].second), speedup});
    uncached_total += uncached[i].second;
    cached_total += cached[i].second;
  }
  table.Print(std::cout);
  std::printf(
      "\ntotal U4 sweep: %.3f s without cache vs %.3f s with cache "
      "(%.1fx);\nthe cache removes the staircase (each model's bases were "
      "recovered before it).\n",
      uncached_total, cached_total, uncached_total / cached_total);
  return 0;
}
