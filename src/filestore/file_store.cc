#include "filestore/file_store.h"

#include "check/validators.h"
#include <filesystem>
#include <fstream>

namespace mmlib::filestore {

InMemoryFileStore::InMemoryFileStore() : id_generator_(0xf17e) {}

Result<std::string> InMemoryFileStore::SaveFile(const Bytes& content) {
  const std::string id = id_generator_.Next("file");
  files_[id] = content;
  return id;
}

Result<Bytes> InMemoryFileStore::LoadFile(const std::string& id) {
  auto it = files_.find(id);
  if (it == files_.end()) {
    return Status::NotFound("no file " + id);
  }
  return it->second;
}

Status InMemoryFileStore::Delete(const std::string& id) {
  if (files_.erase(id) == 0) {
    return Status::NotFound("no file " + id);
  }
  return Status::OK();
}

Result<size_t> InMemoryFileStore::FileSize(const std::string& id) {
  auto it = files_.find(id);
  if (it == files_.end()) {
    return Status::NotFound("no file " + id);
  }
  return it->second.size();
}

size_t InMemoryFileStore::TotalStoredBytes() const {
  size_t total = 0;
  for (const auto& [id, content] : files_) {
    total += content.size();
  }
  return total;
}

LocalDirFileStore::LocalDirFileStore(std::string root)
    : root_(std::move(root)), id_generator_(0xf17f) {}

Result<std::unique_ptr<LocalDirFileStore>> LocalDirFileStore::Open(
    const std::string& root) {
  std::error_code ec;
  std::filesystem::create_directories(root, ec);
  if (ec) {
    return Status::IoError("cannot create " + root + ": " + ec.message());
  }
  return std::unique_ptr<LocalDirFileStore>(new LocalDirFileStore(root));
}

Result<std::string> LocalDirFileStore::PathFor(const std::string& id) const {
  MMLIB_RETURN_IF_ERROR(
      check::ValidateResourceName(id, /*allow_dot=*/false, "file id"));
  return root_ + "/" + id + ".bin";
}

Result<std::string> LocalDirFileStore::SaveFile(const Bytes& content) {
  const std::string id = id_generator_.Next("file");
  MMLIB_ASSIGN_OR_RETURN(std::string path, PathFor(id));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open " + path);
  }
  out.write(reinterpret_cast<const char*>(content.data()),
            static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) {
    return Status::IoError("failed writing " + path);
  }
  return id;
}

Result<Bytes> LocalDirFileStore::LoadFile(const std::string& id) {
  MMLIB_ASSIGN_OR_RETURN(std::string path, PathFor(id));
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("no file " + id);
  }
  in.seekg(0, std::ios::end);
  const std::streamsize size = in.tellg();
  in.seekg(0, std::ios::beg);
  if (size < 0) {
    // tellg() reports -1 on failure; without this check the cast below
    // requests a SIZE_MAX-byte allocation.
    return Status::IoError("cannot determine size of " + path);
  }
  Bytes content(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(content.data()), size);
  if (!in) {
    return Status::IoError("failed reading " + path);
  }
  return content;
}

Status LocalDirFileStore::Delete(const std::string& id) {
  MMLIB_ASSIGN_OR_RETURN(std::string path, PathFor(id));
  std::error_code ec;
  if (!std::filesystem::remove(path, ec) || ec) {
    return Status::NotFound("no file " + id);
  }
  return Status::OK();
}

Result<size_t> LocalDirFileStore::FileSize(const std::string& id) {
  MMLIB_ASSIGN_OR_RETURN(std::string path, PathFor(id));
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) {
    return Status::NotFound("no file " + id);
  }
  return static_cast<size_t>(size);
}

size_t LocalDirFileStore::TotalStoredBytes() const {
  size_t total = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(root_, ec)) {
    if (entry.is_regular_file(ec)) {
      total += entry.file_size(ec);
    }
  }
  return total;
}

size_t LocalDirFileStore::FileCount() const {
  size_t count = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(root_, ec)) {
    if (entry.is_regular_file(ec)) {
      ++count;
    }
  }
  return count;
}

Result<std::string> RemoteFileStore::SaveFile(const Bytes& content) {
  network_->Transfer(content.size());
  return backend_->SaveFile(content);
}

Result<Bytes> RemoteFileStore::LoadFile(const std::string& id) {
  MMLIB_ASSIGN_OR_RETURN(Bytes content, backend_->LoadFile(id));
  network_->Transfer(content.size());
  return content;
}

Status RemoteFileStore::Delete(const std::string& id) {
  network_->Transfer(id.size());
  return backend_->Delete(id);
}

}  // namespace mmlib::filestore
