#include "core/export.h"

#include "core/model_code.h"
#include "hash/sha256.h"

namespace mmlib::core {

namespace {
constexpr int kFormatVersion = 1;
}  // namespace

Bytes PortableBundle::Serialize() const {
  BytesWriter writer;
  writer.WriteString(manifest.Dump());
  writer.WriteBlob(parameters);
  return writer.TakeBytes();
}

Result<PortableBundle> PortableBundle::Deserialize(const Bytes& data) {
  BytesReader reader(data);
  MMLIB_ASSIGN_OR_RETURN(std::string manifest_text, reader.ReadString());
  PortableBundle bundle;
  MMLIB_ASSIGN_OR_RETURN(bundle.manifest, json::Parse(manifest_text));
  MMLIB_ASSIGN_OR_RETURN(bundle.parameters, reader.ReadBlob());
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after portable bundle");
  }
  return bundle;
}

Result<PortableBundle> ExportPortable(const nn::Model& model,
                                      const json::Value& code) {
  PortableBundle bundle;
  bundle.parameters = model.SerializeParams();

  json::Value manifest = json::Value::MakeObject();
  manifest.Set("format", "mmlib-portable");
  manifest.Set("version", kFormatVersion);
  manifest.Set("code", code);
  manifest.Set("architecture", model.ArchitectureFingerprint().ToHex());
  manifest.Set("params_hash", model.ParamsHash().ToHex());
  manifest.Set("params_bytes", static_cast<int64_t>(
                                   bundle.parameters.size()));
  bundle.manifest = std::move(manifest);
  return bundle;
}

Result<nn::Model> ImportPortable(const PortableBundle& bundle) {
  MMLIB_ASSIGN_OR_RETURN(std::string format,
                         bundle.manifest.GetString("format"));
  if (format != "mmlib-portable") {
    return Status::InvalidArgument("not a portable model bundle");
  }
  MMLIB_ASSIGN_OR_RETURN(int64_t version, bundle.manifest.GetInt("version"));
  if (version != kFormatVersion) {
    return Status::Unimplemented("unsupported bundle version " +
                                 std::to_string(version));
  }
  MMLIB_ASSIGN_OR_RETURN(const json::Value* code,
                         bundle.manifest.GetMember("code"));
  MMLIB_ASSIGN_OR_RETURN(nn::Model model, BuildModelFromCode(*code));
  MMLIB_RETURN_IF_ERROR(model.LoadParams(bundle.parameters));

  MMLIB_ASSIGN_OR_RETURN(std::string expected_arch,
                         bundle.manifest.GetString("architecture"));
  if (model.ArchitectureFingerprint().ToHex() != expected_arch) {
    return Status::Corruption("bundle architecture fingerprint mismatch");
  }
  MMLIB_ASSIGN_OR_RETURN(std::string expected_hash,
                         bundle.manifest.GetString("params_hash"));
  if (model.ParamsHash().ToHex() != expected_hash) {
    return Status::Corruption("bundle parameter hash mismatch");
  }
  return model;
}

}  // namespace mmlib::core
