file(REMOVE_RECURSE
  "../bench/fig02_dot_product"
  "../bench/fig02_dot_product.pdb"
  "CMakeFiles/fig02_dot_product.dir/fig02_dot_product.cc.o"
  "CMakeFiles/fig02_dot_product.dir/fig02_dot_product.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_dot_product.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
