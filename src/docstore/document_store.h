#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hash/sha256.h"
#include "json/json.h"
#include "simnet/network.h"
#include "simnet/retry.h"
#include "util/id_generator.h"
#include "persist/journal.h"
#include "util/result.h"

namespace mmlib::docstore {

/// A JSON document database organized in named collections — mmlib's
/// MongoDB substitute (paper Section 3.1: model metadata is saved as JSON
/// documents identified by generated ids and persisted in a document
/// database).
class DocumentStore {
 public:
  virtual ~DocumentStore() = default;

  /// Inserts `doc` into `collection` and returns its generated id. The id
  /// is also written into the stored document as member "_id".
  virtual Result<std::string> Insert(const std::string& collection,
                                     json::Value doc) = 0;

  /// Two-phase insert, first half: reserves and returns the id a following
  /// InsertWithId will store under, without writing anything. Journaled
  /// saves log the id as a durable intent between the two phases (see
  /// FileStore::AllocateFileId). Stores without two-phase support report
  /// Unimplemented and only work on the non-journaled path.
  virtual Result<std::string> AllocateDocId(const std::string& collection) {
    (void)collection;
    return Status::Unimplemented("store does not support two-phase inserts");
  }

  /// Two-phase insert, second half: stores `doc` under a previously
  /// allocated id (written into the document as "_id"). Idempotent —
  /// rewriting the same id is allowed (retries).
  virtual Status InsertWithId(const std::string& collection,
                              const std::string& id, json::Value doc) {
    (void)collection;
    (void)id;
    (void)doc;
    return Status::Unimplemented("store does not support two-phase inserts");
  }

  /// Loads the document with `id`.
  virtual Result<json::Value> Get(const std::string& collection,
                                  const std::string& id) = 0;

  /// Deletes a document; NotFound if absent, IoError if removal failed.
  virtual Status Delete(const std::string& collection,
                        const std::string& id) = 0;

  /// Ids of all documents in a collection, sorted.
  virtual Result<std::vector<std::string>> ListIds(
      const std::string& collection) = 0;

  /// Ids of documents whose top-level member `key` is the string `value`
  /// (MongoDB-style equality query). The base implementation scans the
  /// collection; stores may override with indexed lookups.
  virtual Result<std::vector<std::string>> FindByField(
      const std::string& collection, const std::string& key,
      const std::string& value);

  /// Names of all non-empty collections, sorted — the enumeration primitive
  /// of the replication scrubber. Stores that cannot enumerate report
  /// Unimplemented.
  virtual Result<std::vector<std::string>> ListCollections() {
    return Status::Unimplemented("store does not support enumeration");
  }

  /// SHA-256 of the canonical serialization of a stored document (with its
  /// "_id" member) — computed where the document lives, so a replica can
  /// answer an anti-entropy probe without shipping the document. The base
  /// implementation loads and hashes locally.
  virtual Result<Digest> DocumentDigest(const std::string& collection,
                                        const std::string& id);

  /// Total bytes of all stored documents (canonical serialization).
  virtual size_t TotalStoredBytes() const = 0;

  /// Number of stored documents across collections.
  virtual size_t DocumentCount() const = 0;
};

/// Heap-backed store; the reference implementation.
class InMemoryDocumentStore : public DocumentStore {
 public:
  InMemoryDocumentStore();

  Result<std::string> Insert(const std::string& collection,
                             json::Value doc) override;
  Result<std::string> AllocateDocId(const std::string& collection) override;
  Status InsertWithId(const std::string& collection, const std::string& id,
                      json::Value doc) override;
  Result<json::Value> Get(const std::string& collection,
                          const std::string& id) override;
  Status Delete(const std::string& collection, const std::string& id) override;
  Result<std::vector<std::string>> ListIds(
      const std::string& collection) override;
  Result<std::vector<std::string>> ListCollections() override;
  size_t TotalStoredBytes() const override;
  size_t DocumentCount() const override;

 private:
  IdGenerator id_generator_;
  // collection -> id -> canonical JSON text.
  std::map<std::string, std::map<std::string, std::string>> collections_;
};

/// Disk-backed store: one file per document under
/// `root/<collection>/<id>.json`. Documents survive process restarts.
/// Writes are crash-safe (tmp + rename; a failed write cleans up its
/// temporary), and only `*.json` entries count as stored documents.
/// Opening with a SaveJournal garbage-collects leftover temporaries and
/// replays pending journal records, undoing document inserts of
/// half-finished saves (see persist/journal.h).
class PersistentDocumentStore : public DocumentStore {
 public:
  /// Opens (and creates if needed) the store rooted at `root`.
  static Result<std::unique_ptr<PersistentDocumentStore>> Open(
      const std::string& root, persist::SaveJournal* journal = nullptr);

  Result<std::string> Insert(const std::string& collection,
                             json::Value doc) override;
  Result<std::string> AllocateDocId(const std::string& collection) override;
  Status InsertWithId(const std::string& collection, const std::string& id,
                      json::Value doc) override;
  Result<json::Value> Get(const std::string& collection,
                          const std::string& id) override;
  Status Delete(const std::string& collection, const std::string& id) override;
  Result<std::vector<std::string>> ListIds(
      const std::string& collection) override;
  Result<std::vector<std::string>> ListCollections() override;
  size_t TotalStoredBytes() const override;
  size_t DocumentCount() const override;

 private:
  explicit PersistentDocumentStore(std::string root);

  Result<std::string> PathFor(const std::string& collection,
                              const std::string& id) const;

  std::string root_;
  IdGenerator id_generator_;
};

/// Decorator charging every operation to a simulated network link as a
/// request/response message pair — models a MongoDB instance running on a
/// separate machine, as in the paper's three-machine setup (Section 4.1).
/// Under an active FaultPlan messages can drop, time out, or corrupt;
/// transient failures are retried with the store's RetryPolicy. Document
/// payloads are small and self-describing, so a corrupted message (either
/// direction) is detected by the receiving side and handled as a transient
/// rejection, never delivered as damaged metadata.
class RemoteDocumentStore : public DocumentStore {
 public:
  RemoteDocumentStore(DocumentStore* backend, simnet::Network* network)
      : backend_(backend),
        network_(network),
        retrier_(simnet::RetryPolicy{}, network) {}

  /// Replaces the retry policy and resets the retry counter/jitter stream.
  void set_retry_policy(const simnet::RetryPolicy& policy) {
    retrier_ = simnet::Retrier(policy, network_);
  }

  /// Routes this store's messages to simnet replica node `replica` — while
  /// that replica is down or partitioned away, every faultable operation
  /// fails Unavailable. The replicated store binds one RemoteDocumentStore
  /// per backend replica.
  void BindReplica(size_t replica) { replica_ = replica; }
  size_t bound_replica() const { return replica_; }

  /// Retries performed (attempts beyond the first) across all operations.
  uint64_t retry_count() const { return retrier_.retry_count(); }

  /// Operations abandoned because the retry budget ran out (fail-fast path
  /// of below-quorum reads; see RetryPolicy::total_deadline_seconds).
  uint64_t deadline_exhausted_count() const {
    return retrier_.deadline_exhausted_count();
  }

  Result<std::string> Insert(const std::string& collection,
                             json::Value doc) override;
  Result<std::string> AllocateDocId(const std::string& collection) override;
  Status InsertWithId(const std::string& collection, const std::string& id,
                      json::Value doc) override;
  Result<json::Value> Get(const std::string& collection,
                          const std::string& id) override;
  Status Delete(const std::string& collection, const std::string& id) override;
  Result<std::vector<std::string>> ListIds(
      const std::string& collection) override;
  Result<std::vector<std::string>> FindByField(
      const std::string& collection, const std::string& key,
      const std::string& value) override;
  Result<std::vector<std::string>> ListCollections() override;
  Result<Digest> DocumentDigest(const std::string& collection,
                                const std::string& id) override;
  size_t TotalStoredBytes() const override;
  size_t DocumentCount() const override;

  /// The wrapped backend (the scrubber repairs replicas through it).
  DocumentStore* backend() const { return backend_; }

 private:
  /// One faultable message of `bytes` to this store's server: the bound
  /// replica node when set, the anonymous shared server otherwise.
  simnet::TransferAttempt Attempt(uint64_t bytes) {
    if (replica_ != simnet::kNoReplica) {
      return network_->TryTransferToReplica(replica_, bytes);
    }
    return network_->TryTransfer(bytes);
  }

  DocumentStore* backend_;
  simnet::Network* network_;
  simnet::Retrier retrier_;
  size_t replica_ = simnet::kNoReplica;
};

}  // namespace mmlib::docstore

