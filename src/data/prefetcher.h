#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "data/dataloader.h"
#include "util/result.h"
#include "util/worker_thread.h"

namespace mmlib::data {

/// Double-buffered background batch loader.
///
/// Wraps a DataLoader so batch preparation (resize, augmentation,
/// normalization) overlaps the consumer's forward/backward step: while the
/// training loop works on batch i, the worker fills batch i+1 into the
/// other buffer. Determinism is structural, not scheduled — batch contents
/// depend only on (seed, epoch, index) because DataLoader::FillBatch is
/// pure given those, and Next() hands batches out strictly in index order,
/// so worker timing can never change what the consumer sees.
///
/// Storage discipline: two slots plus any batches the consumer Recycle()s
/// circulate forever; after warm-up the steady state is allocation-free
/// (FillBatch reuses matching storage in place).
///
/// The prefetcher owns its worker; destruction (including unwinding through
/// a simulated crash) finishes the in-flight fill and joins.
class BatchPrefetcher {
 public:
  /// `loader` must outlive the prefetcher.
  explicit BatchPrefetcher(DataLoader* loader) : loader_(loader) {}

  /// Starts epoch `epoch` on the loader and begins prefetching batches
  /// [first_batch, batch_count). Waits for any fills of the previous epoch
  /// first — the loader's shuffle order is about to change under them.
  void StartEpoch(uint64_t epoch, size_t first_batch, size_t batch_count);

  /// Returns the next batch of the epoch, in index order; blocks until its
  /// background fill completes. Contents are bit-identical to calling
  /// loader->GetBatch on the same index.
  Result<Batch> Next();

  /// Returns a consumed batch's storage to the pool of buffers upcoming
  /// fills reuse.
  void Recycle(Batch batch);

  /// Batches filled on the worker thread so far (monotonic).
  uint64_t background_fills() const;

 private:
  struct Slot {
    Batch batch;
    Status status = Status::OK();
    bool ready = false;
  };

  /// Schedules a background fill of batch `batch_index` into slot
  /// `slot_index`. The slot must not be ready (consumer owns handed-out
  /// batches, the worker owns unfilled slots).
  void ScheduleFill(size_t slot_index, size_t batch_index);

  DataLoader* loader_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  Slot slots_[2];
  std::vector<Batch> spare_;
  size_t next_batch_ = 0;
  size_t end_batch_ = 0;
  size_t next_fill_ = 0;
  uint64_t background_fills_ = 0;
  // Declared last: destroyed first, so the worker finishes while the slots
  // and mutex it touches are still alive.
  util::WorkerThread worker_;
};

}  // namespace mmlib::data
