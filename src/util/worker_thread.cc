#include "util/worker_thread.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace mmlib::util {

WorkerThread::~WorkerThread() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
  if (pending_ != nullptr) {
    // A background task failed and no Drain() ever collected the error.
    // Dropping it here would turn a real failure (a checkpoint that never
    // became durable, say) into silence — fail loudly instead.
    try {
      std::rethrow_exception(pending_);
    } catch (const std::exception& error) {
      std::fprintf(stderr,
                   "WorkerThread destroyed with unobserved task exception: "
                   "%s\n",
                   error.what());
    } catch (...) {
      std::fprintf(stderr,
                   "WorkerThread destroyed with unobserved non-standard "
                   "task exception\n");
    }
    std::abort();
  }
}

void WorkerThread::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!started_) {
      thread_ = std::thread([this] { RunLoop(); });
      started_ = true;
    }
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void WorkerThread::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && !busy_; });
  if (pending_ != nullptr) {
    std::exception_ptr error = std::exchange(pending_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

uint64_t WorkerThread::completed() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return completed_;
}

void WorkerThread::RunLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stopping_ with an empty queue: finish. Queued tasks always run
        // before shutdown so a destructor never abandons submitted work.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      // Letting this escape would std::terminate the process with no
      // context; capture it for the next Drain instead. Later tasks still
      // run — FIFO side work must not silently stall behind one failure.
      error = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      busy_ = false;
      ++completed_;
      if (error != nullptr && pending_ == nullptr) {
        pending_ = error;
      }
    }
    idle_.notify_all();
  }
}

}  // namespace mmlib::util
