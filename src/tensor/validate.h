#pragma once

#include <string_view>
#include <vector>

#include "tensor/tensor.h"
#include "util/result.h"
#include "util/status.h"

/// Tensor- and shape-aware recoverable-input validators (DESIGN.md
/// "Correctness tooling"). These live in the tensor layer — not check/ —
/// because they depend on Tensor/Shape and check/ sits below tensor/ in the
/// include DAG (tools/mmlint/layers.toml). They keep the mmlib::check
/// namespace their callers spell, alongside the scalar validators of
/// check/validators.h.
namespace mmlib::check {

/// OK iff `got == want`; InvalidArgument naming both shapes otherwise.
Status ValidateShapesMatch(const Shape& got, const Shape& want,
                           std::string_view context);

/// OK iff the two tensors have equal shapes.
Status ValidateSameShape(const Tensor& a, const Tensor& b,
                         std::string_view context);

/// OK iff `shape.rank() == rank`.
Status ValidateRank(const Shape& shape, size_t rank, std::string_view context);

/// OK iff every element of `t` is finite (no NaN, no +/-Inf); reports the
/// first offending index and value otherwise. O(numel) — call at module
/// boundaries (loss, persisted snapshots), not in per-element loops.
Status ValidateAllFinite(const Tensor& t, std::string_view context);

/// OK iff a layer received exactly `arity` non-null inputs. Shared by every
/// nn layer's Forward.
Status ValidateArity(const std::vector<const Tensor*>& inputs, size_t arity,
                     std::string_view layer_name);

}  // namespace mmlib::check
