#pragma once

#include "json/json.h"
#include "nn/model.h"
#include "util/bytes.h"
#include "util/result.h"

namespace mmlib::core {

/// Framework-independent, inference-only model export.
///
/// The paper (Section 2.2) observes that portable formats like PMML, PFA,
/// or ONNX "do not capture the model in a level of detail needed to
/// reproduce model training" — they carry the architecture and weights, but
/// none of the provenance (training process, environment, data) mmlib
/// manages. This module implements such a format so the gap is concrete:
/// an exported bundle round-trips inference exactly, but recovery-by-
/// retraining is impossible from it.
///
/// Bundle layout: a JSON manifest (format version, architecture code
/// descriptor, parameter checksum) followed by the raw parameter snapshot.
struct PortableBundle {
  json::Value manifest;
  Bytes parameters;

  /// Serializes manifest + parameters into one buffer.
  Bytes Serialize() const;
  static Result<PortableBundle> Deserialize(const Bytes& data);
};

/// Exports a model built from `code` (see core/model_code.h).
Result<PortableBundle> ExportPortable(const nn::Model& model,
                                      const json::Value& code);

/// Instantiates the model from a bundle and verifies the checksum. The
/// result reproduces inference bit-for-bit but carries no provenance.
Result<nn::Model> ImportPortable(const PortableBundle& bundle);

}  // namespace mmlib::core

