/// Reproduces paper Table 1: the evaluation datasets with image counts,
/// sizes, and associated use cases. The synthetic stand-ins are generated at
/// the repo-default 1/64 scale; the paper's original sizes are shown next to
/// the generated ones.
#include <cstdio>

#include "bench/bench_common.h"
#include "data/dataset.h"

using namespace mmlib;
using namespace mmlib::data;

int main() {
  bench::PrintHeader(
      "Table 1", "Datasets used throughout the evaluation",
      "Synthetic stand-ins at 1/64 of the paper's sizes (DESIGN.md S1);\n"
      "relative sizes between datasets are preserved.");

  TablePrinter table({"short name", "images", "paper size", "generated size",
                      "stored dim", "use case"});
  for (const Table1Row& row : Table1Reference()) {
    SyntheticImageDataset dataset(row.id, kDefaultDatasetDivisor);
    table.AddRow({row.short_name, std::to_string(row.images),
                  FormatBytes(row.paper_bytes),
                  FormatBytes(dataset.TotalByteSize()),
                  std::to_string(dataset.stored_dim()) + "x" +
                      std::to_string(dataset.stored_dim()),
                  row.use_case});
  }
  table.Print(std::cout);

  // Content hashes document determinism: the same datasets regenerate
  // identically on any machine.
  std::printf("\nDataset content hashes (deterministic across machines):\n");
  for (const Table1Row& row : Table1Reference()) {
    if (row.id == PaperDatasetId::kImageNetVal) {
      // 50k images; skip hashing in the default run to keep this fast.
      std::printf("  %-10s (skipped: 50,000 images)\n",
                  row.short_name.c_str());
      continue;
    }
    SyntheticImageDataset dataset(row.id, kDefaultDatasetDivisor);
    std::printf("  %-10s %s\n", row.short_name.c_str(),
                dataset.ContentHash().ToHex().substr(0, 16).c_str());
  }
  return 0;
}
