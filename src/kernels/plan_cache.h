#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "kernels/conv_plan.h"
#include "kernels/linear_plan.h"

namespace mmlib::kernels {

/// Process-wide cache of kernel plans keyed by shape. Layers hit the cache
/// once per (shape, batch) combination and then hold the shared_ptr, so
/// repeated training steps — and distinct layers with the same geometry —
/// reuse both the plan and its scratch pool. Internally synchronized.
class PlanCache {
 public:
  struct Stats {
    uint64_t conv_hits = 0;
    uint64_t conv_misses = 0;
    uint64_t linear_hits = 0;
    uint64_t linear_misses = 0;
    size_t size = 0;
  };

  static PlanCache& Instance();

  std::shared_ptr<const ConvPlan> GetConvPlan(const ConvGeom& geom);
  std::shared_ptr<const LinearPlan> GetLinearPlan(int64_t batch,
                                                  int64_t in_features,
                                                  int64_t out_features);

  Stats stats() const;
  /// Drops all cached plans and zeroes the counters (tests only).
  void Clear();

 private:
  PlanCache() = default;

  // Full geometry: (batch, in_c, out_c, kernel, stride, padding, groups,
  // height, width). out_h/out_w are derived, so they are not in the key.
  using ConvKey = std::tuple<int64_t, int64_t, int64_t, int64_t, int64_t,
                             int64_t, int64_t, int64_t, int64_t>;
  using LinearKey = std::tuple<int64_t, int64_t, int64_t>;

  mutable std::mutex mu_;
  // std::map, not unordered_map, so iteration order can never leak into
  // anything hashed (the no-unordered-order-leak lint's concern).
  std::map<ConvKey, std::shared_ptr<const ConvPlan>> conv_plans_;
  std::map<LinearKey, std::shared_ptr<const LinearPlan>> linear_plans_;
  Stats stats_;
};

}  // namespace mmlib::kernels
