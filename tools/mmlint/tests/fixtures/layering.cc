// fixture-path: src/check/fixture_layering.cc
// Bands come from the real tools/mmlint/layers.toml: util=0, check=1,
// hash=1, core=6.
#include <vector>           // system header: never part of the module DAG

#include "check/check.h"    // own module: ok
#include "core/model.h"     // upward (band 6 > band 1): finding
#include "core/types.h"     // lint:allow(layering)
#include "hash/sha256.h"    // lateral (band 1 == band 1): finding
#include "util/strings.h"   // downward (band 0 < band 1): ok
#include "util/fs.h"        // lint:allow(layering)  <- stale: downward is legal
