#include <gtest/gtest.h>

#include <memory>

#include "core/catalog.h"
#include "core/model_code.h"
#include "core/param_update.h"
#include "core/provenance.h"
#include "core/recover.h"
#include "core/train_service.h"
#include "docstore/document_store.h"
#include "filestore/file_store.h"
#include "models/zoo.h"

namespace mmlib::core {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    backends_ = StorageBackends{&docs_, &files_, nullptr};
    config_ = models::DefaultConfig(models::Architecture::kMobileNetV2);
    config_.channel_divisor = 8;
    config_.image_size = 28;
    config_.num_classes = 10;
    environment_ = env::CollectEnvironment();
    model_ = std::make_unique<nn::Model>(
        models::BuildModel(config_).value());
    dataset_ = std::make_unique<data::SyntheticImageDataset>(
        data::PaperDatasetId::kCocoOutdoor512, 4096);
  }

  /// Saves the current model (optionally derived); perturbs it first when
  /// derived so PUA actually stores an update.
  std::string Save(SaveService* service, const std::string& base_id = "",
                   const ProvenanceData* provenance = nullptr) {
    SaveRequest request;
    request.model = model_.get();
    request.code = CodeDescriptorFor(config_);
    request.environment = &environment_;
    request.base_model_id = base_id;
    request.provenance = provenance;
    return service->SaveModel(request).value().model_id;
  }

  void Perturb(uint64_t seed) {
    Rng rng(seed);
    for (size_t i = 0; i < model_->node_count(); ++i) {
      for (nn::Param& param : model_->layer(i)->params()) {
        if (param.trainable && !param.is_buffer) {
          for (int64_t k = 0; k < param.value.numel(); ++k) {
            param.value.at(k) += rng.NextGaussian() * 0.01f;
          }
        }
      }
    }
  }

  docstore::InMemoryDocumentStore docs_;
  filestore::InMemoryFileStore files_;
  StorageBackends backends_;
  models::ModelConfig config_;
  env::EnvironmentInfo environment_;
  std::unique_ptr<nn::Model> model_;
  std::unique_ptr<data::SyntheticImageDataset> dataset_;
};

TEST_F(CatalogTest, ListAndGetInfo) {
  ParamUpdateSaveService service(backends_);
  const std::string root = Save(&service);
  Perturb(1);
  const std::string child = Save(&service, root);

  ModelCatalog catalog(backends_);
  auto models = catalog.ListModels().value();
  ASSERT_EQ(models.size(), 2u);

  auto info = catalog.GetInfo(child).value();
  EXPECT_EQ(info.id, child);
  EXPECT_EQ(info.base_model_id, root);
  EXPECT_EQ(info.approach, kApproachParamUpdate);
  EXPECT_FALSE(info.has_params_snapshot);
  EXPECT_EQ(info.params_hash, model_->ParamsHash().ToHex());

  auto root_info = catalog.GetInfo(root).value();
  EXPECT_TRUE(root_info.has_params_snapshot);
  EXPECT_TRUE(root_info.base_model_id.empty());
}

TEST_F(CatalogTest, GetChainWalksToRoot) {
  ParamUpdateSaveService service(backends_);
  const std::string root = Save(&service);
  Perturb(2);
  const std::string middle = Save(&service, root);
  Perturb(3);
  const std::string leaf = Save(&service, middle);

  ModelCatalog catalog(backends_);
  EXPECT_EQ(catalog.GetChain(leaf).value(),
            (std::vector<std::string>{leaf, middle, root}));
  EXPECT_EQ(catalog.GetChain(root).value(),
            (std::vector<std::string>{root}));
}

TEST_F(CatalogTest, GetDerivedFindsChildren) {
  ParamUpdateSaveService service(backends_);
  const std::string root = Save(&service);
  Perturb(4);
  const std::string a = Save(&service, root);
  Perturb(5);
  const std::string b = Save(&service, root);

  ModelCatalog catalog(backends_);
  auto derived = catalog.GetDerived(root).value();
  ASSERT_EQ(derived.size(), 2u);
  EXPECT_TRUE((derived[0] == a && derived[1] == b) ||
              (derived[0] == b && derived[1] == a));
  EXPECT_TRUE(catalog.GetDerived(a).value().empty());
  EXPECT_FALSE(catalog.GetDerived("ghost").ok());
}

TEST_F(CatalogTest, DeleteRefusesWhileReferenced) {
  ParamUpdateSaveService service(backends_);
  const std::string root = Save(&service);
  Perturb(6);
  const std::string child = Save(&service, root);

  ModelCatalog catalog(backends_);
  EXPECT_EQ(catalog.DeleteModel(root).code(),
            StatusCode::kFailedPrecondition);
  // The child is still recoverable.
  ModelRecoverer recoverer(backends_);
  EXPECT_TRUE(recoverer.Recover(child, RecoverOptions{}).ok());
}

TEST_F(CatalogTest, DeleteLeafRemovesAllItsStorage) {
  ParamUpdateSaveService service(backends_);
  const std::string root = Save(&service);
  const size_t baseline_docs = docs_.DocumentCount();
  const size_t baseline_files = files_.FileCount();
  Perturb(7);
  const std::string child = Save(&service, root);
  ASSERT_GT(docs_.DocumentCount(), baseline_docs);

  ModelCatalog catalog(backends_);
  ASSERT_TRUE(catalog.DeleteModel(child).ok());
  // Everything the child added is gone again.
  EXPECT_EQ(docs_.DocumentCount(), baseline_docs);
  EXPECT_EQ(files_.FileCount(), baseline_files);
  EXPECT_FALSE(catalog.GetInfo(child).ok());
  // And the root can now be deleted too.
  EXPECT_TRUE(catalog.DeleteModel(root).ok());
  EXPECT_EQ(docs_.DocumentCount(), 0u);
  EXPECT_EQ(files_.FileCount(), 0u);
}

TEST_F(CatalogTest, DeleteProvenanceModelRemovesDatasetArchive) {
  ProvenanceSaveService service(backends_);
  const std::string root = Save(&service);

  TrainConfig train_config;
  train_config.epochs = 1;
  train_config.max_batches_per_epoch = 1;
  train_config.loader.batch_size = 4;
  train_config.loader.image_size = config_.image_size;
  train_config.loader.num_classes = config_.num_classes;
  ImageTrainService trainer(dataset_.get(), train_config);
  auto provenance = trainer.CaptureProvenance().value();
  ASSERT_TRUE(trainer.Train(model_.get(), true, 0).ok());
  const std::string child = Save(&service, root, &provenance);

  const size_t files_with_archive = files_.TotalStoredBytes();
  ModelCatalog catalog(backends_);
  ASSERT_TRUE(catalog.DeleteModel(child).ok());
  // The dataset archive (the dominant payload) was released.
  EXPECT_LT(files_.TotalStoredBytes(),
            files_with_archive - dataset_->TotalByteSize() / 2);
}

TEST_F(CatalogTest, DeleteModelTreeCascades) {
  ParamUpdateSaveService service(backends_);
  const std::string root = Save(&service);
  Perturb(8);
  const std::string a = Save(&service, root);
  Perturb(9);
  const std::string a1 = Save(&service, a);
  Perturb(10);
  const std::string b = Save(&service, root);
  (void)a1;
  (void)b;

  ModelCatalog catalog(backends_);
  EXPECT_EQ(catalog.DeleteModelTree(root).value(), 4u);
  EXPECT_TRUE(catalog.ListModels().value().empty());
  EXPECT_EQ(docs_.DocumentCount(), 0u);
  EXPECT_EQ(files_.FileCount(), 0u);
}

TEST_F(CatalogTest, DeleteUnknownModelFails) {
  ModelCatalog catalog(backends_);
  EXPECT_EQ(catalog.DeleteModel("ghost").code(), StatusCode::kNotFound);
}

// --- Snapshot cache ---

TEST_F(CatalogTest, SnapshotCacheFlattensChainRecovery) {
  ParamUpdateSaveService service(backends_);
  std::string id = Save(&service);
  for (uint64_t round = 0; round < 4; ++round) {
    Perturb(20 + round);
    id = Save(&service, id);
  }
  const Digest expected = model_->ParamsHash();

  ModelRecoverer recoverer(backends_);
  recoverer.EnableSnapshotCache(64 << 20);
  // First recovery fills the cache (all misses)...
  auto first = recoverer.Recover(id, RecoverOptions{}).value();
  EXPECT_EQ(first.model.ParamsHash(), expected);
  EXPECT_EQ(recoverer.cache_hits(), 0u);
  const size_t misses_after_first = recoverer.cache_misses();
  EXPECT_GT(misses_after_first, 0u);
  // ... the second recovery of the same model is a single cache hit.
  auto second = recoverer.Recover(id, RecoverOptions{}).value();
  EXPECT_EQ(second.model.ParamsHash(), expected);
  EXPECT_EQ(recoverer.cache_hits(), 1u);
  EXPECT_EQ(recoverer.cache_misses(), misses_after_first);
}

TEST_F(CatalogTest, SnapshotCacheServesBaseOfNewChainLinks) {
  ParamUpdateSaveService service(backends_);
  const std::string root = Save(&service);
  Perturb(30);
  const std::string a = Save(&service, root);
  Perturb(31);
  const std::string b = Save(&service, a);

  ModelRecoverer recoverer(backends_);
  recoverer.EnableSnapshotCache(64 << 20);
  recoverer.Recover(a, RecoverOptions{}).value();
  // Recovering b reuses a's cached state instead of re-walking to the root.
  recoverer.Recover(b, RecoverOptions{}).value();
  EXPECT_GE(recoverer.cache_hits(), 1u);
}

TEST_F(CatalogTest, SnapshotCacheEvictsUnderPressure) {
  ParamUpdateSaveService service(backends_);
  std::string id = Save(&service);
  for (uint64_t round = 0; round < 3; ++round) {
    Perturb(40 + round);
    id = Save(&service, id);
  }
  ModelRecoverer recoverer(backends_);
  // Capacity for roughly one snapshot only.
  recoverer.EnableSnapshotCache(model_->ParamByteSize() + (64 << 10));
  recoverer.Recover(id, RecoverOptions{}).value();
  auto result = recoverer.Recover(id, RecoverOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->model.ParamsHash(), model_->ParamsHash());
}

TEST_F(CatalogTest, CacheDisabledByDefault) {
  ParamUpdateSaveService service(backends_);
  const std::string id = Save(&service);
  ModelRecoverer recoverer(backends_);
  recoverer.Recover(id, RecoverOptions{}).value();
  recoverer.Recover(id, RecoverOptions{}).value();
  EXPECT_EQ(recoverer.cache_hits(), 0u);
  EXPECT_EQ(recoverer.cache_misses(), 0u);
}

}  // namespace
}  // namespace mmlib::core
