#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "hash/sha256.h"
#include "util/result.h"

namespace mmlib {

/// Result of diffing two Merkle trees.
struct MerkleDiff {
  /// Indices of leaves (layers) whose hashes differ.
  std::vector<size_t> changed_leaves;
  /// Number of node-hash comparisons performed. For a model with 8 layers of
  /// which the last 2 changed this is 7; for 64 layers it is 13, and for 128
  /// layers 15 (paper Figure 4).
  size_t comparisons = 0;
};

/// Merkle tree over per-layer parameter hashes (paper Section 3.2).
///
/// Every model layer is a leaf; a non-leaf node hashes the concatenation of
/// its children. Comparing only the root digests of two trees decides
/// whole-model parameter equality; a top-down diff locates the changed layers
/// while skipping unchanged subtrees.
class MerkleTree {
 public:
  /// Constructs an empty tree; assign a Build/Deserialize result before use.
  MerkleTree() = default;

  /// Builds a tree over `leaf_hashes` (one digest per layer, in layer order).
  /// The leaf level is padded with zero digests to the next power of two.
  /// At least one leaf is required.
  static Result<MerkleTree> Build(std::vector<Digest> leaf_hashes);

  /// Digest of the root node; equal roots imply equal leaf sets.
  const Digest& root() const { return nodes_[1]; }

  size_t leaf_count() const { return leaf_count_; }

  /// Digest of leaf `i` (i < leaf_count()).
  const Digest& leaf(size_t i) const { return nodes_[padded_leaves_ + i]; }

  /// Compares two trees top-down and reports the changed leaves together
  /// with the number of node comparisons performed. Both trees must have the
  /// same leaf count.
  static Result<MerkleDiff> Diff(const MerkleTree& before,
                                 const MerkleTree& after);

  /// Number of comparisons a naive layer-by-layer scan would need (equals
  /// leaf_count). Reported by the Fig. 4 benchmark for context.
  size_t NaiveComparisonCount() const { return leaf_count_; }

  /// Serializes all node hashes; a tree persisted alongside a model lets the
  /// PUA find changed layers without recovering the base model's parameters.
  Bytes Serialize() const;
  static Result<MerkleTree> Deserialize(const Bytes& data);

 private:
  void DiffNodes(const MerkleTree& other, size_t index, MerkleDiff* diff) const;

  // Heap layout: nodes_[1] is the root, children of i are 2i and 2i+1,
  // leaves occupy [padded_leaves_, 2 * padded_leaves_). nodes_[0] is unused.
  std::vector<Digest> nodes_;
  size_t leaf_count_ = 0;
  size_t padded_leaves_ = 0;
};

/// Leaf count of the replication anti-entropy tree (repl::Scrubber). Keys
/// hash into this many fixed buckets, so two replicas can compare trees of
/// identical shape whatever their item counts — the Cassandra-style variant
/// of the paper's per-layer tree.
inline constexpr size_t kScrubBucketCount = 64;

/// Stable bucket index of a storage key in [0, bucket_count); a pure
/// function of the key, identical on every replica.
size_t BucketForKey(std::string_view key, size_t bucket_count = kScrubBucketCount);

/// One (key, content-digest) item of a replica's inventory.
using KeyedDigest = std::pair<std::string, Digest>;

/// Builds the anti-entropy tree of a replica's inventory: items are hashed
/// into `bucket_count` buckets by key (BucketForKey), each bucket's leaf
/// digests its items' keys and content digests in sorted key order, and an
/// empty bucket digests to zero. Equal roots therefore mean identical key
/// sets *and* identical contents; a diff names the buckets to reconcile.
/// `items` need not be sorted.
Result<MerkleTree> BuildBucketTree(std::vector<KeyedDigest> items,
                                   size_t bucket_count = kScrubBucketCount);

}  // namespace mmlib

