#pragma once

#include <memory>
#include <string>

#include "compress/codec.h"
#include "core/save_txn.h"
#include "core/serve_hook.h"
#include "core/train_service.h"
#include "core/types.h"
#include "hash/merkle_tree.h"
#include "env/environment.h"
#include "json/json.h"
#include "nn/model.h"
#include "util/result.h"

namespace mmlib::core {

/// One save operation's inputs.
struct SaveRequest {
  /// The model to save, in its post-training state. Not owned.
  nn::Model* model = nullptr;
  /// Code descriptor of the model architecture (see core/model_code.h).
  json::Value code;
  /// Environment the model was produced in. Not owned.
  const env::EnvironmentInfo* environment = nullptr;
  /// Id of the base model; empty for an initial model (use case U1).
  std::string base_model_id;
  /// Provenance of the training that produced this model; required by the
  /// model provenance approach for derived models, ignored otherwise.
  const ProvenanceData* provenance = nullptr;
};

/// Common interface of the three approaches (paper Section 3): the baseline
/// approach (BA), the parameter update approach (PUA), and the model
/// provenance approach (MPA). All approaches cover the same operations:
/// saving a model and producing metadata that a ModelRecoverer can turn back
/// into an equal model.
class SaveService {
 public:
  explicit SaveService(StorageBackends backends) : backends_(backends) {}
  virtual ~SaveService() = default;

  SaveService(const SaveService&) = delete;
  SaveService& operator=(const SaveService&) = delete;

  /// Approach tag stored in model documents ("baseline", "param_update",
  /// "provenance").
  virtual std::string_view approach() const = 0;

  /// Saves a model and returns its generated id together with the measured
  /// time-to-save and storage consumption (excluding the base model).
  /// Non-virtual wrapper: runs the approach's DoSaveModel and reports the
  /// outcome through the serve hook when one is installed.
  Result<SaveResult> SaveModel(const SaveRequest& request);

  const StorageBackends& backends() const { return backends_; }

  /// Installs the serving layer's observer (see core/serve_hook.h); every
  /// SaveModel completion is reported as op "model.save". Pass an empty
  /// function to detach.
  void set_serve_hook(ServeHook hook) { serve_hook_ = std::move(hook); }

  /// Codec for parameter payloads. Snapshots and updates are written as
  /// chunked frames (see compress/chunked.h) encoded in parallel on the
  /// backends' pool; identity by default, so the payload bytes stay
  /// uncompressed but gain per-chunk checksums. The frame bytes are
  /// identical for every pool size.
  void set_params_codec(CodecKind kind) { params_codec_ = kind; }
  CodecKind params_codec() const { return params_codec_; }

 protected:
  /// Approach-specific save implementation (BA / PUA / MPA / adaptive).
  virtual Result<SaveResult> DoSaveModel(const SaveRequest& request) = 0;

  /// Encodes a parameter payload into a chunked frame with `params_codec()`.
  Result<Bytes> EncodeParams(const Bytes& params) const;

  /// Persists the environment document through `txn`; returns its id.
  Result<std::string> SaveEnvironment(const env::EnvironmentInfo& info,
                                      SaveTransaction& txn);

  /// Persists the code descriptor document through `txn`; returns its id.
  Result<std::string> SaveCode(const json::Value& code, SaveTransaction& txn);

  /// Builds the common part of a model document: approach, base reference,
  /// code/env references, the persisted layer-hash Merkle tree, and
  /// checksums of the saved model. Every write goes through `txn` so a save
  /// that fails later rolls them back. When `tree_out` is non-null it
  /// receives the computed Merkle tree (avoids recomputing layer hashes).
  Result<json::Value> MakeModelDoc(const SaveRequest& request,
                                   SaveTransaction& txn,
                                   MerkleTree* tree_out = nullptr);

  StorageBackends backends_;
  CodecKind params_codec_ = CodecKind::kIdentity;
  ServeHook serve_hook_;
};

}  // namespace mmlib::core

