#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/layer.h"
#include "nn/linear.h"
#include "nn/pooling.h"

namespace mmlib::nn {
namespace {

ExecutionContext DetCtx(uint64_t seed = 1) {
  ExecutionContext ctx = ExecutionContext::Deterministic(seed);
  ctx.set_training(true);
  return ctx;
}

Tensor RandomTensor(Shape shape, uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  return Tensor::Gaussian(std::move(shape), scale, &rng);
}

/// Scalar objective L = sum(output .* direction) evaluated by a fresh
/// forward pass; used for finite-difference gradient checks.
double Objective(Layer* layer, const Tensor& input, const Tensor& direction,
                 uint64_t ctx_seed) {
  ExecutionContext ctx = DetCtx(ctx_seed);
  Tensor output = layer->Forward({&input}, &ctx).value();
  double loss = 0;
  for (int64_t i = 0; i < output.numel(); ++i) {
    loss += static_cast<double>(output.at(i)) * direction.at(i);
  }
  return loss;
}

/// Verifies analytic input and parameter gradients of `layer` against
/// central finite differences on a sampled subset of elements.
void CheckGradients(Layer* layer, Tensor input, uint64_t seed,
                    float tolerance = 2e-2f) {
  ExecutionContext ctx = DetCtx(seed);
  Tensor output = layer->Forward({&input}, &ctx).value();
  const Tensor direction = RandomTensor(output.shape(), seed + 1);

  layer->ZeroGrad();
  ExecutionContext bctx = DetCtx(seed);
  // Re-run forward in bctx so dropout-style layers use a known mask.
  output = layer->Forward({&input}, &bctx).value();
  std::vector<Tensor> input_grads =
      layer->Backward(direction, &bctx).value();
  ASSERT_EQ(input_grads.size(), 1u);

  const float eps = 1e-2f;
  auto check_element = [&](float* element, float analytic,
                           const std::string& what) {
    const float saved = *element;
    *element = saved + eps;
    const double plus = Objective(layer, input, direction, seed);
    *element = saved - eps;
    const double minus = Objective(layer, input, direction, seed);
    *element = saved;
    const float numeric = static_cast<float>((plus - minus) / (2 * eps));
    EXPECT_NEAR(analytic, numeric,
                tolerance * (1.0f + std::abs(numeric)))
        << what;
  };

  // Sample input elements.
  const int64_t input_stride = std::max<int64_t>(1, input.numel() / 12);
  for (int64_t i = 0; i < input.numel(); i += input_stride) {
    check_element(&input.at(i), input_grads[0].at(i),
                  "input[" + std::to_string(i) + "]");
  }
  // Sample parameter elements.
  for (Param& param : layer->params()) {
    if (param.is_buffer) {
      continue;
    }
    const int64_t stride = std::max<int64_t>(1, param.value.numel() / 8);
    for (int64_t i = 0; i < param.value.numel(); i += stride) {
      check_element(&param.value.at(i), param.grad.at(i),
                    param.name + "[" + std::to_string(i) + "]");
    }
  }
}

// --- Linear ---

TEST(LinearTest, ForwardShapeAndBias) {
  Rng rng(1);
  Linear layer("fc", 4, 3, &rng);
  ExecutionContext ctx = DetCtx();
  Tensor input = Tensor::Zeros(Shape{2, 4});
  Tensor output = layer.Forward({&input}, &ctx).value();
  EXPECT_EQ(output.shape(), (Shape{2, 3}));
  // Zero input: output equals the bias for every row.
  const float* bias = layer.params()[1].value.data();
  for (int64_t n = 0; n < 2; ++n) {
    for (int64_t o = 0; o < 3; ++o) {
      EXPECT_FLOAT_EQ(output.at(n * 3 + o), bias[o]);
    }
  }
}

TEST(LinearTest, RejectsBadInput) {
  Rng rng(1);
  Linear layer("fc", 4, 3, &rng);
  ExecutionContext ctx = DetCtx();
  Tensor bad = Tensor::Zeros(Shape{2, 5});
  EXPECT_FALSE(layer.Forward({&bad}, &ctx).ok());
  Tensor bad_rank = Tensor::Zeros(Shape{2, 4, 1});
  EXPECT_FALSE(layer.Forward({&bad_rank}, &ctx).ok());
}

TEST(LinearTest, GradientsMatchFiniteDifferences) {
  Rng rng(2);
  Linear layer("fc", 6, 4, &rng);
  CheckGradients(&layer, RandomTensor(Shape{3, 6}, 10), 20);
}

TEST(LinearTest, ParamCounts) {
  Rng rng(3);
  Linear layer("fc", 10, 5, &rng);
  EXPECT_EQ(layer.TrainableParamCount(), 10 * 5 + 5);
  EXPECT_EQ(layer.TotalParamCount(), 55);
  layer.SetTrainable(false);
  EXPECT_EQ(layer.TrainableParamCount(), 0);
  EXPECT_FALSE(layer.HasTrainableParams());
}

// --- Conv2d ---

TEST(Conv2dTest, OutputShape) {
  Rng rng(1);
  Conv2d conv("c", 3, 8, 3, 2, 1, 1, &rng);
  ExecutionContext ctx = DetCtx();
  Tensor input = RandomTensor(Shape{2, 3, 8, 8}, 4);
  Tensor output = conv.Forward({&input}, &ctx).value();
  EXPECT_EQ(output.shape(), (Shape{2, 8, 4, 4}));
}

TEST(Conv2dTest, IdentityKernelPassesThrough) {
  Rng rng(1);
  Conv2d conv("c", 1, 1, 1, 1, 0, 1, &rng);
  conv.params()[0].value.Fill(1.0f);
  ExecutionContext ctx = DetCtx();
  Tensor input = RandomTensor(Shape{1, 1, 4, 4}, 5);
  Tensor output = conv.Forward({&input}, &ctx).value();
  EXPECT_TRUE(output.Equals(input));
}

TEST(Conv2dTest, KnownConvolutionValue) {
  Rng rng(1);
  Conv2d conv("c", 1, 1, 3, 1, 0, 1, &rng);
  conv.params()[0].value.Fill(1.0f);  // box filter
  Tensor input = Tensor::Full(Shape{1, 1, 3, 3}, 2.0f);
  ExecutionContext ctx = DetCtx();
  Tensor output = conv.Forward({&input}, &ctx).value();
  EXPECT_EQ(output.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(output.at(0), 18.0f);
}

TEST(Conv2dTest, GradientsMatchFiniteDifferences) {
  Rng rng(7);
  Conv2d conv("c", 2, 3, 3, 1, 1, 1, &rng);
  CheckGradients(&conv, RandomTensor(Shape{2, 2, 5, 5}, 11), 21);
}

TEST(Conv2dTest, StridedGradients) {
  Rng rng(8);
  Conv2d conv("c", 2, 2, 3, 2, 1, 1, &rng);
  CheckGradients(&conv, RandomTensor(Shape{1, 2, 6, 6}, 12), 22);
}

TEST(Conv2dTest, DepthwiseGradients) {
  Rng rng(9);
  Conv2d conv("c", 4, 4, 3, 1, 1, /*groups=*/4, &rng);
  CheckGradients(&conv, RandomTensor(Shape{1, 4, 5, 5}, 13), 23);
}

TEST(Conv2dTest, PointwiseGradients) {
  Rng rng(10);
  Conv2d conv("c", 4, 6, 1, 1, 0, 1, &rng);
  CheckGradients(&conv, RandomTensor(Shape{2, 4, 3, 3}, 14), 24);
}

TEST(Conv2dTest, RejectsTooSmallInput) {
  Rng rng(1);
  Conv2d conv("c", 1, 1, 5, 1, 0, 1, &rng);
  ExecutionContext ctx = DetCtx();
  Tensor input = Tensor::Zeros(Shape{1, 1, 3, 3});
  EXPECT_FALSE(conv.Forward({&input}, &ctx).ok());
}

TEST(Conv2dTest, DeterministicModeIsRunToRunStable) {
  Rng rng(2);
  Conv2d conv("c", 3, 4, 3, 1, 1, 1, &rng);
  Tensor input = RandomTensor(Shape{1, 3, 6, 6}, 15);
  ExecutionContext ctx1 = DetCtx(1);
  ExecutionContext ctx2 = DetCtx(2);  // different seed, same determinism
  Tensor a = conv.Forward({&input}, &ctx1).value();
  Tensor b = conv.Forward({&input}, &ctx2).value();
  EXPECT_TRUE(a.Equals(b));
}

TEST(Conv2dTest, NonDeterministicModeVariesAcrossSchedules) {
  // Reductions shorter than the parallelization threshold stay serial in
  // both modes; 8 input channels x 3x3 kernel = 72-element reductions.
  Rng rng(2);
  Conv2d conv("c", 8, 4, 3, 1, 1, 1, &rng);
  Tensor input = RandomTensor(Shape{1, 8, 12, 12}, 16, 10.0f);
  ExecutionContext ctx1 = ExecutionContext::NonDeterministic(1, 111);
  ExecutionContext ctx2 = ExecutionContext::NonDeterministic(1, 222);
  Tensor a = conv.Forward({&input}, &ctx1).value();
  Tensor b = conv.Forward({&input}, &ctx2).value();
  EXPECT_FALSE(a.Equals(b));
  EXPECT_TRUE(a.AllClose(b, 1e-2f));
}

// --- BatchNorm2d ---

TEST(BatchNormTest, NormalizesBatchStatistics) {
  BatchNorm2d bn("bn", 2);
  ExecutionContext ctx = DetCtx();
  Tensor input = RandomTensor(Shape{4, 2, 3, 3}, 17, 5.0f);
  Tensor output = bn.Forward({&input}, &ctx).value();
  // Per channel: mean ~0, variance ~1.
  for (int64_t c = 0; c < 2; ++c) {
    double sum = 0;
    double sum_sq = 0;
    int64_t count = 0;
    for (int64_t n = 0; n < 4; ++n) {
      for (int64_t i = 0; i < 9; ++i) {
        const float v = output.at((n * 2 + c) * 9 + i);
        sum += v;
        sum_sq += v * v;
        ++count;
      }
    }
    EXPECT_NEAR(sum / count, 0.0, 1e-4);
    EXPECT_NEAR(sum_sq / count, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, EvalModeUsesRunningStats) {
  BatchNorm2d bn("bn", 1);
  Tensor input = RandomTensor(Shape{2, 1, 2, 2}, 18, 3.0f);
  ExecutionContext train_ctx = DetCtx();
  bn.Forward({&input}, &train_ctx).value();
  // Buffers moved away from their initial values.
  EXPECT_NE(bn.params()[2].value.at(0), 0.0f);

  ExecutionContext eval_ctx = DetCtx();
  eval_ctx.set_training(false);
  const Tensor before_mean = bn.params()[2].value;
  bn.Forward({&input}, &eval_ctx).value();
  // Eval mode must not update the buffers.
  EXPECT_TRUE(bn.params()[2].value.Equals(before_mean));
}

TEST(BatchNormTest, FrozenLayerBehavesAsEval) {
  BatchNorm2d bn("bn", 1);
  bn.SetTrainable(false);
  Tensor input = RandomTensor(Shape{2, 1, 2, 2}, 19, 3.0f);
  ExecutionContext ctx = DetCtx();
  const Tensor before_mean = bn.params()[2].value;
  bn.Forward({&input}, &ctx).value();
  EXPECT_TRUE(bn.params()[2].value.Equals(before_mean));
}

TEST(BatchNormTest, GradientsMatchFiniteDifferences) {
  BatchNorm2d bn("bn", 3);
  // Tight tolerance is hard for BN (normalization couples all elements);
  // moderate batch keeps the check stable.
  CheckGradients(&bn, RandomTensor(Shape{4, 3, 3, 3}, 20), 25, 5e-2f);
}

TEST(BatchNormTest, BuffersAreNotTrainable) {
  BatchNorm2d bn("bn", 4);
  EXPECT_EQ(bn.TrainableParamCount(), 8);  // gamma + beta
  EXPECT_EQ(bn.TotalParamCount(), 16);     // + running mean/var
}

// --- Pooling ---

TEST(MaxPoolTest, SelectsMaxima) {
  MaxPool2d pool("p", 2, 2);
  Tensor input(Shape{1, 1, 2, 2}, {1, 5, 3, 2});
  ExecutionContext ctx = DetCtx();
  Tensor output = pool.Forward({&input}, &ctx).value();
  EXPECT_EQ(output.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(output.at(0), 5.0f);
}

TEST(MaxPoolTest, BackwardRoutesToArgmax) {
  MaxPool2d pool("p", 2, 2);
  Tensor input(Shape{1, 1, 2, 2}, {1, 5, 3, 2});
  ExecutionContext ctx = DetCtx();
  pool.Forward({&input}, &ctx).value();
  Tensor grad_out(Shape{1, 1, 1, 1}, {7.0f});
  auto grads = pool.Backward(grad_out, &ctx).value();
  EXPECT_FLOAT_EQ(grads[0].at(1), 7.0f);
  EXPECT_FLOAT_EQ(grads[0].at(0), 0.0f);
  EXPECT_FLOAT_EQ(grads[0].at(2), 0.0f);
}

TEST(MaxPoolTest, PaddingKeepsSpatialSize) {
  MaxPool2d pool("p", 3, 2, 1);
  Tensor input = RandomTensor(Shape{1, 2, 7, 7}, 21);
  ExecutionContext ctx = DetCtx();
  Tensor output = pool.Forward({&input}, &ctx).value();
  EXPECT_EQ(output.shape(), (Shape{1, 2, 4, 4}));
}

TEST(AvgPoolTest, AveragesWindow) {
  AvgPool2d pool("p", 2, 2);
  Tensor input(Shape{1, 1, 2, 2}, {1, 3, 5, 7});
  ExecutionContext ctx = DetCtx();
  Tensor output = pool.Forward({&input}, &ctx).value();
  EXPECT_EQ(output.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(output.at(0), 4.0f);
}

TEST(AvgPoolTest, PaddingCountsTowardDivisor) {
  // count_include_pad semantics: the window divisor is k*k even when part
  // of the window is padding.
  AvgPool2d pool("p", 3, 3, 1);
  Tensor input = Tensor::Full(Shape{1, 1, 2, 2}, 9.0f);
  ExecutionContext ctx = DetCtx();
  Tensor output = pool.Forward({&input}, &ctx).value();
  // Window covers all 4 real pixels + 5 padded zeros: 36 / 9 = 4.
  EXPECT_FLOAT_EQ(output.at(0), 4.0f);
}

TEST(AvgPoolTest, GradientsMatchFiniteDifferences) {
  AvgPool2d pool("p", 2, 2);
  CheckGradients(&pool, RandomTensor(Shape{1, 2, 4, 4}, 27), 28);
}

TEST(AvgPoolTest, StridedGradients) {
  AvgPool2d pool("p", 3, 2, 1);
  CheckGradients(&pool, RandomTensor(Shape{1, 1, 6, 6}, 29), 30);
}

TEST(SigmoidTest, KnownValuesAndRange) {
  Sigmoid sigmoid("s");
  Tensor input(Shape{3}, {0.0f, 100.0f, -100.0f});
  ExecutionContext ctx = DetCtx();
  Tensor output = sigmoid.Forward({&input}, &ctx).value();
  EXPECT_FLOAT_EQ(output.at(0), 0.5f);
  EXPECT_NEAR(output.at(1), 1.0f, 1e-6f);
  EXPECT_NEAR(output.at(2), 0.0f, 1e-6f);
}

TEST(SigmoidTest, GradientsMatchFiniteDifferences) {
  Sigmoid sigmoid("s");
  CheckGradients(&sigmoid, RandomTensor(Shape{2, 5}, 31), 32);
}

TEST(TanhTest, KnownValues) {
  Tanh tanh_layer("t");
  Tensor input(Shape{2}, {0.0f, 1.0f});
  ExecutionContext ctx = DetCtx();
  Tensor output = tanh_layer.Forward({&input}, &ctx).value();
  EXPECT_FLOAT_EQ(output.at(0), 0.0f);
  EXPECT_NEAR(output.at(1), 0.7615942f, 1e-6f);
}

TEST(TanhTest, GradientsMatchFiniteDifferences) {
  Tanh tanh_layer("t");
  CheckGradients(&tanh_layer, RandomTensor(Shape{3, 4}, 33), 34);
}

TEST(GlobalAvgPoolTest, AveragesPlane) {
  GlobalAvgPool pool("gap");
  Tensor input(Shape{1, 2, 1, 2}, {2, 4, 10, 30});
  ExecutionContext ctx = DetCtx();
  Tensor output = pool.Forward({&input}, &ctx).value();
  EXPECT_EQ(output.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(output.at(0), 3.0f);
  EXPECT_FLOAT_EQ(output.at(1), 20.0f);
}

TEST(GlobalAvgPoolTest, BackwardSpreadsUniformly) {
  GlobalAvgPool pool("gap");
  Tensor input = RandomTensor(Shape{1, 1, 2, 2}, 22);
  ExecutionContext ctx = DetCtx();
  pool.Forward({&input}, &ctx).value();
  Tensor grad_out(Shape{1, 1}, {8.0f});
  auto grads = pool.Backward(grad_out, &ctx).value();
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(grads[0].at(i), 2.0f);
  }
}

// --- Activations & structural layers ---

TEST(ReLUTest, ClampsNegatives) {
  ReLU relu("r");
  Tensor input(Shape{4}, {-1, 0, 2, -3});
  ExecutionContext ctx = DetCtx();
  Tensor output = relu.Forward({&input}, &ctx).value();
  EXPECT_FLOAT_EQ(output.at(0), 0.0f);
  EXPECT_FLOAT_EQ(output.at(2), 2.0f);
}

TEST(ReLUTest, Relu6Clips) {
  ReLU relu("r", 6.0f);
  Tensor input(Shape{3}, {-1, 3, 9});
  ExecutionContext ctx = DetCtx();
  Tensor output = relu.Forward({&input}, &ctx).value();
  EXPECT_FLOAT_EQ(output.at(1), 3.0f);
  EXPECT_FLOAT_EQ(output.at(2), 6.0f);
  // Gradient is zero in the clipped region.
  Tensor grad_out(Shape{3}, {1, 1, 1});
  auto grads = relu.Backward(grad_out, &ctx).value();
  EXPECT_FLOAT_EQ(grads[0].at(0), 0.0f);
  EXPECT_FLOAT_EQ(grads[0].at(1), 1.0f);
  EXPECT_FLOAT_EQ(grads[0].at(2), 0.0f);
}

TEST(DropoutTest, IdentityWhenNotTraining) {
  Dropout dropout("d", 0.5f);
  ExecutionContext ctx = DetCtx();
  ctx.set_training(false);
  Tensor input = RandomTensor(Shape{100}, 23);
  Tensor output = dropout.Forward({&input}, &ctx).value();
  EXPECT_TRUE(output.Equals(input));
}

TEST(DropoutTest, MaskIsSeedDeterministic) {
  Dropout a("d", 0.5f);
  Dropout b("d", 0.5f);
  Tensor input = Tensor::Full(Shape{1000}, 1.0f);
  ExecutionContext ctx1 = DetCtx(33);
  ExecutionContext ctx2 = DetCtx(33);
  Tensor out1 = a.Forward({&input}, &ctx1).value();
  Tensor out2 = b.Forward({&input}, &ctx2).value();
  EXPECT_TRUE(out1.Equals(out2));
  // Roughly half the elements survive, scaled by 2.
  int64_t kept = 0;
  for (int64_t i = 0; i < out1.numel(); ++i) {
    if (out1.at(i) != 0.0f) {
      EXPECT_FLOAT_EQ(out1.at(i), 2.0f);
      ++kept;
    }
  }
  EXPECT_NEAR(kept, 500, 80);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Dropout dropout("d", 0.5f);
  Tensor input = Tensor::Full(Shape{64}, 1.0f);
  ExecutionContext ctx = DetCtx(34);
  Tensor output = dropout.Forward({&input}, &ctx).value();
  Tensor grad_out = Tensor::Full(Shape{64}, 1.0f);
  auto grads = dropout.Backward(grad_out, &ctx).value();
  for (int64_t i = 0; i < 64; ++i) {
    EXPECT_FLOAT_EQ(grads[0].at(i), output.at(i));
  }
}

TEST(FlattenTest, RoundtripThroughBackward) {
  Flatten flatten("f");
  Tensor input = RandomTensor(Shape{2, 3, 4, 5}, 24);
  ExecutionContext ctx = DetCtx();
  Tensor output = flatten.Forward({&input}, &ctx).value();
  EXPECT_EQ(output.shape(), (Shape{2, 60}));
  auto grads = flatten.Backward(output, &ctx).value();
  EXPECT_TRUE(grads[0].Equals(input));
}

TEST(AddTest, SumsInputsAndFansOutGradient) {
  Add add("a", 2);
  Tensor x(Shape{2}, {1, 2});
  Tensor y(Shape{2}, {10, 20});
  ExecutionContext ctx = DetCtx();
  Tensor output = add.Forward({&x, &y}, &ctx).value();
  EXPECT_FLOAT_EQ(output.at(1), 22.0f);
  Tensor grad_out(Shape{2}, {5, 6});
  auto grads = add.Backward(grad_out, &ctx).value();
  ASSERT_EQ(grads.size(), 2u);
  EXPECT_TRUE(grads[0].Equals(grad_out));
  EXPECT_TRUE(grads[1].Equals(grad_out));
}

TEST(AddTest, RejectsShapeMismatch) {
  Add add("a", 2);
  Tensor x(Shape{2});
  Tensor y(Shape{3});
  ExecutionContext ctx = DetCtx();
  EXPECT_FALSE(add.Forward({&x, &y}, &ctx).ok());
}

TEST(ConcatTest, ConcatenatesChannels) {
  Concat concat("c", 2);
  Tensor x = Tensor::Full(Shape{1, 1, 2, 2}, 1.0f);
  Tensor y = Tensor::Full(Shape{1, 2, 2, 2}, 2.0f);
  ExecutionContext ctx = DetCtx();
  Tensor output = concat.Forward({&x, &y}, &ctx).value();
  EXPECT_EQ(output.shape(), (Shape{1, 3, 2, 2}));
  EXPECT_FLOAT_EQ(output.at(0), 1.0f);
  EXPECT_FLOAT_EQ(output.at(4), 2.0f);
}

TEST(ConcatTest, BackwardSplitsChannels) {
  Concat concat("c", 2);
  Tensor x = RandomTensor(Shape{2, 2, 3, 3}, 25);
  Tensor y = RandomTensor(Shape{2, 3, 3, 3}, 26);
  ExecutionContext ctx = DetCtx();
  Tensor output = concat.Forward({&x, &y}, &ctx).value();
  auto grads = concat.Backward(output, &ctx).value();
  ASSERT_EQ(grads.size(), 2u);
  EXPECT_TRUE(grads[0].Equals(x));
  EXPECT_TRUE(grads[1].Equals(y));
}

TEST(ConcatTest, RejectsSpatialMismatch) {
  Concat concat("c", 2);
  Tensor x(Shape{1, 1, 2, 2});
  Tensor y(Shape{1, 1, 3, 3});
  ExecutionContext ctx = DetCtx();
  EXPECT_FALSE(concat.Forward({&x, &y}, &ctx).ok());
}

// --- Layer state serialization ---

TEST(LayerStateTest, SerializeDeserializeRoundtrip) {
  Rng rng(4);
  Conv2d conv("c", 2, 4, 3, 1, 1, 1, &rng);
  BytesWriter writer;
  conv.SerializeParams(&writer);

  Rng rng2(99);  // different init
  Conv2d other("c", 2, 4, 3, 1, 1, 1, &rng2);
  EXPECT_NE(other.ParamHash(), conv.ParamHash());
  BytesReader reader(writer.bytes());
  ASSERT_TRUE(other.DeserializeParams(&reader).ok());
  EXPECT_EQ(other.ParamHash(), conv.ParamHash());
}

TEST(LayerStateTest, DeserializeRejectsWrongShape) {
  Rng rng(4);
  Linear a("fc", 4, 4, &rng);
  Linear b("fc", 4, 5, &rng);
  BytesWriter writer;
  a.SerializeParams(&writer);
  BytesReader reader(writer.bytes());
  EXPECT_FALSE(b.DeserializeParams(&reader).ok());
}

TEST(LayerValidationTest, Conv2dBackwardBeforeForwardFails) {
  Rng rng(6);
  Conv2d conv("c", 2, 4, 3, 1, 1, 1, &rng);
  ExecutionContext ctx = DetCtx();
  Tensor grad(Shape{1, 4, 8, 8});
  EXPECT_EQ(conv.Backward(grad, &ctx).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LayerValidationTest, Conv2dBackwardRejectsWrongGradShape) {
  Rng rng(6);
  Conv2d conv("c", 2, 4, 3, 1, 1, 1, &rng);
  ExecutionContext ctx = DetCtx();
  const Tensor input = RandomTensor(Shape{2, 2, 8, 8}, 31);
  ASSERT_TRUE(conv.Forward({&input}, &ctx).ok());
  // Forward produced [2, 4, 8, 8]; every differing dimension must be
  // rejected against the cached forward shape.
  for (const Shape& bad :
       {Shape{1, 4, 8, 8}, Shape{2, 3, 8, 8}, Shape{2, 4, 7, 8},
        Shape{2, 4, 8, 9}}) {
    Tensor grad(bad);
    EXPECT_EQ(conv.Backward(grad, &ctx).status().code(),
              StatusCode::kInvalidArgument)
        << bad.ToString();
  }
  Tensor good(Shape{2, 4, 8, 8});
  EXPECT_TRUE(conv.Backward(good, &ctx).ok());
}

TEST(LayerValidationTest, LinearBackwardBeforeForwardFails) {
  Rng rng(7);
  Linear fc("fc", 4, 3, &rng);
  ExecutionContext ctx = DetCtx();
  Tensor grad(Shape{2, 3});
  EXPECT_EQ(fc.Backward(grad, &ctx).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LayerValidationTest, LinearBackwardRejectsWrongGradShape) {
  Rng rng(7);
  Linear fc("fc", 4, 3, &rng);
  ExecutionContext ctx = DetCtx();
  const Tensor input = RandomTensor(Shape{2, 4}, 32);
  ASSERT_TRUE(fc.Forward({&input}, &ctx).ok());
  for (const Shape& bad : {Shape{3, 3}, Shape{2, 4}}) {
    Tensor grad(bad);
    EXPECT_EQ(fc.Backward(grad, &ctx).status().code(),
              StatusCode::kInvalidArgument)
        << bad.ToString();
  }
  Tensor good(Shape{2, 3});
  EXPECT_TRUE(fc.Backward(good, &ctx).ok());
}

TEST(LayerStateTest, ParamHashIgnoresGradients) {
  Rng rng(5);
  Linear layer("fc", 3, 3, &rng);
  const Digest before = layer.ParamHash();
  layer.params()[0].grad.Fill(7.0f);
  EXPECT_EQ(layer.ParamHash(), before);
  layer.params()[0].value.at(0) += 1.0f;
  EXPECT_NE(layer.ParamHash(), before);
}

}  // namespace
}  // namespace mmlib::nn
