#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace mmlib {

/// Canonical error codes used across all mmlib modules. Modeled after the
/// error models of RocksDB / Arrow: recoverable errors travel through
/// Status/Result values, never through exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kCorruption,
  kIoError,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kOutOfRange,
  /// The service (or the simulated network path to it) transiently failed;
  /// the operation is safe to retry.
  kUnavailable,
  /// The operation did not complete within its (virtual) deadline; safe to
  /// retry.
  kDeadlineExceeded,
  /// A capacity limit was hit — a bounded request queue is full or a tenant
  /// exhausted its quota. The serving layer's load-shedding answer: the
  /// caller should back off and reduce offered load, not blind-retry.
  kResourceExhausted,
};

/// Returns a stable human-readable name for a status code, e.g. "NotFound".
std::string_view StatusCodeName(StatusCode code);

/// A Status holds the outcome of an operation that can fail: either OK or an
/// error code plus a message. Statuses are cheap to copy in the OK case.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Prefixes the error message with additional context; no-op on OK.
  Status WithContext(std::string_view context) const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Evaluates an expression producing a Status and returns it from the current
/// function if it is not OK.
#define MMLIB_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::mmlib::Status _mmlib_status = (expr);    \
    if (!_mmlib_status.ok()) {                 \
      return _mmlib_status;                    \
    }                                          \
  } while (false)

/// Evaluates an expression producing a Result<T>; on error returns the status,
/// otherwise assigns the value to `lhs`.
#define MMLIB_ASSIGN_OR_RETURN_IMPL(var, lhs, expr) \
  auto var = (expr);                                \
  if (!var.ok()) {                                  \
    return var.status();                            \
  }                                                 \
  lhs = std::move(var).value();

#define MMLIB_ASSIGN_OR_RETURN_CONCAT_(a, b) a##b
#define MMLIB_ASSIGN_OR_RETURN_CONCAT(a, b) \
  MMLIB_ASSIGN_OR_RETURN_CONCAT_(a, b)

#define MMLIB_ASSIGN_OR_RETURN(lhs, expr)                                  \
  MMLIB_ASSIGN_OR_RETURN_IMPL(                                             \
      MMLIB_ASSIGN_OR_RETURN_CONCAT(_mmlib_result_, __LINE__), lhs, expr)

}  // namespace mmlib

