#pragma once

#include <string>
#include <vector>

#include "nn/model.h"
#include "nn/optimizer.h"
#include "util/bytes.h"

namespace mmlib::nn {

/// Hyperparameters of the Adam optimizer (Kingma & Ba, 2015).
struct AdamOptions {
  float learning_rate = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  float weight_decay = 0.0f;
};

/// Adam over a model's trainable parameters.
///
/// Adam is *always* stateful (first/second moment estimates plus the step
/// counter), which makes it the stronger test of the model provenance
/// approach's state-file machinery: replaying a training without restoring
/// the optimizer state cannot reproduce the model.
class AdamOptimizer : public Optimizer {
 public:
  AdamOptimizer(Model* model, AdamOptions options);

  const AdamOptions& options() const { return options_; }
  int64_t step_count() const { return step_count_; }

  void Step() override;
  void ZeroGrad() override { model_->ZeroGrad(); }
  /// State file: hyperparameters, the step counter, and both moment buffers.
  Bytes SerializeState() const override;
  Status LoadState(const Bytes& data) override;
  std::string DescribeConfig() const override;
  float learning_rate() const override { return options_.learning_rate; }
  void SetLearningRate(float learning_rate) override {
    options_.learning_rate = learning_rate;
  }

 private:
  struct Slot {
    size_t node_index;
    size_t param_index;
    Tensor first_moment;
    Tensor second_moment;
  };

  void RebuildSlots();

  Model* model_;
  AdamOptions options_;
  int64_t step_count_ = 0;
  std::vector<Slot> slots_;
};

}  // namespace mmlib::nn

