#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/result.h"
#include "util/scratch_pool.h"

namespace mmlib::nn {

/// Loss value together with the gradient w.r.t. the logits.
struct LossResult {
  float loss = 0.0f;
  Tensor grad_logits;
};

/// Softmax cross-entropy over logits [N, C] against integer labels (size N).
/// Returns mean loss and its gradient; numerically stabilized by max
/// subtraction, accumulation in fixed order (deterministic).
Result<LossResult> SoftmaxCrossEntropy(const Tensor& logits,
                                       const std::vector<int64_t>& labels);

/// Allocation-free variant for hot loops: reuses `out`'s gradient storage
/// when the shape matches, and leases the per-row exponential cache from
/// `scratch` (falls back to a local allocation when null). Results are
/// bit-identical to SoftmaxCrossEntropy — the cache holds the exact double
/// exp values the two-pass version recomputes.
Status SoftmaxCrossEntropyInto(const Tensor& logits,
                               const std::vector<int64_t>& labels,
                               util::ScratchPool* scratch, LossResult* out);

/// Fraction of rows whose argmax equals the label.
Result<float> Accuracy(const Tensor& logits,
                       const std::vector<int64_t>& labels);

}  // namespace mmlib::nn

