#include "simnet/network.h"

#include <algorithm>

namespace mmlib::simnet {

void Network::set_fault_plan(const FaultPlan& plan) {
  fault_plan_ = plan;
  fault_rng_ = Rng(plan.seed);
  ResetFaultCounters();
}

double Network::Transfer(uint64_t bytes) {
  const double seconds = link_.TransferSeconds(bytes);
  clock_.AdvanceSeconds(seconds);
  total_bytes_ += bytes;
  ++message_count_;
  return seconds;
}

void Network::CountFault(FaultCounters* replica_faults,
                         uint64_t FaultCounters::* kind) {
  ++(faults_.*kind);
  if (current_op_ != nullptr) {
    ++(per_op_faults_[current_op_].*kind);
  }
  if (replica_faults != nullptr) {
    ++(replica_faults->*kind);
  }
}

TransferAttempt Network::AttemptWithPlan(const FaultPlan& plan, Rng* rng,
                                         uint64_t bytes,
                                         FaultCounters* node_faults) {
  TransferAttempt attempt;
  if (!plan.active()) {
    attempt.seconds = Transfer(bytes);
    return attempt;
  }
  ++message_count_;
  // One uniform draw per message keeps the fault stream's consumption a pure
  // function of the message sequence, whatever the outcome.
  const double u = rng->NextDouble();
  if (u < plan.drop_probability) {
    CountFault(node_faults, &FaultCounters::drops);
    attempt.seconds = link_.latency_seconds;
    clock_.AdvanceSeconds(attempt.seconds);
    attempt.status = Status::Unavailable("message dropped in flight");
    return attempt;
  }
  if (u < plan.drop_probability + plan.timeout_probability) {
    CountFault(node_faults, &FaultCounters::timeouts);
    attempt.seconds = plan.timeout_seconds;
    clock_.AdvanceSeconds(attempt.seconds);
    attempt.status = Status::DeadlineExceeded("message timed out");
    return attempt;
  }
  attempt.seconds = link_.TransferSeconds(bytes);
  clock_.AdvanceSeconds(attempt.seconds);
  total_bytes_ += bytes;
  if (u < plan.drop_probability + plan.timeout_probability +
              plan.corrupt_probability) {
    CountFault(node_faults, &FaultCounters::corruptions);
    attempt.corrupted = true;
  }
  return attempt;
}

TransferAttempt Network::TryTransfer(uint64_t bytes) {
  return AttemptWithPlan(fault_plan_, &fault_rng_, bytes, nullptr);
}

void Network::CorruptPayload(Bytes* payload) {
  if (payload == nullptr || payload->empty()) {
    return;
  }
  const size_t position = fault_rng_.NextBelow(payload->size());
  (*payload)[position] ^= static_cast<uint8_t>(1 + fault_rng_.NextBelow(255));
}

void Network::ChargeSeconds(double seconds) {
  clock_.AdvanceSeconds(seconds);
}

void Network::ResetFaultCounters() {
  faults_ = FaultCounters{};
  per_op_faults_.clear();
  for (ReplicaState& replica : replicas_) {
    replica.faults = FaultCounters{};
    replica.rejects = 0;
    replica.crashes = 0;
    replica.restarts = 0;
  }
  for (WorkerState& worker : workers_) {
    worker.faults = FaultCounters{};
    worker.rejects = 0;
    worker.crashes = 0;
    worker.restarts = 0;
  }
}

void Network::ConfigureNodes(size_t count) {
  node_up_.assign(count, true);
}

Status Network::CrashNode(size_t node) {
  if (node >= node_up_.size()) {
    return Status::InvalidArgument("node " + std::to_string(node) +
                                   " is not configured");
  }
  if (!node_up_[node]) {
    return Status::FailedPrecondition("node " + std::to_string(node) +
                                      " is already down");
  }
  node_up_[node] = false;
  ++crash_count_;
  clock_.AdvanceSeconds(node_costs_.crash_detect_seconds);
  return Status::OK();
}

Status Network::RestartNode(size_t node) {
  if (node >= node_up_.size()) {
    return Status::InvalidArgument("node " + std::to_string(node) +
                                   " is not configured");
  }
  if (node_up_[node]) {
    return Status::FailedPrecondition("node " + std::to_string(node) +
                                      " is already up");
  }
  node_up_[node] = true;
  ++restart_count_;
  clock_.AdvanceSeconds(node_costs_.restart_seconds);
  return Status::OK();
}

TransferAttempt Network::TryTransferToNode(size_t node, uint64_t bytes) {
  if (!IsNodeUp(node)) {
    // The sender learns nothing until its message goes unanswered; charge
    // one latency like a dropped message. No fault-rng draw: the fault
    // stream stays a pure function of the *delivered* message sequence, so
    // a crash window does not shift later fault decisions.
    TransferAttempt attempt;
    ++message_count_;
    ++down_node_reject_count_;
    attempt.seconds = link_.latency_seconds;
    clock_.AdvanceSeconds(attempt.seconds);
    attempt.status = Status::Unavailable("node " + std::to_string(node) +
                                         " is down");
    return attempt;
  }
  return TryTransfer(bytes);
}

void Network::ConfigureReplicas(size_t count) {
  replicas_.clear();
  replicas_.resize(count);
  replica_events_.clear();
}

Status Network::SetReplicaFaultPlan(size_t replica, const FaultPlan& plan) {
  if (replica >= replicas_.size()) {
    return Status::InvalidArgument("replica " + std::to_string(replica) +
                                   " is not configured");
  }
  ReplicaState& state = replicas_[replica];
  state.has_plan = plan.active();
  state.plan = plan;
  state.rng = Rng(plan.seed);
  return Status::OK();
}

Status Network::CrashReplica(size_t replica) {
  if (replica >= replicas_.size()) {
    return Status::InvalidArgument("replica " + std::to_string(replica) +
                                   " is not configured");
  }
  if (!replicas_[replica].up) {
    return Status::FailedPrecondition("replica " + std::to_string(replica) +
                                      " is already down");
  }
  replicas_[replica].up = false;
  ++replicas_[replica].crashes;
  ++crash_count_;
  clock_.AdvanceSeconds(node_costs_.crash_detect_seconds);
  return Status::OK();
}

Status Network::RestartReplica(size_t replica) {
  if (replica >= replicas_.size()) {
    return Status::InvalidArgument("replica " + std::to_string(replica) +
                                   " is not configured");
  }
  if (replicas_[replica].up) {
    return Status::FailedPrecondition("replica " + std::to_string(replica) +
                                      " is already up");
  }
  replicas_[replica].up = true;
  ++replicas_[replica].restarts;
  ++restart_count_;
  clock_.AdvanceSeconds(node_costs_.restart_seconds);
  return Status::OK();
}

Status Network::Partition(const std::vector<std::vector<size_t>>& groups) {
  std::vector<int> assignment(replicas_.size(), 0);
  std::vector<bool> seen(replicas_.size(), false);
  for (size_t g = 0; g < groups.size(); ++g) {
    for (size_t replica : groups[g]) {
      if (replica >= replicas_.size()) {
        return Status::InvalidArgument("replica " + std::to_string(replica) +
                                       " is not configured");
      }
      if (seen[replica]) {
        return Status::InvalidArgument("replica " + std::to_string(replica) +
                                       " listed in more than one group");
      }
      seen[replica] = true;
      assignment[replica] = static_cast<int>(g) + 1;
    }
  }
  for (size_t r = 0; r < replicas_.size(); ++r) {
    replicas_[r].group = assignment[r];
  }
  ++partition_count_;
  return Status::OK();
}

void Network::Heal() {
  for (ReplicaState& replica : replicas_) {
    replica.group = 0;
  }
  ++heal_count_;
}

void Network::ScheduleReplicaCrash(size_t replica, double at_seconds) {
  ReplicaEvent event;
  event.at_seconds = at_seconds;
  event.kind = ReplicaEvent::Kind::kCrash;
  event.replica = replica;
  replica_events_.push_back(std::move(event));
  std::stable_sort(replica_events_.begin(), replica_events_.end(),
                   [](const ReplicaEvent& a, const ReplicaEvent& b) {
                     return a.at_seconds < b.at_seconds;
                   });
}

void Network::ScheduleReplicaRestart(size_t replica, double at_seconds) {
  ReplicaEvent event;
  event.at_seconds = at_seconds;
  event.kind = ReplicaEvent::Kind::kRestart;
  event.replica = replica;
  replica_events_.push_back(std::move(event));
  std::stable_sort(replica_events_.begin(), replica_events_.end(),
                   [](const ReplicaEvent& a, const ReplicaEvent& b) {
                     return a.at_seconds < b.at_seconds;
                   });
}

void Network::SchedulePartition(double at_seconds,
                                std::vector<std::vector<size_t>> groups) {
  ReplicaEvent event;
  event.at_seconds = at_seconds;
  event.kind = ReplicaEvent::Kind::kPartition;
  event.groups = std::move(groups);
  replica_events_.push_back(std::move(event));
  std::stable_sort(replica_events_.begin(), replica_events_.end(),
                   [](const ReplicaEvent& a, const ReplicaEvent& b) {
                     return a.at_seconds < b.at_seconds;
                   });
}

void Network::ScheduleHeal(double at_seconds) {
  ReplicaEvent event;
  event.at_seconds = at_seconds;
  event.kind = ReplicaEvent::Kind::kHeal;
  replica_events_.push_back(std::move(event));
  std::stable_sort(replica_events_.begin(), replica_events_.end(),
                   [](const ReplicaEvent& a, const ReplicaEvent& b) {
                     return a.at_seconds < b.at_seconds;
                   });
}

void Network::ApplyDueReplicaEvents() {
  // Applying a crash/restart charges detection/restart time, which can make
  // further events due; loop until the front of the queue is in the future.
  while (!replica_events_.empty() &&
         replica_events_.front().at_seconds <= clock_.NowSeconds()) {
    ReplicaEvent event = std::move(replica_events_.front());
    replica_events_.erase(replica_events_.begin());
    switch (event.kind) {
      case ReplicaEvent::Kind::kCrash:
        // Crashing an already-down replica is a no-op, not an error: a
        // schedule derived from a random seed may race its own restarts.
        (void)CrashReplica(event.replica);
        break;
      case ReplicaEvent::Kind::kRestart:
        (void)RestartReplica(event.replica);
        break;
      case ReplicaEvent::Kind::kPartition:
        (void)Partition(event.groups);
        break;
      case ReplicaEvent::Kind::kHeal:
        Heal();
        break;
    }
  }
}

TransferAttempt Network::TryTransferToReplica(size_t replica, uint64_t bytes) {
  ApplyDueReplicaEvents();
  if (!IsReplicaReachable(replica)) {
    // Same accounting as a down participant node: one latency charge, no
    // fault draw, so crash/partition windows never shift later fault
    // decisions on the surviving replicas.
    TransferAttempt attempt;
    ++message_count_;
    ++replica_reject_count_;
    if (replica < replicas_.size()) {
      ++replicas_[replica].rejects;
    }
    attempt.seconds = link_.latency_seconds;
    clock_.AdvanceSeconds(attempt.seconds);
    attempt.status = Status::Unavailable(
        "replica " + std::to_string(replica) + " is unreachable");
    return attempt;
  }
  ReplicaState& state = replicas_[replica];
  if (state.has_plan) {
    return AttemptWithPlan(state.plan, &state.rng, bytes, &state.faults);
  }
  return AttemptWithPlan(fault_plan_, &fault_rng_, bytes, &state.faults);
}

TransferAttempt Network::TryTransferBetweenReplicas(size_t from, size_t to,
                                                    uint64_t bytes) {
  ApplyDueReplicaEvents();
  if (!ReplicaPairReachable(from, to)) {
    TransferAttempt attempt;
    ++message_count_;
    ++replica_reject_count_;
    if (to < replicas_.size()) {
      ++replicas_[to].rejects;
    }
    attempt.seconds = link_.latency_seconds;
    clock_.AdvanceSeconds(attempt.seconds);
    attempt.status = Status::Unavailable(
        "replicas " + std::to_string(from) + " and " + std::to_string(to) +
        " cannot reach each other");
    return attempt;
  }
  TransferAttempt attempt;
  attempt.seconds = Transfer(bytes);
  return attempt;
}

void Network::ConfigureWorkers(size_t count) {
  workers_.clear();
  workers_.resize(count);
}

void Network::set_collective_fault_plan(const FaultPlan& plan) {
  collective_fault_plan_ = plan;
  collective_fault_rng_ = Rng(plan.seed);
}

Status Network::CrashWorker(size_t worker) {
  if (worker >= workers_.size()) {
    return Status::InvalidArgument("worker " + std::to_string(worker) +
                                   " is not configured");
  }
  if (!workers_[worker].up) {
    return Status::FailedPrecondition("worker " + std::to_string(worker) +
                                      " is already down");
  }
  workers_[worker].up = false;
  ++workers_[worker].crashes;
  ++crash_count_;
  clock_.AdvanceSeconds(node_costs_.crash_detect_seconds);
  return Status::OK();
}

Status Network::RestartWorker(size_t worker) {
  if (worker >= workers_.size()) {
    return Status::InvalidArgument("worker " + std::to_string(worker) +
                                   " is not configured");
  }
  if (workers_[worker].up) {
    return Status::FailedPrecondition("worker " + std::to_string(worker) +
                                      " is already up");
  }
  workers_[worker].up = true;
  ++workers_[worker].restarts;
  ++restart_count_;
  clock_.AdvanceSeconds(node_costs_.restart_seconds);
  return Status::OK();
}

Status Network::PartitionWorkers(
    const std::vector<std::vector<size_t>>& groups) {
  std::vector<int> assignment(workers_.size(), 0);
  std::vector<bool> seen(workers_.size(), false);
  for (size_t g = 0; g < groups.size(); ++g) {
    for (size_t worker : groups[g]) {
      if (worker >= workers_.size()) {
        return Status::InvalidArgument("worker " + std::to_string(worker) +
                                       " is not configured");
      }
      if (seen[worker]) {
        return Status::InvalidArgument("worker " + std::to_string(worker) +
                                       " listed in more than one group");
      }
      seen[worker] = true;
      assignment[worker] = static_cast<int>(g) + 1;
    }
  }
  for (size_t w = 0; w < workers_.size(); ++w) {
    workers_[w].group = assignment[w];
  }
  ++partition_count_;
  return Status::OK();
}

void Network::HealWorkers() {
  for (WorkerState& worker : workers_) {
    worker.group = 0;
  }
  ++heal_count_;
}

TransferAttempt Network::TryTransferBetweenWorkers(size_t from, size_t to,
                                                   uint64_t bytes) {
  if (!WorkerPairReachable(from, to)) {
    // Same accounting as a down participant node: one latency charge, no
    // fault draw, so crash/partition windows never shift later collective
    // fault decisions on the surviving workers.
    TransferAttempt attempt;
    ++message_count_;
    ++worker_reject_count_;
    if (to < workers_.size()) {
      ++workers_[to].rejects;
    }
    attempt.seconds = link_.latency_seconds;
    clock_.AdvanceSeconds(attempt.seconds);
    attempt.status = Status::Unavailable(
        "workers " + std::to_string(from) + " and " + std::to_string(to) +
        " cannot reach each other");
    return attempt;
  }
  TransferAttempt attempt =
      AttemptWithPlan(collective_fault_plan_, &collective_fault_rng_, bytes,
                      &workers_[to].faults);
  if (attempt.corrupted) {
    // Link-level retransmission: the damaged frame is detected and resent,
    // so the payload the receiver reduces is always intact — arithmetic is
    // never perturbed by the fault plan. The resend costs one more full
    // transfer (no fault draw: retransmissions ride the reliable path).
    attempt.corrupted = false;
    attempt.seconds += Transfer(bytes);
    ++worker_retransmit_count_;
  }
  return attempt;
}

Result<FaultCounters> Network::WorkerFaultCounters(size_t worker) const {
  if (worker >= workers_.size()) {
    return Status::InvalidArgument("worker " + std::to_string(worker) +
                                   " is not configured");
  }
  return workers_[worker].faults;
}

Result<uint64_t> Network::WorkerRejectCount(size_t worker) const {
  if (worker >= workers_.size()) {
    return Status::InvalidArgument("worker " + std::to_string(worker) +
                                   " is not configured");
  }
  return workers_[worker].rejects;
}

Result<uint64_t> Network::WorkerCrashCount(size_t worker) const {
  if (worker >= workers_.size()) {
    return Status::InvalidArgument("worker " + std::to_string(worker) +
                                   " is not configured");
  }
  return workers_[worker].crashes;
}

Result<uint64_t> Network::WorkerRestartCount(size_t worker) const {
  if (worker >= workers_.size()) {
    return Status::InvalidArgument("worker " + std::to_string(worker) +
                                   " is not configured");
  }
  return workers_[worker].restarts;
}

Result<FaultCounters> Network::ReplicaFaultCounters(size_t replica) const {
  if (replica >= replicas_.size()) {
    return Status::InvalidArgument("replica " + std::to_string(replica) +
                                   " is not configured");
  }
  return replicas_[replica].faults;
}

Result<uint64_t> Network::ReplicaRejectCount(size_t replica) const {
  if (replica >= replicas_.size()) {
    return Status::InvalidArgument("replica " + std::to_string(replica) +
                                   " is not configured");
  }
  return replicas_[replica].rejects;
}

Result<uint64_t> Network::ReplicaCrashCount(size_t replica) const {
  if (replica >= replicas_.size()) {
    return Status::InvalidArgument("replica " + std::to_string(replica) +
                                   " is not configured");
  }
  return replicas_[replica].crashes;
}

Result<uint64_t> Network::ReplicaRestartCount(size_t replica) const {
  if (replica >= replicas_.size()) {
    return Status::InvalidArgument("replica " + std::to_string(replica) +
                                   " is not configured");
  }
  return replicas_[replica].restarts;
}

void Network::Reset() {
  clock_ = VirtualClock();
  fault_rng_ = Rng(fault_plan_.seed);
  node_up_.assign(node_up_.size(), true);
  const size_t replica_count = replicas_.size();
  std::vector<ReplicaState> fresh(replica_count);
  for (size_t r = 0; r < replica_count; ++r) {
    if (replicas_[r].has_plan) {
      fresh[r].has_plan = true;
      fresh[r].plan = replicas_[r].plan;
      fresh[r].rng = Rng(replicas_[r].plan.seed);
    }
  }
  replicas_ = std::move(fresh);
  replica_events_.clear();
  collective_fault_rng_ = Rng(collective_fault_plan_.seed);
  workers_.assign(workers_.size(), WorkerState{});
  total_bytes_ = 0;
  message_count_ = 0;
  faults_ = FaultCounters{};
  per_op_faults_.clear();
  crash_count_ = 0;
  restart_count_ = 0;
  down_node_reject_count_ = 0;
  replica_reject_count_ = 0;
  worker_reject_count_ = 0;
  worker_retransmit_count_ = 0;
  partition_count_ = 0;
  heal_count_ = 0;
}

}  // namespace mmlib::simnet
