/// Reproduces paper Figure 8: storage consumption (baseline approach) and
/// number of parameters per model architecture — storage grows
/// proportionally with the parameter count.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/baseline.h"
#include "core/model_code.h"
#include "env/environment.h"

using namespace mmlib;
using namespace mmlib::bench;

int main() {
  PrintHeader("Figure 8",
              "Baseline storage consumption and #parameters per model",
              "Channel divisor 4; the bytes-per-parameter column shows "
              "proportionality.");

  const env::EnvironmentInfo environment = env::CollectEnvironment();
  TablePrinter table({"model", "#params", "storage", "bytes/param",
                      "paper #params (full)"});
  for (const models::Table2Row& paper_row : models::Table2Reference()) {
    const models::Architecture arch =
        models::ArchitectureFromName(paper_row.name).value();
    const models::ModelConfig config = StorageScaleModel(arch);
    auto model = models::BuildModel(config).value();

    Backing backing;
    core::BaselineSaveService service(backing.backends);
    core::SaveRequest request;
    request.model = &model;
    request.code = core::CodeDescriptorFor(config);
    request.environment = &environment;
    const auto save = service.SaveModel(request).value();

    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.2f",
                  static_cast<double>(save.storage_bytes) /
                      model.TrainableParamCount());
    table.AddRow({paper_row.name, std::to_string(model.TrainableParamCount()),
                  Mb(save.storage_bytes), ratio,
                  std::to_string(paper_row.params)});
  }
  table.Print(std::cout);
  std::printf(
      "\nStorage increases proportionally with the parameter count\n"
      "(~4 bytes/param plus layer-name and metadata overhead), as in the "
      "paper.\n");
  return 0;
}
