/// Replication-overhead microbenchmark: runs the save/recover flow of the
/// fig-2-scale MobileNetV2 model against an R-way replicated store, sweeping
/// the replica count R in {1, 3, 5} and the W/R quorum split (majority,
/// write-all/read-one, write-one/read-all). Measures what durability costs —
/// virtual save/recover time, network messages and bytes, physical vs
/// logical storage — relative to the unreplicated R=1 baseline, and checks
/// that every configuration stores the same logical content (same record
/// stream, same logical byte count). Writes BENCH_replication.json.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "json/json.h"
#include "repl/replicated_store.h"
#include "simnet/network.h"

using namespace mmlib;

namespace {

struct QuorumSweepEntry {
  size_t replicas = 1;
  size_t write_quorum = 1;
  size_t read_quorum = 1;
  const char* name = "";
};

/// R=1 is the unreplicated baseline every other row is compared against.
/// For R>1 the three interesting W/R splits: majority/majority (the
/// default), write-all/read-one (cheap reads, expensive writes), and
/// write-one/read-all (the reverse). W + R > N holds for all of them.
constexpr QuorumSweepEntry kSweep[] = {
    {1, 1, 1, "baseline"},
    {3, 2, 2, "majority"},
    {3, 3, 1, "write-all"},
    {3, 1, 3, "read-all"},
    {5, 3, 3, "majority"},
    {5, 5, 1, "write-all"},
    {5, 1, 5, "read-all"},
};

/// An R-way replicated storage service: one in-memory backend plus one
/// replica-bound remote transport per replica, all sharing the storage
/// service link, wrapped by the quorum stores.
struct ReplicatedBacking {
  ReplicatedBacking(size_t n, repl::QuorumConfig config)
      : network(bench::StorageServiceLink()) {
    network.ConfigureReplicas(n);
    std::vector<filestore::RemoteFileStore*> file_ptrs;
    std::vector<docstore::RemoteDocumentStore*> doc_ptrs;
    for (size_t r = 0; r < n; ++r) {
      file_backends.push_back(
          std::make_unique<filestore::InMemoryFileStore>());
      doc_backends.push_back(
          std::make_unique<docstore::InMemoryDocumentStore>());
      auto file_transport = std::make_unique<filestore::RemoteFileStore>(
          file_backends.back().get(), &network);
      file_transport->BindReplica(r);
      auto doc_transport = std::make_unique<docstore::RemoteDocumentStore>(
          doc_backends.back().get(), &network);
      doc_transport->BindReplica(r);
      file_ptrs.push_back(file_transport.get());
      doc_ptrs.push_back(doc_transport.get());
      file_transports.push_back(std::move(file_transport));
      doc_transports.push_back(std::move(doc_transport));
    }
    auto files_or =
        repl::ReplicatedFileStore::Create(file_ptrs, &network, config);
    auto docs_or =
        repl::ReplicatedDocumentStore::Create(doc_ptrs, &network, config);
    if (!files_or.ok() || !docs_or.ok()) {
      std::cerr << "replicated store setup failed\n";
      std::abort();
    }
    files = std::move(files_or).value();
    docs = std::move(docs_or).value();
  }

  simnet::Network network;
  std::vector<std::unique_ptr<filestore::InMemoryFileStore>> file_backends;
  std::vector<std::unique_ptr<docstore::InMemoryDocumentStore>> doc_backends;
  std::vector<std::unique_ptr<filestore::RemoteFileStore>> file_transports;
  std::vector<std::unique_ptr<docstore::RemoteDocumentStore>> doc_transports;
  std::unique_ptr<repl::ReplicatedFileStore> files;
  std::unique_ptr<repl::ReplicatedDocumentStore> docs;
};

/// Save/recover flow of the fig-2-scale model: every saved model is also
/// recovered (U4), so the sweep prices both the quorum write path and the
/// preferred-replica read path.
dist::FlowConfig ReplicationFlowConfig() {
  dist::FlowConfig config;
  config.approach = dist::ApproachKind::kBaseline;
  config.model = bench::TrainScaleModel(models::Architecture::kMobileNetV2);
  config.num_nodes = 1;
  config.u3_iterations = 2;
  config.dataset_divisor = 4096;
  config.training_mode = dist::TrainingMode::kSimulated;
  config.recover_models = true;
  config.scrub_every_iterations = 1;  // healthy anti-entropy: root exchanges
  return config;
}

struct Measurement {
  QuorumSweepEntry entry;
  double save_seconds = 0.0;     // summed TTS across all saved models
  double recover_seconds = 0.0;  // summed TTR across all recovered models
  double virtual_seconds = 0.0;  // total virtual clock, incl. scrub traffic
  uint64_t messages = 0;
  uint64_t network_bytes = 0;
  int64_t logical_bytes = 0;
  int64_t physical_bytes = 0;
  uint64_t scrub_sessions = 0;
  uint64_t scrub_root_matches = 0;
  std::vector<std::string> model_ids;
};

Measurement RunOnce(const QuorumSweepEntry& entry) {
  repl::QuorumConfig quorums;
  quorums.write_quorum = entry.write_quorum;
  quorums.read_quorum = entry.read_quorum;
  ReplicatedBacking backing(entry.replicas, quorums);
  core::StorageBackends backends{backing.docs.get(), backing.files.get(),
                                 &backing.network};
  dist::EvaluationFlow flow(ReplicationFlowConfig(), backends);
  auto result = flow.Run();
  if (!result.ok()) {
    std::cerr << "flow failed: " << result.status() << "\n";
    std::abort();
  }
  Measurement m;
  m.entry = entry;
  for (const dist::UseCaseRecord& record : result.value().records) {
    m.save_seconds += record.tts_seconds;
    m.recover_seconds += record.ttr_seconds;
    m.model_ids.push_back(record.model_id);
  }
  m.virtual_seconds = backing.network.TotalTransferSeconds();
  m.messages = backing.network.MessageCount();
  m.network_bytes = backing.network.TotalBytes();
  m.logical_bytes = static_cast<int64_t>(backing.files->TotalStoredBytes() +
                                         backing.docs->TotalStoredBytes());
  m.physical_bytes = static_cast<int64_t>(backing.files->PhysicalStoredBytes() +
                                          backing.docs->PhysicalStoredBytes());
  m.scrub_sessions = result.value().scrub.sessions;
  m.scrub_root_matches = result.value().scrub.root_matches;
  return m;
}

std::string Ratio(double value, double baseline) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2fx",
                baseline > 0.0 ? value / baseline : 0.0);
  return buffer;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "micro_replication", "Quorum replication overhead",
      "Save/recover flow of the fig-2-scale MobileNetV2 model (6 models,\n"
      "every one recovered) over an R-way replicated store on the storage\n"
      "service link, with one anti-entropy pass per U3 iteration. Sweeps\n"
      "R in {1, 3, 5} and the W/R quorum split; overheads are relative to\n"
      "the unreplicated R=1 baseline. Logical content must be identical\n"
      "in every configuration — replication multiplies physical bytes\n"
      "and traffic, never what the store logically holds.");

  std::vector<Measurement> measurements;
  for (const QuorumSweepEntry& entry : kSweep) {
    measurements.push_back(RunOnce(entry));
  }
  const Measurement& baseline = measurements.front();

  TablePrinter table({"R", "W", "Rq", "config", "save", "recover", "vtime",
                      "msgs", "phys/logical", "save x", "recover x"});
  for (const Measurement& m : measurements) {
    table.AddRow({std::to_string(m.entry.replicas),
                  std::to_string(m.entry.write_quorum),
                  std::to_string(m.entry.read_quorum), m.entry.name,
                  bench::Secs(m.save_seconds), bench::Secs(m.recover_seconds),
                  bench::Secs(m.virtual_seconds), std::to_string(m.messages),
                  Ratio(static_cast<double>(m.physical_bytes),
                        static_cast<double>(m.logical_bytes)),
                  Ratio(m.save_seconds, baseline.save_seconds),
                  Ratio(m.recover_seconds, baseline.recover_seconds)});
  }
  table.Print(std::cout);

  bool logical_identical = true;
  json::Value rows = json::Value::MakeArray();
  for (const Measurement& m : measurements) {
    logical_identical = logical_identical &&
                        m.logical_bytes == baseline.logical_bytes &&
                        m.model_ids == baseline.model_ids;
    json::Value row = json::Value::MakeObject();
    row.Set("replicas", static_cast<int64_t>(m.entry.replicas));
    row.Set("write_quorum", static_cast<int64_t>(m.entry.write_quorum));
    row.Set("read_quorum", static_cast<int64_t>(m.entry.read_quorum));
    row.Set("config", std::string(m.entry.name));
    row.Set("save_seconds", m.save_seconds);
    row.Set("recover_seconds", m.recover_seconds);
    row.Set("virtual_seconds", m.virtual_seconds);
    row.Set("messages", static_cast<int64_t>(m.messages));
    row.Set("network_bytes", static_cast<int64_t>(m.network_bytes));
    row.Set("logical_bytes", m.logical_bytes);
    row.Set("physical_bytes", m.physical_bytes);
    row.Set("scrub_sessions", static_cast<int64_t>(m.scrub_sessions));
    row.Set("scrub_root_matches",
            static_cast<int64_t>(m.scrub_root_matches));
    row.Set("save_overhead",
            baseline.save_seconds > 0.0
                ? m.save_seconds / baseline.save_seconds
                : 0.0);
    row.Set("recover_overhead",
            baseline.recover_seconds > 0.0
                ? m.recover_seconds / baseline.recover_seconds
                : 0.0);
    rows.Append(std::move(row));
  }
  json::Value doc = json::Value::MakeObject();
  doc.Set("bench", "micro_replication");
  bench::SetHostMetadata(&doc, /*pool_size=*/0);
  doc.Set("logical_content_identical", logical_identical);
  doc.Set("results", std::move(rows));
  const std::string json_text = doc.DumpPretty();
  std::FILE* out = std::fopen("BENCH_replication.json", "w");
  if (out != nullptr) {
    std::fwrite(json_text.data(), 1, json_text.size(), out);
    std::fputc('\n', out);
    std::fclose(out);
    std::printf("\nwrote BENCH_replication.json\n");
  }

  std::printf("logical content identical across configurations: %s\n",
              logical_identical ? "yes" : "NO");
  return logical_identical ? 0 : 1;
}
