file(REMOVE_RECURSE
  "../bench/ablation_recovery_cache"
  "../bench/ablation_recovery_cache.pdb"
  "CMakeFiles/ablation_recovery_cache.dir/ablation_recovery_cache.cc.o"
  "CMakeFiles/ablation_recovery_cache.dir/ablation_recovery_cache.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_recovery_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
