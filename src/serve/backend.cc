#include "serve/backend.h"

#include "simnet/arrivals.h"

namespace mmlib::serve {
namespace {

/// Uniform double in [0, 1) from a 64-bit hash (53 mantissa bits, the same
/// construction as util::Rng::NextDouble).
double HashUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

BackendOutcome SimulatedBackend::Execute(const Request& request,
                                         size_t batch_size,
                                         double now_seconds) {
  (void)now_seconds;
  BackendOutcome outcome;
  if (network_ != nullptr) {
    network_->ApplyDueReplicaEvents();
    if (!network_->IsReplicaReachable(replica_)) {
      outcome.code = StatusCode::kUnavailable;
      outcome.service_seconds = options_.unavailable_seconds;
      return outcome;
    }
  }
  // Every draw is keyed by the request identity, not a stream position, so
  // shedding or reordering neighbors never shifts this request's fate.
  const uint64_t identity =
      simnet::MixHash(options_.seed ^ simnet::MixHash(request.sequence));
  const uint64_t kind_salt =
      simnet::MixHash(identity ^ static_cast<uint64_t>(request.kind));

  if (options_.fault_probability > 0.0 &&
      HashUnit(simnet::MixHash(kind_salt ^ 0xfau)) <
          options_.fault_probability) {
    outcome.code = StatusCode::kUnavailable;
    outcome.service_seconds = options_.unavailable_seconds;
    return outcome;
  }

  const double base =
      options_.base_seconds[static_cast<size_t>(request.kind)];
  double seconds =
      base * (1.0 + options_.jitter_fraction *
                        HashUnit(simnet::MixHash(kind_salt ^ 0x11u)));
  if (options_.tail_probability > 0.0 &&
      HashUnit(simnet::MixHash(kind_salt ^ 0x77u)) <
          options_.tail_probability) {
    seconds *= options_.tail_multiplier;
  }
  if (batch_size > 1) {
    seconds *= 1.0 + (static_cast<double>(batch_size) - 1.0) *
                         options_.batch_marginal_fraction;
  }
  outcome.service_seconds = seconds;
  return outcome;
}

}  // namespace mmlib::serve
