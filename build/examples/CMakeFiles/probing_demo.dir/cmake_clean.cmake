file(REMOVE_RECURSE
  "CMakeFiles/probing_demo.dir/probing_demo.cpp.o"
  "CMakeFiles/probing_demo.dir/probing_demo.cpp.o.d"
  "probing_demo"
  "probing_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probing_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
