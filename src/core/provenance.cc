#include "core/provenance.h"

#include "data/archive.h"

namespace mmlib::core {

Result<SaveResult> ProvenanceSaveService::DoSaveModel(
    const SaveRequest& request) {
  CostMeter meter(backends_);
  SaveTransaction txn(backends_);

  MMLIB_ASSIGN_OR_RETURN(json::Value doc, MakeModelDoc(request, txn));

  if (request.base_model_id.empty()) {
    // Initial model: full snapshot, exactly like the baseline approach.
    Bytes params = request.model->SerializeParams();
    MMLIB_ASSIGN_OR_RETURN(Bytes encoded, EncodeParams(params));
    MMLIB_ASSIGN_OR_RETURN(std::string params_file, txn.SaveFile(encoded));
    doc.Set("params_file", params_file);
  } else {
    if (request.provenance == nullptr ||
        request.provenance->dataset == nullptr) {
      return Status::InvalidArgument(
          "provenance approach requires ProvenanceData for derived models");
    }
    const ProvenanceData& prov = *request.provenance;

    json::Value prov_doc = json::Value::MakeObject();
    prov_doc.Set("train_service", prov.train_service_doc);

    // Stateful wrapper state files (paper Figure 5: the optimizer's state
    // is saved in a state file referenced from its wrapper).
    if (!prov.optimizer_state.empty()) {
      MMLIB_ASSIGN_OR_RETURN(std::string state_file,
                             txn.SaveFile(prov.optimizer_state));
      prov_doc.Set("optimizer_state_file", state_file);
    }

    // Training data: compressed to a single file and referenced — or, with
    // an external dataset manager, referenced by content hash only.
    if (options_.external_dataset_manager) {
      prov_doc.Set("dataset_ref",
                   prov.dataset->ContentHash().ToHex());
      prov_doc.Set("dataset_name", prov.dataset->name());
    } else {
      data::DatasetArchiver archiver(Codec::ForKind(options_.dataset_codec));
      MMLIB_ASSIGN_OR_RETURN(Bytes archive, archiver.Archive(*prov.dataset));
      MMLIB_ASSIGN_OR_RETURN(std::string dataset_file,
                             txn.SaveFile(archive));
      prov_doc.Set("dataset_file", dataset_file);
    }

    MMLIB_ASSIGN_OR_RETURN(
        std::string prov_id,
        txn.Insert(kProvenanceCollection, std::move(prov_doc)));
    doc.Set("provenance_doc", prov_id);
  }

  MMLIB_ASSIGN_OR_RETURN(std::string model_id,
                         txn.Insert(kModelsCollection, std::move(doc)));
  MMLIB_RETURN_IF_ERROR(txn.Commit());
  SaveResult result;
  result.model_id = model_id;
  result.tts_seconds = meter.ElapsedSeconds();
  result.storage_bytes = meter.StoredBytesDelta();
  return result;
}

}  // namespace mmlib::core
