#pragma once

#include <array>
#include <cstdint>

#include "data/dataset.h"
#include "json/json.h"
#include "util/result.h"

namespace mmlib::data {

/// Configuration of the image preprocessing pipeline applied by the
/// DataLoader: optional center crop, nearest-neighbor resize, and
/// per-channel normalization.
///
/// The preprocessor is part of what must be tracked to reproduce training
/// (paper Section 2.3: "This requires tracking the raw dataset and how it
/// is provided by components such as the preprocessor or the dataloader").
/// It is a stateless parametrized object: this config is its complete
/// description and is embedded in the loader's provenance document.
struct PreprocessorConfig {
  /// Crop the largest centered square before resizing.
  bool center_crop = false;
  /// Per-channel mean subtracted after scaling pixels to [0, 1].
  std::array<float, 3> mean = {0.5f, 0.5f, 0.5f};
  /// Per-channel divisor applied after mean subtraction.
  std::array<float, 3> stddev = {1.0f, 1.0f, 1.0f};

  bool operator==(const PreprocessorConfig& other) const;

  json::Value ToJson() const;
  static Result<PreprocessorConfig> FromJson(const json::Value& doc);
};

/// Deterministically decodes a stored image into a normalized CHW float
/// tensor region.
class Preprocessor {
 public:
  Preprocessor(PreprocessorConfig config, int64_t output_size);

  const PreprocessorConfig& config() const { return config_; }
  int64_t output_size() const { return output_size_; }

  /// Writes the preprocessed image into `out`, which must hold
  /// 3 * output_size^2 floats laid out CHW. `flip` mirrors horizontally
  /// (augmentation).
  void Apply(const Image& image, bool flip, float* out) const;

 private:
  PreprocessorConfig config_;
  int64_t output_size_;
};

}  // namespace mmlib::data

