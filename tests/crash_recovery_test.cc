#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "audit/determinism_auditor.h"
#include "core/adaptive.h"
#include "core/baseline.h"
#include "core/checkpoint.h"
#include "core/model_code.h"
#include "core/param_update.h"
#include "core/provenance.h"
#include "core/recover.h"
#include "core/save_service.h"
#include "core/train_service.h"
#include "dist/flow.h"
#include "docstore/document_store.h"
#include "env/environment.h"
#include "filestore/file_store.h"
#include "models/zoo.h"
#include "repl/replicated_store.h"
#include "simnet/retry.h"
#include "tensor/tensor.h"
#include "util/crash_point.h"
#include "util/fs.h"
#include "persist/journal.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace mmlib {
namespace {

/// Overridable from the environment so CI can sweep several schedules over
/// the same assertions (MMLIB_FAULT_SEED=1 ctest -R crash_recovery ...).
uint64_t FaultSeed() {
  const char* env = std::getenv("MMLIB_FAULT_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 0x5eedfa17;
}

std::string FreshRoot(const std::string& tag) {
  const std::string root = ::testing::TempDir() + "/crash-" + tag;
  std::filesystem::remove_all(root);
  return root;
}

models::ModelConfig TinyConfig() {
  models::ModelConfig config =
      models::DefaultConfig(models::Architecture::kMobileNetV2);
  config.channel_divisor = 8;
  config.image_size = 28;
  config.num_classes = 10;
  return config;
}

core::TrainConfig TinyTrainConfig() {
  core::TrainConfig config;
  config.epochs = 1;
  config.max_batches_per_epoch = 1;
  config.seed = 77 ^ FaultSeed();
  // The suite sweeps MMLIB_FAULT_SEED, which perturbs the training seed
  // above; a conservative learning rate keeps momentum SGD on the tiny
  // model finite for every seed in the CI sweep.
  config.sgd.learning_rate = 0.002f;
  config.loader.batch_size = 4;
  config.loader.image_size = 28;
  config.loader.num_classes = 10;
  config.loader.seed = config.seed;
  return config;
}

// ---------------------------------------------------------------------------
// Crash-point registry semantics
// ---------------------------------------------------------------------------

TEST(CrashPointTest, FiresOnceAtTheArmedHitThenDisarms) {
  ASSERT_TRUE(util::CrashPoint::Register("test.site"));
  util::CrashPoint::Arm("test.site", /*fire_on_hit=*/3);
  EXPECT_FALSE(util::CrashPoint::Fires("test.site"));
  EXPECT_FALSE(util::CrashPoint::Fires("other.site"));
  EXPECT_FALSE(util::CrashPoint::Fires("test.site"));
  EXPECT_TRUE(util::CrashPoint::Fires("test.site"));
  EXPECT_TRUE(util::CrashPoint::crash_in_progress());
  // Self-disarmed: the unwound/reopened process runs crash-free.
  EXPECT_FALSE(util::CrashPoint::Fires("test.site"));
  util::CrashPoint::ResetAfterCrash();
  EXPECT_FALSE(util::CrashPoint::crash_in_progress());

  const std::vector<std::string> sites = util::CrashPoint::RegisteredSites();
  EXPECT_NE(std::find(sites.begin(), sites.end(), "test.site"), sites.end());
}

TEST(CrashPointTest, MacroThrowsAndCarriesTheSiteName) {
  util::CrashPoint::Arm("test.macro");
  bool crashed = false;
  try {
    MMLIB_CRASH_POINT("test.macro");
  } catch (const util::CrashException& e) {
    crashed = true;
    EXPECT_EQ(e.site(), "test.macro");
  }
  EXPECT_TRUE(crashed);
  util::CrashPoint::ResetAfterCrash();
}

// ---------------------------------------------------------------------------
// Durability barrier (satellite: SyncDir + no-op switch)
// ---------------------------------------------------------------------------

TEST(SyncDirTest, BarrierWorksAndCanBeDisabled) {
  const std::string root = FreshRoot("syncdir");
  std::filesystem::create_directories(root);
  EXPECT_TRUE(util::SyncDir(root).ok());
  EXPECT_EQ(util::SyncDir(root + "/missing").code(), StatusCode::kIoError);

  ASSERT_TRUE(util::sync_durability_enabled());
  util::set_sync_durability_enabled(false);
  EXPECT_TRUE(util::SyncDir(root + "/missing").ok());  // no-op mode
  const std::string path = root + "/file.bin";
  const Bytes payload(32, 9);
  EXPECT_TRUE(util::AtomicWriteFile(path, payload.data(), payload.size()).ok());
  util::set_sync_durability_enabled(true);
  EXPECT_TRUE(std::filesystem::exists(path));
}

// ---------------------------------------------------------------------------
// Save journal
// ---------------------------------------------------------------------------

TEST(SaveJournalTest, UncommittedRecordSurvivesReopenAndReplaysUndo) {
  const std::string root = FreshRoot("journal-replay");
  std::string txn_id;
  {
    auto journal = persist::SaveJournal::Open(root).value();
    txn_id = journal->Begin().value();
    ASSERT_TRUE(journal
                    ->AppendOp(txn_id, {persist::kJournalFileStore, "", "f-1"})
                    .ok());
    ASSERT_TRUE(journal
                    ->AppendOp(txn_id,
                               {persist::kJournalDocStore, "models", "d-1"})
                    .ok());
    // No Close: the process "dies" with the transaction open.
  }
  auto journal = persist::SaveJournal::Open(root).value();
  EXPECT_EQ(journal->PendingRecordCount(), 1u);

  std::vector<std::string> undone;
  ASSERT_TRUE(journal
                  ->Replay(persist::kJournalFileStore,
                           [&](const persist::JournalOp& op) {
                             undone.push_back(op.id);
                             return Status::OK();
                           })
                  .ok());
  EXPECT_EQ(undone, std::vector<std::string>{"f-1"});
  EXPECT_EQ(journal->PendingRecordCount(), 1u);  // doc op still unresolved
  ASSERT_TRUE(journal
                  ->Replay(persist::kJournalDocStore,
                           [&](const persist::JournalOp& op) {
                             EXPECT_EQ(op.collection, "models");
                             undone.push_back(op.id);
                             return Status::NotFound("already gone");
                           })
                  .ok());
  EXPECT_EQ(journal->PendingRecordCount(), 0u);
  EXPECT_EQ(undone.size(), 2u);

  // Idempotent: a second replay finds nothing to do.
  ASSERT_TRUE(journal
                  ->Replay(persist::kJournalFileStore,
                           [&](const persist::JournalOp&) {
                             ADD_FAILURE() << "unexpected undo";
                             return Status::OK();
                           })
                  .ok());
}

TEST(SaveJournalTest, CommittedRecordKeepsWritesOnReplay) {
  const std::string root = FreshRoot("journal-commit");
  {
    auto journal = persist::SaveJournal::Open(root).value();
    const std::string txn_id = journal->Begin().value();
    ASSERT_TRUE(journal
                    ->AppendOp(txn_id, {persist::kJournalFileStore, "", "f-1"})
                    .ok());
    ASSERT_TRUE(journal->MarkCommitted(txn_id).ok());
  }
  auto journal = persist::SaveJournal::Open(root).value();
  EXPECT_EQ(journal->PendingRecordCount(), 1u);
  ASSERT_TRUE(journal
                  ->Replay(persist::kJournalFileStore,
                           [&](const persist::JournalOp&) {
                             ADD_FAILURE() << "committed op undone";
                             return Status::OK();
                           })
                  .ok());
  EXPECT_EQ(journal->PendingRecordCount(), 0u);
}

// ---------------------------------------------------------------------------
// Crash matrix: every registered crash site x every save service
// ---------------------------------------------------------------------------

/// Journal + persistent stores opened from one root, replaying on open.
struct PersistentBacking {
  std::unique_ptr<persist::SaveJournal> journal;
  std::unique_ptr<filestore::LocalDirFileStore> files;
  std::unique_ptr<docstore::PersistentDocumentStore> docs;
  core::StorageBackends backends;

  void Reset() {
    docs.reset();
    files.reset();
    journal.reset();
  }
};

void OpenBacking(const std::string& root, PersistentBacking* out) {
  auto journal = persist::SaveJournal::Open(root + "/journal");
  ASSERT_TRUE(journal.ok()) << journal.status();
  out->journal = std::move(journal).value();
  auto files =
      filestore::LocalDirFileStore::Open(root + "/files", out->journal.get());
  ASSERT_TRUE(files.ok()) << files.status();
  out->files = std::move(files).value();
  auto docs = docstore::PersistentDocumentStore::Open(root + "/docs",
                                                      out->journal.get());
  ASSERT_TRUE(docs.ok()) << docs.status();
  out->docs = std::move(docs).value();
  out->backends = core::StorageBackends{out->docs.get(), out->files.get(),
                                        nullptr, nullptr, out->journal.get()};
}

std::unique_ptr<core::SaveService> MakeSaveService(
    dist::ApproachKind kind, const core::StorageBackends& backends) {
  switch (kind) {
    case dist::ApproachKind::kBaseline:
      return std::make_unique<core::BaselineSaveService>(backends);
    case dist::ApproachKind::kParamUpdate:
      return std::make_unique<core::ParamUpdateSaveService>(backends);
    case dist::ApproachKind::kProvenance:
      return std::make_unique<core::ProvenanceSaveService>(
          backends, core::ProvenanceOptions{});
    case dist::ApproachKind::kAdaptive:
      return std::make_unique<core::AdaptiveSaveService>(
          backends, core::AdaptiveOptions{});
  }
  return nullptr;
}

/// Shared fixtures of one matrix run: the initial model, the derived model
/// (deterministically trained from it), and the save requests' static parts.
struct MatrixScenario {
  models::ModelConfig model_config = TinyConfig();
  core::TrainConfig train_config = TinyTrainConfig();
  std::unique_ptr<data::SyntheticImageDataset> dataset;
  env::EnvironmentInfo environment;
  json::Value code;

  MatrixScenario() {
    dataset = std::make_unique<data::SyntheticImageDataset>(
        data::PaperDatasetId::kCocoOutdoor512, 4096);
    environment = env::CollectEnvironment();
    code = core::CodeDescriptorFor(model_config);
  }
};

/// Saves model A, trains model B from it, saves B (base = A, with
/// provenance). Returns B's save status; fills the ids/hashes produced up to
/// the point of failure. Crash exceptions propagate to the caller.
struct TwoSaveOutcome {
  std::string id_a;
  Digest hash_a;
  Digest hash_b;
  Status save_b_status = Status::Internal("not attempted");
};

void SaveModelA(const MatrixScenario& scenario, core::SaveService* service,
                TwoSaveOutcome* out) {
  nn::Model model_a = models::BuildModel(scenario.model_config).value();
  core::SaveRequest request;
  request.model = &model_a;
  request.code = scenario.code;
  request.environment = &scenario.environment;
  auto save = service->SaveModel(request);
  ASSERT_TRUE(save.ok()) << save.status();
  out->id_a = save->model_id;
  out->hash_a = model_a.ParamsHash();
}

/// Derives B and attempts its save with the currently armed crash plan.
void SaveModelB(const MatrixScenario& scenario, core::SaveService* service,
                TwoSaveOutcome* out) {
  nn::Model model_a = models::BuildModel(scenario.model_config).value();
  nn::Model model_b = models::BuildModel(scenario.model_config).value();
  ASSERT_TRUE(model_b.LoadParams(model_a.SerializeParams()).ok());
  core::ImageTrainService trainer(scenario.dataset.get(),
                                  scenario.train_config);
  auto provenance = trainer.CaptureProvenance();
  ASSERT_TRUE(provenance.ok()) << provenance.status();
  ASSERT_TRUE(trainer.Train(&model_b, /*deterministic=*/true, 0).ok());
  out->hash_b = model_b.ParamsHash();

  core::SaveRequest request;
  request.model = &model_b;
  request.code = scenario.code;
  request.environment = &scenario.environment;
  request.base_model_id = out->id_a;
  request.provenance = &provenance.value();
  out->save_b_status = service->SaveModel(request).status();
}

void RunCrashMatrix(dist::ApproachKind kind) {
  const std::string tag(ApproachName(kind));
  MatrixScenario scenario;

  // Discovery pass: a clean two-save run registers every crash site on the
  // save path and records the consistent one-model and two-model store
  // shapes every post-crash state must match.
  size_t one_files = 0, one_docs = 0, two_files = 0, two_docs = 0;
  {
    const std::string root = FreshRoot(tag + "-discover");
    PersistentBacking backing;
    OpenBacking(root, &backing);
    auto service = MakeSaveService(kind, backing.backends);
    TwoSaveOutcome outcome;
    SaveModelA(scenario, service.get(), &outcome);
    one_files = backing.files->FileCount();
    one_docs = backing.docs->DocumentCount();
    SaveModelB(scenario, service.get(), &outcome);
    ASSERT_TRUE(outcome.save_b_status.ok()) << outcome.save_b_status;
    two_files = backing.files->FileCount();
    two_docs = backing.docs->DocumentCount();
    ASSERT_GT(two_files, one_files);
    ASSERT_EQ(backing.journal->PendingRecordCount(), 0u);
  }

  const std::vector<std::string> sites = util::CrashPoint::RegisteredSites();
  ASSERT_GE(sites.size(), 10u) << "crash sites missing from the registry";
  int fired = 0;
  for (const std::string& site : sites) {
    SCOPED_TRACE("service=" + tag + " site=" + site);
    const std::string root = FreshRoot(tag + "-" + site);
    PersistentBacking backing;
    OpenBacking(root, &backing);
    auto service = MakeSaveService(kind, backing.backends);
    TwoSaveOutcome outcome;
    SaveModelA(scenario, service.get(), &outcome);
    ASSERT_EQ(backing.files->FileCount(), one_files);
    ASSERT_EQ(backing.docs->DocumentCount(), one_docs);

    util::CrashPoint::Arm(site);
    bool crashed = false;
    try {
      SaveModelB(scenario, service.get(), &outcome);
    } catch (const util::CrashException& e) {
      crashed = true;
      EXPECT_EQ(e.site(), site);
    }
    if (!crashed) {
      // Sites registered by other code paths (training, replay) never fire
      // during a save; the save must then have completed normally.
      util::CrashPoint::Disarm();
      ASSERT_TRUE(outcome.save_b_status.ok()) << outcome.save_b_status;
      EXPECT_EQ(backing.files->FileCount(), two_files);
      EXPECT_EQ(backing.docs->DocumentCount(), two_docs);
      continue;
    }
    ++fired;
    util::CrashPoint::ResetAfterCrash();

    // Kill the "process": every in-memory handle is gone; reopen cold.
    service.reset();
    backing.Reset();
    PersistentBacking reopened;
    OpenBacking(root, &reopened);

    // Recovery resolved every journal record and left no half-written
    // temporaries anywhere under the root.
    EXPECT_EQ(reopened.journal->PendingRecordCount(), 0u);
    EXPECT_EQ(util::CountFilesWithSuffix(root, ".tmp", /*recursive=*/true),
              0u);

    // Atomicity: the store holds exactly one model (save B never happened)
    // or exactly two (the crash hit after B's durable commit) — never a
    // partial save.
    const size_t files_now = reopened.files->FileCount();
    const size_t docs_now = reopened.docs->DocumentCount();
    const bool rolled_back = files_now == one_files && docs_now == one_docs;
    const bool completed = files_now == two_files && docs_now == two_docs;
    EXPECT_TRUE(rolled_back || completed)
        << "inconsistent store: " << files_now << " files (clean: "
        << one_files << " or " << two_files << "), " << docs_now
        << " docs (clean: " << one_docs << " or " << two_docs << ")";

    // Model A stays loadable and bit-identical in every outcome.
    core::ModelRecoverer recoverer(reopened.backends);
    auto recovered_a = recoverer.Recover(outcome.id_a, core::RecoverOptions{});
    ASSERT_TRUE(recovered_a.ok()) << recovered_a.status();
    EXPECT_EQ(recovered_a->model.ParamsHash(), outcome.hash_a);

    if (completed) {
      // The commit was durable, so B must be fully recoverable too.
      auto ids = reopened.docs->ListIds(core::kModelsCollection);
      ASSERT_TRUE(ids.ok()) << ids.status();
      std::string id_b;
      for (const std::string& id : ids.value()) {
        if (id != outcome.id_a) {
          id_b = id;
        }
      }
      ASSERT_FALSE(id_b.empty());
      auto recovered_b = recoverer.Recover(id_b, core::RecoverOptions{});
      ASSERT_TRUE(recovered_b.ok()) << recovered_b.status();
      EXPECT_EQ(recovered_b->model.ParamsHash(), outcome.hash_b);
    }
  }
  EXPECT_GE(fired, 8) << "the matrix exercised too few crash sites";
}

class CrashMatrixTest : public ::testing::TestWithParam<dist::ApproachKind> {};

TEST_P(CrashMatrixTest, KillAtEveryRegisteredSiteLeavesStoreConsistent) {
  RunCrashMatrix(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllSaveServices, CrashMatrixTest,
    ::testing::Values(dist::ApproachKind::kBaseline,
                      dist::ApproachKind::kParamUpdate,
                      dist::ApproachKind::kProvenance,
                      dist::ApproachKind::kAdaptive),
    [](const ::testing::TestParamInfo<dist::ApproachKind>& info) {
      return std::string(ApproachName(info.param));
    });

// ---------------------------------------------------------------------------
// Crash during recovery itself
// ---------------------------------------------------------------------------

TEST(ReplayCrashTest, CrashDuringReplayIsRecoveredByTheNextReplay) {
  MatrixScenario scenario;
  const std::string root = FreshRoot("replay-crash");
  TwoSaveOutcome outcome;
  size_t one_files = 0;
  {
    PersistentBacking backing;
    OpenBacking(root, &backing);
    auto service =
        MakeSaveService(dist::ApproachKind::kBaseline, backing.backends);
    SaveModelA(scenario, service.get(), &outcome);
    one_files = backing.files->FileCount();

    // First crash: mid-save, after at least one journaled file write.
    util::CrashPoint::Arm("savetxn.file.written");
    bool crashed = false;
    try {
      SaveModelB(scenario, service.get(), &outcome);
    } catch (const util::CrashException&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed);
    util::CrashPoint::ResetAfterCrash();
    service.reset();
    backing.Reset();
  }

  // Second crash: the restarted process dies *inside* replay.
  {
    auto journal = persist::SaveJournal::Open(root + "/journal").value();
    ASSERT_EQ(journal->PendingRecordCount(), 1u);
    util::CrashPoint::Arm("journal.replay.op");
    bool crashed = false;
    try {
      auto files = filestore::LocalDirFileStore::Open(root + "/files",
                                                      journal.get());
      (void)files;
    } catch (const util::CrashException&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed) << "replay had no pending op to crash in";
    util::CrashPoint::ResetAfterCrash();
  }

  // Third start: recovery is idempotent, the store converges anyway.
  PersistentBacking reopened;
  OpenBacking(root, &reopened);
  EXPECT_EQ(reopened.journal->PendingRecordCount(), 0u);
  EXPECT_EQ(util::CountFilesWithSuffix(root, ".tmp", /*recursive=*/true), 0u);
  EXPECT_EQ(reopened.files->FileCount(), one_files);
  core::ModelRecoverer recoverer(reopened.backends);
  auto recovered = recoverer.Recover(outcome.id_a, core::RecoverOptions{});
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->model.ParamsHash(), outcome.hash_a);
}

// ---------------------------------------------------------------------------
// Training checkpoints: interrupted + resumed == uninterrupted, bitwise
// ---------------------------------------------------------------------------

class TrainCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = TinyTrainConfig();
    config_.epochs = 2;
    config_.max_batches_per_epoch = 2;  // 4 optimizer steps total
    config_.sgd.momentum = 0.9f;        // momentum state must round-trip
    config_.lr_decay_gamma = 0.5;       // schedule must survive resume
    dataset_ = std::make_unique<data::SyntheticImageDataset>(
        data::PaperDatasetId::kCocoOutdoor512, 4096);
  }

  nn::Model FreshModel() {
    models::ModelConfig config = TinyConfig();
    config.init_seed = 1;
    return models::BuildModel(config).value();
  }

  /// In-memory checkpoint store for one training run.
  struct CheckpointBacking {
    docstore::InMemoryDocumentStore docs;
    filestore::InMemoryFileStore files;
    core::StorageBackends backends{&docs, &files, nullptr, nullptr};
    core::CheckpointManager manager;
    explicit CheckpointBacking(int64_t every_steps, bool async_write = false)
        : manager(backends,
                  core::CheckpointOptions{every_steps, true, async_write}) {}
  };

  /// Uninterrupted reference run; returns the final model.
  nn::Model RunReference(CheckpointBacking* backing,
                         util::ThreadPool* pool = nullptr) {
    nn::Model model = FreshModel();
    reference_service_ =
        std::make_unique<core::ImageTrainService>(dataset_.get(), config_);
    reference_service_->set_checkpoints(&backing->manager, "run");
    if (pool != nullptr) {
      reference_service_->set_thread_pool(pool);
    }
    EXPECT_TRUE(reference_service_->Train(&model, true, 0).ok());
    return model;
  }

  /// Kills training at optimizer step `at_step`, restarts cold, resumes.
  nn::Model RunCrashAndResume(CheckpointBacking* backing, uint64_t at_step,
                              util::ThreadPool* pool = nullptr) {
    nn::Model model = FreshModel();
    {
      core::ImageTrainService service(dataset_.get(), config_);
      service.set_checkpoints(&backing->manager, "run");
      if (pool != nullptr) {
        service.set_thread_pool(pool);
      }
      util::CrashPoint::Arm("train.step", at_step);
      bool crashed = false;
      try {
        EXPECT_TRUE(service.Train(&model, true, 0).ok());
      } catch (const util::CrashException&) {
        crashed = true;
      }
      EXPECT_TRUE(crashed) << "training finished before step " << at_step;
      util::CrashPoint::ResetAfterCrash();
    }
    // Cold restart: fresh service, fresh model object — everything the
    // crashed process held in memory is gone.
    nn::Model restarted = FreshModel();
    resumed_service_ =
        std::make_unique<core::ImageTrainService>(dataset_.get(), config_);
    resumed_service_->set_checkpoints(&backing->manager, "run");
    if (pool != nullptr) {
      resumed_service_->set_thread_pool(pool);
    }
    EXPECT_TRUE(resumed_service_->Resume(&restarted).ok());
    return restarted;
  }

  core::TrainConfig config_;
  std::unique_ptr<data::SyntheticImageDataset> dataset_;
  std::unique_ptr<core::ImageTrainService> reference_service_;
  std::unique_ptr<core::ImageTrainService> resumed_service_;
};

TEST_F(TrainCheckpointTest, ResumeIsBitIdenticalToUninterruptedRun) {
  CheckpointBacking reference_backing(/*every_steps=*/2);
  CheckpointBacking crash_backing(/*every_steps=*/2);
  nn::Model reference = RunReference(&reference_backing);
  // Kill at step 3: steps 1-2 completed, checkpoint at step 2 is the latest.
  nn::Model resumed = RunCrashAndResume(&crash_backing, /*at_step=*/3);

  EXPECT_EQ(resumed_service_->resumed_from_step(), 2);
  EXPECT_EQ(reference.SerializeParams(), resumed.SerializeParams());
  EXPECT_EQ(reference_service_->SerializedOptimizerState(),
            resumed_service_->SerializedOptimizerState());
  EXPECT_EQ(reference_service_->last_loss(), resumed_service_->last_loss());
  // Checkpoint-count invariance: crash + resume writes exactly the
  // checkpoints the uninterrupted run writes (step 0, 2, 4).
  EXPECT_EQ(reference_backing.manager.checkpoints_written(), 3u);
  EXPECT_EQ(crash_backing.manager.checkpoints_written(), 3u);

  // The resumed model's forward/backward trace replays the reference
  // bit for bit (per-layer digests, DeterminismAuditor).
  audit::DeterminismAuditor auditor;
  Rng rng(11);
  const Tensor input = Tensor::Uniform(
      Shape{2, 3, config_.loader.image_size, config_.loader.image_size},
      -1.0f, 1.0f, &rng);
  for (nn::Model* model : {&reference, &resumed}) {
    nn::ExecutionContext ctx = nn::ExecutionContext::Deterministic(5);
    ctx.set_training(true);
    model->ZeroGrad();
    model->set_observer(&auditor);
    auditor.BeginRun();
    auto logits = model->Forward(input, &ctx);
    ASSERT_TRUE(logits.ok()) << logits.status();
    ASSERT_TRUE(
        model->Backward(Tensor::Full(logits->shape(), 1.0f), &ctx).ok());
    model->set_observer(nullptr);
    ASSERT_TRUE(auditor.EndRun().ok()) << "trace diverged";
  }
  EXPECT_EQ(auditor.completed_runs(), 2u);
  EXPECT_FALSE(auditor.first_divergence().has_value());
}

TEST_F(TrainCheckpointTest, ResumeIsBitIdenticalAcrossPoolSizes) {
  // Uninterrupted at pool size 1 vs crash+resume at pool size 8: the
  // deterministic-chunking contract extends through checkpoint recovery.
  util::ThreadPool pool1(1);
  util::ThreadPool pool8(8);
  CheckpointBacking reference_backing(/*every_steps=*/1);
  CheckpointBacking crash_backing(/*every_steps=*/1);
  nn::Model reference = RunReference(&reference_backing, &pool1);
  nn::Model resumed = RunCrashAndResume(&crash_backing, /*at_step=*/2, &pool8);

  EXPECT_EQ(resumed_service_->resumed_from_step(), 1);
  EXPECT_EQ(reference.SerializeParams(), resumed.SerializeParams());
  EXPECT_EQ(reference_service_->SerializedOptimizerState(),
            resumed_service_->SerializedOptimizerState());
}

TEST_F(TrainCheckpointTest, CrashBeforeFirstPeriodicCheckpointLosesNothing) {
  CheckpointBacking reference_backing(/*every_steps=*/4);
  CheckpointBacking crash_backing(/*every_steps=*/4);
  nn::Model reference = RunReference(&reference_backing);
  // Kill at the very first step: only the step-0 checkpoint exists.
  nn::Model resumed = RunCrashAndResume(&crash_backing, /*at_step=*/1);

  EXPECT_EQ(resumed_service_->resumed_from_step(), 0);
  EXPECT_EQ(reference.SerializeParams(), resumed.SerializeParams());
}

TEST_F(TrainCheckpointTest, CheckpointWriteCrashRollsBackThenResumes) {
  // Checkpoints themselves go through the journaled transaction: a kill
  // mid-checkpoint rolls back on reopen and resume continues from the
  // previous checkpoint.
  const std::string root = FreshRoot("ckpt-journal");
  CheckpointBacking reference_backing(/*every_steps=*/2);
  nn::Model reference = RunReference(&reference_backing);

  nn::Model model = FreshModel();
  {
    PersistentBacking backing;
    OpenBacking(root, &backing);
    core::CheckpointManager manager(backing.backends,
                                    core::CheckpointOptions{2, true});
    core::ImageTrainService service(dataset_.get(), config_);
    service.set_checkpoints(&manager, "run");
    // Hit 1 is the step-0 checkpoint; crash inside the second write.
    util::CrashPoint::Arm("savetxn.file.journaled", /*fire_on_hit=*/3);
    bool crashed = false;
    try {
      EXPECT_TRUE(service.Train(&model, true, 0).ok());
    } catch (const util::CrashException&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed);
    util::CrashPoint::ResetAfterCrash();
    backing.Reset();
  }

  PersistentBacking reopened;
  OpenBacking(root, &reopened);
  EXPECT_EQ(reopened.journal->PendingRecordCount(), 0u);
  core::CheckpointManager manager(reopened.backends,
                                  core::CheckpointOptions{2, true});
  nn::Model restarted = FreshModel();
  core::ImageTrainService service(dataset_.get(), config_);
  service.set_checkpoints(&manager, "run");
  ASSERT_TRUE(service.Resume(&restarted).ok());
  EXPECT_EQ(service.resumed_from_step(), 0);  // half-written ckpt rolled back
  EXPECT_EQ(reference.SerializeParams(), restarted.SerializeParams());
}

// ---------------------------------------------------------------------------
// Non-blocking (async) checkpoint writes
// ---------------------------------------------------------------------------

/// MMLIB_ASYNC_CHECKPOINTS overrides CheckpointOptions::async_write at
/// manager construction; tests that *require* the async path skip when the
/// environment forces synchronous mode.
bool AsyncForcedOff() {
  const char* env = std::getenv("MMLIB_ASYNC_CHECKPOINTS");
  return env != nullptr && *env == '0';
}

TEST_F(TrainCheckpointTest, AsyncWriteMatchesSyncRunBitwise) {
  CheckpointBacking sync_backing(/*every_steps=*/2, /*async_write=*/false);
  CheckpointBacking async_backing(/*every_steps=*/2, /*async_write=*/true);
  nn::Model sync_model = RunReference(&sync_backing);
  const Bytes sync_state = reference_service_->SerializedOptimizerState();
  nn::Model async_model = RunReference(&async_backing);

  EXPECT_EQ(sync_model.SerializeParams(), async_model.SerializeParams());
  EXPECT_EQ(sync_state, reference_service_->SerializedOptimizerState());
  EXPECT_EQ(sync_backing.manager.checkpoints_written(),
            async_backing.manager.checkpoints_written());
  // Identical store contents: the background worker replays exactly the
  // synchronous operation sequence.
  EXPECT_EQ(sync_backing.files.FileCount(), async_backing.files.FileCount());
  EXPECT_EQ(sync_backing.docs.DocumentCount(),
            async_backing.docs.DocumentCount());
  EXPECT_EQ(sync_backing.files.TotalStoredBytes(),
            async_backing.files.TotalStoredBytes());
}

TEST_F(TrainCheckpointTest, AsyncCrashMidSaveResumesBitIdentically) {
  if (AsyncForcedOff()) {
    GTEST_SKIP() << "MMLIB_ASYNC_CHECKPOINTS=0 disables the async path";
  }
  CheckpointBacking reference_backing(/*every_steps=*/2);
  nn::Model reference = RunReference(&reference_backing);

  // Kill inside the background save of the step-2 checkpoint (hit 1 is the
  // step-0 save). The worker catches the kill; it surfaces on the training
  // thread at the next Write, modeling training dying while its checkpoint
  // is still in flight.
  CheckpointBacking crash_backing(/*every_steps=*/2, /*async_write=*/true);
  nn::Model model = FreshModel();
  {
    core::ImageTrainService service(dataset_.get(), config_);
    service.set_checkpoints(&crash_backing.manager, "run");
    util::CrashPoint::Arm("checkpoint.write", /*fire_on_hit=*/2);
    bool crashed = false;
    try {
      EXPECT_TRUE(service.Train(&model, true, 0).ok());
    } catch (const util::CrashException& e) {
      crashed = true;
      EXPECT_EQ(e.site(), "checkpoint.write");
    }
    ASSERT_TRUE(crashed);
    util::CrashPoint::ResetAfterCrash();
  }
  // The interrupted save never committed: only step 0 is durable.
  EXPECT_EQ(crash_backing.manager.checkpoints_written(), 1u);

  nn::Model restarted = FreshModel();
  resumed_service_ =
      std::make_unique<core::ImageTrainService>(dataset_.get(), config_);
  resumed_service_->set_checkpoints(&crash_backing.manager, "run");
  ASSERT_TRUE(resumed_service_->Resume(&restarted).ok());
  EXPECT_EQ(resumed_service_->resumed_from_step(), 0);
  EXPECT_EQ(reference.SerializeParams(), restarted.SerializeParams());
  EXPECT_EQ(reference_service_->SerializedOptimizerState(),
            resumed_service_->SerializedOptimizerState());
  // Crash + resume converges on the reference checkpoint count (0, 2, 4).
  EXPECT_EQ(crash_backing.manager.checkpoints_written(), 3u);
}

TEST_F(TrainCheckpointTest, AsyncCrashBeforeHandoffResumesBitIdentically) {
  if (AsyncForcedOff()) {
    GTEST_SKIP() << "MMLIB_ASYNC_CHECKPOINTS=0 disables the async path";
  }
  CheckpointBacking reference_backing(/*every_steps=*/2);
  nn::Model reference = RunReference(&reference_backing);

  // Kill on the training thread at the step-2 Write, before the snapshot
  // reaches the worker: the checkpoint is lost entirely.
  CheckpointBacking crash_backing(/*every_steps=*/2, /*async_write=*/true);
  nn::Model model = FreshModel();
  {
    core::ImageTrainService service(dataset_.get(), config_);
    service.set_checkpoints(&crash_backing.manager, "run");
    util::CrashPoint::Arm("checkpoint.enqueue", /*fire_on_hit=*/2);
    bool crashed = false;
    try {
      EXPECT_TRUE(service.Train(&model, true, 0).ok());
    } catch (const util::CrashException& e) {
      crashed = true;
      EXPECT_EQ(e.site(), "checkpoint.enqueue");
    }
    ASSERT_TRUE(crashed);
    util::CrashPoint::ResetAfterCrash();
  }

  nn::Model restarted = FreshModel();
  resumed_service_ =
      std::make_unique<core::ImageTrainService>(dataset_.get(), config_);
  resumed_service_->set_checkpoints(&crash_backing.manager, "run");
  ASSERT_TRUE(resumed_service_->Resume(&restarted).ok());
  EXPECT_EQ(resumed_service_->resumed_from_step(), 0);
  EXPECT_EQ(reference.SerializeParams(), restarted.SerializeParams());
}

TEST_F(TrainCheckpointTest, AsyncResumeIsBitIdenticalAcrossPoolSizes) {
  if (AsyncForcedOff()) {
    GTEST_SKIP() << "MMLIB_ASYNC_CHECKPOINTS=0 disables the async path";
  }
  // Synchronous single-threaded reference vs async crash+resume at pool
  // sizes 2 and 8: the bit-identity contract holds across both the
  // checkpoint-write mode and the compute pool size.
  util::ThreadPool pool1(1);
  CheckpointBacking reference_backing(/*every_steps=*/2,
                                      /*async_write=*/false);
  nn::Model reference = RunReference(&reference_backing, &pool1);
  for (int threads : {2, 8}) {
    SCOPED_TRACE("pool=" + std::to_string(threads));
    util::ThreadPool pool(threads);
    CheckpointBacking crash_backing(/*every_steps=*/2, /*async_write=*/true);
    nn::Model resumed =
        RunCrashAndResume(&crash_backing, /*at_step=*/3, &pool);
    EXPECT_EQ(resumed_service_->resumed_from_step(), 2);
    EXPECT_EQ(reference.SerializeParams(), resumed.SerializeParams());
    EXPECT_EQ(reference_service_->SerializedOptimizerState(),
              resumed_service_->SerializedOptimizerState());
  }
}

TEST(CheckpointManagerTest, LoadLatestRestoresHighestCommittedStep) {
  docstore::InMemoryDocumentStore docs;
  filestore::InMemoryFileStore files;
  core::StorageBackends backends{&docs, &files, nullptr, nullptr};
  // Pruning off, so all three checkpoints stay visible to LoadLatest.
  core::CheckpointManager manager(
      backends, core::CheckpointOptions{1, /*prune_previous=*/false});

  auto make = [](int64_t step) {
    core::TrainCheckpoint checkpoint;
    checkpoint.run_id = "run";
    checkpoint.step = step;
    checkpoint.epoch = step / 2;
    checkpoint.model_params = Bytes(16, static_cast<uint8_t>(step));
    checkpoint.optimizer_state = Bytes(8, static_cast<uint8_t>(step + 1));
    return checkpoint;
  };
  // Committed out of order: the latest *step* must win, not the latest
  // insert.
  for (int64_t step : {0, 4, 2}) {
    ASSERT_TRUE(manager.Write(make(step)).ok());
  }

  core::TrainCheckpoint loaded;
  auto found = manager.LoadLatest("run", &loaded);
  ASSERT_TRUE(found.ok()) << found.status();
  ASSERT_TRUE(found.value());
  EXPECT_EQ(loaded.step, 4);
  EXPECT_EQ(loaded.model_params, make(4).model_params);
  EXPECT_EQ(loaded.optimizer_state, make(4).optimizer_state);

  core::TrainCheckpoint missing;
  auto none = manager.LoadLatest("other-run", &missing);
  ASSERT_TRUE(none.ok()) << none.status();
  EXPECT_FALSE(none.value());
}

TEST(CheckpointOverlapTest, AsyncSavesAbsorbComputeIntoSaveWindows) {
  if (std::getenv("MMLIB_ASYNC_CHECKPOINTS") != nullptr) {
    GTEST_SKIP() << "env override forces both managers into one mode";
  }
  // Identical Write/ChargeCompute sequences against a simulated storage
  // link: the sync manager pays save + compute, the async manager pays
  // max(save, compute) per window, and the difference is exactly what it
  // reports as overlapped.
  auto run = [](bool async_write, double* clock_out) -> double {
    docstore::InMemoryDocumentStore docs_raw;
    filestore::InMemoryFileStore files_raw;
    simnet::Network network{simnet::Link{300e6, 0.2e-3}};
    docstore::RemoteDocumentStore docs{&docs_raw, &network};
    filestore::RemoteFileStore files{&files_raw, &network};
    core::StorageBackends backends{&docs, &files, &network};
    core::CheckpointManager manager(
        backends, core::CheckpointOptions{1, true, async_write});
    core::TrainCheckpoint checkpoint;
    checkpoint.run_id = "run";
    checkpoint.model_params = Bytes(3 << 20, 7);  // ~10 ms on the link
    for (int64_t step = 0; step < 4; ++step) {
      checkpoint.step = step;
      EXPECT_TRUE(manager.Write(checkpoint).ok());
      manager.ChargeCompute(0.005);  // less than one save: fully absorbed
    }
    EXPECT_TRUE(manager.Drain().ok());
    *clock_out = network.TotalTransferSeconds();
    return manager.overlapped_seconds();
  };

  double sync_clock = 0.0, async_clock = 0.0;
  const double sync_overlap = run(false, &sync_clock);
  const double async_overlap = run(true, &async_clock);
  EXPECT_EQ(sync_overlap, 0.0);
  EXPECT_GT(async_overlap, 0.0);
  EXPECT_LT(async_clock, sync_clock);
  EXPECT_NEAR(sync_clock - async_clock, async_overlap, 1e-9);
}

// ---------------------------------------------------------------------------
// Node crash/restart in the evaluation flow
// ---------------------------------------------------------------------------

TEST(FlowCrashTest, CrashScheduleLandsBitIdenticalWithCountedRecovery) {
  dist::FlowConfig config;
  config.approach = dist::ApproachKind::kBaseline;
  config.model = TinyConfig();
  config.num_nodes = 2;
  config.u3_iterations = 2;
  config.dataset_divisor = 4096;
  config.training_mode = dist::TrainingMode::kReal;
  config.recover_models = false;
  config.train = TinyTrainConfig();
  config.train.epochs = 1;
  config.train.max_batches_per_epoch = 3;  // 3 optimizer steps per update
  config.train.sgd.momentum = 0.9f;
  // The flow chains ~5 momentum-SGD updates through the same model, so it
  // tolerates far less learning rate than the single-update matrix before
  // some content seeds in the CI sweep blow up to NaN.
  config.train.sgd.learning_rate = 2e-4f;
  config.checkpoint_every_steps = 2;

  auto run = [&](bool with_crash, docstore::InMemoryDocumentStore* docs,
                 filestore::InMemoryFileStore* files,
                 simnet::Network* network) -> dist::FlowResult {
    dist::FlowConfig run_config = config;
    if (with_crash) {
      // Kill node 0 in phase 2, iteration 1, at step 2: one step done,
      // resume from the step-0 checkpoint, one step retrained.
      run_config.crash_schedule.push_back(
          dist::NodeCrashEvent{/*phase=*/2, /*iteration=*/1, /*node=*/0,
                               /*at_step=*/2});
    }
    core::StorageBackends backends{docs, files, network, nullptr};
    dist::EvaluationFlow flow(run_config, backends);
    auto result = flow.Run();
    EXPECT_TRUE(result.ok()) << result.status();
    return std::move(result).value();
  };

  docstore::InMemoryDocumentStore clean_docs, crash_docs;
  filestore::InMemoryFileStore clean_files, crash_files;
  simnet::Network crash_network;
  const dist::FlowResult clean =
      run(false, &clean_docs, &clean_files, nullptr);
  const dist::FlowResult crashed =
      run(true, &crash_docs, &crash_files, &crash_network);

  // Counters: exactly one crash/restart on node 0, nothing on node 1.
  ASSERT_EQ(crashed.node_counters.size(), 2u);
  EXPECT_EQ(crashed.node_counters[0].crashes, 1u);
  EXPECT_EQ(crashed.node_counters[0].restarts, 1u);
  EXPECT_EQ(crashed.node_counters[0].retrained_steps, 1u);
  EXPECT_EQ(crashed.node_counters[1].crashes, 0u);
  EXPECT_EQ(crashed.TotalCrashes(), 1u);
  EXPECT_EQ(crashed.TotalRestarts(), 1u);
  EXPECT_EQ(crashed.TotalRetrainedSteps(), 1u);
  EXPECT_EQ(clean.TotalCrashes(), 0u);
  // The simulated cluster observed the outage and charged its cost.
  EXPECT_EQ(crash_network.CrashCount(), 1u);
  EXPECT_EQ(crash_network.RestartCount(), 1u);
  EXPECT_TRUE(crash_network.IsNodeUp(0));
  EXPECT_GT(crash_network.TotalTransferSeconds(), 0.0);

  // Crash + resume leaves the stores bit-identical to the crash-free run:
  // same records, same artifact counts, and the same final models.
  ASSERT_EQ(crashed.records.size(), clean.records.size());
  EXPECT_EQ(crash_files.FileCount(), clean_files.FileCount());
  EXPECT_EQ(crash_docs.DocumentCount(), clean_docs.DocumentCount());
  EXPECT_EQ(crash_files.TotalStoredBytes(), clean_files.TotalStoredBytes());
  for (size_t i = 0; i < clean.records.size(); ++i) {
    EXPECT_EQ(crashed.records[i].label, clean.records[i].label);
    EXPECT_EQ(crashed.records[i].storage_bytes,
              clean.records[i].storage_bytes)
        << clean.records[i].label;
  }
  core::StorageBackends clean_backends{&clean_docs, &clean_files, nullptr};
  core::StorageBackends crash_backends{&crash_docs, &crash_files, nullptr};
  core::ModelRecoverer clean_recoverer(clean_backends);
  core::ModelRecoverer crash_recoverer(crash_backends);
  for (size_t i = 0; i < clean.records.size(); ++i) {
    auto a = clean_recoverer.Recover(clean.records[i].model_id,
                                     core::RecoverOptions{});
    auto b = crash_recoverer.Recover(crashed.records[i].model_id,
                                     core::RecoverOptions{});
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_EQ(a->model.ParamsHash(), b->model.ParamsHash())
        << clean.records[i].label;
  }
}

TEST(FlowCrashTest, RetrainedStepsFollowCheckpointInterval) {
  // One node, one 8-step update per phase, killed at the top of step 8 of
  // the first update (7 steps done). The node resumes from the highest
  // checkpoint step <= 7, so the checkpoint interval K pins exactly how
  // much work the crash destroys: 7 - K * floor(7 / K).
  dist::FlowConfig config;
  config.approach = dist::ApproachKind::kBaseline;
  config.model = TinyConfig();
  config.num_nodes = 1;
  config.u3_iterations = 1;
  config.dataset_divisor = 4096;
  config.training_mode = dist::TrainingMode::kReal;
  config.recover_models = false;
  config.train = TinyTrainConfig();
  config.train.epochs = 2;
  config.train.max_batches_per_epoch = 4;  // 8 optimizer steps per update
  config.train.sgd.momentum = 0.9f;
  config.train.sgd.learning_rate = 2e-4f;
  config.async_checkpoints = true;
  config.crash_schedule.push_back(
      dist::NodeCrashEvent{/*phase=*/1, /*iteration=*/1, /*node=*/0,
                           /*at_step=*/8});

  const struct {
    int64_t every_steps;
    uint64_t retrained;
  } expectations[] = {{1, 0}, {2, 1}, {4, 3}, {8, 7}};
  for (const auto& expected : expectations) {
    SCOPED_TRACE("K=" + std::to_string(expected.every_steps));
    dist::FlowConfig run_config = config;
    run_config.checkpoint_every_steps = expected.every_steps;
    docstore::InMemoryDocumentStore docs;
    filestore::InMemoryFileStore files;
    simnet::Network network;
    core::StorageBackends backends{&docs, &files, &network, nullptr};
    dist::EvaluationFlow flow(run_config, backends);
    auto result = flow.Run();
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->TotalCrashes(), 1u);
    EXPECT_EQ(result->TotalRetrainedSteps(), expected.retrained);
  }
}

TEST(FlowCrashTest, CrashScheduleIsValidated) {
  dist::FlowConfig config;
  config.model = TinyConfig();
  config.dataset_divisor = 4096;
  config.crash_schedule.push_back(dist::NodeCrashEvent{});

  docstore::InMemoryDocumentStore docs;
  filestore::InMemoryFileStore files;
  core::StorageBackends backends{&docs, &files, nullptr};

  // Missing checkpoint interval.
  {
    dist::EvaluationFlow flow(config, backends);
    EXPECT_EQ(flow.Run().status().code(), StatusCode::kInvalidArgument);
  }
  // Simulated training has no steps to crash in.
  {
    dist::FlowConfig bad = config;
    bad.checkpoint_every_steps = 1;
    bad.training_mode = dist::TrainingMode::kSimulated;
    bad.recover_models = false;
    dist::EvaluationFlow flow(bad, backends);
    EXPECT_EQ(flow.Run().status().code(), StatusCode::kInvalidArgument);
  }
  // Out-of-range node.
  {
    dist::FlowConfig bad = config;
    bad.checkpoint_every_steps = 1;
    bad.crash_schedule[0].node = 7;
    dist::EvaluationFlow flow(bad, backends);
    EXPECT_EQ(flow.Run().status().code(), StatusCode::kInvalidArgument);
  }
}

/// Shared body for the crash-schedule edge cases: runs the two-node flow
/// once clean and once with `event` scheduled, then requires the crashed
/// run to land bit-identically (same records, same recovered parameter
/// hashes) with exactly one crash/restart and `expected_retrained` steps
/// redone on the crashed node.
void ExpectCrashLandsBitIdentical(const dist::NodeCrashEvent& event,
                                  uint64_t expected_retrained) {
  dist::FlowConfig config;
  config.approach = dist::ApproachKind::kBaseline;
  config.model = TinyConfig();
  config.num_nodes = 2;
  config.u3_iterations = 2;
  config.dataset_divisor = 4096;
  config.training_mode = dist::TrainingMode::kReal;
  config.recover_models = false;
  config.train = TinyTrainConfig();
  config.train.epochs = 1;
  config.train.max_batches_per_epoch = 3;  // 3 optimizer steps per update
  config.train.sgd.momentum = 0.9f;
  config.train.sgd.learning_rate = 2e-4f;
  config.checkpoint_every_steps = 2;

  auto run = [&](bool with_crash, docstore::InMemoryDocumentStore* docs,
                 filestore::InMemoryFileStore* files,
                 simnet::Network* network) -> dist::FlowResult {
    dist::FlowConfig run_config = config;
    if (with_crash) {
      run_config.crash_schedule.push_back(event);
    }
    core::StorageBackends backends{docs, files, network, nullptr};
    dist::EvaluationFlow flow(run_config, backends);
    auto result = flow.Run();
    EXPECT_TRUE(result.ok()) << result.status();
    return std::move(result).value();
  };

  docstore::InMemoryDocumentStore clean_docs, crash_docs;
  filestore::InMemoryFileStore clean_files, crash_files;
  simnet::Network crash_network;
  const dist::FlowResult clean = run(false, &clean_docs, &clean_files, nullptr);
  const dist::FlowResult crashed =
      run(true, &crash_docs, &crash_files, &crash_network);

  ASSERT_EQ(crashed.node_counters.size(), 2u);
  EXPECT_EQ(crashed.TotalCrashes(), 1u);
  EXPECT_EQ(crashed.TotalRestarts(), 1u);
  EXPECT_EQ(crashed.TotalRetrainedSteps(), expected_retrained);
  EXPECT_EQ(clean.TotalCrashes(), 0u);

  ASSERT_EQ(crashed.records.size(), clean.records.size());
  EXPECT_EQ(crash_files.FileCount(), clean_files.FileCount());
  EXPECT_EQ(crash_docs.DocumentCount(), clean_docs.DocumentCount());
  core::StorageBackends clean_backends{&clean_docs, &clean_files, nullptr};
  core::StorageBackends crash_backends{&crash_docs, &crash_files, nullptr};
  core::ModelRecoverer clean_recoverer(clean_backends);
  core::ModelRecoverer crash_recoverer(crash_backends);
  for (size_t i = 0; i < clean.records.size(); ++i) {
    auto a = clean_recoverer.Recover(clean.records[i].model_id,
                                     core::RecoverOptions{});
    auto b = crash_recoverer.Recover(crashed.records[i].model_id,
                                     core::RecoverOptions{});
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_EQ(a->model.ParamsHash(), b->model.ParamsHash())
        << clean.records[i].label;
  }
}

TEST(FlowCrashTest, CrashAtStepOneRedoesTheWholeFirstStep) {
  // at_step = 1: the node dies at the top of the very first optimizer step
  // of the update, with zero steps completed. Recovery resumes from the
  // step-0 checkpoint written at training start, so nothing is retrained —
  // the degenerate "crashed before doing any work" edge must still land
  // bit-identically instead of, say, double-applying the first batch.
  ExpectCrashLandsBitIdentical(
      dist::NodeCrashEvent{/*phase=*/2, /*iteration=*/1, /*node=*/0,
                           /*at_step=*/1},
      /*expected_retrained=*/0);
}

TEST(FlowCrashTest, CrashInFinalIterationStillLandsBitIdentical) {
  // The last U3 iteration of the last phase, at the top of the final
  // optimizer step: the interrupted update is the one whose result the flow
  // is about to archive, so any recovery slip here would corrupt the final
  // saved model rather than an intermediate. 2 steps done, checkpoint
  // interval 2 => resume from step 2, nothing retrained.
  ExpectCrashLandsBitIdentical(
      dist::NodeCrashEvent{/*phase=*/2, /*iteration=*/2, /*node=*/1,
                           /*at_step=*/3},
      /*expected_retrained=*/0);
}

TEST(FlowCrashTest, CrashWhileReplicaPartitionIsActiveLandsBitIdentical) {
  // A node crash while the storage tier is itself degraded: replica 1 of a
  // 3-replica W=R=2 cluster is partitioned away for the whole run, so both
  // the checkpoints the node writes before dying and the recovery reads
  // after its restart go through a 2-of-3 quorum. The surviving majority
  // must carry the crash recovery to the same bits as a fully healthy,
  // crash-free cluster.
  auto run = [](bool with_crash, bool with_partition,
                std::vector<dist::UseCaseRecord>* records,
                std::vector<std::string>* hashes,
                dist::FlowResult* result_out) {
    simnet::Network network{simnet::Link{300e6, 0.2e-3}};
    network.ConfigureReplicas(3);
    std::vector<std::unique_ptr<filestore::InMemoryFileStore>> file_backends;
    std::vector<std::unique_ptr<docstore::InMemoryDocumentStore>> doc_backends;
    std::vector<std::unique_ptr<filestore::RemoteFileStore>> file_transports;
    std::vector<std::unique_ptr<docstore::RemoteDocumentStore>> doc_transports;
    std::vector<filestore::RemoteFileStore*> file_ptrs;
    std::vector<docstore::RemoteDocumentStore*> doc_ptrs;
    for (size_t r = 0; r < 3; ++r) {
      file_backends.push_back(std::make_unique<filestore::InMemoryFileStore>());
      doc_backends.push_back(
          std::make_unique<docstore::InMemoryDocumentStore>());
      file_transports.push_back(std::make_unique<filestore::RemoteFileStore>(
          file_backends.back().get(), &network));
      file_transports.back()->BindReplica(r);
      doc_transports.push_back(std::make_unique<docstore::RemoteDocumentStore>(
          doc_backends.back().get(), &network));
      doc_transports.back()->BindReplica(r);
      file_ptrs.push_back(file_transports.back().get());
      doc_ptrs.push_back(doc_transports.back().get());
    }
    auto files =
        repl::ReplicatedFileStore::Create(file_ptrs, &network, {}).value();
    auto docs =
        repl::ReplicatedDocumentStore::Create(doc_ptrs, &network, {}).value();
    if (with_partition) {
      ASSERT_TRUE(network.Partition({{1}}).ok());
    }

    dist::FlowConfig config;
    config.approach = dist::ApproachKind::kBaseline;
    config.model = TinyConfig();
    config.num_nodes = 2;
    config.u3_iterations = 2;
    config.dataset_divisor = 4096;
    config.training_mode = dist::TrainingMode::kReal;
    config.recover_models = false;
    config.train = TinyTrainConfig();
    config.train.epochs = 1;
    config.train.max_batches_per_epoch = 3;
    config.train.sgd.momentum = 0.9f;
    config.train.sgd.learning_rate = 2e-4f;
    config.checkpoint_every_steps = 2;
    if (with_crash) {
      config.crash_schedule.push_back(
          dist::NodeCrashEvent{/*phase=*/2, /*iteration=*/1, /*node=*/0,
                               /*at_step=*/2});
    }

    core::StorageBackends backends{docs.get(), files.get(), &network, nullptr};
    dist::EvaluationFlow flow(config, backends);
    auto result = flow.Run();
    ASSERT_TRUE(result.ok()) << result.status();
    *records = result->records;
    *result_out = *result;

    // Recover every saved model through the (still degraded, for the
    // partitioned run) quorum and hash its parameters.
    core::ModelRecoverer recoverer(backends);
    for (const dist::UseCaseRecord& record : result->records) {
      auto recovered = recoverer.Recover(record.model_id,
                                         core::RecoverOptions{});
      ASSERT_TRUE(recovered.ok()) << recovered.status();
      hashes->push_back(recovered->model.ParamsHash().ToHex());
    }
  };

  std::vector<dist::UseCaseRecord> clean_records, crashed_records;
  std::vector<std::string> clean_hashes, crashed_hashes;
  dist::FlowResult clean, crashed;
  run(/*with_crash=*/false, /*with_partition=*/false, &clean_records,
      &clean_hashes, &clean);
  run(/*with_crash=*/true, /*with_partition=*/true, &crashed_records,
      &crashed_hashes, &crashed);

  // The crash fired and the partition really degraded the cluster: every
  // write during the run skipped the unreachable replica 1.
  EXPECT_EQ(crashed.TotalCrashes(), 1u);
  EXPECT_EQ(crashed.TotalRestarts(), 1u);
  EXPECT_EQ(clean.TotalCrashes(), 0u);
  ASSERT_EQ(crashed.replica_counters.size(), 3u);
  EXPECT_GT(crashed.replica_counters[1].write_skips, 0u);
  EXPECT_EQ(crashed.replica_counters[0].write_skips, 0u);
  EXPECT_EQ(crashed.replica_counters[2].write_skips, 0u);

  ASSERT_EQ(crashed_records.size(), clean_records.size());
  ASSERT_EQ(crashed_hashes.size(), clean_hashes.size());
  for (size_t i = 0; i < clean_hashes.size(); ++i) {
    EXPECT_EQ(crashed_hashes[i], clean_hashes[i]) << clean_records[i].label;
  }
}

// ---------------------------------------------------------------------------
// Simulated network: node lifecycle
// ---------------------------------------------------------------------------

TEST(SimnetNodeCrashTest, LifecycleChargesCostsAndRejectsWhileDown) {
  simnet::Network network;
  network.ConfigureNodes(2);
  ASSERT_EQ(network.NodeCount(), 2u);
  EXPECT_TRUE(network.IsNodeUp(0));
  EXPECT_TRUE(network.TryTransferToNode(0, 1000).status.ok());

  ASSERT_TRUE(network.CrashNode(0).ok());
  EXPECT_FALSE(network.IsNodeUp(0));
  EXPECT_TRUE(network.IsNodeUp(1));
  EXPECT_EQ(network.CrashNode(0).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(network.CrashNode(9).code(), StatusCode::kInvalidArgument);

  // Requests to the down node fail Unavailable after one latency charge;
  // the other node is untouched.
  const double before = network.TotalTransferSeconds();
  const auto attempt = network.TryTransferToNode(0, 1000);
  EXPECT_EQ(attempt.status.code(), StatusCode::kUnavailable);
  EXPECT_GT(network.TotalTransferSeconds(), before);
  EXPECT_EQ(network.DownNodeRejectCount(), 1u);
  EXPECT_TRUE(network.TryTransferToNode(1, 1000).status.ok());

  ASSERT_TRUE(network.RestartNode(0).ok());
  EXPECT_TRUE(network.IsNodeUp(0));
  EXPECT_EQ(network.RestartNode(0).code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(network.TryTransferToNode(0, 1000).status.ok());
  EXPECT_EQ(network.CrashCount(), 1u);
  EXPECT_EQ(network.RestartCount(), 1u);

  // Crash detection and restart are charged to the virtual clock.
  const simnet::NodeCosts costs = network.node_costs();
  EXPECT_GT(network.TotalTransferSeconds(),
            costs.crash_detect_seconds + costs.restart_seconds);

  network.Reset();
  EXPECT_TRUE(network.IsNodeUp(0));
  EXPECT_EQ(network.CrashCount(), 0u);
  EXPECT_EQ(network.DownNodeRejectCount(), 0u);
}

TEST(SimnetNodeCrashTest, RetrierRidesOutARestart) {
  simnet::Network network;
  network.ConfigureNodes(1);
  simnet::RetryPolicy policy;
  policy.initial_backoff_seconds = 0.01;
  simnet::Retrier retrier(policy, &network);
  ASSERT_TRUE(network.CrashNode(0).ok());

  int attempts = 0;
  const Status status = retrier.Run([&]() -> Status {
    ++attempts;
    const auto attempt = network.TryTransferToNode(0, 512);
    if (!attempt.status.ok() && !network.IsNodeUp(0)) {
      // The node comes back while the sender backs off.
      EXPECT_TRUE(network.RestartNode(0).ok());
    }
    return attempt.status;
  });
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(retrier.retry_count(), 1u);
  EXPECT_EQ(network.DownNodeRejectCount(), 1u);
}

}  // namespace
}  // namespace mmlib
