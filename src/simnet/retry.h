#pragma once

#include <algorithm>
#include <cstdint>

#include "simnet/network.h"
#include "util/random.h"
#include "util/result.h"
#include "util/status.h"

namespace mmlib::simnet {

/// Capped exponential backoff with deterministic jitter. Waits are charged
/// to the simulated network's virtual clock, so TTS/TTR under a fault plan
/// include the time a real client would spend backing off.
struct RetryPolicy {
  /// Total attempts per operation (first try + retries). Must be >= 1.
  int max_attempts = 6;
  double initial_backoff_seconds = 0.05;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 5.0;
  /// Backoff is scaled by a factor in [1 - jitter, 1 + jitter], drawn from
  /// the seeded jitter stream — deterministic, unlike wall-clock jitter.
  double jitter_fraction = 0.2;
  /// Seed of the jitter stream.
  uint64_t seed = 0x6a77e7;
};

/// True for transient transport errors a retry can heal: Unavailable and
/// DeadlineExceeded. Everything else (NotFound, Corruption, IoError, ...)
/// reports a real outcome and must surface to the caller.
inline bool IsRetryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDeadlineExceeded;
}

/// Deterministic retry driver shared by the remote store clients. Runs an
/// operation until it succeeds, fails with a non-retryable error, or
/// exhausts the policy's attempts; between attempts it charges the jittered
/// backoff to the network's virtual clock. Retries and the jitter stream
/// are consumed in call order, so counts reproduce exactly for a fixed
/// seed.
class Retrier {
 public:
  Retrier(const RetryPolicy& policy, Network* network)
      : policy_(policy), network_(network), jitter_rng_(policy.seed) {}

  /// Runs `op` (returning Status or Result<T>) under the retry policy and
  /// returns its last outcome.
  template <typename Fn>
  auto Run(Fn&& op) -> decltype(op()) {
    for (int attempt = 1;; ++attempt) {
      auto outcome = op();
      if (outcome.ok() || !IsRetryable(StatusOf(outcome)) ||
          attempt >= std::max(policy_.max_attempts, 1)) {
        return outcome;
      }
      ChargeBackoff(attempt);
      ++retry_count_;
    }
  }

  /// Total retries (attempts beyond the first) across all operations.
  uint64_t retry_count() const { return retry_count_; }

  const RetryPolicy& policy() const { return policy_; }

 private:
  static const Status& StatusOf(const Status& status) { return status; }
  template <typename T>
  static const Status& StatusOf(const Result<T>& result) {
    return result.status();
  }

  void ChargeBackoff(int attempt);

  RetryPolicy policy_;
  Network* network_;
  Rng jitter_rng_;
  uint64_t retry_count_ = 0;
};

}  // namespace mmlib::simnet
