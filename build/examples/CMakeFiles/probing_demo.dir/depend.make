# Empty dependencies file for probing_demo.
# This may be replaced when dependencies are built.
