# Empty compiler generated dependencies file for table3_flows.
# This may be replaced when dependencies are built.
