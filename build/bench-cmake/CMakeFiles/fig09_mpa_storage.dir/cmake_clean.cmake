file(REMOVE_RECURSE
  "../bench/fig09_mpa_storage"
  "../bench/fig09_mpa_storage.pdb"
  "CMakeFiles/fig09_mpa_storage.dir/fig09_mpa_storage.cc.o"
  "CMakeFiles/fig09_mpa_storage.dir/fig09_mpa_storage.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_mpa_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
