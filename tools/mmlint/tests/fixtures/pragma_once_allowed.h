// fixture-path: src/util/fixture_allowed.h  lint:allow(pragma-once)
struct FixtureAllowedPragma {};
