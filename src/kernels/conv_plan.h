#pragma once

#include <cstdint>

#include "kernels/im2col.h"
#include "util/scratch_pool.h"
#include "util/thread_pool.h"

namespace mmlib::kernels {

/// Strategy chosen for a convolution shape.
enum class ConvAlgo {
  /// Keep the layer's direct loop: depthwise/tiny shapes where packing
  /// overhead exceeds the GEMM win (and the path non-deterministic
  /// contexts always take).
  kDirect,
  /// im2col gather into packed panels + cache-blocked GEMM.
  kIm2ColGemm,
  /// 1x1/stride-1/pad-0: the input plane already is the im2col matrix, so
  /// the gather degenerates to contiguous panel packing.
  kPointwiseGemm,
};

/// An executable plan for one Conv2d shape: algorithm choice, tile sizes,
/// loop orders, and precomputed scratch footprints. Plans are immutable
/// after construction (safe to share across threads); the embedded scratch
/// pool is internally synchronized. Chunk counts are constants of the plan
/// — never the thread count — so the weight-gradient reduction order is a
/// pure function of shape (DESIGN.md "Kernel plan layer").
class ConvPlan {
 public:
  explicit ConvPlan(const ConvGeom& geom);

  const ConvGeom& geom() const { return geom_; }
  ConvAlgo algo() const { return algo_; }
  /// Output-pixel tile width (the GEMM's NC); a multiple of kGemmNR.
  int64_t nc() const { return nc_; }
  /// Reduction block (the GEMM's KC).
  int64_t kc() const { return kc_; }
  /// Backward chunk count over (sample, group) tasks; sizes the
  /// weight-gradient scratch and fixes the reduction order.
  int64_t backward_chunks() const { return backward_chunks_; }

  util::ScratchPool* scratch() const { return &scratch_; }

  /// y(batch, out_channels, out_h, out_w) = conv(x, w). Overwrites y.
  /// Requires algo() != kDirect.
  void Forward(const float* input, const float* weight, float* output,
               util::ThreadPool* pool) const;

  /// grad_input += col2im(W^T . gout) (expects grad_input zero-filled) and
  /// grad_weight += gout . col^T, both in fixed order. Requires
  /// algo() != kDirect.
  void Backward(const float* input, const float* weight,
                const float* grad_output, float* grad_input,
                float* grad_weight, util::ThreadPool* pool) const;

 private:
  ConvGeom geom_;
  ConvAlgo algo_ = ConvAlgo::kDirect;
  int64_t nc_ = 0;
  int64_t kc_ = 0;
  int64_t forward_col_tiles_ = 0;
  int64_t backward_chunks_ = 0;
  bool forward_rows_outer_ = false;
  bool data_grad_rows_outer_ = false;
  bool weight_grad_rows_outer_ = false;
  mutable util::ScratchPool scratch_;
};

}  // namespace mmlib::kernels
