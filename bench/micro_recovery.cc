/// Recovery-under-crash microbenchmark: runs a DIST-5-style evaluation flow
/// with a fixed node-crash schedule while sweeping the training checkpoint
/// interval K, and measures what recovery costs — virtual time added over
/// the crash-free run, optimizer steps retrained, storage retries — and
/// what the non-blocking checkpoint pipeline saves on the clean run
/// (synchronous vs async checkpoint writes). Training compute is charged to
/// the virtual clock (step_compute_seconds), so redone steps and checkpoint
/// stalls are visible in every number. Verifies that the crashed-and-resumed
/// and async runs leave the stores bit-identical to the clean synchronous
/// one. Writes BENCH_recovery.json.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "json/json.h"

using namespace mmlib;

namespace {

constexpr int64_t kIntervalSweep[] = {1, 2, 4, 8};

/// Virtual cost of one optimizer step — roughly 10x the ~23 ms transfer of
/// one checkpoint over the 300 MB/s storage link. Big enough that redoing
/// steps after a crash dominates the recovery cost (the axis the K sweep
/// measures) and that a checkpoint save always has compute to overlap with,
/// while the per-checkpoint stall stays visible on the clean sync run.
constexpr double kStepComputeSeconds = 0.25;

struct Measurement {
  int64_t every_steps = 0;
  uint64_t crashes = 0;
  uint64_t restarts = 0;
  uint64_t retrained_steps = 0;
  uint64_t retries = 0;
  double clean_sync_seconds = 0.0;
  double clean_async_seconds = 0.0;
  double crash_async_seconds = 0.0;
  bool bit_identical = false;
};

dist::FlowConfig RecoveryFlowConfig(int64_t every_steps, bool async_writes) {
  dist::FlowConfig config;
  config.approach = dist::ApproachKind::kBaseline;
  config.model = models::DefaultConfig(models::Architecture::kMobileNetV2);
  config.model.channel_divisor = 8;
  config.model.image_size = 28;
  config.model.num_classes = 10;
  config.num_nodes = 5;
  config.u3_iterations = 2;
  config.dataset_divisor = 4096;
  config.training_mode = dist::TrainingMode::kReal;
  config.recover_models = false;
  // 8 optimizer steps per update, so every K in the sweep checkpoints at a
  // different set of steps (K=4 and K=8 no longer both checkpoint only at
  // step 0, which made their retrained-step counts degenerate).
  config.train.epochs = 2;
  config.train.max_batches_per_epoch = 4;
  config.train.seed = 77;
  config.train.sgd.momentum = 0.9f;
  config.train.loader.batch_size = 4;
  config.train.loader.image_size = 28;
  config.train.loader.num_classes = 10;
  config.train.loader.seed = config.train.seed;
  config.checkpoint_every_steps = every_steps;
  config.async_checkpoints = async_writes;
  config.step_compute_seconds = kStepComputeSeconds;
  return config;
}

/// Three kills spread over nodes/phases: late (7 steps done), middle
/// (5 done), early (2 done). How much of that work survives depends on K:
/// retrained steps are 0 / 2 / 6 / 14 for K = 1 / 2 / 4 / 8.
std::vector<dist::NodeCrashEvent> CrashSchedule() {
  return {
      {/*phase=*/1, /*iteration=*/2, /*node=*/1, /*at_step=*/8},
      {/*phase=*/2, /*iteration=*/1, /*node=*/3, /*at_step=*/6},
      {/*phase=*/2, /*iteration=*/2, /*node=*/0, /*at_step=*/3},
  };
}

/// A mildly lossy storage link, so recovery is measured under the same
/// transient faults the robustness suite exercises (drops feed the
/// Retrier; its backoff is charged to the virtual clock).
simnet::FaultPlan LossyPlan() {
  simnet::FaultPlan plan;
  plan.drop_probability = 0.02;
  return plan;
}

struct RunOutcome {
  dist::FlowResult result;
  double virtual_seconds = 0.0;
  size_t file_count = 0;
  size_t document_count = 0;
  int64_t total_storage = 0;
};

RunOutcome RunOnce(int64_t every_steps, bool async_writes,
                   bool with_crashes) {
  bench::RemoteBacking backing;
  backing.network.set_fault_plan(LossyPlan());
  dist::FlowConfig config = RecoveryFlowConfig(every_steps, async_writes);
  if (with_crashes) {
    config.crash_schedule = CrashSchedule();
  }
  dist::EvaluationFlow flow(std::move(config), backing.backends);
  auto result = flow.Run();
  if (!result.ok()) {
    std::cerr << "flow failed: " << result.status() << "\n";
    std::abort();
  }
  RunOutcome outcome;
  outcome.result = std::move(result).value();
  outcome.virtual_seconds = backing.network.TotalTransferSeconds();
  outcome.file_count = backing.files_raw.FileCount();
  outcome.document_count = backing.docs_raw.DocumentCount();
  outcome.total_storage = outcome.result.TotalStorage();
  return outcome;
}

/// Neither the crash/resume path nor async checkpointing may change what
/// ends up stored: same record stream (ids and sizes) and the same artifact
/// counts as the clean synchronous run.
bool StoresBitIdentical(const RunOutcome& clean, const RunOutcome& other) {
  if (clean.file_count != other.file_count ||
      clean.document_count != other.document_count ||
      clean.total_storage != other.total_storage ||
      clean.result.records.size() != other.result.records.size()) {
    return false;
  }
  for (size_t i = 0; i < clean.result.records.size(); ++i) {
    const dist::UseCaseRecord& a = clean.result.records[i];
    const dist::UseCaseRecord& b = other.result.records[i];
    if (a.model_id != b.model_id || a.storage_bytes != b.storage_bytes) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "micro_recovery", "Recovery cost vs checkpoint interval",
      "DIST-5-style flow (5 nodes, 2 U3 iterations/phase, 8 steps/update,\n"
      "250 ms virtual compute per step) with three scheduled node kills on\n"
      "a 2%-drop storage link. Sweeping checkpoint interval K trades\n"
      "checkpoint traffic in the crash-free run against steps retrained\n"
      "after a crash; async checkpoint writes overlap training compute.\n"
      "Crashed and async runs must land bit-identical to the clean\n"
      "synchronous run.");

  std::vector<Measurement> measurements;
  for (int64_t every_steps : kIntervalSweep) {
    const RunOutcome clean_sync =
        RunOnce(every_steps, /*async_writes=*/false, /*with_crashes=*/false);
    const RunOutcome clean_async =
        RunOnce(every_steps, /*async_writes=*/true, /*with_crashes=*/false);
    const RunOutcome crashed =
        RunOnce(every_steps, /*async_writes=*/true, /*with_crashes=*/true);
    Measurement m;
    m.every_steps = every_steps;
    m.crashes = crashed.result.TotalCrashes();
    m.restarts = crashed.result.TotalRestarts();
    m.retrained_steps = crashed.result.TotalRetrainedSteps();
    m.retries = crashed.result.TotalRetries();
    m.clean_sync_seconds = clean_sync.virtual_seconds;
    m.clean_async_seconds = clean_async.virtual_seconds;
    m.crash_async_seconds = crashed.virtual_seconds;
    m.bit_identical = StoresBitIdentical(clean_sync, clean_async) &&
                      StoresBitIdentical(clean_sync, crashed);
    measurements.push_back(m);
  }

  TablePrinter table({"K", "crashes", "retrained", "retries", "clean sync",
                      "clean async", "crash async", "recovery cost",
                      "stall saved", "bit-identical"});
  for (const Measurement& m : measurements) {
    table.AddRow(
        {std::to_string(m.every_steps), std::to_string(m.crashes),
         std::to_string(m.retrained_steps), std::to_string(m.retries),
         bench::Secs(m.clean_sync_seconds), bench::Secs(m.clean_async_seconds),
         bench::Secs(m.crash_async_seconds),
         bench::Secs(m.crash_async_seconds - m.clean_async_seconds),
         bench::Secs(m.clean_sync_seconds - m.clean_async_seconds),
         m.bit_identical ? "yes" : "NO"});
  }
  table.Print(std::cout);

  bool all_identical = true;
  json::Value rows = json::Value::MakeArray();
  for (const Measurement& m : measurements) {
    all_identical = all_identical && m.bit_identical;
    json::Value row = json::Value::MakeObject();
    row.Set("checkpoint_every_steps", m.every_steps);
    row.Set("crashes", static_cast<int64_t>(m.crashes));
    row.Set("restarts", static_cast<int64_t>(m.restarts));
    row.Set("retrained_steps", static_cast<int64_t>(m.retrained_steps));
    row.Set("storage_retries", static_cast<int64_t>(m.retries));
    row.Set("clean_sync_virtual_seconds", m.clean_sync_seconds);
    row.Set("clean_virtual_seconds", m.clean_async_seconds);
    row.Set("crash_virtual_seconds", m.crash_async_seconds);
    row.Set("recovery_cost_seconds",
            m.crash_async_seconds - m.clean_async_seconds);
    row.Set("async_stall_saved_seconds",
            m.clean_sync_seconds - m.clean_async_seconds);
    row.Set("bit_identical", m.bit_identical);
    rows.Append(std::move(row));
  }
  json::Value doc = json::Value::MakeObject();
  doc.Set("bench", "micro_recovery");
  bench::SetHostMetadata(&doc, /*pool_size=*/0);
  doc.Set("scheduled_crashes",
          static_cast<int64_t>(CrashSchedule().size()));
  doc.Set("steps_per_update", static_cast<int64_t>(8));
  doc.Set("step_compute_seconds", kStepComputeSeconds);
  doc.Set("all_bit_identical", all_identical);
  doc.Set("results", std::move(rows));
  const std::string json_text = doc.DumpPretty();
  std::FILE* out = std::fopen("BENCH_recovery.json", "w");
  if (out != nullptr) {
    std::fwrite(json_text.data(), 1, json_text.size(), out);
    std::fputc('\n', out);
    std::fclose(out);
    std::printf("\nwrote BENCH_recovery.json\n");
  }

  std::printf("async/crashed runs bit-identical to clean sync runs: %s\n",
              all_identical ? "yes" : "NO");
  return all_identical ? 0 : 1;
}
