#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hash/sha256.h"
#include "simnet/network.h"
#include "simnet/retry.h"
#include "util/bytes.h"
#include "util/id_generator.h"
#include "persist/journal.h"
#include "util/result.h"

namespace mmlib::filestore {

/// Binary file persistence keyed by generated file ids — mmlib's shared
/// file system substitute (paper Section 3.1: "To save files, we use a
/// shared file system and insert an automatically generated file identifier
/// as a reference in the appropriate JSON document").
class FileStore {
 public:
  virtual ~FileStore() = default;

  /// Persists `content` and returns its generated id.
  virtual Result<std::string> SaveFile(const Bytes& content) = 0;

  /// Two-phase write, first half: reserves and returns the id a following
  /// WriteAllocated will store under, without writing anything. Journaled
  /// saves (core::SaveTransaction) log the id as a durable intent *between*
  /// the two phases, so a crash can never produce a stored file the journal
  /// does not know about. Stores without two-phase support report
  /// Unimplemented and only work on the non-journaled path.
  virtual Result<std::string> AllocateFileId() {
    return Status::Unimplemented("store does not support two-phase writes");
  }

  /// Two-phase write, second half: persists `content` under a previously
  /// allocated id. Idempotent — rewriting the same id is allowed (retries).
  virtual Status WriteAllocated(const std::string& id, const Bytes& content) {
    (void)id;
    (void)content;
    return Status::Unimplemented("store does not support two-phase writes");
  }

  /// Loads the file with `id`.
  virtual Result<Bytes> LoadFile(const std::string& id) = 0;

  /// Removes the file; NotFound if absent, IoError if removal failed.
  virtual Status Delete(const std::string& id) = 0;

  /// Size of a stored file in bytes.
  virtual Result<size_t> FileSize(const std::string& id) = 0;

  /// Ids of all stored files, sorted — the enumeration primitive of the
  /// replication scrubber (repl::Scrubber). Stores that cannot enumerate
  /// report Unimplemented.
  virtual Result<std::vector<std::string>> ListFileIds() {
    return Status::Unimplemented("store does not support enumeration");
  }

  /// SHA-256 of the stored content — computed where the bytes live, so a
  /// replica can answer an anti-entropy probe without shipping the file.
  /// The base implementation loads and hashes locally.
  virtual Result<Digest> ContentDigest(const std::string& id);

  /// Hint from a caller whose end-to-end integrity check (per-chunk CRC-32)
  /// rejected the bytes this store returned for `id`. Plain stores ignore
  /// it; the replicated store uses it to steer the next fetch to a
  /// different replica and queue a read-repair.
  virtual void ReportDamaged(const std::string& id) { (void)id; }

  /// Total bytes of all stored files.
  virtual size_t TotalStoredBytes() const = 0;

  /// Number of stored files.
  virtual size_t FileCount() const = 0;
};

/// Heap-backed store; the reference implementation.
class InMemoryFileStore : public FileStore {
 public:
  InMemoryFileStore();

  Result<std::string> SaveFile(const Bytes& content) override;
  Result<std::string> AllocateFileId() override;
  Status WriteAllocated(const std::string& id, const Bytes& content) override;
  Result<Bytes> LoadFile(const std::string& id) override;
  Status Delete(const std::string& id) override;
  Result<size_t> FileSize(const std::string& id) override;
  Result<std::vector<std::string>> ListFileIds() override;
  size_t TotalStoredBytes() const override;
  size_t FileCount() const override { return files_.size(); }

 private:
  IdGenerator id_generator_;
  std::map<std::string, Bytes> files_;
};

/// Disk-backed store writing one `<id>.bin` file per id under a root
/// directory. Writes are crash-safe: content goes to a `.tmp` sibling that
/// is renamed into place only after a successful flush, so an interrupted
/// save never leaves a truncated `.bin` visible, and a failed write cleans
/// up its partial temporary. Only `*.bin` entries count as stored files —
/// leftover temporaries and foreign files do not skew the paper's
/// storage-consumption numbers. Opening with a SaveJournal garbage-collects
/// leftover temporaries and replays pending journal records, undoing
/// file writes of half-finished saves (see persist/journal.h).
class LocalDirFileStore : public FileStore {
 public:
  static Result<std::unique_ptr<LocalDirFileStore>> Open(
      const std::string& root, persist::SaveJournal* journal = nullptr);

  Result<std::string> SaveFile(const Bytes& content) override;
  Result<std::string> AllocateFileId() override;
  Status WriteAllocated(const std::string& id, const Bytes& content) override;
  Result<Bytes> LoadFile(const std::string& id) override;
  Status Delete(const std::string& id) override;
  Result<size_t> FileSize(const std::string& id) override;
  Result<std::vector<std::string>> ListFileIds() override;
  size_t TotalStoredBytes() const override;
  size_t FileCount() const override;

 private:
  explicit LocalDirFileStore(std::string root);
  Result<std::string> PathFor(const std::string& id) const;

  std::string root_;
  IdGenerator id_generator_;
};

/// Decorator charging every operation to a simulated network link as a
/// request/response message pair — models external shared storage reached
/// over the evaluation cluster's link. Under an active FaultPlan messages
/// can drop, time out, or corrupt; transient failures are retried with the
/// store's RetryPolicy (deterministic backoff charged to the virtual
/// clock). Write semantics are at-most-once: a corrupted upload is rejected
/// by the receiver (checksum) and retried before the backend mutates, and
/// acknowledgements are modeled as reliable. A corrupted LoadFile response
/// is delivered as-is — end-to-end integrity is the caller's job (chunked
/// frames carry per-chunk CRC-32s; the recoverer re-fetches on mismatch).
class RemoteFileStore : public FileStore {
 public:
  RemoteFileStore(FileStore* backend, simnet::Network* network)
      : backend_(backend),
        network_(network),
        retrier_(simnet::RetryPolicy{}, network) {}

  /// Replaces the retry policy and resets the retry counter/jitter stream.
  void set_retry_policy(const simnet::RetryPolicy& policy) {
    retrier_ = simnet::Retrier(policy, network_);
  }

  /// Routes this store's messages to simnet replica node `replica` — while
  /// that replica is down or partitioned away, every faultable operation
  /// fails Unavailable. The replicated store binds one RemoteFileStore per
  /// backend replica.
  void BindReplica(size_t replica) { replica_ = replica; }
  size_t bound_replica() const { return replica_; }

  /// Retries performed (attempts beyond the first) across all operations.
  uint64_t retry_count() const { return retrier_.retry_count(); }

  /// Operations abandoned because the retry budget ran out (fail-fast path
  /// of below-quorum reads; see RetryPolicy::total_deadline_seconds).
  uint64_t deadline_exhausted_count() const {
    return retrier_.deadline_exhausted_count();
  }

  Result<std::string> SaveFile(const Bytes& content) override;
  Result<std::string> AllocateFileId() override;
  Status WriteAllocated(const std::string& id, const Bytes& content) override;
  Result<Bytes> LoadFile(const std::string& id) override;
  Status Delete(const std::string& id) override;
  Result<size_t> FileSize(const std::string& id) override;
  Result<std::vector<std::string>> ListFileIds() override;
  Result<Digest> ContentDigest(const std::string& id) override;
  size_t TotalStoredBytes() const override;
  size_t FileCount() const override;

  /// The wrapped backend (the scrubber repairs replicas through it).
  FileStore* backend() const { return backend_; }

 private:
  /// One faultable message of `bytes` to this store's server: the bound
  /// replica node when set, the anonymous shared server otherwise.
  simnet::TransferAttempt Attempt(uint64_t bytes) {
    if (replica_ != simnet::kNoReplica) {
      return network_->TryTransferToReplica(replica_, bytes);
    }
    return network_->TryTransfer(bytes);
  }

  FileStore* backend_;
  simnet::Network* network_;
  simnet::Retrier retrier_;
  size_t replica_ = simnet::kNoReplica;
};

}  // namespace mmlib::filestore
