#pragma once

#include <map>
#include <string>
#include <vector>

#include "json/json.h"
#include "util/result.h"

namespace mmlib::env {

/// A snapshot of the execution environment — everything the paper lists as
/// necessary to reproduce floating-point behaviour across machines
/// (Section 3.1 / 3.3 "Environment Tracking"): framework version, library
/// versions, language/compiler, OS kernel, driver versions, and hardware.
struct EnvironmentInfo {
  std::string framework_version;   // mmlib engine version
  std::string compiler;            // e.g. "gcc 12.2.0"
  std::string cxx_standard;        // e.g. "c++20"
  std::string os_name;             // uname sysname
  std::string os_release;          // uname release (kernel)
  std::string machine;             // uname machine (hardware arch)
  std::string cpu_model;           // from /proc/cpuinfo
  int64_t cpu_cores = 0;
  std::map<std::string, std::string> libraries;  // name -> version

  bool operator==(const EnvironmentInfo& other) const;

  json::Value ToJson() const;
  static Result<EnvironmentInfo> FromJson(const json::Value& doc);

  /// Human-readable list of fields that differ from `other`; empty when
  /// environments match.
  std::vector<std::string> DiffAgainst(const EnvironmentInfo& other) const;
};

/// Collects the current host's environment by querying the OS (uname,
/// /proc/cpuinfo) and compiled-in versions. Deterministic on a fixed host.
EnvironmentInfo CollectEnvironment();

/// mmlib engine version string recorded in environment fingerprints.
constexpr const char* kMmlibVersion = "mmlib++ 1.0.0";

}  // namespace mmlib::env

