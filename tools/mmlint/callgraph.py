"""Per-TU function index, call graph, and the three graph rules.

The index is a heuristic parse of the token stream (no macro expansion, no
template instantiation): function definitions are found by matching
`name ( ... ) {` shapes at namespace/class level, with scope tracked through
namespace and class/struct braces. Calls are `identifier (` occurrences
inside a function body; virtual dispatch and overloads are resolved by NAME
MERGING — a call to `WriteAllocated` reaches every function named
`WriteAllocated` defined anywhere in src/. That over-approximation is the
right bias for both graph rules that consume reachability:

  * crash-point-coverage asks "can the crash matrix kill inside this
    persistence call's dynamic extent" — any override containing an
    MMLIB_CRASH_POINT makes the site exercisable;
  * no-unordered-order-leak asks "can this iteration order reach hashed or
    serialized bytes" — any path counts.

Rules implemented here:

  no-wall-clock             std::chrono::{system,steady,high_resolution}_clock,
                            time(), clock() outside src/util/ and src/simnet/
                            (the virtual clock). Wall-clock reads anywhere
                            else are nondeterminism waiting to leak into a
                            flow result.
  no-unordered-order-leak   iteration over std::unordered_map/unordered_set
                            inside a function that transitively feeds hash/,
                            compress/, BytesWriter serialization, or a
                            Merkle builder.
  crash-point-coverage      every AtomicWriteFile / WriteAllocated /
                            InsertWithId / journal-mutation call site in
                            src/ must reach a registered MMLIB_CRASH_POINT
                            through the call graph, so the PR-4 crash matrix
                            provably spans every persistence path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .findings import Finding
from .lexer import IDENT, NUMBER, PUNCT, STRING, Token
from .rules_token import FileContext, _is_call, _match_paren, _tok

_KEYWORDS_NOT_CALLS = frozenset((
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "catch",
    "throw", "new", "delete", "static_cast", "dynamic_cast", "const_cast",
    "reinterpret_cast", "decltype", "noexcept", "assert", "defined",
    "alignas", "typeid", "co_await", "co_return", "co_yield"))

_SCOPE_KEYWORDS = frozenset(("namespace", "class", "struct", "union", "enum"))


@dataclass
class Function:
    name: str           # last component, e.g. "WriteAllocated"
    qualified: str      # e.g. "LocalDirFileStore::WriteAllocated"
    path: str
    line: int
    calls: List[Tuple[str, int]] = field(default_factory=list)
    crash_points: List[Tuple[str, int]] = field(default_factory=list)
    body: Tuple[int, int] = (0, 0)  # token index range [start, end)


@dataclass
class FunctionIndex:
    functions: List[Function] = field(default_factory=list)
    by_name: Dict[str, List[Function]] = field(default_factory=dict)
    # Names of variables/fields declared with an unordered container type,
    # per file path.
    unordered_names: Dict[str, Set[str]] = field(default_factory=dict)

    def add(self, fn: Function) -> None:
        self.functions.append(fn)
        self.by_name.setdefault(fn.name, []).append(fn)


def build_index(contexts: List[FileContext]) -> FunctionIndex:
    index = FunctionIndex()
    for ctx in contexts:
        _index_file(ctx, index)
    return index


def _index_file(ctx: FileContext, index: FunctionIndex) -> None:
    toks = ctx.lexed.tokens
    index.unordered_names[ctx.relpath] = _collect_unordered_names(toks)

    scope: List[str] = []       # namespace / class name stack
    scope_kind: List[str] = []  # "named" | "anon" | "body"
    i = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.kind == PUNCT and t.value == "{":
            opened = _classify_brace(toks, i)
            if opened is None:
                scope.append("")
                scope_kind.append("body")
                i += 1
                continue
            kind, name = opened
            if kind == "function":
                end = _match_brace(toks, i)
                fn = _make_function(ctx, toks, name, i, end)
                index.add(fn)
                i = end + 1 if end > 0 else i + 1
                continue
            scope.append(name)
            scope_kind.append(kind)
            i += 1
            continue
        if t.kind == PUNCT and t.value == "}":
            if scope:
                scope.pop()
                scope_kind.pop()
            i += 1
            continue
        i += 1


def _classify_brace(toks: List[Token],
                    brace_idx: int) -> Optional[Tuple[str, str]]:
    """What does the '{' at brace_idx open?

    Returns ("namespace"|"class"|"function", name), or None for a plain
    block / initializer, in which case the brace is tracked anonymously.
    """
    # Slice back to the previous statement boundary.
    start = brace_idx - 1
    depth = 0
    while start >= 0:
        v = toks[start].value
        k = toks[start].kind
        if k == PUNCT:
            if v in (")", "]", ">"):
                depth += 1
            elif v in ("(", "[", "<"):
                depth -= 1
            elif depth == 0 and v in (";", "{", "}"):
                break
        start -= 1
    slice_toks = toks[start + 1:brace_idx]
    if not slice_toks:
        return None

    words = [t.value for t in slice_toks if t.kind == IDENT]
    if slice_toks[-1].value == "=":
        return None  # brace-initializer
    if "namespace" in words:
        # `namespace a::b {` or anonymous `namespace {`
        name_parts = [t.value for t in slice_toks if t.kind == IDENT
                      and t.value not in ("namespace", "inline")]
        return ("namespace", "::".join(name_parts) if name_parts else "")
    for j, t in enumerate(slice_toks):
        if t.kind == IDENT and t.value in ("class", "struct", "union", "enum"):
            # Name = identifier right after (skipping `enum class`, attrs,
            # MMLIB_EXPORT-style macros are rare here).
            for u in slice_toks[j + 1:]:
                if u.kind == IDENT and u.value not in ("class", "final",
                                                       "alignas"):
                    return ("class", u.value)
            return ("class", "")
    # Function definition: find a parameter list `( ... )` whose close is
    # followed by {, const, noexcept, override, final, ->, &, &&, :, try.
    k = 0
    while k < len(slice_toks):
        t = slice_toks[k]
        if t.kind == IDENT and k + 1 < len(slice_toks) \
                and slice_toks[k + 1].value == "(" \
                and t.value not in _KEYWORDS_NOT_CALLS:
            close = _match_paren(slice_toks, k + 1)
            if close >= 0:
                after = slice_toks[close + 1:]
                tail_ok = not after or after[0].value in (
                    "const", "noexcept", "override", "final", "->", "&",
                    "&&", ":", "try", "mutable") or (
                        after[0].kind == IDENT and after[0].value == "throw")
                if tail_ok and _plausible_function_tail(after):
                    name = _qualified_name(slice_toks, k)
                    return ("function", name)
            k = close + 1 if close > k else k + 1
            continue
        k += 1
    return None


def _plausible_function_tail(after: List[Token]) -> bool:
    """Rejects `for (...) {` false matches: after a parameter list only
    qualifiers, a ctor-init list, or a trailing return type may appear."""
    for t in after:
        if t.kind in (IDENT, NUMBER, STRING):
            continue
        if t.value in ("(", ")", ",", "::", "<", ">", "&", "&&", "*", ":",
                       "->", "[", "]", "{", "}", ".", "="):
            continue
        return False
    return True


def _qualified_name(slice_toks: List[Token], name_idx: int) -> str:
    """Builds `A::B::name` from explicit qualifiers before the name."""
    parts = [slice_toks[name_idx].value]
    j = name_idx - 1
    while j - 1 >= 0 and slice_toks[j].value == "::" \
            and slice_toks[j - 1].kind == IDENT:
        parts.insert(0, slice_toks[j - 1].value)
        j -= 2
    return "::".join(parts)


def _match_brace(toks: List[Token], open_idx: int) -> int:
    depth = 0
    for j in range(open_idx, len(toks)):
        if toks[j].kind == PUNCT:
            if toks[j].value == "{":
                depth += 1
            elif toks[j].value == "}":
                depth -= 1
                if depth == 0:
                    return j
    return len(toks) - 1


def _make_function(ctx: FileContext, toks: List[Token], qualified: str,
                   open_idx: int, close_idx: int) -> Function:
    name = qualified.split("::")[-1]
    fn = Function(name=name, qualified=qualified, path=ctx.relpath,
                  line=toks[open_idx].line, body=(open_idx, close_idx + 1))
    i = open_idx
    while i < close_idx:
        t = toks[i]
        if t.kind == IDENT and _is_call(toks, i):
            if t.value == "MMLIB_CRASH_POINT":
                site = _tok(toks, i + 2)
                fn.crash_points.append(
                    (site.value if site.kind == STRING else "?", t.line))
            elif t.value not in _KEYWORDS_NOT_CALLS:
                fn.calls.append((t.value, t.line))
        i += 1
    return fn


def _collect_unordered_names(toks: List[Token]) -> Set[str]:
    """Names declared with std::unordered_map/unordered_set<...> anywhere in
    the TU (locals, parameters, fields — scope is not tracked; a TU-level
    name set is plenty for a lint)."""
    names: Set[str] = set()
    for i, t in enumerate(toks):
        if not (t.kind == IDENT
                and t.value in ("unordered_map", "unordered_set")):
            continue
        j = i + 1
        if _tok(toks, j).value == "<":
            depth = 0
            while j < len(toks):
                v = toks[j].value
                if v == "<":
                    depth += 1
                elif v == ">":
                    depth -= 1
                    if depth == 0:
                        break
                elif v == ">>":  # nested template closer
                    depth -= 2
                    if depth <= 0:
                        break
                j += 1
            j += 1
        # Skip refs/pointers/cv to the declared name.
        while _tok(toks, j).value in ("&", "*", "const", "&&"):
            j += 1
        cand = _tok(toks, j)
        if cand.kind == IDENT:
            names.add(cand.value)
    return names


# ---------------------------------------------------------------- reachability


def reachable_functions(index: FunctionIndex,
                        roots: List[Function]) -> Set[int]:
    """ids of Function objects reachable from roots via name-merged calls."""
    seen: Set[int] = set()
    stack = list(roots)
    seen.update(id(f) for f in stack)
    while stack:
        fn = stack.pop()
        for callee_name, _line in fn.calls:
            for target in index.by_name.get(callee_name, ()):
                if id(target) not in seen:
                    seen.add(id(target))
                    stack.append(target)
    return seen


# ------------------------------------------------------------------ the rules


_WALL_CLOCKS = frozenset(
    ("system_clock", "steady_clock", "high_resolution_clock"))
_WALL_CLOCK_EXEMPT = ("src/util/", "src/simnet/")


def check_wall_clock(ctx: FileContext, findings: List[Finding]) -> None:
    if not ctx.relpath.startswith("src/") \
            or ctx.relpath.startswith(_WALL_CLOCK_EXEMPT):
        return
    toks = ctx.lexed.tokens
    for i, t in enumerate(toks):
        if t.kind != IDENT:
            continue
        if t.value in _WALL_CLOCKS:
            # std::chrono::steady_clock or chrono::steady_clock
            if _tok(toks, i - 1).value == "::" \
                    and _tok(toks, i - 2).value == "chrono":
                findings.append(_wall_clock_finding(ctx, t.line, t.value))
            continue
        if t.value in ("time", "clock") and _is_call(toks, i):
            prev = _tok(toks, i - 1).value
            if prev in (".", "->"):
                continue  # member call on some object, not libc
            if prev == "::" and _tok(toks, i - 2).value != "std":
                continue
            findings.append(_wall_clock_finding(ctx, t.line, t.value + "()"))


def _wall_clock_finding(ctx: FileContext, line: int, what: str) -> Finding:
    return Finding(
        "no-wall-clock", ctx.relpath, line,
        f"wall-clock read ({what}) outside src/util/ and the simnet "
        "virtual clock; real time differs across runs and machines, so any "
        "value derived from it breaks the bit-identical-replay invariant — "
        "use util::Clock or the flow's simnet virtual clock")


# Functions whose outputs are order-sensitive: bytes that get hashed,
# compressed, or serialized. Module membership covers hash/ and compress/;
# the name list covers serialization entry points defined elsewhere.
_ORDER_SINK_MODULES = frozenset(("hash", "compress"))
_ORDER_SINK_QUALIFIERS = ("BytesWriter::",)
_ORDER_SINK_NAMES = frozenset(
    ("ToBytes", "BuildMerkleTree", "ContentHash"))
_ORDER_SINK_PREFIXES = ("Serialize",)


def _is_order_sink(fn: Function) -> bool:
    module = fn.path.split("/")[1] if fn.path.startswith("src/") else ""
    if module in _ORDER_SINK_MODULES:
        return True
    if any(q in fn.qualified for q in _ORDER_SINK_QUALIFIERS):
        return True
    if fn.name in _ORDER_SINK_NAMES:
        return True
    return fn.name.startswith(_ORDER_SINK_PREFIXES)


def check_unordered_order_leak(contexts: List[FileContext],
                               index: FunctionIndex,
                               findings: List[Finding]) -> None:
    sink_ids = {id(f) for f in index.functions if _is_order_sink(f)}
    ctx_by_path = {c.relpath: c for c in contexts}
    for fn in index.functions:
        if not fn.path.startswith("src/"):
            continue
        ctx = ctx_by_path.get(fn.path)
        if ctx is None:
            continue
        unordered = index.unordered_names.get(fn.path, set())
        if not unordered:
            continue
        iter_lines = _unordered_iteration_lines(ctx, fn, unordered)
        if not iter_lines:
            continue
        # Order-sensitive? The function itself, or anything it reaches.
        reached = reachable_functions(index, [fn])
        if _is_order_sink(fn) or reached & sink_ids:
            for line, name in iter_lines:
                findings.append(Finding(
                    "no-unordered-order-leak", fn.path, line,
                    f"iteration over unordered container `{name}` in "
                    f"`{fn.qualified}`, which feeds hashed/serialized "
                    "output; unordered iteration order varies across "
                    "libstdc++ versions and process runs, silently breaking "
                    "bit-identity — iterate a std::map, or sort the keys "
                    "first"))


def _unordered_iteration_lines(ctx: FileContext, fn: Function,
                               unordered: Set[str]) -> List[Tuple[int, str]]:
    toks = ctx.lexed.tokens
    start, end = fn.body
    hits: List[Tuple[int, str]] = []
    i = start
    while i < end:
        t = toks[i]
        # Range-for: `for ( decl : range-expr )` with an unordered name in
        # the range expression.
        if t.kind == IDENT and t.value == "for" \
                and _tok(toks, i + 1).value == "(":
            close = _match_paren(toks, i + 1)
            if close > 0:
                inner = toks[i + 2:close]
                colon = _find_toplevel_colon(inner)
                if colon >= 0:
                    for u in inner[colon + 1:]:
                        if u.kind == IDENT and u.value in unordered:
                            hits.append((t.line, u.value))
                            break
        # Iterator walk: `x.begin()` / `x.cbegin()` on an unordered name.
        if t.kind == IDENT and t.value in unordered \
                and _tok(toks, i + 1).value in (".", "->") \
                and _tok(toks, i + 2).value in ("begin", "cbegin") \
                and _tok(toks, i + 3).value == "(":
            hits.append((t.line, t.value))
        i += 1
    return hits


def _find_toplevel_colon(toks: List[Token]) -> int:
    depth = 0
    for j, t in enumerate(toks):
        if t.kind == PUNCT:
            if t.value in ("(", "[", "{", "<"):
                depth += 1
            elif t.value in (")", "]", "}", ">"):
                depth -= 1
            elif t.value == ":" and depth == 0:
                return j
            elif t.value == "::":
                continue
    return -1


# Persistence sinks: a call to any of these mutates durable state, so the
# crash matrix must be able to kill inside its dynamic extent.
_PERSIST_SINKS = frozenset((
    "AtomicWriteFile", "WriteAllocated", "InsertWithId", "AppendOp",
    "MarkCommitted", "Replay",
    # Async handoff to the background checkpoint worker: the persistence
    # happens later on another thread, so the *enqueue* is the last point
    # the submitting thread can be killed before the save — it needs crash
    # coverage just like a direct write.
    "SubmitCheckpointSave",
    # Collective sinks: these mutate shared ring state (bytes on the wire,
    # a peer's partial reduction, the committed gradient buffer), so the
    # crash matrix must be able to kill a worker inside each one — the
    # collective.send / collective.reduce / collective.commit sites.
    "SendChunk", "ReduceChunk", "CommitStep",
    # Serving sinks: each mutates front-end state a crash must not corrupt
    # (admitted-queue contents, an occupied worker slot, delivered-reply
    # accounting) — the serve.admit / serve.dispatch / serve.reply sites.
    "AdmitRequest", "DispatchRequest", "DeliverReply"))


@dataclass
class CoverageSite:
    path: str
    line: int
    function: str
    sink: str
    covered: bool
    crash_sites: List[str]


def check_crash_point_coverage(
        index: FunctionIndex,
        findings: List[Finding]) -> List[CoverageSite]:
    """Checks every persistence call site in src/ reaches a crash point;
    returns the full site list for the coverage report."""
    sites: List[CoverageSite] = []
    fn_by_id = {id(f): f for f in index.functions}
    for fn in index.functions:
        if not fn.path.startswith("src/"):
            continue
        for callee, line in fn.calls:
            if callee not in _PERSIST_SINKS:
                continue
            # Reachable set from this function (the call edge to the sink's
            # definitions is part of the graph, so an MMLIB_CRASH_POINT
            # inside any same-named definition covers the site).
            reached = reachable_functions(index, [fn])
            crash_sites: List[str] = []
            for fid in reached:
                for site_name, _l in fn_by_id[fid].crash_points:
                    crash_sites.append(site_name)
            covered = bool(crash_sites)
            sites.append(CoverageSite(
                path=fn.path, line=line, function=fn.qualified, sink=callee,
                covered=covered,
                crash_sites=sorted(set(crash_sites))))
            if not covered:
                findings.append(Finding(
                    "crash-point-coverage", fn.path, line,
                    f"persistence call {callee}() in `{fn.qualified}` is "
                    "not reachable from any MMLIB_CRASH_POINT, so the crash "
                    "matrix (tests/crash_recovery_test.cc) can never "
                    "exercise a kill on this path; add an "
                    'MMLIB_CRASH_POINT("...") before the write or route it '
                    "through a covered helper"))
    sites.sort(key=lambda s: (s.path, s.line, s.sink))
    return sites


def coverage_summary(sites: List[CoverageSite]) -> Dict:
    covered = sum(1 for s in sites if s.covered)
    return {
        "persistence_call_sites": len(sites),
        "covered": covered,
        "coverage_percent": round(100.0 * covered / len(sites), 1)
        if sites else 100.0,
        "registered_crash_points": None,  # filled by engine
    }
