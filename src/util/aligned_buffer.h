#pragma once

#include <cstddef>
#include <new>
#include <utility>

namespace mmlib::util {

/// 64-byte-aligned float storage for kernel scratch (im2col tiles, packed
/// GEMM operands). Alignment matches the widest vector unit the kernels are
/// ever auto-vectorized for (AVX-512) and the common cache-line size, so a
/// packed panel never straddles lines and vector loads are never split.
class AlignedBuffer {
 public:
  static constexpr size_t kAlignment = 64;

  AlignedBuffer() = default;
  explicit AlignedBuffer(size_t floats) : size_(floats) {
    if (floats > 0) {
      data_ = static_cast<float*>(::operator new(
          floats * sizeof(float), std::align_val_t(kAlignment)));
    }
  }
  ~AlignedBuffer() { Reset(); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      Reset();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  float* data() { return data_; }
  const float* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Reinterprets the buffer as double storage: size()/2 doubles. Legal
  /// because the bytes come raw from operator new (64-byte aligned, no
  /// float objects ever constructed in them); callers must stick to one
  /// element type for the lifetime of a lease, never mixing float and
  /// double views of the same bytes.
  double* as_doubles() { return reinterpret_cast<double*>(data_); }

 private:
  void Reset() {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t(kAlignment));
      data_ = nullptr;
      size_ = 0;
    }
  }

  float* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace mmlib::util
