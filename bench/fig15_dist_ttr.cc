/// Reproduces paper Figure 15: median time-to-recover (TTR) for fully
/// updated MobileNetV2 versions across approaches on the DIST-20 evaluation
/// flow. Expected shape: BA flat; PUA and MPA staircases restarting at U1
/// and U3-2-1, with ten steps per phase (vs four in the standard flow) and
/// MPA far above PUA (training is reproduced on recovery).
///
/// Real deterministic training (required for MPA recovery), one batch per
/// epoch to keep the 402-model run tractable; 2,200 trainings are replayed
/// during the recovery phase.
#include <cstdio>

#include "bench/bench_common.h"

using namespace mmlib;
using namespace mmlib::bench;
using namespace mmlib::dist;

int main() {
  PrintHeader("Figure 15", "DIST-20 median TTR, fully updated MobileNetV2",
              "Per-use-case medians over 20 nodes; checksum-verified "
              "recovery of all 402 models per approach.");

  std::vector<std::string> headers = {"use case"};
  std::vector<FlowResult> results;
  for (ApproachKind approach : {ApproachKind::kBaseline,
                                ApproachKind::kParamUpdate,
                                ApproachKind::kProvenance}) {
    headers.push_back(std::string(ApproachName(approach)));
    FlowConfig config;
    config.approach = approach;
    config.model = TrainScaleModel(models::Architecture::kMobileNetV2);
    config.u3_dataset = data::PaperDatasetId::kCocoOutdoor512;
    config.dataset_divisor = 2048;
    config.num_nodes = 20;
    config.u3_iterations = 10;
    config.train.epochs = 1;
    config.train.max_batches_per_epoch = 1;
    config.train.loader.batch_size = 4;
    config.training_mode = TrainingMode::kReal;
    config.recover_models = true;
    results.push_back(RunFlowRemote(config));
  }

  TablePrinter table(headers);
  for (const std::string& label : results[0].Labels()) {
    std::vector<std::string> row = {label};
    for (const FlowResult& result : results) {
      row.push_back(Millis(result.MedianTtr(label)));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  const double pua_step1 = results[1].MedianTtr("U3-1-1");
  const double pua_step10 = results[1].MedianTtr("U3-1-10");
  const double mpa_step1 = results[2].MedianTtr("U3-1-1");
  const double mpa_step10 = results[2].MedianTtr("U3-1-10");
  std::printf(
      "\nstaircase U3-1-1 -> U3-1-10:  PUA %.2fx   MPA %.2fx; MPA/PUA at "
      "step 10: %.1fx\n",
      pua_step10 / pua_step1, mpa_step10 / mpa_step1,
      mpa_step10 / pua_step10);
  return 0;
}
