#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "util/status.h"

namespace mmlib::core {

/// One completed backend operation, reported to the serving layer.
struct ServeOpReport {
  /// Operation label: "model.save", "model.recover".
  std::string_view op;
  /// Final outcome code of the operation (after internal retries).
  StatusCode outcome = StatusCode::kOk;
  /// Virtual-clock seconds the operation consumed (0 with no network).
  double virtual_seconds = 0.0;
  /// Bytes the operation added to (saves) or read from (recovers) storage.
  uint64_t bytes = 0;
};

/// Seam between core and the serving front end (src/serve): the serving
/// layer installs this hook on SaveService / ModelRecoverer, and core
/// reports every completed save/recover through it — op label, outcome, and
/// virtual cost — so the front end can drive its per-backend circuit
/// breakers and health accounting off real core outcomes. Core never
/// includes serve; serve wires the two (the same inversion as
/// TrainService::StepSyncHook and src/collective). An empty hook disables
/// reporting.
using ServeHook = std::function<void(const ServeOpReport&)>;

}  // namespace mmlib::core
