file(REMOVE_RECURSE
  "../bench/fig15_dist_ttr"
  "../bench/fig15_dist_ttr.pdb"
  "CMakeFiles/fig15_dist_ttr.dir/fig15_dist_ttr.cc.o"
  "CMakeFiles/fig15_dist_ttr.dir/fig15_dist_ttr.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_dist_ttr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
