#include <gtest/gtest.h>

#include <memory>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/model.h"
#include "nn/pooling.h"

namespace mmlib::nn {
namespace {

ExecutionContext DetCtx(uint64_t seed = 1) {
  ExecutionContext ctx = ExecutionContext::Deterministic(seed);
  ctx.set_training(true);
  return ctx;
}

/// Small residual test network: conv -> relu -> (conv + shortcut) -> gap ->
/// fc. Exercises branching, Add, and multi-consumer gradients.
Model MakeResidualNet(uint64_t seed = 7) {
  Model model("test-net");
  Rng rng(seed);
  int64_t stem = model.AddNode(
      std::make_unique<Conv2d>("stem", 3, 4, 3, 1, 1, 1, &rng),
      {Model::kInputNode});
  int64_t relu = model.AddNode(std::make_unique<ReLU>("relu1"), {stem});
  int64_t conv = model.AddNode(
      std::make_unique<Conv2d>("conv2", 4, 4, 3, 1, 1, 1, &rng), {relu});
  int64_t add =
      model.AddNode(std::make_unique<Add>("add", 2), {conv, relu});
  int64_t gap = model.AddNode(std::make_unique<GlobalAvgPool>("gap"), {add});
  model.AddNode(std::make_unique<Linear>("fc", 4, 5, &rng), {gap});
  return model;
}

TEST(ModelTest, ForwardProducesLogits) {
  Model model = MakeResidualNet();
  ExecutionContext ctx = DetCtx();
  Rng rng(1);
  Tensor input = Tensor::Gaussian(Shape{2, 3, 6, 6}, 1.0f, &rng);
  Tensor output = model.Forward(input, &ctx).value();
  EXPECT_EQ(output.shape(), (Shape{2, 5}));
}

TEST(ModelTest, EmptyModelFailsForward) {
  Model model("empty");
  ExecutionContext ctx = DetCtx();
  Tensor input(Shape{1, 3, 4, 4});
  EXPECT_EQ(model.Forward(input, &ctx).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ModelTest, BackwardBeforeForwardFails) {
  Model model = MakeResidualNet();
  ExecutionContext ctx = DetCtx();
  Tensor grad(Shape{2, 5});
  EXPECT_EQ(model.Backward(grad, &ctx).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ModelTest, BackwardAccumulatesMultiConsumerGradients) {
  // The relu1 output feeds both conv2 and the Add shortcut; its gradient
  // must accumulate from both paths. Check against finite differences of a
  // scalar objective through the whole model.
  Model model = MakeResidualNet();
  ExecutionContext ctx = DetCtx();
  Rng rng(2);
  Tensor input = Tensor::Gaussian(Shape{1, 3, 5, 5}, 1.0f, &rng);
  Tensor direction = Tensor::Gaussian(Shape{1, 5}, 1.0f, &rng);

  auto objective = [&](const Tensor& in) {
    ExecutionContext local = DetCtx();
    Tensor out = model.Forward(in, &local).value();
    double loss = 0;
    for (int64_t i = 0; i < out.numel(); ++i) {
      loss += static_cast<double>(out.at(i)) * direction.at(i);
    }
    return loss;
  };

  model.ZeroGrad();
  model.Forward(input, &ctx).value();
  Tensor input_grad = model.Backward(direction, &ctx).value();

  const float eps = 1e-2f;
  for (int64_t i = 0; i < input.numel(); i += 13) {
    Tensor perturbed = input;
    perturbed.at(i) += eps;
    const double plus = objective(perturbed);
    perturbed.at(i) -= 2 * eps;
    const double minus = objective(perturbed);
    const float numeric = static_cast<float>((plus - minus) / (2 * eps));
    EXPECT_NEAR(input_grad.at(i), numeric, 2e-2f * (1 + std::abs(numeric)));
  }
}

TEST(ModelTest, ParamCountsSumOverLayers) {
  Model model = MakeResidualNet();
  // stem: 4*3*9=108, conv2: 4*4*9=144, fc: 4*5+5=25.
  EXPECT_EQ(model.TrainableParamCount(), 108 + 144 + 25);
  EXPECT_EQ(model.TotalParamCount(), model.TrainableParamCount());
  EXPECT_EQ(model.ParamByteSize(), (108 + 144 + 25) * sizeof(float));
}

TEST(ModelTest, SetTrainableWhere) {
  Model model = MakeResidualNet();
  const size_t trainable = model.SetTrainableWhere(
      [](const Layer& layer) { return layer.name() == "fc"; });
  EXPECT_EQ(trainable, 1u);
  EXPECT_EQ(model.TrainableParamCount(), 25);
  model.SetTrainableAll(true);
  EXPECT_EQ(model.TrainableParamCount(), 108 + 144 + 25);
}

TEST(ModelTest, SerializeLoadRoundtrip) {
  Model a = MakeResidualNet(1);
  Model b = MakeResidualNet(2);
  EXPECT_NE(a.ParamsHash(), b.ParamsHash());
  ASSERT_TRUE(b.LoadParams(a.SerializeParams()).ok());
  EXPECT_EQ(a.ParamsHash(), b.ParamsHash());
}

TEST(ModelTest, LoadRejectsWrongLayerCount) {
  Model a = MakeResidualNet();
  Model small("small");
  Rng rng(3);
  small.AddSequential(std::make_unique<Linear>("fc", 2, 2, &rng));
  EXPECT_FALSE(small.LoadParams(a.SerializeParams()).ok());
}

TEST(ModelTest, LayerSubsetMerge) {
  Model a = MakeResidualNet(1);
  Model b = MakeResidualNet(2);
  // Transfer only the fc layer from a to b.
  const size_t fc_index = a.FindLayerIndex("fc").value();
  Bytes subset = a.SerializeLayerSubset({fc_index});
  ASSERT_TRUE(b.MergeLayerSubset(subset).ok());
  EXPECT_EQ(b.layer(fc_index)->ParamHash(), a.layer(fc_index)->ParamHash());
  // Other layers remain b's.
  const size_t stem = a.FindLayerIndex("stem").value();
  EXPECT_NE(b.layer(stem)->ParamHash(), a.layer(stem)->ParamHash());
}

TEST(ModelTest, MergeUnknownLayerFails) {
  Model a = MakeResidualNet(1);
  BytesWriter writer;
  writer.WriteU64(1);
  writer.WriteString("nonexistent");
  EXPECT_FALSE(a.MergeLayerSubset(writer.bytes()).ok());
}

TEST(ModelTest, LayerHashesTrackChanges) {
  Model model = MakeResidualNet();
  auto before = model.LayerHashes();
  ASSERT_EQ(before.size(), model.node_count());
  // Perturb only the fc weights.
  const size_t fc = model.FindLayerIndex("fc").value();
  model.layer(fc)->params()[0].value.at(0) += 1.0f;
  auto after = model.LayerHashes();
  for (size_t i = 0; i < before.size(); ++i) {
    if (i == fc) {
      EXPECT_NE(after[i].digest, before[i].digest);
    } else {
      EXPECT_EQ(after[i].digest, before[i].digest);
    }
  }
}

TEST(ModelTest, MerkleTreeMatchesLayerHashes) {
  Model model = MakeResidualNet();
  auto tree = model.BuildMerkleTree().value();
  auto hashes = model.LayerHashes();
  EXPECT_EQ(tree.leaf_count(), hashes.size());
  for (size_t i = 0; i < hashes.size(); ++i) {
    EXPECT_EQ(tree.leaf(i), hashes[i].digest);
  }
}

TEST(ModelTest, ArchitectureFingerprintIgnoresParamValues) {
  Model a = MakeResidualNet(1);
  Model b = MakeResidualNet(2);
  EXPECT_EQ(a.ArchitectureFingerprint(), b.ArchitectureFingerprint());
}

TEST(ModelTest, ArchitectureFingerprintSeesStructure) {
  Model a = MakeResidualNet();
  Model different("test-net");
  Rng rng(7);
  different.AddSequential(
      std::make_unique<Conv2d>("stem", 3, 4, 3, 1, 1, 1, &rng));
  EXPECT_NE(a.ArchitectureFingerprint(), different.ArchitectureFingerprint());
}

TEST(ModelTest, ObserverSeesEveryLayerInOrder) {
  class CountingObserver : public ActivationObserver {
   public:
    std::vector<std::string> forward_layers;
    std::vector<std::string> backward_layers;
    void OnForward(const std::string& name, const Tensor&) override {
      forward_layers.push_back(name);
    }
    void OnBackward(const std::string& name, const Tensor&) override {
      backward_layers.push_back(name);
    }
  };
  Model model = MakeResidualNet();
  CountingObserver observer;
  model.set_observer(&observer);
  ExecutionContext ctx = DetCtx();
  Rng rng(4);
  Tensor input = Tensor::Gaussian(Shape{1, 3, 5, 5}, 1.0f, &rng);
  Tensor output = model.Forward(input, &ctx).value();
  model.Backward(Tensor(output.shape()), &ctx).value();
  model.set_observer(nullptr);

  ASSERT_EQ(observer.forward_layers.size(), model.node_count());
  EXPECT_EQ(observer.forward_layers.front(), "stem");
  EXPECT_EQ(observer.forward_layers.back(), "fc");
  EXPECT_EQ(observer.backward_layers.size(), model.node_count());
  EXPECT_EQ(observer.backward_layers.front(), "fc");
}

TEST(ModelTest, ZeroGradClearsAllGradients) {
  Model model = MakeResidualNet();
  ExecutionContext ctx = DetCtx();
  Rng rng(5);
  Tensor input = Tensor::Gaussian(Shape{1, 3, 5, 5}, 1.0f, &rng);
  Tensor output = model.Forward(input, &ctx).value();
  model.Backward(Tensor::Full(output.shape(), 1.0f), &ctx).value();
  model.ZeroGrad();
  for (size_t i = 0; i < model.node_count(); ++i) {
    for (const Param& p : model.layer(i)->params()) {
      for (int64_t k = 0; k < p.grad.numel(); ++k) {
        ASSERT_EQ(p.grad.at(k), 0.0f);
      }
    }
  }
}

TEST(ModelTest, FindLayerIndex) {
  Model model = MakeResidualNet();
  EXPECT_TRUE(model.FindLayerIndex("conv2").ok());
  EXPECT_EQ(model.FindLayerIndex("nope").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace mmlib::nn
