"""mmlint command line.

Usage:
  python3 -m tools.mmlint                  # lint the repo, text output
  python3 -m tools.mmlint FILE...          # lint specific files/dirs
  python3 -m tools.mmlint --format=sarif --output mmlint.sarif
  python3 -m tools.mmlint --list-rules
  python3 -m tools.mmlint --coverage-report
  python3 -m tools.mmlint --write-baseline   # accept current findings

Exit status: 0 when no non-baselined findings (and no stale suppressions),
1 otherwise, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import engine, output


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="mmlint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: whole repo)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="output format")
    parser.add_argument("--output", metavar="FILE",
                        help="write the report to FILE instead of stdout "
                             "(a text summary still goes to stdout)")
    parser.add_argument("--baseline", metavar="FILE",
                        default=str(engine.BASELINE_FILE),
                        help="baseline file (default: "
                             "tools/mmlint/baseline.json)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline and "
                             "exit 0 (use only for legacy debt, never for "
                             "new code)")
    parser.add_argument("--coverage-report", action="store_true",
                        help="print the per-call-site crash-point coverage "
                             "table")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, doc in sorted(engine.all_rule_docs().items()):
            print(f"{rule_id:24} {doc}")
        return 0

    try:
        result = engine.lint(paths=args.paths or None,
                             baseline_path=Path(args.baseline))
    except FileNotFoundError as e:
        print(f"mmlint: {e}", file=sys.stderr)
        return 2

    if args.write_baseline:
        engine.write_baseline(result.findings + result.baselined,
                              Path(args.baseline))
        print(f"mmlint: baseline written with "
              f"{len(result.findings) + len(result.baselined)} entr(y/ies) "
              f"to {args.baseline}")
        return 0

    if args.format == "json":
        report = output.render_json(result)
    elif args.format == "sarif":
        report = output.render_sarif(result)
    else:
        report = output.render_text(result,
                                    verbose_coverage=args.coverage_report)

    if args.output:
        Path(args.output).write_text(report, encoding="utf-8")
        summary = output.render_text(result,
                                     verbose_coverage=args.coverage_report)
        sys.stdout.write(summary)
    else:
        sys.stdout.write(report)
        if args.format != "text":
            sys.stderr.write(output.render_text(
                result, verbose_coverage=args.coverage_report))

    return 0 if result.ok else 1
