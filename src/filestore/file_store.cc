#include "filestore/file_store.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "check/validators.h"
#include "util/crash_point.h"
#include "util/fs.h"
#include "util/strings.h"

namespace mmlib::filestore {

namespace {

/// Suffix of persisted file-store entries; only these count as stored data.
constexpr const char* kBinSuffix = ".bin";

/// Charge for a fixed-size control answer (an 8-byte count or size).
constexpr uint64_t kScalarResponseBytes = sizeof(uint64_t);

}  // namespace

Result<Digest> FileStore::ContentDigest(const std::string& id) {
  MMLIB_ASSIGN_OR_RETURN(Bytes content, LoadFile(id));
  return Sha256::Hash(content);
}

InMemoryFileStore::InMemoryFileStore() : id_generator_(0xf17e) {}

Result<std::string> InMemoryFileStore::SaveFile(const Bytes& content) {
  const std::string id = id_generator_.Next("file");
  files_[id] = content;
  return id;
}

Result<std::string> InMemoryFileStore::AllocateFileId() {
  return id_generator_.Next("file");
}

Status InMemoryFileStore::WriteAllocated(const std::string& id,
                                         const Bytes& content) {
  files_[id] = content;
  return Status::OK();
}

Result<Bytes> InMemoryFileStore::LoadFile(const std::string& id) {
  auto it = files_.find(id);
  if (it == files_.end()) {
    return Status::NotFound("no file " + id);
  }
  return it->second;
}

Status InMemoryFileStore::Delete(const std::string& id) {
  if (files_.erase(id) == 0) {
    return Status::NotFound("no file " + id);
  }
  return Status::OK();
}

Result<size_t> InMemoryFileStore::FileSize(const std::string& id) {
  auto it = files_.find(id);
  if (it == files_.end()) {
    return Status::NotFound("no file " + id);
  }
  return it->second.size();
}

Result<std::vector<std::string>> InMemoryFileStore::ListFileIds() {
  std::vector<std::string> ids;
  ids.reserve(files_.size());
  for (const auto& [id, content] : files_) {
    ids.push_back(id);
  }
  return ids;  // std::map iterates in sorted key order
}

size_t InMemoryFileStore::TotalStoredBytes() const {
  size_t total = 0;
  for (const auto& [id, content] : files_) {
    total += content.size();
  }
  return total;
}

LocalDirFileStore::LocalDirFileStore(std::string root)
    : root_(std::move(root)), id_generator_(0xf17f) {}

Result<std::unique_ptr<LocalDirFileStore>> LocalDirFileStore::Open(
    const std::string& root, persist::SaveJournal* journal) {
  std::error_code ec;
  std::filesystem::create_directories(root, ec);
  if (ec) {
    return Status::IoError("cannot create " + root + ": " + ec.message());
  }
  std::unique_ptr<LocalDirFileStore> store(new LocalDirFileStore(root));
  // Leftover temporaries are writes that died before their rename; they
  // were never visible as stored data, discard them.
  for (const auto& entry : std::filesystem::directory_iterator(root, ec)) {
    if (EndsWith(entry.path().filename().string(), util::kTmpSuffix)) {
      std::error_code remove_ec;
      std::filesystem::remove(entry.path(), remove_ec);
    }
  }
  if (journal != nullptr) {
    MMLIB_RETURN_IF_ERROR(journal->Replay(
        persist::kJournalFileStore, [&store](const persist::JournalOp& op) {
          return store->Delete(op.id);
        }));
  }
  return store;
}

Result<std::string> LocalDirFileStore::PathFor(const std::string& id) const {
  MMLIB_RETURN_IF_ERROR(
      check::ValidateResourceName(id, /*allow_dot=*/false, "file id"));
  return root_ + "/" + id + kBinSuffix;
}

Result<std::string> LocalDirFileStore::SaveFile(const Bytes& content) {
  MMLIB_ASSIGN_OR_RETURN(std::string id, AllocateFileId());
  MMLIB_RETURN_IF_ERROR(WriteAllocated(id, content));
  return id;
}

Result<std::string> LocalDirFileStore::AllocateFileId() {
  std::string id = id_generator_.Next("file");
  MMLIB_ASSIGN_OR_RETURN(std::string path, PathFor(id));
  // A reopened store restarts the deterministic id stream at zero; skip
  // ids whose destination already exists instead of overwriting them.
  while (std::filesystem::exists(path)) {
    id = id_generator_.Next("file");
    MMLIB_ASSIGN_OR_RETURN(path, PathFor(id));
  }
  return id;
}

Status LocalDirFileStore::WriteAllocated(const std::string& id,
                                         const Bytes& content) {
  MMLIB_ASSIGN_OR_RETURN(std::string path, PathFor(id));
  MMLIB_CRASH_POINT("filestore.write");
  return util::AtomicWriteFile(path, content.data(), content.size());
}

Result<Bytes> LocalDirFileStore::LoadFile(const std::string& id) {
  MMLIB_ASSIGN_OR_RETURN(std::string path, PathFor(id));
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("no file " + id);
  }
  in.seekg(0, std::ios::end);
  const std::streamsize size = in.tellg();
  in.seekg(0, std::ios::beg);
  if (size < 0) {
    // tellg() reports -1 on failure; without this check the cast below
    // requests a SIZE_MAX-byte allocation.
    return Status::IoError("cannot determine size of " + path);
  }
  Bytes content(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(content.data()), size);
  if (!in) {
    return Status::IoError("failed reading " + path);
  }
  return content;
}

Status LocalDirFileStore::Delete(const std::string& id) {
  MMLIB_ASSIGN_OR_RETURN(std::string path, PathFor(id));
  return util::RemoveFileStrict(path, "file " + id);
}

Result<size_t> LocalDirFileStore::FileSize(const std::string& id) {
  MMLIB_ASSIGN_OR_RETURN(std::string path, PathFor(id));
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) {
    return Status::NotFound("no file " + id);
  }
  return static_cast<size_t>(size);
}

Result<std::vector<std::string>> LocalDirFileStore::ListFileIds() {
  std::vector<std::string> ids;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(root_, ec)) {
    const std::string name = entry.path().filename().string();
    if (EndsWith(name, kBinSuffix)) {
      ids.push_back(name.substr(0, name.size() - std::strlen(kBinSuffix)));
    }
  }
  if (ec) {
    return Status::IoError("cannot list " + root_ + ": " + ec.message());
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

size_t LocalDirFileStore::TotalStoredBytes() const {
  return util::TotalBytesWithSuffix(root_, kBinSuffix);
}

size_t LocalDirFileStore::FileCount() const {
  return util::CountFilesWithSuffix(root_, kBinSuffix);
}

Result<std::string> RemoteFileStore::SaveFile(const Bytes& content) {
  simnet::Network::OpScope scope(network_, "file.save");
  return retrier_.Run([&]() -> Result<std::string> {
    // Request carries the payload. A corrupted upload is caught by the
    // receiver's checksum and rejected before the backend mutates, keeping
    // writes at-most-once.
    simnet::TransferAttempt request = Attempt(content.size());
    MMLIB_RETURN_IF_ERROR(request.status);
    if (request.corrupted) {
      return Status::Unavailable("upload rejected: payload corrupted in flight");
    }
    MMLIB_ASSIGN_OR_RETURN(std::string id, backend_->SaveFile(content));
    // Acknowledgement carrying the generated id; modeled reliable so a
    // completed write is never retried into a duplicate.
    network_->Transfer(id.size());
    return id;
  });
}

Result<std::string> RemoteFileStore::AllocateFileId() {
  simnet::Network::OpScope scope(network_, "file.alloc");
  return retrier_.Run([&]() -> Result<std::string> {
    // A lost request burns an id on the backend's generator; ids are never
    // reused, so a re-sent allocation is harmless.
    simnet::TransferAttempt request = Attempt(kScalarResponseBytes);
    MMLIB_RETURN_IF_ERROR(request.status);
    if (request.corrupted) {
      return Status::Unavailable("request corrupted in flight");
    }
    MMLIB_ASSIGN_OR_RETURN(std::string id, backend_->AllocateFileId());
    network_->Transfer(id.size());  // reliable acknowledgement with the id
    return id;
  });
}

Status RemoteFileStore::WriteAllocated(const std::string& id,
                                       const Bytes& content) {
  simnet::Network::OpScope scope(network_, "file.write");
  return retrier_.Run([&]() -> Status {
    // Writing a pre-allocated id is idempotent (same id, same content), so
    // unlike SaveFile a retried upload cannot create a duplicate.
    simnet::TransferAttempt request = Attempt(id.size() + content.size());
    MMLIB_RETURN_IF_ERROR(request.status);
    if (request.corrupted) {
      return Status::Unavailable("upload rejected: payload corrupted in flight");
    }
    MMLIB_RETURN_IF_ERROR(backend_->WriteAllocated(id, content));
    network_->Transfer(kScalarResponseBytes);  // reliable acknowledgement
    return Status::OK();
  });
}

Result<Bytes> RemoteFileStore::LoadFile(const std::string& id) {
  simnet::Network::OpScope scope(network_, "file.load");
  return retrier_.Run([&]() -> Result<Bytes> {
    simnet::TransferAttempt request = Attempt(id.size());
    MMLIB_RETURN_IF_ERROR(request.status);
    if (request.corrupted) {
      return Status::Unavailable("request corrupted in flight");
    }
    MMLIB_ASSIGN_OR_RETURN(Bytes content, backend_->LoadFile(id));
    simnet::TransferAttempt response = Attempt(content.size());
    MMLIB_RETURN_IF_ERROR(response.status);
    if (response.corrupted) {
      // Delivered damaged: end-to-end integrity (per-chunk CRC-32 in the
      // chunked frame) is the caller's to verify and re-fetch.
      network_->CorruptPayload(&content);
    }
    return content;
  });
}

Status RemoteFileStore::Delete(const std::string& id) {
  simnet::Network::OpScope scope(network_, "file.delete");
  return retrier_.Run([&]() -> Status {
    simnet::TransferAttempt request = Attempt(id.size());
    MMLIB_RETURN_IF_ERROR(request.status);
    if (request.corrupted) {
      return Status::Unavailable("request corrupted in flight");
    }
    MMLIB_RETURN_IF_ERROR(backend_->Delete(id));
    network_->Transfer(kScalarResponseBytes);  // reliable acknowledgement
    return Status::OK();
  });
}

Result<size_t> RemoteFileStore::FileSize(const std::string& id) {
  simnet::Network::OpScope scope(network_, "file.size");
  return retrier_.Run([&]() -> Result<size_t> {
    simnet::TransferAttempt request = Attempt(id.size());
    MMLIB_RETURN_IF_ERROR(request.status);
    if (request.corrupted) {
      return Status::Unavailable("request corrupted in flight");
    }
    MMLIB_ASSIGN_OR_RETURN(size_t size, backend_->FileSize(id));
    simnet::TransferAttempt response = Attempt(kScalarResponseBytes);
    MMLIB_RETURN_IF_ERROR(response.status);
    if (response.corrupted) {
      return Status::Unavailable("response corrupted in flight");
    }
    return size;
  });
}

Result<std::vector<std::string>> RemoteFileStore::ListFileIds() {
  simnet::Network::OpScope scope(network_, "file.list");
  return retrier_.Run([&]() -> Result<std::vector<std::string>> {
    simnet::TransferAttempt request = Attempt(kScalarResponseBytes);
    MMLIB_RETURN_IF_ERROR(request.status);
    if (request.corrupted) {
      return Status::Unavailable("request corrupted in flight");
    }
    MMLIB_ASSIGN_OR_RETURN(std::vector<std::string> ids,
                           backend_->ListFileIds());
    uint64_t listing_bytes = 0;
    for (const std::string& id : ids) {
      listing_bytes += id.size();
    }
    simnet::TransferAttempt response = Attempt(listing_bytes);
    MMLIB_RETURN_IF_ERROR(response.status);
    if (response.corrupted) {
      // A listing is length-prefixed and self-describing; a damaged one is
      // rejected by the receiver, never delivered as a wrong id set.
      return Status::Unavailable("response corrupted in flight");
    }
    return ids;
  });
}

Result<Digest> RemoteFileStore::ContentDigest(const std::string& id) {
  simnet::Network::OpScope scope(network_, "file.digest");
  return retrier_.Run([&]() -> Result<Digest> {
    simnet::TransferAttempt request = Attempt(id.size());
    MMLIB_RETURN_IF_ERROR(request.status);
    if (request.corrupted) {
      return Status::Unavailable("request corrupted in flight");
    }
    // The server hashes where the bytes live; only the 32-byte digest
    // travels. This is what makes anti-entropy probes cheap.
    MMLIB_ASSIGN_OR_RETURN(Digest digest, backend_->ContentDigest(id));
    simnet::TransferAttempt response = Attempt(sizeof(digest.bytes));
    MMLIB_RETURN_IF_ERROR(response.status);
    if (response.corrupted) {
      return Status::Unavailable("response corrupted in flight");
    }
    return digest;
  });
}

size_t RemoteFileStore::TotalStoredBytes() const {
  // Stats queries feed the experiment's cost metering; they are charged as
  // a request/response pair but stay fault-free so a flaky link cannot
  // poison measurements with failed metric reads.
  network_->Transfer(kScalarResponseBytes);
  network_->Transfer(kScalarResponseBytes);
  return backend_->TotalStoredBytes();
}

size_t RemoteFileStore::FileCount() const {
  network_->Transfer(kScalarResponseBytes);
  network_->Transfer(kScalarResponseBytes);
  return backend_->FileCount();
}

}  // namespace mmlib::filestore
