#include "repl/scrubber.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

namespace mmlib::repl {

namespace {

/// Bytes of one digest on the wire.
constexpr uint64_t kDigestBytes = 32;

/// Splits a document key "collection/id" back into its parts.
std::pair<std::string, std::string> SplitDocKey(const std::string& key) {
  const size_t slash = key.find('/');
  if (slash == std::string::npos) {
    return {key, ""};
  }
  return {key.substr(0, slash), key.substr(slash + 1)};
}

/// Wire size of one inventory entry in a bucket listing exchange.
uint64_t ListingEntryBytes(const KeyedDigest& item) {
  return item.first.size() + kDigestBytes;
}

}  // namespace

Result<Scrubber::Inventory> Scrubber::FileInventory(size_t replica) const {
  // Built entirely replica-side: enumeration and hashing run where the
  // bytes live, so an inventory costs no network traffic — only the tree
  // comparison does. This locality is the entire point of anti-entropy.
  filestore::FileStore* backend = files_->transport(replica)->backend();
  Inventory inventory;
  MMLIB_ASSIGN_OR_RETURN(std::vector<std::string> ids,
                         backend->ListFileIds());
  inventory.items.reserve(ids.size());
  for (const std::string& id : ids) {
    MMLIB_ASSIGN_OR_RETURN(Digest digest, backend->ContentDigest(id));
    inventory.items.emplace_back(id, digest);
  }
  MMLIB_ASSIGN_OR_RETURN(inventory.tree,
                         BuildBucketTree(inventory.items, bucket_count_));
  return inventory;
}

Result<Scrubber::Inventory> Scrubber::DocInventory(size_t replica) const {
  docstore::DocumentStore* backend = docs_->transport(replica)->backend();
  Inventory inventory;
  MMLIB_ASSIGN_OR_RETURN(std::vector<std::string> collections,
                         backend->ListCollections());
  for (const std::string& collection : collections) {
    MMLIB_ASSIGN_OR_RETURN(std::vector<std::string> ids,
                           backend->ListIds(collection));
    for (const std::string& id : ids) {
      MMLIB_ASSIGN_OR_RETURN(Digest digest,
                             backend->DocumentDigest(collection, id));
      inventory.items.emplace_back(
          ReplicatedDocumentStore::KeyFor(collection, id), digest);
    }
  }
  MMLIB_ASSIGN_OR_RETURN(inventory.tree,
                         BuildBucketTree(inventory.items, bucket_count_));
  return inventory;
}

size_t Scrubber::MajorityFileHolder(const std::string& key,
                                    bool* delete_wins) const {
  *delete_wins = false;
  std::map<Digest, size_t> votes;
  std::map<Digest, size_t> first_holder;
  size_t absent_votes = 0;
  for (size_t r = 0; r < files_->replica_count(); ++r) {
    auto digest = files_->transport(r)->backend()->ContentDigest(key);
    if (digest.ok()) {
      const Digest d = digest.value();
      if (votes[d]++ == 0) {
        first_holder[d] = r;
      }
    } else {
      ++absent_votes;
    }
  }
  size_t best_count = absent_votes;
  size_t best_holder = simnet::kNoReplica;
  bool tie = false;
  bool best_is_absent = absent_votes > 0;
  for (const auto& [digest, count] : votes) {
    if (count > best_count) {
      best_count = count;
      best_holder = first_holder[digest];
      best_is_absent = false;
      tie = false;
    } else if (count == best_count && best_count > 0) {
      tie = true;
    }
  }
  if (tie || best_count == 0) {
    return simnet::kNoReplica;
  }
  if (best_is_absent) {
    *delete_wins = true;
    return simnet::kNoReplica;
  }
  return best_holder;
}

size_t Scrubber::MajorityDocHolder(const std::string& key,
                                   bool* delete_wins) const {
  *delete_wins = false;
  const auto [collection, id] = SplitDocKey(key);
  std::map<Digest, size_t> votes;
  std::map<Digest, size_t> first_holder;
  size_t absent_votes = 0;
  for (size_t r = 0; r < docs_->replica_count(); ++r) {
    auto digest =
        docs_->transport(r)->backend()->DocumentDigest(collection, id);
    if (digest.ok()) {
      const Digest d = digest.value();
      if (votes[d]++ == 0) {
        first_holder[d] = r;
      }
    } else {
      ++absent_votes;
    }
  }
  size_t best_count = absent_votes;
  size_t best_holder = simnet::kNoReplica;
  bool tie = false;
  bool best_is_absent = absent_votes > 0;
  for (const auto& [digest, count] : votes) {
    if (count > best_count) {
      best_count = count;
      best_holder = first_holder[digest];
      best_is_absent = false;
      tie = false;
    } else if (count == best_count && best_count > 0) {
      tie = true;
    }
  }
  if (tie || best_count == 0) {
    return simnet::kNoReplica;
  }
  if (best_is_absent) {
    *delete_wins = true;
    return simnet::kNoReplica;
  }
  return best_holder;
}

Status Scrubber::RepairFileCopy(size_t from, size_t to,
                                const std::string& key,
                                ScrubReport* report) {
  filestore::FileStore* source = files_->transport(from)->backend();
  MMLIB_ASSIGN_OR_RETURN(Bytes bytes, source->LoadFile(key));
  const simnet::TransferAttempt attempt =
      network_->TryTransferBetweenReplicas(from, to, bytes.size());
  if (!attempt.status.ok()) {
    ++report->unresolved;  // pair went unreachable mid-session; next pass
    return Status::OK();
  }
  MMLIB_RETURN_IF_ERROR(
      files_->transport(to)->backend()->WriteAllocated(key, bytes));
  ++report->repaired_files;
  files_->RecordScrubRepair(to);
  return Status::OK();
}

Status Scrubber::RepairDocCopy(size_t from, size_t to, const std::string& key,
                               ScrubReport* report) {
  const auto [collection, id] = SplitDocKey(key);
  docstore::DocumentStore* source = docs_->transport(from)->backend();
  MMLIB_ASSIGN_OR_RETURN(json::Value doc, source->Get(collection, id));
  const simnet::TransferAttempt attempt =
      network_->TryTransferBetweenReplicas(from, to, doc.Dump().size());
  if (!attempt.status.ok()) {
    ++report->unresolved;
    return Status::OK();
  }
  MMLIB_RETURN_IF_ERROR(docs_->transport(to)->backend()->InsertWithId(
      collection, id, std::move(doc)));
  ++report->repaired_documents;
  docs_->RecordScrubRepair(to);
  return Status::OK();
}

Status Scrubber::ReconcileFile(size_t a, size_t b, const std::string& key,
                               const Digest* digest_a, const Digest* digest_b,
                               ScrubReport* report) {
  bool should_delete = false;
  size_t source = simnet::kNoReplica;
  if (files_->IsTombstoned(key)) {
    should_delete = true;
  } else if (const Digest* expected = files_->FindExpectedDigest(key)) {
    if (digest_a != nullptr && *digest_a == *expected) {
      source = a;
    } else if (digest_b != nullptr && *digest_b == *expected) {
      source = b;
    } else {
      // Neither session side holds the good copy; any other replica with
      // it can supply the repair.
      for (size_t r = 0; r < files_->replica_count(); ++r) {
        if (r == a || r == b) {
          continue;
        }
        auto digest = files_->transport(r)->backend()->ContentDigest(key);
        if (digest.ok() && digest.value() == *expected) {
          source = r;
          break;
        }
      }
    }
  } else {
    source = MajorityFileHolder(key, &should_delete);
  }
  if (should_delete) {
    // A straggler copy of a quorum-deleted (or majority-absent) entry must
    // be re-deleted, not re-spread.
    for (const auto& [side, digest] :
         {std::make_pair(a, digest_a), std::make_pair(b, digest_b)}) {
      if (digest != nullptr) {
        const simnet::TransferAttempt attempt =
            network_->TryTransferBetweenReplicas(side == a ? b : a, side,
                                                 key.size());
        if (attempt.status.ok() &&
            files_->transport(side)->backend()->Delete(key).ok()) {
          ++report->repaired_files;
          files_->RecordScrubRepair(side);
        }
      }
    }
    return Status::OK();
  }
  if (source == simnet::kNoReplica) {
    ++report->unresolved;
    return Status::OK();
  }
  MMLIB_ASSIGN_OR_RETURN(
      Digest good, files_->transport(source)->backend()->ContentDigest(key));
  for (const auto& [side, digest] :
       {std::make_pair(a, digest_a), std::make_pair(b, digest_b)}) {
    if (side == source) {
      continue;
    }
    if (digest == nullptr || !(*digest == good)) {
      MMLIB_RETURN_IF_ERROR(RepairFileCopy(source, side, key, report));
    }
  }
  return Status::OK();
}

Status Scrubber::ReconcileDoc(size_t a, size_t b, const std::string& key,
                              const Digest* digest_a, const Digest* digest_b,
                              ScrubReport* report) {
  const auto [collection, id] = SplitDocKey(key);
  bool should_delete = false;
  size_t source = simnet::kNoReplica;
  if (docs_->IsTombstoned(key)) {
    should_delete = true;
  } else if (const Digest* expected = docs_->FindExpectedDigest(key)) {
    if (digest_a != nullptr && *digest_a == *expected) {
      source = a;
    } else if (digest_b != nullptr && *digest_b == *expected) {
      source = b;
    } else {
      for (size_t r = 0; r < docs_->replica_count(); ++r) {
        if (r == a || r == b) {
          continue;
        }
        auto digest =
            docs_->transport(r)->backend()->DocumentDigest(collection, id);
        if (digest.ok() && digest.value() == *expected) {
          source = r;
          break;
        }
      }
    }
  } else {
    source = MajorityDocHolder(key, &should_delete);
  }
  if (should_delete) {
    for (const auto& [side, digest] :
         {std::make_pair(a, digest_a), std::make_pair(b, digest_b)}) {
      if (digest != nullptr) {
        const simnet::TransferAttempt attempt =
            network_->TryTransferBetweenReplicas(side == a ? b : a, side,
                                                 key.size());
        if (attempt.status.ok() &&
            docs_->transport(side)->backend()->Delete(collection, id).ok()) {
          ++report->repaired_documents;
          docs_->RecordScrubRepair(side);
        }
      }
    }
    return Status::OK();
  }
  if (source == simnet::kNoReplica) {
    ++report->unresolved;
    return Status::OK();
  }
  MMLIB_ASSIGN_OR_RETURN(Digest good, docs_->transport(source)
                                          ->backend()
                                          ->DocumentDigest(collection, id));
  for (const auto& [side, digest] :
       {std::make_pair(a, digest_a), std::make_pair(b, digest_b)}) {
    if (side == source) {
      continue;
    }
    if (digest == nullptr || !(*digest == good)) {
      MMLIB_RETURN_IF_ERROR(RepairDocCopy(source, side, key, report));
    }
  }
  return Status::OK();
}

namespace {

/// Keys of `items` that fall into one of `buckets`, with their digests.
std::map<std::string, Digest> BucketSlice(const std::vector<KeyedDigest>& items,
                                          const std::set<size_t>& buckets,
                                          size_t bucket_count) {
  std::map<std::string, Digest> slice;
  for (const auto& [key, digest] : items) {
    if (buckets.count(BucketForKey(key, bucket_count)) != 0) {
      slice.emplace(key, digest);
    }
  }
  return slice;
}

uint64_t SliceBytes(const std::map<std::string, Digest>& slice) {
  uint64_t bytes = 0;
  for (const auto& [key, digest] : slice) {
    bytes += ListingEntryBytes({key, digest});
  }
  return bytes;
}

}  // namespace

Status Scrubber::ScrubPairFiles(size_t a, size_t b, ScrubReport* report) {
  MMLIB_ASSIGN_OR_RETURN(Inventory inv_a, FileInventory(a));
  MMLIB_ASSIGN_OR_RETURN(Inventory inv_b, FileInventory(b));
  // Root exchange: one digest each way.
  if (!network_->TryTransferBetweenReplicas(a, b, kDigestBytes).status.ok() ||
      !network_->TryTransferBetweenReplicas(b, a, kDigestBytes).status.ok()) {
    return Status::OK();  // pair lost mid-session; next pass retries
  }
  if (inv_a.tree.root() == inv_b.tree.root()) {
    ++report->root_matches;
    return Status::OK();
  }
  MMLIB_ASSIGN_OR_RETURN(MerkleDiff diff,
                         MerkleTree::Diff(inv_a.tree, inv_b.tree));
  report->bucket_comparisons += diff.comparisons;
  // Descent traffic: the compared node digests travel both ways.
  (void)network_->TryTransferBetweenReplicas(a, b,
                                             diff.comparisons * kDigestBytes);
  (void)network_->TryTransferBetweenReplicas(b, a,
                                             diff.comparisons * kDigestBytes);
  const std::set<size_t> buckets(diff.changed_leaves.begin(),
                                 diff.changed_leaves.end());
  const auto slice_a = BucketSlice(inv_a.items, buckets, bucket_count_);
  const auto slice_b = BucketSlice(inv_b.items, buckets, bucket_count_);
  // Bucket listing exchange: each side ships its slice of the mismatched
  // buckets (keys + digests) to the other.
  (void)network_->TryTransferBetweenReplicas(a, b, SliceBytes(slice_a));
  (void)network_->TryTransferBetweenReplicas(b, a, SliceBytes(slice_b));
  std::set<std::string> keys;
  for (const auto& [key, digest] : slice_a) {
    keys.insert(key);
  }
  for (const auto& [key, digest] : slice_b) {
    keys.insert(key);
  }
  for (const std::string& key : keys) {
    const auto it_a = slice_a.find(key);
    const auto it_b = slice_b.find(key);
    const Digest* digest_a = it_a != slice_a.end() ? &it_a->second : nullptr;
    const Digest* digest_b = it_b != slice_b.end() ? &it_b->second : nullptr;
    if (digest_a != nullptr && digest_b != nullptr &&
        *digest_a == *digest_b) {
      continue;  // same key, same content — a different key diverged
    }
    MMLIB_RETURN_IF_ERROR(
        ReconcileFile(a, b, key, digest_a, digest_b, report));
  }
  return Status::OK();
}

Status Scrubber::ScrubPairDocs(size_t a, size_t b, ScrubReport* report) {
  MMLIB_ASSIGN_OR_RETURN(Inventory inv_a, DocInventory(a));
  MMLIB_ASSIGN_OR_RETURN(Inventory inv_b, DocInventory(b));
  if (!network_->TryTransferBetweenReplicas(a, b, kDigestBytes).status.ok() ||
      !network_->TryTransferBetweenReplicas(b, a, kDigestBytes).status.ok()) {
    return Status::OK();
  }
  if (inv_a.tree.root() == inv_b.tree.root()) {
    ++report->root_matches;
    return Status::OK();
  }
  MMLIB_ASSIGN_OR_RETURN(MerkleDiff diff,
                         MerkleTree::Diff(inv_a.tree, inv_b.tree));
  report->bucket_comparisons += diff.comparisons;
  (void)network_->TryTransferBetweenReplicas(a, b,
                                             diff.comparisons * kDigestBytes);
  (void)network_->TryTransferBetweenReplicas(b, a,
                                             diff.comparisons * kDigestBytes);
  const std::set<size_t> buckets(diff.changed_leaves.begin(),
                                 diff.changed_leaves.end());
  const auto slice_a = BucketSlice(inv_a.items, buckets, bucket_count_);
  const auto slice_b = BucketSlice(inv_b.items, buckets, bucket_count_);
  (void)network_->TryTransferBetweenReplicas(a, b, SliceBytes(slice_a));
  (void)network_->TryTransferBetweenReplicas(b, a, SliceBytes(slice_b));
  std::set<std::string> keys;
  for (const auto& [key, digest] : slice_a) {
    keys.insert(key);
  }
  for (const auto& [key, digest] : slice_b) {
    keys.insert(key);
  }
  for (const std::string& key : keys) {
    const auto it_a = slice_a.find(key);
    const auto it_b = slice_b.find(key);
    const Digest* digest_a = it_a != slice_a.end() ? &it_a->second : nullptr;
    const Digest* digest_b = it_b != slice_b.end() ? &it_b->second : nullptr;
    if (digest_a != nullptr && digest_b != nullptr &&
        *digest_a == *digest_b) {
      continue;
    }
    MMLIB_RETURN_IF_ERROR(ReconcileDoc(a, b, key, digest_a, digest_b, report));
  }
  return Status::OK();
}

bool Scrubber::CheckConverged() const {
  if (files_ != nullptr) {
    Digest reference;
    for (size_t r = 0; r < files_->replica_count(); ++r) {
      auto inventory = FileInventory(r);
      if (!inventory.ok()) {
        return false;
      }
      if (r == 0) {
        reference = inventory.value().tree.root();
      } else if (!(inventory.value().tree.root() == reference)) {
        return false;
      }
    }
  }
  if (docs_ != nullptr) {
    Digest reference;
    for (size_t r = 0; r < docs_->replica_count(); ++r) {
      auto inventory = DocInventory(r);
      if (!inventory.ok()) {
        return false;
      }
      if (r == 0) {
        reference = inventory.value().tree.root();
      } else if (!(inventory.value().tree.root() == reference)) {
        return false;
      }
    }
  }
  return true;
}

Result<ScrubReport> Scrubber::ScrubOnce() {
  network_->ApplyDueReplicaEvents();
  ScrubReport report;
  size_t replica_count = 0;
  if (files_ != nullptr) {
    replica_count = files_->replica_count();
  }
  if (docs_ != nullptr) {
    replica_count = std::max(replica_count, docs_->replica_count());
  }
  for (size_t a = 0; a < replica_count; ++a) {
    for (size_t b = a + 1; b < replica_count; ++b) {
      if (!network_->ReplicaPairReachable(a, b)) {
        continue;
      }
      ++report.sessions;
      if (files_ != nullptr && b < files_->replica_count()) {
        MMLIB_RETURN_IF_ERROR(ScrubPairFiles(a, b, &report));
      }
      if (docs_ != nullptr && b < docs_->replica_count()) {
        MMLIB_RETURN_IF_ERROR(ScrubPairDocs(a, b, &report));
      }
    }
  }
  report.converged = CheckConverged();
  lifetime_.sessions += report.sessions;
  lifetime_.root_matches += report.root_matches;
  lifetime_.bucket_comparisons += report.bucket_comparisons;
  lifetime_.repaired_files += report.repaired_files;
  lifetime_.repaired_documents += report.repaired_documents;
  lifetime_.unresolved += report.unresolved;
  lifetime_.converged = report.converged;
  return report;
}

}  // namespace mmlib::repl
