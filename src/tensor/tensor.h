#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/check.h"
#include "hash/sha256.h"
#include "tensor/shape.h"
#include "util/bytes.h"
#include "util/random.h"
#include "util/result.h"

namespace mmlib {

/// A dense float32 tensor with value semantics. This is the parameter and
/// activation type of the mmlib neural-network engine (the PyTorch
/// substitute; see DESIGN.md Section 1).
class Tensor {
 public:
  /// Constructs an empty (0-element, rank-1) tensor.
  Tensor() : shape_({0}) {}

  /// Constructs a zero-filled tensor of `shape`.
  explicit Tensor(Shape shape);

  /// Constructs a tensor of `shape` from existing data; data.size() must
  /// equal shape.numel().
  Tensor(Shape shape, std::vector<float> data);

  static Tensor Zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor Full(Shape shape, float value);
  /// Uniform samples in [lo, hi) drawn from `rng` in element order.
  static Tensor Uniform(Shape shape, float lo, float hi, Rng* rng);
  /// Standard-normal samples scaled by `stddev`.
  static Tensor Gaussian(Shape shape, float stddev, Rng* rng);

  const Shape& shape() const { return shape_; }
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  size_t byte_size() const { return data_.size() * sizeof(float); }

  const float* data() const { return data_.data(); }
  float* data() { return data_.data(); }
  float at(size_t i) const {
    MMLIB_DCHECK_LT(i, data_.size());
    return data_[i];
  }
  float& at(size_t i) {
    MMLIB_DCHECK_LT(i, data_.size());
    return data_[i];
  }

  /// Elementwise in-place operations.
  void Fill(float value);
  void AddInPlace(const Tensor& other);
  void SubInPlace(const Tensor& other);
  void MulScalarInPlace(float s);
  void AddScaledInPlace(const Tensor& other, float s);

  /// Returns a reshaped view copy; numel must match.
  Result<Tensor> Reshape(Shape new_shape) const;

  /// Exact elementwise equality (bit-for-bit on the float values).
  bool Equals(const Tensor& other) const;

  /// True if all elements differ from `other` by at most `tolerance`.
  bool AllClose(const Tensor& other, float tolerance) const;

  /// Largest absolute elementwise difference; shapes must match.
  float MaxAbsDiff(const Tensor& other) const;

  /// SHA-256 over shape and raw element bytes. Used for layer checksums and
  /// Merkle tree leaves.
  Digest ContentHash() const;

  /// Serializes shape + elements to a portable little-endian format.
  Bytes Serialize() const;
  static Result<Tensor> Deserialize(const Bytes& data);
  static Result<Tensor> Deserialize(BytesReader* reader);
  void SerializeTo(BytesWriter* writer) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

/// Left-to-right serial dot product (the "serial method" of paper Figure 2).
float DotSerial(const float* a, const float* b, size_t n);

/// Chunked parallel-style dot product: partial sums over `num_chunks` chunks
/// combined in chunk order (the "parallel method" of Figure 2). The different
/// association order generally produces a slightly different float result
/// than DotSerial on the same input.
float DotParallel(const float* a, const float* b, size_t n, size_t num_chunks);

/// Chunked dot product whose chunk-combination order is given by
/// `combine_order` (a permutation of chunk indices). Models non-deterministic
/// parallel reduction: different orders give different rounding.
float DotChunkedOrdered(const float* a, const float* b, size_t n,
                        size_t num_chunks,
                        const std::vector<size_t>& combine_order);

/// Serial left-to-right sum.
float SumSerial(const float* values, size_t n);

/// Kahan-compensated sum: deterministic and more accurate, at roughly twice
/// the per-element cost. This is the accumulation used by deterministic
/// kernels (paper Section 4.5: deterministic training is slower).
float SumKahan(const float* values, size_t n);

}  // namespace mmlib

