/// Quickstart: save a model with the baseline approach and recover an
/// exact copy.
///
///   1. Build a model from the zoo.
///   2. Save it through a BaselineSaveService backed by a document store
///      (MongoDB stand-in) and a file store (shared-filesystem stand-in).
///   3. Recover it with a ModelRecoverer and verify bit-exact equality.
#include <cstdio>

#include "core/baseline.h"
#include "core/model_code.h"
#include "core/recover.h"
#include "docstore/document_store.h"
#include "env/environment.h"
#include "filestore/file_store.h"
#include "models/zoo.h"

using namespace mmlib;

int main() {
  std::printf("mmlib++ quickstart\n==================\n\n");

  // Storage backends. Swap these for PersistentDocumentStore /
  // LocalDirFileStore to keep models across process runs.
  docstore::InMemoryDocumentStore docs;
  filestore::InMemoryFileStore files;
  core::StorageBackends backends{&docs, &files, /*network=*/nullptr};

  // A ResNet-18 at laptop scale (channel divisor 4 keeps all of the
  // paper's parameter-count ratios; divisor 1 is the full-size model).
  const models::ModelConfig config =
      models::DefaultConfig(models::Architecture::kResNet18);
  auto model = models::BuildModel(config);
  if (!model.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  std::printf("built %s: %lld trainable parameters (%zu bytes)\n",
              std::string(models::ArchitectureName(config.arch)).c_str(),
              static_cast<long long>(model->TrainableParamCount()),
              model->ParamByteSize());

  // Save: metadata (environment, code descriptor, checksums) goes to the
  // document store; the parameter snapshot goes to the file store.
  const env::EnvironmentInfo environment = env::CollectEnvironment();
  core::BaselineSaveService service(backends);
  core::SaveRequest request;
  request.model = &model.value();
  request.code = core::CodeDescriptorFor(config);
  request.environment = &environment;
  auto save = service.SaveModel(request);
  if (!save.ok()) {
    std::fprintf(stderr, "save failed: %s\n",
                 save.status().ToString().c_str());
    return 1;
  }
  std::printf("saved as %s: %.2f MB in %.3f s\n", save->model_id.c_str(),
              save->storage_bytes / 1e6, save->tts_seconds);

  // Recover: rebuilds the architecture from the code descriptor, loads the
  // snapshot, checks the environment, and verifies the checksum.
  core::ModelRecoverer recoverer(backends);
  auto recovered = recoverer.Recover(save->model_id, core::RecoverOptions{});
  if (!recovered.ok()) {
    std::fprintf(stderr, "recover failed: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }
  std::printf("recovered in %.3f s (load %.3f / recover %.3f / env %.3f / "
              "verify %.3f)\n",
              recovered->breakdown.TotalSeconds(),
              recovered->breakdown.load_seconds,
              recovered->breakdown.recover_seconds,
              recovered->breakdown.check_env_seconds,
              recovered->breakdown.verify_seconds);

  const bool equal =
      recovered->model.ParamsHash() == model->ParamsHash();
  std::printf("checksum verified: %s; recovered model equals original: %s\n",
              recovered->checksum_verified ? "yes" : "no",
              equal ? "yes" : "no");
  return equal ? 0 : 1;
}
