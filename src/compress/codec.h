#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "util/bytes.h"
#include "util/result.h"

namespace mmlib {

/// Identifies a compression codec inside a frame header.
enum class CodecKind : uint8_t {
  kIdentity = 0,
  kRle = 1,
  kLz77 = 2,
  kLz77Huffman = 3,
};

/// A byte-stream compression codec. mmlib uses codecs to archive training
/// datasets into a single file for the model provenance approach (paper
/// Section 3.3, "Managing Data sets").
///
/// Compress/Decompress operate on raw payloads; use Frame/Unframe for a
/// self-describing container with codec id, sizes, and a CRC-32 of the
/// original payload.
class Codec {
 public:
  /// Default output cap for Decompress when the caller has no expected
  /// size: large enough for any legitimate payload in this repository,
  /// small enough to stop corrupted length fields from exhausting memory.
  static constexpr size_t kDefaultMaxOutput = 1ULL << 34;  // 16 GiB

  virtual ~Codec() = default;

  virtual CodecKind kind() const = 0;
  virtual std::string_view name() const = 0;

  /// Compresses `input` into a codec-specific representation.
  virtual Result<Bytes> Compress(const Bytes& input) const = 0;

  /// Inverse of Compress. Fails with Corruption if the output would exceed
  /// `max_output` bytes (corrupted streams must not exhaust memory).
  virtual Result<Bytes> Decompress(
      const Bytes& input, size_t max_output = kDefaultMaxOutput) const = 0;

  /// Compresses and wraps in a verifiable frame.
  Result<Bytes> Frame(const Bytes& input) const;

  /// Unwraps a frame produced by any codec, verifies the checksum, and
  /// returns the original payload. Dispatches on the codec id in the
  /// header; the header's original-size field bounds decompression.
  static Result<Bytes> Unframe(const Bytes& frame);

  /// Returns the codec instance for `kind` (process-wide singletons).
  static const Codec* ForKind(CodecKind kind);

  /// Looks up a codec by name ("identity", "rle", "lz77", "lz77-huffman").
  static Result<const Codec*> ForName(std::string_view name);
};

/// Stores the input unmodified. Baseline for the codec ablation benchmark.
class IdentityCodec : public Codec {
 public:
  CodecKind kind() const override { return CodecKind::kIdentity; }
  std::string_view name() const override { return "identity"; }
  Result<Bytes> Compress(const Bytes& input) const override;
  Result<Bytes> Decompress(const Bytes& input,
                           size_t max_output) const override;
};

/// Byte-level run-length encoding. Effective on synthetic images with flat
/// regions; cheap to run.
class RleCodec : public Codec {
 public:
  CodecKind kind() const override { return CodecKind::kRle; }
  std::string_view name() const override { return "rle"; }
  Result<Bytes> Compress(const Bytes& input) const override;
  Result<Bytes> Decompress(const Bytes& input,
                           size_t max_output) const override;
};

/// LZ77 with a 64 KiB sliding window and hash-chain match finding; the
/// default codec for dataset archiving.
class Lz77Codec : public Codec {
 public:
  CodecKind kind() const override { return CodecKind::kLz77; }
  std::string_view name() const override { return "lz77"; }
  Result<Bytes> Compress(const Bytes& input) const override;
  Result<Bytes> Decompress(const Bytes& input,
                           size_t max_output) const override;
};

/// Deflate-style two-stage codec: the LZ77 token stream entropy-coded with
/// a canonical byte-level Huffman code. Smallest archives, highest CPU
/// cost — the other end of the codec ablation's trade-off curve.
class Lz77HuffmanCodec : public Codec {
 public:
  CodecKind kind() const override { return CodecKind::kLz77Huffman; }
  std::string_view name() const override { return "lz77-huffman"; }
  Result<Bytes> Compress(const Bytes& input) const override;
  Result<Bytes> Decompress(const Bytes& input,
                           size_t max_output) const override;
};

}  // namespace mmlib

