#include "tensor/validate.h"

#include <cmath>
#include <string>

namespace mmlib::check {

namespace {

std::string WithContext(std::string_view context, std::string message) {
  if (context.empty()) {
    return message;
  }
  return std::string(context) + ": " + message;
}

}  // namespace

Status ValidateShapesMatch(const Shape& got, const Shape& want,
                           std::string_view context) {
  if (got == want) {
    return Status::OK();
  }
  return Status::InvalidArgument(WithContext(
      context, "shape mismatch: got " + got.ToString() + ", want " +
                   want.ToString()));
}

Status ValidateSameShape(const Tensor& a, const Tensor& b,
                         std::string_view context) {
  return ValidateShapesMatch(a.shape(), b.shape(), context);
}

Status ValidateRank(const Shape& shape, size_t rank,
                    std::string_view context) {
  if (shape.rank() == rank) {
    return Status::OK();
  }
  return Status::InvalidArgument(WithContext(
      context, "expected rank " + std::to_string(rank) + ", got shape " +
                   shape.ToString()));
}

Status ValidateArity(const std::vector<const Tensor*>& inputs, size_t arity,
                     std::string_view layer_name) {
  if (inputs.size() != arity) {
    return Status::InvalidArgument(WithContext(
        layer_name, "expected " + std::to_string(arity) + " input(s), got " +
                        std::to_string(inputs.size())));
  }
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (inputs[i] == nullptr) {
      return Status::InvalidArgument(
          WithContext(layer_name, "input " + std::to_string(i) + " is null"));
    }
  }
  return Status::OK();
}

Status ValidateAllFinite(const Tensor& t, std::string_view context) {
  const float* data = t.data();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(data[i])) {
      return Status::InvalidArgument(WithContext(
          context, "non-finite value " + std::to_string(data[i]) +
                       " at flat index " + std::to_string(i) + " of shape " +
                       t.shape().ToString()));
    }
  }
  return Status::OK();
}

}  // namespace mmlib::check
