#!/usr/bin/env python3
"""Deprecated shim: the regex lint was replaced by the tools/mmlint package.

Run `python3 -m tools.mmlint` instead — same nine rules, now on a real
token stream, plus layering and call-graph checks. This wrapper forwards
all arguments so existing invocations keep working.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from tools.mmlint.cli import main  # noqa: E402


if __name__ == "__main__":
    print("tools/lint.py is deprecated; use `python3 -m tools.mmlint`",
          file=sys.stderr)
    sys.exit(main())
