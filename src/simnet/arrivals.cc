#include "simnet/arrivals.h"

#include <cmath>

namespace mmlib::simnet {

double ArrivalProcess::NextArrivalSeconds() {
  // Exponential interarrival via inverse transform. NextDouble() is in
  // [0, 1); flip to (0, 1] so the log argument is never zero.
  const double u = 1.0 - rng_.NextDouble();
  next_seconds_ += -std::log(u) / rate_;
  ++count_;
  return next_seconds_;
}

uint64_t MixHash(uint64_t key) {
  // SplitMix64 finalizer: full-avalanche 64-bit mix, stable across
  // platforms (same constants as util/random.h's stream expansion).
  uint64_t z = key + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t ClientPopulation::ClientFor(uint64_t sequence) const {
  return MixHash(seed_ ^ MixHash(sequence)) % size_;
}

}  // namespace mmlib::simnet
