/// Reproduces paper Figure 2: the serial and the parallel method compute
/// similar but different floating-point results for the same dot product.
#include <cinttypes>
#include <cstdio>

#include "bench/bench_common.h"
#include "tensor/tensor.h"
#include "util/random.h"
#include "util/thread_pool.h"

using namespace mmlib;

namespace {

/// Dot product on a thread pool under the deterministic-chunking contract:
/// fixed chunk boundaries (a pure function of n), per-chunk partial sums,
/// fixed-order reduction. Unlike DotParallel's scheduler-order association,
/// the result cannot depend on the pool size.
float DotPoolDeterministic(const float* a, const float* b, size_t n,
                           util::ThreadPool* pool) {
  const int64_t total = static_cast<int64_t>(n);
  const int64_t grain = util::GrainForMaxChunks(total, 32);
  const size_t num_chunks = static_cast<size_t>(util::NumChunks(total, grain));
  std::vector<float> partial(num_chunks, 0.0f);
  pool->ParallelFor(total, grain,
                    [&](int64_t begin, int64_t end, size_t chunk) {
                      partial[chunk] = DotSerial(a + begin, b + begin,
                                                 static_cast<size_t>(end - begin));
                    });
  float sum = 0.0f;
  for (size_t c = 0; c < num_chunks; ++c) {
    sum += partial[c];
  }
  return sum;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 2", "Serial vs parallel dot-product results",
      "Same input vectors; the parallel method computes per-chunk partial\n"
      "sums and combines them, changing the floating-point association\n"
      "order (paper Section 2.3, Floating-point Arithmetic).");

  TablePrinter table({"n", "chunks", "serial", "parallel", "bit-identical",
                      "|diff|"});
  int differing = 0;
  int total = 0;
  for (size_t n : {1024, 4096, 16384, 65536}) {
    for (size_t chunks : {2, 8, 32}) {
      Rng rng(n + chunks);
      std::vector<float> a(n);
      std::vector<float> b(n);
      for (size_t i = 0; i < n; ++i) {
        a[i] = rng.NextUniform(-10.0f, 10.0f);
        b[i] = rng.NextUniform(-10.0f, 10.0f);
      }
      const float serial = DotSerial(a.data(), b.data(), n);
      const float parallel = DotParallel(a.data(), b.data(), n, chunks);
      char sbuf[32];
      char pbuf[32];
      char dbuf[32];
      std::snprintf(sbuf, sizeof(sbuf), "%.6f", serial);
      std::snprintf(pbuf, sizeof(pbuf), "%.6f", parallel);
      std::snprintf(dbuf, sizeof(dbuf), "%.3g",
                    std::abs(serial - parallel));
      table.AddRow({std::to_string(n), std::to_string(chunks), sbuf, pbuf,
                    serial == parallel ? "yes" : "no", dbuf});
      ++total;
      if (serial != parallel) {
        ++differing;
      }
    }
  }
  table.Print(std::cout);
  std::printf(
      "\n%d of %d configurations produce a different float result under the\n"
      "parallel association order — reproducing inference requires\n"
      "deterministic, fixed-order reductions (paper Section 2.4).\n",
      differing, total);

  // Counterpart: the thread pool's deterministic chunking keeps the result
  // bit-identical at every pool size — parallelism without the Figure 2
  // divergence.
  TablePrinter pool_table({"n", "pool threads", "result", "== 1-thread"});
  int pool_mismatches = 0;
  for (size_t n : {1024, 16384, 65536}) {
    Rng rng(n);
    std::vector<float> a(n);
    std::vector<float> b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng.NextUniform(-10.0f, 10.0f);
      b[i] = rng.NextUniform(-10.0f, 10.0f);
    }
    util::ThreadPool serial(1);
    const float reference = DotPoolDeterministic(a.data(), b.data(), n,
                                                 &serial);
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      util::ThreadPool pool(threads);
      const float result = DotPoolDeterministic(a.data(), b.data(), n, &pool);
      char rbuf[32];
      std::snprintf(rbuf, sizeof(rbuf), "%.6f", result);
      pool_table.AddRow({std::to_string(n), std::to_string(threads), rbuf,
                         result == reference ? "yes" : "NO"});
      if (result != reference) {
        ++pool_mismatches;
      }
    }
  }
  std::printf("\n");
  pool_table.Print(std::cout);
  std::printf(
      "\ndeterministic chunking: %d mismatches across pool sizes (expected "
      "0).\n",
      pool_mismatches);
  return pool_mismatches == 0 ? 0 : 1;
}
