// fixture-path: src/collective/fixture_ring.cc
//
// Collective sinks (SendChunk / ReduceChunk / CommitStep) mirror the real
// src/collective/ring.cc shape: the sink's own definition carries the crash
// point, so every call site is covered through the call edge. A commit call
// routed around the guarded definition must be flagged.

namespace mmlib::collective {

void SendChunk(int from, int to) {
  MMLIB_CRASH_POINT("collective.send");
  Transfer(from, to);
}

void ReduceChunk(int receiver) {
  MMLIB_CRASH_POINT("collective.reduce");
  Accumulate(receiver);
}

void RingLoop(int members) {
  for (int rank = 0; rank < members; ++rank) {
    SendChunk(rank, rank + 1);  // covered: crash point in the sink itself
    ReduceChunk(rank + 1);      // covered
  }
}

void CoveredCommit(int members) {
  MMLIB_CRASH_POINT("collective.commit");
  CommitStep(members);  // covered: guarded at the call site
}

void UncoveredCommit(int members) {
  CommitStep(members);  // finding: no crash point reachable
}

}  // namespace mmlib::collective
