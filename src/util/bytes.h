#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace mmlib {

/// A growable byte buffer used as the serialization target across mmlib.
using Bytes = std::vector<uint8_t>;

/// Appends primitive values to a byte buffer in little-endian order.
/// BytesWriter never fails; the buffer grows as needed.
class BytesWriter {
 public:
  BytesWriter() = default;

  void WriteU8(uint8_t v) { buffer_.push_back(v); }
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }
  void WriteF32(float v);
  void WriteF64(double v);
  /// Writes a length-prefixed (u64) string.
  void WriteString(std::string_view s);
  /// Writes a length-prefixed (u64) blob.
  void WriteBlob(const uint8_t* data, size_t size);
  void WriteBlob(const Bytes& data) { WriteBlob(data.data(), data.size()); }
  /// Writes raw bytes without a length prefix.
  void WriteRaw(const uint8_t* data, size_t size);

  const Bytes& bytes() const { return buffer_; }
  Bytes TakeBytes() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  Bytes buffer_;
};

/// Reads primitive values back from a byte buffer. All reads are
/// bounds-checked and return Corruption on truncated input.
class BytesReader {
 public:
  explicit BytesReader(const Bytes& buffer)
      : data_(buffer.data()), size_(buffer.size()) {}
  BytesReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<float> ReadF32();
  Result<double> ReadF64();
  Result<std::string> ReadString();
  Result<Bytes> ReadBlob();
  /// Copies `size` raw bytes into `out`.
  Status ReadRaw(uint8_t* out, size_t size);

  size_t remaining() const { return size_ - offset_; }
  size_t offset() const { return offset_; }
  bool AtEnd() const { return offset_ == size_; }

 private:
  Status CheckAvailable(size_t n) const;

  const uint8_t* data_;
  size_t size_;
  size_t offset_ = 0;
};

/// Converts bytes to a lowercase hex string.
std::string ToHex(const uint8_t* data, size_t size);
std::string ToHex(const Bytes& data);

/// Parses a hex string back into bytes; fails on odd length or non-hex chars.
Result<Bytes> FromHex(std::string_view hex);

/// Convenience conversions between Bytes and std::string payloads.
Bytes StringToBytes(std::string_view s);
std::string BytesToString(const Bytes& b);

}  // namespace mmlib

