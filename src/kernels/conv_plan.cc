#include "kernels/conv_plan.h"

#include <algorithm>

#include "kernels/gemm.h"

namespace mmlib::kernels {

namespace {

/// Below this many multiply-adds per (sample, group) GEMM, packing costs
/// more than it saves; the plan keeps the direct loop.
constexpr int64_t kMinGemmWork = 16384;

/// Forward chunk cap, matching the layer's historical constant: enough
/// slack for 16-way pools, small enough that per-chunk packing stays
/// amortized. A constant so chunk boundaries never depend on the pool.
constexpr int64_t kMaxForwardChunks = 64;

/// Backward chunk cap: every chunk carries a full weight-gradient scratch
/// buffer, so this also bounds scratch memory.
constexpr int64_t kMaxBackwardChunks = 8;

}  // namespace

ConvPlan::ConvPlan(const ConvGeom& geom) : geom_(geom) {
  const int64_t m = geom.group_out();
  const int64_t k = geom.patch_size();
  const int64_t n = geom.out_pixels();

  const bool depthwise = geom.group_in() == 1 && geom.group_out() == 1;
  if (depthwise || m * k * n < kMinGemmWork) {
    algo_ = ConvAlgo::kDirect;
    return;
  }
  algo_ = geom.is_pointwise() ? ConvAlgo::kPointwiseGemm
                              : ConvAlgo::kIm2ColGemm;

  // NC: bound the packed im2col tile (K x NC floats) to ~L2 while keeping
  // whole panels; KC: L1-resident B panel slices.
  constexpr int64_t kMaxTileFloats = 64 * 1024;  // 256 KiB
  int64_t nc = std::min<int64_t>(256, kMaxTileFloats / std::max<int64_t>(k, 1));
  nc = std::max<int64_t>(nc - nc % kGemmNR, kGemmNR);
  nc_ = std::min(nc, CeilDiv(n, kGemmNR) * kGemmNR);
  kc_ = std::min<int64_t>(kGemmKC, k);
  forward_col_tiles_ = CeilDiv(n, nc_);
  backward_chunks_ =
      util::NumChunks(geom.batch * geom.groups,
                      util::GrainForMaxChunks(geom.batch * geom.groups,
                                              kMaxBackwardChunks));

  // Loop orders: keep the smaller operand cache-resident (see GemmPacked).
  forward_rows_outer_ = m > nc_;           // A = weights (m x k)
  data_grad_rows_outer_ = k > nc_;         // A = W^T (k x m)
  weight_grad_rows_outer_ = m > k;         // A = gout tile (m x nc)
}

void ConvPlan::Forward(const float* input, const float* weight, float* output,
                       util::ThreadPool* pool) const {
  const int64_t m = geom_.group_out();
  const int64_t k = geom_.patch_size();
  const int64_t n = geom_.out_pixels();
  const int64_t tiles = forward_col_tiles_;
  const int64_t tasks = geom_.batch * geom_.groups * tiles;

  // Weights packed once per call, shared read-only by every chunk.
  const int64_t strip_floats = PackedStripFloats(m, k);
  util::ScratchPool::Lease a_lease =
      scratch_.Acquire(static_cast<size_t>(geom_.groups * strip_floats));
  for (int64_t g = 0; g < geom_.groups; ++g) {
    PackStrips(weight + g * m * k, m, k, 0, k,
               a_lease.data() + g * strip_floats);
  }
  const float* a_pack = a_lease.data();

  const int64_t panel_floats = PackedPanelFloats(k, nc_);
  const int64_t grain = util::GrainForMaxChunks(tasks, kMaxForwardChunks);
  util::ParallelFor(
      pool, tasks, grain,
      [&](int64_t begin, int64_t end, size_t /*chunk_index*/) {
        util::ScratchPool::Lease b_lease =
            scratch_.Acquire(static_cast<size_t>(panel_floats));
        for (int64_t t = begin; t < end; ++t) {
          const int64_t n_idx = t / (geom_.groups * tiles);
          const int64_t rem = t % (geom_.groups * tiles);
          const int64_t g = rem / tiles;
          const int64_t tile = rem % tiles;
          const int64_t col_begin = tile * nc_;
          const int64_t ncols = std::min(nc_, n - col_begin);
          Im2ColPanels(geom_, input, n_idx, g, col_begin, ncols,
                       b_lease.data());
          float* c = output + (n_idx * geom_.out_channels + g * m) * n +
                     col_begin;
          GemmPacked(a_pack + g * strip_floats, b_lease.data(), m, ncols, k,
                     kc_, c, n, /*accumulate=*/false, forward_rows_outer_,
                     /*bias=*/nullptr);
        }
      });
}

void ConvPlan::Backward(const float* input, const float* weight,
                        const float* grad_output, float* grad_input,
                        float* grad_weight, util::ThreadPool* pool) const {
  const int64_t m = geom_.group_out();
  const int64_t k = geom_.patch_size();
  const int64_t n = geom_.out_pixels();
  const int64_t gw_numel = geom_.out_channels * k;
  const int64_t tasks = geom_.batch * geom_.groups;

  // W^T packed once per call (strips over patch rows, k dimension = m).
  const int64_t wt_strip_floats = PackedStripFloats(k, m);
  util::ScratchPool::Lease wt_lease =
      scratch_.Acquire(static_cast<size_t>(geom_.groups * wt_strip_floats));
  for (int64_t g = 0; g < geom_.groups; ++g) {
    PackStripsTransposed(weight + g * m * k, m, k, k,
                         wt_lease.data() + g * wt_strip_floats);
  }
  const float* wt_pack = wt_lease.data();

  // Per-chunk weight-gradient scratch, reduced in chunk order below. The
  // chunk count is a constant of the plan, so the reduction order is a
  // pure function of shape.
  const int64_t grain = util::GrainForMaxChunks(tasks, kMaxBackwardChunks);
  const int64_t num_chunks = util::NumChunks(tasks, grain);
  util::ScratchPool::Lease gw_lease =
      scratch_.Acquire(static_cast<size_t>(num_chunks * gw_numel));
  float* gw_scratch = gw_lease.data();
  std::fill(gw_scratch, gw_scratch + num_chunks * gw_numel, 0.0f);

  // Per-chunk tile scratch: gout panels + gout strips + colgrad tile +
  // patch panels, carved out of one lease.
  const int64_t gout_panel_floats = PackedPanelFloats(m, nc_);
  const int64_t gout_strip_floats = PackedStripFloats(m, nc_);
  const int64_t colgrad_floats = k * nc_;
  const int64_t patch_panel_floats = PackedPanelFloats(nc_, k);
  const int64_t chunk_floats = gout_panel_floats + gout_strip_floats +
                               colgrad_floats + patch_panel_floats;
  const int64_t kc_m = std::min<int64_t>(kGemmKC, m);

  util::ParallelFor(
      pool, tasks, grain,
      [&](int64_t begin, int64_t end, size_t chunk_index) {
        util::ScratchPool::Lease lease =
            scratch_.Acquire(static_cast<size_t>(chunk_floats));
        float* gout_panels = lease.data();
        float* gout_strips = gout_panels + gout_panel_floats;
        float* colgrad = gout_strips + gout_strip_floats;
        float* patch_panels = colgrad + colgrad_floats;
        float* gw_chunk =
            gw_scratch + static_cast<int64_t>(chunk_index) * gw_numel;
        for (int64_t t = begin; t < end; ++t) {
          const int64_t n_idx = t / geom_.groups;
          const int64_t g = t % geom_.groups;
          const float* gout_base =
              grad_output + (n_idx * geom_.out_channels + g * m) * n;
          for (int64_t col_begin = 0; col_begin < n; col_begin += nc_) {
            const int64_t ncols = std::min(nc_, n - col_begin);
            // Data gradient: colgrad = W^T . gout, then scatter. Pixel
            // tiles run in order, so the scatter's add order per
            // grad_input element is pixel-major exactly as in the direct
            // loop.
            PackPanels(gout_base, m, n, col_begin, ncols, gout_panels);
            GemmPacked(wt_pack + g * wt_strip_floats, gout_panels, k, ncols,
                       m, kc_m, colgrad, ncols, /*accumulate=*/false,
                       data_grad_rows_outer_, /*bias=*/nullptr);
            Col2ImScatter(geom_, colgrad, n_idx, g, col_begin, ncols,
                          grad_input);
            // Weight gradient: gw_chunk += gout_tile . col_tile^T. The
            // GEMM reduction dimension is the pixel tile, accumulated in
            // pixel order; tiles and samples accumulate in ascending
            // order, preserving the (sample, pixel) reduction order of
            // the reference kernel.
            PackStrips(gout_base, m, n, col_begin, ncols, gout_strips);
            Im2ColPatchPanels(geom_, input, n_idx, g, col_begin, ncols,
                              patch_panels);
            GemmPacked(gout_strips, patch_panels, m, k, ncols,
                       std::min<int64_t>(kGemmKC, ncols),
                       gw_chunk + g * m * k, k, /*accumulate=*/true,
                       weight_grad_rows_outer_, /*bias=*/nullptr);
          }
        }
      });

  // Fixed-order reduction of the per-chunk weight gradients.
  for (int64_t c = 0; c < num_chunks; ++c) {
    const float* gw_chunk = gw_scratch + c * gw_numel;
    for (int64_t j = 0; j < gw_numel; ++j) {
      grad_weight[j] += gw_chunk[j];
    }
  }
}

}  // namespace mmlib::kernels
