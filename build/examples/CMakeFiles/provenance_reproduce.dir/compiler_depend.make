# Empty compiler generated dependencies file for provenance_reproduce.
# This may be replaced when dependencies are built.
