#pragma once

#include <cstdint>

#include "core/save_service.h"
#include "hash/merkle_tree.h"

namespace mmlib::core {

/// Parameter update approach (PUA, paper Section 3.2): an initial model is
/// saved exactly like the baseline; a derived model is saved as a reference
/// to its base model plus only the layers whose parameters changed.
///
/// Changed layers are found by comparing Merkle trees of per-layer hashes
/// (Figure 4), so saving never has to recover the base model's parameters —
/// only the base's persisted Merkle tree is loaded.
class ParamUpdateSaveService : public SaveService {
 public:
  explicit ParamUpdateSaveService(StorageBackends backends)
      : SaveService(backends) {}

  std::string_view approach() const override { return kApproachParamUpdate; }

  Result<SaveResult> DoSaveModel(const SaveRequest& request) override;

  /// Statistics of the most recent derived save.
  struct DiffStats {
    size_t changed_layers = 0;
    size_t total_layers = 0;
    size_t merkle_comparisons = 0;
  };
  const DiffStats& last_diff_stats() const { return last_diff_stats_; }

  /// Base Merkle trees re-fetched because the payload arrived corrupted.
  uint64_t corruption_refetches() const { return corruption_refetches_; }

 private:
  DiffStats last_diff_stats_;
  uint64_t corruption_refetches_ = 0;
};

}  // namespace mmlib::core

