#pragma once

#include <memory>
#include <string>
#include <vector>

#include "kernels/conv_plan.h"
#include "nn/layer.h"

namespace mmlib::nn {

/// 2D convolution over NCHW inputs, optionally grouped (groups == in_channels
/// gives a depthwise convolution as used by MobileNetV2). No bias — all zoo
/// architectures follow conv → batch-norm, where a bias is redundant.
///
/// Determinism: in deterministic mode, non-trivial shapes run through a
/// kernels::ConvPlan (im2col + cache-blocked GEMM) whose reduction order is
/// a pure function of the shape, so results are bit-identical at any pool
/// size. Depthwise/tiny shapes, and every non-deterministic execution, use
/// the direct loop below; non-deterministic mode keeps its scheduler-driven
/// reduction splits (the mechanism behind paper Figure 13's determinism
/// overhead comparison).
class Conv2d : public Layer {
 public:
  Conv2d(std::string name, int64_t in_channels, int64_t out_channels,
         int64_t kernel_size, int64_t stride, int64_t padding, int64_t groups,
         Rng* rng);

  std::string_view type() const override { return "conv2d"; }

  Result<Tensor> Forward(const std::vector<const Tensor*>& inputs,
                         ExecutionContext* ctx) override;
  Result<std::vector<Tensor>> Backward(const Tensor& grad_output,
                                       ExecutionContext* ctx) override;

  int64_t in_channels() const { return in_channels_; }
  int64_t out_channels() const { return out_channels_; }
  int64_t kernel_size() const { return kernel_size_; }

 private:
  /// Copies the receptive field at (oy, ox) for group `g` of sample `n`
  /// into `patch` (zero-padded borders).
  void GatherPatch(const float* input, int64_t height, int64_t width,
                   int64_t n, int64_t g, int64_t oy, int64_t ox,
                   float* patch) const;

  int64_t in_channels_;
  int64_t out_channels_;
  int64_t kernel_size_;
  int64_t stride_;
  int64_t padding_;
  int64_t groups_;
  int64_t group_in_;   // in channels per group
  int64_t group_out_;  // out channels per group
  Tensor cached_input_;
  int64_t cached_out_h_ = 0;  // output extent of the last Forward
  int64_t cached_out_w_ = 0;
  bool has_forward_ = false;
  /// Plan for the last Forward geometry; refreshed from the PlanCache when
  /// the input shape changes. Null until the first deterministic Forward.
  std::shared_ptr<const kernels::ConvPlan> plan_;
};

}  // namespace mmlib::nn

