#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace mmlib::util {

/// Suffix appended to a destination path while its content is being
/// written; the temporary is renamed over the destination only after a
/// successful flush. Readers and the stores' accounting ignore files with
/// this suffix, so an interrupted write is never visible as stored data.
inline constexpr const char* kTmpSuffix = ".tmp";

/// Crash-safe whole-file write: writes `size` bytes to `path + ".tmp"`,
/// flushes, then atomically renames the temporary over `path`. On any
/// failure the temporary is removed (best effort) and `path` is left
/// untouched — either the old content or nothing, never a truncated file.
Status AtomicWriteFile(const std::string& path, const uint8_t* data,
                       size_t size);

/// Removes the file at `path`. Distinguishes the two failure modes that
/// std::filesystem::remove conflates for callers: NotFound when there was
/// nothing to remove, IoError when removal itself failed (permissions,
/// non-empty directory in the file's place, ...). `what` names the entity
/// in error messages, e.g. "file file-3" or "document d in models".
Status RemoveFileStrict(const std::string& path, const std::string& what);

/// Number of regular files directly under `dir` whose name ends with
/// `suffix`. Returns 0 when `dir` does not exist.
size_t CountFilesWithSuffix(const std::string& dir, const std::string& suffix,
                            bool recursive = false);

/// Total size in bytes of regular files under `dir` whose name ends with
/// `suffix`. Returns 0 when `dir` does not exist.
size_t TotalBytesWithSuffix(const std::string& dir, const std::string& suffix,
                            bool recursive = false);

}  // namespace mmlib::util
