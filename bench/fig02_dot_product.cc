/// Reproduces paper Figure 2: the serial and the parallel method compute
/// similar but different floating-point results for the same dot product.
#include <cinttypes>
#include <cstdio>

#include "bench/bench_common.h"
#include "tensor/tensor.h"
#include "util/random.h"

using namespace mmlib;

int main() {
  bench::PrintHeader(
      "Figure 2", "Serial vs parallel dot-product results",
      "Same input vectors; the parallel method computes per-chunk partial\n"
      "sums and combines them, changing the floating-point association\n"
      "order (paper Section 2.3, Floating-point Arithmetic).");

  TablePrinter table({"n", "chunks", "serial", "parallel", "bit-identical",
                      "|diff|"});
  int differing = 0;
  int total = 0;
  for (size_t n : {1024, 4096, 16384, 65536}) {
    for (size_t chunks : {2, 8, 32}) {
      Rng rng(n + chunks);
      std::vector<float> a(n);
      std::vector<float> b(n);
      for (size_t i = 0; i < n; ++i) {
        a[i] = rng.NextUniform(-10.0f, 10.0f);
        b[i] = rng.NextUniform(-10.0f, 10.0f);
      }
      const float serial = DotSerial(a.data(), b.data(), n);
      const float parallel = DotParallel(a.data(), b.data(), n, chunks);
      char sbuf[32];
      char pbuf[32];
      char dbuf[32];
      std::snprintf(sbuf, sizeof(sbuf), "%.6f", serial);
      std::snprintf(pbuf, sizeof(pbuf), "%.6f", parallel);
      std::snprintf(dbuf, sizeof(dbuf), "%.3g",
                    std::abs(serial - parallel));
      table.AddRow({std::to_string(n), std::to_string(chunks), sbuf, pbuf,
                    serial == parallel ? "yes" : "no", dbuf});
      ++total;
      if (serial != parallel) {
        ++differing;
      }
    }
  }
  table.Print(std::cout);
  std::printf(
      "\n%d of %d configurations produce a different float result under the\n"
      "parallel association order — reproducing inference requires\n"
      "deterministic, fixed-order reductions (paper Section 2.4).\n",
      differing, total);
  return 0;
}
