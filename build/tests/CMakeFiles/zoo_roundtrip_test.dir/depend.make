# Empty dependencies file for zoo_roundtrip_test.
# This may be replaced when dependencies are built.
