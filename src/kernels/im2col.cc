#include "kernels/im2col.h"

#include <algorithm>

#include "kernels/gemm.h"

namespace mmlib::kernels {

namespace {

/// Input plane base of (sample n, channel c).
inline const float* PlaneOf(const ConvGeom& g, const float* input, int64_t n,
                            int64_t channel) {
  return input + (n * g.in_channels + channel) * g.height * g.width;
}

}  // namespace

void Im2ColPanels(const ConvGeom& geom, const float* input, int64_t n,
                  int64_t g, int64_t col_begin, int64_t ncols, float* dst) {
  const int64_t NR = kGemmNR;
  const int64_t K = geom.patch_size();
  const int64_t panels = CeilDiv(ncols, NR);

  if (geom.is_pointwise()) {
    // col[k][pix] is just channel plane k of the group: contiguous copies.
    for (int64_t p = 0; p < panels; ++p) {
      float* out = dst + p * K * NR;
      const int64_t base = col_begin + p * NR;
      const int64_t live = std::min(NR, ncols - p * NR);
      for (int64_t c = 0; c < K; ++c) {
        const float* plane = PlaneOf(geom, input, n, g * geom.group_in() + c);
        for (int64_t j = 0; j < NR; ++j) {
          out[c * NR + j] = j < live ? plane[base + j] : 0.0f;
        }
      }
    }
    return;
  }

  const int64_t kernel = geom.kernel;
  for (int64_t p = 0; p < panels; ++p) {
    float* out = dst + p * K * NR;
    const int64_t live = std::min(NR, ncols - p * NR);
    // Per-panel pixel coordinates, hoisted out of the k loop.
    int64_t base_y[kGemmNR];
    int64_t base_x[kGemmNR];
    for (int64_t j = 0; j < NR; ++j) {
      const int64_t pix = col_begin + p * NR + (j < live ? j : live - 1);
      base_y[j] = (pix / geom.out_w) * geom.stride - geom.padding;
      base_x[j] = (pix % geom.out_w) * geom.stride - geom.padding;
    }
    int64_t k = 0;
    for (int64_t c = 0; c < geom.group_in(); ++c) {
      const float* plane = PlaneOf(geom, input, n, g * geom.group_in() + c);
      for (int64_t ky = 0; ky < kernel; ++ky) {
        for (int64_t kx = 0; kx < kernel; ++kx, ++k) {
          float* orow = out + k * NR;
          for (int64_t j = 0; j < NR; ++j) {
            const int64_t y = base_y[j] + ky;
            const int64_t x = base_x[j] + kx;
            const bool in = j < live && y >= 0 && y < geom.height && x >= 0 &&
                            x < geom.width;
            orow[j] = in ? plane[y * geom.width + x] : 0.0f;
          }
        }
      }
    }
  }
}

void Im2ColPatchPanels(const ConvGeom& geom, const float* input, int64_t n,
                       int64_t g, int64_t col_begin, int64_t ncols,
                       float* dst) {
  const int64_t NR = kGemmNR;
  const int64_t K = geom.patch_size();
  const int64_t panels = CeilDiv(K, NR);
  const int64_t taps = geom.kernel * geom.kernel;

  for (int64_t p = 0; p < panels; ++p) {
    float* out = dst + p * ncols * NR;
    const int64_t live = std::min(NR, K - p * NR);
    // Decompose the panel's patch indices once.
    const float* plane[kGemmNR];
    int64_t off_y[kGemmNR];
    int64_t off_x[kGemmNR];
    for (int64_t j = 0; j < NR; ++j) {
      const int64_t k = p * NR + (j < live ? j : live - 1);
      const int64_t c = k / taps;
      const int64_t t = k % taps;
      plane[j] = PlaneOf(geom, input, n, g * geom.group_in() + c);
      off_y[j] = t / geom.kernel;
      off_x[j] = t % geom.kernel;
    }
    for (int64_t pix = 0; pix < ncols; ++pix) {
      const int64_t abs_pix = col_begin + pix;
      const int64_t base_y = (abs_pix / geom.out_w) * geom.stride -
                             geom.padding;
      const int64_t base_x = (abs_pix % geom.out_w) * geom.stride -
                             geom.padding;
      float* orow = out + pix * NR;
      for (int64_t j = 0; j < NR; ++j) {
        const int64_t y = base_y + off_y[j];
        const int64_t x = base_x + off_x[j];
        const bool in = j < live && y >= 0 && y < geom.height && x >= 0 &&
                        x < geom.width;
        orow[j] = in ? plane[j][y * geom.width + x] : 0.0f;
      }
    }
  }
}

void Col2ImScatter(const ConvGeom& geom, const float* colgrad, int64_t n,
                   int64_t g, int64_t col_begin, int64_t ncols,
                   float* grad_input) {
  const int64_t K = geom.patch_size();
  const int64_t kernel = geom.kernel;
  const int64_t plane_size = geom.height * geom.width;
  float* group_base =
      grad_input + (n * geom.in_channels + g * geom.group_in()) * plane_size;

  if (geom.is_pointwise()) {
    for (int64_t pix = 0; pix < ncols; ++pix) {
      const int64_t abs_pix = col_begin + pix;
      for (int64_t c = 0; c < K; ++c) {
        group_base[c * plane_size + abs_pix] += colgrad[c * ncols + pix];
      }
    }
    return;
  }

  for (int64_t pix = 0; pix < ncols; ++pix) {
    const int64_t abs_pix = col_begin + pix;
    const int64_t base_y = (abs_pix / geom.out_w) * geom.stride -
                           geom.padding;
    const int64_t base_x = (abs_pix % geom.out_w) * geom.stride -
                           geom.padding;
    int64_t k = 0;
    for (int64_t c = 0; c < geom.group_in(); ++c) {
      float* plane = group_base + c * plane_size;
      for (int64_t ky = 0; ky < kernel; ++ky) {
        const int64_t y = base_y + ky;
        for (int64_t kx = 0; kx < kernel; ++kx, ++k) {
          const int64_t x = base_x + kx;
          if (y >= 0 && y < geom.height && x >= 0 && x < geom.width) {
            plane[y * geom.width + x] += colgrad[k * ncols + pix];
          }
        }
      }
    }
  }
}

}  // namespace mmlib::kernels
