#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.h"
#include "util/random.h"

namespace mmlib::nn {
namespace {

TEST(CrossEntropyTest, UniformLogitsGiveLogC) {
  Tensor logits(Shape{2, 4});  // all-zero logits: uniform distribution
  auto result = SoftmaxCrossEntropy(logits, {0, 3}).value();
  EXPECT_NEAR(result.loss, std::log(4.0f), 1e-5f);
}

TEST(CrossEntropyTest, ConfidentCorrectPredictionHasLowLoss) {
  Tensor logits(Shape{1, 3}, {10.0f, -10.0f, -10.0f});
  auto result = SoftmaxCrossEntropy(logits, {0}).value();
  EXPECT_LT(result.loss, 1e-3f);
}

TEST(CrossEntropyTest, GradientRowsSumToZero) {
  Rng rng(1);
  Tensor logits = Tensor::Gaussian(Shape{4, 7}, 2.0f, &rng);
  auto result = SoftmaxCrossEntropy(logits, {0, 1, 2, 3}).value();
  for (int64_t n = 0; n < 4; ++n) {
    double sum = 0;
    for (int64_t c = 0; c < 7; ++c) {
      sum += result.grad_logits.at(n * 7 + c);
    }
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(CrossEntropyTest, GradientMatchesFiniteDifferences) {
  Rng rng(2);
  Tensor logits = Tensor::Gaussian(Shape{2, 5}, 1.0f, &rng);
  const std::vector<int64_t> labels{1, 4};
  auto analytic = SoftmaxCrossEntropy(logits, labels).value();
  const float eps = 1e-3f;
  for (int64_t i = 0; i < logits.numel(); ++i) {
    Tensor perturbed = logits;
    perturbed.at(i) += eps;
    const float plus = SoftmaxCrossEntropy(perturbed, labels).value().loss;
    perturbed.at(i) -= 2 * eps;
    const float minus = SoftmaxCrossEntropy(perturbed, labels).value().loss;
    const float numeric = (plus - minus) / (2 * eps);
    EXPECT_NEAR(analytic.grad_logits.at(i), numeric, 1e-3f);
  }
}

TEST(CrossEntropyTest, NumericallyStableForLargeLogits) {
  Tensor logits(Shape{1, 2}, {1000.0f, -1000.0f});
  auto result = SoftmaxCrossEntropy(logits, {0}).value();
  EXPECT_TRUE(std::isfinite(result.loss));
  EXPECT_NEAR(result.loss, 0.0f, 1e-5f);
}

TEST(CrossEntropyTest, RejectsBadInputs) {
  Tensor logits(Shape{2, 3});
  EXPECT_FALSE(SoftmaxCrossEntropy(logits, {0}).ok());          // count
  EXPECT_FALSE(SoftmaxCrossEntropy(logits, {0, 5}).ok());       // range
  EXPECT_FALSE(SoftmaxCrossEntropy(logits, {0, -1}).ok());      // negative
  Tensor bad_rank(Shape{6});
  EXPECT_FALSE(SoftmaxCrossEntropy(bad_rank, {0}).ok());
}

TEST(AccuracyTest, CountsArgmaxMatches) {
  Tensor logits(Shape{3, 2}, {2.0f, 1.0f,   // -> 0
                              0.0f, 5.0f,   // -> 1
                              3.0f, 4.0f}); // -> 1
  EXPECT_FLOAT_EQ(Accuracy(logits, {0, 1, 0}).value(), 2.0f / 3.0f);
  EXPECT_FLOAT_EQ(Accuracy(logits, {1, 0, 0}).value(), 0.0f);
}

TEST(AccuracyTest, RejectsMismatchedLabels) {
  Tensor logits(Shape{2, 2});
  EXPECT_FALSE(Accuracy(logits, {0}).ok());
}

}  // namespace
}  // namespace mmlib::nn
