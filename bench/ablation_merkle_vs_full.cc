/// Ablation (paper Section 3.2): when saving a derived model, the PUA must
/// find the layers that changed relative to the base model. This compares
/// the paper's design — load only the base's persisted Merkle tree and diff
/// — against the naive alternative of recursively recovering the base model
/// and comparing parameters layer by layer, across chain depths.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/model_code.h"
#include "core/param_update.h"
#include "core/recover.h"
#include "env/environment.h"
#include "util/clock.h"

using namespace mmlib;
using namespace mmlib::bench;

int main() {
  PrintHeader(
      "Ablation", "Merkle diff vs full base recovery when saving (PUA)",
      "Chain of partially updated MobileNetV2 versions; at each depth the\n"
      "changed-layer set is computed both ways.");

  const models::ModelConfig model_config =
      StorageScaleModel(models::Architecture::kMobileNetV2);
  auto model = models::BuildModel(model_config).value();
  models::ApplyPartialUpdateFreeze(&model);
  const env::EnvironmentInfo environment = env::CollectEnvironment();

  Backing backing;
  core::ParamUpdateSaveService service(backing.backends);
  core::ModelRecoverer recoverer(backing.backends);

  core::SaveRequest request;
  request.model = &model;
  request.code = core::CodeDescriptorFor(model_config);
  request.environment = &environment;
  std::string base_id = service.SaveModel(request).value().model_id;

  TablePrinter table({"chain depth", "merkle diff", "full recovery + compare",
                      "speedup", "hash comparisons", "naive comparisons"});
  Rng rng(1);
  for (int depth = 1; depth <= 6; ++depth) {
    // Perturb the classifier (simulated partial update).
    for (size_t i = 0; i < model.node_count(); ++i) {
      for (nn::Param& param : model.layer(i)->params()) {
        if (param.trainable && !param.is_buffer) {
          for (int64_t k = 0; k < param.value.numel(); ++k) {
            param.value.at(k) += rng.NextGaussian() * 0.01f;
          }
        }
      }
    }

    // (a) Paper design: base Merkle tree + diff.
    Stopwatch merkle_watch;
    auto base_doc =
        backing.docs.Get(core::kModelsCollection, base_id).value();
    auto merkle_bytes =
        backing.files.LoadFile(base_doc.GetString("merkle_file").value())
            .value();
    auto base_tree = MerkleTree::Deserialize(merkle_bytes).value();
    auto tree = model.BuildMerkleTree().value();
    auto diff = MerkleTree::Diff(base_tree, tree).value();
    const double merkle_seconds = merkle_watch.ElapsedSeconds();

    // (b) Naive: recover the base model recursively, compare layer-wise.
    Stopwatch full_watch;
    core::RecoverOptions options;
    options.verify_checksum = false;
    options.check_environment = false;
    auto recovered = recoverer.Recover(base_id, options).value();
    std::vector<size_t> naive_changed;
    for (size_t i = 0; i < model.node_count(); ++i) {
      if (model.layer(i)->ParamHash() !=
          recovered.model.layer(i)->ParamHash()) {
        naive_changed.push_back(i);
      }
    }
    const double full_seconds = full_watch.ElapsedSeconds();

    if (naive_changed != diff.changed_leaves) {
      std::fprintf(stderr, "changed-layer sets disagree at depth %d\n",
                   depth);
      return 1;
    }

    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx",
                  full_seconds / merkle_seconds);
    table.AddRow({std::to_string(depth), Millis(merkle_seconds),
                  Millis(full_seconds), speedup,
                  std::to_string(diff.comparisons),
                  std::to_string(model.node_count())});

    // Save this version to extend the chain.
    base_id = service.SaveModel([&] {
                core::SaveRequest r = request;
                r.base_model_id = base_id;
                return r;
              }())
                  .value()
                  .model_id;
  }
  table.Print(std::cout);
  std::printf(
      "\nThe Merkle design keeps save-time change detection flat while the\n"
      "naive alternative grows with chain depth (recursive recovery) —\n"
      "this is why the PUA persists layer hashes (paper Section 3.2).\n");
  return 0;
}
