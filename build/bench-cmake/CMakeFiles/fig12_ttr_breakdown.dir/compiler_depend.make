# Empty compiler generated dependencies file for fig12_ttr_breakdown.
# This may be replaced when dependencies are built.
