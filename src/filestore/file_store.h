#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "simnet/network.h"
#include "util/bytes.h"
#include "util/id_generator.h"
#include "util/result.h"

namespace mmlib::filestore {

/// Binary file persistence keyed by generated file ids — mmlib's shared
/// file system substitute (paper Section 3.1: "To save files, we use a
/// shared file system and insert an automatically generated file identifier
/// as a reference in the appropriate JSON document").
class FileStore {
 public:
  virtual ~FileStore() = default;

  /// Persists `content` and returns its generated id.
  virtual Result<std::string> SaveFile(const Bytes& content) = 0;

  /// Loads the file with `id`.
  virtual Result<Bytes> LoadFile(const std::string& id) = 0;

  /// Removes the file; NotFound if absent.
  virtual Status Delete(const std::string& id) = 0;

  /// Size of a stored file in bytes.
  virtual Result<size_t> FileSize(const std::string& id) = 0;

  /// Total bytes of all stored files.
  virtual size_t TotalStoredBytes() const = 0;

  /// Number of stored files.
  virtual size_t FileCount() const = 0;
};

/// Heap-backed store; the reference implementation.
class InMemoryFileStore : public FileStore {
 public:
  InMemoryFileStore();

  Result<std::string> SaveFile(const Bytes& content) override;
  Result<Bytes> LoadFile(const std::string& id) override;
  Status Delete(const std::string& id) override;
  Result<size_t> FileSize(const std::string& id) override;
  size_t TotalStoredBytes() const override;
  size_t FileCount() const override { return files_.size(); }

 private:
  IdGenerator id_generator_;
  std::map<std::string, Bytes> files_;
};

/// Disk-backed store writing one file per id under a root directory.
class LocalDirFileStore : public FileStore {
 public:
  static Result<std::unique_ptr<LocalDirFileStore>> Open(
      const std::string& root);

  Result<std::string> SaveFile(const Bytes& content) override;
  Result<Bytes> LoadFile(const std::string& id) override;
  Status Delete(const std::string& id) override;
  Result<size_t> FileSize(const std::string& id) override;
  size_t TotalStoredBytes() const override;
  size_t FileCount() const override;

 private:
  explicit LocalDirFileStore(std::string root);
  Result<std::string> PathFor(const std::string& id) const;

  std::string root_;
  IdGenerator id_generator_;
};

/// Decorator charging payload bytes to a simulated network link — models
/// external shared storage reached over the evaluation cluster's link.
class RemoteFileStore : public FileStore {
 public:
  RemoteFileStore(FileStore* backend, simnet::Network* network)
      : backend_(backend), network_(network) {}

  Result<std::string> SaveFile(const Bytes& content) override;
  Result<Bytes> LoadFile(const std::string& id) override;
  Status Delete(const std::string& id) override;
  Result<size_t> FileSize(const std::string& id) override {
    return backend_->FileSize(id);
  }
  size_t TotalStoredBytes() const override {
    return backend_->TotalStoredBytes();
  }
  size_t FileCount() const override { return backend_->FileCount(); }

 private:
  FileStore* backend_;
  simnet::Network* network_;
};

}  // namespace mmlib::filestore

