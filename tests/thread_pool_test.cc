#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "util/scratch_pool.h"
#include "util/worker_thread.h"

namespace mmlib::util {
namespace {

TEST(ThreadPoolTest, RunsEveryElementExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool pool(threads);
    constexpr int64_t kTotal = 1000;
    std::vector<int> counts(kTotal, 0);
    pool.ParallelFor(kTotal, /*grain=*/7,
                     [&](int64_t begin, int64_t end, size_t /*chunk*/) {
                       for (int64_t i = begin; i < end; ++i) {
                         ++counts[static_cast<size_t>(i)];
                       }
                     });
    for (int64_t i = 0; i < kTotal; ++i) {
      EXPECT_EQ(counts[static_cast<size_t>(i)], 1) << "i=" << i;
    }
  }
}

TEST(ThreadPoolTest, ZeroTotalRunsNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 8, [&](int64_t, int64_t, size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ChunkBoundariesIndependentOfThreadCount) {
  // The determinism contract: chunk decomposition is a pure function of
  // (total, grain), never of the pool size.
  using Chunk = std::tuple<int64_t, int64_t, size_t>;
  auto decompose = [](size_t threads, int64_t total, int64_t grain) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::set<Chunk> chunks;
    pool.ParallelFor(total, grain,
                     [&](int64_t begin, int64_t end, size_t index) {
                       std::lock_guard<std::mutex> lock(mu);
                       chunks.insert({begin, end, index});
                     });
    return chunks;
  };
  for (int64_t total : {1, 5, 64, 1000}) {
    for (int64_t grain : {1, 3, 64, 2000}) {
      const std::set<Chunk> reference = decompose(1, total, grain);
      EXPECT_EQ(static_cast<int64_t>(reference.size()),
                NumChunks(total, grain));
      EXPECT_EQ(decompose(2, total, grain), reference)
          << "total=" << total << " grain=" << grain;
      EXPECT_EQ(decompose(8, total, grain), reference)
          << "total=" << total << " grain=" << grain;
    }
  }
}

TEST(ThreadPoolTest, ParallelSumMatchesSerialSum) {
  constexpr int64_t kTotal = 4096;
  std::vector<int64_t> values(kTotal);
  std::iota(values.begin(), values.end(), 1);

  ThreadPool pool(4);
  const int64_t grain = GrainForMaxChunks(kTotal, 16);
  const size_t num_chunks = static_cast<size_t>(NumChunks(kTotal, grain));
  std::vector<int64_t> partial(num_chunks, 0);
  pool.ParallelFor(kTotal, grain,
                   [&](int64_t begin, int64_t end, size_t chunk) {
                     for (int64_t i = begin; i < end; ++i) {
                       partial[chunk] += values[static_cast<size_t>(i)];
                     }
                   });
  int64_t sum = 0;
  for (size_t c = 0; c < num_chunks; ++c) {
    sum += partial[c];
  }
  EXPECT_EQ(sum, kTotal * (kTotal + 1) / 2);
}

TEST(ThreadPoolTest, PropagatesLowestChunkException) {
  ThreadPool pool(4);
  try {
    pool.ParallelFor(64, /*grain=*/8,
                     [&](int64_t /*begin*/, int64_t /*end*/, size_t chunk) {
                       throw std::runtime_error("chunk " +
                                                std::to_string(chunk));
                     });
    FAIL() << "ParallelFor did not rethrow";
  } catch (const std::runtime_error& e) {
    // Every chunk throws; the lowest-indexed failure is reported, so the
    // error is deterministic too.
    EXPECT_STREQ(e.what(), "chunk 0");
  }
}

TEST(ThreadPoolTest, UsableAfterException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(16, 1,
                                [](int64_t, int64_t, size_t) {
                                  throw std::runtime_error("boom");
                                }),
               std::runtime_error);

  // The pool must have fully drained the failed job and accept new work.
  std::atomic<int64_t> visited{0};
  pool.ParallelFor(100, 10, [&](int64_t begin, int64_t end, size_t) {
    visited += end - begin;
  });
  EXPECT_EQ(visited.load(), 100);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int64_t> inner_total{0};
  pool.ParallelFor(8, 1, [&](int64_t, int64_t, size_t) {
    // A nested call from inside a chunk body must not deadlock; it runs
    // inline on the calling thread.
    pool.ParallelFor(10, 2, [&](int64_t begin, int64_t end, size_t) {
      inner_total += end - begin;
    });
  });
  EXPECT_EQ(inner_total.load(), 8 * 10);
}

TEST(ThreadPoolTest, ParseThreadCount) {
  EXPECT_EQ(ThreadPool::ParseThreadCount(nullptr, 3), 3u);
  EXPECT_EQ(ThreadPool::ParseThreadCount("", 3), 3u);
  EXPECT_EQ(ThreadPool::ParseThreadCount("abc", 3), 3u);
  EXPECT_EQ(ThreadPool::ParseThreadCount("4x", 3), 3u);
  EXPECT_EQ(ThreadPool::ParseThreadCount("0", 3), 1u);
  EXPECT_EQ(ThreadPool::ParseThreadCount("1", 3), 1u);
  EXPECT_EQ(ThreadPool::ParseThreadCount("16", 3), 16u);
  EXPECT_EQ(ThreadPool::ParseThreadCount("99999", 3), 1024u);
}

TEST(ThreadPoolTest, ZeroThreadsBehavesAsSerial) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<int> counts(50, 0);
  pool.ParallelFor(50, 5, [&](int64_t begin, int64_t end, size_t) {
    for (int64_t i = begin; i < end; ++i) {
      ++counts[static_cast<size_t>(i)];
    }
  });
  for (int c : counts) {
    EXPECT_EQ(c, 1);
  }
}

TEST(ThreadPoolTest, GrainHelpers) {
  EXPECT_EQ(NumChunks(0, 4), 0);
  EXPECT_EQ(NumChunks(10, 0), 10);
  EXPECT_EQ(NumChunks(10, 3), 4);
  EXPECT_EQ(NumChunks(12, 3), 4);
  EXPECT_EQ(GrainForMaxChunks(0, 8), 1);
  EXPECT_EQ(GrainForMaxChunks(100, 8), 13);
  EXPECT_LE(NumChunks(100, GrainForMaxChunks(100, 8)), 8);
  // Small totals produce fewer chunks than the cap, never empty ones.
  EXPECT_EQ(GrainForMaxChunks(3, 8), 1);
  EXPECT_EQ(NumChunks(3, GrainForMaxChunks(3, 8)), 3);
}

TEST(WorkerThreadTest, RunsTasksInSubmissionOrder) {
  WorkerThread worker;
  EXPECT_EQ(worker.completed(), 0u);
  std::vector<int> order;
  std::mutex mu;
  for (int i = 0; i < 64; ++i) {
    worker.Submit([&, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    });
  }
  worker.Drain();
  EXPECT_EQ(worker.completed(), 64u);
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
  // Drain on an idle worker returns immediately and changes nothing.
  worker.Drain();
  EXPECT_EQ(worker.completed(), 64u);
}

TEST(WorkerThreadTest, DrainObservesTaskEffects) {
  WorkerThread worker;
  int value = 0;  // not atomic: Drain's happens-before edge must suffice
  for (int round = 0; round < 100; ++round) {
    worker.Submit([&value] { ++value; });
    worker.Drain();
    EXPECT_EQ(value, round + 1);
  }
}

TEST(WorkerThreadTest, DestructorFinishesQueuedTasks) {
  std::atomic<int> ran{0};
  {
    WorkerThread worker;
    for (int i = 0; i < 16; ++i) {
      worker.Submit([&ran] { ++ran; });
    }
    // No Drain: destruction must still run everything already queued.
  }
  EXPECT_EQ(ran.load(), 16);
}

TEST(WorkerThreadTest, NeverStartedWorkerDestructsCleanly) {
  WorkerThread worker;
  EXPECT_EQ(worker.completed(), 0u);
}

TEST(WorkerThreadTest, DrainRethrowsEscapedTaskExceptionAndStaysUsable) {
  // Regression: an exception escaping a task used to unwind out of the
  // worker's thread entry and std::terminate the whole process. It must be
  // captured and surfaced to the submitter at the next Drain instead.
  WorkerThread worker;
  std::atomic<int> ran{0};
  worker.Submit([] { throw std::runtime_error("boom"); });
  worker.Submit([&ran] { ++ran; });  // later tasks still run
  EXPECT_THROW(worker.Drain(), std::runtime_error);
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(worker.completed(), 2u);
  // Rethrowing cleared the pending slot: the worker stays usable and a
  // clean Drain follows.
  worker.Submit([&ran] { ++ran; });
  worker.Drain();
  EXPECT_EQ(ran.load(), 2);
}

TEST(WorkerThreadTest, FirstEscapedExceptionWins) {
  WorkerThread worker;
  worker.Submit([] { throw std::runtime_error("first"); });
  worker.Submit([] { throw std::runtime_error("second"); });
  try {
    worker.Drain();
    FAIL() << "Drain did not rethrow";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "first");
  }
}

TEST(WorkerThreadDeathTest, UnobservedExceptionAbortsLoudlyAtDestruction) {
  // An error still pending at destruction means no Drain ever looked at
  // it; dropping it would hide a failed background save. The destructor
  // must log the message and abort.
  EXPECT_DEATH(
      {
        WorkerThread worker;
        worker.Submit([] { throw std::runtime_error("dropped error"); });
      },
      "unobserved task exception.*dropped error");
}

TEST(ScratchPoolTest, ConcurrentAcquireReleaseKeepsInvariants) {
  // Hammer one pool from every pool thread with mixed sizes under a small
  // cap; TSan validates the locking, the assertions the accounting.
  ScratchPool scratch(/*max_retained_bytes=*/8 * 1024 * sizeof(float));
  ThreadPool pool(8);
  pool.ParallelFor(
      256, 1, [&](int64_t begin, int64_t end, size_t chunk_index) {
        for (int64_t i = begin; i < end; ++i) {
          ScratchPool::Lease lease =
              scratch.Acquire(static_cast<size_t>(i % 7 + 1) * 1024);
          lease.data()[0] = static_cast<float>(chunk_index);
          lease.data()[lease.size() - 1] = 1.0f;
        }
      });
  EXPECT_LE(scratch.retained_bytes(), 8 * 1024 * sizeof(float));
  EXPECT_GT(scratch.reused_acquires(), 0u);
  EXPECT_GE(scratch.allocated_buffers(), 1u);
}

TEST(ThreadPoolTest, GlobalPoolIsReusable) {
  ThreadPool* pool = ThreadPool::Global();
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(ThreadPool::Global(), pool);
  std::atomic<int64_t> visited{0};
  // Null pool routes to the global pool.
  ParallelFor(nullptr, 32, 4, [&](int64_t begin, int64_t end, size_t) {
    visited += end - begin;
  });
  EXPECT_EQ(visited.load(), 32);
}

}  // namespace
}  // namespace mmlib::util
