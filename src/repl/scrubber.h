#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hash/merkle_tree.h"
#include "repl/replicated_store.h"
#include "simnet/network.h"

namespace mmlib::repl {

/// One anti-entropy pass over a replicated store pair's inventories.
struct ScrubReport {
  /// Pairwise sessions attempted (reachable pairs only).
  uint64_t sessions = 0;
  /// Sessions whose root digests already matched — the common case, and
  /// the reason anti-entropy is cheap: one 32-byte message each way.
  uint64_t root_matches = 0;
  /// Merkle node comparisons performed while descending mismatched trees.
  uint64_t bucket_comparisons = 0;
  /// Entries re-copied (or re-deleted) to heal divergence.
  uint64_t repaired_files = 0;
  uint64_t repaired_documents = 0;
  /// Divergent entries with no authority to decide (no recorded digest, no
  /// majority); left alone for a later pass or a quorum write to settle.
  uint64_t unresolved = 0;
  /// True when, after repairs, every replica pair holds identical file and
  /// document trees (only attainable while all replicas are reachable).
  bool converged = false;
};

/// Merkle-tree anti-entropy between replica pairs, run on the virtual
/// clock. Each replica builds a bucket tree over its inventory *locally*
/// (hashing where the bytes live costs no network); a session then
/// exchanges root digests, descends only into mismatched subtrees, and
/// re-copies divergent entries — so bit-rot injected on one replica heals
/// in O(log buckets) messages plus the damaged bytes, without any read
/// having to observe it (paper Section 3.2's diff trick, turned into
/// Cassandra-style replica repair).
///
/// Repair authority, per divergent key: a tombstone on the coordinator
/// deletes straggler copies; a digest recorded at write time names the
/// good replica; otherwise the majority of replicas decides; otherwise the
/// entry is left unresolved. All replica mutation stays inside this class
/// and the quorum writer (`no-direct-replica-write` lint rule).
class Scrubber {
 public:
  /// Either store may be null (scrub files only / documents only).
  /// Pointers are borrowed; both stores must share `network`.
  Scrubber(ReplicatedFileStore* files, ReplicatedDocumentStore* docs,
           simnet::Network* network, size_t bucket_count = kScrubBucketCount)
      : files_(files),
        docs_(docs),
        network_(network),
        bucket_count_(bucket_count) {}

  /// Runs one full pass: every reachable replica pair, files then
  /// documents. Deterministic: pairs in index order, keys in sorted order.
  Result<ScrubReport> ScrubOnce();

  /// Totals accumulated over all ScrubOnce calls.
  const ScrubReport& lifetime() const { return lifetime_; }

 private:
  struct Inventory {
    std::vector<KeyedDigest> items;
    MerkleTree tree;
  };

  Result<Inventory> FileInventory(size_t replica) const;
  Result<Inventory> DocInventory(size_t replica) const;

  /// Reconciles one divergent key between replicas `a` and `b`;
  /// `digest_a`/`digest_b` are null for a side missing the key.
  Status ReconcileFile(size_t a, size_t b, const std::string& key,
                       const Digest* digest_a, const Digest* digest_b,
                       ScrubReport* report);
  Status ReconcileDoc(size_t a, size_t b, const std::string& key,
                      const Digest* digest_a, const Digest* digest_b,
                      ScrubReport* report);

  /// Copies file `key` from replica `from` to replica `to` (charged as
  /// replica-to-replica traffic); deletes instead when `expected` is a
  /// tombstone. Direct backend writes are legal here and only here.
  Status RepairFileCopy(size_t from, size_t to, const std::string& key,
                        ScrubReport* report);
  Status RepairDocCopy(size_t from, size_t to, const std::string& key,
                       ScrubReport* report);

  /// Replica holding the digest most common across all replicas for `key`
  /// (absence counts as a vote); kNoReplica on a tie. The majority fallback
  /// when no write-time digest exists.
  size_t MajorityFileHolder(const std::string& key, bool* delete_wins) const;
  size_t MajorityDocHolder(const std::string& key, bool* delete_wins) const;

  Status ScrubPairFiles(size_t a, size_t b, ScrubReport* report);
  Status ScrubPairDocs(size_t a, size_t b, ScrubReport* report);
  bool CheckConverged() const;

  ReplicatedFileStore* files_;
  ReplicatedDocumentStore* docs_;
  simnet::Network* network_;
  size_t bucket_count_;
  ScrubReport lifetime_;
};

}  // namespace mmlib::repl
