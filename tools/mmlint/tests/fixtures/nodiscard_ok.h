// fixture-path: src/util/status.h
#pragma once
class [[nodiscard]] Status {};
