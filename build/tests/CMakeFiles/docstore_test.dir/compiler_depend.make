# Empty compiler generated dependencies file for docstore_test.
# This may be replaced when dependencies are built.
