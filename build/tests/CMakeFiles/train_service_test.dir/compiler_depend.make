# Empty compiler generated dependencies file for train_service_test.
# This may be replaced when dependencies are built.
