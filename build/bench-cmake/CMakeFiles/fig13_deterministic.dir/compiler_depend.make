# Empty compiler generated dependencies file for fig13_deterministic.
# This may be replaced when dependencies are built.
