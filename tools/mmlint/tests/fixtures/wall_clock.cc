// fixture-path: src/core/fixture_clock.cc
#include <chrono>
#include <ctime>

namespace mmlib {

long Nondeterministic() {
  auto t0 = std::chrono::steady_clock::now();         // finding
  auto t1 = std::chrono::system_clock::now();         // finding
  auto t2 = std::chrono::high_resolution_clock::now();  // finding
  long secs = time(nullptr);                          // finding
  long ticks = clock();                               // finding
  (void)t0;
  (void)t1;
  (void)t2;
  return secs + ticks;
}

long Allowed() {
  return time(nullptr);  // lint:allow(no-wall-clock)
}

long NotWallClock(Stopwatch* sw) {
  long a = sw->time();     // member call: no finding
  long b = sw->clock();    // member call: no finding
  long c = fake::time(0);  // qualified by another namespace: no finding
  return a + b + c;
}

long StaleAllow() {
  return 0;  // lint:allow(no-wall-clock)
}

}  // namespace mmlib
