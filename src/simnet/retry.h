#pragma once

#include <algorithm>
#include <cstdint>

#include "simnet/network.h"
#include "util/random.h"
#include "util/result.h"
#include "util/status.h"

namespace mmlib::simnet {

/// Capped exponential backoff with deterministic jitter. Waits are charged
/// to the simulated network's virtual clock, so TTS/TTR under a fault plan
/// include the time a real client would spend backing off.
struct RetryPolicy {
  /// Total attempts per operation (first try + retries). Must be >= 1.
  int max_attempts = 6;
  double initial_backoff_seconds = 0.05;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 5.0;
  /// Backoff is scaled by a factor in [1 - jitter, 1 + jitter], drawn from
  /// the seeded jitter stream — deterministic, unlike wall-clock jitter.
  double jitter_fraction = 0.2;
  /// Total virtual-clock budget for one operation, measured from its first
  /// attempt. Once a failed attempt finds the budget spent, the Retrier
  /// stops — even with attempts left — and returns DeadlineExceeded. 0
  /// disables the budget (per-attempt cap only). Quorum reads against a
  /// partitioned replica set rely on this to fail fast instead of spinning
  /// through the full capped backoff ladder.
  double total_deadline_seconds = 0.0;
  /// Seed of the jitter stream.
  uint64_t seed = 0x6a77e7;
};

/// True for transient transport errors a retry can heal: Unavailable and
/// DeadlineExceeded. Everything else (NotFound, Corruption, IoError, ...)
/// reports a real outcome and must surface to the caller.
inline bool IsRetryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDeadlineExceeded;
}

/// Deterministic retry driver shared by the remote store clients. Runs an
/// operation until it succeeds, fails with a non-retryable error, or
/// exhausts the policy's attempts; between attempts it charges the jittered
/// backoff to the network's virtual clock. Retries and the jitter stream
/// are consumed in call order, so counts reproduce exactly for a fixed
/// seed.
class Retrier {
 public:
  Retrier(const RetryPolicy& policy, Network* network)
      : policy_(policy), network_(network), jitter_rng_(policy.seed) {}

  /// Runs `op` (returning Status or Result<T>) under the retry policy and
  /// returns its last outcome. A retryable failure past the operation's
  /// virtual-clock budget is replaced by DeadlineExceeded so callers can
  /// distinguish "gave up fast" from the transport's own errors. When the
  /// network carries a request deadline (Network::DeadlineScope, installed
  /// by the serving front end), a retryable failure past that deadline is
  /// abandoned the same way — the client has already given up on the
  /// request, so retrying on its behalf only burns backend capacity.
  template <typename Fn>
  auto Run(Fn&& op) -> decltype(op()) {
    const double start_seconds = NowSeconds();
    for (int attempt = 1;; ++attempt) {
      auto outcome = op();
      if (outcome.ok() || !IsRetryable(StatusOf(outcome))) {
        return outcome;
      }
      if (DeadlineSpent(start_seconds)) {
        ++deadline_exhausted_count_;
        return decltype(op())(Status::DeadlineExceeded(
            "retry budget exhausted: " + StatusOf(outcome).message()));
      }
      if (RequestDeadlineHopeless()) {
        ++deadline_exhausted_count_;
        ++request_deadline_abandoned_count_;
        return decltype(op())(Status::DeadlineExceeded(
            "request deadline expired: " + StatusOf(outcome).message()));
      }
      if (attempt >= std::max(policy_.max_attempts, 1)) {
        return outcome;
      }
      ChargeBackoff(attempt);
      ++retry_count_;
    }
  }

  /// Total retries (attempts beyond the first) across all operations.
  uint64_t retry_count() const { return retry_count_; }

  /// Operations abandoned because their total virtual-clock budget ran out
  /// before the policy's attempt cap did.
  uint64_t deadline_exhausted_count() const {
    return deadline_exhausted_count_;
  }

  /// Subset of deadline_exhausted_count(): operations abandoned because the
  /// propagated *request* deadline (Network::DeadlineScope) expired, not the
  /// retrier's own budget.
  uint64_t request_deadline_abandoned_count() const {
    return request_deadline_abandoned_count_;
  }

  const RetryPolicy& policy() const { return policy_; }

 private:
  static const Status& StatusOf(const Status& status) { return status; }
  template <typename T>
  static const Status& StatusOf(const Result<T>& result) {
    return result.status();
  }

  void ChargeBackoff(int attempt);

  double NowSeconds() const {
    return network_ != nullptr ? network_->TotalTransferSeconds() : 0.0;
  }

  /// True when the per-operation budget is enabled and already consumed.
  /// With no network there is no virtual clock, so the budget cannot tick.
  bool DeadlineSpent(double start_seconds) const {
    return policy_.total_deadline_seconds > 0.0 && network_ != nullptr &&
           NowSeconds() - start_seconds >= policy_.total_deadline_seconds;
  }

  /// True when the network carries an in-flight request deadline that has
  /// already passed — further retries can never help the client.
  bool RequestDeadlineHopeless() const {
    return network_ != nullptr && network_->RequestDeadlineExpired();
  }

  RetryPolicy policy_;
  Network* network_;
  Rng jitter_rng_;
  uint64_t retry_count_ = 0;
  uint64_t deadline_exhausted_count_ = 0;
  uint64_t request_deadline_abandoned_count_ = 0;
};

}  // namespace mmlib::simnet
