#include "nn/loss.h"

#include "check/validators.h"
#include "tensor/validate.h"
#include <cmath>

namespace mmlib::nn {

Result<LossResult> SoftmaxCrossEntropy(const Tensor& logits,
                                       const std::vector<int64_t>& labels) {
  MMLIB_RETURN_IF_ERROR(
      check::ValidateRank(logits.shape(), 2, "SoftmaxCrossEntropy logits"));
  // A single NaN/Inf logit silently poisons the loss and every parameter on
  // the next optimizer step; reject it here, at the training-loop boundary.
  MMLIB_RETURN_IF_ERROR(
      check::ValidateAllFinite(logits, "SoftmaxCrossEntropy logits"));
  const int64_t batch = logits.shape().dim(0);
  const int64_t classes = logits.shape().dim(1);
  if (static_cast<int64_t>(labels.size()) != batch) {
    return Status::InvalidArgument("label count does not match batch size");
  }

  LossResult result;
  result.grad_logits = Tensor(logits.shape());
  double total_loss = 0.0;
  for (int64_t n = 0; n < batch; ++n) {
    const int64_t label = labels[n];
    MMLIB_RETURN_IF_ERROR(
        check::ValidateIndex(label, classes, "SoftmaxCrossEntropy label"));
    const float* row = logits.data() + n * classes;
    float* grad = result.grad_logits.data() + n * classes;
    float max_logit = row[0];
    for (int64_t c = 1; c < classes; ++c) {
      max_logit = std::max(max_logit, row[c]);
    }
    double sum_exp = 0.0;
    for (int64_t c = 0; c < classes; ++c) {
      sum_exp += std::exp(static_cast<double>(row[c] - max_logit));
    }
    const double log_sum = std::log(sum_exp);
    total_loss += log_sum - (row[label] - max_logit);
    const float inv_batch = 1.0f / static_cast<float>(batch);
    for (int64_t c = 0; c < classes; ++c) {
      const double p = std::exp(static_cast<double>(row[c] - max_logit)) /
                       sum_exp;
      grad[c] = (static_cast<float>(p) - (c == label ? 1.0f : 0.0f)) *
                inv_batch;
    }
  }
  result.loss = static_cast<float>(total_loss / batch);
  return result;
}

Result<float> Accuracy(const Tensor& logits,
                       const std::vector<int64_t>& labels) {
  MMLIB_RETURN_IF_ERROR(
      check::ValidateRank(logits.shape(), 2, "Accuracy logits"));
  const int64_t batch = logits.shape().dim(0);
  const int64_t classes = logits.shape().dim(1);
  if (static_cast<int64_t>(labels.size()) != batch) {
    return Status::InvalidArgument("label count does not match batch size");
  }
  int64_t correct = 0;
  for (int64_t n = 0; n < batch; ++n) {
    const float* row = logits.data() + n * classes;
    int64_t best = 0;
    for (int64_t c = 1; c < classes; ++c) {
      if (row[c] > row[best]) {
        best = c;
      }
    }
    if (best == labels[n]) {
      ++correct;
    }
  }
  return static_cast<float>(correct) / static_cast<float>(batch);
}

}  // namespace mmlib::nn
