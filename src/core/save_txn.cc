#include "core/save_txn.h"

#include "util/crash_point.h"
#include "persist/journal.h"

namespace mmlib::core {

SaveTransaction::~SaveTransaction() {
  if (committed_) {
    return;
  }
  if (util::CrashPoint::crash_in_progress()) {
    // Simulated kill unwinding through us: a dead process cannot clean up.
    // The journal record (write-ahead mode) is what recovery replays on the
    // next open; without a journal the orphans are the point of the test.
    return;
  }
  // Best effort, newest first: a failure to undo one write (e.g. the link
  // went down for good) must not stop the remaining deletions. Remote
  // deletes retry transient errors on their own.
  for (auto it = doc_ids_.rbegin(); it != doc_ids_.rend(); ++it) {
    const Status status = backends_.docs->Delete(it->first, it->second);
    (void)status;
  }
  for (auto it = file_ids_.rbegin(); it != file_ids_.rend(); ++it) {
    const Status status = backends_.files->Delete(*it);
    (void)status;
  }
  if (journaled() && !txn_id_.empty()) {
    // Everything is undone in-process; the record has nothing left to say.
    const Status status = backends_.journal->Close(txn_id_);
    (void)status;
  }
}

Status SaveTransaction::EnsureBegun() {
  if (!txn_id_.empty()) {
    return Status::OK();
  }
  MMLIB_ASSIGN_OR_RETURN(txn_id_, backends_.journal->Begin());
  return Status::OK();
}

Result<std::string> SaveTransaction::SaveFile(const Bytes& content) {
  if (journaled()) {
    MMLIB_RETURN_IF_ERROR(EnsureBegun());
    MMLIB_ASSIGN_OR_RETURN(std::string id, backends_.files->AllocateFileId());
    // Intent first, write second: a crash between the two leaves a
    // journaled id with no file, which replay tolerates (NotFound).
    MMLIB_RETURN_IF_ERROR(backends_.journal->AppendOp(
        txn_id_, {persist::kJournalFileStore, "", id}));
    MMLIB_CRASH_POINT("savetxn.file.journaled");
    MMLIB_RETURN_IF_ERROR(backends_.files->WriteAllocated(id, content));
    MMLIB_CRASH_POINT("savetxn.file.written");
    file_ids_.push_back(id);
    return id;
  }
  MMLIB_ASSIGN_OR_RETURN(std::string id, backends_.files->SaveFile(content));
  file_ids_.push_back(id);
  return id;
}

Result<std::string> SaveTransaction::Insert(const std::string& collection,
                                            json::Value doc) {
  if (journaled()) {
    MMLIB_RETURN_IF_ERROR(EnsureBegun());
    MMLIB_ASSIGN_OR_RETURN(std::string id,
                           backends_.docs->AllocateDocId(collection));
    MMLIB_RETURN_IF_ERROR(backends_.journal->AppendOp(
        txn_id_, {persist::kJournalDocStore, collection, id}));
    MMLIB_CRASH_POINT("savetxn.doc.journaled");
    MMLIB_RETURN_IF_ERROR(
        backends_.docs->InsertWithId(collection, id, std::move(doc)));
    MMLIB_CRASH_POINT("savetxn.doc.written");
    doc_ids_.emplace_back(collection, id);
    return id;
  }
  MMLIB_ASSIGN_OR_RETURN(std::string id,
                         backends_.docs->Insert(collection, std::move(doc)));
  doc_ids_.emplace_back(collection, id);
  return id;
}

Status SaveTransaction::Commit() {
  if (journaled() && !txn_id_.empty()) {
    // MarkCommitted is the atomic point: before it, recovery rolls the save
    // back; at or after it, recovery keeps the save and only GCs the record.
    MMLIB_RETURN_IF_ERROR(backends_.journal->MarkCommitted(txn_id_));
    MMLIB_CRASH_POINT("savetxn.commit.marked");
    MMLIB_RETURN_IF_ERROR(backends_.journal->Close(txn_id_));
  }
  committed_ = true;
  return Status::OK();
}

}  // namespace mmlib::core
