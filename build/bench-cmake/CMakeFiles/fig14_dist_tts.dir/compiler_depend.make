# Empty compiler generated dependencies file for fig14_dist_tts.
# This may be replaced when dependencies are built.
