#include "data/dataloader.h"

namespace mmlib::data {

DataLoader::DataLoader(const Dataset* dataset, DataLoaderOptions options)
    : dataset_(dataset),
      options_(options),
      preprocessor_(options.preprocess, options.image_size) {
  order_.resize(dataset->size());
  for (size_t i = 0; i < order_.size(); ++i) {
    order_[i] = i;
  }
  StartEpoch(0);
}

size_t DataLoader::BatchesPerEpoch() const {
  const size_t n = dataset_->size();
  const size_t b = static_cast<size_t>(options_.batch_size);
  return (n + b - 1) / b;
}

void DataLoader::StartEpoch(uint64_t epoch) {
  epoch_ = epoch;
  for (size_t i = 0; i < order_.size(); ++i) {
    order_[i] = i;
  }
  if (options_.shuffle) {
    Rng rng(options_.seed ^ (0xabcdef12345ULL + epoch));
    rng.Shuffle(&order_);
  }
}

Result<Batch> DataLoader::GetBatch(size_t batch_index) const {
  Batch batch;
  MMLIB_RETURN_IF_ERROR(FillBatch(batch_index, &batch));
  return batch;
}

Status DataLoader::FillBatch(size_t batch_index, Batch* out) const {
  const size_t begin = batch_index * static_cast<size_t>(options_.batch_size);
  if (begin >= order_.size()) {
    return Status::OutOfRange("batch index out of range");
  }
  const size_t end = std::min(
      order_.size(), begin + static_cast<size_t>(options_.batch_size));
  const int64_t n = static_cast<int64_t>(end - begin);
  const int64_t s = options_.image_size;

  // Per-batch augmentation PRNG: depends on (seed, epoch, batch) only, so
  // repeated loads of the same batch are identical.
  Rng aug_rng(options_.seed ^ (epoch_ * 1315423911ULL) ^
              (batch_index * 2654435761ULL));

  const Shape shape{n, 3, s, s};
  if (out->images.shape() != shape) {
    out->images = Tensor(shape);
  }
  out->labels.resize(static_cast<size_t>(n));
  for (int64_t k = 0; k < n; ++k) {
    const Image image = dataset_->GetImage(order_[begin + k]);
    out->labels[k] = image.label % options_.num_classes;
    const bool flip = options_.augment && aug_rng.NextFloat() < 0.5f;
    preprocessor_.Apply(image, flip, out->images.data() + k * 3 * s * s);
  }
  return Status::OK();
}

}  // namespace mmlib::data
