#include "nn/optimizer.h"

#include <cstdio>

namespace mmlib::nn {

SgdOptimizer::SgdOptimizer(Model* model, SgdOptions options)
    : model_(model), options_(options) {
  RebuildSlots();
}

void SgdOptimizer::RebuildSlots() {
  slots_.clear();
  for (size_t i = 0; i < model_->node_count(); ++i) {
    Layer* layer = model_->layer(i);
    for (size_t p = 0; p < layer->params().size(); ++p) {
      const Param& param = layer->params()[p];
      if (param.trainable && !param.is_buffer) {
        slots_.push_back(Slot{i, p, Tensor(param.value.shape())});
      }
    }
  }
}

void SgdOptimizer::Step() {
  for (Slot& slot : slots_) {
    Param& param = model_->layer(slot.node_index)->params()[slot.param_index];
    if (!param.trainable) {
      continue;
    }
    float* value = param.value.data();
    const float* grad = param.grad.data();
    float* velocity = slot.velocity.data();
    const int64_t n = param.value.numel();
    const float lr = options_.learning_rate;
    const float mu = options_.momentum;
    const float wd = options_.weight_decay;
    for (int64_t i = 0; i < n; ++i) {
      const float g = grad[i] + wd * value[i];
      velocity[i] = mu * velocity[i] + g;
      value[i] -= lr * velocity[i];
    }
  }
}

Bytes SgdOptimizer::SerializeState() const {
  BytesWriter writer;
  writer.WriteF32(options_.learning_rate);
  writer.WriteF32(options_.momentum);
  writer.WriteF32(options_.weight_decay);
  // Without momentum SGD is stateless: the velocity buffers stay zero and
  // are never read, so they are omitted from the state file.
  const bool has_velocity = options_.momentum != 0.0f;
  writer.WriteU8(has_velocity ? 1 : 0);
  writer.WriteU64(slots_.size());
  for (const Slot& slot : slots_) {
    const Layer* layer = model_->layer(slot.node_index);
    writer.WriteString(layer->name());
    writer.WriteString(layer->params()[slot.param_index].name);
    if (has_velocity) {
      slot.velocity.SerializeTo(&writer);
    }
  }
  return writer.TakeBytes();
}

Status SgdOptimizer::LoadState(const Bytes& data) {
  BytesReader reader(data);
  MMLIB_ASSIGN_OR_RETURN(options_.learning_rate, reader.ReadF32());
  MMLIB_ASSIGN_OR_RETURN(options_.momentum, reader.ReadF32());
  MMLIB_ASSIGN_OR_RETURN(options_.weight_decay, reader.ReadF32());
  MMLIB_ASSIGN_OR_RETURN(uint8_t has_velocity, reader.ReadU8());
  MMLIB_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64());
  if (count != slots_.size()) {
    return Status::Corruption("optimizer state slot count mismatch: " +
                              std::to_string(count) + " vs " +
                              std::to_string(slots_.size()));
  }
  for (Slot& slot : slots_) {
    const Layer* layer = model_->layer(slot.node_index);
    MMLIB_ASSIGN_OR_RETURN(std::string layer_name, reader.ReadString());
    MMLIB_ASSIGN_OR_RETURN(std::string param_name, reader.ReadString());
    if (layer_name != layer->name() ||
        param_name != layer->params()[slot.param_index].name) {
      return Status::Corruption("optimizer state does not match model: " +
                                layer_name + "." + param_name);
    }
    if (has_velocity != 0) {
      MMLIB_ASSIGN_OR_RETURN(Tensor velocity, Tensor::Deserialize(&reader));
      if (velocity.shape() != slot.velocity.shape()) {
        return Status::Corruption("optimizer velocity shape mismatch for " +
                                  layer_name + "." + param_name);
      }
      slot.velocity = std::move(velocity);
    } else {
      slot.velocity.Fill(0.0f);
    }
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after optimizer state");
  }
  return Status::OK();
}

std::string SgdOptimizer::DescribeConfig() const {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer),
                "SGD(lr=%g, momentum=%g, weight_decay=%g)",
                options_.learning_rate, options_.momentum,
                options_.weight_decay);
  return buffer;
}

}  // namespace mmlib::nn
