#include "simnet/network.h"

namespace mmlib::simnet {

double Network::Transfer(uint64_t bytes) {
  const double seconds = link_.TransferSeconds(bytes);
  clock_.AdvanceSeconds(seconds);
  total_bytes_ += bytes;
  ++message_count_;
  return seconds;
}

void Network::Reset() {
  clock_ = VirtualClock();
  total_bytes_ = 0;
  message_count_ = 0;
}

}  // namespace mmlib::simnet
