#include "serve/frontend.h"

#include <algorithm>
#include <utility>

#include "simnet/arrivals.h"
#include "util/crash_point.h"

namespace mmlib::serve {

ServingFrontend::ServingFrontend(const FrontendOptions& options,
                                 std::vector<ServeBackend*> backends,
                                 simnet::Network* network)
    : options_(options), backends_(std::move(backends)), network_(network) {
  nodes_.reserve(options_.node_count);
  for (uint32_t n = 0; n < options_.node_count; ++n) {
    nodes_.emplace_back(options_.tenant_count, options_.queue);
    nodes_.back().free_slots = options_.workers_per_node;
  }
  breakers_.assign(backends_.size(), CircuitBreaker(options_.breaker));
  if (options_.tenant_quota_rps > 0.0) {
    buckets_.assign(options_.tenant_count, TenantBucket{
        options_.tenant_quota_burst, 0.0});
  }
}

void ServingFrontend::Push(Event event) {
  event.seq = next_event_seq_++;
  events_.push(std::move(event));
}

void ServingFrontend::SyncNetworkClock(double now_seconds) {
  if (network_ == nullptr) {
    return;
  }
  // The network clock never rewinds: a CoreBackend op may already have
  // charged transfers past this event's time.
  const double behind = now_seconds - network_->TotalTransferSeconds();
  if (behind > 0.0) {
    network_->ChargeSeconds(behind);
  }
  network_->ApplyDueReplicaEvents();
}

uint32_t ServingFrontend::RouteNode(const Request& request) const {
  return static_cast<uint32_t>(
      simnet::MixHash(options_.seed ^ simnet::MixHash(request.client)) %
      options_.node_count);
}

ServeReport ServingFrontend::Run(WorkloadGenerator& workload) {
  report_ = ServeReport();
  if (workload.HasNext()) {
    Event arrival;
    arrival.type = EventType::kArrival;
    arrival.batch.push_back(workload.Next());
    arrival.time = arrival.batch.front().arrival_seconds;
    Push(std::move(arrival));
  }
  while (!events_.empty()) {
    Event event = events_.top();
    events_.pop();
    const double now = event.time;
    last_event_seconds_ = now;
    SyncNetworkClock(now);
    switch (event.type) {
      case EventType::kArrival: {
        ++report_.counters.arrivals;
        AdmitRequest(event.batch.front(), now);
        if (workload.HasNext()) {
          Event next;
          next.type = EventType::kArrival;
          next.batch.push_back(workload.Next());
          next.time = next.batch.front().arrival_seconds;
          Push(std::move(next));
        }
        break;
      }
      case EventType::kCompletion:
        DeliverReply(event, now);
        break;
      case EventType::kBatchFlush: {
        NodeState& state = nodes_[event.node];
        if (event.batch_generation == state.batch_generation &&
            !state.pending_batch.empty()) {
          // The timer expired with the batch still partial; flush what is
          // there (TryDispatch handles the no-free-slot case by leaving the
          // batch due, to flush on the next slot release).
          state.batch_due_seconds = now;
          TryDispatch(event.node, now);
        }
        break;
      }
    }
  }
  for (const CircuitBreaker& breaker : breakers_) {
    report_.counters.breaker_trips += breaker.trip_count();
    report_.counters.breaker_probes += breaker.probe_count();
    report_.counters.breaker_recoveries += breaker.recovery_count();
    report_.counters.breaker_fast_rejects += breaker.fast_reject_count();
  }
  report_.horizon_seconds =
      std::max(workload.spec().horizon_seconds, last_event_seconds_);
  if (report_.horizon_seconds > 0.0) {
    report_.goodput_rps =
        static_cast<double>(report_.counters.served()) /
        report_.horizon_seconds;
  }
  return report_;
}

void ServingFrontend::AdmitRequest(const Request& request,
                                   double now_seconds) {
  MMLIB_CRASH_POINT("serve.admit");
  if (!buckets_.empty()) {
    TenantBucket& bucket = buckets_[request.tenant];
    bucket.tokens = std::min(
        options_.tenant_quota_burst,
        bucket.tokens + (now_seconds - bucket.refilled_at_seconds) *
                            options_.tenant_quota_rps);
    bucket.refilled_at_seconds = now_seconds;
    if (bucket.tokens < 1.0) {
      ++report_.counters.shed_over_quota;
      RecordOutcome(request, RequestOutcome::kShed, now_seconds);
      return;
    }
    bucket.tokens -= 1.0;
  }
  const uint32_t node = RouteNode(request);
  if (!nodes_[node].queues.Admit(request)) {
    ++report_.counters.shed_queue_full;
    RecordOutcome(request, RequestOutcome::kShed, now_seconds);
    return;
  }
  ++report_.counters.admitted;
  TryDispatch(node, now_seconds);
}

bool ServingFrontend::BatchReady(const NodeState& state,
                                 double now_seconds) const {
  return !state.pending_batch.empty() &&
         (state.pending_batch.size() >= options_.batch_max ||
          now_seconds >= state.batch_due_seconds);
}

void ServingFrontend::TryDispatch(uint32_t node, double now_seconds) {
  NodeState& state = nodes_[node];
  for (const Request& expired : state.queues.ExpireBefore(now_seconds)) {
    ++report_.counters.expired_in_queue;
    RecordOutcome(expired, RequestOutcome::kDeadlineExpired, now_seconds);
  }
  while (state.free_slots > 0) {
    if (BatchReady(state, now_seconds)) {
      FlushBatch(node, now_seconds);
      continue;
    }
    Request request;
    if (!state.queues.PopNext(&request)) {
      break;
    }
    if (request.kind == RequestKind::kInference && options_.batch_max > 1) {
      state.pending_batch.push_back(request);
      if (state.pending_batch.size() == 1) {
        state.batch_due_seconds = now_seconds + options_.batch_flush_seconds;
        Event flush;
        flush.type = EventType::kBatchFlush;
        flush.time = state.batch_due_seconds;
        flush.node = node;
        flush.batch_generation = state.batch_generation;
        Push(std::move(flush));
      }
      continue;
    }
    DispatchRequest(node, {request}, now_seconds);
  }
}

void ServingFrontend::FlushBatch(uint32_t node, double now_seconds) {
  NodeState& state = nodes_[node];
  std::vector<Request> batch = std::move(state.pending_batch);
  state.pending_batch.clear();
  ++state.batch_generation;
  // Members whose client already hung up are not worth a model pass.
  std::vector<Request> live;
  live.reserve(batch.size());
  for (const Request& request : batch) {
    if (request.deadline_seconds > 0.0 &&
        request.deadline_seconds <= now_seconds) {
      RecordOutcome(request, RequestOutcome::kDeadlineExpired, now_seconds);
    } else {
      live.push_back(request);
    }
  }
  if (live.empty()) {
    return;
  }
  ++report_.counters.batches_flushed;
  if (live.size() > 1) {
    report_.counters.batched += live.size();
  }
  DispatchRequest(node, std::move(live), now_seconds);
}

void ServingFrontend::DispatchRequest(uint32_t node,
                                      std::vector<Request> batch,
                                      double now_seconds) {
  MMLIB_CRASH_POINT("serve.dispatch");
  NodeState& state = nodes_[node];
  const size_t backend_index = node % backends_.size();
  CircuitBreaker& breaker = breakers_[backend_index];
  if (!breaker.Allow(now_seconds)) {
    for (const Request& request : batch) {
      RecordOutcome(request, RequestOutcome::kBreakerRejected, now_seconds);
    }
    return;
  }
  const BackendOutcome outcome = backends_[backend_index]->Execute(
      batch.front(), batch.size(), now_seconds);
  --state.free_slots;
  Event completion;
  completion.type = EventType::kCompletion;
  completion.time = now_seconds + outcome.service_seconds;
  completion.node = node;
  completion.outcome = outcome;
  completion.batch = std::move(batch);
  Push(std::move(completion));
}

void ServingFrontend::DeliverReply(const Event& event, double now_seconds) {
  MMLIB_CRASH_POINT("serve.reply");
  NodeState& state = nodes_[event.node];
  ++state.free_slots;
  CircuitBreaker& breaker = breakers_[event.node % backends_.size()];
  if (event.outcome.code == StatusCode::kOk) {
    breaker.RecordSuccess(now_seconds);
  } else {
    breaker.RecordFailure(now_seconds);
    ++report_.counters.backend_failures;
  }
  for (const Request& request : event.batch) {
    if (event.outcome.code != StatusCode::kOk) {
      RecordOutcome(request, RequestOutcome::kBackendFailed, now_seconds);
    } else if (request.deadline_seconds > 0.0 &&
               request.deadline_seconds < now_seconds) {
      // Served too late: the work was done but the client was gone.
      RecordOutcome(request, RequestOutcome::kDeadlineExpired, now_seconds);
    } else {
      RecordOutcome(request, RequestOutcome::kServed, now_seconds);
    }
  }
  TryDispatch(event.node, now_seconds);
}

void ServingFrontend::RecordOutcome(const Request& request,
                                    RequestOutcome outcome,
                                    double now_seconds) {
  ++report_.counters.outcomes[static_cast<size_t>(outcome)];
  if (outcome == RequestOutcome::kServed) {
    report_.latency.Record(now_seconds - request.arrival_seconds);
  }
}

}  // namespace mmlib::serve
