# Empty dependencies file for fig04_merkle.
# This may be replaced when dependencies are built.
